// Command graphgen generates the synthetic graph families of the paper's
// evaluation and writes them in the plain edge-list format.
//
// Usage:
//
//	graphgen -spec er:n=96000,d=32,seed=1 -o er96k.txt
//	graphgen -spec rmat:n=16000,d=4000 > rmat.txt
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")
	var (
		spec = flag.String("spec", "", "TYPE:k=v,... — er|ws|ba|rmat|cycle|twocliques|grid (required)")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if *spec == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, _, err := cli.Generate(*spec)
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		log.Fatal(err)
	}
}
