// Command benchgate compares freshly measured BENCH_*.json files
// against the committed baselines and fails (exit 1) when a
// tagged-critical metric regressed beyond its tolerance — the CI gate
// that keeps the paper's headline numbers (communication volume,
// superstep counts, cache and scheduling speedups, allocation counts)
// from silently eroding.
//
// Usage:
//
//	benchgate -baseline .benchgate/baseline -current .
//
// Both directories are repo roots: the tool looks for the same
// relative BENCH paths under each. Deterministic counts gate at ±15%,
// same-machine timing ratios at -40%; raw wall-clock values are
// reported but never gated (CI hardware is not the baseline's
// hardware). The delta table is printed to stdout and, when
// -summary or $GITHUB_STEP_SUMMARY names a file, appended there as
// markdown.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		baseline = flag.String("baseline", "", "repo root holding the committed BENCH_*.json baselines")
		current  = flag.String("current", ".", "repo root holding the freshly measured BENCH_*.json files")
		summary  = flag.String("summary", os.Getenv("GITHUB_STEP_SUMMARY"), "file to append the markdown delta table to (default $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *baseline == "" {
		log.Fatal("need -baseline DIR (copy the committed BENCH files aside before re-running benches)")
	}

	metrics, skipped, err := Compare(*baseline, *current)
	if err != nil {
		log.Fatal(err)
	}
	if len(metrics) == 0 {
		log.Fatal("no baselines found under -baseline; nothing to gate")
	}

	var table strings.Builder
	fmt.Fprintf(&table, "### benchgate: %d metrics (%d gated)\n\n", len(metrics), countCritical(metrics))
	RenderTable(&table, metrics, skipped)
	fmt.Print(table.String())
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintln(f, table.String())
		f.Close()
	}

	if regs := Regressions(metrics); len(regs) > 0 {
		for _, m := range regs {
			log.Printf("REGRESSION %s/%s: baseline %s → current %s (%+.1f%%, tolerance %.0f%%)",
				m.File, m.Name, fmtVal(m.Base), fmtVal(m.Cur), 100*m.Delta(), 100*m.Tol)
		}
		log.Fatalf("FAIL: %d critical metric(s) regressed", len(regs))
	}
	log.Printf("PASS: no critical regressions across %d metrics", len(metrics))
}

func countCritical(ms []Metric) int {
	n := 0
	for _, m := range ms {
		if m.Critical {
			n++
		}
	}
	return n
}
