package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Metric is one gated (or informational) comparison between a
// committed baseline and a freshly measured value.
//
// The gate deliberately distinguishes two metric classes:
//
//   - deterministic counts (communication volume, supersteps,
//     allocations, cut values): identical workloads must reproduce
//     them almost exactly, so they gate at a tight tolerance on any
//     machine;
//   - same-machine timing RATIOS (warm/cold cache speedup,
//     static/dynamic scheduling speedup, radix-vs-stdlib sort
//     speedup): both sides of a ratio are measured in the same
//     process, so the machine's absolute speed divides out, and only
//     a real relative regression — e.g. a 2× slowdown on one side —
//     moves it.
//
// Raw wall-clock numbers are reported but never gated: the committed
// baselines come from whatever machine last regenerated them, and
// CI runners are not that machine.
type Metric struct {
	File string
	Name string
	Base float64
	Cur  float64
	// Tol is the tolerated fractional change in the harmful direction;
	// 0 means exact match required.
	Tol float64
	// Better is +1 when higher is better, -1 when lower is better.
	Better int
	// Abs, when > 0, is an absolute-change floor: a metric whose raw
	// change stays within ±Abs never regresses even past Tol. It keeps
	// tiny counters (4 allocs/op) from failing on a ±1 wobble that a
	// shorter CI benchtime can cause.
	Abs float64
	// Critical metrics gate the build; the rest are informational.
	Critical bool
}

// Delta is the fractional change from baseline (positive = increased).
func (m Metric) Delta() float64 {
	if m.Base == 0 {
		if m.Cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (m.Cur - m.Base) / m.Base
}

// Regressed reports whether a critical metric moved past its tolerance
// in the harmful direction.
func (m Metric) Regressed() bool {
	if !m.Critical {
		return false
	}
	if m.Abs > 0 && math.Abs(m.Cur-m.Base) <= m.Abs {
		return false
	}
	if m.Tol == 0 {
		return m.Cur != m.Base
	}
	d := m.Delta()
	switch m.Better {
	case +1:
		return d < -m.Tol
	case -1:
		return d > m.Tol
	}
	return math.Abs(d) > m.Tol
}

// Tolerances for the two metric classes.
const (
	tolCount = 0.15 // deterministic counts: >15% drift fails
	tolRatio = 0.40 // same-machine timing ratios: >40% drop fails
)

// ---- file schemas (mirrors of the bench writers) ----

type serviceBench struct {
	Throughput []struct {
		Algorithm string  `json:"algorithm"`
		WarmNsOp  int64   `json:"warm_ns_op"`
		ColdNsOp  int64   `json:"cold_ns_op"`
		Speedup   float64 `json:"speedup"`
	} `json:"throughput"`
	Scheduling []struct {
		Schedule        string  `json:"schedule"`
		WallNs          int64   `json:"wall_ns"`
		IdleFraction    float64 `json:"idle_fraction"`
		StragglerTrials int     `json:"straggler_trials"`
		CutValue        uint64  `json:"cut_value"`
	} `json:"scheduling"`
}

type bspBench struct {
	Records []struct {
		Input      string  `json:"input"`
		Seed       uint64  `json:"seed"`
		Trial      int     `json:"trial"`
		Algorithm  string  `json:"algorithm"`
		P          int     `json:"p"`
		TimeSec    float64 `json:"time_sec"`
		Result     float64 `json:"result"`
		Supersteps int     `json:"supersteps"`
		CommVolume float64 `json:"comm_volume"`
	} `json:"records"`
}

type kernelsPair struct {
	NewNsOp      int64   `json:"new_ns_op"`
	BaseNsOp     int64   `json:"baseline_ns_op"`
	Speedup      float64 `json:"speedup"`
	NewAllocsOp  int64   `json:"new_allocs_op"`
	BaseAllocsOp int64   `json:"baseline_allocs_op"`
}

type kernelsBench struct {
	EdgeSort []struct {
		M         int     `json:"m"`
		RadixNsOp int64   `json:"radix_ns_op"`
		StdNsOp   int64   `json:"std_ns_op"`
		Speedup   float64 `json:"speedup"`
	} `json:"edge_sort"`
	Combine kernelsPair `json:"combine"`
	Remap   kernelsPair `json:"remap"`
	KSTrial struct {
		Trials           int     `json:"trials_per_op"`
		ArenaAllocsTrial float64 `json:"arena_allocs_per_trial"`
		CloneAllocsTrial float64 `json:"clone_allocs_per_trial"`
		AllocReduction   float64 `json:"alloc_reduction"`
	} `json:"ks_trial"`
}

type plannerBench struct {
	HighDiameter struct {
		LabelPropNsOp int64   `json:"labelprop_ns_op"`
		PlannerNsOp   int64   `json:"planner_ns_op"`
		Speedup       float64 `json:"speedup"`
		ChosenKernel  string  `json:"chosen_kernel"`
		PredictedMs   float64 `json:"predicted_ms"`
		ActualMs      float64 `json:"actual_ms"`
	} `json:"high_diameter"`
	SmallGraph struct {
		BSPNsOp    int64   `json:"bsp_ns_op"`
		SharedNsOp int64   `json:"shared_ns_op"`
		Speedup    float64 `json:"speedup"`
	} `json:"small_graph"`
	LowRound struct {
		Supersteps int     `json:"supersteps"`
		CommVolume float64 `json:"comm_volume"`
		Components int     `json:"components"`
	} `json:"lowround"`
	Prediction struct {
		WinRate    float64 `json:"win_rate"`
		MeanAbsErr float64 `json:"mean_abs_err"`
		Fallbacks  float64 `json:"fallbacks"`
	} `json:"prediction"`
}

type transportBench struct {
	Benchmarks []transportRow `json:"benchmarks"`
}

type transportRow struct {
	Transport        string  `json:"transport"`
	Codec            bool    `json:"codec"`
	P                int     `json:"p"`
	WordsPerPeer     int     `json:"words_per_peer"`
	NsPerSuperstep   int64   `json:"ns_per_superstep"`
	MBPerS           float64 `json:"mb_per_s"`
	WireBytesPerStep uint64  `json:"wire_bytes_per_superstep"`
	RawBytesPerStep  uint64  `json:"wire_raw_bytes_per_superstep"`
	CompressionRatio float64 `json:"compression_ratio"`
}

type fleetBench struct {
	Scenario struct {
		SuperstepsAborted int     `json:"supersteps_aborted"`
		QueriesFailedOver int     `json:"queries_failed_over"`
		CatchupGraphs     int     `json:"catchup_graphs"`
		FingerprintMatch  int     `json:"fingerprint_match"`
		DetectionMs       float64 `json:"detection_ms"`
		RecoveryMs        float64 `json:"recovery_ms"`
	} `json:"scenario"`
}

// benchFiles lists every baseline the gate knows how to read, relative
// to the repo root.
var benchFiles = []struct {
	Path    string
	Extract func(base, cur []byte) ([]Metric, error)
}{
	{"internal/service/BENCH_service.json", extractService},
	{"internal/service/BENCH_planner.json", extractPlanner},
	{"internal/bsp/BENCH_bsp.json", extractBSP},
	{"internal/kernels/BENCH_kernels.json", extractKernels},
	{"internal/transport/BENCH_transport.json", extractTransport},
	{"internal/shard/BENCH_fleet.json", extractFleet},
}

func decodePair[T any](base, cur []byte) (T, T, error) {
	var b, c T
	if err := json.Unmarshal(base, &b); err != nil {
		return b, c, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(cur, &c); err != nil {
		return b, c, fmt.Errorf("current: %w", err)
	}
	return b, c, nil
}

func extractService(base, cur []byte) ([]Metric, error) {
	b, c, err := decodePair[serviceBench](base, cur)
	if err != nil {
		return nil, err
	}
	file := "service"
	var ms []Metric
	curThroughput := map[string]float64{}
	curWarm := map[string]float64{}
	for _, row := range c.Throughput {
		curThroughput[row.Algorithm] = row.Speedup
		curWarm[row.Algorithm] = float64(row.WarmNsOp)
	}
	for _, row := range b.Throughput {
		if cs, ok := curThroughput[row.Algorithm]; ok {
			ms = append(ms,
				Metric{File: file, Name: "cache_speedup/" + row.Algorithm, Base: row.Speedup, Cur: cs,
					Tol: tolRatio, Better: +1, Critical: true},
				Metric{File: file, Name: "warm_ns_op/" + row.Algorithm, Base: float64(row.WarmNsOp), Cur: curWarm[row.Algorithm],
					Better: -1})
		}
	}
	sched := func(v serviceBench) (staticWall, dynWall float64, cuts map[string]float64) {
		cuts = map[string]float64{}
		for _, row := range v.Scheduling {
			cuts[row.Schedule] = float64(row.CutValue)
			switch row.Schedule {
			case "static":
				staticWall = float64(row.WallNs)
			case "dynamic":
				dynWall = float64(row.WallNs)
			}
		}
		return
	}
	bs, bd, bcuts := sched(b)
	cs2, cd, ccuts := sched(c)
	if bd > 0 && cd > 0 && bs > 0 && cs2 > 0 {
		ms = append(ms, Metric{File: file, Name: "dynamic_sched_speedup", Base: bs / bd, Cur: cs2 / cd,
			Tol: tolRatio, Better: +1, Critical: true})
	}
	for _, k := range sortedKeys(bcuts) {
		if cv, ok := ccuts[k]; ok {
			ms = append(ms, Metric{File: file, Name: "cut_value/" + k, Base: bcuts[k], Cur: cv, Critical: true})
		}
	}
	return ms, nil
}

func extractBSP(base, cur []byte) ([]Metric, error) {
	b, c, err := decodePair[bspBench](base, cur)
	if err != nil {
		return nil, err
	}
	type key struct {
		Input     string
		Seed      uint64
		Trial     int
		Algorithm string
		P         int
	}
	type agg struct{ comm, steps, time float64 }
	curRec := map[key]struct {
		result float64
		comm   float64
		steps  int
		time   float64
	}{}
	for _, r := range c.Records {
		curRec[key{r.Input, r.Seed, r.Trial, r.Algorithm, r.P}] = struct {
			result float64
			comm   float64
			steps  int
			time   float64
		}{r.Result, r.CommVolume, r.Supersteps, r.TimeSec}
	}
	// Aggregate matched records per (algorithm, p): the counts are
	// deterministic for a fixed (input, seed), so sums over the matched
	// intersection gate tightly.
	baseAgg, curAgg := map[string]agg{}, map[string]agg{}
	mismatches, matched := 0, 0
	for _, r := range b.Records {
		cr, ok := curRec[key{r.Input, r.Seed, r.Trial, r.Algorithm, r.P}]
		if !ok {
			continue
		}
		matched++
		if cr.result != r.Result {
			mismatches++
		}
		k := fmt.Sprintf("%s/p=%d", r.Algorithm, r.P)
		ba := baseAgg[k]
		ba.comm += r.CommVolume
		ba.steps += float64(r.Supersteps)
		ba.time += r.TimeSec
		baseAgg[k] = ba
		ca := curAgg[k]
		ca.comm += cr.comm
		ca.steps += float64(cr.steps)
		ca.time += cr.time
		curAgg[k] = ca
	}
	if matched == 0 {
		return nil, fmt.Errorf("bsp: no records match between baseline and current")
	}
	ms := []Metric{{File: "bsp", Name: "result_mismatches", Base: 0, Cur: float64(mismatches), Critical: true}}
	for _, k := range sortedKeys(baseAgg) {
		ba, ca := baseAgg[k], curAgg[k]
		ms = append(ms,
			Metric{File: "bsp", Name: "comm_volume/" + k, Base: ba.comm, Cur: ca.comm, Tol: tolCount, Better: -1, Critical: true},
			Metric{File: "bsp", Name: "supersteps/" + k, Base: ba.steps, Cur: ca.steps, Tol: tolCount, Better: -1, Critical: true},
			Metric{File: "bsp", Name: "time_sec/" + k, Base: ba.time, Cur: ca.time, Better: -1})
	}
	return ms, nil
}

func extractKernels(base, cur []byte) ([]Metric, error) {
	b, c, err := decodePair[kernelsBench](base, cur)
	if err != nil {
		return nil, err
	}
	file := "kernels"
	var ms []Metric
	curSort := map[int]float64{}
	for _, row := range c.EdgeSort {
		curSort[row.M] = row.Speedup
	}
	for _, row := range b.EdgeSort {
		if cs, ok := curSort[row.M]; ok {
			ms = append(ms, Metric{File: file, Name: fmt.Sprintf("edge_sort_speedup/m=%d", row.M),
				Base: row.Speedup, Cur: cs, Tol: tolRatio, Better: +1, Critical: true})
		}
	}
	pair := func(name string, bp, cp kernelsPair) {
		ms = append(ms,
			Metric{File: file, Name: name + "_speedup", Base: bp.Speedup, Cur: cp.Speedup,
				Tol: tolRatio, Better: +1, Critical: true},
			Metric{File: file, Name: name + "_allocs_op", Base: float64(bp.NewAllocsOp), Cur: float64(cp.NewAllocsOp),
				Tol: tolCount, Better: -1, Abs: 2, Critical: true})
	}
	pair("combine", b.Combine, c.Combine)
	pair("remap", b.Remap, c.Remap)
	ms = append(ms,
		Metric{File: file, Name: "ks_alloc_reduction", Base: b.KSTrial.AllocReduction, Cur: c.KSTrial.AllocReduction,
			Tol: tolRatio, Better: +1, Critical: true},
		// Arena allocs per trial amortize one-time pool growth over b.N,
		// so the raw figure moves with benchtime — informational only;
		// the reduction ratio above is the gated claim.
		Metric{File: file, Name: "ks_arena_allocs_per_trial", Base: b.KSTrial.ArenaAllocsTrial, Cur: c.KSTrial.ArenaAllocsTrial,
			Better: -1})
	return ms, nil
}

func extractPlanner(base, cur []byte) ([]Metric, error) {
	b, c, err := decodePair[plannerBench](base, cur)
	if err != nil {
		return nil, err
	}
	file := "planner"
	return []Metric{
		// Same-machine timing ratios: planner-vs-labelprop on the
		// high-diameter path and shared-vs-BSP on the small graph. Both
		// sides of each ratio come from one process, so only a genuine
		// relative regression (the planner picking a slow kernel, the
		// shared path growing a machine-sized overhead) moves them.
		{File: file, Name: "high_diameter_speedup", Base: b.HighDiameter.Speedup, Cur: c.HighDiameter.Speedup,
			Tol: tolRatio, Better: +1, Critical: true},
		{File: file, Name: "small_graph_speedup", Base: b.SmallGraph.Speedup, Cur: c.SmallGraph.Speedup,
			Tol: tolRatio, Better: +1, Critical: true},
		// Deterministic counts of the pinned lowround execution: fixed
		// input, seed-free kernel, fixed p — identical on any machine.
		{File: file, Name: "lowround_supersteps", Base: float64(b.LowRound.Supersteps), Cur: float64(c.LowRound.Supersteps),
			Tol: tolCount, Better: -1, Critical: true},
		{File: file, Name: "lowround_comm_volume", Base: b.LowRound.CommVolume, Cur: c.LowRound.CommVolume,
			Tol: tolCount, Better: -1, Critical: true},
		{File: file, Name: "lowround_components", Base: float64(b.LowRound.Components), Cur: float64(c.LowRound.Components),
			Critical: true},
		// Win rate over the divergent decisions. The Abs slack forgives
		// one or two lost coin-flip wins out of the batch; a collapse
		// (the model no longer beating the default it displaced) fails.
		{File: file, Name: "win_rate", Base: b.Prediction.WinRate, Cur: c.Prediction.WinRate,
			Tol: tolRatio, Better: +1, Abs: 0.25, Critical: true},
		// Prediction error and fallback count are machine- and
		// calibration-dependent: reported so drift is visible, not gated.
		{File: file, Name: "prediction_mean_abs_err", Base: b.Prediction.MeanAbsErr, Cur: c.Prediction.MeanAbsErr,
			Better: -1},
		{File: file, Name: "calibration_fallbacks", Base: b.Prediction.Fallbacks, Cur: c.Prediction.Fallbacks,
			Better: -1},
	}, nil
}

func extractTransport(base, cur []byte) ([]Metric, error) {
	b, c, err := decodePair[transportBench](base, cur)
	if err != nil {
		return nil, err
	}
	// Transport throughput is raw wire speed — machine-bound, so the
	// per-row numbers are informational. What IS gated is what survives
	// a machine change: the codec's wire compression ratio (a
	// deterministic property of the payloads and codec choice) and the
	// socket tax — TCP-loopback cost over the in-process fabric's, both
	// sides measured on the same machine in the same run.
	key := func(r transportRow) string {
		return fmt.Sprintf("%s/codec=%v/p=%d/w=%d", r.Transport, r.Codec, r.P, r.WordsPerPeer)
	}
	curRows := map[string]transportRow{}
	for _, row := range c.Benchmarks {
		curRows[key(row)] = row
	}
	var ms []Metric
	for _, row := range b.Benchmarks {
		k := key(row)
		cr, ok := curRows[k]
		if !ok {
			continue
		}
		ms = append(ms, Metric{File: "transport", Name: "mb_per_s/" + k, Base: row.MBPerS, Cur: cr.MBPerS, Better: +1})
		if row.Transport == "tcp" && row.Codec && row.CompressionRatio > 0 && cr.CompressionRatio > 0 {
			ms = append(ms, Metric{File: "transport", Name: "compression_ratio/" + k,
				Base: row.CompressionRatio, Cur: cr.CompressionRatio,
				Tol: tolCount, Better: +1, Critical: true})
		}
	}
	// Socket tax per (p, w): tcp-with-codecs ns over local ns, a
	// same-machine ratio. Gated only at the 1024-word point — the
	// smaller payloads divide by a sub-microsecond local superstep,
	// where timer noise swamps the ratio; those rows stay visible but
	// informational. The Abs slack absorbs the core-count shift in the
	// denominator (the in-process fabric speeds up disproportionately
	// on multi-core machines, so the tax reads ~2× higher there than
	// on a 1-vCPU box); what remains gated is the pathological case —
	// the wire path blowing up several-fold relative to the local
	// fabric, which is the regression this metric exists to catch.
	tax := func(rows []transportRow) map[string]float64 {
		local := map[string]float64{}
		tcp := map[string]float64{}
		for _, r := range rows {
			k := fmt.Sprintf("p=%d/w=%d", r.P, r.WordsPerPeer)
			switch {
			case r.Transport == "local":
				local[k] = float64(r.NsPerSuperstep)
			case r.Transport == "tcp" && r.Codec:
				tcp[k] = float64(r.NsPerSuperstep)
			}
		}
		out := map[string]float64{}
		for k, l := range local {
			if t, ok := tcp[k]; ok && l > 0 {
				out[k] = t / l
			}
		}
		return out
	}
	btax, ctax := tax(b.Benchmarks), tax(c.Benchmarks)
	for _, k := range sortedKeys(btax) {
		if cv, ok := ctax[k]; ok {
			ms = append(ms, Metric{File: "transport", Name: "socket_tax/" + k, Base: btax[k], Cur: cv,
				Tol: tolRatio, Better: -1, Abs: 30, Critical: strings.HasSuffix(k, "/w=1024")})
		}
	}
	return ms, nil
}

func extractFleet(base, cur []byte) ([]Metric, error) {
	b, c, err := decodePair[fleetBench](base, cur)
	if err != nil {
		return nil, err
	}
	file := "fleet"
	return []Metric{
		// The self-healing scenario is fully scripted (one peer killed,
		// one failover query, two graphs behind), so its counts are
		// exact-match deterministic on any machine: a drift means the
		// detection, failover, or catch-up machinery changed behavior.
		{File: file, Name: "supersteps_aborted", Base: float64(b.Scenario.SuperstepsAborted), Cur: float64(c.Scenario.SuperstepsAborted),
			Critical: true},
		{File: file, Name: "queries_failed_over", Base: float64(b.Scenario.QueriesFailedOver), Cur: float64(c.Scenario.QueriesFailedOver),
			Critical: true},
		{File: file, Name: "catchup_graphs", Base: float64(b.Scenario.CatchupGraphs), Cur: float64(c.Scenario.CatchupGraphs),
			Critical: true},
		{File: file, Name: "fingerprint_match", Base: float64(b.Scenario.FingerprintMatch), Cur: float64(c.Scenario.FingerprintMatch),
			Critical: true},
		// Wall-clock detection/recovery latencies are machine-bound:
		// reported for visibility, never gated.
		{File: file, Name: "detection_ms", Base: b.Scenario.DetectionMs, Cur: c.Scenario.DetectionMs, Better: -1},
		{File: file, Name: "recovery_ms", Base: b.Scenario.RecoveryMs, Cur: c.Scenario.RecoveryMs, Better: -1},
	}, nil
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Compare loads every known baseline under baselineDir, its freshly
// measured counterpart under currentDir, and returns the full metric
// table. A baseline missing on disk is skipped (reported via skipped);
// a baseline present but a current measurement missing is an error —
// the bench run silently didn't happen, which must not pass the gate.
func Compare(baselineDir, currentDir string) (metrics []Metric, skipped []string, err error) {
	for _, bf := range benchFiles {
		base, berr := os.ReadFile(filepath.Join(baselineDir, bf.Path))
		if os.IsNotExist(berr) {
			skipped = append(skipped, bf.Path)
			continue
		} else if berr != nil {
			return nil, nil, berr
		}
		cur, cerr := os.ReadFile(filepath.Join(currentDir, bf.Path))
		if cerr != nil {
			return nil, nil, fmt.Errorf("benchgate: baseline %s exists but current measurement is missing: %w", bf.Path, cerr)
		}
		ms, err := bf.Extract(base, cur)
		if err != nil {
			return nil, nil, fmt.Errorf("benchgate: %s: %w", bf.Path, err)
		}
		metrics = append(metrics, ms...)
	}
	return metrics, skipped, nil
}

// RenderTable writes the delta table as GitHub-flavored markdown.
func RenderTable(w io.Writer, metrics []Metric, skipped []string) {
	fmt.Fprintln(w, "| metric | baseline | current | delta | gate |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	for _, m := range metrics {
		status := "info"
		if m.Critical {
			status = "ok"
		}
		if m.Regressed() {
			status = "**REGRESSION**"
		}
		fmt.Fprintf(w, "| %s/%s | %s | %s | %+.1f%% | %s |\n",
			m.File, m.Name, fmtVal(m.Base), fmtVal(m.Cur), 100*m.Delta(), status)
	}
	for _, s := range skipped {
		fmt.Fprintf(w, "| %s | — | — | — | skipped (no baseline) |\n", s)
	}
}

func fmtVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Regressions filters the table down to the failures.
func Regressions(metrics []Metric) []Metric {
	var out []Metric
	for _, m := range metrics {
		if m.Regressed() {
			out = append(out, m)
		}
	}
	return out
}
