package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const serviceFixture = `{
  "throughput": [
    {"algorithm": "mincut", "warm_ns_op": 49000000, "cold_ns_op": 68000000, "speedup": 1.387},
    {"algorithm": "cc", "warm_ns_op": 21000, "cold_ns_op": 430000, "speedup": 20.476}
  ],
  "scheduling": [
    {"schedule": "static", "wall_ns": 316000000, "idle_fraction": 0.39, "straggler_trials": 4, "cut_value": 2},
    {"schedule": "dynamic", "wall_ns": 132000000, "idle_fraction": 0.22, "straggler_trials": 2, "cut_value": 2}
  ]
}`

const bspFixture = `{
  "name": "bsp-bench",
  "records": [
    {"input": "er_600_3000", "seed": 11, "trial": 0, "algorithm": "cc", "p": 1, "time_sec": 0.00014, "result": 1, "supersteps": 4, "comm_volume": 9003},
    {"input": "er_600_3000", "seed": 11, "trial": 0, "algorithm": "cc", "p": 4, "time_sec": 0.00018, "result": 1, "supersteps": 13, "comm_volume": 11465}
  ]
}`

const kernelsFixture = `{
  "name": "kernels-bench",
  "edge_sort": [{"m": 100000, "radix_ns_op": 1200000, "std_ns_op": 5300000, "speedup": 4.4}],
  "combine": {"new_ns_op": 900, "baseline_ns_op": 2500, "speedup": 2.8, "new_allocs_op": 2, "baseline_allocs_op": 11},
  "remap": {"new_ns_op": 400, "baseline_ns_op": 900, "speedup": 2.2, "new_allocs_op": 1, "baseline_allocs_op": 6},
  "ks_trial": {"trials_per_op": 32, "arena_allocs_per_trial": 1.5, "clone_allocs_per_trial": 40, "alloc_reduction": 26.7, "arena_ns_op": 80000, "clone_ns_op": 200000}
}`

const plannerFixture = `{
  "high_diameter": {
    "graph": "path", "n": 100001, "m": 100000, "p": 16,
    "labelprop_ns_op": 199000000, "planner_ns_op": 12000000, "speedup": 16.58,
    "chosen_kernel": "sampling", "predicted_ms": 36.3, "actual_ms": 39.9
  },
  "small_graph": {"n": 1024, "m": 9216, "bsp_ns_op": 514000, "shared_ns_op": 155000, "speedup": 3.32},
  "lowround": {"p": 4, "supersteps": 8, "comm_volume": 6180, "components": 1},
  "prediction": {"decisions": 37, "executed": 37, "diverged": 8, "wins": 8, "win_rate": 1, "mean_abs_err": 1.37, "fallbacks": 0}
}`

const transportFixture = `{
  "name": "transport-bench",
  "benchmarks": [
    {"transport": "local", "codec": false, "p": 2, "words_per_peer": 1024, "ns_per_superstep": 1020, "mb_per_s": 16063},
    {"transport": "tcp", "codec": true, "p": 2, "words_per_peer": 1024, "ns_per_superstep": 15546, "mb_per_s": 1053,
     "wire_bytes_per_superstep": 4254, "wire_raw_bytes_per_superstep": 16450, "compression_ratio": 3.87},
    {"transport": "tcp", "codec": false, "p": 2, "words_per_peer": 1024, "ns_per_superstep": 15200, "mb_per_s": 1077,
     "wire_bytes_per_superstep": 16450, "wire_raw_bytes_per_superstep": 16450, "compression_ratio": 1}
  ]
}`

const fleetFixture = `{
  "name": "fleet-selfheal",
  "scenario": {
    "supersteps_aborted": 1, "queries_failed_over": 1,
    "catchup_graphs": 2, "fingerprint_match": 1,
    "detection_ms": 9.86, "recovery_ms": 2.37
  }
}`

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, body := range files {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func allFixtures() map[string]string {
	return map[string]string{
		"internal/service/BENCH_service.json":     serviceFixture,
		"internal/service/BENCH_planner.json":     plannerFixture,
		"internal/bsp/BENCH_bsp.json":             bspFixture,
		"internal/kernels/BENCH_kernels.json":     kernelsFixture,
		"internal/transport/BENCH_transport.json": transportFixture,
		"internal/shard/BENCH_fleet.json":         fleetFixture,
	}
}

// TestGatePassesUnchanged: identical measurements never regress.
func TestGatePassesUnchanged(t *testing.T) {
	base := writeTree(t, allFixtures())
	cur := writeTree(t, allFixtures())
	metrics, skipped, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v with all fixtures present", skipped)
	}
	if regs := Regressions(metrics); len(regs) != 0 {
		t.Fatalf("identical trees regressed: %+v", regs)
	}
	if countCritical(metrics) == 0 {
		t.Fatal("no critical metrics extracted")
	}
}

// TestGateCatchesTwoXSlowdown is the acceptance scenario: a synthetic
// 2× slowdown on the warm service path halves the cache speedup and
// must fail the gate.
func TestGateCatchesTwoXSlowdown(t *testing.T) {
	base := writeTree(t, allFixtures())
	slow := allFixtures()
	slow["internal/service/BENCH_service.json"] = strings.Replace(serviceFixture,
		`"warm_ns_op": 21000, "cold_ns_op": 430000, "speedup": 20.476`,
		`"warm_ns_op": 42000, "cold_ns_op": 430000, "speedup": 10.238`, 1)
	cur := writeTree(t, slow)
	metrics, _, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(metrics)
	if len(regs) != 1 || regs[0].Name != "cache_speedup/cc" {
		t.Fatalf("want exactly cache_speedup/cc to regress, got %+v", regs)
	}
}

// TestGateIgnoresUniformMachineSpeed: a run on a machine 1.6× slower
// across the board moves every raw timing but no ratio — the gate must
// pass.
func TestGateIgnoresUniformMachineSpeed(t *testing.T) {
	base := writeTree(t, allFixtures())
	slow := allFixtures()
	slow["internal/service/BENCH_service.json"] = strings.NewReplacer(
		`"warm_ns_op": 21000, "cold_ns_op": 430000`, `"warm_ns_op": 33600, "cold_ns_op": 688000`,
		`"warm_ns_op": 49000000, "cold_ns_op": 68000000`, `"warm_ns_op": 78400000, "cold_ns_op": 108800000`,
		`"wall_ns": 316000000`, `"wall_ns": 505600000`,
		`"wall_ns": 132000000`, `"wall_ns": 211200000`,
	).Replace(serviceFixture)
	cur := writeTree(t, slow)
	metrics, _, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(metrics); len(regs) != 0 {
		t.Fatalf("uniform slowdown tripped the gate: %+v", regs)
	}
}

// TestGateCatchesCommVolumeGrowth: a 30% communication-volume increase
// on the p=4 cc records violates the paper's core claim and must fail.
func TestGateCatchesCommVolumeGrowth(t *testing.T) {
	base := writeTree(t, allFixtures())
	bloated := allFixtures()
	bloated["internal/bsp/BENCH_bsp.json"] = strings.Replace(bspFixture, `"comm_volume": 11465`, `"comm_volume": 14905`, 1)
	cur := writeTree(t, bloated)
	metrics, _, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(metrics)
	if len(regs) != 1 || regs[0].Name != "comm_volume/cc/p=4" {
		t.Fatalf("want comm_volume/cc/p=4 to regress, got %+v", regs)
	}
}

// TestGateCatchesWrongResult: any result mismatch is an exact-match
// failure regardless of tolerance.
func TestGateCatchesWrongResult(t *testing.T) {
	base := writeTree(t, allFixtures())
	wrong := allFixtures()
	wrong["internal/bsp/BENCH_bsp.json"] = strings.Replace(bspFixture,
		`"p": 4, "time_sec": 0.00018, "result": 1`, `"p": 4, "time_sec": 0.00018, "result": 3`, 1)
	cur := writeTree(t, wrong)
	metrics, _, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range Regressions(metrics) {
		if m.Name == "result_mismatches" {
			found = true
		}
	}
	if !found {
		t.Fatal("result mismatch did not regress")
	}
}

// TestGateAllocSlack: tiny alloc counters tolerate a ±1 wobble from a
// shorter CI benchtime but still fail on a genuine leak.
func TestGateAllocSlack(t *testing.T) {
	base := writeTree(t, allFixtures())

	wobble := allFixtures()
	wobble["internal/kernels/BENCH_kernels.json"] = strings.Replace(kernelsFixture,
		`"speedup": 2.8, "new_allocs_op": 2`, `"speedup": 2.8, "new_allocs_op": 3`, 1)
	metrics, _, err := Compare(base, writeTree(t, wobble))
	if err != nil {
		t.Fatal(err)
	}
	if regs := Regressions(metrics); len(regs) != 0 {
		t.Fatalf("+1 alloc wobble tripped the gate: %+v", regs)
	}

	leak := allFixtures()
	leak["internal/kernels/BENCH_kernels.json"] = strings.Replace(kernelsFixture,
		`"speedup": 2.8, "new_allocs_op": 2`, `"speedup": 2.8, "new_allocs_op": 40`, 1)
	metrics, _, err = Compare(base, writeTree(t, leak))
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(metrics)
	if len(regs) != 1 || regs[0].Name != "combine_allocs_op" {
		t.Fatalf("alloc leak not caught: %+v", regs)
	}
}

// TestGateCatchesPlannerRegressions: a planner that stops beating the
// labelprop baseline (speedup collapse), a lowround kernel that grows
// extra communication, and a win-rate collapse must each fail; losing
// one coin-flip win out of the batch must not.
func TestGateCatchesPlannerRegressions(t *testing.T) {
	base := writeTree(t, allFixtures())
	for _, tc := range []struct {
		name     string
		from, to string
		want     string // regressed metric name; "" = must pass
	}{
		{"speedup collapse", `"speedup": 16.58`, `"speedup": 1.05`, "high_diameter_speedup"},
		{"shared path regressed", `"speedup": 3.32`, `"speedup": 0.9`, "small_graph_speedup"},
		{"comm volume growth", `"comm_volume": 6180`, `"comm_volume": 9000`, "lowround_comm_volume"},
		{"wrong component count", `"components": 1`, `"components": 2`, "lowround_components"},
		{"win rate collapse", `"win_rate": 1`, `"win_rate": 0.3`, "win_rate"},
		{"one lost win", `"win_rate": 1`, `"win_rate": 0.875`, ""},
		{"error drift is informational", `"mean_abs_err": 1.37`, `"mean_abs_err": 4.2`, ""},
	} {
		files := allFixtures()
		files["internal/service/BENCH_planner.json"] = strings.Replace(plannerFixture, tc.from, tc.to, 1)
		metrics, _, err := Compare(base, writeTree(t, files))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		regs := Regressions(metrics)
		if tc.want == "" {
			if len(regs) != 0 {
				t.Fatalf("%s: unexpected regressions %+v", tc.name, regs)
			}
			continue
		}
		if len(regs) != 1 || regs[0].Name != tc.want {
			t.Fatalf("%s: want exactly %s to regress, got %+v", tc.name, tc.want, regs)
		}
	}
}

// TestGateMissingCurrentFails: a baseline whose fresh measurement is
// missing means the bench silently didn't run — that's an error, not a
// pass.
func TestGateMissingCurrentFails(t *testing.T) {
	base := writeTree(t, allFixtures())
	curFiles := allFixtures()
	delete(curFiles, "internal/kernels/BENCH_kernels.json")
	cur := writeTree(t, curFiles)
	if _, _, err := Compare(base, cur); err == nil {
		t.Fatal("missing current measurement passed")
	}
}

// TestGateCatchesFleetCountDrift: the self-heal scenario counts are
// deterministic, so any drift (here a second failover) is an exact-match
// failure — no tolerance band.
func TestGateCatchesFleetCountDrift(t *testing.T) {
	base := writeTree(t, allFixtures())
	drift := allFixtures()
	drift["internal/shard/BENCH_fleet.json"] = strings.Replace(fleetFixture,
		`"queries_failed_over": 1`, `"queries_failed_over": 2`, 1)
	cur := writeTree(t, drift)
	metrics, _, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(metrics)
	if len(regs) != 1 || regs[0].File != "fleet" || regs[0].Name != "queries_failed_over" {
		t.Fatalf("regressions = %+v, want exactly fleet/queries_failed_over", regs)
	}
}

// TestGateCatchesWireCompressionLoss: the wire compression ratio is a
// deterministic property of the payloads and the codec choice, so a
// collapse toward 1 (codec silently disabled or misnegotiated) is an
// exact-class failure on any machine.
func TestGateCatchesWireCompressionLoss(t *testing.T) {
	base := writeTree(t, allFixtures())
	flat := allFixtures()
	flat["internal/transport/BENCH_transport.json"] = strings.Replace(transportFixture,
		`"compression_ratio": 3.87`, `"compression_ratio": 1.02`, 1)
	metrics, _, err := Compare(base, writeTree(t, flat))
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(metrics)
	if len(regs) != 1 || regs[0].Name != "compression_ratio/tcp/codec=true/p=2/w=1024" {
		t.Fatalf("regressions = %+v, want exactly the compression ratio", regs)
	}
}

// TestGateCatchesSocketTaxBlowup: the TCP-over-local cost ratio is
// measured same-machine in one run, so a ~4× blowup of the wire path
// relative to the in-process fabric must fail even though both raw
// timings are informational. (Moderate shifts sit inside the gate's
// Abs slack, which exists to absorb core-count-dependent speedup of
// the local-fabric denominator across machines.)
func TestGateCatchesSocketTaxBlowup(t *testing.T) {
	base := writeTree(t, allFixtures())
	slow := allFixtures()
	slow["internal/transport/BENCH_transport.json"] = strings.Replace(transportFixture,
		`"ns_per_superstep": 15546`, `"ns_per_superstep": 62000`, 1)
	metrics, _, err := Compare(base, writeTree(t, slow))
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(metrics)
	if len(regs) != 1 || regs[0].Name != "socket_tax/p=2/w=1024" {
		t.Fatalf("regressions = %+v, want exactly the socket tax", regs)
	}
}

// TestGateSkipsMissingBaseline: a baseline not committed yet is
// skipped, not failed.
func TestGateSkipsMissingBaseline(t *testing.T) {
	baseFiles := allFixtures()
	delete(baseFiles, "internal/transport/BENCH_transport.json")
	base := writeTree(t, baseFiles)
	cur := writeTree(t, allFixtures())
	metrics, skipped, err := Compare(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "internal/transport/BENCH_transport.json" {
		t.Fatalf("skipped = %v", skipped)
	}
	if len(metrics) == 0 {
		t.Fatal("no metrics from the remaining baselines")
	}
}

// TestRenderTable: the markdown is well-formed and flags the failure.
func TestRenderTable(t *testing.T) {
	var sb strings.Builder
	RenderTable(&sb, []Metric{
		{File: "service", Name: "cache_speedup/cc", Base: 20, Cur: 10, Tol: tolRatio, Better: +1, Critical: true},
		{File: "bsp", Name: "time_sec/cc/p=4", Base: 0.1, Cur: 0.2, Better: -1},
	}, []string{"internal/kernels/BENCH_kernels.json"})
	out := sb.String()
	for _, want := range []string{"**REGRESSION**", "| info |", "skipped (no baseline)", "-50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
