// Command verify reproduces the artifact's correctness methodology
// (§A.6.2): ① corner-case graphs with known, deterministic minimum cut
// values; ② cross-checks of the randomized algorithms against the
// deterministic Stoer–Wagner baseline on random inputs; ③ multi-seed
// consistency — with per-run success probability ≥ 0.9 and k independent
// seeds agreeing, the probability that all are wrong is ≤ (1-0.9)^k;
// ④ approximation-ratio audit of the approximate cut; ⑤ connected
// components checked against the traversal baseline.
//
// Exit status 0 means every check passed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
)

var failures int

func check(ok bool, format string, args ...any) {
	if ok {
		fmt.Printf("  ok   "+format+"\n", args...)
	} else {
		failures++
		fmt.Printf("  FAIL "+format+"\n", args...)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	var (
		p     = flag.Int("p", 4, "virtual processors")
		seed  = flag.Uint64("seed", 1, "base PRNG seed")
		seeds = flag.Int("seeds", 5, "independent seeds for consistency checks")
		quick = flag.Bool("quick", false, "smaller random instances")
	)
	flag.Parse()

	fmt.Println("== corner cases with known minimum cuts ==")
	corner := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"cycle(64,w=2)", gen.Cycle(64, 2), 4},
		{"path(32,w=5)", gen.Path(32, 5), 5},
		{"star(24,w=3)", gen.Star(24, 3), 3},
		{"complete(12,w=1)", gen.Complete(12, 1), 11},
		{"twocliques(12,k=3)", gen.TwoCliques(12, 3, 4, 1), 3},
		{"dumbbell(16)", gen.Dumbbell(16, 4, 1), 1},
		{"grid(8x8)", gen.Grid(8, 8, 1), 2},
	}
	for _, c := range corner {
		res, err := core.MinCut(c.g, core.Options{Processors: *p, Seed: *seed, SuccessProb: 0.95})
		if err != nil {
			log.Fatal(err)
		}
		check(res.Value == c.want && c.g.CutValue(res.Side) == res.Value,
			"%-20s cut=%d want=%d certificate=%v", c.name, res.Value, c.want, c.g.CutValue(res.Side) == res.Value)
	}

	fmt.Println("== randomized vs deterministic baseline (Stoer–Wagner) ==")
	n, m := 64, 400
	if *quick {
		n, m = 32, 160
	}
	for s := uint64(0); s < 4; s++ {
		g := gen.ErdosRenyiM(n, m, *seed+s, gen.Config{MaxWeight: 5})
		if !g.IsConnected() {
			continue
		}
		want := mincut.StoerWagner(g).Value
		res, err := core.MinCut(g, core.Options{Processors: *p, Seed: *seed + 100 + s, SuccessProb: 0.95})
		if err != nil {
			log.Fatal(err)
		}
		check(res.Value == want, "ER(n=%d,m=%d,seed=%d): parallel=%d SW=%d", n, m, *seed+s, res.Value, want)
	}

	fmt.Println("== multi-seed consistency (artifact §A.6.2) ==")
	big := gen.WattsStrogatz(n*8, 16, 0.3, *seed, gen.Config{MaxWeight: 3})
	var values []uint64
	for s := 0; s < *seeds; s++ {
		res, err := core.MinCut(big, core.Options{Processors: *p, Seed: *seed + uint64(s)*7919})
		if err != nil {
			log.Fatal(err)
		}
		values = append(values, res.Value)
	}
	allSame := true
	for _, v := range values {
		if v != values[0] {
			allSame = false
		}
	}
	check(allSame, "WS(n=%d): %d independent seeds agree on cut %d (P[all wrong] <= 0.1^%d)",
		big.N, *seeds, values[0], *seeds)

	fmt.Println("== approximation ratio audit ==")
	for _, c := range corner {
		res, err := core.ApproxMinCut(c.g, core.Options{Processors: *p, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(res.Value) / float64(c.want)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		check(ratio <= 11, "%-20s approx=%d exact=%d ratio=%.1f (artifact observed < 11)",
			c.name, res.Value, c.want, ratio)
	}

	fmt.Println("== connected components vs traversal baseline ==")
	for s := uint64(0); s < 3; s++ {
		g := gen.ErdosRenyiM(n*10, m*2, *seed+s, gen.Config{})
		want := cc.Sequential(g).Count
		res, err := core.ConnectedComponents(g, core.Options{Processors: *p, Seed: *seed + s})
		if err != nil {
			log.Fatal(err)
		}
		check(res.Count == want, "ER(n=%d,m=%d): parallel=%d BFS=%d", g.N, g.M(), res.Count, want)
	}

	if failures > 0 {
		fmt.Printf("\n%d check(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall checks passed")
}
