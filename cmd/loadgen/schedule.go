package main

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Request is one scheduled query. The whole schedule is a pure function
// of ScheduleConfig (notably Seed), so two loadgen runs with the same
// flags replay byte-identical traffic — the property the CI load job
// and the report's schedule fingerprint lean on.
type Request struct {
	// At is the open-loop arrival offset from the run's start. Arrivals
	// are Poisson: exponential gaps at the configured rate, fired on
	// schedule regardless of how fast earlier requests complete.
	At        time.Duration
	Graph     string
	Algorithm string
	// Seed selects the kernel's RNG stream — and, because it is part of
	// the cache key, whether the request can hit the result cache. Warm
	// requests draw from a 4-seed pool per (graph, algorithm); cold
	// requests get a unique seed nothing else shares.
	Seed      uint64
	TimeoutMS int64
	// Fault marks a deliberately invalid request ("unknown_graph" or
	// "bad_algorithm") exercising the daemon's error paths.
	Fault string
}

// ScheduleConfig pins down every randomized choice the generator makes.
type ScheduleConfig struct {
	Seed        int64
	QPS         float64
	Duration    time.Duration
	Graphs      int
	GraphPrefix string
	// ZipfS is the Zipf skew (> 1) of graph popularity: graph 0 is the
	// hottest, the tail barely queried — the shape that makes an LRU
	// result cache worth measuring.
	ZipfS    float64
	Mix      Mix
	ColdFrac float64
	// Deadlines are drawn log-uniformly from [DeadlineMin, DeadlineMax].
	DeadlineMin time.Duration
	DeadlineMax time.Duration
	FaultFrac   float64
}

// Mix is the per-algorithm traffic split; the three fractions are
// normalized at build time.
type Mix struct {
	CC        float64
	MinCut    float64
	ApproxCut float64
}

// ParseMix parses "cc=0.7,mincut=0.2,approxcut=0.1".
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: bad mix term %q (want alg=frac)", part)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return m, fmt.Errorf("loadgen: bad mix fraction %q", v)
		}
		switch k {
		case "cc":
			m.CC = f
		case "mincut":
			m.MinCut = f
		case "approxcut":
			m.ApproxCut = f
		default:
			return m, fmt.Errorf("loadgen: unknown algorithm %q in mix", k)
		}
	}
	if m.CC+m.MinCut+m.ApproxCut <= 0 {
		return m, fmt.Errorf("loadgen: mix %q selects no traffic", s)
	}
	return m, nil
}

func (c ScheduleConfig) validate() error {
	switch {
	case c.QPS <= 0:
		return fmt.Errorf("loadgen: qps must be > 0")
	case c.Duration <= 0:
		return fmt.Errorf("loadgen: duration must be > 0")
	case c.Graphs <= 0:
		return fmt.Errorf("loadgen: graphs must be > 0")
	case c.ZipfS <= 1:
		return fmt.Errorf("loadgen: zipf skew must be > 1")
	case c.ColdFrac < 0 || c.ColdFrac > 1:
		return fmt.Errorf("loadgen: cold-frac must be in [0,1]")
	case c.FaultFrac < 0 || c.FaultFrac > 1:
		return fmt.Errorf("loadgen: fault-frac must be in [0,1]")
	case c.DeadlineMin <= 0 || c.DeadlineMax < c.DeadlineMin:
		return fmt.Errorf("loadgen: need 0 < deadline-min <= deadline-max")
	}
	return nil
}

// GraphName is the registry name of the i-th generated graph.
func (c ScheduleConfig) GraphName(i int) string {
	return fmt.Sprintf("%s%d", c.GraphPrefix, i)
}

// BuildSchedule generates the full open-loop arrival schedule. All
// randomness flows through one seeded source, consumed in a fixed
// order, so the output is deterministic across runs and platforms.
func BuildSchedule(c ScheduleConfig) ([]Request, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(r, c.ZipfS, 1, uint64(c.Graphs-1))

	total := c.Mix.CC + c.Mix.MinCut + c.Mix.ApproxCut
	ccCut := c.Mix.CC / total
	mcCut := ccCut + c.Mix.MinCut/total

	logSpread := math.Log(float64(c.DeadlineMax) / float64(c.DeadlineMin))

	var reqs []Request
	coldSeed := uint64(1_000_000)
	at := time.Duration(0)
	for {
		// Exponential inter-arrival gap at rate QPS (open-loop Poisson).
		gap := time.Duration(-math.Log(1-r.Float64()) / c.QPS * float64(time.Second))
		at += gap
		if at > c.Duration {
			break
		}
		req := Request{At: at, Graph: c.GraphName(int(zipf.Uint64()))}
		switch u := r.Float64(); {
		case u < ccCut:
			req.Algorithm = "cc"
		case u < mcCut:
			req.Algorithm = "mincut"
		default:
			req.Algorithm = "approxcut"
		}
		if r.Float64() < c.ColdFrac {
			coldSeed++
			req.Seed = coldSeed
		} else {
			req.Seed = 1 + uint64(r.Intn(4))
		}
		req.TimeoutMS = int64(float64(c.DeadlineMin) * math.Exp(r.Float64()*logSpread) / float64(time.Millisecond))
		if r.Float64() < c.FaultFrac {
			if r.Intn(2) == 0 {
				req.Fault = "unknown_graph"
				req.Graph = c.GraphPrefix + "no-such-graph"
			} else {
				req.Fault = "bad_algorithm"
				req.Algorithm = "spectral-bisect"
			}
		}
		reqs = append(reqs, req)
	}
	return reqs, nil
}

// Fingerprint hashes the full schedule — every field of every request —
// into a short hex token. Two runs reporting the same fingerprint
// replayed identical traffic.
func Fingerprint(reqs []Request) string {
	h := fnv.New64a()
	for _, q := range reqs {
		fmt.Fprintf(h, "%d|%s|%s|%d|%d|%s\n", q.At.Nanoseconds(), q.Graph, q.Algorithm, q.Seed, q.TimeoutMS, q.Fault)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// popularity returns queries-per-graph sorted hot-first, for the report.
func popularity(reqs []Request) []int {
	counts := map[string]int{}
	for _, q := range reqs {
		if q.Fault == "" {
			counts[q.Graph]++
		}
	}
	out := make([]int, 0, len(counts))
	for _, n := range counts {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
