package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// outcomeClass buckets an HTTP exchange for the report's outcome_mix.
// The buckets are chosen to be DETERMINISTIC for a fixed schedule
// against a healthy daemon: a cache hit, a coalesced wait, and a fresh
// execution are all "ok", because which of the three a given request
// lands on depends on timing and on what earlier runs left in the
// cache — the served_by section reports that split informationally.
type outcomeClass string

const (
	classOK          outcomeClass = "ok"
	classClientError outcomeClass = "client_error" // 400, 404 — the -fault-frac traffic
	classThrottled   outcomeClass = "throttled"    // 429 (quota or shed load)
	classTimeout     outcomeClass = "timeout"      // 408, 504
	classServerError outcomeClass = "server_error" // 5xx
	classTransport   outcomeClass = "transport"    // no HTTP response at all
)

func classify(status int, transportErr bool) outcomeClass {
	switch {
	case transportErr:
		return classTransport
	case status == 200:
		return classOK
	case status == 400 || status == 404:
		return classClientError
	case status == 429:
		return classThrottled
	case status == 408 || status == 504:
		return classTimeout
	case status >= 500:
		return classServerError
	default:
		return classClientError
	}
}

// outcomeResult is one request's measured exchange.
type outcomeResult struct {
	Class    outcomeClass
	Served   string // engine outcome of a 200: executed | cache_hit | coalesced
	Degraded bool
	Latency  time.Duration
}

// LatencySummary is the percentile block, in milliseconds.
type LatencySummary struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Report is the BENCH_load.json schema.
type Report struct {
	Name                string         `json:"name"`
	Target              string         `json:"target"`
	Seed                int64          `json:"seed"`
	ScheduleFingerprint string         `json:"schedule_fingerprint"`
	Requests            int            `json:"requests"`
	WallSec             float64        `json:"wall_sec"`
	OfferedQPS          float64        `json:"offered_qps"`
	ThroughputRPS       float64        `json:"throughput_rps"`
	Latency             LatencySummary `json:"latency"`
	// OutcomeMix is the deterministic section: same seed + same flags
	// against the same daemon → identical mix, run after run.
	OutcomeMix map[string]int `json:"outcome_mix"`
	// ServedBy splits the ok bucket by engine outcome. Timing- and
	// cache-state-dependent, so informational only.
	ServedBy     map[string]int `json:"served_by"`
	Degraded     int            `json:"degraded"`
	CacheHitRate float64        `json:"cache_hit_rate"`
	// GraphPopularity is queries per graph, hot-first — the realized
	// Zipf curve.
	GraphPopularity []int `json:"graph_popularity"`
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds()) / 1e3
}

// BuildReport aggregates per-request results into the report.
func BuildReport(target string, cfg ScheduleConfig, schedule []Request, results []outcomeResult, wall time.Duration) Report {
	rep := Report{
		Name:                "load",
		Target:              target,
		Seed:                cfg.Seed,
		ScheduleFingerprint: Fingerprint(schedule),
		Requests:            len(schedule),
		WallSec:             wall.Seconds(),
		OfferedQPS:          cfg.QPS,
		OutcomeMix:          map[string]int{},
		ServedBy:            map[string]int{},
		GraphPopularity:     popularity(schedule),
	}
	var okLat []time.Duration
	for _, r := range results {
		rep.OutcomeMix[string(r.Class)]++
		if r.Class == classOK {
			okLat = append(okLat, r.Latency)
			if r.Served != "" {
				rep.ServedBy[r.Served]++
			}
			if r.Degraded {
				rep.Degraded++
			}
		}
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	rep.Latency = LatencySummary{
		P50: percentile(okLat, 0.50),
		P90: percentile(okLat, 0.90),
		P95: percentile(okLat, 0.95),
		P99: percentile(okLat, 0.99),
		Max: percentile(okLat, 1.0),
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(len(okLat)) / wall.Seconds()
	}
	if n := rep.OutcomeMix[string(classOK)]; n > 0 {
		rep.CacheHitRate = float64(rep.ServedBy["cache_hit"]) / float64(n)
	}
	return rep
}

// WriteJSON writes the report to path (or stdout for "-").
func (r Report) WriteJSON(path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render prints the human summary the CI job tails into its log.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d requests in %.2fs against %s (seed %d, schedule %s)\n",
		r.Requests, r.WallSec, r.Target, r.Seed, r.ScheduleFingerprint)
	fmt.Fprintf(w, "  throughput  %.1f ok-responses/s (offered %.1f qps)\n", r.ThroughputRPS, r.OfferedQPS)
	fmt.Fprintf(w, "  latency     p50 %.2fms  p90 %.2fms  p95 %.2fms  p99 %.2fms  max %.2fms\n",
		r.Latency.P50, r.Latency.P90, r.Latency.P95, r.Latency.P99, r.Latency.Max)
	fmt.Fprintf(w, "  outcomes   ")
	for _, k := range sortedKeys(r.OutcomeMix) {
		fmt.Fprintf(w, " %s=%d", k, r.OutcomeMix[k])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  served_by  ")
	for _, k := range sortedKeys(r.ServedBy) {
		fmt.Fprintf(w, " %s=%d", k, r.ServedBy[k])
	}
	fmt.Fprintf(w, "  (cache hit rate %.1f%%, degraded %d)\n", 100*r.CacheHitRate, r.Degraded)
}

func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
