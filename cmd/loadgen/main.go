// Command loadgen replays realistic mixed traffic against a live camcd
// (single process or sharded fleet) and writes a BENCH_load.json
// report.
//
// The workload model:
//
//   - open-loop Poisson arrivals at -qps for -duration: requests fire
//     on schedule whether or not earlier ones have completed, so an
//     overloaded daemon shows up as queueing latency and 429s instead
//     of silently slowing the generator down (closed-loop coordinated
//     omission);
//   - Zipf-distributed graph popularity over -graphs uploaded graphs
//     (graph 0 hottest), the shape that exercises the LRU result cache
//     and plan cache realistically;
//   - a -mix of cc/mincut/approxcut queries, a -cold-frac of
//     cache-defeating unique seeds, and per-request deadlines drawn
//     log-uniformly from [-deadline-min, -deadline-max];
//   - optionally a -fault-frac of deliberately invalid requests
//     (unknown graph, unknown algorithm) to keep the error paths hot.
//
// Everything random derives from -seed: two runs with the same flags
// replay identical request schedules (the report carries a schedule
// fingerprint to prove it) and, against a healthy daemon, produce an
// identical outcome_mix section. Latencies, throughput, and the
// executed/cache_hit/coalesced split vary run to run and are reported
// informationally.
//
// Exit status is non-zero when the run saw transport or 5xx failures
// beyond -max-error-frac, so CI can use a smoke run as a gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		target      = flag.String("target", "http://127.0.0.1:8387", "camcd base URL (single-process daemon or fleet frontend)")
		token       = flag.String("token", "", "API token for a multi-tenant daemon (sent as Authorization: Bearer)")
		seed        = flag.Int64("seed", 1, "master seed; fixes the full request schedule")
		qps         = flag.Float64("qps", 50, "open-loop arrival rate")
		duration    = flag.Duration("duration", 10*time.Second, "length of the arrival schedule")
		graphs      = flag.Int("graphs", 8, "number of graphs to upload and draw queries over")
		graphN      = flag.Int("graph-n", 256, "vertices per generated graph")
		graphPrefix = flag.String("graph-prefix", "loadgen-", "registry name prefix for uploaded graphs")
		zipfS       = flag.Float64("zipf", 1.2, "Zipf skew of graph popularity (> 1)")
		mixSpec     = flag.String("mix", "cc=0.70,mincut=0.15,approxcut=0.15", "algorithm traffic split")
		coldFrac    = flag.Float64("cold-frac", 0.25, "fraction of queries with a unique cache-defeating seed")
		dlMin       = flag.Duration("deadline-min", 2*time.Second, "shortest per-request deadline")
		dlMax       = flag.Duration("deadline-max", 30*time.Second, "longest per-request deadline")
		faultFrac   = flag.Float64("fault-frac", 0, "fraction of deliberately invalid requests")
		out         = flag.String("out", "BENCH_load.json", "report path ('-' for stdout)")
		maxErrFrac  = flag.Float64("max-error-frac", 0, "largest tolerated fraction of transport/5xx failures before exit 1")
		skipUpload  = flag.Bool("skip-upload", false, "assume the graphs are already registered")
		quick       = flag.Bool("quick", false, "CI smoke preset: short run, small graphs (explicit flags still win)")
	)
	flag.Parse()

	if *quick {
		applyQuickPreset()
	}
	mix, err := ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ScheduleConfig{
		Seed:        *seed,
		QPS:         *qps,
		Duration:    *duration,
		Graphs:      *graphs,
		GraphPrefix: *graphPrefix,
		ZipfS:       *zipfS,
		Mix:         mix,
		ColdFrac:    *coldFrac,
		DeadlineMin: *dlMin,
		DeadlineMax: *dlMax,
		FaultFrac:   *faultFrac,
	}
	schedule, err := BuildSchedule(cfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("schedule: %d requests over %s (fingerprint %s)", len(schedule), *duration, Fingerprint(schedule))

	client := &http.Client{
		Timeout: *dlMax + 15*time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
	runner := &runner{client: client, target: *target, token: *token}

	if !*skipUpload {
		if err := runner.uploadGraphs(cfg, *graphN); err != nil {
			log.Fatal(err)
		}
		log.Printf("uploaded %d graphs of %d vertices", *graphs, *graphN)
	}

	results, wall := runner.replay(schedule)
	rep := BuildReport(*target, cfg, schedule, results, wall)
	rep.Render(os.Stderr)
	if err := rep.WriteJSON(*out); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("report written to %s", *out)
	}

	failures := rep.OutcomeMix[string(classTransport)] + rep.OutcomeMix[string(classServerError)]
	if frac := float64(failures) / float64(max(1, rep.Requests)); frac > *maxErrFrac {
		log.Fatalf("FAIL: %d/%d requests lost to transport or 5xx errors (%.1f%% > %.1f%% tolerated)",
			failures, rep.Requests, 100*frac, 100**maxErrFrac)
	}
	if rep.OutcomeMix[string(classOK)] == 0 {
		log.Fatal("FAIL: no request succeeded")
	}
}

// applyQuickPreset shrinks the run for CI smoke: flags the user set
// explicitly keep their values.
func applyQuickPreset() {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	preset := map[string]string{
		"qps":      "80",
		"duration": "3s",
		"graphs":   "4",
		"graph-n":  "96",
	}
	for name, val := range preset {
		if !set[name] {
			if err := flag.Set(name, val); err != nil {
				log.Fatal(err)
			}
		}
	}
}

type runner struct {
	client *http.Client
	target string
	token  string
}

func (r *runner) do(req *http.Request) (*http.Response, error) {
	if r.token != "" {
		req.Header.Set("Authorization", "Bearer "+r.token)
	}
	return r.client.Do(req)
}

// uploadGraphs registers the query targets: Watts–Strogatz small-world
// graphs (connected by construction, non-trivial min cuts), weights in
// [1, 8], one deterministic seed per graph.
func (r *runner) uploadGraphs(cfg ScheduleConfig, n int) error {
	for i := 0; i < cfg.Graphs; i++ {
		g := gen.WattsStrogatz(n, 4, 0.1, uint64(i+1), gen.Config{MaxWeight: 8})
		var buf bytes.Buffer
		if err := graph.WriteEdgeList(&buf, g); err != nil {
			return err
		}
		url := fmt.Sprintf("%s/v1/graphs?name=%s", r.target, cfg.GraphName(i))
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain")
		resp, err := r.do(req)
		if err != nil {
			return fmt.Errorf("upload %s: %w", cfg.GraphName(i), err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("upload %s: status %d: %s", cfg.GraphName(i), resp.StatusCode, body)
		}
	}
	return nil
}

// queryBody is the wire form of one scheduled query.
func queryBody(q Request) []byte {
	body, _ := json.Marshal(map[string]interface{}{
		"graph":      q.Graph,
		"algorithm":  q.Algorithm,
		"seed":       q.Seed,
		"timeout_ms": q.TimeoutMS,
	})
	return body
}

// replay fires the schedule open-loop: the dispatcher sleeps to each
// arrival offset and launches the request in its own goroutine, so a
// slow daemon never delays later arrivals.
func (r *runner) replay(schedule []Request) ([]outcomeResult, time.Duration) {
	results := make([]outcomeResult, len(schedule))
	var wg sync.WaitGroup
	start := time.Now()
	for i, q := range schedule {
		if d := q.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, q Request) {
			defer wg.Done()
			results[i] = r.one(q)
		}(i, q)
	}
	wg.Wait()
	return results, time.Since(start)
}

func (r *runner) one(q Request) outcomeResult {
	req, err := http.NewRequest(http.MethodPost, r.target+"/v1/query", bytes.NewReader(queryBody(q)))
	if err != nil {
		return outcomeResult{Class: classTransport}
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := r.do(req)
	lat := time.Since(t0)
	if err != nil {
		return outcomeResult{Class: classTransport, Latency: lat}
	}
	defer resp.Body.Close()
	out := outcomeResult{Class: classify(resp.StatusCode, false), Latency: lat}
	if resp.StatusCode == http.StatusOK {
		var qr struct {
			Outcome  string `json:"outcome"`
			Degraded bool   `json:"degraded"`
		}
		if json.NewDecoder(resp.Body).Decode(&qr) == nil {
			out.Served = qr.Outcome
			out.Degraded = qr.Degraded
		}
	}
	io.Copy(io.Discard, resp.Body)
	return out
}
