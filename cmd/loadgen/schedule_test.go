package main

import (
	"reflect"
	"testing"
	"time"
)

func testCfg() ScheduleConfig {
	return ScheduleConfig{
		Seed:        7,
		QPS:         200,
		Duration:    5 * time.Second,
		Graphs:      8,
		GraphPrefix: "loadgen-",
		ZipfS:       1.2,
		Mix:         Mix{CC: 0.7, MinCut: 0.15, ApproxCut: 0.15},
		ColdFrac:    0.25,
		DeadlineMin: 2 * time.Second,
		DeadlineMax: 30 * time.Second,
		FaultFrac:   0.05,
	}
}

// TestScheduleDeterminism is the acceptance property: same seed, same
// flags → byte-identical schedule and fingerprint.
func TestScheduleDeterminism(t *testing.T) {
	a, err := BuildSchedule(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two builds from the same config differ")
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprints differ for identical schedules")
	}

	other := testCfg()
	other.Seed = 8
	c, err := BuildSchedule(other)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

// TestScheduleShape sanity-checks the workload model: arrival count
// near qps*duration, monotone arrival times, mix and fault fractions
// in the right ballpark, Zipf head heavier than the tail.
func TestScheduleShape(t *testing.T) {
	cfg := testCfg()
	reqs, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.QPS * cfg.Duration.Seconds()
	if n := float64(len(reqs)); n < 0.8*want || n > 1.2*want {
		t.Fatalf("got %d requests, want ~%.0f", len(reqs), want)
	}

	var last time.Duration
	counts := map[string]int{}
	faults, cold := 0, 0
	for _, q := range reqs {
		if q.At < last {
			t.Fatal("arrival times not monotone")
		}
		last = q.At
		if q.At > cfg.Duration {
			t.Fatalf("arrival %s past duration %s", q.At, cfg.Duration)
		}
		if q.Fault != "" {
			faults++
			continue
		}
		counts[q.Algorithm]++
		if q.Seed >= 1_000_000 {
			cold++
		} else if q.Seed < 1 || q.Seed > 4 {
			t.Fatalf("warm seed %d outside the 4-seed pool", q.Seed)
		}
		if q.TimeoutMS < cfg.DeadlineMin.Milliseconds() || q.TimeoutMS > cfg.DeadlineMax.Milliseconds()+1 {
			t.Fatalf("deadline %dms outside [%s, %s]", q.TimeoutMS, cfg.DeadlineMin, cfg.DeadlineMax)
		}
	}
	n := len(reqs)
	if f := float64(faults) / float64(n); f < 0.02 || f > 0.10 {
		t.Fatalf("fault fraction %.3f, want ~0.05", f)
	}
	if f := float64(counts["cc"]) / float64(n-faults); f < 0.6 || f > 0.8 {
		t.Fatalf("cc fraction %.3f, want ~0.7", f)
	}
	if f := float64(cold) / float64(n-faults); f < 0.18 || f > 0.32 {
		t.Fatalf("cold fraction %.3f, want ~0.25", f)
	}

	pop := popularity(reqs)
	if len(pop) < 2 || pop[0] <= pop[len(pop)-1] {
		t.Fatalf("popularity not Zipf-skewed: %v", pop)
	}
}

// TestScheduleFaultShapes: fault requests target either a nonexistent
// graph or a nonexistent algorithm — never a valid pair.
func TestScheduleFaultShapes(t *testing.T) {
	cfg := testCfg()
	cfg.FaultFrac = 1.0
	reqs, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range reqs {
		switch q.Fault {
		case "unknown_graph":
			if q.Graph != "loadgen-no-such-graph" {
				t.Fatalf("unknown_graph fault targets %q", q.Graph)
			}
		case "bad_algorithm":
			switch q.Algorithm {
			case "cc", "mincut", "approxcut":
				t.Fatalf("bad_algorithm fault uses valid algorithm %q", q.Algorithm)
			}
		default:
			t.Fatalf("request with fault-frac=1 has no fault: %+v", q)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("cc=0.5,mincut=0.5")
	if err != nil || m.CC != 0.5 || m.MinCut != 0.5 || m.ApproxCut != 0 {
		t.Fatalf("ParseMix: %+v, %v", m, err)
	}
	for _, bad := range []string{"", "cc=0,mincut=0", "laplacian=1", "cc=x"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	for _, mutate := range []func(*ScheduleConfig){
		func(c *ScheduleConfig) { c.QPS = 0 },
		func(c *ScheduleConfig) { c.Duration = 0 },
		func(c *ScheduleConfig) { c.Graphs = 0 },
		func(c *ScheduleConfig) { c.ZipfS = 1.0 },
		func(c *ScheduleConfig) { c.ColdFrac = 1.5 },
		func(c *ScheduleConfig) { c.DeadlineMin = 0 },
		func(c *ScheduleConfig) { c.DeadlineMax = time.Millisecond },
	} {
		cfg := testCfg()
		mutate(&cfg)
		if _, err := BuildSchedule(cfg); err == nil {
			t.Fatalf("invalid config accepted: %+v", cfg)
		}
	}
}
