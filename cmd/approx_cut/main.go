// Command approx_cut estimates the global minimum cut within an O(log n)
// factor using near-linear work (named after the artifact's binary). It
// prints an artifact-style CSV profile line.
//
// Usage:
//
//	approx_cut -graph gen:rmat:n=4096,d=512 -p 8 -seed 3
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("approx_cut: ")
	var (
		graphSpec = flag.String("graph", "", "input file or gen:TYPE:params spec (required)")
		p         = flag.Int("p", 0, "virtual processors (default: CPUs)")
		seed      = flag.Uint64("seed", 1, "PRNG seed")
		pipelined = flag.Bool("pipelined", false, "use the fully pipelined O(1)-superstep variant")
	)
	flag.Parse()
	if *graphSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, name, err := cli.LoadGraph(*graphSpec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.ApproxMinCut(g, core.Options{Processors: *p, Seed: *seed, Pipelined: *pipelined})
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.Record{
		Input: name, Seed: *seed, N: g.N, M: g.M(),
		Time: res.Stats.Time, MPITime: res.Stats.CommTime,
		Algorithm: "approx_cut", P: res.Stats.P, Result: res.Value,
		Supersteps: res.Stats.Supersteps, CommVolume: res.Stats.CommVolume,
	}
	if err := rec.WriteProfile(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate min cut: %d (%d sparsity levels, %.3fs, %.1f%% comm)\n",
		res.Value, res.Iterations, res.Stats.Time.Seconds(), 100*res.Stats.CommFraction)
}
