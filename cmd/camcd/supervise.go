package main

// The -supervise mode: a tiny process supervisor that keeps one camcd
// worker alive. The supervisor re-execs itself with -supervise stripped
// and an explicit -incarnation, so a respawned worker rejoins the mesh
// under the same rank with a bumped incarnation number — the surviving
// ranks drain the dead connection and admit the replacement instead of
// rejecting it as a stale duplicate.
//
// Exit-code protocol: transport.CrashExitCode (86) marks a
// fault-injected hard crash (the crash@rank:superstep chaos kind). The
// supervisor recognizes it and respawns WITHOUT the fault spec —
// otherwise the chaos rule would re-fire on the replacement and the
// fleet would crash-loop instead of demonstrating recovery. Any other
// non-zero exit is an organic crash and respawns with flags unchanged.

import (
	"log"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/transport"
)

const (
	superviseBackoffBase = 250 * time.Millisecond
	superviseBackoffCap  = 5 * time.Second
	// A child that survives this long resets the respawn backoff: it was
	// a working process that died, not a start-up crash loop.
	superviseStableAfter = 10 * time.Second
)

// runSupervisor spawns the worker child and respawns it on crash,
// bumping -incarnation each generation. Returns (never) on a clean
// child exit via os.Exit with the child's status.
func runSupervisor(baseIncarnation uint64) {
	self, err := os.Executable()
	if err != nil {
		log.Fatalf("supervise: resolving own binary: %v", err)
	}
	inc := baseIncarnation
	if inc == 0 {
		inc = 1
	}

	// Forward termination signals to the current child and stop
	// respawning: an operator's ctrl-C must take the pair down.
	var child atomic.Pointer[os.Process]
	var quitting atomic.Bool
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		quitting.Store(true)
		if p := child.Load(); p != nil {
			p.Signal(s)
		}
	}()

	stripFaults := false
	backoff := superviseBackoffBase
	for generation := 1; ; generation++ {
		args := childArgs(os.Args[1:], inc, stripFaults)
		cmd := exec.Command(self, args...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if stripFaults {
			cmd.Env = envWithout(faults.EnvVar)
		}
		log.Printf("supervise: generation %d, incarnation %d", generation, inc)
		start := time.Now()
		if err := cmd.Start(); err != nil {
			log.Fatalf("supervise: spawning worker: %v", err)
		}
		child.Store(cmd.Process)
		err = cmd.Wait()
		child.Store(nil)
		code := cmd.ProcessState.ExitCode()
		if err == nil || quitting.Load() {
			log.Printf("supervise: worker exited (status %d), done", code)
			os.Exit(max(code, 0))
		}
		if code == transport.CrashExitCode {
			log.Printf("supervise: worker died from an injected crash (status %d); respawning without the fault spec", code)
			stripFaults = true
		} else {
			log.Printf("supervise: worker died: %v", err)
		}
		if time.Since(start) > superviseStableAfter {
			backoff = superviseBackoffBase
		}
		inc++
		log.Printf("supervise: respawning as incarnation %d in %v", inc, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > superviseBackoffCap {
			backoff = superviseBackoffCap
		}
	}
}

// childArgs rewrites the supervisor's own argv for the child: strip
// -supervise and any prior -incarnation, optionally strip -faults, then
// pin the child's incarnation.
func childArgs(argv []string, inc uint64, stripFaults bool) []string {
	drop := map[string]bool{"supervise": true, "incarnation": true}
	if stripFaults {
		drop["faults"] = true
	}
	out := make([]string, 0, len(argv)+1)
	for i := 0; i < len(argv); i++ {
		arg := argv[i]
		name, hasValue := flagName(arg)
		if name != "" && drop[name] {
			// Boolean flags ("-supervise") never consume the next arg;
			// value flags without '=' ("-incarnation 3") do.
			if !hasValue && name != "supervise" && i+1 < len(argv) && !strings.HasPrefix(argv[i+1], "-") {
				i++
			}
			continue
		}
		out = append(out, arg)
	}
	return append(out, "-incarnation="+utoa(inc), "-supervised")
}

// flagName extracts the bare flag name from "-name", "--name" or
// "-name=value" arguments; non-flag arguments return "".
func flagName(arg string) (name string, hasValue bool) {
	if !strings.HasPrefix(arg, "-") {
		return "", false
	}
	name = strings.TrimLeft(arg, "-")
	if eq := strings.IndexByte(name, '='); eq >= 0 {
		return name[:eq], true
	}
	return name, false
}

// envWithout returns the process environment minus one variable.
func envWithout(key string) []string {
	env := os.Environ()
	out := env[:0]
	for _, kv := range env {
		if !strings.HasPrefix(kv, key+"=") {
			out = append(out, kv)
		}
	}
	return out
}

func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
