// Command camcd is the graph-analytics daemon: it serves the paper's
// communication-avoiding kernels (connected components, approximate and
// exact minimum cut) over HTTP, with a graph registry, an LRU result
// cache, singleflight coalescing of identical in-flight queries, and
// admission control (bounded queue, fixed worker pool, per-request
// deadlines).
//
// It runs in one of three modes:
//
//	camcd                          single process, in-process BSP machine
//	camcd -worker -rank=R -peers=A0,A1,...
//	                               one rank of a shard group; the group's
//	                               ranks form a TCP mesh and execute every
//	                               query as one distributed BSP machine
//	camcd -frontend -shards=U0,U1/U2,U3
//	                               stateless router: places graphs on
//	                               shards by consistent hashing, sends
//	                               queries to shard leaders, merges stats
//
// Adding -supervise to worker mode wraps the worker in a supervisor
// that respawns it after a crash under the same rank with a bumped
// -incarnation, so the surviving ranks admit the replacement and
// re-replicate its shard graphs. A crash with exit status 86
// (transport.CrashExitCode — a fault-injected crash) respawns without
// the fault spec so chaos drills recover instead of crash-looping.
//
// API (identical in every mode):
//
//	POST /v1/graphs?name=NAME&format=edgelist|snap   register a graph
//	GET  /v1/graphs                                  list graphs with versions + fingerprints
//	POST /v1/query                                   {"graph":..., "algorithm":"cc|mincut|approxcut", ...}
//	GET  /v1/stats                                   serving metrics (JSON)
//	GET  /metrics                                    Prometheus exposition
//	GET  /healthz                                    liveness (worker mode: some mesh peer reachable)
//	GET  /readyz                                     readiness (worker mode: every peer up + graph catch-up done)
//
// With -tenants=config.json (single-process or frontend mode) every
// /v1/* request must carry "Authorization: Bearer <token>" for a
// configured tenant and is admitted against that tenant's quotas:
// missing or unknown tokens get 401, exhausted quotas get 429 with
// Retry-After. /healthz and /metrics stay open for probes and scrapers.
//
// See the README section "Running camcd" for curl examples, including a
// 3-process localhost fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/planner"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/tenant"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("camcd: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8387", "HTTP listen address")
		workers     = flag.Int("workers", 0, "kernel worker pool size (0 = CPUs, max 4)")
		queueBound  = flag.Int("queue", 64, "admission-control queue bound")
		cacheCap    = flag.Int("cache", 128, "result cache capacity in entries (-1 disables)")
		maxP        = flag.Int("maxp", 0, "largest per-query BSP machine (0 = CPUs, max 16; single-process mode only)")
		plannerMode = flag.String("planner", "static",
			"query planner mode: off (default kernel + heuristic p), static (cost models fitted at startup), adaptive (also refit from live samples); single-process mode only")
		timeout    = flag.Duration("timeout", 60*time.Second, "default per-query deadline")
		maxTimeout = flag.Duration("max-timeout", 10*time.Minute, "largest honored per-query deadline")
		faultSpec  = flag.String("faults", os.Getenv(faults.EnvVar),
			"fault-injection spec for chaos testing, e.g. 'panic@1:3;drop@1:5' (default $"+faults.EnvVar+"; empty disables)")
		tenantsPath = flag.String("tenants", "", "tenant config JSON enabling multi-tenant auth + quotas (single-process and frontend modes)")

		workerMode  = flag.Bool("worker", false, "run as one rank of a shard group")
		rank        = flag.Int("rank", 0, "this worker's rank within the shard group")
		peers       = flag.String("peers", "", "comma-separated mesh addresses of every rank in the group, index = rank (worker mode)")
		epoch       = flag.Uint64("epoch", 1, "deployment generation; mesh handshakes reject mismatched epochs (worker mode)")
		incarnation = flag.Uint64("incarnation", 1, "this worker process's mesh incarnation; a respawned rank must present a higher value than its predecessor (worker mode)")
		supervise   = flag.Bool("supervise", false, "run a supervisor that respawns this worker on crash with a bumped -incarnation (worker mode)")
		_           = flag.Bool("supervised", false, "internal: marks a process spawned by a -supervise parent")

		frontendMode = flag.Bool("frontend", false, "run as the sharding frontend")
		shardSpec    = flag.String("shards", "", "worker base URLs: shards separated by '/', ranks by ',' — first URL of each shard is its leader (frontend mode)")
	)
	flag.Parse()

	if *workerMode && *frontendMode {
		log.Fatal("-worker and -frontend are mutually exclusive")
	}
	if *supervise {
		if !*workerMode {
			log.Fatal("-supervise applies to -worker mode (the other modes are stateless; use your init system)")
		}
		runSupervisor(*incarnation)
	}

	freg, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	if freg.Enabled() {
		log.Printf("FAULT INJECTION ENABLED: %s — this process will deliberately fail", *faultSpec)
	}

	var tenants *tenant.Registry
	if *tenantsPath != "" {
		if *workerMode {
			// Workers sit behind the frontend inside the trust boundary;
			// tenant enforcement belongs on the public edge only, or the
			// frontend's own token would be double-charged.
			log.Fatal("-tenants applies to single-process and frontend modes, not -worker")
		}
		cfg, err := tenant.LoadConfig(*tenantsPath)
		if err != nil {
			log.Fatal(err)
		}
		tenants = tenant.NewRegistry(cfg)
		log.Printf("multi-tenant mode: %d tenant(s) configured", len(cfg.Tenants))
	}

	if _, err := planner.ParseMode(*plannerMode); err != nil {
		log.Fatal(err)
	}
	if *workerMode || *frontendMode {
		// A shard group's machine size and kernel are fixed by its worker
		// group; per-query planning only applies to in-process execution.
		*plannerMode = "off"
	}

	svcCfg := service.Config{
		Workers:        *workers,
		QueueBound:     *queueBound,
		CacheCapacity:  *cacheCap,
		MaxProcessors:  *maxP,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Faults:         freg,
		Planner:        *plannerMode,
	}

	switch {
	case *frontendMode:
		shards, err := parseShards(*shardSpec)
		if err != nil {
			log.Fatal(err)
		}
		fe, err := shard.NewFrontend(shards)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("frontend over %d shard(s)", len(shards))
		h := fe.Handler()
		if tenants != nil {
			fe.SetTenants(tenants)
			h = service.TenantMiddleware(tenants, h)
		}
		serve(*addr, h, func() {})
	case *workerMode:
		addrs := splitNonEmpty(*peers, ",")
		if len(addrs) == 0 {
			log.Fatal("worker mode needs -peers=addr0,addr1,... (mesh addresses, index = rank)")
		}
		if *rank < 0 || *rank >= len(addrs) {
			log.Fatalf("-rank=%d out of range for %d peers", *rank, len(addrs))
		}
		log.Printf("rank %d/%d joining mesh (epoch %d, incarnation %d), listening for peers on %s",
			*rank, len(addrs), *epoch, *incarnation, addrs[*rank])
		w, err := shard.NewWorker(shard.WorkerConfig{
			Rank:        *rank,
			Addrs:       addrs,
			Epoch:       *epoch,
			Incarnation: *incarnation,
			Faults:      freg,
			Service:     svcCfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("mesh up: %d rank(s)", len(addrs))
		serve(*addr, w.Handler(), w.Close)
	default:
		engine := service.NewEngine(svcCfg)
		if pl := engine.Planner(); pl != nil {
			log.Printf("planner %s: calibrated kernels %v", pl.Mode(), pl.Calibrated())
		}
		serve(*addr, service.NewHandlerOpts(engine, service.HandlerOptions{Tenants: tenants}), engine.Close)
	}
}

// parseShards parses the -shards flag: shard groups separated by '/',
// worker base URLs within a group by ','.
func parseShards(spec string) ([][]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, errors.New("frontend mode needs -shards=url0,url1/url2,... (first URL per shard is the leader)")
	}
	var shards [][]string
	for i, group := range strings.Split(spec, "/") {
		ws := splitNonEmpty(group, ",")
		if len(ws) == 0 {
			return nil, fmt.Errorf("-shards: empty shard group at index %d", i)
		}
		for j, u := range ws {
			if !strings.Contains(u, "://") {
				ws[j] = "http://" + u
			}
		}
		shards = append(shards, ws)
	}
	return shards, nil
}

func splitNonEmpty(s, sep string) []string {
	var out []string
	for _, part := range strings.Split(s, sep) {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serve runs the HTTP server until SIGINT/SIGTERM, then drains: HTTP
// first, then the mode's own teardown (engine drain, worker mesh
// close). The drain is bounded so a long-running kernel (exact min cut
// on a large graph) cannot hold shutdown hostage; per-request deadlines
// cancel stragglers from inside anyway.
func serve(addr string, handler http.Handler, drain func()) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           NewLoggingHandler(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("received %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		drained := make(chan struct{})
		go func() {
			drain()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			log.Print("drain timed out: a kernel is still running, exiting anyway")
		}
	}()

	log.Printf("serving on http://%s (POST /v1/graphs, POST /v1/query, GET /v1/stats)", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Print("bye")
}

// NewLoggingHandler wraps h with one access-log line per request.
func NewLoggingHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
