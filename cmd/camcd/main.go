// Command camcd is the graph-analytics daemon: it serves the paper's
// communication-avoiding kernels (connected components, approximate and
// exact minimum cut) over HTTP, with a graph registry, an LRU result
// cache, singleflight coalescing of identical in-flight queries, and
// admission control (bounded queue, fixed worker pool, per-request
// deadlines).
//
// API:
//
//	POST /v1/graphs?name=NAME&format=edgelist|snap   register a graph
//	POST /v1/query                                   {"graph":..., "algorithm":"cc|mincut|approxcut", ...}
//	GET  /v1/stats                                   serving metrics (JSON)
//	GET  /healthz                                    liveness
//
// See the README section "Running camcd" for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("camcd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:8387", "listen address")
		workers    = flag.Int("workers", 0, "kernel worker pool size (0 = CPUs, max 4)")
		queueBound = flag.Int("queue", 64, "admission-control queue bound")
		cacheCap   = flag.Int("cache", 128, "result cache capacity in entries (-1 disables)")
		maxP       = flag.Int("maxp", 0, "largest per-query BSP machine (0 = CPUs, max 16)")
		timeout    = flag.Duration("timeout", 60*time.Second, "default per-query deadline")
		maxTimeout = flag.Duration("max-timeout", 10*time.Minute, "largest honored per-query deadline")
		faultSpec  = flag.String("faults", os.Getenv(faults.EnvVar),
			"fault-injection spec for chaos testing, e.g. 'panic@1:3;stall@0:2:50ms' (default $"+faults.EnvVar+"; empty disables)")
	)
	flag.Parse()

	freg, err := faults.Parse(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	if freg.Enabled() {
		log.Printf("FAULT INJECTION ENABLED: %s — this process will deliberately fail", *faultSpec)
	}

	engine := service.NewEngine(service.Config{
		Workers:        *workers,
		QueueBound:     *queueBound,
		CacheCapacity:  *cacheCap,
		MaxProcessors:  *maxP,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Faults:         freg,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           NewLoggingHandler(service.NewHandler(engine)),
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("received %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		// Engine.Close drains without cancelling: in-flight kernels finish
		// (and their waiters get real answers) rather than being cut off
		// mid-run. Bound the drain so a long-running kernel (exact min cut
		// on a large graph) cannot hold shutdown hostage; per-request
		// deadlines cancel stragglers from inside anyway.
		drained := make(chan struct{})
		go func() {
			engine.Close()
			close(drained)
		}()
		select {
		case <-drained:
		case <-ctx.Done():
			log.Print("drain timed out: a kernel is still running, exiting anyway")
		}
	}()

	log.Printf("serving on http://%s (POST /v1/graphs, POST /v1/query, GET /v1/stats)", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Print("bye")
}

// NewLoggingHandler wraps h with one access-log line per request.
func NewLoggingHandler(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start).Round(time.Microsecond))
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
