package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The gap between release and the worker's bind is racy in
// principle, but loopback port churn in the test environment is nil.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

// buildCamcd compiles the daemon once per test into a temp dir.
func buildCamcd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "camcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building camcd: %v", err)
	}
	return bin
}

// TestThreeProcessFleet is the README's deployment for real: it builds
// the camcd binary, spawns two -worker processes forming one 2-rank
// shard plus a -frontend process, and runs a query through the public
// API — exercising the TCP mesh, the job-control protocol, and the
// sharded routing across genuine process boundaries.
func TestThreeProcessFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped under -short")
	}
	bin := buildCamcd(t)

	ports := freePorts(t, 5) // 2 mesh + 2 worker HTTP + 1 frontend HTTP
	mesh := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", ports[0], ports[1])
	workerHTTP := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[2]),
		fmt.Sprintf("127.0.0.1:%d", ports[3]),
	}
	frontHTTP := fmt.Sprintf("127.0.0.1:%d", ports[4])

	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning %v: %v", args, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	// Both workers start concurrently: each blocks until the mesh is up.
	spawn("-worker", "-rank=0", "-peers="+mesh, "-epoch=7", "-addr="+workerHTTP[0], "-workers=1")
	spawn("-worker", "-rank=1", "-peers="+mesh, "-epoch=7", "-addr="+workerHTTP[1], "-workers=1")
	spawn("-frontend", "-shards="+workerHTTP[0]+","+workerHTTP[1], "-addr="+frontHTTP)

	base := "http://" + frontHTTP
	waitHealthy(t, base)
	for _, w := range workerHTTP {
		waitHealthy(t, "http://"+w)
	}

	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, gen.Cycle(48, 5)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs?name=ring48", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	for alg, want := range map[string]uint64{"mincut": 10, "cc": 1} {
		body := fmt.Sprintf(`{"graph":"ring48","algorithm":%q}`, alg)
		resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var qr struct {
			Value      *uint64 `json:"value"`
			Components *int    `json:"components"`
			Kernel     struct {
				P         int    `json:"p"`
				Transport string `json:"transport"`
				WireBytes uint64 `json:"wire_bytes"`
			} `json:"kernel"`
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch alg {
		case "mincut":
			if qr.Value == nil || *qr.Value != want {
				t.Fatalf("mincut = %v, want %d", qr.Value, want)
			}
		case "cc":
			if qr.Components == nil || uint64(*qr.Components) != want {
				t.Fatalf("components = %v, want %d", qr.Components, want)
			}
		}
		if qr.Kernel.P != 2 || qr.Kernel.Transport != "tcp" || qr.Kernel.WireBytes == 0 {
			t.Fatalf("%s kernel = %+v: want p=2 over tcp with wire traffic", alg, qr.Kernel)
		}
	}
}

// waitReady polls /readyz until the worker reports every mesh peer up
// and graph catch-up complete.
func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", url)
}

// graphListing fetches GET /v1/graphs for fingerprint comparison.
func graphListing(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func uploadTo(t *testing.T, base, name string, g *graph.Graph) {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs?name="+name, "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s to %s: status %d", name, base, resp.StatusCode)
	}
}

func queryMincut(t *testing.T, base, name string) (*http.Response, *uint64) {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%q,"algorithm":"mincut","seed":11}`, name)
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Value *uint64 `json:"value"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&qr)
	return resp, qr.Value
}

// TestSupervisedWorkerSelfHeals is the fleet self-healing chaos drill
// across real process boundaries: a 2-rank fleet where rank 1 runs
// under -supervise with a crash@1:1 fault. The first distributed query
// kills rank 1 mid-run (exit status 86); the leader fails the query
// closed with 503 + Retry-After; the supervisor respawns rank 1 with a
// bumped incarnation and no fault spec; the replacement catches up
// every graph — including one registered while it was dead —
// byte-identically, and the identical query then returns the same cut.
func TestSupervisedWorkerSelfHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped under -short")
	}
	bin := buildCamcd(t)

	ports := freePorts(t, 4) // 2 mesh + 2 worker HTTP
	mesh := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", ports[0], ports[1])
	leaderHTTP := fmt.Sprintf("http://127.0.0.1:%d", ports[2])
	workerHTTP := fmt.Sprintf("http://127.0.0.1:%d", ports[3])

	// SIGTERM, not SIGKILL: the supervisor forwards termination to its
	// current worker child and then exits; a SIGKILLed supervisor would
	// orphan the respawned worker, which holds the test's output pipes.
	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning %v: %v", args, err)
		}
		t.Cleanup(func() {
			cmd.Process.Signal(syscall.SIGTERM)
			done := make(chan struct{})
			go func() { cmd.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				cmd.Process.Kill()
				<-done
			}
		})
		return cmd
	}
	spawn("-worker", "-rank=0", "-peers="+mesh, "-epoch=9",
		fmt.Sprintf("-addr=127.0.0.1:%d", ports[2]), "-workers=1")
	spawn("-worker", "-rank=1", "-peers="+mesh, "-epoch=9",
		fmt.Sprintf("-addr=127.0.0.1:%d", ports[3]), "-workers=1",
		"-supervise", "-faults=crash@1:1")
	waitReady(t, leaderHTTP)
	waitReady(t, workerHTTP)

	g := gen.Cycle(48, 5)
	uploadTo(t, leaderHTTP, "ring48", g)
	uploadTo(t, workerHTTP, "ring48", g)

	// First distributed run: the crash fault kills rank 1 at superstep 1
	// and the leader aborts with ErrPeerLost → 503 + Retry-After.
	resp, _ := queryMincut(t, leaderHTTP, "ring48")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during crash: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 lacks Retry-After")
	}

	// An upload that lands while rank 1 is dead: catch-up must carry it
	// to the replacement.
	uploadTo(t, leaderHTTP, "missed", gen.Cycle(32, 2))

	// The supervisor respawns rank 1 (incarnation 2, fault spec
	// stripped); both ranks converge back to ready with identical
	// registries.
	waitReady(t, leaderHTTP)
	waitReady(t, workerHTTP)
	if lead, rep := graphListing(t, leaderHTTP), graphListing(t, workerHTTP); lead != rep {
		t.Fatalf("post-recovery registries differ:\nleader: %s\nworker: %s", lead, rep)
	}

	// The identical query now succeeds with the correct cut — proof the
	// degraded 503 was never cached and the mesh fully healed.
	resp, val := queryMincut(t, leaderHTTP, "ring48")
	if resp.StatusCode != http.StatusOK || val == nil || *val != 10 {
		t.Fatalf("post-recovery mincut: status %d value %v, want 200/10", resp.StatusCode, val)
	}
	resp, val = queryMincut(t, leaderHTTP, "missed")
	if resp.StatusCode != http.StatusOK || val == nil || *val != 4 {
		t.Fatalf("post-recovery mincut on missed graph: status %d value %v, want 200/4", resp.StatusCode, val)
	}

	// The respawned rank rejoined under a bumped incarnation.
	var stats struct {
		Fleet struct {
			Peers []struct {
				Rank        int    `json:"rank"`
				Up          bool   `json:"up"`
				Incarnation uint64 `json:"incarnation"`
			} `json:"peers"`
		} `json:"fleet"`
	}
	sresp, err := http.Get(leaderHTTP + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if len(stats.Fleet.Peers) != 1 || !stats.Fleet.Peers[0].Up || stats.Fleet.Peers[0].Incarnation < 2 {
		t.Fatalf("leader fleet peers = %+v, want rank 1 up with incarnation >= 2", stats.Fleet.Peers)
	}
}
