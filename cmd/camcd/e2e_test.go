package main_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// freePorts reserves n distinct loopback ports by binding and releasing
// them. The gap between release and the worker's bind is racy in
// principle, but loopback port churn in the test environment is nil.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

func waitHealthy(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

// TestThreeProcessFleet is the README's deployment for real: it builds
// the camcd binary, spawns two -worker processes forming one 2-rank
// shard plus a -frontend process, and runs a query through the public
// API — exercising the TCP mesh, the job-control protocol, and the
// sharded routing across genuine process boundaries.
func TestThreeProcessFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped under -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "camcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building camcd: %v", err)
	}

	ports := freePorts(t, 5) // 2 mesh + 2 worker HTTP + 1 frontend HTTP
	mesh := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", ports[0], ports[1])
	workerHTTP := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[2]),
		fmt.Sprintf("127.0.0.1:%d", ports[3]),
	}
	frontHTTP := fmt.Sprintf("127.0.0.1:%d", ports[4])

	spawn := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning %v: %v", args, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	// Both workers start concurrently: each blocks until the mesh is up.
	spawn("-worker", "-rank=0", "-peers="+mesh, "-epoch=7", "-addr="+workerHTTP[0], "-workers=1")
	spawn("-worker", "-rank=1", "-peers="+mesh, "-epoch=7", "-addr="+workerHTTP[1], "-workers=1")
	spawn("-frontend", "-shards="+workerHTTP[0]+","+workerHTTP[1], "-addr="+frontHTTP)

	base := "http://" + frontHTTP
	waitHealthy(t, base)
	for _, w := range workerHTTP {
		waitHealthy(t, "http://"+w)
	}

	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, gen.Cycle(48, 5)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs?name=ring48", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	for alg, want := range map[string]uint64{"mincut": 10, "cc": 1} {
		body := fmt.Sprintf(`{"graph":"ring48","algorithm":%q}`, alg)
		resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var qr struct {
			Value      *uint64 `json:"value"`
			Components *int    `json:"components"`
			Kernel     struct {
				P         int    `json:"p"`
				Transport string `json:"transport"`
				WireBytes uint64 `json:"wire_bytes"`
			} `json:"kernel"`
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", alg, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch alg {
		case "mincut":
			if qr.Value == nil || *qr.Value != want {
				t.Fatalf("mincut = %v, want %d", qr.Value, want)
			}
		case "cc":
			if qr.Components == nil || uint64(*qr.Components) != want {
				t.Fatalf("components = %v, want %d", qr.Components, want)
			}
		}
		if qr.Kernel.P != 2 || qr.Kernel.Transport != "tcp" || qr.Kernel.WireBytes == 0 {
			t.Fatalf("%s kernel = %+v: want p=2 over tcp with wire traffic", alg, qr.Kernel)
		}
	}
}
