// Command square_root computes an exact global minimum cut w.h.p. with
// the communication-avoiding parallel algorithm of §4 (named after the
// artifact's binary, itself named for the Eager Step's √m contraction
// target). It prints an artifact-style CSV profile line and the cut.
//
// Usage:
//
//	square_root -graph gen:ws:n=4096,d=32 -p 8 -seed 7 -success 0.9
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("square_root: ")
	var (
		graphSpec = flag.String("graph", "", "input file or gen:TYPE:params spec (required)")
		p         = flag.Int("p", 0, "virtual processors (default: CPUs)")
		seed      = flag.Uint64("seed", 1, "PRNG seed")
		success   = flag.Float64("success", 0.9, "minimum success probability")
		maxTrials = flag.Int("max-trials", 0, "cap on contraction trials (0 = theory)")
		showSide  = flag.Bool("side", false, "print the cut side vertex set")
	)
	flag.Parse()
	if *graphSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, name, err := cli.LoadGraph(*graphSpec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.MinCut(g, core.Options{
		Processors: *p, Seed: *seed, SuccessProb: *success, MaxTrials: *maxTrials,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.Record{
		Input: name, Seed: *seed, N: g.N, M: g.M(),
		Time: res.Stats.Time, MPITime: res.Stats.CommTime,
		Algorithm: "mincut", P: res.Stats.P, Result: res.Value,
		Supersteps: res.Stats.Supersteps, CommVolume: res.Stats.CommVolume,
	}
	if err := rec.WriteProfile(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minimum cut: %d (%d trials, %.3fs, %.1f%% comm)\n",
		res.Value, res.Trials, res.Stats.Time.Seconds(), 100*res.Stats.CommFraction)
	if *showSide {
		fmt.Print("side:")
		for v, in := range res.Side {
			if in {
				fmt.Printf(" %d", v)
			}
		}
		fmt.Println()
	}
}
