// Command parallel_cc computes connected components with the
// communication-avoiding iterated-sampling algorithm (named after the
// artifact's binary). It prints an artifact-style CSV profile line.
//
// Usage:
//
//	parallel_cc -graph gen:ba:n=100000,d=32 -p 8 -seed 42
//	parallel_cc -graph input.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("parallel_cc: ")
	var (
		graphSpec = flag.String("graph", "", "input file or gen:TYPE:params spec (required)")
		p         = flag.Int("p", 0, "virtual processors (default: CPUs)")
		seed      = flag.Uint64("seed", 1, "PRNG seed")
	)
	flag.Parse()
	if *graphSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, name, err := cli.LoadGraph(*graphSpec)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.ConnectedComponents(g, core.Options{Processors: *p, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.Record{
		Input: name, Seed: *seed, N: g.N, M: g.M(),
		Time: res.Stats.Time, MPITime: res.Stats.CommTime,
		Algorithm: "cc", P: res.Stats.P, Result: uint64(res.Count),
		Supersteps: res.Stats.Supersteps, CommVolume: res.Stats.CommVolume,
	}
	if err := rec.WriteProfile(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d (%.3fs, %.1f%% comm, %d supersteps)\n",
		res.Count, res.Stats.Time.Seconds(), 100*res.Stats.CommFraction, res.Stats.Supersteps)
}
