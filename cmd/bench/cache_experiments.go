package main

import (
	"fmt"
	"time"

	"repro/internal/cachesim"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
)

// llc returns the simulated last-level cache used by the cache
// experiments: 32Ki words of 8 words per block (the tall-cache regime,
// scaled down with the problem sizes).
func llc() *cachesim.Cache { return cachesim.New(1<<15, 8) }

func runFig4a(e *env) {
	// Two parameters matter for the paper's claim: the density (d=256 in
	// the paper) must keep the sample size far below m, and ε must be the
	// "small constant" of §3.2 (we use 0.2) so the random probes s =
	// n^(1+ε/2) stay cheap next to BFS's 2m random label accesses. The
	// advantage appears once the label array outgrows the cache — the
	// smallest size below sits inside it, showing the paper's "as inputs
	// grow larger" crossover.
	d := 128
	const eps = 0.2
	sizes := []int{14, 15, 16, 17}
	if e.quick {
		sizes = []int{14, 15, 16}
	}
	fmt.Printf("# workload: R-MAT d=%d, growing n (paper: d=256, n=128k..1M); simulated LLC 32Ki words\n", d)
	fmt.Println("impl\tn\tmisses\tinstructions\ttime_s")
	for _, sc := range sizes {
		n := 1 << sc
		g := gen.RMAT(sc, n*d/2, e.seed, gen.Config{})
		// BGL-style BFS.
		c := llc()
		start := time.Now()
		cachesim.BFSCC(c, g)
		fmt.Printf("BGL\t%d\t%d\t%d\t%.3f\n", n, c.Misses(), c.Instructions(), time.Since(start).Seconds())
		// Our sampling CC.
		c = llc()
		start = time.Now()
		cachesim.SamplingCC(c, g, rng.New(e.seed, 0, 0), eps)
		fmt.Printf("CC\t%d\t%d\t%d\t%.3f\n", n, c.Misses(), c.Instructions(), time.Since(start).Seconds())
		// Galois-style union-find.
		c = llc()
		start = time.Now()
		cachesim.UnionFindCC(c, g)
		fmt.Printf("Galois\t%d\t%d\t%d\t%.3f\n", n, c.Misses(), c.Instructions(), time.Since(start).Seconds())
	}
	fmt.Println("# paper shape: CC and Galois incur significantly fewer misses than BGL as inputs grow;")
	fmt.Println("# CC executes more instructions than BGL yet wins on misses (Figure 4b's trend)")
}

func runFig4c(e *env) {
	sc := 15
	if e.quick {
		sc = 14
	}
	n := 1 << sc
	d := 64
	g := gen.RMAT(sc, n*d/2, e.seed, gen.Config{})
	fmt.Printf("# workload: R-MAT n=%d d=%d (paper: n=128000 d=2048); per-core slice replay\n", n, d)
	fmt.Println("impl\tcores\tIPM")
	for _, p := range e.pSweep() {
		// Per-core view of our CC: the processor's slice of the edge
		// array plus the shared label structures.
		slice := &graph.Graph{N: g.N, Edges: g.Edges[:len(g.Edges)/p]}
		c := llc()
		cachesim.SamplingCC(c, slice, rng.New(e.seed, 0, 0), 0.5)
		fmt.Printf("CC\t%d\t%.0f\n", p, c.IPM())
		// PBGL-style label propagation per-core view.
		c = llc()
		cachesim.LabelPropagationCC(c, g, p)
		fmt.Printf("PBGL\t%d\t%.0f\n", p, c.IPM())
	}
	fmt.Println("# paper shape: CC's IPM above PBGL's at low parallelism, converging as parallelism is exhausted")
}

func runFig8a(e *env) {
	d := 32
	sizes := []int{256, 384, 512, 768}
	if e.quick {
		sizes = []int{192, 256, 384}
	}
	fmt.Printf("# workload: Erdős–Rényi d=%d (paper: d=32, n=8k..56k); simulated LLC 32Ki words\n", d)
	fmt.Println("impl\tn\tmisses\tinstructions\tIPM")
	for _, n := range sizes {
		g := gen.ErdosRenyiM(n, n*d/2, e.seed, gen.Config{})
		st := rng.New(e.seed, 0, 0)

		c := llc()
		cachesim.StoerWagnerKernel(c, g)
		fmt.Printf("SW\t%d\t%d\t%d\t%.0f\n", n, c.Misses(), c.Instructions(), c.IPM())

		// KS at a fixed trial budget, extrapolated to the full count
		// (misses and instructions are additive across independent
		// trials).
		ksFull := mincut.KargerSteinTrials(n, 0.9)
		ksRun := min(ksFull, 4)
		c = llc()
		cachesim.KargerSteinKernel(c, g, st, ksRun)
		f := float64(ksFull) / float64(ksRun)
		fmt.Printf("KS\t%d\t%.0f\t%.0f\t%.0f\n", n, float64(c.Misses())*f, float64(c.Instructions())*f, c.IPM())

		mcFull := mincut.Trials(n, g.M(), 0.9)
		mcRun := min(mcFull, 48)
		c = llc()
		cachesim.MCKernel(c, g, st, mcRun)
		f = float64(mcFull) / float64(mcRun)
		fmt.Printf("MC\t%d\t%.0f\t%.0f\t%.0f\n", n, float64(c.Misses())*f, float64(c.Instructions())*f, c.IPM())
	}
	fmt.Println("# paper shape: KS has the highest IPM (most cache-friendly), SW the lowest")
}

func runFig8b(e *env) {
	d := 128
	const eps = 0.2
	sizes := []int{14, 15, 16, 17}
	if e.quick {
		sizes = []int{14, 15, 16}
	}
	fmt.Printf("# workload: R-MAT d=%d (paper: d=256, n=128k..1M)\n", d)
	fmt.Println("impl\tn\tIPM")
	for _, sc := range sizes {
		n := 1 << sc
		g := gen.RMAT(sc, n*d/2, e.seed, gen.Config{})
		c := llc()
		cachesim.BFSCC(c, g)
		fmt.Printf("BGL\t%d\t%.0f\n", n, c.IPM())
		c = llc()
		cachesim.SamplingCC(c, g, rng.New(e.seed, 0, 0), eps)
		fmt.Printf("CC\t%d\t%.0f\n", n, c.IPM())
		c = llc()
		cachesim.UnionFindCC(c, g)
		fmt.Printf("Galois\t%d\t%.0f\n", n, c.IPM())
	}
	fmt.Println("# paper shape: CC's IPM well above BGL's and rising with n (Figure 8b)")
}

func runFig9(e *env) {
	d := 32
	sizes := []int{256, 384, 512, 768}
	if e.quick {
		sizes = []int{192, 256, 384}
	}
	fmt.Printf("# workload: Erdős–Rényi d=%d (paper: d=32, n=8k..56k); simulated LLC 32Ki words\n", d)
	fmt.Println("impl\tn\tmisses_per_trial\tmisses_full\ttime_s_full")
	var firstRatio, lastRatio float64
	for i, n := range sizes {
		g := gen.ErdosRenyiM(n, n*d/2, e.seed, gen.Config{})
		st := rng.New(e.seed, 0, 0)

		c := llc()
		start := time.Now()
		cachesim.StoerWagnerKernel(c, g)
		swMisses := c.Misses()
		fmt.Printf("SW\t%d\t%d\t%d\t%.3f\n", n, swMisses, swMisses, time.Since(start).Seconds())

		// KS and MC at a fixed trial budget, extrapolated to the full
		// success-probability trial count (misses are additive across
		// independent trials).
		ksFull := mincut.KargerSteinTrials(n, 0.9)
		ksRun := min(ksFull, 4)
		c = llc()
		start = time.Now()
		cachesim.KargerSteinKernel(c, g, st, ksRun)
		f := float64(ksFull) / float64(ksRun)
		perTrialKS := float64(c.Misses()) / float64(ksRun)
		fmt.Printf("KS\t%d\t%.0f\t%.0f\t%.3f\n", n, perTrialKS, float64(c.Misses())*f, time.Since(start).Seconds()*f)

		mcFull := mincut.Trials(n, g.M(), 0.9)
		mcRun := min(mcFull, 48)
		c = llc()
		start = time.Now()
		cachesim.MCKernel(c, g, st, mcRun)
		f = float64(mcFull) / float64(mcRun)
		fmt.Printf("MC\t%d\t%.0f\t%.0f\t%.3f\n", n, float64(c.Misses())/float64(mcRun), float64(c.Misses())*f, time.Since(start).Seconds()*f)

		r := float64(swMisses) / perTrialKS
		if i == 0 {
			firstRatio = r
		}
		lastRatio = r
	}
	fmt.Println("## Figure 9b: execution time of the real (unsimulated) implementations")
	fmt.Println("impl\tn\ttime_s")
	for _, n := range sizes {
		g := gen.ErdosRenyiM(n, n*d/2, e.seed, gen.Config{})
		st := rng.New(e.seed, 0, 0)
		start := time.Now()
		mincut.StoerWagner(g)
		fmt.Printf("SW\t%d\t%.4f\n", n, time.Since(start).Seconds())
		start = time.Now()
		mincut.KargerStein(g, st, 0.9)
		fmt.Printf("KS\t%d\t%.4f\n", n, time.Since(start).Seconds())
		start = time.Now()
		mincut.Sequential(g, st, 0.9)
		fmt.Printf("MC\t%d\t%.4f\n", n, time.Since(start).Seconds())
	}
	fmt.Printf("# SW/KS per-trial miss ratio grows %.1fx -> %.1fx across the sweep;\n", firstRatio, lastRatio)
	fmt.Println("# paper shape: SW's Θ(n³/B) misses dwarf KS/MC at the paper's n=8k..56k — at simulator-feasible")
	fmt.Println("# sizes the cubic term is still catching up, but the growing ratio shows the crossover trend;")
	fmt.Println("# KS stays the most compact per trial (designed for sequential cache efficiency)")
}
