// Command bench regenerates every table and figure of the paper's
// evaluation (§5) at laptop scale: it runs the same workloads (scaled
// down from the petascale originals — see DESIGN.md for the mapping),
// prints the same rows/series the paper plots, and annotates each
// experiment with the shape the paper reports so measured results can be
// compared directly.
//
// Usage:
//
//	bench -exp fig1           # one experiment
//	bench -exp fig3a,fig9     # several
//	bench -exp all            # everything (minutes)
//	bench -exp all -quick     # reduced sizes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// experiment is one regenerable table or figure.
type experiment struct {
	id    string
	title string
	run   func(e *env)
}

// env carries shared experiment settings.
type env struct {
	quick bool
	seed  uint64
	maxP  int
	runs  int // measurement repetitions per data point

	snap  *trace.Snapshot // non-nil when -snapshot is set
	expID string          // experiment currently running (snapshot Input)
}

// record adds one measured data point to the snapshot, if enabled.
func (e *env) record(st core.RunStats) {
	if e.snap == nil {
		return
	}
	e.snap.Records = append(e.snap.Records, &trace.Record{
		Input:      e.expID,
		Seed:       e.seed,
		Trial:      len(e.snap.Records),
		Time:       st.Time,
		MPITime:    st.CommTime,
		Algorithm:  e.expID,
		P:          st.P,
		Supersteps: st.Supersteps,
		CommVolume: st.CommVolume,
	})
}

// scale divides a size in quick mode.
func (e *env) scale(full, quick int) int {
	if e.quick {
		return quick
	}
	return full
}

// pSweep returns the processor counts for strong-scaling sweeps.
func (e *env) pSweep() []int {
	var ps []int
	for p := 1; p <= e.maxP; p *= 2 {
		ps = append(ps, p)
	}
	return ps
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		expFlag = flag.String("exp", "", "experiment id(s), comma separated, or 'all' (required)")
		quick   = flag.Bool("quick", false, "reduced problem sizes")
		seed    = flag.Uint64("seed", 1, "PRNG seed")
		maxP    = flag.Int("maxp", 0, "largest processor count (default: CPUs, max 16)")
		runs    = flag.Int("runs", 3, "repetitions per data point (median reported)")
		snap    = flag.String("snapshot", "", "write measured data points as a JSON snapshot to this file")
	)
	flag.Parse()

	experiments := []experiment{
		{"table1", "Table 1: measured MC costs vs asymptotic bounds", runTable1},
		{"fig1", "Figure 1: MC strong scaling, sparse Erdős–Rényi (+model, T_MPI/T)", runFig1},
		{"fig3a", "Figure 3a: CC strong scaling, sparse Barabási–Albert, vs baselines", runFig3a},
		{"fig3b", "Figure 3b: CC strong scaling, dense R-MAT, vs baselines", runFig3b},
		{"fig4a", "Figure 4a/4b: sequential CC cache misses and time vs BGL/Galois", runFig4a},
		{"fig4c", "Figure 4c: parallel IPM, CC vs label propagation", runFig4c},
		{"fig4d", "Figure 4d: CC strong scaling with app/comm split", runFig4d},
		{"fig5a", "Figure 5a: AppMC strong scaling, dense R-MAT", runFig5a},
		{"fig5b", "Figure 5b: AppMC weak scaling (edges grow with p)", runFig5b},
		{"fig6", "Figure 6: MC strong scaling, dense R-MAT (+model, T_MPI/T)", runFig6},
		{"fig7", "Figure 7: MC weak scaling, sparse WS and dense R-MAT", runFig7},
		{"fig8a", "Figure 8a: IPM of MC vs KS vs SW", runFig8a},
		{"fig8b", "Figure 8b: IPM of CC vs BGL vs Galois", runFig8b},
		{"fig9", "Figure 9: sequential cache misses and time, KS vs SW vs MC", runFig9},
		{"abl-bcast", "Ablation: two-phase vs direct broadcast", runAblBroadcast},
		{"abl-eager", "Ablation: Eager Step vs recursive contraction only", runAblEager},
		{"abl-epsilon", "Ablation: sparsification exponent ε in CC", runAblEpsilon},
		{"abl-sampler", "Ablation: prefix vs alias weighted sampler", runAblSampler},
		{"abl-network", "Ablation: emulated interconnects (virtual g/L clock)", runAblNetwork},
		{"abl-flow", "Ablation: min cut via n-1 max-flows (related-work baseline)", runAblFlow},
	}
	byID := map[string]experiment{}
	var order []string
	for _, ex := range experiments {
		byID[ex.id] = ex
		order = append(order, ex.id)
	}

	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "available experiments:")
		for _, id := range order {
			fmt.Fprintf(os.Stderr, "  %-7s %s\n", id, byID[id].title)
		}
		os.Exit(2)
	}

	if *maxP <= 0 {
		// Virtual BSP processors beyond the physical cores timeshare;
		// cost counters (supersteps, volume, ops) remain exact, wall
		// times flatten. Sweep to at least 8 so the series have shape.
		*maxP = runtime.NumCPU()
		if *maxP < 8 {
			*maxP = 8
		}
		if *maxP > 16 {
			*maxP = 16
		}
	}
	e := &env{quick: *quick, seed: *seed, maxP: *maxP, runs: *runs}
	if e.runs < 1 {
		e.runs = 1
	}
	if *snap != "" {
		e.snap = &trace.Snapshot{Name: "bench"}
	}

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		ids = strings.Split(*expFlag, ",")
		sort.Strings(ids)
	}
	for _, id := range ids {
		ex, ok := byID[strings.TrimSpace(id)]
		if !ok {
			log.Fatalf("unknown experiment %q", id)
		}
		fmt.Printf("### %s — %s\n", ex.id, ex.title)
		e.expID = ex.id
		ex.run(e)
		fmt.Println()
	}
	if e.snap != nil {
		if err := trace.WriteSnapshotFile(*snap, e.snap); err != nil {
			log.Fatalf("write snapshot: %v", err)
		}
		log.Printf("wrote %d data points to %s", len(e.snap.Records), *snap)
	}
}
