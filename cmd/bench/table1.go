package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/perfmodel"
)

// runTable1 validates the asymptotic bounds of Table 1 empirically: it
// measures the MC algorithm's supersteps, computation (operation
// counter), and communication volume over an (n, p) grid and prints the
// measured growth ratios next to the ratios the bounds predict.
func runTable1(e *env) {
	d := 32
	nBase := e.scale(512, 256)
	pBase := 2
	if pBase*2 > e.maxP {
		fmt.Println("# needs -maxp >= 4; skipping p-growth column")
	}

	type cell struct {
		steps  int
		comp   uint64
		volume uint64
	}
	measure := func(n, p int) cell {
		g := gen.ErdosRenyiM(n, n*d/2, e.seed, gen.Config{})
		res, err := core.MinCut(g, core.Options{Processors: p, Seed: e.seed})
		if err != nil {
			log.Fatal(err)
		}
		return cell{steps: res.Stats.Supersteps, comp: res.Stats.Ops, volume: res.Stats.CommVolume}
	}

	fmt.Println("n\tp\tsupersteps\tcomputation\tvolume")
	grid := map[[2]int]cell{}
	for _, n := range []int{nBase, 2 * nBase} {
		for _, p := range []int{pBase, 2 * pBase} {
			if p > e.maxP {
				continue
			}
			c := measure(n, p)
			grid[[2]int{n, p}] = c
			fmt.Printf("%d\t%d\t%d\t%d\t%d\n", n, p, c.steps, c.comp, c.volume)
		}
	}

	ratio := func(a, b uint64) float64 { return float64(a) / float64(b) }
	nf, pf := float64(nBase), float64(pBase)
	mf := nf * float64(d) / 2

	base, okB := grid[[2]int{nBase, pBase}]
	n2, okN := grid[[2]int{2 * nBase, pBase}]
	p2, okP := grid[[2]int{nBase, 2 * pBase}]
	if okB && okN {
		fmt.Println("## growth when n doubles (p fixed)")
		fmt.Printf("computation: measured %.2fx, bound (n²log³n/p) predicts %.2fx\n",
			ratio(n2.comp, base.comp),
			perfmodel.MCComputation(2*nf, pf)/perfmodel.MCComputation(nf, pf))
		fmt.Printf("volume:      measured %.2fx, bound (n²log²n·logp/p) predicts %.2fx\n",
			ratio(n2.volume, base.volume),
			perfmodel.MCVolume(2*nf, pf)/perfmodel.MCVolume(nf, pf))
	}
	if okB && okP {
		fmt.Println("## growth when p doubles (n fixed)")
		fmt.Printf("computation: measured %.2fx, bound predicts %.2fx (perfect halving)\n",
			ratio(p2.comp, base.comp),
			perfmodel.MCComputation(nf, 2*pf)/perfmodel.MCComputation(nf, pf))
		fmt.Printf("supersteps:  measured %.2fx, bound (log(pm/n²)) predicts %.2fx\n",
			ratio(uint64(p2.steps), uint64(base.steps)),
			perfmodel.MCSupersteps(nf, mf, 2*pf)/perfmodel.MCSupersteps(nf, mf, pf))
	}
	fmt.Println("## Table 1 bound comparison at n=10^4, p=64 (up to constants)")
	n10, p64 := 1e4, 64.0
	m10 := n10 * 32
	fmt.Printf("supersteps:  this paper %.1f  vs previous BSP %.1f\n",
		perfmodel.MCSupersteps(n10, m10, p64), perfmodel.PrevBSPSupersteps(n10, p64))
	fmt.Printf("computation: this paper %.3g vs previous BSP %.3g\n",
		perfmodel.MCComputation(n10, p64), perfmodel.PrevBSPComputation(n10, p64))
	fmt.Printf("volume:      this paper %.3g vs previous BSP %.3g\n",
		perfmodel.MCVolume(n10, p64), perfmodel.PrevBSPVolume(n10, p64))
	fmt.Println("# paper shape: this paper improves the previous BSP bounds by ~log p in computation and volume,")
	fmt.Println("# and exponentially in supersteps (O(log(pm/n²)) vs O(logn·log²p))")
}
