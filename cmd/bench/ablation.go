package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Ablations for the design choices DESIGN.md calls out: the two-phase
// broadcast, the Eager Step, the sparsification exponent, and the
// weighted sampler.

func runAblBroadcast(e *env) {
	fmt.Println("# design choice: two-phase (scatter+all-gather) broadcast vs naive direct sends")
	fmt.Println("strategy\tp\twords\tvolume\tsupersteps")
	k := e.scale(1<<16, 1<<13)
	for _, p := range []int{4, 8} {
		if p > e.maxP {
			continue
		}
		payload := make([]uint64, k)
		// Two-phase (the library's strategy for large payloads).
		st, err := bsp.Run(p, func(c *bsp.Comm) {
			var in []uint64
			if c.Rank() == 0 {
				in = payload
			}
			c.Broadcast(0, in)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("two-phase\t%d\t%d\t%d\t%d\n", p, k, st.CommVolume, st.Supersteps)
		// Naive: root sends the full payload to everyone.
		st, err = bsp.Run(p, func(c *bsp.Comm) {
			if c.Rank() == 0 {
				for dst := 1; dst < p; dst++ {
					c.Send(dst, payload)
				}
			}
			c.Sync()
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("direct\t%d\t%d\t%d\t%d\n", p, k, st.CommVolume, st.Supersteps)
	}
	fmt.Println("# expected: two-phase volume ~2k+O(p) independent of p; direct volume ~(p-1)k at the root")
}

func runAblEager(e *env) {
	fmt.Println("# design choice: Eager Step (contract to ⌈√m⌉+1 before recursing) vs recursive contraction on the full graph")
	n := e.scale(768, 384)
	d := 16
	g := gen.ErdosRenyiM(n, n*d/2, e.seed, gen.Config{})
	st := rng.New(e.seed, 0, 0)

	fmt.Println("variant\ttrials\ttotal_s\tper_trial_ms\tcut")
	measure := func(name string, trials int, run func() uint64) {
		times := make([]float64, e.runs)
		var cut uint64
		for r := range times {
			start := time.Now()
			cut = run()
			times[r] = time.Since(start).Seconds()
		}
		med := stats.Median(times)
		fmt.Printf("%s\t%d\t%.3f\t%.2f\t%d\n", name, trials, med, 1000*med/float64(trials), cut)
	}
	mcTrials := mincut.Trials(n, g.M(), 0.9)
	measure("eager+recursive", mcTrials, func() uint64 {
		return mincut.Sequential(g, st, 0.9).Value
	})
	ksTrials := mincut.KargerSteinTrials(n, 0.9)
	measure("recursive-only", ksTrials, func() uint64 {
		return mincut.KargerStein(g, st, 0.9).Value
	})
	fmt.Println("# expected: eager trials are far cheaper (work ~m + √m²·log) though more numerous;")
	fmt.Println("# on sparse graphs the eager variant wins the total-work comparison as n grows")
}

func runAblEpsilon(e *env) {
	fmt.Println("# design choice: sparsification exponent ε (CC sample size s = n^(1+ε/2))")
	n := e.scale(100_000, 20_000)
	g := gen.BarabasiAlbert(n, 16, e.seed, gen.Config{})
	const p = 4
	fmt.Println("epsilon\titerations\tvolume\ttime_s")
	for _, eps := range []float64{0.25, 0.5, 0.75, 1.0} {
		var iters int
		var vol uint64
		times := make([]float64, e.runs)
		for r := range times {
			bst, err := bsp.Run(p, func(c *bsp.Comm) {
				var in *graph.Graph
				if c.Rank() == 0 {
					in = g
				}
				nn, local := dist.ScatterGraph(c, 0, in)
				res := cc.Parallel(c, nn, local, rng.New(e.seed+uint64(r), uint32(c.Rank()), 0), cc.Options{Epsilon: eps})
				if c.Rank() == 0 {
					iters = res.Iterations
				}
			})
			if err != nil {
				log.Fatal(err)
			}
			times[r] = bst.Total().Seconds()
			vol = bst.CommVolume
		}
		fmt.Printf("%.2f\t%d\t%d\t%.4f\n", eps, iters, vol, stats.Median(times))
	}
	fmt.Println("# expected: larger ε -> bigger samples -> fewer iterations but more volume per round;")
	fmt.Println("# ε=0.5 balances the two (the library default)")
}

func runAblSampler(e *env) {
	fmt.Println("# design choice: weighted edge sampler — O(log n) prefix binary search vs O(1) alias method")
	m := e.scale(1<<20, 1<<17)
	s := rng.New(e.seed, 0, 0)
	weights := make([]uint64, m)
	for i := range weights {
		weights[i] = 1 + s.Uint64n(100)
	}
	draws := m / 2
	fmt.Println("sampler\tbuild_ms\tdraw_ms\ttotal_ms")
	{
		times := make([]float64, e.runs)
		builds := make([]float64, e.runs)
		for r := range times {
			start := time.Now()
			ps := rng.NewPrefixSampler(weights)
			builds[r] = time.Since(start).Seconds() * 1000
			start = time.Now()
			for k := 0; k < draws; k++ {
				_ = ps.Sample(s)
			}
			times[r] = time.Since(start).Seconds() * 1000
		}
		fmt.Printf("prefix\t%.1f\t%.1f\t%.1f\n", stats.Median(builds), stats.Median(times), stats.Median(builds)+stats.Median(times))
	}
	{
		times := make([]float64, e.runs)
		builds := make([]float64, e.runs)
		for r := range times {
			start := time.Now()
			as := rng.NewAliasSampler(weights)
			builds[r] = time.Since(start).Seconds() * 1000
			start = time.Now()
			for k := 0; k < draws; k++ {
				_ = as.Sample(s)
			}
			times[r] = time.Since(start).Seconds() * 1000
		}
		fmt.Printf("alias\t%.1f\t%.1f\t%.1f\n", stats.Median(builds), stats.Median(times), stats.Median(builds)+stats.Median(times))
	}
	fmt.Println("# alias draws are O(1) vs O(log m), but each costs two PRNG values where the prefix")
	fmt.Println("# search costs one plus cache-resident probes — measured, prefix wins at in-cache sizes.")
	fmt.Println("# The library uses alias only for the root's p-way distribution step (p entries, cost")
	fmt.Println("# negligible) and prefix search for the per-slice edge draws")
}

func runAblNetwork(e *env) {
	fmt.Println("# design payoff: communication volume translated to time on emulated interconnects")
	fmt.Println("# (virtual clock: per-superstep cost = h·WordTime + SyncLatency; computation time real)")
	n := e.scale(50_000, 20_000)
	g := gen.BarabasiAlbert(n, 16, e.seed, gen.Config{})
	const p = 4
	nets := []struct {
		name string
		cm   bsp.CostModel
	}{
		{"shared-mem", bsp.CostModel{}},
		{"fast-net", bsp.CostModel{WordTime: 4 * time.Nanosecond, SyncLatency: 10 * time.Microsecond}},
		{"slow-net", bsp.CostModel{WordTime: 40 * time.Nanosecond, SyncLatency: 100 * time.Microsecond}},
	}
	fmt.Println("impl\tnetwork\tsim_total_s\tsim_comm_s\tsim_comm_frac")
	for _, net := range nets {
		stCC, err := bsp.RunWithCost(p, net.cm, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			nn, local := dist.ScatterGraph(c, 0, in)
			cc.Parallel(c, nn, local, rng.New(e.seed, uint32(c.Rank()), 0), cc.Options{})
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("CC\t%s\t%.4f\t%.4f\t%.3f\n", net.name,
			stCC.SimTotal().Seconds(), stCC.SimCommTime.Seconds(), stCC.SimCommFraction())
		stLP, err := bsp.RunWithCost(p, net.cm, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			nn, local := dist.ScatterGraph(c, 0, in)
			cc.LabelPropagation(c, nn, local)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("PBGL\t%s\t%.4f\t%.4f\t%.3f\n", net.name,
			stLP.SimTotal().Seconds(), stLP.SimCommTime.Seconds(), stLP.SimCommFraction())
	}
	fmt.Println("# expected: as the interconnect slows, the label-propagation baseline's per-round")
	fmt.Println("# n-word all-reduces dominate while CC's O(1)-superstep design stays flat")
}

func runAblFlow(e *env) {
	fmt.Println("# related-work baseline (§6): a flow-based global min cut needs n-1 max s-t flow")
	fmt.Println("# computations — an Ω(mn) work bound — where the paper's approximate cut does")
	fmt.Println("# O(m·log³n + n^(1+ε)) work. The exact MC is included for reference.")
	sizes := []int{128, 256, 512}
	if e.quick {
		sizes = []int{96, 192, 384}
	}
	fmt.Println("impl\tn\tm\ttime_s\tcut")
	for _, n := range sizes {
		g := gen.ErdosRenyiM(n, n*8, e.seed, gen.Config{MaxWeight: 4})
		if !g.IsConnected() {
			continue
		}
		start := time.Now()
		fv, _, _ := flow.GlobalMinCut(g)
		tFlow := time.Since(start).Seconds()
		fmt.Printf("maxflow\t%d\t%d\t%.4f\t%d\n", n, g.M(), tFlow, fv)

		res, err := core.ApproxMinCut(g, core.Options{Processors: 1, Seed: e.seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("AppMC\t%d\t%d\t%.4f\t%d (O(logn)-approx)\n", n, g.M(), res.Stats.Time.Seconds(), res.Value)

		st := rng.New(e.seed, 0, 0)
		start = time.Now()
		mv := mincut.Sequential(g, st, 0.95).Value
		fmt.Printf("MC\t%d\t%d\t%.4f\t%d\n", n, g.M(), time.Since(start).Seconds(), mv)
		if fv != mv {
			fmt.Printf("# WARNING: disagreement maxflow=%d MC=%d\n", fv, mv)
		}
	}
	fmt.Println("# expected: the flow baseline's time grows ~quadratically at fixed degree (n-1 flow")
	fmt.Println("# computations) while AppMC's near-linear work stays nearly flat per edge")
}
