package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ccStrongScaling runs the Figure 3 protocol: our CC, the PBGL-style
// label-propagation baseline, and the Galois-style shared-memory baseline
// across a processor sweep, plus the sequential BGL-style baseline as a
// horizontal line.
func ccStrongScaling(e *env, g *graph.Graph) {
	// Sequential baseline lines: the BGL-style traversal and the
	// sampling algorithm run on one processor without the BSP runtime.
	times := make([]float64, e.runs)
	for i := range times {
		start := time.Now()
		cc.Sequential(g)
		times[i] = time.Since(start).Seconds()
	}
	fmt.Printf("BGL(sequential)\t-\t%.4f\n", stats.Median(times))
	for i := range times {
		start := time.Now()
		cc.SequentialSampling(g, rng.New(e.seed+uint64(i), 0, 0), 0.5)
		times[i] = time.Since(start).Seconds()
	}
	fmt.Printf("CC(sequential)\t-\t%.4f\n", stats.Median(times))

	fmt.Println("impl\tp\ttime_s\tcomm_frac")
	for _, p := range e.pSweep() {
		// Our algorithm.
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.ConnectedComponents(g, core.Options{Processors: p, Seed: e.seed + uint64(rep)})
			if err != nil {
				log.Fatal(err)
			}
			_ = res
			return res.Stats
		})
		fmt.Printf("CC\t%d\t%.4f\t%.3f\n", p, st.Time.Seconds(), st.CommFraction)

		// PBGL-style label propagation on the BSP machine.
		lpTimes := make([]float64, e.runs)
		for r := range lpTimes {
			bst, err := bsp.Run(p, func(c *bsp.Comm) {
				var in *graph.Graph
				if c.Rank() == 0 {
					in = g
				}
				n, local := dist.ScatterGraph(c, 0, in)
				cc.LabelPropagation(c, n, local)
			})
			if err != nil {
				log.Fatal(err)
			}
			lpTimes[r] = bst.Total().Seconds()
		}
		fmt.Printf("PBGL\t%d\t%.4f\t-\n", p, stats.Median(lpTimes))

		// Galois-style shared-memory union-find.
		smTimes := make([]float64, e.runs)
		for r := range smTimes {
			start := time.Now()
			cc.SharedMemory(g, p)
			smTimes[r] = time.Since(start).Seconds()
		}
		fmt.Printf("Galois\t%d\t%.4f\t-\n", p, stats.Median(smTimes))
	}
}

func runFig3a(e *env) {
	n := e.scale(200_000, 50_000)
	g := gen.BarabasiAlbert(n, 16, e.seed, gen.Config{})
	fmt.Printf("# workload: Barabási–Albert n=%d d≈32, m=%d (paper: n=1M d=32)\n", n, g.M())
	ccStrongScaling(e, g)
	fmt.Println("# paper shape: CC faster than PBGL-style everywhere; limited scaling on sparse inputs; sequential CC ≈ BGL")
}

func runFig3b(e *env) {
	scale := 14
	if e.quick {
		scale = 12
	}
	n := 1 << scale
	d := e.scale(256, 64)
	g := gen.RMAT(scale, n*d/2, e.seed, gen.Config{})
	fmt.Printf("# workload: R-MAT n=%d d=%d, m=%d (paper: n=128000 d=2000)\n", n, d, g.M())
	ccStrongScaling(e, g)
	fmt.Println("# paper shape: dense graphs give CC enough parallelism to scale; CC consistently fastest")
}

func runFig4d(e *env) {
	scale := 14
	if e.quick {
		scale = 12
	}
	n := 1 << scale
	d := e.scale(256, 64)
	g := gen.RMAT(scale, n*d/2, e.seed, gen.Config{})
	fmt.Printf("# workload: R-MAT n=%d d=%d (paper: n=128000 d=2048)\n", n, d)
	fmt.Println("p\ttime_s\tcomm_s\tcomm_frac\tsupersteps")
	for _, p := range e.pSweep() {
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.ConnectedComponents(g, core.Options{Processors: p, Seed: e.seed + uint64(rep)})
			if err != nil {
				log.Fatal(err)
			}
			return res.Stats
		})
		fmt.Printf("%d\t%.4f\t%.4f\t%.3f\t%d\n", p, st.Time.Seconds(), st.CommTime.Seconds(), st.CommFraction, st.Supersteps)
	}
	fmt.Println("# paper shape: comm fraction grows slowly with p (2.8% at 36 cores -> 9.6% at 72); supersteps O(1)")
}

// ccSuperstepNote prints the number of supersteps of one CC run —
// evidence for the O(1) claim.
func ccSuperstepNote(g *graph.Graph, p int, seed uint64) {
	res, err := core.ConnectedComponents(g, core.Options{Processors: p, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("# supersteps at p=%d: %d\n", p, res.Stats.Supersteps)
}

// rngFor is a tiny helper for direct BSP experiments.
func rngFor(c *bsp.Comm, seed uint64) *rng.Stream {
	return rng.New(seed, uint32(c.Rank()), 0)
}
