package main

import (
	"fmt"
	"log"
	"runtime"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// medianStats runs fn e.runs times and returns the run whose total time
// is the median (cost counters are deterministic across repetitions; the
// median de-noises the timings, following the paper's methodology).
func medianStats(e *env, fn func(rep int) core.RunStats) core.RunStats {
	all := make([]core.RunStats, e.runs)
	times := make([]float64, e.runs)
	for r := range all {
		all[r] = fn(r)
		times[r] = all[r].Time.Seconds()
	}
	med := stats.Median(times)
	best := 0
	for i, t := range times {
		if absf(t-med) < absf(times[best]-med) {
			best = i
		}
	}
	e.record(all[best])
	return all[best]
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// mcStrongScaling runs the Figure 1 / Figure 6 protocol on g: a p-sweep
// of the exact minimum cut, printing time, T_MPI, their ratio, and the
// fitted BSP model's prediction.
func mcStrongScaling(e *env, g *graph.Graph, success float64) {
	fmt.Println("p\ttime_s\tcomm_s\tcomm_frac\tsupersteps\tvolume\tmodel_s\tcut")
	type row struct {
		p   int
		st  core.RunStats
		cut uint64
	}
	var rows []row
	var samples []perfmodel.Sample
	for _, p := range e.pSweep() {
		var cut uint64
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.MinCut(g, core.Options{
				Processors: p, Seed: e.seed + uint64(rep), SuccessProb: success,
			})
			if err != nil {
				log.Fatal(err)
			}
			cut = res.Value
			return res.Stats
		})
		rows = append(rows, row{p: p, st: st, cut: cut})
		// On real clusters the per-processor maximum (st.Ops) drives wall
		// time directly. Virtual processors beyond the physical cores
		// timeshare, so the effective compute term is total work over
		// effective cores.
		eff := 1.0
		if cores := runtime.NumCPU(); p > cores {
			eff = float64(p) / float64(cores)
		}
		samples = append(samples, perfmodel.Sample{
			Comp:       float64(st.Ops) * eff,
			Volume:     float64(st.CommVolume),
			Supersteps: float64(st.Supersteps),
			P:          float64(p),
			Time:       st.Time.Seconds(),
		})
	}
	model, err := perfmodel.FitRobust(samples)
	for i, r := range rows {
		pred := "-"
		if err == nil {
			pred = fmt.Sprintf("%.4f", model.Predict(samples[i]))
		}
		fmt.Printf("%d\t%.4f\t%.4f\t%.3f\t%d\t%d\t%s\t%d\n",
			r.p, r.st.Time.Seconds(), r.st.CommTime.Seconds(), r.st.CommFraction,
			r.st.Supersteps, r.st.CommVolume, pred, r.cut)
	}
	if err == nil {
		fmt.Printf("# model fit: T = %.3g·comp + %.3g·vol·log2(p) + %.3g·steps + %.3g  (R²=%.3f)\n",
			model.A, model.B, model.C, model.D, model.R2(samples))
	}
	fmt.Println("# paper shape: near-linear scaling; comm fraction small and slowly growing; model tracks measurements")
}

func runFig1(e *env) {
	n := e.scale(1536, 512)
	g := gen.ErdosRenyiM(n, n*16, e.seed, gen.Config{})
	fmt.Printf("# workload: Erdős–Rényi n=%d d=32 (paper: n=96000 d=32, 144–1008 cores)\n", n)
	mcStrongScaling(e, g, 0.9)
}

func runFig6(e *env) {
	n := e.scale(1024, 384)
	d := e.scale(256, 96)
	g := gen.ErdosRenyiM(n, n*d/2, e.seed, gen.Config{})
	fmt.Printf("# workload: dense random graph n=%d d=%d (paper: R-MAT n=16000 d=4000, 48–1536 cores)\n", n, d)
	mcStrongScaling(e, g, 0.9)
}

func runFig7(e *env) {
	fmt.Println("# paper shape: at fixed n/p, MC time grows ~linearly in n (cost ~n²/p)")
	fmt.Println("## sparse: Watts–Strogatz d=32, vertices per processor fixed")
	perProc := e.scale(256, 96)
	fmt.Println("p\tn\ttime_s\tcomm_frac\tcut")
	for _, p := range e.pSweep() {
		n := perProc * p
		g := gen.WattsStrogatz(n, 32, 0.3, e.seed, gen.Config{})
		var cut uint64
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.MinCut(g, core.Options{Processors: p, Seed: e.seed + uint64(rep)})
			if err != nil {
				log.Fatal(err)
			}
			cut = res.Value
			return res.Stats
		})
		fmt.Printf("%d\t%d\t%.4f\t%.3f\t%d\n", p, n, st.Time.Seconds(), st.CommFraction, cut)
	}
	fmt.Println("## dense: random graph d=64, vertices per processor fixed")
	perProc = e.scale(128, 64)
	fmt.Println("p\tn\ttime_s\tcomm_frac\tcut")
	for _, p := range e.pSweep() {
		n := perProc * p
		g := gen.ErdosRenyiM(n, n*32, e.seed, gen.Config{})
		var cut uint64
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.MinCut(g, core.Options{Processors: p, Seed: e.seed + uint64(rep)})
			if err != nil {
				log.Fatal(err)
			}
			cut = res.Value
			return res.Stats
		})
		fmt.Printf("%d\t%d\t%.4f\t%.3f\t%d\n", p, n, st.Time.Seconds(), st.CommFraction, cut)
	}
}

func runFig5a(e *env) {
	scale := 12
	if e.quick {
		scale = 10
	}
	n := 1 << scale
	d := e.scale(512, 128)
	g := gen.RMAT(scale, n*d/2, e.seed, gen.Config{})
	fmt.Printf("# workload: R-MAT n=%d d=%d (paper: n=256000 d=4096, 36–360 cores)\n", n, d)
	fmt.Println("p\ttime_s\tcomm_s\tcomm_frac\testimate")
	for _, p := range e.pSweep() {
		var est uint64
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.ApproxMinCut(g, core.Options{Processors: p, Seed: e.seed + uint64(rep)})
			if err != nil {
				log.Fatal(err)
			}
			est = res.Value
			return res.Stats
		})
		fmt.Printf("%d\t%.4f\t%.4f\t%.3f\t%d\n", p, st.Time.Seconds(), st.CommTime.Seconds(), st.CommFraction, est)
	}
	fmt.Println("# paper shape: AppMC scales on dense graphs; comm ~26% of time at scale")
}

func runFig5b(e *env) {
	scale := 11
	if e.quick {
		scale = 9
	}
	n := 1 << scale
	edgesPerProc := e.scale(1<<18, 1<<15)
	fmt.Printf("# workload: R-MAT n=%d, %d edges per processor (paper: n=16000, 2048000 edges/node)\n", n, edgesPerProc)
	fmt.Println("p\tm\ttime_s\tcomm_frac\testimate")
	base := 0.0
	for _, p := range e.pSweep() {
		m := edgesPerProc * p
		maxM := n * (n - 1) / 2
		if m > maxM {
			fmt.Printf("# skipping p=%d: m=%d exceeds complete graph\n", p, m)
			continue
		}
		g := gen.RMAT(scale, m, e.seed, gen.Config{})
		var est uint64
		st := medianStats(e, func(rep int) core.RunStats {
			res, err := core.ApproxMinCut(g, core.Options{Processors: p, Seed: e.seed + uint64(rep)})
			if err != nil {
				log.Fatal(err)
			}
			est = res.Value
			return res.Stats
		})
		t := st.Time.Seconds()
		if base == 0 {
			base = t
		}
		fmt.Printf("%d\t%d\t%.4f\t%.3f\t%d\n", p, g.M(), t, st.CommFraction, est)
	}
	fmt.Println("# paper shape: time ~flat as edges and processors grow together (8x edges+procs -> ~1.55x time)")
}
