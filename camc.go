// Package camc (Communication-Avoiding Minimum Cuts and Components) is
// the public API of this reproduction of Gianinazzi, Kalvoda, De Palma,
// Besta, and Hoefler, "Communication-Avoiding Parallel Minimum Cuts and
// Connected Components", PPoPP 2018.
//
// The package offers three parallel graph computations, each executed on
// a BSP machine of virtual processors (goroutines) standing in for the
// paper's MPI ranks:
//
//   - ConnectedComponents: iterated-sampling connected components with
//     O(1) synchronization steps (§3.2 of the paper);
//   - ApproxMinCut: an O(log n)-approximate global minimum cut with
//     near-linear work (§3.3);
//   - MinCut: the exact global minimum cut, w.h.p., via eager sparse
//     contraction plus recursive contraction (§4).
//
// Sequential baselines (Stoer–Wagner, Karger–Stein, BFS components) are
// exported for comparison, along with the synthetic graph generators the
// paper evaluates on. Every randomized computation is reproducible: all
// randomness derives from the Seed in Options.
//
// Quick start:
//
//	g := camc.NewGraph(4)
//	g.AddEdge(0, 1, 3)
//	g.AddEdge(1, 2, 1)
//	g.AddEdge(2, 3, 3)
//	g.AddEdge(3, 0, 2)
//	res, err := camc.MinCut(g, camc.Options{Processors: 4, Seed: 42})
//	// res.Value == 3, res.Side describes one side of the cut
package camc

import (
	"io"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
)

// Graph is a weighted undirected multigraph on vertices 0..N-1.
type Graph = graph.Graph

// Edge is one weighted undirected edge.
type Edge = graph.Edge

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// ReadGraph parses a graph in the plain edge-list format ("n m" header,
// then "u v w" lines; weight defaults to 1).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadSNAPGraph parses the SNAP text format (headerless "u v" pairs,
// '#' comments, vertex count inferred as max id + 1).
func ReadSNAPGraph(r io.Reader) (*Graph, error) { return graph.ReadSNAP(r) }

// WriteGraph serializes a graph in the plain edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Options configures a parallel run; see core.Options. The zero value
// picks the number of CPUs, seed 1, and success probability 0.9.
type Options = core.Options

// RunStats is a run's BSP cost profile: supersteps, communication volume,
// and the application/communication time split.
type RunStats = core.RunStats

// MinCutResult carries an exact minimum cut: value, one side of the
// partition, trial count, and the run's cost profile.
type MinCutResult = core.MinCutResult

// ApproxCutResult carries an O(log n)-approximate minimum cut estimate.
type ApproxCutResult = core.ApproxCutResult

// CCResult carries a connected-components labelling.
type CCResult = core.CCResult

// MinCut computes a global minimum cut of g, correct with probability at
// least opts.SuccessProb.
func MinCut(g *Graph, opts Options) (*MinCutResult, error) { return core.MinCut(g, opts) }

// ApproxMinCut estimates the minimum cut within an O(log n) factor using
// near-linear work, a fraction of MinCut's time.
func ApproxMinCut(g *Graph, opts Options) (*ApproxCutResult, error) {
	return core.ApproxMinCut(g, opts)
}

// ConnectedComponents labels the connected components of g.
func ConnectedComponents(g *Graph, opts Options) (*CCResult, error) {
	return core.ConnectedComponents(g, opts)
}

// CutValue evaluates the cut described by side on g — use it to verify
// results independently.
func CutValue(g *Graph, side []bool) uint64 { return g.CutValue(side) }

// AllMinCuts returns every distinct global minimum cut of g, each found
// with probability at least successProb (the paper's Lemma 4.3: the
// algorithm finds all minimum cuts w.h.p. — there are at most n(n-1)/2).
// The tie-preserving trials run in parallel on the BSP machine; every
// returned side shares the same value.
func AllMinCuts(g *Graph, seed uint64, successProb float64) (value uint64, sides [][]bool) {
	res, err := core.AllMinCuts(g, Options{Seed: seed, SuccessProb: successProb})
	if err != nil {
		return 0, nil
	}
	return res.Value, res.Sides
}

// ContractHeavyEdges applies the Karger–Stein §7.1 preprocessing: every
// edge heavier than bound (an upper bound on the minimum cut value, e.g.
// an ApproxMinCut estimate) is contracted, shrinking the graph without
// touching any minimum cut. It returns the contracted graph and the
// vertex mapping for lifting results back.
func ContractHeavyEdges(g *Graph, bound uint64) (*Graph, []int32) {
	return mincut.ContractHeavyEdges(g, bound)
}

// MaxFlow computes the maximum s-t flow value of g (Dinic's algorithm)
// and one side of a minimum s-t cut. Provided for completeness as the
// flow-based alternative the paper's related work discusses: a global
// minimum cut needs n-1 such computations, which the sampling-based
// algorithms avoid.
func MaxFlow(g *Graph, s, t int32) (value uint64, sourceSide []bool) {
	nw := flow.NewNetwork(g)
	value = nw.MaxFlow(s, t)
	return value, nw.MinCutSide(s)
}

// Sequential baselines.

// StoerWagner computes the exact minimum cut deterministically in
// O(n³)-ish time — the paper's "SW" baseline.
func StoerWagner(g *Graph) (value uint64, side []bool) {
	r := mincut.StoerWagner(g)
	return r.Value, r.Side
}

// KargerStein computes the minimum cut w.h.p. by repeated recursive
// contraction — the paper's sequential "KS" baseline.
func KargerStein(g *Graph, seed uint64, successProb float64) (value uint64, side []bool) {
	r := mincut.KargerStein(g, rng.New(seed, 0, 0), successProb)
	return r.Value, r.Side
}

// SequentialCC computes connected components with a linear-time
// traversal — the paper's "BGL" baseline.
func SequentialCC(g *Graph) (labels []int32, count int) {
	r := cc.Sequential(g)
	return r.Labels, r.Count
}

// Graph generators used in the paper's evaluation (§5).

// GenConfig controls edge weights of generated graphs.
type GenConfig = gen.Config

// ErdosRenyi returns a G(n, M) graph with exactly m uniformly random
// edges.
func ErdosRenyi(n, m int, seed uint64, cfg GenConfig) *Graph {
	return gen.ErdosRenyiM(n, m, seed, cfg)
}

// WattsStrogatz returns a small-world graph (ring lattice of even degree
// k, rewiring probability beta; the paper uses beta = 0.3).
func WattsStrogatz(n, k int, beta float64, seed uint64, cfg GenConfig) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed, cfg)
}

// BarabasiAlbert returns a scale-free preferential-attachment graph.
func BarabasiAlbert(n, k int, seed uint64, cfg GenConfig) *Graph {
	return gen.BarabasiAlbert(n, k, seed, cfg)
}

// RMAT returns an R-MAT graph on 2^scale vertices with m distinct edges
// (a=0.45, b=c=0.22, the paper's parameters).
func RMAT(scale, m int, seed uint64, cfg GenConfig) *Graph {
	return gen.RMAT(scale, m, seed, cfg)
}
