package transport

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Payload codecs for the TCP fabric (DESIGN.md §4j).
//
// A DATA frame's word payload is encoded with one of three codecs,
// named by a per-frame codec byte that sits between the size vector and
// the body. The codec changes how many bytes a payload costs on the
// wire and nothing else: the receiver always reconstructs the exact
// word sequence, so the ledger's logical communication volume (words,
// h-relations) is byte-identical to the in-process fabric regardless of
// which codec carried the frame.
//
//   - codecRaw: 8 bytes per word, little-endian. Always legal, the
//     fallback whenever nothing else is smaller.
//   - codecPack: fixed-width little-endian packing — one width byte
//     (the smallest 1..7 that holds every word), then n×width bytes.
//     Wins whenever the payload's largest value is under 2^56 (labels,
//     ranks, counts, vertex ids), and both sides cost ~1ns/word: the
//     encoder is a single OR-scan plus branch-free stores, the decoder
//     a masked 8-byte load per word. Chosen over a varint for exactly
//     that reason — per-byte varint loops cost more CPU than the
//     socket they were saving.
//   - codecEdgeDelta: the payload is a sorted (u, v, w) edge stream as
//     produced by dist.EncodeEdges — u non-decreasing, v non-decreasing
//     within a u-run, u and v 32-bit. Encodes Δu, then v (raw when the
//     u-run changed, Δv inside a run), then w, all as uvarints. The
//     dominant payload class of the sample-sort and contraction
//     kernels; a few bits per edge instead of 24 bytes.
//
// Codec support is negotiated per connection in the wire handshake:
// each side advertises a codec bitmask, and a sender only emits codecs
// the intersection allows (raw is always in the set). The sender picks
// the codec per frame with a cheap heuristic and falls back to raw when
// the encoded form fails to beat 8 bytes/word, so the wire never pays
// for an incompressible payload.

// Codec identifiers (the per-frame codec byte).
const (
	codecRaw       byte = 0
	codecPack      byte = 1
	codecEdgeDelta byte = 2
)

// Codec capability bitmasks for the handshake.
const (
	codecMaskRaw byte = 1 << codecRaw
	codecMaskAll byte = 1<<codecRaw | 1<<codecPack | 1<<codecEdgeDelta
)

// EdgeStride is the word stride of an encoded edge stream: (u, v, w)
// per edge, matching dist.EdgeWords. The codec layer recognizes the
// layout structurally so it needs no tagging from the kernels.
const EdgeStride = 3

// minCodecWords is the payload size below which encoding effort cannot
// pay for itself; smaller payloads always go raw.
const minCodecWords = 16

// chooseCodec picks the codec for one payload under the connection's
// negotiated capability mask, returning a pack-width *guess* alongside.
// The guess comes from a deterministic O(n/64) sample, so choosing pack
// costs no full scan; because the sample is a subset of the payload the
// guess can only undershoot the true width, and the encoder verifies
// the true OR during its store pass and re-encodes on the rare
// undershoot — the emitted bytes are always identical to what an exact
// pre-scan would produce.
func chooseCodec(words []uint64, mask byte) (c byte, width int) {
	if len(words) < minCodecWords {
		return codecRaw, 8
	}
	if mask&(1<<codecEdgeDelta) != 0 && isSortedEdgeStream(words) {
		return codecEdgeDelta, 8
	}
	if mask&(1<<codecPack) != 0 {
		// A sampled width of 8 proves the true width is 8 (OR is
		// monotone over subsets): raw, with no full scan at all.
		if w := widthOf(packSample(words)); w < 8 {
			return codecPack, w
		}
	}
	return codecRaw, 8
}

// packSample ORs a fixed subset of the payload: the first and last 16
// words plus a 64-stride pass. Deterministic (same payload, same
// sample) and positioned where real payloads keep their extremes —
// sorted ids end on the maximum, uniform payloads hit every class in
// 32 words. Callers guarantee len(words) >= minCodecWords.
func packSample(words []uint64) uint64 {
	n := len(words)
	var or uint64
	for _, w := range words[:16] {
		or |= w
	}
	for _, w := range words[n-16:] {
		or |= w
	}
	for i := 0; i < n; i += 64 {
		or |= words[i]
	}
	return or
}

// widthOf converts an OR-accumulator to a byte width (1..8).
func widthOf(or uint64) int {
	return (bits.Len64(or|1) + 7) / 8
}

// isSortedEdgeStream reports whether words is a sorted 32-bit edge
// triple stream — the precondition codecEdgeDelta encodes under.
func isSortedEdgeStream(words []uint64) bool {
	if len(words)%EdgeStride != 0 {
		return false
	}
	var pu, pv uint64
	for i := 0; i < len(words); i += EdgeStride {
		u, v := words[i], words[i+1]
		if u>>32 != 0 || v>>32 != 0 {
			return false
		}
		if u < pu || (u == pu && v < pv) {
			return false
		}
		pu, pv = u, v
	}
	return true
}

// packWidth returns the smallest byte width (1..8) that holds every
// word. The hot path never calls this — appendPacked folds the same
// OR-reduce into its store loop — but it is the reference the tests
// hold the sampled-guess-plus-verify encoder to: the emitted width must
// always equal this exact scan's answer.
func packWidth(words []uint64) int {
	var a, b, c, d, e, f, g, h uint64
	i := 0
	for ; i+8 <= len(words); i += 8 {
		a |= words[i]
		b |= words[i+1]
		c |= words[i+2]
		d |= words[i+3]
		e |= words[i+4]
		f |= words[i+5]
		g |= words[i+6]
		h |= words[i+7]
	}
	for ; i < len(words); i++ {
		a |= words[i]
	}
	return (bits.Len64(a|b|c|d|e|f|g|h|1) + 7) / 8
}

// appendEncodedPayload appends the per-frame codec byte and the encoded
// words. The result is guaranteed no larger than the raw encoding plus
// the codec byte: codecPack is only chosen when its fixed width beats 8
// bytes, and the edge-delta encoder rewinds to raw when the deltas fail
// to shrink the payload.
func appendEncodedPayload(buf []byte, words []uint64, mask byte) []byte {
	c, width := chooseCodec(words, mask)
	if c == codecRaw {
		buf = append(buf, codecRaw)
		return appendWords(buf, words)
	}
	buf = append(buf, c)
	mark := len(buf)
	switch c {
	case codecPack:
		var or uint64
		buf, or = appendPacked(buf, words, width)
		if aw := widthOf(or); aw > width {
			// The sampled guess undershot the true width — the lanes
			// above bled into each other, so redo the pass at the exact
			// width (or fall to raw when no width under 8 holds the
			// payload). Either way the final bytes match an exact
			// pre-scan; the sample only decides how often the encoder
			// pays for a second pass.
			buf = buf[:mark]
			if aw == 8 {
				buf = buf[:mark-1]
				buf = append(buf, codecRaw)
				return appendWords(buf, words)
			}
			buf, _ = appendPacked(buf, words, aw)
		}
		return buf
	case codecEdgeDelta:
		var pu, pv uint64
		for i := 0; i < len(words); i += EdgeStride {
			u, v, w := words[i], words[i+1], words[i+2]
			du := u - pu
			buf = binary.AppendUvarint(buf, du)
			if du != 0 {
				buf = binary.AppendUvarint(buf, v)
			} else {
				buf = binary.AppendUvarint(buf, v-pv)
			}
			buf = binary.AppendUvarint(buf, w)
			pu, pv = u, v
		}
	}
	if len(buf)-mark >= 8*len(words) {
		buf = buf[:mark-1]
		buf = append(buf, codecRaw)
		return appendWords(buf, words)
	}
	return buf
}

// appendPacked appends the width byte and the fixed-width body, and
// returns the OR of every payload word — the verifier the sampled
// width guess is checked against. Stomp encoding: reserve n*width plus
// 7 slack bytes, store full 8-byte words advancing by width, trim the
// slack. The power-of-two widths fuse several words per store; the
// fused lanes carry no masks, which is exactly why the returned OR
// matters — a word over the width bleeds into its neighbor's lane, and
// the caller re-encodes when the OR proves that happened.
func appendPacked(buf []byte, words []uint64, width int) ([]byte, uint64) {
	buf = append(buf, byte(width))
	base := len(buf)
	buf = growBytes(buf, len(words)*width+7)
	off := base
	i, n := 0, len(words)
	var or uint64
	switch width {
	case 1:
		for ; i+8 <= n; i += 8 {
			w0, w1, w2, w3 := words[i], words[i+1], words[i+2], words[i+3]
			w4, w5, w6, w7 := words[i+4], words[i+5], words[i+6], words[i+7]
			or |= w0 | w1 | w2 | w3 | w4 | w5 | w6 | w7
			v := w0 | w1<<8 | w2<<16 | w3<<24 | w4<<32 | w5<<40 | w6<<48 | w7<<56
			binary.LittleEndian.PutUint64(buf[off:off+8], v)
			off += 8
		}
	case 2:
		for ; i+4 <= n; i += 4 {
			w0, w1, w2, w3 := words[i], words[i+1], words[i+2], words[i+3]
			or |= w0 | w1 | w2 | w3
			binary.LittleEndian.PutUint64(buf[off:off+8], w0|w1<<16|w2<<32|w3<<48)
			off += 8
		}
	case 4:
		for ; i+2 <= n; i += 2 {
			w0, w1 := words[i], words[i+1]
			or |= w0 | w1
			binary.LittleEndian.PutUint64(buf[off:off+8], w0|w1<<32)
			off += 8
		}
	}
	for ; i < n; i++ {
		w := words[i]
		or |= w
		binary.LittleEndian.PutUint64(buf[off:off+8], w)
		off += width
	}
	return buf[:base+len(words)*width], or
}

// growBytes extends buf by n bytes in one step. Unlike append of a
// fresh make, a reslice within capacity skips zeroing — the callers
// overwrite every byte they keep.
func growBytes(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf[:len(buf)+n]
	}
	return append(buf, make([]byte, n)...)
}

// growWords extends out by n words in one step and returns the new
// slice plus the writable window — decoding fills words by index, which
// the per-word bounds-and-growth checks of append would roughly triple
// the cost of.
func growWords(out []uint64, n int) (grown, dst []uint64) {
	if cap(out)-len(out) < n {
		grown = make([]uint64, len(out)+n, len(out)+n)
		copy(grown, out)
	} else {
		grown = out[:len(out)+n]
	}
	return grown, grown[len(grown)-n:]
}

// decodeCodec appends exactly n decoded words to out. body must contain
// the whole encoded section and nothing else; truncation, trailing
// bytes, and unknown codecs are errors, never panics (the input crosses
// a trust boundary — see FuzzDecodeCodec).
func decodeCodec(c byte, body []byte, n int, out []uint64) ([]uint64, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative word count %d", n)
	}
	// Every non-raw codec costs ≥1 byte/word, raw exactly 8: a count the
	// body cannot hold is corrupt, and rejecting it first bounds how much
	// the appends below can allocate.
	if c != codecRaw && n > len(body) {
		return nil, fmt.Errorf("payload %dB cannot hold %d words under codec %d", len(body), n, c)
	}
	switch c {
	case codecRaw:
		if len(body) != 8*n {
			return nil, fmt.Errorf("raw payload %dB, size vector says %d words", len(body), n)
		}
		out, dst := growWords(out, n)
		for i := range dst {
			dst[i] = binary.LittleEndian.Uint64(body[8*i:])
		}
		return out, nil
	case codecPack:
		if len(body) < 1 {
			return nil, fmt.Errorf("pack payload missing width byte")
		}
		width := int(body[0])
		if width < 1 || width > 8 {
			return nil, fmt.Errorf("pack width %d out of range", width)
		}
		body = body[1:]
		if len(body) != n*width {
			return nil, fmt.Errorf("pack payload %dB, want %d words × width %d", len(body), n, width)
		}
		out, dst := growWords(out, n)
		i, off := 0, 0
		// The power-of-two widths split one 8-byte load into several
		// words, mirroring the fused stores on the encode side.
		switch width {
		case 1:
			for ; i+8 <= n; i += 8 {
				v := binary.LittleEndian.Uint64(body[off:])
				dst[i] = v & 0xff
				dst[i+1] = v >> 8 & 0xff
				dst[i+2] = v >> 16 & 0xff
				dst[i+3] = v >> 24 & 0xff
				dst[i+4] = v >> 32 & 0xff
				dst[i+5] = v >> 40 & 0xff
				dst[i+6] = v >> 48 & 0xff
				dst[i+7] = v >> 56
				off += 8
			}
		case 2:
			for ; i+4 <= n; i += 4 {
				v := binary.LittleEndian.Uint64(body[off:])
				dst[i] = v & 0xffff
				dst[i+1] = v >> 16 & 0xffff
				dst[i+2] = v >> 32 & 0xffff
				dst[i+3] = v >> 48
				off += 8
			}
		case 4:
			for ; i+2 <= n; i += 2 {
				v := binary.LittleEndian.Uint64(body[off:])
				dst[i] = v & 0xffffffff
				dst[i+1] = v >> 32
				off += 8
			}
		}
		mask := ^uint64(0) >> (64 - 8*uint(width))
		for ; i < n && off+8 <= len(body); i++ {
			dst[i] = binary.LittleEndian.Uint64(body[off:]) & mask
			off += width
		}
		for ; i < n; i++ { // tail words too close to the end for an 8-byte load
			var w uint64
			for j := width - 1; j >= 0; j-- {
				w = w<<8 | uint64(body[off+j])
			}
			dst[i] = w
			off += width
		}
		return out, nil
	case codecEdgeDelta:
		if n%EdgeStride != 0 {
			return nil, fmt.Errorf("edge-delta payload of %d words (stride %d)", n, EdgeStride)
		}
		var pu, pv uint64
		for i := 0; i < n; i += EdgeStride {
			du, k := binary.Uvarint(body)
			if k <= 0 {
				return nil, fmt.Errorf("edge-delta payload truncated at edge %d", i/EdgeStride)
			}
			body = body[k:]
			vv, k := binary.Uvarint(body)
			if k <= 0 {
				return nil, fmt.Errorf("edge-delta payload truncated at edge %d", i/EdgeStride)
			}
			body = body[k:]
			w, k := binary.Uvarint(body)
			if k <= 0 {
				return nil, fmt.Errorf("edge-delta payload truncated at edge %d", i/EdgeStride)
			}
			body = body[k:]
			u := pu + du
			v := vv
			if du == 0 {
				v = pv + vv
			}
			out = append(out, u, v, w)
			pu, pv = u, v
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("edge-delta payload has %d trailing bytes", len(body))
		}
		return out, nil
	default:
		return nil, fmt.Errorf("unknown payload codec %d", c)
	}
}
