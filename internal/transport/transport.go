// Package transport abstracts BSP message delivery behind a Transport
// interface, decoupling the superstep semantics in internal/bsp (staging,
// barrier-synchronized delivery, h-relation accounting) from the fabric
// that moves the words. Two implementations exist:
//
//   - Local: the in-process fabric — sender-owned staging rows,
//     double-buffered mailboxes delivered by pointer swap, and a two-phase
//     sense-reversing barrier. This is the zero-overhead fast path the BSP
//     runtime has always had; internal/bsp reaches into it through
//     concrete types (cached staging rows, no interface calls per Send).
//   - TCP (Mesh/Session): each rank is a separate OS process holding
//     persistent length-prefixed framed connections to its peers. A
//     superstep's staged words are coalesced into one frame per peer;
//     frames carry the sender's full per-destination size vector, so every
//     rank assembles the same p×p size matrix and computes a ledger
//     (supersteps, per-superstep h-relations, volume) byte-identical to
//     the in-process fabric's.
//
// The unit of exchange is the superstep: an Endpoint stages words per
// destination, and Exchange() delivers everything staged fabric-wide and
// blocks until this rank's inbound payloads arrived — the BSP barrier.
// Messages staged in superstep s are readable (Recv) only after the
// Exchange, matching §2.1 of the paper.
package transport

import (
	"errors"
	"sync/atomic"
	"time"
)

// Fabric kind labels, reported through Kind() and surfaced in serving
// metrics so local and socket runs are distinguishable in traces.
const (
	KindLocal = "local"
	KindTCP   = "tcp"
)

// ErrPeerLost marks a transport failure caused by losing the connection
// to a peer worker process (connection reset, EOF mid-run, failed
// handshake). The serving layer maps it to a retryable 503, distinct
// from kernel faults and cancellations. Test with errors.Is.
var ErrPeerLost = errors.New("transport: peer connection lost")

// ErrCancelled marks abort causes that represent cooperative
// cancellation rather than failure. The bsp layer's cancellation errors
// match it (via errors.Is), which is how the TCP fabric knows to flag
// its abort frames as cancels so remote peers rewrap them as
// cancellations too — the distinction survives the wire.
var ErrCancelled = errors.New("transport: cancelled")

// RemoteAbort is the error surfaced when a peer process aborted the run
// (its processor panicked, its machine was cancelled, or it lost a mesh
// peer). Cancelled distinguishes cooperative cancellation from failure
// so the BSP layer can rewrap it with its own cancellation sentinel;
// PeerLost preserves the ErrPeerLost identity across the wire, so a
// survivor told about a dead peer by another survivor fails its run the
// same way as the rank that noticed first.
type RemoteAbort struct {
	Rank      int    // mesh rank that originated the abort
	Msg       string // the originating error's text
	Cancelled bool   // true when the origin was a cooperative cancel
	PeerLost  bool   // true when the origin was a lost peer connection
}

func (e *RemoteAbort) Error() string {
	return "transport: remote abort from rank " + itoa(e.Rank) + ": " + e.Msg
}

// Is lets errors.Is(err, ErrPeerLost) see through a relayed abort.
func (e *RemoteAbort) Is(target error) bool {
	return target == ErrPeerLost && e.PeerLost
}

// Ledger is a fabric's communication accounting for one run: the ground
// truth the BSP cost model is validated against. Every rank of a fabric
// derives an identical ledger (Local: the finalizing processor computes
// it once; TCP: every process computes it from the same size matrices).
type Ledger struct {
	Supersteps int
	// Volume is the sum over supersteps of the h-relation (the largest
	// number of words any rank sent or received that superstep).
	Volume     uint64
	HRelations []uint64
	// SimComm is the virtual communication time Σ(h·wordTime + syncLatency)
	// accrued under the configured cost model.
	SimComm time.Duration
	// WireBytes counts real bytes moved over sockets (frame headers
	// included), so ledger words and wire traffic can be compared; always
	// zero on the Local fabric.
	WireBytes uint64
	// WireRawBytes counts what the same frames would have cost under
	// the raw (uncompressed) payload codec; WireRawBytes − WireBytes is
	// what the codecs saved. Always zero on the Local fabric.
	WireRawBytes uint64
}

// add folds another ledger's accounting into l (used for Split
// sub-groups and the TCP end-of-run ledger merge).
func (l *Ledger) add(o *Ledger) {
	l.Supersteps += o.Supersteps
	l.Volume += o.Volume
	l.HRelations = append(l.HRelations, o.HRelations...)
	l.SimComm += o.SimComm
}

// Endpoint is one rank's handle on a fabric. It is owned by exactly one
// goroutine. The Local fabric's *LocalEndpoint is the concrete fast
// path; remote fabrics are driven through this interface.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size()).
	Rank() int
	// Size returns the fabric's rank count.
	Size() int
	// Send stages a copy of words for delivery to rank `to` at the next
	// Exchange, appending to anything already staged for `to`.
	Send(to int, words []uint64)
	// SendOwned stages words transferring ownership of the slice (no
	// copy when nothing is staged for `to` yet). The caller must not
	// touch the slice afterwards.
	SendOwned(to int, words []uint64)
	// Recv returns the words delivered from rank `src` at the last
	// Exchange. The slice aliases fabric storage, valid until the next
	// Exchange.
	Recv(src int) []uint64
	// Buffer returns a word slice of length n for building payloads,
	// recycled from buffers the fabric has reclaimed.
	Buffer(n int) []uint64
	// Exchange is the superstep barrier: it delivers everything staged
	// fabric-wide, blocks until this rank's inbound payloads for the
	// superstep arrived, and accounts the superstep's h-relation on the
	// fabric ledger. It returns the abort cause if the fabric failed.
	Exchange() error
}

// Transport is a p-rank message fabric for one BSP run. The Local
// fabric hosts all p ranks in-process; a TCP group hosts exactly the one
// rank this worker process plays, with the rest reached over sockets.
type Transport interface {
	// Kind returns the fabric label (KindLocal, KindTCP).
	Kind() string
	// Size returns the fabric's rank count.
	Size() int
	// LocalRanks lists the ranks hosted in this process, ascending.
	LocalRanks() []int
	// Endpoint returns the handle for a locally hosted rank.
	Endpoint(rank int) Endpoint
	// AbortFlag exposes the fabric's abort flag for cheap polling (one
	// relaxed atomic load) on compute-only paths.
	AbortFlag() *atomic.Bool
	// Abort poisons the fabric: pending and future Exchanges return err,
	// parked waiters wake, and (TCP) peers are notified with an ABORT
	// frame. The first cause wins; later calls are no-ops.
	Abort(err error)
	// Err returns the abort cause, or nil.
	Err() error
	// SetCost configures the emulated interconnect charged per exchange.
	SetCost(wordTime, syncLatency time.Duration)
	// Derive creates the sub-fabric for a Split group. members lists the
	// group's ranks in THIS fabric, in sub-rank order; tag is a
	// deterministic group id every member derives identically (it keys
	// frame routing on socket fabrics). The sub-fabric inherits the cost
	// model. On fabrics hosting several local ranks, Derive is called
	// once per group (the bsp layer shares the result among members).
	Derive(tag uint64, members []int) (Transport, error)
	// FoldChild folds a derived sub-fabric's ledger into this fabric's
	// accounting, exactly once per group (the bsp layer calls it from
	// the group's rank 0).
	FoldChild(sub Transport)
	// Reset prepares the fabric for a fresh run, keeping buffer
	// capacity. Socket fabrics are single-run and return an error once
	// used.
	Reset() error
	// FinishRun completes a successful run's accounting. On socket
	// fabrics it performs the end-of-run ledger merge (every process
	// broadcasts the sub-group ledgers it folded, so all processes
	// account sibling groups they were not members of); on Local it is a
	// no-op.
	FinishRun() error
	// Ledger returns the run's accounting. Valid after FinishRun.
	Ledger() Ledger
	// Close releases fabric resources (sockets, session registrations).
	Close() error
}

// itoa is strconv.Itoa without the import (hot-path-free helper).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
