package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// The TCP fabric: each mesh rank is a separate worker process holding
// one persistent framed connection to every peer (full mesh). On top of
// the mesh, a Session scopes one BSP run (keyed by epoch), and tcpGroup
// implements Transport+Endpoint for the run's root communicator and
// every Split sub-group (keyed by deterministic group tags).
//
// Superstep delivery: Exchange coalesces everything staged for a peer
// into one data frame carrying the sender's full per-destination size
// vector, so every member reconstructs the same p×p size matrix and
// accounts the identical h-relation the in-process finalizer would.
// Read pumps (one goroutine per connection) decode inbound frames and
// park them on the owning group's step state; Exchange blocks on a
// condition variable until all gp-1 peer frames for its step arrived.
//
// Aborts ride the PR 4 protocol: a local Machine.Cancel (or worker
// panic) poisons the session and broadcasts an ABORT frame to every
// peer; a lost connection aborts every session on both sides with
// ErrPeerLost. End of run, FinishRun exchanges LEDGER frames so every
// process folds the sub-group ledgers it did not witness (each group's
// rank-0 process logs that group's ledger; the flat union over processes
// equals the in-process hierarchical fold as a multiset).
//
// Self-healing (DESIGN.md §4i): the mesh outlives individual
// connections. Each peer rank is a slot whose connection can be
// replaced — a maintenance loop sends per-peer heartbeats and runs a
// phi-accrual failure detector (silent peers are severed once phi
// crosses the threshold), the accept loop stays open for the mesh's
// lifetime so a reincarnated peer (strictly larger incarnation number)
// or a healed partition (same incarnation) can drain-and-reconnect its
// slot, and surviving higher ranks redial lost lower ranks — the same
// orientation as initial setup (higher dials lower), so reconnects
// never cross. Sessions in flight when a connection dies abort with
// ErrPeerLost; the mesh itself stays up and heals.

// MeshConfig configures one worker process's position in the mesh.
type MeshConfig struct {
	// Rank is this process's mesh rank in [0, len(Addrs)).
	Rank int
	// Addrs lists every rank's listen address, index = rank.
	Addrs []string
	// MachineEpoch identifies the deployment generation; handshakes
	// reject peers from a different epoch.
	MachineEpoch uint64
	// Listener, when non-nil, is used instead of listening on
	// Addrs[Rank] (tests pass pre-bound 127.0.0.1:0 listeners).
	Listener net.Listener
	// DialTimeout bounds connection establishment, covering peer-process
	// startup skew (default 15s).
	DialTimeout time.Duration
	// Control receives out-of-band job-control frames (shard worker
	// coordination). It runs on a read-pump goroutine and must not block.
	Control func(src int, epoch uint64, payload []byte)
	// Incarnation is this process's monotonic incarnation number for its
	// rank (default 1). A supervisor respawning a crashed worker bumps
	// it; peers use it to tell a legitimate reincarnation from a stale
	// duplicate dialer.
	Incarnation uint64
	// HeartbeatInterval paces the liveness beacons and the failure
	// detector's checks (default 500ms).
	HeartbeatInterval time.Duration
	// PhiThreshold is the phi-accrual suspicion level at which a silent
	// peer's connection is severed (default 8, ≈2.4 quiet heartbeat
	// intervals at steady state).
	PhiThreshold float64
	// OnPeerUp, when non-nil, runs after a peer's connection is
	// (re)established. incarnation is the peer's handshaken incarnation
	// for accepted connections and 0 for dialed ones (the dial preamble
	// is one-way). Runs off the mesh lock; must not block for long.
	OnPeerUp func(rank int, incarnation uint64)
	// OnPeerDown, when non-nil, runs after a peer's current connection
	// is lost. Runs off the mesh lock; must not block for long.
	OnPeerDown func(rank int)
	// CrashFn is what the crash wire fault executes (default
	// os.Exit(CrashExitCode)). In-process tests override it.
	CrashFn func()
	// DisableCodecs restricts this process to the raw payload codec:
	// it advertises only raw in handshakes and never encodes outbound
	// frames. Benchmark baselines and wire-format debugging use it; the
	// mesh interoperates freely with codec-enabled peers (codec choice
	// is per connection direction, negotiated to the intersection).
	DisableCodecs bool
}

// CrashExitCode is the exit status of a fault-injected hard crash
// (`crash@rank:step`). Supervisors use it to tell an injected chaos
// crash (respawn clean, without the fault spec) from an organic one.
const CrashExitCode = 86

// Mesh is a worker process's set of persistent peer connections. One
// mesh serves many sessions (jobs) over its lifetime, and each peer
// slot's connection can die and be replaced without tearing the mesh
// down.
type Mesh struct {
	rank   int
	p      int
	epoch  uint64
	inc    uint64
	codecs byte // payload codecs this process is willing to send/receive

	ln      net.Listener
	control func(src int, epoch uint64, payload []byte)
	addrs   []string

	hbInterval time.Duration
	phiThresh  float64
	onPeerUp   func(rank int, incarnation uint64)
	onPeerDown func(rank int)
	crashFn    func()

	mu        sync.Mutex
	peers     []*peerSlot
	sessions  map[uint64]*Session
	orphans   map[uint64][]frame
	closed    bool
	partUntil time.Time          // injected partition deadline
	hbFilter  func(dst int) bool // test hook: false = suppress beacons to dst

	stop  chan struct{}
	pumps sync.WaitGroup
	loops sync.WaitGroup
}

// peerSlot is the durable per-rank state; the connection inside it is
// replaceable. All fields are guarded by the mesh mutex except the
// detector, which has its own.
type peerSlot struct {
	rank        int
	cur         *peerConn // nil while the peer is down
	incarnation uint64    // largest handshaken incarnation seen
	det         *phiDetector
	dialing     bool // a redial attempt is in flight
}

// maxOrphans bounds frames buffered for a not-yet-registered session or
// group; beyond it the sender is protocol-broken and the frames are
// dropped (the eventual barrier wait surfaces the loss as a stall that
// the job deadline converts into a cancel).
const maxOrphans = 1 << 16

// NewMesh connects this process into the full mesh: it listens at
// Addrs[Rank], dials every lower rank (with retry, so start order does
// not matter), accepts every higher rank, and returns once all p-1
// connections are up and handshaken.
//
// A reincarnated worker joins through exactly the same flow: its dials
// to lower ranks land on their still-open accept loops, and surviving
// higher ranks redial it from their maintenance loops within about one
// heartbeat interval.
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	p := len(cfg.Addrs)
	if cfg.Rank < 0 || cfg.Rank >= p {
		return nil, fmt.Errorf("transport: mesh rank %d of %d", cfg.Rank, p)
	}
	ln := cfg.Listener
	if ln == nil && p > 1 {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", cfg.Addrs[cfg.Rank], err)
		}
	}
	inc := cfg.Incarnation
	if inc == 0 {
		inc = 1
	}
	hb := cfg.HeartbeatInterval
	if hb <= 0 {
		hb = 500 * time.Millisecond
	}
	phi := cfg.PhiThreshold
	if phi <= 0 {
		phi = 8
	}
	codecs := codecMaskAll
	if cfg.DisableCodecs {
		codecs = codecMaskRaw
	}
	m := &Mesh{
		rank:       cfg.Rank,
		p:          p,
		epoch:      cfg.MachineEpoch,
		inc:        inc,
		codecs:     codecs,
		ln:         ln,
		control:    cfg.Control,
		addrs:      append([]string(nil), cfg.Addrs...),
		hbInterval: hb,
		phiThresh:  phi,
		onPeerUp:   cfg.OnPeerUp,
		onPeerDown: cfg.OnPeerDown,
		crashFn:    cfg.CrashFn,
		peers:      make([]*peerSlot, p),
		sessions:   make(map[uint64]*Session),
		orphans:    make(map[uint64][]frame),
		stop:       make(chan struct{}),
	}
	for j := 0; j < p; j++ {
		if j != m.rank {
			m.peers[j] = &peerSlot{rank: j}
		}
	}
	timeout := cfg.DialTimeout
	if timeout <= 0 {
		timeout = 15 * time.Second
	}
	deadline := time.Now().Add(timeout)

	accepted := make(chan error, 1)
	if ln != nil {
		go m.acceptLoop(accepted)
	}
	// Dial every lower rank; they are accepting already or will be soon.
	for j := 0; j < m.rank; j++ {
		conn, err := dialRetry(cfg.Addrs[j], deadline)
		var peerCodecs byte
		if err == nil {
			peerCodecs, err = m.dialHandshake(conn, deadline)
		}
		if err != nil {
			if conn != nil {
				conn.Close()
			}
			m.Close()
			return nil, fmt.Errorf("transport: dial rank %d (%s): %w", j, cfg.Addrs[j], err)
		}
		m.admitPeer(j, 0, conn, peerCodecs)
	}
	// Wait for every higher rank to dial in (at first start they dial on
	// their own; at rejoin the survivors' maintenance loops redial us).
	for {
		m.mu.Lock()
		missing := 0
		for j := m.rank + 1; j < p; j++ {
			if m.peers[j].cur == nil {
				missing++
			}
		}
		m.mu.Unlock()
		if missing == 0 {
			break
		}
		select {
		case err := <-accepted:
			if err != nil {
				m.Close()
				return nil, err
			}
		case <-time.After(time.Until(deadline)):
			m.Close()
			return nil, fmt.Errorf("%w: %d higher rank(s) never dialed in", ErrPeerLost, missing)
		}
	}
	if p > 1 {
		m.loops.Add(1)
		go m.maintain()
	}
	return m, nil
}

// dialHandshake runs the dialer's half of the wire handshake: send the
// preamble, read back the accepter's ack to learn its codec support.
func (m *Mesh) dialHandshake(conn net.Conn, deadline time.Time) (peerCodecs byte, err error) {
	if err := writePreamble(conn, m.rank, m.epoch, m.inc, m.codecs); err != nil {
		return 0, err
	}
	_ = conn.SetReadDeadline(deadline)
	peerCodecs, err = readAck(conn)
	_ = conn.SetReadDeadline(time.Time{})
	return peerCodecs, err
}

func dialRetry(addr string, deadline time.Time) (net.Conn, error) {
	backoff := 10 * time.Millisecond
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, fmt.Errorf("%w: %v", ErrPeerLost, err)
		}
		time.Sleep(backoff)
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// acceptLoop admits higher-rank dialers for the mesh's whole lifetime
// (initial setup and every later rejoin); each handshake result is
// signalled through ch, which only NewMesh's setup wait reads.
func (m *Mesh) acceptLoop(ch chan<- error) {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			m.mu.Lock()
			closed := m.closed
			m.mu.Unlock()
			if !closed {
				select {
				case ch <- fmt.Errorf("transport: accept: %w", err):
				default:
				}
			}
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		rank, inc, peerCodecs, err := readPreamble(conn, m.epoch)
		_ = conn.SetReadDeadline(time.Time{})
		if err == nil && (rank <= m.rank || rank >= m.p) {
			err = fmt.Errorf("%w: unexpected dialer rank %d", ErrPeerLost, rank)
		}
		if err == nil {
			// Pre-check admission before acking so a doomed dialer (stale
			// incarnation, partition in force) sees a silent close, never
			// an ack; admitPeer re-checks authoritatively under the lock.
			m.mu.Lock()
			sl := m.peers[rank]
			reject := m.closed || sl == nil || time.Now().Before(m.partUntil) || inc < sl.incarnation
			m.mu.Unlock()
			if reject {
				conn.Close()
				continue
			}
			err = writeAck(conn, m.codecs)
		}
		if err != nil {
			conn.Close()
			select {
			case ch <- err:
			default:
			}
			continue
		}
		m.admitPeer(rank, inc, conn, peerCodecs)
		select {
		case ch <- nil:
		default:
		}
	}
}

// admitPeer installs a handshaken connection into its rank's slot and
// starts its read pump. inc is the dialer's handshaken incarnation for
// accepted connections and 0 for connections this process dialed (the
// preamble is one-way). A dialer presenting an incarnation below the
// slot's high-water mark is a stale duplicate and is rejected; an
// equal incarnation is a reconnect after a severed connection (healed
// partition) and replaces the old one; a higher incarnation is a
// reincarnated peer — the old connection is drained (closed) and the
// slot rebound.
func (m *Mesh) admitPeer(rank int, inc uint64, conn net.Conn, peerCodecs byte) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // supersteps are latency-bound, not throughput-bound
	}
	// Send with codecs both sides support; raw is always in the set.
	pc := newPeerConn(rank, conn, peerCodecs&m.codecs)
	m.mu.Lock()
	sl := m.peers[rank]
	if m.closed || sl == nil || time.Now().Before(m.partUntil) || inc < sl.incarnation {
		m.mu.Unlock()
		conn.Close()
		return
	}
	old := sl.cur
	sl.cur = pc
	if inc > sl.incarnation {
		sl.incarnation = inc
	}
	det := newPhiDetector(m.hbInterval)
	sl.det = det
	up := m.onPeerUp
	m.mu.Unlock()
	if old != nil {
		old.kill()
	}
	m.pumps.Add(2)
	go m.readPump(pc, det)
	go m.writePump(pc)
	if up != nil {
		up(rank, inc)
	}
}

// Rank returns this process's mesh rank.
func (m *Mesh) Rank() int { return m.rank }

// Addrs returns the mesh's rank-indexed address list (a copy) — what a
// replacement process for a dead rank needs to rejoin.
func (m *Mesh) Addrs() []string { return append([]string(nil), m.addrs...) }

// Size returns the mesh's process count.
func (m *Mesh) Size() int { return m.p }

// readPump decodes inbound frames from one peer until the connection
// dies, routing each to its session (or the orphan buffer). Every
// inbound frame feeds the slot's failure detector as proof of life.
func (m *Mesh) readPump(pc *peerConn, det *phiDetector) {
	defer m.pumps.Done()
	br := bufio.NewReaderSize(pc.conn, 64<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			pc.kill()
			m.connLost(pc, err)
			return
		}
		switch f.kind {
		case frameHeartbeat:
			det.observe(time.Now())
			f.release()
			continue
		case frameControl:
			det.touch(time.Now())
			if h := m.control; h != nil {
				// Control handlers consume the payload synchronously
				// (the shard tier unmarshals it); nothing retains it.
				h(f.src, f.epoch, f.payload)
			}
			f.release()
			continue
		}
		det.touch(time.Now())
		m.mu.Lock()
		s := m.sessions[f.epoch]
		if s == nil {
			if !m.closed && len(m.orphans[f.epoch]) < maxOrphans {
				m.orphans[f.epoch] = append(m.orphans[f.epoch], f)
			} else {
				f.release()
			}
			m.mu.Unlock()
			continue
		}
		m.mu.Unlock()
		s.deliver(f)
	}
}

// connLost runs when a read pump exits: if the dead connection is
// still its slot's current one, the peer is marked down, every live
// session aborts with ErrPeerLost, and OnPeerDown fires. A connection
// already drained out of its slot (replaced by a rejoin) dies silently.
func (m *Mesh) connLost(pc *peerConn, cause error) {
	m.mu.Lock()
	sl := m.peers[pc.rank]
	isCur := sl != nil && sl.cur == pc
	if isCur {
		sl.cur = nil
	}
	closed := m.closed
	down := m.onPeerDown
	m.mu.Unlock()
	if !isCur || closed {
		return
	}
	m.peerLost(pc.rank, cause)
	if down != nil {
		down(pc.rank)
	}
}

// peerLost aborts every live session when a connection dies.
func (m *Mesh) peerLost(rank int, cause error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	err := fmt.Errorf("%w: rank %d: %v", ErrPeerLost, rank, cause)
	for _, s := range sessions {
		s.abort(err, true)
	}
}

// peer returns the live connection to a mesh rank.
func (m *Mesh) peer(dst int) (*peerConn, error) {
	m.mu.Lock()
	var pc *peerConn
	if dst >= 0 && dst < len(m.peers) {
		if sl := m.peers[dst]; sl != nil {
			pc = sl.cur
		}
	}
	m.mu.Unlock()
	if pc == nil {
		return nil, fmt.Errorf("%w: no connection to rank %d", ErrPeerLost, dst)
	}
	return pc, nil
}

// sendFrame queues one unpooled (caller-owned, possibly shared) frame
// buffer for a mesh peer's writer, returning the bytes queued.
func (m *Mesh) sendFrame(dst int, buf []byte) (int, error) {
	pc, err := m.peer(dst)
	if err != nil {
		return 0, err
	}
	if err := pc.send(sendItem{buf: buf}); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// SendControl delivers an out-of-band job-control payload to a peer
// (or, with dst == own rank, loops it back through the handler).
func (m *Mesh) SendControl(dst int, epoch uint64, payload []byte) error {
	if dst == m.rank {
		if h := m.control; h != nil {
			h(m.rank, epoch, payload)
		}
		return nil
	}
	buf := appendFrameHeader(make([]byte, 0, 4+frameHeaderLen+len(payload)), frameControl, epoch, 0, 0, m.rank)
	buf = append(buf, payload...)
	patchFrameLen(buf)
	_, err := m.sendFrame(dst, buf)
	return err
}

// DropPeers severs every peer connection — the "drop" wire fault. Both
// sides' read pumps fail, aborting live sessions with ErrPeerLost. The
// maintenance loops on both sides then heal the mesh within about one
// heartbeat interval (unless a partition is in force).
func (m *Mesh) DropPeers() {
	m.mu.Lock()
	conns := make([]*peerConn, 0, len(m.peers))
	for _, sl := range m.peers {
		if sl != nil && sl.cur != nil {
			conns = append(conns, sl.cur)
		}
	}
	m.mu.Unlock()
	for _, pc := range conns {
		pc.kill()
	}
}

// Partition simulates a network partition of this process for d: every
// connection is severed and, until the deadline passes, inbound
// handshakes are rejected and outbound redials suppressed. After the
// deadline the mesh heals through the ordinary rejoin machinery. The
// seam the `partition@rank:step:dur` fault kind compiles onto.
func (m *Mesh) Partition(d time.Duration) {
	m.mu.Lock()
	if until := time.Now().Add(d); until.After(m.partUntil) {
		m.partUntil = until
	}
	m.mu.Unlock()
	m.DropPeers()
}

// maintain is the mesh's self-healing loop: every heartbeat interval it
// beacons each live peer, severs peers whose phi-accrual suspicion
// crossed the threshold, and redials lost lower ranks (the same
// higher-dials-lower orientation as initial setup, so reconnects never
// cross).
func (m *Mesh) maintain() {
	defer m.loops.Done()
	t := time.NewTicker(m.hbInterval)
	defer t.Stop()
	buf := appendFrameHeader(make([]byte, 0, 4+frameHeaderLen), frameHeartbeat, 0, 0, 0, m.rank)
	patchFrameLen(buf)
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		type livePeer struct {
			pc  *peerConn
			det *phiDetector
		}
		var live []livePeer
		var redial []int
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return
		}
		part := now.Before(m.partUntil)
		filter := m.hbFilter
		for r, sl := range m.peers {
			if sl == nil {
				continue
			}
			switch {
			case sl.cur != nil:
				live = append(live, livePeer{sl.cur, sl.det})
			case r < m.rank && !part && !sl.dialing:
				sl.dialing = true
				redial = append(redial, r)
			}
		}
		m.mu.Unlock()
		for _, lp := range live {
			if lp.det.phi(now) > m.phiThresh {
				// Silent too long: sever, so the read pump runs the
				// ErrPeerLost path and the redial machinery takes over.
				lp.pc.kill()
				continue
			}
			if filter != nil && !filter(lp.pc.rank) {
				continue
			}
			// One shared read-only beacon buffer for every peer; a full
			// queue means frames are flowing, which beats the beacon.
			lp.pc.tryEnqueue(sendItem{buf: buf})
		}
		for _, r := range redial {
			go m.redial(r)
		}
	}
}

// redial attempts one reconnect to a lost lower rank.
func (m *Mesh) redial(rank int) {
	defer func() {
		m.mu.Lock()
		if sl := m.peers[rank]; sl != nil {
			sl.dialing = false
		}
		m.mu.Unlock()
	}()
	timeout := 4 * m.hbInterval
	if timeout < time.Second {
		timeout = time.Second
	}
	conn, err := net.DialTimeout("tcp", m.addrs[rank], timeout)
	if err != nil {
		return
	}
	peerCodecs, err := m.dialHandshake(conn, time.Now().Add(timeout))
	if err != nil {
		conn.Close()
		return
	}
	m.admitPeer(rank, 0, conn, peerCodecs)
}

// crash runs the configured crash action — the `crash@rank:step` fault.
func (m *Mesh) crash() {
	if m.crashFn != nil {
		m.crashFn()
		return
	}
	os.Exit(CrashExitCode)
}

// Incarnation returns this process's incarnation number.
func (m *Mesh) Incarnation() uint64 { return m.inc }

// PeerUp reports whether the connection to rank is currently live (own
// rank: always true).
func (m *Mesh) PeerUp(rank int) bool {
	if rank == m.rank {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rank < 0 || rank >= m.p || m.peers[rank] == nil {
		return false
	}
	cur := m.peers[rank].cur
	return cur != nil && !cur.dead.Load()
}

// PeersUp returns how many of the p-1 peer connections are live.
func (m *Mesh) PeersUp() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	up := 0
	for _, sl := range m.peers {
		if sl != nil && sl.cur != nil && !sl.cur.dead.Load() {
			up++
		}
	}
	return up
}

// PeerIncarnation returns the largest incarnation handshaken from rank
// (0 when the peer has only ever been dialed, never accepted).
func (m *Mesh) PeerIncarnation(rank int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rank < 0 || rank >= m.p || m.peers[rank] == nil {
		return 0
	}
	return m.peers[rank].incarnation
}

// SetHeartbeatFilter installs a test hook suppressing outbound beacons
// to ranks the filter rejects — the way tests starve the phi detector
// without killing the TCP connection.
func (m *Mesh) SetHeartbeatFilter(f func(dst int) bool) {
	m.mu.Lock()
	m.hbFilter = f
	m.mu.Unlock()
}

// Close tears the mesh down: maintenance loop, listener, connections,
// and sessions.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	close(m.stop)
	conns := make([]*peerConn, 0, len(m.peers))
	for _, sl := range m.peers {
		if sl != nil && sl.cur != nil {
			conns = append(conns, sl.cur)
		}
	}
	sessions := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		sessions = append(sessions, s)
	}
	m.mu.Unlock()
	for _, s := range sessions {
		s.abort(fmt.Errorf("%w: mesh closed", ErrPeerLost), false)
	}
	if m.ln != nil {
		m.ln.Close()
	}
	for _, pc := range conns {
		pc.kill()
	}
	m.loops.Wait()
	m.pumps.Wait()
	return nil
}

// Session scopes one BSP run (one job) on a mesh, keyed by epoch. It
// owns the run's groups, abort state, fold-log, and wire-byte count.
type Session struct {
	mesh  *Mesh
	epoch uint64

	mu      sync.Mutex
	groups  map[uint64]*tcpGroup
	orphans map[uint64][]frame
	abortE  error
	sent    bool // abort frames already broadcast

	abortFlag atomic.Bool
	// wireBytes counts what this process actually wrote for the session;
	// wireRawBytes counts what the same frames would have cost had every
	// payload gone out under the raw codec. Their difference is the
	// codec's savings (the camc_wire_saved_bytes_total metric); neither
	// feeds the ledger's logical volume, which is counted in words.
	wireBytes    atomic.Uint64
	wireRawBytes atomic.Uint64

	// wordPool recycles []uint64 payload buffers session-wide: Buffer
	// hands them to kernels, the decode path fills inbox rows from them,
	// and Exchange recycles the previous superstep's rows. Safe because
	// an endpoint's Recv data is only guaranteed until its next Exchange
	// and kernels never re-stage a received slice as owned (they stage
	// into Buffer slices).
	wordPool sync.Pool

	// wireHook, when non-nil, runs before each root-group Exchange's
	// sends with the group superstep; it may request a drop (sever all
	// connections), a stall (delay the outbound flush), a crash (hard
	// process exit), or a partition (sever + refuse reconnects for the
	// duration). The seam internal/faults' transport kinds compile onto.
	wireHook func(step uint64) (drop bool, stall time.Duration, crash bool, partition time.Duration)

	foldMu  sync.Mutex
	foldLog []Ledger

	root *tcpGroup
}

// NewSession registers a run on the mesh. members lists the mesh ranks
// participating in the run's root group, ascending; this process's rank
// must be among them. The returned session's Root() group is the
// Transport to hand to bsp.NewMachineOver.
func (m *Mesh) NewSession(epoch uint64, members []int) (*Session, error) {
	localRank := -1
	for i, r := range members {
		if r == m.rank {
			localRank = i
		}
		if r < 0 || r >= m.p {
			return nil, fmt.Errorf("transport: session member rank %d of %d", r, m.p)
		}
	}
	if localRank < 0 {
		return nil, fmt.Errorf("transport: rank %d not in session members %v", m.rank, members)
	}
	s := &Session{
		mesh:    m,
		epoch:   epoch,
		groups:  make(map[uint64]*tcpGroup),
		orphans: make(map[uint64][]frame),
	}
	s.root = newTCPGroup(s, 0, append([]int(nil), members...), localRank)
	s.groups[0] = s.root
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: mesh closed", ErrPeerLost)
	}
	if _, dup := m.sessions[epoch]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: session epoch %d already registered", epoch)
	}
	m.sessions[epoch] = s
	backlog := m.orphans[epoch]
	delete(m.orphans, epoch)
	m.mu.Unlock()
	for _, f := range backlog {
		s.deliver(f)
	}
	return s, nil
}

// Root returns the session's root group — the run's Transport.
func (s *Session) Root() Transport { return s.root }

// SetWireHook installs the session's wire fault hook (see wireHook).
// Call before the run starts.
func (s *Session) SetWireHook(h func(step uint64) (drop bool, stall time.Duration, crash bool, partition time.Duration)) {
	s.wireHook = h
}

// WireBytes returns the bytes this process has written for the session.
func (s *Session) WireBytes() uint64 { return s.wireBytes.Load() }

// WireRawBytes returns what this process's writes would have cost
// under the raw codec — the pre-compression equivalent of WireBytes.
func (s *Session) WireRawBytes() uint64 { return s.wireRawBytes.Load() }

// getWords returns a pooled word slice of length n (contents arbitrary
// — every caller overwrites the full length before reading).
func (s *Session) getWords(n int) []uint64 {
	if v := s.wordPool.Get(); v != nil {
		ws := *(v.(*[]uint64))
		if cap(ws) >= n {
			return ws[:n]
		}
	}
	return make([]uint64, n)
}

// putWords recycles a word slice whose contents are dead.
func (s *Session) putWords(ws []uint64) {
	if cap(ws) == 0 {
		return
	}
	ws = ws[:0]
	s.wordPool.Put(&ws)
}

// Close deregisters the session from its mesh. Idempotent; live waiters
// are aborted first.
func (s *Session) Close() error {
	s.abort(fmt.Errorf("%w: session closed", ErrPeerLost), false)
	m := s.mesh
	m.mu.Lock()
	if m.sessions[s.epoch] == s {
		delete(m.sessions, s.epoch)
	}
	m.mu.Unlock()
	return nil
}

// Err returns the session's abort cause, or nil.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abortE
}

// abort poisons the session: the first cause is recorded, every group's
// waiters wake, and (when notifyPeers) every peer of the root group is
// sent an ABORT frame. Remote aborts pass notifyPeers=false — the
// originator already told everyone.
func (s *Session) abort(err error, notifyPeers bool) {
	s.mu.Lock()
	if s.abortE == nil {
		s.abortE = err
	}
	first := !s.sent && notifyPeers
	if first {
		s.sent = true
	}
	groups := make([]*tcpGroup, 0, len(s.groups))
	for _, g := range s.groups {
		groups = append(groups, g)
	}
	s.mu.Unlock()
	s.abortFlag.Store(true)
	for _, g := range groups {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
	if !first {
		return
	}
	payload := encodeAbort(errors.Is(err, ErrCancelled), errors.Is(err, ErrPeerLost), err.Error())
	buf := appendFrameHeader(make([]byte, 0, 4+frameHeaderLen+len(payload)), frameAbort, s.epoch, 0, 0, s.mesh.rank)
	buf = append(buf, payload...)
	patchFrameLen(buf)
	for i, r := range s.root.members {
		if i == s.root.rank {
			continue
		}
		if n, err2 := s.mesh.sendFrame(r, buf); err2 == nil {
			s.wireBytes.Add(uint64(n))
			s.wireRawBytes.Add(uint64(n))
		}
	}
}

// deliver routes one inbound frame to its group (or the orphan buffer —
// a peer may legally exchange on a Split group before this process
// derives it).
func (s *Session) deliver(f frame) {
	if f.kind == frameAbort {
		cancelled, peerLost, msg := decodeAbort(f.payload)
		f.release()
		s.abort(&RemoteAbort{Rank: f.src, Msg: msg, Cancelled: cancelled, PeerLost: peerLost}, false)
		return
	}
	s.mu.Lock()
	g := s.groups[f.tag]
	if g == nil {
		if len(s.orphans[f.tag]) < maxOrphans {
			s.orphans[f.tag] = append(s.orphans[f.tag], f)
		} else {
			f.release()
		}
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	g.deliver(f)
}

// registerGroup adds a derived group and replays its orphaned frames.
func (s *Session) registerGroup(g *tcpGroup) error {
	s.mu.Lock()
	if _, dup := s.groups[g.tag]; dup {
		s.mu.Unlock()
		return fmt.Errorf("transport: group tag %#x already derived", g.tag)
	}
	s.groups[g.tag] = g
	backlog := s.orphans[g.tag]
	delete(s.orphans, g.tag)
	s.mu.Unlock()
	for _, f := range backlog {
		g.deliver(f)
	}
	return nil
}

// stepState accumulates one superstep's inbound frames for a group.
type stepState struct {
	got   int
	sizes [][]uint32 // per source group rank: its full size vector
	words [][]uint64 // per source group rank: the payload for this rank
}

type ledgerMsg struct {
	wireBytes    uint64
	wireRawBytes uint64
	ledgers      []Ledger
}

// tcpGroup is one communicator over the mesh: the session's root group
// or a Split sub-group. It implements both Transport and Endpoint — a
// worker process hosts exactly one rank of each group it is a member of.
type tcpGroup struct {
	sess    *Session
	tag     uint64
	members []int // mesh ranks, by group rank
	rank    int   // this process's group rank
	used    bool  // Reset burns it: socket groups are single-run

	wordTime    time.Duration
	syncLatency time.Duration

	step    uint64
	staging [][]uint64
	inbox   [][]uint64
	mySizes []uint32 // size vector scratch

	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[uint64]*stepState
	ledgerIn map[int]ledgerMsg

	ledger Ledger
	merged *Ledger // root only, set by FinishRun
}

func newTCPGroup(s *Session, tag uint64, members []int, rank int) *tcpGroup {
	g := &tcpGroup{
		sess:     s,
		tag:      tag,
		members:  members,
		rank:     rank,
		staging:  make([][]uint64, len(members)),
		inbox:    make([][]uint64, len(members)),
		mySizes:  make([]uint32, len(members)),
		pending:  make(map[uint64]*stepState),
		ledgerIn: make(map[int]ledgerMsg),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// groupRankOf translates a mesh rank to this group's rank, or -1.
func (g *tcpGroup) groupRankOf(meshRank int) int {
	for i, r := range g.members {
		if r == meshRank {
			return i
		}
	}
	return -1
}

// deliver parks one inbound frame on the group's step (or ledger) state.
// Runs on read-pump goroutines.
func (g *tcpGroup) deliver(f frame) {
	src := g.groupRankOf(f.src)
	if src < 0 || src == g.rank {
		f.release()
		g.sess.abort(fmt.Errorf("%w: frame from rank %d not a peer of group %#x", ErrPeerLost, f.src, g.tag), true)
		return
	}
	switch f.kind {
	case frameData:
		sizes, words, err := decodeDataPayload(f.payload, len(g.members), g.rank, g.sess.getWords)
		f.release()
		if err != nil {
			g.sess.abort(fmt.Errorf("%w: rank %d: %v", ErrPeerLost, f.src, err), true)
			return
		}
		g.mu.Lock()
		st := g.pending[f.step]
		if st == nil {
			st = &stepState{sizes: make([][]uint32, len(g.members)), words: make([][]uint64, len(g.members))}
			g.pending[f.step] = st
		}
		if st.sizes[src] == nil {
			st.got++
		}
		st.sizes[src] = sizes
		st.words[src] = words
		// Wake the barrier waiter only when its step is complete — each
		// earlier frame would otherwise cost a spurious wake/recheck/park
		// cycle on the Exchange goroutine.
		if st.got >= len(g.members)-1 {
			g.cond.Broadcast()
		}
		g.mu.Unlock()
	case frameLedger:
		wb, wrb, ledgers, err := decodeLedgers(f.payload)
		f.release()
		if err != nil {
			g.sess.abort(fmt.Errorf("%w: rank %d: %v", ErrPeerLost, f.src, err), true)
			return
		}
		g.mu.Lock()
		g.ledgerIn[src] = ledgerMsg{wireBytes: wb, wireRawBytes: wrb, ledgers: ledgers}
		g.cond.Broadcast()
		g.mu.Unlock()
	default:
		f.release()
	}
}

// --- Endpoint ---

// Rank returns this process's rank in the group.
func (g *tcpGroup) Rank() int { return g.rank }

// Send stages a copy of words for group rank `to`.
func (g *tcpGroup) Send(to int, words []uint64) {
	if to < 0 || to >= len(g.staging) {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, len(g.staging)))
	}
	g.staging[to] = append(g.staging[to], words...)
}

// SendOwned stages words, adopting the slice when the staging cell is
// empty (the adopted slice re-enters the session pool once its contents
// have been serialized and delivered); the displaced empty cell goes
// back to the pool.
func (g *tcpGroup) SendOwned(to int, words []uint64) {
	if to < 0 || to >= len(g.staging) {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, len(g.staging)))
	}
	if len(g.staging[to]) == 0 {
		if old := g.staging[to]; cap(old) > 0 {
			g.sess.putWords(old)
		}
		g.staging[to] = words
		return
	}
	g.staging[to] = append(g.staging[to], words...)
}

// Recv returns the words delivered from group rank src at the last
// Exchange.
func (g *tcpGroup) Recv(src int) []uint64 { return g.inbox[src] }

// Buffer returns a word slice of length n from the session's pool (the
// contents are arbitrary, exactly like a fresh make's would be after
// the caller fills it — and every caller fills it).
func (g *tcpGroup) Buffer(n int) []uint64 { return g.sess.getWords(n) }

// Exchange is the superstep barrier over sockets: coalesce one data
// frame per peer (carrying the full size vector), then block until all
// gp-1 peer frames for this step arrived. Every member then computes
// the identical h-relation from the assembled size matrix.
func (g *tcpGroup) Exchange() error {
	s := g.sess
	if s.abortFlag.Load() {
		return g.waitErr()
	}
	gp := len(g.members)
	step := g.step

	if h := s.wireHook; h != nil {
		drop, stall, crash, part := h(step)
		if stall > 0 {
			time.Sleep(stall)
		}
		if crash {
			s.mesh.crash()
		}
		if part > 0 {
			s.mesh.Partition(part)
		}
		if drop {
			s.mesh.DropPeers()
		}
	}

	for d := 0; d < gp; d++ {
		g.mySizes[d] = uint32(len(g.staging[d]))
	}
	// Serialize each destination's coalesced frame straight into a
	// pooled buffer and hand it to that peer's writer immediately, so
	// the first frame is streaming into its socket while the later ones
	// are still being encoded. Buffer ownership transfers to the writer,
	// which recycles it after the vectored write.
	for dst := 0; dst < gp; dst++ {
		if dst == g.rank {
			continue
		}
		pc, err := s.mesh.peer(g.members[dst])
		if err != nil {
			s.abort(err, true)
			return g.waitErr()
		}
		words := g.staging[dst]
		head := 4 + frameHeaderLen + 4 + 4*gp + 1
		buf := frameBufGet(head + 8*len(words))[:0]
		buf = appendFrameHeader(buf, frameData, s.epoch, g.tag, step, s.mesh.rank)
		buf = appendUint32(buf, uint32(gp))
		for _, sz := range g.mySizes {
			buf = appendUint32(buf, sz)
		}
		buf = appendEncodedPayload(buf, words, pc.codecs)
		patchFrameLen(buf)
		n := len(buf)
		if err := pc.send(sendItem{buf: buf, pooled: true}); err != nil {
			s.abort(err, true)
			return g.waitErr()
		}
		s.wireBytes.Add(uint64(n))
		s.wireRawBytes.Add(uint64(head + 8*len(words)))
	}

	// Barrier: wait for every peer's frame for this step. The step state
	// is created here when no peer frame beat us to it (and always for a
	// single-member group, which waits on nobody).
	g.mu.Lock()
	st := g.pending[step]
	if st == nil {
		st = &stepState{sizes: make([][]uint32, gp), words: make([][]uint64, gp)}
		g.pending[step] = st
	}
	for st.got < gp-1 {
		if s.abortFlag.Load() {
			g.mu.Unlock()
			return g.waitErr()
		}
		g.cond.Wait()
	}
	delete(g.pending, step)
	g.mu.Unlock()

	// Deliver: peers' payloads plus the self-staged words; the displaced
	// self buffer becomes the next superstep's self staging cell, and
	// the previous superstep's peer rows (whose contents the contract
	// says no one may read past this point) recycle into the word pool
	// that the decode path draws from.
	spare := g.inbox[g.rank]
	for src := 0; src < gp; src++ {
		if src == g.rank {
			g.inbox[src] = g.staging[src]
		} else {
			if old := g.inbox[src]; cap(old) > 0 {
				g.sess.putWords(old)
			}
			g.inbox[src] = st.words[src]
		}
	}
	for dst := 0; dst < gp; dst++ {
		if dst == g.rank {
			g.staging[dst] = spare[:0]
		} else {
			g.staging[dst] = g.staging[dst][:0]
		}
	}

	// Account the h-relation from the full size matrix — byte-identical
	// to the in-process finalizer: max over destinations of the column
	// sum and over sources of the row sum.
	var h uint64
	for dst := 0; dst < gp; dst++ {
		var recv uint64
		for src := 0; src < gp; src++ {
			if src == g.rank {
				recv += uint64(g.mySizes[dst])
			} else {
				recv += uint64(st.sizes[src][dst])
			}
		}
		if recv > h {
			h = recv
		}
	}
	for src := 0; src < gp; src++ {
		var sent uint64
		if src == g.rank {
			for _, sz := range g.mySizes {
				sent += uint64(sz)
			}
		} else {
			for _, sz := range st.sizes[src] {
				sent += uint64(sz)
			}
		}
		if sent > h {
			h = sent
		}
	}
	g.ledger.Supersteps++
	g.ledger.Volume += h
	g.ledger.HRelations = append(g.ledger.HRelations, h)
	if g.wordTime > 0 || g.syncLatency > 0 {
		g.ledger.SimComm += time.Duration(h)*g.wordTime + g.syncLatency
	}
	g.step = step + 1
	return nil
}

// waitErr returns the session's abort cause, never nil once aborted.
func (g *tcpGroup) waitErr() error {
	if err := g.sess.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: aborted with no recorded cause", ErrPeerLost)
}

// --- Transport ---

// Kind returns KindTCP.
func (g *tcpGroup) Kind() string { return KindTCP }

// Size returns the group's rank count.
func (g *tcpGroup) Size() int { return len(g.members) }

// LocalRanks returns the single rank this process hosts.
func (g *tcpGroup) LocalRanks() []int { return []int{g.rank} }

// Endpoint returns this process's endpoint; the group is its own
// endpoint.
func (g *tcpGroup) Endpoint(rank int) Endpoint {
	if rank != g.rank {
		panic(fmt.Sprintf("transport: rank %d not hosted by this process (local rank %d)", rank, g.rank))
	}
	return g
}

// AbortFlag returns the session-wide abort flag: all groups of a run
// poison together, which is exactly the bsp cascade's contract.
func (g *tcpGroup) AbortFlag() *atomic.Bool { return &g.sess.abortFlag }

// Abort poisons the session and notifies every peer process.
func (g *tcpGroup) Abort(err error) { g.sess.abort(err, true) }

// Err returns the abort cause, or nil.
func (g *tcpGroup) Err() error { return g.sess.Err() }

// SetCost configures the emulated interconnect.
func (g *tcpGroup) SetCost(wordTime, syncLatency time.Duration) {
	g.wordTime = wordTime
	g.syncLatency = syncLatency
}

// Derive creates the group for a Split: members are parent-group ranks
// in sub-rank order; they translate to mesh ranks through this group's
// membership. Every member derives the same tag, so frames route
// correctly even when a peer exchanges on the child before this process
// derives it (the session orphan buffer holds them).
func (g *tcpGroup) Derive(tag uint64, members []int) (Transport, error) {
	meshMembers := make([]int, len(members))
	childRank := -1
	for i, pr := range members {
		if pr < 0 || pr >= len(g.members) {
			return nil, fmt.Errorf("transport: derive member %d of %d", pr, len(g.members))
		}
		meshMembers[i] = g.members[pr]
		if pr == g.rank {
			childRank = i
		}
	}
	if childRank < 0 {
		return nil, fmt.Errorf("transport: deriving group %#x without local rank %d", tag, g.rank)
	}
	child := newTCPGroup(g.sess, tag, meshMembers, childRank)
	child.wordTime = g.wordTime
	child.syncLatency = g.syncLatency
	if err := g.sess.registerGroup(child); err != nil {
		return nil, err
	}
	return child, nil
}

// FoldChild logs a derived group's ledger for the end-of-run merge.
// Called exactly once per group, from the process hosting its rank 0 —
// so across all processes each group is logged exactly once, and the
// flat union FinishRun merges equals the in-process hierarchical fold.
func (g *tcpGroup) FoldChild(sub Transport) {
	child, ok := sub.(*tcpGroup)
	if !ok {
		panic("transport: FoldChild across fabric kinds")
	}
	s := g.sess
	entry := child.ledger
	entry.HRelations = append([]uint64(nil), child.ledger.HRelations...)
	s.foldMu.Lock()
	s.foldLog = append(s.foldLog, entry)
	s.foldMu.Unlock()
}

// Reset burns the group's single run; a second Reset is an error
// (sessions are per-job, the serving layer never pools them).
func (g *tcpGroup) Reset() error {
	if g.used {
		return fmt.Errorf("transport: tcp fabric is single-run (epoch %d)", g.sess.epoch)
	}
	g.used = true
	return nil
}

// FinishRun merges the run's accounting across processes: every member
// of the root group broadcasts its fold-log (the ledgers of sub-groups
// it hosted rank 0 of) plus its wire-byte count, and merges what it
// receives. After it, every process holds the identical ledger the
// in-process fabric would have produced, plus the summed wire traffic.
func (g *tcpGroup) FinishRun() error {
	s := g.sess
	gp := len(g.members)
	s.foldMu.Lock()
	ownLog := append([]Ledger(nil), s.foldLog...)
	s.foldMu.Unlock()
	ownWire := s.wireBytes.Load()
	ownRaw := s.wireRawBytes.Load()

	if gp > 1 {
		payload := encodeLedgers(ownWire, ownRaw, ownLog)
		for i, r := range g.members {
			if i == g.rank {
				continue
			}
			buf := appendFrameHeader(make([]byte, 0, 4+frameHeaderLen+len(payload)), frameLedger, s.epoch, g.tag, 0, s.mesh.rank)
			buf = append(buf, payload...)
			patchFrameLen(buf)
			n, err := s.mesh.sendFrame(r, buf)
			if err != nil {
				s.abort(err, true)
				return g.waitErr()
			}
			s.wireBytes.Add(uint64(n))
			s.wireRawBytes.Add(uint64(n))
		}
		g.mu.Lock()
		for len(g.ledgerIn) < gp-1 {
			if s.abortFlag.Load() {
				g.mu.Unlock()
				return g.waitErr()
			}
			g.cond.Wait()
		}
		g.mu.Unlock()
	}

	merged := g.ledger
	merged.HRelations = append([]uint64(nil), g.ledger.HRelations...)
	for _, l := range ownLog {
		merged.add(&l)
	}
	merged.WireBytes = ownWire
	merged.WireRawBytes = ownRaw
	g.mu.Lock()
	for _, msg := range g.ledgerIn {
		for _, l := range msg.ledgers {
			merged.add(&l)
		}
		merged.WireBytes += msg.wireBytes
		merged.WireRawBytes += msg.wireRawBytes
	}
	g.mu.Unlock()
	g.merged = &merged
	return nil
}

// Ledger returns the merged run accounting (root, after FinishRun) or
// this group's own share.
func (g *tcpGroup) Ledger() Ledger {
	src := &g.ledger
	if g.merged != nil {
		src = g.merged
	}
	out := *src
	out.HRelations = append([]uint64(nil), src.HRelations...)
	return out
}

// Close deregisters: the root group closes its whole session, a child
// removes just itself.
func (g *tcpGroup) Close() error {
	s := g.sess
	if g == s.root {
		return s.Close()
	}
	s.mu.Lock()
	if s.groups[g.tag] == g {
		delete(s.groups, g.tag)
	}
	s.mu.Unlock()
	return nil
}

// appendUint32 appends v little-endian.
func appendUint32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// NewLoopbackMeshes builds a fully connected p-process mesh on
// 127.0.0.1 ephemeral ports, all in this process — the test harness for
// multi-process behaviour without spawning processes. Callers own the
// meshes and must Close each.
func NewLoopbackMeshes(p int, epoch uint64) ([]*Mesh, error) {
	return NewLoopbackMeshesControl(p, epoch, nil)
}

// NewLoopbackMeshesControl is NewLoopbackMeshes with a per-rank control
// handler factory (may be nil).
func NewLoopbackMeshesControl(p int, epoch uint64, control func(rank int) func(src int, epoch uint64, payload []byte)) ([]*Mesh, error) {
	var mut func(rank int, cfg *MeshConfig)
	if control != nil {
		mut = func(rank int, cfg *MeshConfig) { cfg.Control = control(rank) }
	}
	return NewLoopbackMeshesWith(p, epoch, mut)
}

// NewLoopbackMeshesWith is the general loopback harness: mut (may be
// nil) edits each rank's MeshConfig before the mesh starts — the way
// tests set heartbeat intervals, incarnations, callbacks, or crash
// functions.
func NewLoopbackMeshesWith(p int, epoch uint64, mut func(rank int, cfg *MeshConfig)) ([]*Mesh, error) {
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := 0; i < p; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	meshes := make([]*Mesh, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := MeshConfig{Rank: i, Addrs: addrs, MachineEpoch: epoch, Listener: lns[i]}
			if mut != nil {
				mut(i, &cfg)
			}
			meshes[i], errs[i] = NewMesh(cfg)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, ms := range meshes {
				if ms != nil {
					ms.Close()
				}
			}
			return nil, err
		}
	}
	return meshes, nil
}
