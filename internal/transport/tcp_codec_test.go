package transport

import (
	"fmt"
	"testing"
)

// pooledTraffic drives a pool-hostile exchange pattern: every payload
// is built in a Buffer()-provided slice (so each superstep reuses
// memory recycled from earlier supersteps and from delivered inboxes),
// sizes vary per step so differently-sized buffers recirculate, and
// values cover all three codec classes. Returns a positional checksum
// of everything received, which must be fabric- and codec-independent.
func pooledTraffic(ep Endpoint, steps int) (uint64, error) {
	p := ep.Size()
	r := ep.Rank()
	var sum uint64
	for s := 0; s < steps; s++ {
		for dst := 0; dst < p; dst++ {
			n := 8 + 32*((s+r+dst)%5)
			buf := ep.Buffer(n)[:0]
			for i := 0; i < n; i++ {
				switch s % 3 {
				case 0: // small values: varint territory
					buf = append(buf, uint64(i+dst))
				case 1: // sorted edge-ish triples when n%3 == 0
					buf = append(buf, uint64(i/3), uint64(i%3), uint64(s+1))
				default: // incompressible
					buf = append(buf, (uint64(s)<<56)|(uint64(r)<<48)|(uint64(i)*0x9e3779b97f4a7c15))
				}
			}
			ep.SendOwned(dst, buf)
		}
		if err := ep.Exchange(); err != nil {
			return 0, err
		}
		for src := 0; src < p; src++ {
			for i, w := range ep.Recv(src) {
				sum = sum*1099511628211 + w + uint64(i) + uint64(src)<<32
			}
		}
	}
	return sum, nil
}

// TestBufferPoolReuseBitIdentical proves the session word pool behind
// (*tcpGroup).Buffer is invisible to kernels: a pool-hostile pattern
// over sockets produces bit-identical payload streams (positional
// checksum) and an identical ledger to the in-process fabric, whose
// Buffer has always been pool-backed.
func TestBufferPoolReuseBitIdentical(t *testing.T) {
	const steps = 9
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			sums := make([]uint64, p)
			local := runLocal(t, p, func(ep *LocalEndpoint) error {
				sum, err := pooledTraffic(ep, steps)
				sums[ep.Rank()] = sum
				return err
			})
			wantLedger := local.Ledger()

			withMeshes(t, p, func(meshes []*Mesh) {
				tcpSums := make([]uint64, p)
				ledgers := make([]Ledger, p)
				errs := runRanks(p, func(r int) error {
					sess, err := meshes[r].NewSession(1, allMembers(p))
					if err != nil {
						return err
					}
					defer sess.Close()
					root := sess.Root()
					if err := root.Reset(); err != nil {
						return err
					}
					sum, err := pooledTraffic(root.Endpoint(r), steps)
					if err != nil {
						return err
					}
					tcpSums[r] = sum
					if err := root.FinishRun(); err != nil {
						return err
					}
					ledgers[r] = root.Ledger()
					return nil
				})
				for r, err := range errs {
					if err != nil {
						t.Fatalf("rank %d: %v", r, err)
					}
				}
				for r := 0; r < p; r++ {
					if tcpSums[r] != sums[r] {
						t.Fatalf("rank %d: tcp checksum %#x != local %#x (pooled buffer leaked stale words)", r, tcpSums[r], sums[r])
					}
					if !ledgerEq(ledgers[r], wantLedger) {
						t.Fatalf("rank %d: tcp ledger %+v != local %+v", r, ledgers[r], wantLedger)
					}
				}
			})
		})
	}
}

// runCodecMeshes runs pooledTraffic over loopback meshes with codecs
// enabled or disabled and returns per-rank (checksum, ledger).
func runCodecMeshes(t *testing.T, p, steps int, disable bool) ([]uint64, []Ledger) {
	t.Helper()
	meshes, err := NewLoopbackMeshesWith(p, 77, func(rank int, cfg *MeshConfig) {
		cfg.DisableCodecs = disable
	})
	if err != nil {
		t.Fatalf("loopback meshes: %v", err)
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	sums := make([]uint64, p)
	ledgers := make([]Ledger, p)
	errs := runRanks(p, func(r int) error {
		sess, err := meshes[r].NewSession(1, allMembers(p))
		if err != nil {
			return err
		}
		defer sess.Close()
		root := sess.Root()
		if err := root.Reset(); err != nil {
			return err
		}
		sum, err := pooledTraffic(root.Endpoint(r), steps)
		if err != nil {
			return err
		}
		sums[r] = sum
		if err := root.FinishRun(); err != nil {
			return err
		}
		ledgers[r] = root.Ledger()
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d (disable=%v): %v", r, disable, err)
		}
	}
	return sums, ledgers
}

// TestCodecOnOffCrossCheck runs identical traffic with codecs on and
// off: payloads and the logical ledger must be identical, while the
// codec run's on-wire bytes must be strictly smaller and its
// raw-equivalent counter must equal the codec-less run's wire bytes
// exactly (same frames, raw encoding).
func TestCodecOnOffCrossCheck(t *testing.T) {
	const p, steps = 2, 9
	onSums, onLedgers := runCodecMeshes(t, p, steps, false)
	offSums, offLedgers := runCodecMeshes(t, p, steps, true)
	for r := 0; r < p; r++ {
		if onSums[r] != offSums[r] {
			t.Fatalf("rank %d: codec checksum %#x != raw %#x", r, onSums[r], offSums[r])
		}
		if !ledgerEq(onLedgers[r], offLedgers[r]) {
			t.Fatalf("rank %d: logical ledger differs with codecs: %+v vs %+v", r, onLedgers[r], offLedgers[r])
		}
		if onLedgers[r].WireBytes >= offLedgers[r].WireBytes {
			t.Fatalf("rank %d: codecs did not shrink wire bytes: %d vs %d", r, onLedgers[r].WireBytes, offLedgers[r].WireBytes)
		}
		if onLedgers[r].WireRawBytes != offLedgers[r].WireBytes {
			t.Fatalf("rank %d: raw-equivalent %d != codec-less wire bytes %d", r, onLedgers[r].WireRawBytes, offLedgers[r].WireBytes)
		}
		if offLedgers[r].WireRawBytes != offLedgers[r].WireBytes {
			t.Fatalf("rank %d: raw run raw-equivalent %d != wire %d", r, offLedgers[r].WireRawBytes, offLedgers[r].WireBytes)
		}
	}
}
