package transport

import (
	"bytes"
	"math/rand"
	"testing"
)

// encodeDecode runs one payload through the sender-side encoder and the
// receiver-side decoder, returning the codec byte that went on the wire
// and the reconstructed words.
func encodeDecode(t *testing.T, words []uint64, mask byte) (byte, []uint64) {
	t.Helper()
	buf := appendEncodedPayload(nil, words, mask)
	if len(buf) < 1 {
		t.Fatal("empty encoded payload")
	}
	c, body := buf[0], buf[1:]
	got, err := decodeCodec(c, body, len(words), nil)
	if err != nil {
		t.Fatalf("decode codec %d: %v", c, err)
	}
	return c, got
}

func wordsEq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedEdgeWords builds a sorted (u, v, w) triple stream like
// dist.EncodeEdges produces from a sorted edge array.
func sortedEdgeWords(n int) []uint64 {
	words := make([]uint64, 0, 3*n)
	rng := rand.New(rand.NewSource(7))
	u, v := uint64(0), uint64(0)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			u += uint64(rng.Intn(4) + 1)
			v = uint64(rng.Intn(16))
		} else {
			v += uint64(rng.Intn(8) + 1)
		}
		words = append(words, u, v, uint64(rng.Intn(100)+1))
	}
	return words
}

func TestCodecRoundtripAll(t *testing.T) {
	cases := []struct {
		name  string
		words []uint64
		want  byte
	}{
		{"edge stream", sortedEdgeWords(200), codecEdgeDelta},
		{"small values", func() []uint64 {
			w := make([]uint64, 500)
			for i := range w {
				w[i] = uint64(i % 1000)
			}
			return w
		}(), codecPack},
		{"56-bit values", func() []uint64 {
			rng := rand.New(rand.NewSource(5))
			w := make([]uint64, 100)
			for i := range w {
				w[i] = rng.Uint64() >> 8
			}
			return w
		}(), codecPack},
		{"incompressible", func() []uint64 {
			rng := rand.New(rand.NewSource(3))
			w := make([]uint64, 300)
			for i := range w {
				w[i] = rng.Uint64() | 1<<63
			}
			return w
		}(), codecRaw},
		{"tiny goes raw", []uint64{1, 2, 3}, codecRaw},
		{"empty", nil, codecRaw},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, got := encodeDecode(t, tc.words, codecMaskAll)
			if c != tc.want {
				t.Fatalf("codec %d, want %d", c, tc.want)
			}
			if !wordsEq(got, tc.words) {
				t.Fatalf("roundtrip mismatch: %d words in, %d out", len(tc.words), len(got))
			}
		})
	}
}

// TestCodecMaskRestricts checks a sender never emits a codec the
// negotiated mask forbids — the interop invariant with DisableCodecs
// peers.
func TestCodecMaskRestricts(t *testing.T) {
	edges := sortedEdgeWords(100)
	if c, got := encodeDecode(t, edges, codecMaskRaw); c != codecRaw || !wordsEq(got, edges) {
		t.Fatalf("raw-only mask produced codec %d", c)
	}
	// Without edge-delta the sorted stream still compresses via packing
	// (u, v, w are all small).
	mask := codecMaskRaw | 1<<codecPack
	if c, got := encodeDecode(t, edges, mask); c != codecPack || !wordsEq(got, edges) {
		t.Fatalf("pack-only mask produced codec %d", c)
	}
}

// TestCodecNeverBeatenByRaw: the encoder's rewind guarantees the
// on-wire form (codec byte + body) never exceeds the raw encoding plus
// its codec byte, for any payload.
func TestCodecNeverBeatenByRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		words := make([]uint64, n)
		for i := range words {
			switch rng.Intn(3) {
			case 0:
				words[i] = uint64(rng.Intn(256))
			case 1:
				words[i] = rng.Uint64() >> uint(rng.Intn(64))
			default:
				words[i] = rng.Uint64()
			}
		}
		buf := appendEncodedPayload(nil, words, codecMaskAll)
		if len(buf) > 1+8*len(words) {
			t.Fatalf("trial %d: encoded %dB > raw %dB", trial, len(buf), 1+8*len(words))
		}
		got, err := decodeCodec(buf[0], buf[1:], len(words), nil)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !wordsEq(got, words) {
			t.Fatalf("trial %d: roundtrip mismatch", trial)
		}
	}
}

func TestIsSortedEdgeStream(t *testing.T) {
	if !isSortedEdgeStream(sortedEdgeWords(50)) {
		t.Fatal("sorted stream rejected")
	}
	if isSortedEdgeStream([]uint64{1, 2}) {
		t.Fatal("ragged length accepted")
	}
	if isSortedEdgeStream([]uint64{2, 1, 9, 1, 1, 9}) {
		t.Fatal("descending u accepted")
	}
	if isSortedEdgeStream([]uint64{1, 5, 9, 1, 2, 9}) {
		t.Fatal("descending v within u-run accepted")
	}
	if isSortedEdgeStream([]uint64{1 << 33, 0, 9}) {
		t.Fatal("64-bit u accepted")
	}
}

func TestDecodeCodecRejectsMalformed(t *testing.T) {
	words := []uint64{300, 1, 2}
	enc := appendEncodedPayload(nil, words, codecMaskAll)
	cases := []struct {
		name string
		c    byte
		body []byte
		n    int
	}{
		{"negative count", codecRaw, nil, -1},
		{"raw short body", codecRaw, make([]byte, 15), 2},
		{"raw long body", codecRaw, make([]byte, 24), 2},
		{"pack missing width", codecPack, nil, 0},
		{"pack width zero", codecPack, []byte{0, 1, 2}, 2},
		{"pack width nine", codecPack, []byte{9, 1, 2}, 2},
		{"pack short body", codecPack, []byte{2, 1, 2, 3}, 2},
		{"pack long body", codecPack, []byte{1, 1, 2, 3}, 2},
		{"pack count exceeds body", codecPack, []byte{1, 2}, 3},
		{"edge-delta ragged count", codecEdgeDelta, []byte{1, 1, 1, 1}, 4},
		{"edge-delta truncated", codecEdgeDelta, []byte{1, 1, 1, 1}, 6},
		{"unknown codec", 9, []byte{0}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeCodec(tc.c, tc.body, tc.n, nil); err == nil {
				t.Fatal("malformed input decoded without error")
			}
		})
	}
	// And the valid encoding still decodes after all that.
	got, err := decodeCodec(enc[0], enc[1:], len(words), nil)
	if err != nil || !wordsEq(got, words) {
		t.Fatalf("control roundtrip: %v", err)
	}
}

func TestDecodeDataPayloadMalformed(t *testing.T) {
	// A valid frame payload for a 2-rank group, 3 words for rank 1.
	words := []uint64{5, 6, 7}
	valid := binaryLE32(nil, 2)
	valid = binaryLE32(valid, 0)
	valid = binaryLE32(valid, 3)
	valid = appendEncodedPayload(valid, words, codecMaskAll)
	if sizes, got, err := decodeDataPayload(valid, 2, 1, nil); err != nil || sizes[1] != 3 || !wordsEq(got, words) {
		t.Fatalf("valid payload rejected: %v", err)
	}

	if _, _, err := decodeDataPayload(valid, 3, 1, nil); err == nil {
		t.Fatal("group-size mismatch accepted")
	}
	if _, _, err := decodeDataPayload(valid, 2, 5, nil); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, _, err := decodeDataPayload(valid[:6], 2, 1, nil); err == nil {
		t.Fatal("truncated size vector accepted")
	}
	// Size vector promising more words than the body can hold
	// (sizes[1] lives at bytes 8..12 of the payload).
	lying := append([]byte(nil), valid...)
	lying[8], lying[9], lying[10], lying[11] = 0xff, 0xff, 0xff, 0x3f
	if _, _, err := decodeDataPayload(lying, 2, 1, nil); err == nil {
		t.Fatal("oversized word count accepted")
	}
}

// binaryLE32 appends v little-endian (test-local helper so the cases
// read as byte layouts).
func binaryLE32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// TestLedgerRoundtripWireBytes checks the end-of-run merge carries both
// wire-byte counters.
func TestLedgerRoundtripWireBytes(t *testing.T) {
	in := []Ledger{{Supersteps: 3, Volume: 77, HRelations: []uint64{10, 30, 37}}}
	buf := encodeLedgers(1000, 2500, in)
	wire, raw, out, err := decodeLedgers(buf)
	if err != nil {
		t.Fatal(err)
	}
	if wire != 1000 || raw != 2500 {
		t.Fatalf("wire=%d raw=%d, want 1000/2500", wire, raw)
	}
	if len(out) != 1 || !ledgerEq(out[0], in[0]) {
		t.Fatalf("ledger roundtrip: %+v", out)
	}
	if _, _, _, err := decodeLedgers(buf[:10]); err == nil {
		t.Fatal("truncated ledger frame accepted")
	}
}

// TestPackWidthExact pins the width computation the bench gate's
// compression ratio depends on: exact (a single wide word dominates)
// and tight at byte boundaries.
func TestPackWidthExact(t *testing.T) {
	small := make([]uint64, 64)
	for i := range small {
		small[i] = uint64(i)
	}
	if w := packWidth(small); w != 1 {
		t.Fatalf("1-byte words got width %d", w)
	}
	small[17] = 1 << 62 // one stray wide word must force the full width
	if w := packWidth(small); w != 8 {
		t.Fatalf("stray 63-bit word got width %d", w)
	}
	for _, tc := range []struct {
		v    uint64
		want int
	}{{0, 1}, {0xff, 1}, {0x100, 2}, {1<<56 - 1, 7}, {1 << 56, 8}} {
		if w := packWidth([]uint64{tc.v}); w != tc.want {
			t.Fatalf("packWidth(%#x) = %d, want %d", tc.v, w, tc.want)
		}
	}
}

// TestPackSampledWidthMatchesExact: the encoder guesses the width from
// a sample and verifies during the store pass, but the emitted width
// byte must always equal the exact packWidth answer — including when
// the payload's one wide word hides at a position the sample skips.
func TestPackSampledWidthMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	check := func(words []uint64) {
		t.Helper()
		enc := appendEncodedPayload(nil, words, codecMaskRaw|1<<codecPack)
		exact := packWidth(words)
		switch enc[0] {
		case codecRaw:
			if exact != 8 {
				t.Fatalf("raw emitted for exact width %d", exact)
			}
		case codecPack:
			if int(enc[1]) != exact {
				t.Fatalf("emitted width %d, exact %d", enc[1], exact)
			}
		default:
			t.Fatalf("codec %d", enc[0])
		}
		got, err := decodeCodec(enc[0], enc[1:], len(words), nil)
		if err != nil || !wordsEq(got, words) {
			t.Fatalf("roundtrip: %v", err)
		}
	}
	for trial := 0; trial < 300; trial++ {
		n := minCodecWords + rng.Intn(1000)
		words := make([]uint64, n)
		small := uint64(1)<<(8*uint(1+rng.Intn(7))) - 1
		for i := range words {
			words[i] = rng.Uint64() & small
		}
		// A stray wide word at an arbitrary position — usually one the
		// sample misses, forcing the verify-and-re-encode path.
		if trial%3 == 0 {
			words[rng.Intn(n)] = rng.Uint64() | 1<<uint(8+rng.Intn(56))
		}
		check(words)
	}
}

// TestCodecPackRoundtripWidths exercises every pack width end to end,
// including the tail words decoded without the 8-byte fast path.
func TestCodecPackRoundtripWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for width := 1; width <= 7; width++ {
		for _, n := range []int{minCodecWords, 17, 100} {
			words := make([]uint64, n)
			max := uint64(1)<<(8*uint(width)) - 1
			for i := range words {
				words[i] = rng.Uint64() & max
			}
			words[0] = max // pin the width exactly
			c, got := encodeDecode(t, words, codecMaskAll)
			if c != codecPack && c != codecEdgeDelta {
				t.Fatalf("width %d n %d: codec %d", width, n, c)
			}
			if !wordsEq(got, words) {
				t.Fatalf("width %d n %d: roundtrip mismatch", width, n)
			}
		}
	}
}

// TestAppendEncodedPayloadDeterministic: identical payloads encode to
// identical bytes — the property the wire-bytes bench gate relies on.
func TestAppendEncodedPayloadDeterministic(t *testing.T) {
	words := sortedEdgeWords(128)
	a := appendEncodedPayload(nil, words, codecMaskAll)
	b := appendEncodedPayload(nil, words, codecMaskAll)
	if !bytes.Equal(a, b) {
		t.Fatal("non-deterministic encoding")
	}
}
