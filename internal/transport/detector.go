package transport

import (
	"math"
	"sync"
	"time"
)

// phiDetector is a phi-accrual failure detector over one peer
// connection (Hayashibara et al.): instead of a binary timeout it
// tracks the distribution of heartbeat inter-arrival times and maps
// "time since the last arrival" to a suspicion level
//
//	phi(t) = -log10( P(next arrival is still ahead at t) )
//
// under a normal approximation of the observed intervals. phi grows
// continuously as silence lengthens; the mesh severs the connection
// when phi crosses MeshConfig.PhiThreshold. Every inbound frame counts
// as an arrival, so a peer streaming superstep data never needs to be
// heard from on the heartbeat channel specifically.
//
// The window is seeded with the configured heartbeat interval so a
// fresh connection starts from a sane expectation instead of firing
// (or never firing) on its first silence.
type phiDetector struct {
	mu        sync.Mutex
	last      time.Time
	intervals [phiWindow]float64 // seconds
	n         int                // filled entries
	idx       int                // next write position
}

const phiWindow = 16

// newPhiDetector seeds the window with the expected interval and
// counts the handshake (construction time) as the first arrival, so a
// peer that is silent from birth is still detected.
func newPhiDetector(expected time.Duration) *phiDetector {
	d := &phiDetector{last: time.Now()}
	d.intervals[0] = expected.Seconds()
	d.n, d.idx = 1, 1
	return d
}

// observe records a heartbeat arrival at t, feeding the interval
// window. Only heartbeats are sampled: data and control frames arrive
// in bursts whose sub-millisecond gaps would drag the window's mean to
// near zero, after which one ordinary heartbeat interval of silence
// reads as near-certain death and the maintain loop severs a healthy
// connection. Bursty traffic is proof of life, not a cadence — route
// it through touch.
func (d *phiDetector) observe(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.last.IsZero() {
		iv := t.Sub(d.last).Seconds()
		if iv > 0 {
			d.intervals[d.idx] = iv
			d.idx = (d.idx + 1) % phiWindow
			if d.n < phiWindow {
				d.n++
			}
		}
	}
	d.last = t
}

// touch records proof of life at t without sampling an interval — for
// non-heartbeat frames, whose arrival cadence says nothing about the
// heartbeat distribution.
func (d *phiDetector) touch(t time.Time) {
	d.mu.Lock()
	if t.After(d.last) {
		d.last = t
	}
	d.mu.Unlock()
}

// phi returns the suspicion level at time now. Zero before the first
// arrival (a connection that never spoke is the dial path's problem,
// not the detector's).
func (d *phiDetector) phi(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last.IsZero() || d.n == 0 {
		return 0
	}
	var sum, sumSq float64
	for i := 0; i < d.n; i++ {
		sum += d.intervals[i]
		sumSq += d.intervals[i] * d.intervals[i]
	}
	mean := sum / float64(d.n)
	variance := sumSq/float64(d.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	sigma := math.Sqrt(variance)
	// Floor sigma at a quarter of the mean: loopback heartbeats arrive
	// with near-zero jitter, and an unfloored sigma would turn the
	// detector into a hair trigger that fires on one scheduler hiccup.
	if floor := mean / 4; sigma < floor {
		sigma = floor
	}
	elapsed := now.Sub(d.last).Seconds()
	if elapsed <= mean {
		return 0
	}
	// P(still alive) = P(interval > elapsed) under N(mean, sigma²).
	pLater := 0.5 * math.Erfc((elapsed-mean)/(sigma*math.Sqrt2))
	if pLater < 1e-300 {
		pLater = 1e-300
	}
	return -math.Log10(pLater)
}
