package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// newLoopbackListeners binds n ephemeral loopback listeners.
func newLoopbackListeners(n int) ([]net.Listener, error) {
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				lns[j].Close()
			}
			return nil, err
		}
		lns[i] = ln
	}
	return lns, nil
}

// withMeshes builds p loopback meshes, hands them to fn, and tears them
// down.
func withMeshes(t *testing.T, p int, fn func(meshes []*Mesh)) {
	t.Helper()
	meshes, err := NewLoopbackMeshes(p, 42)
	if err != nil {
		t.Fatalf("loopback meshes: %v", err)
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	fn(meshes)
}

// runRanks runs body once per rank concurrently and returns the
// per-rank errors.
func runRanks(p int, body func(rank int) error) []error {
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(r)
		}(r)
	}
	wg.Wait()
	return errs
}

func allMembers(p int) []int {
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	return members
}

// trafficPattern drives a deterministic exchange pattern on any
// Endpoint: superstep s, rank r sends (s<<16 | r<<8 | dst) repeated
// (r+s)%3+ (rank-dependent) times.
func trafficPattern(ep Endpoint, steps int) error {
	p := ep.Size()
	r := ep.Rank()
	for s := 0; s < steps; s++ {
		for dst := 0; dst < p; dst++ {
			n := (r+s+dst)%3 + 1
			for i := 0; i < n; i++ {
				ep.Send(dst, []uint64{uint64(s)<<16 | uint64(r)<<8 | uint64(dst)})
			}
		}
		if err := ep.Exchange(); err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			got := ep.Recv(src)
			wantN := (src+s+r)%3 + 1
			if len(got) != wantN {
				return fmt.Errorf("rank %d step %d from %d: %d words, want %d", r, s, src, len(got), wantN)
			}
			want := uint64(s)<<16 | uint64(src)<<8 | uint64(r)
			for _, w := range got {
				if w != want {
					return fmt.Errorf("rank %d step %d from %d: word %#x, want %#x", r, s, src, w, want)
				}
			}
		}
	}
	return nil
}

func ledgerEq(a, b Ledger) bool {
	if a.Supersteps != b.Supersteps || a.Volume != b.Volume || len(a.HRelations) != len(b.HRelations) {
		return false
	}
	for i := range a.HRelations {
		if a.HRelations[i] != b.HRelations[i] {
			return false
		}
	}
	return true
}

func TestTCPExchangeMatchesLocal(t *testing.T) {
	const steps = 5
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			local := runLocal(t, p, func(ep *LocalEndpoint) error {
				return trafficPattern(ep, steps)
			})
			wantLedger := local.Ledger()

			withMeshes(t, p, func(meshes []*Mesh) {
				ledgers := make([]Ledger, p)
				errs := runRanks(p, func(r int) error {
					sess, err := meshes[r].NewSession(1, allMembers(p))
					if err != nil {
						return err
					}
					defer sess.Close()
					root := sess.Root()
					if err := root.Reset(); err != nil {
						return err
					}
					if err := trafficPattern(root.Endpoint(r), steps); err != nil {
						return err
					}
					if err := root.FinishRun(); err != nil {
						return err
					}
					ledgers[r] = root.Ledger()
					return nil
				})
				for r, err := range errs {
					if err != nil {
						t.Fatalf("rank %d: %v", r, err)
					}
				}
				for r := 0; r < p; r++ {
					if !ledgerEq(ledgers[r], wantLedger) {
						t.Fatalf("rank %d tcp ledger %+v != local %+v", r, ledgers[r], wantLedger)
					}
					if ledgers[r].WireBytes == 0 {
						t.Fatalf("rank %d: wire bytes not accounted", r)
					}
				}
			})
		})
	}
}

func TestTCPRemoteAbortCarriesCancel(t *testing.T) {
	const p = 3
	withMeshes(t, p, func(meshes []*Mesh) {
		cause := fmt.Errorf("deadline blew: %w", ErrCancelled)
		errs := runRanks(p, func(r int) error {
			sess, err := meshes[r].NewSession(9, allMembers(p))
			if err != nil {
				return err
			}
			defer sess.Close()
			root := sess.Root()
			if r == 0 {
				// Give peers time to block in Exchange, then cancel.
				time.Sleep(30 * time.Millisecond)
				root.Abort(cause)
				return nil
			}
			return root.Endpoint(r).Exchange()
		})
		for r := 1; r < p; r++ {
			var ra *RemoteAbort
			if !errors.As(errs[r], &ra) {
				t.Fatalf("rank %d: %v, want RemoteAbort", r, errs[r])
			}
			if !ra.Cancelled || ra.Rank != 0 {
				t.Fatalf("rank %d: RemoteAbort %+v, want cancelled from rank 0", r, ra)
			}
		}
	})
}

func TestTCPPeerLossAborts(t *testing.T) {
	const p = 3
	withMeshes(t, p, func(meshes []*Mesh) {
		errs := runRanks(p, func(r int) error {
			sess, err := meshes[r].NewSession(5, allMembers(p))
			if err != nil {
				return err
			}
			defer sess.Close()
			root := sess.Root()
			if r == 0 {
				time.Sleep(30 * time.Millisecond)
				meshes[0].Close() // process death
				return nil
			}
			return root.Endpoint(r).Exchange()
		})
		for r := 1; r < p; r++ {
			if !errors.Is(errs[r], ErrPeerLost) {
				t.Fatalf("rank %d: %v, want ErrPeerLost", r, errs[r])
			}
		}
	})
}

func TestTCPDeriveSubgroups(t *testing.T) {
	const p = 4
	withMeshes(t, p, func(meshes []*Mesh) {
		// Split into even/odd groups; run the traffic pattern inside each
		// group; fold; verify the merged ledger matches the local fabric
		// doing the same.
		local := runLocal(t, p, func(ep *LocalEndpoint) error {
			return trafficPattern(ep, 1)
		})
		// Emulate the sub-run on the local side by hand: two size-2 groups
		// each running 2 steps of the pattern.
		for color := 0; color < 2; color++ {
			subT, err := local.Derive(uint64(100+color), []int{0, 1})
			if err != nil {
				t.Fatal(err)
			}
			sub := subT.(*Local)
			var wg sync.WaitGroup
			serrs := make([]error, 2)
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					serrs[r] = trafficPattern(sub.LocalEndpointAt(r), 2)
				}(r)
			}
			wg.Wait()
			for _, err := range serrs {
				if err != nil {
					t.Fatal(err)
				}
			}
			local.FoldChild(sub)
		}
		wantLedger := local.Ledger()

		ledgers := make([]Ledger, p)
		errs := runRanks(p, func(r int) error {
			sess, err := meshes[r].NewSession(77, allMembers(p))
			if err != nil {
				return err
			}
			defer sess.Close()
			root := sess.Root()
			if err := root.Reset(); err != nil {
				return err
			}
			ep := root.Endpoint(r)
			if err := trafficPattern(ep, 1); err != nil {
				return err
			}
			color := r % 2
			var members []int
			for _, mr := range allMembers(p) {
				if mr%2 == color {
					members = append(members, mr)
				}
			}
			sub, err := root.Derive(uint64(100+color), members)
			if err != nil {
				return err
			}
			subRank := r / 2
			if err := trafficPattern(sub.Endpoint(subRank), 2); err != nil {
				return err
			}
			if subRank == 0 {
				root.FoldChild(sub)
			}
			if err := root.FinishRun(); err != nil {
				return err
			}
			ledgers[r] = root.Ledger()
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		// H-relation fold order differs across processes; compare as
		// multisets the way the golden fingerprints do.
		for r := 0; r < p; r++ {
			if ledgers[r].Supersteps != wantLedger.Supersteps || ledgers[r].Volume != wantLedger.Volume {
				t.Fatalf("rank %d ledger %+v != local %+v", r, ledgers[r], wantLedger)
			}
			if !sameMultiset(ledgers[r].HRelations, wantLedger.HRelations) {
				t.Fatalf("rank %d h-relations %v != local %v (as multisets)", r, ledgers[r].HRelations, wantLedger.HRelations)
			}
		}
	})
}

func sameMultiset(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	counts := make(map[uint64]int, len(a))
	for _, v := range a {
		counts[v]++
	}
	for _, v := range b {
		counts[v]--
	}
	for _, n := range counts {
		if n != 0 {
			return false
		}
	}
	return true
}

func TestTCPWireStallHook(t *testing.T) {
	const p = 2
	withMeshes(t, p, func(meshes []*Mesh) {
		const stall = 60 * time.Millisecond
		start := time.Now()
		errs := runRanks(p, func(r int) error {
			sess, err := meshes[r].NewSession(3, allMembers(p))
			if err != nil {
				return err
			}
			defer sess.Close()
			if r == 1 {
				sess.SetWireHook(func(step uint64) (bool, time.Duration, bool, time.Duration) {
					if step == 0 {
						return false, stall, false, 0
					}
					return false, 0, false, 0
				})
			}
			return sess.Root().Endpoint(r).Exchange()
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		if el := time.Since(start); el < stall {
			t.Fatalf("exchange finished in %v, stall hook (%v) did not bite", el, stall)
		}
	})
}

func TestTCPWireDropHook(t *testing.T) {
	const p = 2
	withMeshes(t, p, func(meshes []*Mesh) {
		errs := runRanks(p, func(r int) error {
			sess, err := meshes[r].NewSession(4, allMembers(p))
			if err != nil {
				return err
			}
			defer sess.Close()
			if r == 1 {
				sess.SetWireHook(func(step uint64) (bool, time.Duration, bool, time.Duration) {
					return step == 0, 0, false, 0
				})
			}
			return sess.Root().Endpoint(r).Exchange()
		})
		for r, err := range errs {
			if !errors.Is(err, ErrPeerLost) {
				t.Fatalf("rank %d: %v, want ErrPeerLost", r, err)
			}
		}
	})
}

func TestTCPHandshakeEpochMismatch(t *testing.T) {
	// Two processes from different machine epochs must refuse to mesh.
	lnA, err := newLoopbackListeners(2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA[0].Addr().String(), lnA[1].Addr().String()}
	var wg sync.WaitGroup
	var errA, errB error
	var meshA, meshB *Mesh
	wg.Add(2)
	go func() {
		defer wg.Done()
		meshA, errA = NewMesh(MeshConfig{Rank: 0, Addrs: addrs, MachineEpoch: 1, Listener: lnA[0], DialTimeout: 2 * time.Second})
	}()
	go func() {
		defer wg.Done()
		meshB, errB = NewMesh(MeshConfig{Rank: 1, Addrs: addrs, MachineEpoch: 2, Listener: lnA[1], DialTimeout: 2 * time.Second})
	}()
	wg.Wait()
	if errA == nil && errB == nil {
		t.Fatal("meshes with mismatched machine epochs connected")
	}
	if meshA != nil {
		meshA.Close()
	}
	if meshB != nil {
		meshB.Close()
	}
}

func TestTCPSingleRun(t *testing.T) {
	withMeshes(t, 2, func(meshes []*Mesh) {
		errs := runRanks(2, func(r int) error {
			sess, err := meshes[r].NewSession(8, allMembers(2))
			if err != nil {
				return err
			}
			defer sess.Close()
			root := sess.Root()
			if err := root.Reset(); err != nil {
				return err
			}
			if err := root.Reset(); err == nil {
				return errors.New("second Reset on a tcp fabric must fail")
			}
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
	})
}
