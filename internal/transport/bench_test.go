package transport_test

// Cross-fabric benchmarks: the same all-to-all superstep driven through
// the in-process fabric and the TCP-loopback fabric, at matching rank
// counts and payloads, so the socket tax is directly measurable. When
// benchmarks run, TestMain also writes BENCH_transport.json — the
// machine-readable local-vs-tcp comparison CI archives.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/transport"
)

var benchPs = []int{2, 4, 8}

const benchWords = 1024 // words staged per peer per superstep

// driveAllToAll runs b.N all-to-all supersteps: every rank stages
// `words` words for every peer, then Exchanges. Exchange itself is the
// barrier, so the ranks stay in lockstep without extra synchronization.
func driveAllToAll(b *testing.B, eps []transport.Endpoint, words int) {
	b.Helper()
	p := len(eps)
	b.SetBytes(int64(p * (p - 1) * words * 8))
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			payload := make([]uint64, words)
			for i := range payload {
				payload[i] = uint64(i)
			}
			for i := 0; i < b.N; i++ {
				for to := 0; to < p; to++ {
					if to != ep.Rank() {
						ep.Send(to, payload)
					}
				}
				if err := ep.Exchange(); err != nil {
					b.Error(err)
					return
				}
			}
		}(eps[r])
	}
	wg.Wait()
}

func BenchmarkExchangeLocal(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			l, err := transport.NewLocal(p)
			if err != nil {
				b.Fatal(err)
			}
			eps := make([]transport.Endpoint, p)
			for r := 0; r < p; r++ {
				eps[r] = l.Endpoint(r)
			}
			driveAllToAll(b, eps, benchWords)
		})
	}
}

func BenchmarkExchangeTCPLoopback(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			eps, cleanup := newLoopbackEndpoints(b, p)
			defer cleanup()
			driveAllToAll(b, eps, benchWords)
		})
	}
}

// newLoopbackEndpoints brings up a p-process-equivalent loopback mesh
// and opens one session across it, returning each rank's endpoint.
func newLoopbackEndpoints(tb testing.TB, p int) ([]transport.Endpoint, func()) {
	tb.Helper()
	meshes, err := transport.NewLoopbackMeshes(p, 1)
	if err != nil {
		tb.Fatal(err)
	}
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	eps := make([]transport.Endpoint, p)
	sessions := make([]*transport.Session, p)
	for r := 0; r < p; r++ {
		sess, err := meshes[r].NewSession(1, members)
		if err != nil {
			tb.Fatal(err)
		}
		sessions[r] = sess
		eps[r] = sess.Root().Endpoint(r)
	}
	return eps, func() {
		for _, s := range sessions {
			s.Close()
		}
		for _, m := range meshes {
			m.Close()
		}
	}
}

// benchRecord is one line of BENCH_transport.json.
type benchRecord struct {
	Transport      string  `json:"transport"`
	P              int     `json:"p"`
	WordsPerPeer   int     `json:"words_per_peer"`
	NsPerSuperstep int64   `json:"ns_per_superstep"`
	MBPerSec       float64 `json:"mb_per_s"`
}

// TestMain writes BENCH_transport.json whenever benchmarks were
// requested, mirroring the BENCH_bsp.json / BENCH_kernels.json idiom.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := writeBenchSnapshot("BENCH_transport.json"); err != nil {
			fmt.Fprintln(os.Stderr, "bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchSnapshot(path string) error {
	type snapshot struct {
		Name       string        `json:"name"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}
	snap := snapshot{Name: "transport-bench"}
	for _, p := range benchPs {
		p := p
		for _, kind := range []string{transport.KindLocal, transport.KindTCP} {
			kind := kind
			var failed error
			res := testing.Benchmark(func(b *testing.B) {
				var eps []transport.Endpoint
				switch kind {
				case transport.KindLocal:
					l, err := transport.NewLocal(p)
					if err != nil {
						failed = err
						b.SkipNow()
					}
					eps = make([]transport.Endpoint, p)
					for r := 0; r < p; r++ {
						eps[r] = l.Endpoint(r)
					}
				case transport.KindTCP:
					var cleanup func()
					eps, cleanup = newLoopbackEndpoints(b, p)
					defer cleanup()
				}
				driveAllToAll(b, eps, benchWords)
			})
			if failed != nil {
				return failed
			}
			rec := benchRecord{
				Transport:      kind,
				P:              p,
				WordsPerPeer:   benchWords,
				NsPerSuperstep: res.NsPerOp(),
			}
			if res.NsPerOp() > 0 {
				bytes := float64(p * (p - 1) * benchWords * 8)
				rec.MBPerSec = bytes / float64(res.NsPerOp()) * 1e9 / (1 << 20)
			}
			snap.Benchmarks = append(snap.Benchmarks, rec)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
