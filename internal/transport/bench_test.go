package transport_test

// Cross-fabric benchmarks: the same all-to-all superstep driven through
// the in-process fabric and the TCP-loopback fabric, at matching rank
// counts and payloads, so the socket tax is directly measurable. The
// TCP fabric runs in two variants — payload codecs on (the default)
// and off — so the wire-compression win is measurable too. When
// benchmarks run, TestMain also writes BENCH_transport.json — the
// machine-readable comparison CI archives, including per-superstep
// wire/raw byte counts whose ratio the bench gate pins.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/transport"
)

var (
	benchPs    = []int{2, 4, 8}
	benchWords = []int{64, 1024, 65536} // words staged per peer per superstep
)

// driveAllToAll runs b.N all-to-all supersteps: every rank stages
// `words` words for every peer, then Exchanges. Exchange itself is the
// barrier, so the ranks stay in lockstep without extra synchronization.
// The payload is the word index — small values, so the varint codec has
// something to chew on, like the rank-bucketed vertex ids real kernels
// ship.
func driveAllToAll(b *testing.B, eps []transport.Endpoint, words int) {
	b.Helper()
	p := len(eps)
	b.SetBytes(int64(p * (p - 1) * words * 8))
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(ep transport.Endpoint) {
			defer wg.Done()
			payload := make([]uint64, words)
			for i := range payload {
				payload[i] = uint64(i)
			}
			for i := 0; i < b.N; i++ {
				for to := 0; to < p; to++ {
					if to != ep.Rank() {
						ep.Send(to, payload)
					}
				}
				if err := ep.Exchange(); err != nil {
					b.Error(err)
					return
				}
			}
		}(eps[r])
	}
	wg.Wait()
}

func BenchmarkExchangeLocal(b *testing.B) {
	for _, p := range benchPs {
		for _, w := range benchWords {
			b.Run(fmt.Sprintf("p=%d/w=%d", p, w), func(b *testing.B) {
				l, err := transport.NewLocal(p)
				if err != nil {
					b.Fatal(err)
				}
				eps := make([]transport.Endpoint, p)
				for r := 0; r < p; r++ {
					eps[r] = l.Endpoint(r)
				}
				driveAllToAll(b, eps, w)
			})
		}
	}
}

func BenchmarkExchangeTCPLoopback(b *testing.B) {
	for _, p := range benchPs {
		for _, w := range benchWords {
			b.Run(fmt.Sprintf("p=%d/w=%d", p, w), func(b *testing.B) {
				eps, _, cleanup := newLoopbackEndpoints(b, p, false)
				defer cleanup()
				driveAllToAll(b, eps, w)
			})
		}
	}
}

// BenchmarkExchangeTCPRaw is the codec-less control: identical frames,
// raw 8-byte-word encoding. The gap to BenchmarkExchangeTCPLoopback is
// what the payload codecs buy.
func BenchmarkExchangeTCPRaw(b *testing.B) {
	for _, p := range benchPs {
		for _, w := range benchWords {
			b.Run(fmt.Sprintf("p=%d/w=%d", p, w), func(b *testing.B) {
				eps, _, cleanup := newLoopbackEndpoints(b, p, true)
				defer cleanup()
				driveAllToAll(b, eps, w)
			})
		}
	}
}

// newLoopbackEndpoints brings up a p-process-equivalent loopback mesh
// and opens one session across it, returning each rank's endpoint and
// session (the latter for wire-byte accounting).
func newLoopbackEndpoints(tb testing.TB, p int, disableCodecs bool) ([]transport.Endpoint, []*transport.Session, func()) {
	tb.Helper()
	meshes, err := transport.NewLoopbackMeshesWith(p, 1, func(rank int, cfg *transport.MeshConfig) {
		cfg.DisableCodecs = disableCodecs
	})
	if err != nil {
		tb.Fatal(err)
	}
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	eps := make([]transport.Endpoint, p)
	sessions := make([]*transport.Session, p)
	for r := 0; r < p; r++ {
		sess, err := meshes[r].NewSession(1, members)
		if err != nil {
			tb.Fatal(err)
		}
		sessions[r] = sess
		eps[r] = sess.Root().Endpoint(r)
	}
	return eps, sessions, func() {
		for _, s := range sessions {
			s.Close()
		}
		for _, m := range meshes {
			m.Close()
		}
	}
}

// benchRecord is one line of BENCH_transport.json. Wire-byte fields are
// TCP-only: WireBytesPerStep is what actually crossed the socket per
// superstep (summed over ranks), RawBytesPerStep what the same frames
// would have cost with the raw codec, and CompressionRatio their
// quotient — deterministic for a fixed payload, so the bench gate pins
// it tightly.
type benchRecord struct {
	Transport        string  `json:"transport"`
	Codec            bool    `json:"codec"`
	P                int     `json:"p"`
	WordsPerPeer     int     `json:"words_per_peer"`
	NsPerSuperstep   int64   `json:"ns_per_superstep"`
	MBPerSec         float64 `json:"mb_per_s"`
	WireBytesPerStep uint64  `json:"wire_bytes_per_superstep,omitempty"`
	RawBytesPerStep  uint64  `json:"wire_raw_bytes_per_superstep,omitempty"`
	CompressionRatio float64 `json:"compression_ratio,omitempty"`
}

// TestMain writes BENCH_transport.json whenever benchmarks were
// requested, mirroring the BENCH_bsp.json / BENCH_kernels.json idiom.
// CAMC_NO_BENCH_SNAPSHOT skips the (full-sweep) snapshot so profiling
// runs can benchmark one combination without paying for all of them.
func TestMain(m *testing.M) {
	code := m.Run()
	if os.Getenv("CAMC_NO_BENCH_SNAPSHOT") != "" {
		os.Exit(code)
	}
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := writeBenchSnapshot("BENCH_transport.json"); err != nil {
			fmt.Fprintln(os.Stderr, "bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchSnapshot(path string) error {
	type snapshot struct {
		Name       string        `json:"name"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}
	variants := []struct {
		kind  string
		codec bool
	}{
		{transport.KindLocal, false},
		{transport.KindTCP, true},
		{transport.KindTCP, false},
	}
	snap := snapshot{Name: "transport-bench"}
	for _, p := range benchPs {
		p := p
		for _, w := range benchWords {
			w := w
			for _, v := range variants {
				v := v
				var failed error
				var wire, raw uint64
				var iters int
				res := testing.Benchmark(func(b *testing.B) {
					var eps []transport.Endpoint
					var sessions []*transport.Session
					switch v.kind {
					case transport.KindLocal:
						l, err := transport.NewLocal(p)
						if err != nil {
							failed = err
							b.SkipNow()
						}
						eps = make([]transport.Endpoint, p)
						for r := 0; r < p; r++ {
							eps[r] = l.Endpoint(r)
						}
					case transport.KindTCP:
						var cleanup func()
						eps, sessions, cleanup = newLoopbackEndpoints(b, p, !v.codec)
						defer cleanup()
					}
					driveAllToAll(b, eps, w)
					// driveAllToAll returns only after every rank finished
					// its Exchange barriers, so the send-side counters are
					// settled; snapshot the last (largest-N) run.
					wire, raw, iters = 0, 0, b.N
					for _, s := range sessions {
						wire += s.WireBytes()
						raw += s.WireRawBytes()
					}
				})
				if failed != nil {
					return failed
				}
				rec := benchRecord{
					Transport:      v.kind,
					Codec:          v.codec,
					P:              p,
					WordsPerPeer:   w,
					NsPerSuperstep: res.NsPerOp(),
				}
				if res.NsPerOp() > 0 {
					bytes := float64(p * (p - 1) * w * 8)
					rec.MBPerSec = bytes / float64(res.NsPerOp()) * 1e9 / (1 << 20)
				}
				if v.kind == transport.KindTCP && iters > 0 {
					rec.WireBytesPerStep = wire / uint64(iters)
					rec.RawBytesPerStep = raw / uint64(iters)
					if rec.WireBytesPerStep > 0 {
						rec.CompressionRatio = float64(rec.RawBytesPerStep) / float64(rec.WireBytesPerStep)
					}
				}
				snap.Benchmarks = append(snap.Benchmarks, rec)
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
