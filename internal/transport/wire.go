package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Wire protocol of the TCP fabric (DESIGN.md §4f, §4i).
//
// A connection opens with a fixed 25-byte preamble — magic "CAMT",
// protocol version, the dialer's mesh rank, the dialer's machine
// epoch, and the dialer's incarnation number — and then carries
// length-prefixed frames both ways for its lifetime. All integers are
// little-endian.
//
// The incarnation number (version 2) is what makes rejoin safe: a
// respawned worker presents a strictly larger incarnation than its
// dead predecessor, so an accepter can tell a legitimate reincarnation
// (or a reconnect after a healed partition, same incarnation) from a
// stale duplicate dialer (lower incarnation, rejected).
//
// Frame layout:
//
//	u32  length of the remainder (kind..payload)
//	u8   kind
//	u64  session epoch
//	u64  group tag (0 = the session's root group)
//	u64  superstep within the group
//	u32  sender's mesh rank
//	...  kind-specific payload
//
// Data frames carry the sender's complete per-destination size vector
// ahead of the payload words, so every rank of a group reconstructs the
// same p×p size matrix and accounts the superstep's h-relation
// identically to the in-process fabric's finalizer.

const (
	wireMagic   = "CAMT"
	wireVersion = 2

	// Frame kinds.
	frameData      = 1 // superstep payload + size vector
	frameAbort     = 2 // abort propagation (payload: u8 cancelled, error text)
	frameLedger    = 3 // end-of-run fold-log merge
	frameControl   = 4 // out-of-band job control (payload: opaque bytes)
	frameHeartbeat = 5 // liveness beacon (empty payload)

	frameHeaderLen = 1 + 8 + 8 + 8 + 4 // kind..src, after the length prefix

	// maxFrameLen bounds a frame's self-declared length so a corrupt or
	// hostile peer cannot make the pump allocate unboundedly.
	maxFrameLen = 1 << 30
)

// frame is one decoded wire frame.
type frame struct {
	kind    byte
	epoch   uint64
	tag     uint64
	step    uint64
	src     int
	payload []byte
}

// writePreamble emits the connection handshake.
func writePreamble(w io.Writer, rank int, epoch, incarnation uint64) error {
	var b [25]byte
	copy(b[:4], wireMagic)
	b[4] = wireVersion
	binary.LittleEndian.PutUint32(b[5:9], uint32(rank))
	binary.LittleEndian.PutUint64(b[9:17], epoch)
	binary.LittleEndian.PutUint64(b[17:25], incarnation)
	_, err := w.Write(b[:])
	return err
}

// readPreamble validates the handshake and returns the dialer's rank
// and incarnation. The accepter checks magic, protocol version, and
// machine epoch; a mismatch is a deployment error surfaced as
// ErrPeerLost. Incarnation admission (stale-dialer rejection) is the
// mesh's job — the wire layer only transports the number.
func readPreamble(r io.Reader, wantEpoch uint64) (rank int, incarnation uint64, err error) {
	var b [25]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: handshake read: %w", ErrPeerLost, err)
	}
	if string(b[:4]) != wireMagic {
		return 0, 0, fmt.Errorf("%w: bad handshake magic %q", ErrPeerLost, b[:4])
	}
	if b[4] != wireVersion {
		return 0, 0, fmt.Errorf("%w: protocol version %d, want %d", ErrPeerLost, b[4], wireVersion)
	}
	rank = int(binary.LittleEndian.Uint32(b[5:9]))
	epoch := binary.LittleEndian.Uint64(b[9:17])
	incarnation = binary.LittleEndian.Uint64(b[17:25])
	if epoch != wantEpoch {
		return 0, 0, fmt.Errorf("%w: machine epoch %d, want %d", ErrPeerLost, epoch, wantEpoch)
	}
	return rank, incarnation, nil
}

// appendFrameHeader appends the frame header (with a placeholder length
// that encodeFrameLen patches) to buf.
func appendFrameHeader(buf []byte, kind byte, epoch, tag, step uint64, src int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, 0) // length, patched later
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, tag)
	buf = binary.LittleEndian.AppendUint64(buf, step)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(src))
	return buf
}

// patchFrameLen writes the final frame length into the prefix.
func patchFrameLen(buf []byte) {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
}

// readFrame reads one frame from r into a freshly allocated payload.
func readFrame(r io.Reader) (frame, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < frameHeaderLen || n > maxFrameLen {
		return frame{}, fmt.Errorf("frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	f := frame{
		kind:    body[0],
		epoch:   binary.LittleEndian.Uint64(body[1:9]),
		tag:     binary.LittleEndian.Uint64(body[9:17]),
		step:    binary.LittleEndian.Uint64(body[17:25]),
		src:     int(binary.LittleEndian.Uint32(body[25:29])),
		payload: body[frameHeaderLen:],
	}
	return f, nil
}

// appendWords appends words little-endian to buf.
func appendWords(buf []byte, words []uint64) []byte {
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// decodeDataPayload splits a data frame's payload into the sender's
// per-destination size vector (group-sized) and the words destined for
// the receiving rank.
func decodeDataPayload(payload []byte, groupSize, myRank int) (sizes []uint32, words []uint64, err error) {
	need := 4 + 4*groupSize
	if len(payload) < need {
		return nil, nil, fmt.Errorf("data frame payload %dB, want ≥%dB", len(payload), need)
	}
	if gp := int(binary.LittleEndian.Uint32(payload[:4])); gp != groupSize {
		return nil, nil, fmt.Errorf("data frame for group size %d, want %d", gp, groupSize)
	}
	sizes = make([]uint32, groupSize)
	for i := range sizes {
		sizes[i] = binary.LittleEndian.Uint32(payload[4+4*i:])
	}
	body := payload[need:]
	n := int(sizes[myRank])
	if len(body) != 8*n {
		return nil, nil, fmt.Errorf("data frame body %dB, size vector says %d words", len(body), n)
	}
	words = make([]uint64, n)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(body[8*i:])
	}
	return sizes, words, nil
}

// encodeLedgers serializes a process's fold-log (plus its wire-byte
// count) for the end-of-run merge.
func encodeLedgers(wireBytes uint64, ledgers []Ledger) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, wireBytes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ledgers)))
	for _, l := range ledgers {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Supersteps))
		buf = binary.LittleEndian.AppendUint64(buf, l.Volume)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(l.SimComm))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.HRelations)))
		buf = appendWords(buf, l.HRelations)
	}
	return buf
}

// decodeLedgers parses encodeLedgers' output.
func decodeLedgers(payload []byte) (wireBytes uint64, ledgers []Ledger, err error) {
	bad := func() (uint64, []Ledger, error) {
		return 0, nil, fmt.Errorf("malformed ledger frame (%dB)", len(payload))
	}
	if len(payload) < 12 {
		return bad()
	}
	wireBytes = binary.LittleEndian.Uint64(payload[:8])
	count := int(binary.LittleEndian.Uint32(payload[8:12]))
	off := 12
	for i := 0; i < count; i++ {
		if len(payload) < off+28 {
			return bad()
		}
		var l Ledger
		l.Supersteps = int(binary.LittleEndian.Uint64(payload[off:]))
		l.Volume = binary.LittleEndian.Uint64(payload[off+8:])
		l.SimComm = time.Duration(binary.LittleEndian.Uint64(payload[off+16:]))
		hlen := int(binary.LittleEndian.Uint32(payload[off+24:]))
		off += 28
		if hlen > maxFrameLen/8 || len(payload) < off+8*hlen {
			return bad()
		}
		l.HRelations = make([]uint64, hlen)
		for j := range l.HRelations {
			l.HRelations[j] = binary.LittleEndian.Uint64(payload[off+8*j:])
		}
		off += 8 * hlen
		ledgers = append(ledgers, l)
	}
	if off != len(payload) {
		return bad()
	}
	return wireBytes, ledgers, nil
}

// Abort-payload flag bits (first byte). They carry the originating
// error's typed identity across the wire so errors.Is keeps working on
// the receiving side: which rank noticed a dead peer first must not
// change the error class survivors observe.
const (
	abortFlagCancelled = 1 << 0
	abortFlagPeerLost  = 1 << 1
)

// encodeAbort serializes an abort notification.
func encodeAbort(cancelled, peerLost bool, msg string) []byte {
	buf := make([]byte, 0, 1+len(msg))
	var flags byte
	if cancelled {
		flags |= abortFlagCancelled
	}
	if peerLost {
		flags |= abortFlagPeerLost
	}
	buf = append(buf, flags)
	return append(buf, msg...)
}

// decodeAbort parses encodeAbort's output.
func decodeAbort(payload []byte) (cancelled, peerLost bool, msg string) {
	if len(payload) == 0 {
		return false, false, "unknown cause"
	}
	return payload[0]&abortFlagCancelled != 0, payload[0]&abortFlagPeerLost != 0, string(payload[1:])
}
