package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Wire protocol of the TCP fabric (DESIGN.md §4f, §4i, §4j).
//
// A connection opens with a fixed 26-byte preamble — magic "CAMT",
// protocol version, the dialer's mesh rank, the dialer's machine
// epoch, the dialer's incarnation number, and the dialer's payload
// codec capability mask — answered by an 8-byte accept acknowledgement
// ("CAMA", version, the accepter's codec mask) so both sides learn the
// other's codec support. The connection then carries length-prefixed
// frames both ways for its lifetime. All integers are little-endian.
//
// The incarnation number (version 2) is what makes rejoin safe: a
// respawned worker presents a strictly larger incarnation than its
// dead predecessor, so an accepter can tell a legitimate reincarnation
// (or a reconnect after a healed partition, same incarnation) from a
// stale duplicate dialer (lower incarnation, rejected).
//
// Frame layout:
//
//	u32  length of the remainder (kind..payload)
//	u8   kind
//	u64  session epoch
//	u64  group tag (0 = the session's root group)
//	u64  superstep within the group
//	u32  sender's mesh rank
//	...  kind-specific payload
//
// Data frames carry the sender's complete per-destination size vector,
// then a one-byte payload codec identifier (version 3, see codec.go),
// then the codec-encoded payload words. The size vector lets every rank
// of a group reconstruct the same p×p size matrix and account the
// superstep's h-relation identically to the in-process fabric's
// finalizer — in words, so the choice of codec never shows up in the
// ledger's logical volume.

const (
	wireMagic   = "CAMT"
	wireVersion = 3
	ackMagic    = "CAMA"

	// Frame kinds.
	frameData      = 1 // superstep payload + size vector
	frameAbort     = 2 // abort propagation (payload: u8 cancelled, error text)
	frameLedger    = 3 // end-of-run fold-log merge
	frameControl   = 4 // out-of-band job control (payload: opaque bytes)
	frameHeartbeat = 5 // liveness beacon (empty payload)

	frameHeaderLen = 1 + 8 + 8 + 8 + 4 // kind..src, after the length prefix

	// maxFrameLen bounds a frame's self-declared length so a corrupt or
	// hostile peer cannot make the pump allocate unboundedly.
	maxFrameLen = 1 << 30

	// frameReadChunk caps how much readFrame allocates before any of a
	// frame's bytes have arrived (see the growth loop there).
	frameReadChunk = 1 << 20
)

// frame is one decoded wire frame. payload aliases raw, the pooled
// receive buffer; release returns raw to framePool once the payload has
// been decoded (or the frame dropped) and must not be called while any
// reference into payload is still live.
type frame struct {
	kind    byte
	epoch   uint64
	tag     uint64
	step    uint64
	src     int
	payload []byte
	raw     []byte
}

// release recycles the frame's receive buffer. Safe on a zero frame.
func (f *frame) release() {
	if f.raw != nil {
		frameBufPut(f.raw)
		f.raw = nil
		f.payload = nil
	}
}

// writePreamble emits the connection handshake.
func writePreamble(w io.Writer, rank int, epoch, incarnation uint64, codecs byte) error {
	var b [26]byte
	copy(b[:4], wireMagic)
	b[4] = wireVersion
	binary.LittleEndian.PutUint32(b[5:9], uint32(rank))
	binary.LittleEndian.PutUint64(b[9:17], epoch)
	binary.LittleEndian.PutUint64(b[17:25], incarnation)
	b[25] = codecs | codecMaskRaw
	_, err := w.Write(b[:])
	return err
}

// readPreamble validates the handshake and returns the dialer's rank,
// incarnation, and codec capability mask. The accepter checks magic,
// protocol version, and machine epoch; a mismatch is a deployment error
// surfaced as ErrPeerLost. Incarnation admission (stale-dialer
// rejection) is the mesh's job — the wire layer only transports the
// number.
func readPreamble(r io.Reader, wantEpoch uint64) (rank int, incarnation uint64, codecs byte, err error) {
	var b [26]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: handshake read: %w", ErrPeerLost, err)
	}
	if string(b[:4]) != wireMagic {
		return 0, 0, 0, fmt.Errorf("%w: bad handshake magic %q", ErrPeerLost, b[:4])
	}
	if b[4] != wireVersion {
		return 0, 0, 0, fmt.Errorf("%w: protocol version %d, want %d", ErrPeerLost, b[4], wireVersion)
	}
	rank = int(binary.LittleEndian.Uint32(b[5:9]))
	epoch := binary.LittleEndian.Uint64(b[9:17])
	incarnation = binary.LittleEndian.Uint64(b[17:25])
	if epoch != wantEpoch {
		return 0, 0, 0, fmt.Errorf("%w: machine epoch %d, want %d", ErrPeerLost, epoch, wantEpoch)
	}
	return rank, incarnation, b[25] | codecMaskRaw, nil
}

// writeAck emits the accepter's half of the handshake: its codec
// capability mask, so the dialer knows what it may send (the preamble
// alone is one-way).
func writeAck(w io.Writer, codecs byte) error {
	var b [8]byte
	copy(b[:4], ackMagic)
	b[4] = wireVersion
	b[5] = codecs | codecMaskRaw
	_, err := w.Write(b[:])
	return err
}

// readAck validates the accepter's acknowledgement and returns its
// codec capability mask.
func readAck(r io.Reader) (codecs byte, err error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("%w: handshake ack read: %w", ErrPeerLost, err)
	}
	if string(b[:4]) != ackMagic {
		return 0, fmt.Errorf("%w: bad handshake ack magic %q", ErrPeerLost, b[:4])
	}
	if b[4] != wireVersion {
		return 0, fmt.Errorf("%w: ack protocol version %d, want %d", ErrPeerLost, b[4], wireVersion)
	}
	return b[5] | codecMaskRaw, nil
}

// appendFrameHeader appends the frame header (with a placeholder length
// that encodeFrameLen patches) to buf.
func appendFrameHeader(buf []byte, kind byte, epoch, tag, step uint64, src int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, 0) // length, patched later
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.LittleEndian.AppendUint64(buf, tag)
	buf = binary.LittleEndian.AppendUint64(buf, step)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(src))
	return buf
}

// patchFrameLen writes the final frame length into the prefix.
func patchFrameLen(buf []byte) {
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
}

// readFrame reads one frame from r into a pooled receive buffer; the
// caller (or whoever it hands the frame to) must release() it after
// decoding.
func readFrame(r io.Reader) (frame, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(lenb[:])
	if n < frameHeaderLen || n > maxFrameLen {
		return frame{}, fmt.Errorf("frame length %d out of range", n)
	}
	// The self-declared length is untrusted until the bytes actually
	// arrive: allocate at most frameReadChunk up front and grow
	// geometrically as data lands, so a lying prefix costs a bounded
	// allocation instead of n. Frames at or under the chunk size — all
	// realistic traffic — take the exact single-allocation path.
	total := int(n)
	alloc := total
	if alloc > frameReadChunk {
		alloc = frameReadChunk
	}
	body := frameBufGet(alloc)
	for read := 0; ; {
		if _, err := io.ReadFull(r, body[read:]); err != nil {
			frameBufPut(body)
			return frame{}, err
		}
		read = len(body)
		if read == total {
			break
		}
		next := 2 * read
		if next > total {
			next = total
		}
		grown := frameBufGet(next)
		copy(grown, body)
		frameBufPut(body)
		body = grown
	}
	f := frame{
		kind:    body[0],
		epoch:   binary.LittleEndian.Uint64(body[1:9]),
		tag:     binary.LittleEndian.Uint64(body[9:17]),
		step:    binary.LittleEndian.Uint64(body[17:25]),
		src:     int(binary.LittleEndian.Uint32(body[25:29])),
		payload: body[frameHeaderLen:],
		raw:     body,
	}
	return f, nil
}

// appendWords appends words little-endian to buf.
func appendWords(buf []byte, words []uint64) []byte {
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// decodeDataPayload splits a data frame's payload into the sender's
// per-destination size vector (group-sized) and the words destined for
// the receiving rank, decoded through the frame's payload codec. alloc
// provides the word slice (nil → plain make), letting the session's
// word pool back the decode; the returned words have exactly the length
// the size vector promises. Malformed input — wrong group size, a size
// vector claiming more words than the body could hold under any codec,
// a truncated or over-long codec body — returns an error, never panics.
func decodeDataPayload(payload []byte, groupSize, myRank int, alloc func(int) []uint64) (sizes []uint32, words []uint64, err error) {
	need := 4 + 4*groupSize + 1
	if groupSize <= 0 || myRank < 0 || myRank >= groupSize {
		return nil, nil, fmt.Errorf("data frame decode for rank %d of group size %d", myRank, groupSize)
	}
	if len(payload) < need {
		return nil, nil, fmt.Errorf("data frame payload %dB, want ≥%dB", len(payload), need)
	}
	if gp := int(binary.LittleEndian.Uint32(payload[:4])); gp != groupSize {
		return nil, nil, fmt.Errorf("data frame for group size %d, want %d", gp, groupSize)
	}
	sizes = make([]uint32, groupSize)
	for i := range sizes {
		sizes[i] = binary.LittleEndian.Uint32(payload[4+4*i:])
	}
	codec := payload[need-1]
	body := payload[need:]
	n := int(sizes[myRank])
	// Every codec costs at least one byte per word, so a size vector
	// claiming more words than the body has bytes is corrupt; rejecting
	// it here bounds the allocation below by the frame length, which
	// readFrame already capped.
	if n > len(body) && !(codec == codecRaw && len(body) == 8*n) {
		return nil, nil, fmt.Errorf("data frame body %dB, size vector says %d words", len(body), n)
	}
	if alloc == nil {
		alloc = func(n int) []uint64 { return make([]uint64, n) }
	}
	words, err = decodeCodec(codec, body, n, alloc(n)[:0])
	if err != nil {
		return nil, nil, err
	}
	return sizes, words, nil
}

// encodeLedgers serializes a process's fold-log (plus its wire-byte
// counts, actual and raw-equivalent) for the end-of-run merge.
func encodeLedgers(wireBytes, wireRawBytes uint64, ledgers []Ledger) []byte {
	buf := binary.LittleEndian.AppendUint64(nil, wireBytes)
	buf = binary.LittleEndian.AppendUint64(buf, wireRawBytes)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ledgers)))
	for _, l := range ledgers {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(l.Supersteps))
		buf = binary.LittleEndian.AppendUint64(buf, l.Volume)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(l.SimComm))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.HRelations)))
		buf = appendWords(buf, l.HRelations)
	}
	return buf
}

// decodeLedgers parses encodeLedgers' output.
func decodeLedgers(payload []byte) (wireBytes, wireRawBytes uint64, ledgers []Ledger, err error) {
	bad := func() (uint64, uint64, []Ledger, error) {
		return 0, 0, nil, fmt.Errorf("malformed ledger frame (%dB)", len(payload))
	}
	if len(payload) < 20 {
		return bad()
	}
	wireBytes = binary.LittleEndian.Uint64(payload[:8])
	wireRawBytes = binary.LittleEndian.Uint64(payload[8:16])
	count := int(binary.LittleEndian.Uint32(payload[16:20]))
	off := 20
	for i := 0; i < count; i++ {
		if len(payload) < off+28 {
			return bad()
		}
		var l Ledger
		l.Supersteps = int(binary.LittleEndian.Uint64(payload[off:]))
		l.Volume = binary.LittleEndian.Uint64(payload[off+8:])
		l.SimComm = time.Duration(binary.LittleEndian.Uint64(payload[off+16:]))
		hlen := int(binary.LittleEndian.Uint32(payload[off+24:]))
		off += 28
		if hlen > maxFrameLen/8 || len(payload) < off+8*hlen {
			return bad()
		}
		l.HRelations = make([]uint64, hlen)
		for j := range l.HRelations {
			l.HRelations[j] = binary.LittleEndian.Uint64(payload[off+8*j:])
		}
		off += 8 * hlen
		ledgers = append(ledgers, l)
	}
	if off != len(payload) {
		return bad()
	}
	return wireBytes, wireRawBytes, ledgers, nil
}

// Abort-payload flag bits (first byte). They carry the originating
// error's typed identity across the wire so errors.Is keeps working on
// the receiving side: which rank noticed a dead peer first must not
// change the error class survivors observe.
const (
	abortFlagCancelled = 1 << 0
	abortFlagPeerLost  = 1 << 1
)

// encodeAbort serializes an abort notification.
func encodeAbort(cancelled, peerLost bool, msg string) []byte {
	buf := make([]byte, 0, 1+len(msg))
	var flags byte
	if cancelled {
		flags |= abortFlagCancelled
	}
	if peerLost {
		flags |= abortFlagPeerLost
	}
	buf = append(buf, flags)
	return append(buf, msg...)
}

// decodeAbort parses encodeAbort's output.
func decodeAbort(payload []byte) (cancelled, peerLost bool, msg string) {
	if len(payload) == 0 {
		return false, false, "unknown cause"
	}
	return payload[0]&abortFlagCancelled != 0, payload[0]&abortFlagPeerLost != 0, string(payload[1:])
}
