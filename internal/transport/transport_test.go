package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// runLocal drives body on every rank of a fresh Local fabric.
func runLocal(t *testing.T, p int, body func(ep *LocalEndpoint) error) *Local {
	t.Helper()
	l, err := NewLocal(p)
	if err != nil {
		t.Fatalf("NewLocal(%d): %v", p, err)
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(l.LocalEndpointAt(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return l
}

func TestLocalExchangeDelivers(t *testing.T) {
	const p = 4
	l := runLocal(t, p, func(ep *LocalEndpoint) error {
		r := ep.Rank()
		for dst := 0; dst < p; dst++ {
			ep.Send(dst, []uint64{uint64(r*100 + dst)})
		}
		if err := ep.Exchange(); err != nil {
			return err
		}
		for src := 0; src < p; src++ {
			got := ep.Recv(src)
			if len(got) != 1 || got[0] != uint64(src*100+r) {
				return fmt.Errorf("rank %d recv from %d: %v", r, src, got)
			}
		}
		return ep.Exchange()
	})
	led := l.Ledger()
	if led.Supersteps != 2 {
		t.Fatalf("supersteps = %d, want 2", led.Supersteps)
	}
	// Superstep 1: every rank sends p words and receives p words → h = p.
	// Superstep 2: empty → h = 0.
	if len(led.HRelations) != 2 || led.HRelations[0] != p || led.HRelations[1] != 0 {
		t.Fatalf("h-relations = %v, want [%d 0]", led.HRelations, p)
	}
	if led.Volume != p {
		t.Fatalf("volume = %d, want %d", led.Volume, p)
	}
}

func TestLocalAbortWakesWaiters(t *testing.T) {
	const p = 3
	l, err := NewLocal(p)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := l.LocalEndpointAt(r)
			if r == 0 {
				// Rank 0 never arrives; it aborts instead.
				l.Abort(boom)
				return
			}
			errs[r] = ep.Exchange()
		}(r)
	}
	wg.Wait()
	for r := 1; r < p; r++ {
		if !errors.Is(errs[r], boom) {
			t.Fatalf("rank %d exchange error = %v, want %v", r, errs[r], boom)
		}
	}
}

func TestLocalFoldChild(t *testing.T) {
	parent, _ := NewLocal(2)
	subT, err := parent.Derive(7, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sub := subT.(*Local)
	sub.ledger.Supersteps = 3
	sub.ledger.Volume = 17
	sub.ledger.HRelations = []uint64{5, 5, 7}
	parent.ledger.Supersteps = 1
	parent.ledger.Volume = 2
	parent.ledger.HRelations = []uint64{2}
	parent.FoldChild(sub)
	led := parent.Ledger()
	if led.Supersteps != 4 || led.Volume != 19 || len(led.HRelations) != 4 {
		t.Fatalf("folded ledger = %+v", led)
	}
}

func TestLocalResetClearsAbort(t *testing.T) {
	l, _ := NewLocal(2)
	l.Abort(errors.New("stale"))
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Err() != nil || l.AbortFlag().Load() {
		t.Fatal("reset did not clear abort state")
	}
}
