package transport

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// Self-healing mesh tests: rejoin with incarnation numbers, the
// phi-accrual failure detector, partition healing, and the reconnect
// racing an in-flight superstep. Every test runs under a goroutine
// leak guard (the pattern from internal/bsp/abort_test.go): a stranded
// read pump or maintenance loop is exactly the leak these paths could
// introduce.

// leakGuard snapshots the goroutine count and returns a check that the
// count settled back to baseline.
func leakGuard(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}

// fastMeshes builds p loopback meshes with test-speed heartbeats.
func fastMeshes(t *testing.T, p int, epoch uint64) []*Mesh {
	t.Helper()
	meshes, err := NewLoopbackMeshesWith(p, epoch, func(rank int, cfg *MeshConfig) {
		cfg.HeartbeatInterval = 25 * time.Millisecond
	})
	if err != nil {
		t.Fatalf("loopback meshes: %v", err)
	}
	return meshes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A killed rank's replacement (bumped incarnation) must rejoin the
// mesh through the ordinary setup flow: its dials land on the
// survivors' still-open accept loops and the surviving higher ranks
// redial it, after which a fresh session spans the full mesh again.
func TestMeshRejoinAfterCrash(t *testing.T) {
	defer leakGuard(t)()
	const p, epoch = 3, uint64(71)
	meshes := fastMeshes(t, p, epoch)
	closed := make([]bool, p)
	defer func() {
		for i, m := range meshes {
			if !closed[i] {
				m.Close()
			}
		}
	}()
	addrs := meshes[1].Addrs()

	// Baseline run across the healthy mesh.
	errs := runRanks(p, func(r int) error {
		sess, err := meshes[r].NewSession(1, allMembers(p))
		if err != nil {
			return err
		}
		defer sess.Close()
		return trafficPattern(sess.Root().Endpoint(r), 2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("baseline rank %d: %v", r, err)
		}
	}

	// Kill rank 1 and wait for the survivors to notice.
	meshes[1].Close()
	closed[1] = true
	waitFor(t, 5*time.Second, "survivors to mark rank 1 down", func() bool {
		return !meshes[0].PeerUp(1) && !meshes[2].PeerUp(1)
	})

	// Reincarnate rank 1 on the same address with a bumped incarnation.
	reborn, err := NewMesh(MeshConfig{
		Rank: 1, Addrs: addrs, MachineEpoch: epoch,
		Incarnation:       2,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	meshes[1] = reborn
	closed[1] = false

	waitFor(t, 5*time.Second, "mesh to heal", func() bool {
		return meshes[0].PeerUp(1) && meshes[2].PeerUp(1)
	})
	if inc := meshes[0].PeerIncarnation(1); inc != 2 {
		t.Fatalf("rank 0 sees rank 1 incarnation %d, want 2", inc)
	}

	// A fresh session spans the healed mesh.
	errs = runRanks(p, func(r int) error {
		sess, err := meshes[r].NewSession(2, allMembers(p))
		if err != nil {
			return err
		}
		defer sess.Close()
		return trafficPattern(sess.Root().Endpoint(r), 3)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("post-rejoin rank %d: %v", r, err)
		}
	}
}

// A peer dying mid-superstep must abort the survivors' in-flight run
// with ErrPeerLost even while its replacement is dialing in — the
// reconnect must neither resurrect the dead run nor wedge the new
// mesh. The replacement races the survivors' abort path deliberately.
func TestMeshReconnectRacesInflightSuperstep(t *testing.T) {
	defer leakGuard(t)()
	const p, epoch = 3, uint64(72)
	meshes := fastMeshes(t, p, epoch)
	closed := make([]bool, p)
	defer func() {
		for i, m := range meshes {
			if !closed[i] {
				m.Close()
			}
		}
	}()
	addrs := meshes[1].Addrs()

	// Ranks 0 and 2 run a long exchange pattern; rank 1 participates for
	// two supersteps and then dies mid-run.
	var reborn *Mesh
	var rebornErr error
	var rejoinWG sync.WaitGroup
	errs := runRanks(p, func(r int) error {
		sess, err := meshes[r].NewSession(1, allMembers(p))
		if err != nil {
			return err
		}
		defer sess.Close()
		ep := sess.Root().Endpoint(r)
		for s := 0; s < 50; s++ {
			if r == 1 && s == 2 {
				// Die mid-run and immediately start the replacement — the
				// reconnect races the survivors' ErrPeerLost handling.
				meshes[1].Close()
				rejoinWG.Add(1)
				go func() {
					defer rejoinWG.Done()
					reborn, rebornErr = NewMesh(MeshConfig{
						Rank: 1, Addrs: addrs, MachineEpoch: epoch,
						Incarnation:       2,
						HeartbeatInterval: 25 * time.Millisecond,
					})
				}()
				return nil
			}
			for dst := 0; dst < p; dst++ {
				ep.Send(dst, []uint64{uint64(s)})
			}
			if err := ep.Exchange(); err != nil {
				return err
			}
		}
		return nil
	})
	closed[1] = true
	if errs[1] != nil {
		t.Fatalf("rank 1: %v", errs[1])
	}
	for _, r := range []int{0, 2} {
		if !errors.Is(errs[r], ErrPeerLost) {
			t.Fatalf("rank %d: %v, want ErrPeerLost", r, errs[r])
		}
	}

	rejoinWG.Wait()
	if rebornErr != nil {
		t.Fatalf("rejoin racing in-flight superstep: %v", rebornErr)
	}
	meshes[1] = reborn
	closed[1] = false
	waitFor(t, 5*time.Second, "mesh to heal", func() bool {
		return meshes[0].PeerUp(1) && meshes[2].PeerUp(1)
	})

	errs = runRanks(p, func(r int) error {
		sess, err := meshes[r].NewSession(2, allMembers(p))
		if err != nil {
			return err
		}
		defer sess.Close()
		return trafficPattern(sess.Root().Endpoint(r), 2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("post-race rank %d: %v", r, err)
		}
	}
}

// A peer that stays TCP-connected but goes silent must be severed by
// the phi detector, aborting in-flight sessions with ErrPeerLost —
// the failure mode a plain dead-socket check cannot see.
func TestPhiDetectorSeversSilentPeer(t *testing.T) {
	defer leakGuard(t)()
	const p, epoch = 2, uint64(73)
	meshes := fastMeshes(t, p, epoch)
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()

	sess, err := meshes[0].NewSession(1, allMembers(p))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// Starve rank 0 of rank 1's beacons without touching the socket.
	meshes[1].SetHeartbeatFilter(func(dst int) bool { return dst != 0 })

	waitFor(t, 10*time.Second, "phi detector to abort the session", func() bool {
		return errors.Is(sess.Err(), ErrPeerLost)
	})
	meshes[1].SetHeartbeatFilter(nil)
}

// An injected partition must sever the mesh (in-flight runs abort) and
// refuse reconnects for its duration; once it lifts, the mesh heals by
// itself and a fresh session works.
func TestMeshPartitionHeals(t *testing.T) {
	defer leakGuard(t)()
	const p, epoch = 2, uint64(74)
	meshes := fastMeshes(t, p, epoch)
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()

	sess, err := meshes[0].NewSession(1, allMembers(p))
	if err != nil {
		t.Fatal(err)
	}
	meshes[1].Partition(200 * time.Millisecond)
	waitFor(t, 5*time.Second, "partition to abort the session", func() bool {
		return errors.Is(sess.Err(), ErrPeerLost)
	})
	sess.Close()

	waitFor(t, 5*time.Second, "partition to heal", func() bool {
		return meshes[0].PeerUp(1) && meshes[1].PeerUp(0)
	})
	errs := runRanks(p, func(r int) error {
		s, err := meshes[r].NewSession(2, allMembers(p))
		if err != nil {
			return err
		}
		defer s.Close()
		return trafficPattern(s.Root().Endpoint(r), 2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("post-heal rank %d: %v", r, err)
		}
	}
}

// A stale dialer — same rank, incarnation below the slot's high-water
// mark — must be rejected without disturbing the live connection.
func TestMeshRejectsStaleIncarnation(t *testing.T) {
	defer leakGuard(t)()
	const p, epoch = 2, uint64(75)
	meshes, err := NewLoopbackMeshesWith(p, epoch, func(rank int, cfg *MeshConfig) {
		cfg.HeartbeatInterval = 25 * time.Millisecond
		cfg.Incarnation = 5 // both ranks start at incarnation 5
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	if inc := meshes[0].PeerIncarnation(1); inc != 5 {
		t.Fatalf("rank 0 sees rank 1 incarnation %d, want 5", inc)
	}

	// A stale duplicate claims rank 1 at incarnation 3.
	stale, err := net.Dial("tcp", meshes[0].Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := writePreamble(stale, 1, epoch, 3, codecMaskAll); err != nil {
		t.Fatal(err)
	}
	// The accepter must close the stale connection...
	_ = stale.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stale.Read(make([]byte, 1)); err == nil {
		t.Fatal("stale dialer was admitted (read succeeded)")
	}
	stale.Close()

	// ...and the real connection must still carry traffic.
	errs := runRanks(p, func(r int) error {
		s, err := meshes[r].NewSession(1, allMembers(p))
		if err != nil {
			return err
		}
		defer s.Close()
		return trafficPattern(s.Root().Endpoint(r), 2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// The detector's math: regular arrivals keep phi at zero; silence
// makes it grow past any practical threshold.
func TestPhiDetectorMath(t *testing.T) {
	d := newPhiDetector(100 * time.Millisecond)
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		d.observe(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	last := base.Add(900 * time.Millisecond)
	if phi := d.phi(last.Add(50 * time.Millisecond)); phi != 0 {
		t.Fatalf("phi=%v right after an arrival, want 0", phi)
	}
	if phi := d.phi(last.Add(150 * time.Millisecond)); phi <= 0 {
		t.Fatalf("phi=%v after 1.5 intervals of silence, want > 0", phi)
	}
	phiLong := d.phi(last.Add(time.Second))
	if phiLong < 8 {
		t.Fatalf("phi=%v after 10 intervals of silence, want ≥ 8", phiLong)
	}
	if phiShort := d.phi(last.Add(300 * time.Millisecond)); phiShort >= phiLong {
		t.Fatalf("phi not monotone: %v at 3 intervals vs %v at 10", phiShort, phiLong)
	}
}

// Sanity on the helper contract: DropPeers alone (no partition) heals
// within a few heartbeat intervals thanks to the redial machinery.
func TestMeshDropHeals(t *testing.T) {
	defer leakGuard(t)()
	const p, epoch = 2, uint64(76)
	meshes := fastMeshes(t, p, epoch)
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	meshes[1].DropPeers()
	waitFor(t, 5*time.Second, "drop to heal", func() bool {
		return meshes[0].PeerUp(1) && meshes[1].PeerUp(0)
	})
	errs := runRanks(p, func(r int) error {
		s, err := meshes[r].NewSession(1, allMembers(p))
		if err != nil {
			return err
		}
		defer s.Close()
		return trafficPattern(s.Root().Endpoint(r), 2)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}
