package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Per-peer eager flushing (DESIGN.md §4j).
//
// Each live peer connection owns one writer goroutine fed by a bounded
// FIFO queue. Exchange seals a destination's coalesced DATA frame and
// enqueues it immediately, so the frame starts streaming into the
// socket while Exchange is still serializing the remaining peers'
// frames — network time overlaps the remaining local work instead of
// serializing under one write mutex. Because every frame to a peer
// passes through that peer's single queue, the wire order any peer
// observes (DATA before a later ABORT, control before a later DATA) is
// exactly the enqueue order, which is all the abort cascade and the
// shard control plane require.
//
// The writer drains its queue in batches and issues one vectored write
// (net.Buffers → writev) per batch, so a burst of frames costs one
// syscall. Frame buffers come from framePool and return to it after
// the kernel has consumed them — the zero-copy half of the wire path:
// payload words are serialized exactly once, into a pooled buffer that
// the writer hands to the kernel verbatim.

// framePool recycles frame build/receive buffers across supersteps and
// connections. Buffers above maxPooledBuf are left to the GC so one
// huge exchange cannot pin memory for the mesh's lifetime.
var framePool sync.Pool

const maxPooledBuf = 4 << 20

// frameBufGet returns a buffer with len n (contents arbitrary).
func frameBufGet(n int) []byte {
	if v := framePool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// frameBufPut returns a buffer to the pool.
func frameBufPut(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// sendItem is one queued outbound frame. pooled marks buffers owned by
// framePool, which the writer returns after the kernel consumed them;
// shared buffers (heartbeats, abort broadcasts) pass pooled=false.
type sendItem struct {
	buf    []byte
	pooled bool
}

// sendQueueDepth bounds the per-peer queue. Deep enough that a whole
// superstep's burst never blocks the sender on a healthy connection,
// shallow enough that a stalled peer exerts backpressure instead of
// buffering unboundedly.
const sendQueueDepth = 64

// writeBatch caps how many queued frames one vectored write covers
// (IOV_MAX on Linux is 1024; staying far below it keeps each writev's
// latency bounded so an ABORT behind a burst still flushes promptly).
const writeBatch = 32

type peerConn struct {
	rank   int
	conn   net.Conn
	codecs byte // negotiated send mask for this connection (raw always set)
	sendq  chan sendItem
	kick   chan struct{} // wakes the writer after an enqueue (cap 1)
	quit   chan struct{}
	once   sync.Once
	dead   atomic.Bool
	// wmu serializes socket writes between the writer goroutine and the
	// inline fast path in send. The queue is only ever dequeued under
	// wmu, and whoever holds it drains the queue before writing anything
	// newer — that pair of rules is what keeps per-peer FIFO order.
	wmu sync.Mutex
}

func newPeerConn(rank int, conn net.Conn, codecs byte) *peerConn {
	return &peerConn{
		rank:   rank,
		conn:   conn,
		codecs: codecs | codecMaskRaw,
		sendq:  make(chan sendItem, sendQueueDepth),
		kick:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
}

// kill marks the connection dead, closes the socket (unblocking a read
// pump parked on it), and releases queue waiters. Idempotent — every
// loss path (write failure, read failure, phi sever, drop fault, mesh
// close, rejoin drain) funnels through here.
func (pc *peerConn) kill() {
	pc.once.Do(func() {
		pc.dead.Store(true)
		pc.conn.Close()
		close(pc.quit)
	})
}

// send transmits one frame toward the peer, preserving per-peer FIFO
// order. Fast path: when no other goroutine holds the socket, drain
// whatever is queued and write inline on the caller's goroutine — the
// frame reaches the kernel without a scheduler handoff, which on a
// lockstep superstep saves two context switches per frame. A contended
// send falls back to the writer goroutine's queue.
func (pc *peerConn) send(it sendItem) error {
	if pc.dead.Load() {
		if it.pooled {
			frameBufPut(it.buf)
		}
		return fmt.Errorf("%w: rank %d", ErrPeerLost, pc.rank)
	}
	if pc.wmu.TryLock() {
		err := pc.writeLocked(it)
		pc.wmu.Unlock()
		if err != nil {
			pc.kill()
			pc.drainQueue()
			return fmt.Errorf("%w: write to rank %d: %v", ErrPeerLost, pc.rank, err)
		}
		return nil
	}
	return pc.enqueue(it)
}

// enqueue queues one frame for the writer, blocking when the queue is
// full (backpressure toward a slow peer). The item's buffer ownership
// transfers to the writer; on failure a pooled buffer is released here.
func (pc *peerConn) enqueue(it sendItem) error {
	if pc.dead.Load() {
		if it.pooled {
			frameBufPut(it.buf)
		}
		return fmt.Errorf("%w: rank %d", ErrPeerLost, pc.rank)
	}
	select {
	case pc.sendq <- it:
		pc.kickWriter()
		return nil
	case <-pc.quit:
		if it.pooled {
			frameBufPut(it.buf)
		}
		return fmt.Errorf("%w: write to rank %d: connection failed", ErrPeerLost, pc.rank)
	}
}

// tryEnqueue queues without blocking — the heartbeat path. A full queue
// means the connection is already moving data, which is better proof of
// life than the beacon; dropping it is correct.
func (pc *peerConn) tryEnqueue(it sendItem) {
	if pc.dead.Load() {
		return
	}
	select {
	case pc.sendq <- it:
		pc.kickWriter()
	default:
	}
}

// kickWriter nudges the writer goroutine; the buffered channel makes
// it a set-once flag, so a burst of enqueues costs one wakeup.
func (pc *peerConn) kickWriter() {
	select {
	case pc.kick <- struct{}{}:
	default:
	}
}

// errConnDead marks writes refused because kill already ran.
var errConnDead = fmt.Errorf("connection closed")

// writeLocked drains every queued frame to the socket and then writes
// extra (when its buf is non-nil). The caller holds wmu. Queued bursts
// go out as one vectored write (net.Buffers → writev) so they cost one
// syscall; the common single-frame case is a plain Write. Pooled
// buffers are recycled even on error; the first socket error sticks
// and later frames are dropped (the connection is about to die).
func (pc *peerConn) writeLocked(extra sendItem) error {
	var err error
	if pc.dead.Load() {
		err = errConnDead
	}
	var batch [writeBatch]sendItem
	var vecs net.Buffers
	for {
		n := 0
	drain:
		for n < writeBatch {
			select {
			case it := <-pc.sendq:
				batch[n] = it
				n++
			default:
				break drain
			}
		}
		if n == 0 {
			break
		}
		if err == nil {
			if n == 1 {
				_, err = pc.conn.Write(batch[0].buf)
			} else {
				vecs = vecs[:0]
				for _, it := range batch[:n] {
					vecs = append(vecs, it.buf)
				}
				_, err = vecs.WriteTo(pc.conn)
			}
		}
		for _, it := range batch[:n] {
			if it.pooled {
				frameBufPut(it.buf)
			}
		}
	}
	if extra.buf != nil {
		if err == nil {
			_, err = pc.conn.Write(extra.buf)
		}
		if extra.pooled {
			frameBufPut(extra.buf)
		}
	}
	return err
}

// writePump is the connection's writer goroutine: it owns the slow
// path. Woken by kickWriter, it takes the write mutex and drains the
// queue; because dequeuing only ever happens under wmu, inline senders
// and the pump can never reorder frames. A failed write kills the
// connection; the read pump (unblocked by the close) then runs the
// shared loss path.
func (m *Mesh) writePump(pc *peerConn) {
	defer m.pumps.Done()
	for {
		select {
		case <-pc.kick:
		case <-pc.quit:
			pc.drainQueue()
			return
		}
		pc.wmu.Lock()
		err := pc.writeLocked(sendItem{})
		pc.wmu.Unlock()
		if err != nil {
			pc.kill()
			pc.drainQueue()
			return
		}
	}
}

// drainQueue releases whatever is still queued when the writer exits.
func (pc *peerConn) drainQueue() {
	for {
		select {
		case it := <-pc.sendq:
			if it.pooled {
				frameBufPut(it.buf)
			}
		default:
			return
		}
	}
}
