package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParseFrame throws arbitrary bytes at the receive path a hostile
// or corrupt peer controls: frame parsing, data-payload decoding
// (through every codec), ledger-merge decoding, and abort decoding.
// The invariant is error-not-panic, with allocation bounded by the
// declared frame length.
func FuzzParseFrame(f *testing.F) {
	// A well-formed data frame as a seed.
	words := []uint64{1, 2, 3, 300, 5}
	payload := binary.LittleEndian.AppendUint32(nil, 2)
	payload = binary.LittleEndian.AppendUint32(payload, 0)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(words)))
	payload = appendEncodedPayload(payload, words, codecMaskAll)
	buf := appendFrameHeader(nil, frameData, 7, 0, 3, 1)
	buf = append(buf, payload...)
	patchFrameLen(buf)
	f.Add(buf)
	f.Add(encodeLedgers(10, 20, []Ledger{{Supersteps: 1, Volume: 2, HRelations: []uint64{2}}}))
	f.Add(encodeAbort(true, false, "cause"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err == nil {
			for _, gp := range []int{1, 2, 4} {
				for rank := 0; rank < gp; rank++ {
					_, _, _ = decodeDataPayload(fr.payload, gp, rank, nil)
				}
			}
			_, _, _, _ = decodeLedgers(fr.payload)
			_, _, _ = decodeAbort(fr.payload)
			fr.release()
		}
		// The unframed bytes through the inner decoders too, so truncation
		// points the framing would reject still get coverage.
		_, _, _, _ = decodeLedgers(data)
		for _, gp := range []int{1, 3} {
			_, _, _ = decodeDataPayload(data, gp, 0, nil)
		}
	})
}

// FuzzDecodeCodec checks two properties: (1) arbitrary bodies under any
// codec byte and word count decode to an error or n words, never a
// panic; (2) every encodable payload roundtrips bit-identically through
// appendEncodedPayload/decodeCodec — the invariant that lets the ledger
// claim logical volume is codec-independent.
func FuzzDecodeCodec(f *testing.F) {
	f.Add(byte(0), []byte{1, 2, 3, 4, 5, 6, 7, 8}, 1)
	f.Add(byte(1), []byte{2, 0x34, 0x12}, 1)
	f.Add(byte(2), []byte{1, 1, 1}, 3)
	f.Add(byte(9), []byte{}, 0)

	f.Fuzz(func(t *testing.T, c byte, body []byte, n int) {
		if n > 1<<20 {
			n = 1 << 20 // keep the word-count bound honest without OOMing the fuzzer
		}
		out, err := decodeCodec(c, body, n, nil)
		if err == nil && len(out) != n {
			t.Fatalf("codec %d decoded %d words, size vector said %d", c, len(out), n)
		}

		// Roundtrip property: reinterpret the fuzzed body as words.
		words := make([]uint64, 0, len(body)/8)
		for i := 0; i+8 <= len(body); i += 8 {
			words = append(words, binary.LittleEndian.Uint64(body[i:]))
		}
		enc := appendEncodedPayload(nil, words, codecMaskAll)
		if len(enc) > 1+8*len(words) {
			t.Fatalf("encoding grew payload: %dB for %d words", len(enc), len(words))
		}
		got, err := decodeCodec(enc[0], enc[1:], len(words), nil)
		if err != nil {
			t.Fatalf("own encoding rejected (codec %d): %v", enc[0], err)
		}
		for i := range words {
			if got[i] != words[i] {
				t.Fatalf("word %d: %#x != %#x (codec %d)", i, got[i], words[i], enc[0])
			}
		}
	})
}
