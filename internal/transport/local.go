package transport

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The Local fabric is the in-process implementation extracted from
// internal/bsp: sender-owned staging rows, double-buffered mailboxes
// delivered by a pointer swap, and a two-phase sense-reversing barrier
// over cache-line-padded atomics. See the package comment of
// internal/bsp for the full hot-path design rationale; the code here is
// that design, moved behind the Transport seam without changing a single
// ordering or accounting decision.

const cacheLineSize = 64

// padCounter is a cache-line padded plain counter owned by one rank.
// Only the owner writes it; the barrier's happens-before edges order the
// finalizer's reads after the owners' writes.
type padCounter struct {
	v uint64
	_ [cacheLineSize - 8]byte
}

// padAtomic is a cache-line padded atomic word (barrier state).
type padAtomic struct {
	v atomic.Uint64
	_ [cacheLineSize - 8]byte
}

// Local is the in-process fabric: all p ranks live in this process and
// exchange words through shared memory. A Local is sized once and may be
// reused across many runs (Reset); it must not run two bodies
// concurrently.
type Local struct {
	p int

	wordTime    time.Duration
	syncLatency time.Duration

	// Two-phase sense-reversing barrier. arrive counts arrivals of the
	// current superstep; release carries the phase number whose delivery
	// is complete. Both are padded so arrivals and release polling touch
	// distinct cache lines.
	arrive  padAtomic
	release padAtomic

	// Spin budgets, fixed at construction from GOMAXPROCS: waiters spin
	// actively for spinActive iterations, yield the processor until
	// spinYield, then park. With p ≤ GOMAXPROCS waiters virtually never
	// park; oversubscribed machines degrade to scheduler-cooperative
	// yielding and finally a parked wait.
	spinActive int
	spinYield  int

	// Parked-waiter slow path. The mutex guards only parked; it is never
	// touched while spinning succeeds.
	parkMu   sync.Mutex
	parkCond *sync.Cond
	parked   int

	// Abort protocol: abortFlag is polled by spinning waiters and checked
	// by the BSP layer at Sync entry; the cause is stored once under
	// parkMu.
	abortFlag atomic.Bool
	abortErr  error

	// staging[src][dst] collects words rank src queued for dst during the
	// current superstep; inbox holds the previous superstep's delivery.
	// The barrier swaps the two slice headers — delivery is O(1).
	staging [][][]uint64
	inbox   [][][]uint64

	// sentWords[i] counts words rank i sent this superstep
	// (owner-written, finalizer-read).
	sentWords []padCounter

	// bufPool backs the per-rank payload free lists.
	bufPool sync.Pool

	// Accounting, owned by the finalizing rank of each barrier and read
	// after the run completes. foldMu orders concurrent FoldChild calls
	// from split sub-fabrics.
	ledger Ledger
	foldMu sync.Mutex

	eps []LocalEndpoint
}

// NewLocal builds a reusable p-rank in-process fabric. p must be
// positive.
func NewLocal(p int) (*Local, error) {
	if p <= 0 {
		return nil, fmt.Errorf("transport: local fabric with p=%d", p)
	}
	l := &Local{
		p:         p,
		staging:   makeMailbox(p),
		inbox:     makeMailbox(p),
		sentWords: make([]padCounter, p),
		eps:       make([]LocalEndpoint, p),
	}
	l.ledger.HRelations = make([]uint64, 0, 64)
	l.parkCond = sync.NewCond(&l.parkMu)
	// Spin budgets: with enough hardware parallelism the release arrives
	// while waiters actively spin; oversubscribed, yielding is what lets
	// the remaining arrivals run at all, so skip the active phase and park
	// after a bounded number of scheduler round-trips.
	if runtime.GOMAXPROCS(0) >= p {
		l.spinActive = 64
		l.spinYield = l.spinActive + 16*p + 64
	} else {
		l.spinActive = 0
		l.spinYield = 16*p + 64
	}
	for r := 0; r < p; r++ {
		l.eps[r] = LocalEndpoint{l: l, rank: r}
	}
	return l, nil
}

func makeMailbox(p int) [][][]uint64 {
	mb := make([][][]uint64, p)
	for i := range mb {
		mb[i] = make([][]uint64, p)
	}
	return mb
}

// Kind returns KindLocal.
func (l *Local) Kind() string { return KindLocal }

// Size returns the fabric's rank count.
func (l *Local) Size() int { return l.p }

// LocalRanks returns all ranks: the whole fabric lives in-process.
func (l *Local) LocalRanks() []int {
	ranks := make([]int, l.p)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}

// Endpoint returns rank's handle.
func (l *Local) Endpoint(rank int) Endpoint { return &l.eps[rank] }

// LocalEndpointAt returns the concrete endpoint for rank — the zero-
// overhead fast path internal/bsp builds its cached staging-row access
// on.
func (l *Local) LocalEndpointAt(rank int) *LocalEndpoint { return &l.eps[rank] }

// AbortFlag exposes the fabric's abort flag for cheap polling.
func (l *Local) AbortFlag() *atomic.Bool { return &l.abortFlag }

// SetCost configures the emulated interconnect for subsequent runs.
func (l *Local) SetCost(wordTime, syncLatency time.Duration) {
	l.wordTime = wordTime
	l.syncLatency = syncLatency
}

// Reset restores the fabric to its pre-run state, keeping every mailbox
// cell's and scratch buffer's capacity for reuse.
func (l *Local) Reset() error {
	l.arrive.v.Store(0)
	l.release.v.Store(0)
	l.abortFlag.Store(false)
	// Abort may legally race a reset (aborting an idle fabric is
	// documented as harmless), so the fields it touches are cleared under
	// the same lock abort/wakeParked take.
	l.parkMu.Lock()
	l.abortErr = nil
	l.parked = 0
	l.parkMu.Unlock()
	l.ledger.Supersteps = 0
	l.ledger.Volume = 0
	l.ledger.HRelations = l.ledger.HRelations[:0]
	l.ledger.SimComm = 0
	for i := range l.sentWords {
		l.sentWords[i].v = 0
	}
	for src := range l.staging {
		for dst := range l.staging[src] {
			l.staging[src][dst] = l.staging[src][dst][:0]
			l.inbox[src][dst] = l.inbox[src][dst][:0]
		}
	}
	for r := range l.eps {
		l.eps[r].sense = 0
	}
	return nil
}

// Abort marks the fabric failed and wakes all waiters: any pending or
// subsequent Exchange returns the cause.
func (l *Local) Abort(err error) {
	l.parkMu.Lock()
	if l.abortErr == nil {
		l.abortErr = err
	}
	l.parkMu.Unlock()
	l.abortFlag.Store(true)
	l.wakeParked()
}

// Err returns the abort cause, or nil.
func (l *Local) Err() error {
	l.parkMu.Lock()
	defer l.parkMu.Unlock()
	return l.abortErr
}

// Derive creates an independent in-process sub-fabric for a Split
// group; it inherits the cost model. The tag is unused locally (frame
// routing is a socket concern) and members only sizes the group.
func (l *Local) Derive(tag uint64, members []int) (Transport, error) {
	_ = tag
	sub, err := NewLocal(len(members))
	if err != nil {
		return nil, err
	}
	sub.wordTime = l.wordTime
	sub.syncLatency = l.syncLatency
	return sub, nil
}

// FoldChild folds a derived sub-fabric's ledger into this fabric's.
// With nested splits the child may itself still be receiving folds from
// its own children (their rank 0s run on other goroutines), so its
// counters are read under its own foldMu. Locking child before parent
// is a consistent order — folds always go child → parent along the
// split tree.
func (l *Local) FoldChild(sub Transport) {
	cl, ok := sub.(*Local)
	if !ok {
		panic("transport: FoldChild across fabric kinds")
	}
	cl.foldMu.Lock()
	l.foldMu.Lock()
	l.ledger.add(&cl.ledger)
	l.foldMu.Unlock()
	cl.foldMu.Unlock()
}

// FinishRun is a no-op on the in-process fabric: the shared ledger is
// already complete.
func (l *Local) FinishRun() error { return nil }

// Ledger returns the run's accounting.
func (l *Local) Ledger() Ledger {
	l.foldMu.Lock()
	defer l.foldMu.Unlock()
	out := l.ledger
	out.HRelations = append([]uint64(nil), l.ledger.HRelations...)
	return out
}

// Close releases nothing: the in-process fabric holds no external
// resources.
func (l *Local) Close() error { return nil }

// PoolGet draws a recycled payload buffer from the fabric-wide pool, or
// nil.
func (l *Local) PoolGet() []uint64 {
	if v := l.bufPool.Get(); v != nil {
		return *(v.(*[]uint64))
	}
	return nil
}

// PoolPut returns a payload buffer to the fabric-wide pool.
func (l *Local) PoolPut(buf []uint64) {
	buf = buf[:0]
	l.bufPool.Put(&buf)
}

// finalize runs on the last arriver, with every other rank blocked: it
// accounts the superstep's h-relation and swaps the mailboxes.
func (l *Local) finalize() {
	p := l.p
	var h uint64
	for dst := 0; dst < p; dst++ {
		var r uint64
		for src := 0; src < p; src++ {
			r += uint64(len(l.staging[src][dst]))
		}
		if r > h {
			h = r
		}
	}
	for i := 0; i < p; i++ {
		if s := l.sentWords[i].v; s > h {
			h = s
		}
	}
	l.ledger.Supersteps++
	l.ledger.Volume += h
	l.ledger.HRelations = append(l.ledger.HRelations, h)
	if l.wordTime > 0 || l.syncLatency > 0 {
		l.ledger.SimComm += time.Duration(h)*l.wordTime + l.syncLatency
	}
	l.inbox, l.staging = l.staging, l.inbox
}

// await blocks until the release sense reaches want: bounded active
// spinning, then cooperative yielding, then a parked wait. Aborts are
// polled throughout so no waiter outlives a failed peer.
func (l *Local) await(want uint64) error {
	for spins := 0; ; spins++ {
		if l.release.v.Load() >= want {
			return nil
		}
		if l.abortFlag.Load() {
			return l.Err()
		}
		if spins < l.spinActive {
			continue
		}
		if spins < l.spinYield {
			runtime.Gosched()
			continue
		}
		l.parkMu.Lock()
		if l.release.v.Load() >= want || l.abortFlag.Load() {
			l.parkMu.Unlock()
			continue
		}
		l.parked++
		l.parkCond.Wait()
		l.parkMu.Unlock()
	}
}

// wakeParked releases any waiters that gave up spinning. The release
// sense is already published, so a waiter that parks between the check
// and the broadcast re-checks under parkMu and never sleeps through it.
func (l *Local) wakeParked() {
	l.parkMu.Lock()
	if l.parked > 0 {
		l.parked = 0
		l.parkCond.Broadcast()
	}
	l.parkMu.Unlock()
}

// LocalEndpoint is one rank's concrete handle on the in-process fabric.
// Its accessors expose the fabric's current staging row and inbox so the
// BSP layer can cache them and keep Send/Recv free of any per-call
// indirection.
type LocalEndpoint struct {
	l     *Local
	rank  int
	sense uint64 // barrier sense (number of Exchanges performed)
	// Endpoints live in one contiguous array and sense is owner-written
	// every superstep; pad so neighbouring ranks' writes never share a
	// cache line.
	_ [cacheLineSize - 24]byte
}

// Rank returns this endpoint's rank.
func (e *LocalEndpoint) Rank() int { return e.rank }

// Size returns the fabric's rank count.
func (e *LocalEndpoint) Size() int { return e.l.p }

// StagingRow returns this rank's current staging row (row[dst] collects
// the words staged for dst). The row's identity changes at every
// Exchange; callers caching it must refresh after each Exchange.
func (e *LocalEndpoint) StagingRow() [][]uint64 { return e.l.staging[e.rank] }

// InboxRef returns the fabric's current inbox (inbox[src][dst]); like
// StagingRow it must be re-fetched after each Exchange.
func (e *LocalEndpoint) InboxRef() [][][]uint64 { return e.l.inbox }

// SentCounter returns the rank-owned staged-words counter backing the
// h-relation accounting.
func (e *LocalEndpoint) SentCounter() *uint64 { return &e.l.sentWords[e.rank].v }

// Send stages a copy of words for rank `to`.
func (e *LocalEndpoint) Send(to int, words []uint64) {
	l := e.l
	if to < 0 || to >= l.p {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, l.p))
	}
	row := l.staging[e.rank]
	row[to] = append(row[to], words...)
	l.sentWords[e.rank].v += uint64(len(words))
}

// SendOwned stages words transferring slice ownership; a displaced
// empty cell's buffer is returned to the pool.
func (e *LocalEndpoint) SendOwned(to int, words []uint64) {
	l := e.l
	if to < 0 || to >= l.p {
		panic(fmt.Sprintf("transport: send to rank %d of %d", to, l.p))
	}
	row := l.staging[e.rank]
	box := row[to]
	if len(box) == 0 {
		if cap(box) > 0 {
			l.PoolPut(box)
		}
		row[to] = words
	} else {
		row[to] = append(box, words...)
	}
	l.sentWords[e.rank].v += uint64(len(words))
}

// Recv returns the words delivered from `src` at the last Exchange.
func (e *LocalEndpoint) Recv(src int) []uint64 { return e.l.inbox[src][e.rank] }

// Buffer returns a recycled (or fresh) word slice of length n.
func (e *LocalEndpoint) Buffer(n int) []uint64 {
	if buf := e.l.PoolGet(); cap(buf) >= n {
		return buf[:n]
	}
	return make([]uint64, n)
}

// Exchange is the superstep barrier: it blocks until all ranks arrive,
// then atomically delivers all staged words. Post-barrier, every rank
// clears its own staging row: after the swap it holds the payloads
// delivered two supersteps ago, which no one may read anymore. This
// distributes the O(p²) cleanup p ways and keeps every cell's capacity
// with its owning sender.
func (e *LocalEndpoint) Exchange() error {
	l := e.l
	e.sense++
	want := e.sense
	// Phase 1: arrive. The last arriver finalizes the superstep and
	// releases; everyone else waits for the sense word to reach the phase.
	if l.arrive.v.Add(1) == uint64(l.p) {
		l.arrive.v.Store(0)
		l.finalize()
		l.release.v.Store(want) // phase 2: release
		l.wakeParked()
	} else if err := l.await(want); err != nil {
		return err
	}

	row := l.staging[e.rank]
	for dst := range row {
		row[dst] = row[dst][:0]
	}
	l.sentWords[e.rank].v = 0
	return nil
}
