package dist

import (
	"repro/internal/bsp"
	"repro/internal/graph"
	xsort "repro/internal/sort"
)

// edgeLess orders edges by (smaller endpoint, larger endpoint) — the
// global order sparse bulk edge contraction needs so that parallel edges
// land in one processor or adjacent ones (§4.1). Callers must normalize
// edges first (U <= V).
func edgeLess(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// sortLocal sorts es by (U, V) through the pooled LSD radix kernel on
// packed 64-bit keys. The sort is stable (equal-key parallel edges keep
// their input order), unlike the comparison sort it replaced.
func sortLocal(es []graph.Edge) {
	kvs := xsort.Borrow(len(es))
	for i, e := range es {
		kvs[i] = xsort.KV{K: xsort.Key(e.U, e.V), V: e.W}
	}
	scratch := xsort.Borrow(len(es))
	xsort.Pairs(kvs, scratch)
	for i, kv := range kvs {
		es[i] = graph.Edge{U: xsort.KeyU(kv.K), V: xsort.KeyV(kv.K), W: kv.V}
	}
	xsort.Release(scratch)
	xsort.Release(kvs)
}

// SampleSortEdges globally sorts the distributed edge array by
// (U, V) in O(1) supersteps using sample sort: local sort, splitter
// selection at the root from p samples per processor, then a single
// all-to-all redistribution. On return every processor holds a sorted
// run, runs are globally ordered by rank, and with high probability each
// holds O(m/p) edges. Edges must be normalized (U <= V).
func SampleSortEdges(c *bsp.Comm, local []graph.Edge) []graph.Edge {
	p := c.Size()
	if p == 1 {
		out := append([]graph.Edge(nil), local...)
		sortLocal(out)
		return out
	}
	sortLocal(local)

	// Each processor contributes p evenly spaced sample keys (oversampling
	// factor p keeps buckets balanced w.h.p.). Missing samples (short
	// slices) are simply not sent.
	samples := make([]graph.Edge, 0, p)
	for i := 0; i < p; i++ {
		if len(local) == 0 {
			break
		}
		idx := (2*i + 1) * len(local) / (2 * p)
		samples = append(samples, local[idx])
	}
	gathered := c.Gather(0, EncodeEdges(samples))

	// Root picks p-1 splitters from the sorted sample set.
	var splitterWords []uint64
	if c.Rank() == 0 {
		var all []graph.Edge
		for _, w := range gathered {
			all = DecodeEdgesAppend(all, w)
		}
		sortLocal(all)
		splitters := make([]graph.Edge, 0, p-1)
		for i := 1; i < p; i++ {
			if len(all) == 0 {
				break
			}
			splitters = append(splitters, all[i*len(all)/p])
		}
		splitterWords = EncodeEdges(splitters)
	}
	splitters := DecodeEdges(c.Broadcast(0, splitterWords))

	// Partition the sorted local run by splitters: because both the run
	// and the splitters are sorted, one merge walk computes every bucket
	// boundary — O(m/p + p) comparisons instead of a binary search per
	// edge. Each part is encoded into an exact-size runtime buffer and
	// handed off owned, so redistribution copies each edge exactly once.
	bounds := make([]int, p+1) // part dst covers local[bounds[dst]:bounds[dst+1]]
	dst := 0
	for i, e := range local {
		for dst < len(splitters) && !edgeLess(e, splitters[dst]) {
			dst++
			bounds[dst] = i
		}
	}
	for d := dst + 1; d <= p; d++ {
		bounds[d] = len(local)
	}
	parts := make([][]uint64, p)
	for d := 0; d < p; d++ {
		chunk := local[bounds[d]:bounds[d+1]]
		parts[d] = AppendEdges(c.Buffer(len(chunk) * edgeWords)[:0], chunk)
	}
	got := c.AllToAllOwned(parts)
	total := 0
	for _, w := range got {
		total += len(w) / edgeWords
	}
	out := make([]graph.Edge, 0, total)
	for _, w := range got {
		out = DecodeEdgesAppend(out, w)
	}
	sortLocal(out)
	return out
}
