package dist

import (
	"sort"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// edgeLess orders edges by (smaller endpoint, larger endpoint) — the
// global order sparse bulk edge contraction needs so that parallel edges
// land in one processor or adjacent ones (§4.1). Callers must normalize
// edges first (U <= V).
func edgeLess(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

func sortLocal(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool { return edgeLess(es[i], es[j]) })
}

// SampleSortEdges globally sorts the distributed edge array by
// (U, V) in O(1) supersteps using sample sort: local sort, splitter
// selection at the root from p samples per processor, then a single
// all-to-all redistribution. On return every processor holds a sorted
// run, runs are globally ordered by rank, and with high probability each
// holds O(m/p) edges. Edges must be normalized (U <= V).
func SampleSortEdges(c *bsp.Comm, local []graph.Edge) []graph.Edge {
	p := c.Size()
	if p == 1 {
		out := append([]graph.Edge(nil), local...)
		sortLocal(out)
		return out
	}
	sortLocal(local)

	// Each processor contributes p evenly spaced sample keys (oversampling
	// factor p keeps buckets balanced w.h.p.). Missing samples (short
	// slices) are simply not sent.
	samples := make([]graph.Edge, 0, p)
	for i := 0; i < p; i++ {
		if len(local) == 0 {
			break
		}
		idx := (2*i + 1) * len(local) / (2 * p)
		samples = append(samples, local[idx])
	}
	gathered := c.Gather(0, EncodeEdges(samples))

	// Root picks p-1 splitters from the sorted sample set.
	var splitterWords []uint64
	if c.Rank() == 0 {
		var all []graph.Edge
		for _, w := range gathered {
			all = append(all, DecodeEdges(w)...)
		}
		sortLocal(all)
		splitters := make([]graph.Edge, 0, p-1)
		for i := 1; i < p; i++ {
			if len(all) == 0 {
				break
			}
			splitters = append(splitters, all[i*len(all)/p])
		}
		splitterWords = EncodeEdges(splitters)
	}
	splitters := DecodeEdges(c.Broadcast(0, splitterWords))

	// Partition the local run by splitters and redistribute.
	parts := make([][]uint64, p)
	for _, e := range local {
		dst := sort.Search(len(splitters), func(i int) bool { return edgeLess(e, splitters[i]) })
		parts[dst] = AppendEdges(parts[dst], []graph.Edge{e})
	}
	got := c.AllToAllOwned(parts)
	var out []graph.Edge
	for _, w := range got {
		out = append(out, DecodeEdges(w)...)
	}
	sortLocal(out)
	return out
}
