package dist

import (
	"repro/internal/bsp"
	"repro/internal/graph"
)

// MatrixBlock is one processor's row block of a distributed adjacency
// matrix: rows [Lo, Hi) of an N×N symmetric weight matrix, stored
// row-major with full width N.
type MatrixBlock struct {
	N      int
	Lo, Hi int
	W      []uint64 // len (Hi-Lo)*N
}

// NewMatrixBlock allocates the zero block owned by rank under the
// BlockRange row distribution.
func NewMatrixBlock(c *bsp.Comm, n int) *MatrixBlock {
	lo, hi := BlockRange(n, c.Size(), c.Rank())
	return &MatrixBlock{N: n, Lo: lo, Hi: hi, W: make([]uint64, (hi-lo)*n)}
}

// Row returns row i (global index) of the block; i must be in [Lo, Hi).
func (b *MatrixBlock) Row(i int) []uint64 {
	return b.W[(i-b.Lo)*b.N : (i-b.Lo+1)*b.N]
}

// ScatterMatrix distributes the root's dense matrix by row blocks.
// Only the root's m is consulted; its N is broadcast.
func ScatterMatrix(c *bsp.Comm, root int, m *graph.Matrix) *MatrixBlock {
	var header []uint64
	if c.Rank() == root {
		header = []uint64{uint64(m.N)}
	}
	n := int(c.Broadcast(root, header)[0])
	var parts [][]uint64
	if c.Rank() == root {
		parts = make([][]uint64, c.Size())
		for r := 0; r < c.Size(); r++ {
			lo, hi := BlockRange(n, c.Size(), r)
			parts[r] = m.W[lo*n : hi*n]
		}
	}
	// Copy out of the collective's scratch: the block outlives any number
	// of later collectives.
	words := append([]uint64(nil), c.Scatter(root, parts)...)
	lo, hi := BlockRange(n, c.Size(), c.Rank())
	blk := &MatrixBlock{N: n, Lo: lo, Hi: hi, W: words}
	if len(blk.W) != (hi-lo)*n {
		panic("dist: scattered matrix block has wrong size")
	}
	return blk
}

// GatherMatrix reassembles the distributed matrix at the root; non-roots
// return nil.
func GatherMatrix(c *bsp.Comm, root int, b *MatrixBlock) *graph.Matrix {
	parts := c.Gather(root, b.W)
	if c.Rank() != root {
		return nil
	}
	m := graph.NewMatrix(b.N)
	off := 0
	for _, p := range parts {
		copy(m.W[off:], p)
		off += len(p)
	}
	return m
}

// Contract performs dense bulk edge contraction (§4.1) under mapping
// (old vertex -> new vertex in [0,newN)): ① combine columns locally,
// ② transpose via a single all-to-all, ③ combine columns again, and
// ④ zero the diagonal. It takes O(1) supersteps and O(n²/p)
// communication volume and time per processor (Lemma 4.1). Every
// processor must pass the same mapping. The result is distributed by
// BlockRange over newN rows.
func (b *MatrixBlock) Contract(c *bsp.Comm, mapping []int32, newN int) *MatrixBlock {
	p := c.Size()
	n := b.N

	// ① Combine columns: rows keep their original global index, width
	// shrinks to newN.
	rows := b.Hi - b.Lo
	comb := make([]uint64, rows*newN)
	for r := 0; r < rows; r++ {
		src := b.W[r*n : (r+1)*n]
		dst := comb[r*newN : (r+1)*newN]
		for j, w := range src {
			if w != 0 {
				dst[mapping[j]] += w
			}
		}
	}
	c.Ops(uint64(rows) * uint64(n))

	// ② Transpose: destination d owns new-matrix rows [dLo, dHi) of the
	// (newN × n) transposed intermediate. For each d send the submatrix
	// comb[:, dLo:dHi] transposed, prefixed by our row range.
	parts := make([][]uint64, p)
	for d := 0; d < p; d++ {
		dLo, dHi := BlockRange(newN, p, d)
		payload := make([]uint64, 0, 2+(dHi-dLo)*rows)
		payload = append(payload, uint64(b.Lo), uint64(b.Hi))
		for t := dLo; t < dHi; t++ {
			for r := 0; r < rows; r++ {
				payload = append(payload, comb[r*newN+t])
			}
		}
		parts[d] = payload
	}
	got := c.AllToAll(parts)

	// Assemble the transposed intermediate: rows are new vertices
	// [myLo, myHi), columns are original vertices 0..n-1.
	myLo, myHi := BlockRange(newN, p, c.Rank())
	myRows := myHi - myLo
	trans := make([]uint64, myRows*n)
	for _, payload := range got {
		if len(payload) < 2 {
			continue
		}
		sLo, sHi := int(payload[0]), int(payload[1])
		body := payload[2:]
		width := sHi - sLo
		for t := 0; t < myRows; t++ {
			copy(trans[t*n+sLo:t*n+sHi], body[t*width:(t+1)*width])
		}
	}

	// ③ Combine columns again; ④ zero the diagonal.
	out := &MatrixBlock{N: newN, Lo: myLo, Hi: myHi, W: make([]uint64, myRows*newN)}
	for t := 0; t < myRows; t++ {
		src := trans[t*n : (t+1)*n]
		dst := out.W[t*newN : (t+1)*newN]
		for j, w := range src {
			if w != 0 {
				dst[mapping[j]] += w
			}
		}
		dst[myLo+t] = 0
	}
	c.Ops(uint64(myRows) * uint64(n))
	return out
}

// WeightedDegrees returns each local row's total weight, i.e. the
// weighted degree of the locally owned vertices.
func (b *MatrixBlock) WeightedDegrees() []uint64 {
	rows := b.Hi - b.Lo
	out := make([]uint64, rows)
	for r := 0; r < rows; r++ {
		var s uint64
		for _, w := range b.W[r*b.N : (r+1)*b.N] {
			s += w
		}
		out[r] = s
	}
	return out
}
