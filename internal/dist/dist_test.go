package dist

import (
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/transport"
)

// TestEdgeStrideMatchesTransport: the TCP fabric's edge-delta codec
// recognizes EncodeEdges streams structurally, which only works while
// both layers agree on the words-per-edge stride.
func TestEdgeStrideMatchesTransport(t *testing.T) {
	if EdgeWords != transport.EdgeStride {
		t.Fatalf("dist.EdgeWords = %d, transport.EdgeStride = %d", EdgeWords, transport.EdgeStride)
	}
}

func TestEdgeCodecRoundTrip(t *testing.T) {
	es := []graph.Edge{{U: 1, V: 2, W: 3}, {U: 0, V: 100000, W: 1 << 40}}
	got := DecodeEdges(EncodeEdges(es))
	if len(got) != 2 || got[0] != es[0] || got[1] != es[1] {
		t.Fatalf("round trip: %v", got)
	}
}

func TestDecodeEdgesPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged payload accepted")
		}
	}()
	DecodeEdges([]uint64{1, 2})
}

func TestBlockRangeCoversExactly(t *testing.T) {
	err := quick.Check(func(rawN, rawP uint8) bool {
		n := int(rawN)
		p := int(rawP%16) + 1
		prevHi := 0
		for r := 0; r < p; r++ {
			lo, hi := BlockRange(n, p, r)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Error(err)
	}
}

func TestOwnerOfConsistentWithBlockRange(t *testing.T) {
	for _, n := range []int{1, 5, 17, 64} {
		for _, p := range []int{1, 2, 3, 7, 16} {
			for i := 0; i < n; i++ {
				r := OwnerOf(n, p, i)
				lo, hi := BlockRange(n, p, r)
				if i < lo || i >= hi {
					t.Fatalf("OwnerOf(%d,%d,%d) = %d but range [%d,%d)", n, p, i, r, lo, hi)
				}
			}
		}
	}
}

func TestScatterGatherGraph(t *testing.T) {
	g := gen.ErdosRenyiM(40, 120, 1, gen.Config{MaxWeight: 9})
	_, err := bsp.Run(4, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := ScatterGraph(c, 0, in)
		if n != 40 {
			t.Errorf("rank %d: n = %d", c.Rank(), n)
		}
		if m := CountEdges(c, local); m != 120 {
			t.Errorf("rank %d: global edges = %d", c.Rank(), m)
		}
		all := GatherEdges(c, 0, local)
		if c.Rank() == 0 {
			if len(all) != 120 {
				t.Fatalf("gathered %d edges", len(all))
			}
			for i := range all {
				if all[i] != g.Edges[i] {
					t.Fatalf("edge %d changed: %v vs %v", i, all[i], g.Edges[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTotalWeightDistributed(t *testing.T) {
	g := gen.Cycle(30, 5)
	_, err := bsp.Run(3, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		_, local := ScatterGraph(c, 0, in)
		if w := TotalWeight(c, local); w != 150 {
			t.Errorf("total weight = %d, want 150", w)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherEdges(t *testing.T) {
	_, err := bsp.Run(3, func(c *bsp.Comm) {
		local := []graph.Edge{{U: int32(c.Rank()), V: int32(c.Rank() + 10), W: 1}}
		all := AllGatherEdges(c, local)
		if len(all) != 3 {
			t.Fatalf("rank %d: %d edges", c.Rank(), len(all))
		}
		for r := 0; r < 3; r++ {
			if all[r].U != int32(r) {
				t.Errorf("rank %d: all[%d] = %v", c.Rank(), r, all[r])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebalance(t *testing.T) {
	_, err := bsp.Run(4, func(c *bsp.Comm) {
		// All edges start at rank 0.
		var local []graph.Edge
		if c.Rank() == 0 {
			for i := 0; i < 40; i++ {
				local = append(local, graph.Edge{U: int32(i), V: int32(i + 1), W: 1})
			}
		}
		bal := Rebalance(c, local)
		if len(bal) != 10 {
			t.Errorf("rank %d: %d edges after rebalance, want 10", c.Rank(), len(bal))
		}
		if m := CountEdges(c, bal); m != 40 {
			t.Errorf("rank %d: lost edges: %d", c.Rank(), m)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceEmpty(t *testing.T) {
	_, err := bsp.Run(3, func(c *bsp.Comm) {
		bal := Rebalance(c, nil)
		if len(bal) != 0 {
			t.Errorf("rank %d: conjured %d edges", c.Rank(), len(bal))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
