package dist

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// checkGloballySorted gathers all runs and verifies global order and
// multiset preservation against want.
func checkGloballySorted(t *testing.T, p int, want []graph.Edge) {
	t.Helper()
	norm := make([]graph.Edge, len(want))
	for i, e := range want {
		norm[i] = e.Normalize()
	}
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		lo, hi := BlockRange(len(norm), p, c.Rank())
		local := append([]graph.Edge(nil), norm[lo:hi]...)
		// Shuffle locally so the sort has work to do.
		s := rng.New(77, uint32(c.Rank()), 0)
		s.Shuffle(len(local), func(i, j int) { local[i], local[j] = local[j], local[i] })
		sorted := SampleSortEdges(c, local)
		all := GatherEdges(c, 0, sorted)
		if c.Rank() == 0 {
			if len(all) != len(norm) {
				t.Fatalf("sort changed edge count: %d -> %d", len(norm), len(all))
			}
			for i := 1; i < len(all); i++ {
				if edgeLess(all[i], all[i-1]) {
					t.Fatalf("not sorted at %d: %v > %v", i, all[i-1], all[i])
				}
			}
			// Multiset check via weight sum and endpoint sum.
			var ws, us uint64
			var ws2, us2 uint64
			for i := range all {
				ws += all[i].W
				us += uint64(all[i].U) + uint64(all[i].V)
				ws2 += norm[i].W
				us2 += uint64(norm[i].U) + uint64(norm[i].V)
			}
			if ws != ws2 || us != us2 {
				t.Fatal("sort changed the edge multiset")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleSortRandom(t *testing.T) {
	g := gen.ErdosRenyiM(200, 2000, 5, gen.Config{MaxWeight: 50})
	for _, p := range []int{1, 2, 4, 7} {
		checkGloballySorted(t, p, g.Edges)
	}
}

func TestSampleSortFewEdges(t *testing.T) {
	// Fewer edges than processors.
	es := []graph.Edge{{U: 3, V: 1, W: 2}, {U: 0, V: 2, W: 1}}
	checkGloballySorted(t, 5, es)
}

func TestSampleSortEmpty(t *testing.T) {
	checkGloballySorted(t, 4, nil)
}

func TestSampleSortAllEqual(t *testing.T) {
	es := make([]graph.Edge, 100)
	for i := range es {
		es[i] = graph.Edge{U: 1, V: 2, W: uint64(i + 1)}
	}
	checkGloballySorted(t, 4, es)
}

func TestSampleSortBalance(t *testing.T) {
	g := gen.ErdosRenyiM(300, 6000, 9, gen.Config{})
	const p = 4
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		lo, hi := BlockRange(len(g.Edges), p, c.Rank())
		local := make([]graph.Edge, 0, hi-lo)
		for _, e := range g.Edges[lo:hi] {
			local = append(local, e.Normalize())
		}
		sorted := SampleSortEdges(c, local)
		// No processor should hold more than ~4x the average.
		if len(sorted) > 4*len(g.Edges)/p {
			t.Errorf("rank %d holds %d of %d edges", c.Rank(), len(sorted), len(g.Edges))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
