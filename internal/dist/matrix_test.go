package dist

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestScatterGatherMatrix(t *testing.T) {
	g := gen.ErdosRenyiM(17, 60, 2, gen.Config{MaxWeight: 5})
	m := graph.MatrixFromGraph(g)
	for _, p := range []int{1, 2, 3, 5} {
		_, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Matrix
			if c.Rank() == 0 {
				in = m
			}
			blk := ScatterMatrix(c, 0, in)
			lo, hi := BlockRange(17, p, c.Rank())
			if blk.Lo != lo || blk.Hi != hi || blk.N != 17 {
				t.Errorf("rank %d: block [%d,%d) of %d", c.Rank(), blk.Lo, blk.Hi, blk.N)
			}
			back := GatherMatrix(c, 0, blk)
			if c.Rank() == 0 {
				for i := range m.W {
					if back.W[i] != m.W[i] {
						t.Fatalf("matrix changed at %d", i)
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDistributedContractMatchesSequential(t *testing.T) {
	g := gen.ErdosRenyiM(23, 150, 3, gen.Config{MaxWeight: 7})
	m := graph.MatrixFromGraph(g)
	// Random mapping onto 9 labels (all labels used to keep newN tight).
	s := rng.New(10, 0, 0)
	newN := 9
	mapping := make([]int32, 23)
	for i := range mapping {
		if i < newN {
			mapping[i] = int32(i)
		} else {
			mapping[i] = int32(s.Intn(newN))
		}
	}
	want := m.Contract(mapping, newN)
	for _, p := range []int{1, 2, 4, 6} {
		_, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Matrix
			if c.Rank() == 0 {
				in = m
			}
			blk := ScatterMatrix(c, 0, in)
			got := blk.Contract(c, mapping, newN)
			full := GatherMatrix(c, 0, got)
			if c.Rank() == 0 {
				if full.N != newN {
					t.Fatalf("p=%d: contracted N = %d", p, full.N)
				}
				for i := range want.W {
					if full.W[i] != want.W[i] {
						t.Fatalf("p=%d: mismatch at %d: %d vs %d", p, i, full.W[i], want.W[i])
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestContractChain(t *testing.T) {
	// Two successive distributed contractions match two sequential ones.
	g := gen.Complete(12, 2)
	m := graph.MatrixFromGraph(g)
	map1 := make([]int32, 12)
	for i := range map1 {
		map1[i] = int32(i / 2) // 12 -> 6
	}
	map2 := make([]int32, 6)
	for i := range map2 {
		map2[i] = int32(i / 3) // 6 -> 2
	}
	want := m.Contract(map1, 6).Contract(map2, 2)
	_, err := bsp.Run(4, func(c *bsp.Comm) {
		var in *graph.Matrix
		if c.Rank() == 0 {
			in = m
		}
		blk := ScatterMatrix(c, 0, in)
		blk = blk.Contract(c, map1, 6)
		blk = blk.Contract(c, map2, 2)
		full := GatherMatrix(c, 0, blk)
		if c.Rank() == 0 {
			if full.CutOfTwo() != want.CutOfTwo() {
				t.Errorf("chained contraction: cut %d vs %d", full.CutOfTwo(), want.CutOfTwo())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedDegreesBlock(t *testing.T) {
	g := gen.Cycle(10, 3)
	m := graph.MatrixFromGraph(g)
	_, err := bsp.Run(3, func(c *bsp.Comm) {
		var in *graph.Matrix
		if c.Rank() == 0 {
			in = m
		}
		blk := ScatterMatrix(c, 0, in)
		for i, d := range blk.WeightedDegrees() {
			if d != 6 {
				t.Errorf("rank %d: degree of %d = %d, want 6", c.Rank(), blk.Lo+i, d)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContractVolumeScalesDown(t *testing.T) {
	// Communication volume per §4.1 should be O(n²/p), so doubling p
	// should not increase the volume.
	g := gen.ErdosRenyiM(64, 1200, 4, gen.Config{})
	m := graph.MatrixFromGraph(g)
	mapping := make([]int32, 64)
	for i := range mapping {
		mapping[i] = int32(i / 2)
	}
	vol := map[int]uint64{}
	for _, p := range []int{2, 8} {
		st, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Matrix
			if c.Rank() == 0 {
				in = m
			}
			blk := ScatterMatrix(c, 0, in)
			blk.Contract(c, mapping, 32)
		})
		if err != nil {
			t.Fatal(err)
		}
		vol[p] = st.CommVolume
	}
	if vol[8] > vol[2] {
		t.Errorf("contract volume grew with p: p=2 %d, p=8 %d", vol[2], vol[8])
	}
}
