// Package dist provides the distributed graph representations of §3 of
// the paper on top of the BSP runtime: the distributed edge array (every
// processor keeps O(m/p) weighted edges — robust to skewed degree
// distributions, unlike distributed adjacency lists) and the distributed
// adjacency matrix (Θ(n/p) rows per processor — used when the graph is
// dense, m ≥ n²/log n, and inside recursive contraction). It also
// implements the O(1)-superstep parallel sample sort that underlies
// sparse bulk edge contraction (§4.1).
package dist

import (
	"repro/internal/bsp"
	"repro/internal/graph"
)

// EdgeWords is the number of BSP words per encoded edge: (u, v, w).
// The TCP fabric's edge-delta payload codec recognizes this exact
// layout structurally (transport.EdgeStride must equal it), so sorted
// edge streams staged through these helpers compress on the wire with
// no tagging from the kernels.
const EdgeWords = 3

const edgeWords = EdgeWords

// EncodeEdges packs edges into BSP words (3 per edge).
func EncodeEdges(es []graph.Edge) []uint64 {
	out := make([]uint64, 0, len(es)*edgeWords)
	return AppendEdges(out, es)
}

// AppendEdges appends the encoded form of es to dst and returns it.
func AppendEdges(dst []uint64, es []graph.Edge) []uint64 {
	for _, e := range es {
		dst = append(dst, uint64(uint32(e.U)), uint64(uint32(e.V)), e.W)
	}
	return dst
}

// DecodeEdges unpacks words produced by EncodeEdges. It panics if the
// length is not a multiple of the edge size.
func DecodeEdges(words []uint64) []graph.Edge {
	if len(words)%edgeWords != 0 {
		panic("dist: ragged edge payload")
	}
	es := make([]graph.Edge, len(words)/edgeWords)
	for i := range es {
		es[i] = graph.Edge{
			U: int32(uint32(words[i*edgeWords])),
			V: int32(uint32(words[i*edgeWords+1])),
			W: words[i*edgeWords+2],
		}
	}
	return es
}

// DecodeEdgesAppend appends the edges encoded in words to dst and
// returns it — DecodeEdges without the per-call allocation, for callers
// assembling one edge array from many payloads.
func DecodeEdgesAppend(dst []graph.Edge, words []uint64) []graph.Edge {
	if len(words)%edgeWords != 0 {
		panic("dist: ragged edge payload")
	}
	for i := 0; i+edgeWords <= len(words); i += edgeWords {
		dst = append(dst, graph.Edge{
			U: int32(uint32(words[i])),
			V: int32(uint32(words[i+1])),
			W: words[i+2],
		})
	}
	return dst
}

// BlockRange splits n items evenly over p processors and returns the
// half-open range owned by rank.
func BlockRange(n, p, rank int) (lo, hi int) {
	lo = rank * n / p
	hi = (rank + 1) * n / p
	return lo, hi
}

// OwnerOf returns the rank owning item i under BlockRange distribution.
// n must be positive and i in [0, n).
func OwnerOf(n, p, i int) int {
	// Inverse of BlockRange: the owner is the largest r with r*n/p <= i.
	r := (i*p + p - 1) / n
	for r*n/p > i {
		r--
	}
	for (r+1)*n/p <= i {
		r++
	}
	return r
}

// ScatterGraph distributes the root's graph: the vertex count is
// broadcast and the edges are split into contiguous equal slices. Every
// processor returns (n, its local edges). Only the root's g is consulted.
func ScatterGraph(c *bsp.Comm, root int, g *graph.Graph) (int, []graph.Edge) {
	var header []uint64
	if c.Rank() == root {
		header = []uint64{uint64(g.N)}
	}
	n := int(c.Broadcast(root, header)[0])
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			lo, hi := BlockRange(len(g.Edges), c.Size(), r)
			buf := c.Buffer((hi - lo) * edgeWords)[:0]
			c.SendOwned(r, AppendEdges(buf, g.Edges[lo:hi]))
		}
	}
	c.Sync()
	return n, DecodeEdges(c.Recv(root))
}

// GatherEdges collects all local edge slices at the root; non-roots get
// nil.
func GatherEdges(c *bsp.Comm, root int, local []graph.Edge) []graph.Edge {
	buf := c.Buffer(len(local) * edgeWords)[:0]
	parts := c.GatherOwned(root, AppendEdges(buf, local))
	if c.Rank() != root {
		return nil
	}
	var all []graph.Edge
	for _, p := range parts {
		all = append(all, DecodeEdges(p)...)
	}
	return all
}

// AllGatherEdges collects all local edge slices at every processor.
func AllGatherEdges(c *bsp.Comm, local []graph.Edge) []graph.Edge {
	words := AppendEdges(c.Buffer(len(local) * edgeWords)[:0], local)
	for dst := 0; dst < c.Size(); dst++ {
		c.Send(dst, words)
	}
	c.Sync()
	total := 0
	for src := 0; src < c.Size(); src++ {
		total += len(c.Recv(src)) / edgeWords
	}
	all := make([]graph.Edge, 0, total)
	for src := 0; src < c.Size(); src++ {
		all = DecodeEdgesAppend(all, c.Recv(src))
	}
	return all
}

// CountEdges returns the global number of edges across processors.
func CountEdges(c *bsp.Comm, local []graph.Edge) uint64 {
	return c.AllReduce([]uint64{uint64(len(local))}, bsp.OpSum)[0]
}

// TotalWeight returns the global sum of local edge weights.
func TotalWeight(c *bsp.Comm, local []graph.Edge) uint64 {
	var w uint64
	for _, e := range local {
		w += e.W
	}
	return c.AllReduce([]uint64{w}, bsp.OpSum)[0]
}

// Rebalance redistributes edges so that every processor ends with
// ⌈m/p⌉±1 edges, preserving nothing about order. It takes O(1)
// supersteps. Useful after contraction shrinks some processors' slices.
func Rebalance(c *bsp.Comm, local []graph.Edge) []graph.Edge {
	p := c.Size()
	counts := c.AllGather([]uint64{uint64(len(local))})
	// Compute global offsets: this proc's edges occupy positions
	// [myOff, myOff+len) of the conceptual concatenation.
	var myOff, total uint64
	for r := 0; r < p; r++ {
		if r < c.Rank() {
			myOff += counts[r][0]
		}
		total += counts[r][0]
	}
	parts := make([][]uint64, p)
	for dst := range parts {
		parts[dst] = c.Buffer(0)[:0]
	}
	for i, e := range local {
		pos := myOff + uint64(i)
		dst := OwnerOf(int(total), p, int(pos))
		parts[dst] = AppendEdges(parts[dst], []graph.Edge{e})
	}
	got := c.AllToAllOwned(parts)
	var out []graph.Edge
	for _, w := range got {
		out = append(out, DecodeEdges(w)...)
	}
	return out
}
