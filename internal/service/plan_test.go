package service

import (
	"context"
	"testing"
)

// queryExec forces a kernel execution (no cache) and returns the result.
func queryExec(t *testing.T, e *Engine, req QueryRequest) *QueryResult {
	t.Helper()
	req.NoCache = true
	reply, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("query %s on %q: %v", req.Algorithm, req.Graph, err)
	}
	return reply.Result
}

// A warm cc query must be communication-free: every collective the cold
// path runs is covered by plan facts, so the kernel executes zero
// supersteps and moves zero words — and the ledger says so explicitly
// through the avoided counters instead of silently shrinking.
func TestPlanWarmCCCommunicationFree(t *testing.T) {
	warm := newTestEngine(t, Config{Workers: 1, MaxProcessors: 4})
	cold := newTestEngine(t, Config{Workers: 1, MaxProcessors: 4, DisablePlans: true})
	g := testGraph(400, 1600)
	if _, err := warm.Registry().Put("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Registry().Put("g", g); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 4, IncludeLabels: true}

	coldRes := queryExec(t, cold, req)
	warmRes := queryExec(t, warm, req)

	if warmRes.Kernel.Supersteps != 0 || warmRes.Kernel.CommVolume != 0 {
		t.Errorf("warm cc ran ss=%d vol=%d, want 0/0",
			warmRes.Kernel.Supersteps, warmRes.Kernel.CommVolume)
	}
	if warmRes.Kernel.AvoidedCollectives == 0 || warmRes.Kernel.AvoidedCommVolume == 0 {
		t.Errorf("warm cc avoided=%d/%d words, want both > 0 (the skips must be on the ledger)",
			warmRes.Kernel.AvoidedCollectives, warmRes.Kernel.AvoidedCommVolume)
	}
	if coldRes.Kernel.AvoidedCollectives != 0 || coldRes.Kernel.AvoidedCommVolume != 0 {
		t.Errorf("cold cc reports avoided=%d/%d, want 0/0",
			coldRes.Kernel.AvoidedCollectives, coldRes.Kernel.AvoidedCommVolume)
	}
	if warmRes.Components != coldRes.Components {
		t.Errorf("warm components = %d, cold = %d", warmRes.Components, coldRes.Components)
	}
	for v := range coldRes.Labels {
		if warmRes.Labels[v] != coldRes.Labels[v] {
			t.Fatalf("warm label differs at vertex %d: %d vs %d",
				v, warmRes.Labels[v], coldRes.Labels[v])
		}
	}
	if got := warm.Stats().Plans; got != 1 {
		t.Errorf("plan count = %d, want 1", got)
	}
	if got := cold.Stats().Plans; got != 0 {
		t.Errorf("DisablePlans engine cached %d plans, want 0", got)
	}
}

// A warm mincut still communicates for its trials (claim rounds, argmin,
// side broadcast) but must skip the CC check, edge count, replication,
// and degree collectives entirely — the dominant volume — and return the
// same cut as the cold path (trial streams derive from the trial index,
// not from what was skipped).
func TestPlanWarmMincutAvoidsCollectives(t *testing.T) {
	warm := newTestEngine(t, Config{Workers: 1, MaxProcessors: 4})
	cold := newTestEngine(t, Config{Workers: 1, MaxProcessors: 4, DisablePlans: true})
	g := testGraph(256, 1024)
	if _, err := warm.Registry().Put("g", g); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Registry().Put("g", g); err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{Graph: "g", Algorithm: AlgMinCut, Processors: 4, MaxTrials: 8}

	coldRes := queryExec(t, cold, req)
	warmRes := queryExec(t, warm, req)

	if warmRes.Value != coldRes.Value {
		t.Errorf("warm cut = %d, cold cut = %d (plans must not change results)",
			warmRes.Value, coldRes.Value)
	}
	if warmRes.Kernel.AvoidedCollectives == 0 || warmRes.Kernel.AvoidedCommVolume == 0 {
		t.Errorf("warm mincut avoided=%d/%d words, want both > 0",
			warmRes.Kernel.AvoidedCollectives, warmRes.Kernel.AvoidedCommVolume)
	}
	if warmRes.Kernel.CommVolume >= coldRes.Kernel.CommVolume {
		t.Errorf("warm volume %d not below cold volume %d",
			warmRes.Kernel.CommVolume, coldRes.Kernel.CommVolume)
	}
	// The plan's replicated edge view stands in for AllGatherEdges, whose
	// p·3m words dominate the cold volume; the warm run must shed at
	// least one full replication's worth.
	if warmRes.Kernel.AvoidedCommVolume < uint64(3*len(g.Edges)) {
		t.Errorf("avoided volume %d below one replication of %d edges",
			warmRes.Kernel.AvoidedCommVolume, len(g.Edges))
	}
}

// Re-registering a graph under the same name must evict its cached plans
// immediately — a plan may never outlive the snapshot version it
// describes — and the next query must rebuild against the new snapshot.
func TestPlanEvictionOnReplacement(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 2})
	sg1, err := e.Registry().Put("g", testGraph(128, 512))
	if err != nil {
		t.Fatal(err)
	}
	if sg1.Version != 1 {
		t.Fatalf("first registration version = %d, want 1", sg1.Version)
	}
	queryExec(t, e, QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 2})
	if got := e.Registry().PlanCount(); got != 1 {
		t.Fatalf("after first query: plan count = %d, want 1", got)
	}

	// Replace with a different graph (more vertices): version bumps, the
	// old plan is gone before any query sees the new snapshot.
	sg2, err := e.Registry().Put("g", testGraph(200, 800))
	if err != nil {
		t.Fatal(err)
	}
	if sg2.Version != 2 {
		t.Fatalf("replacement version = %d, want 2", sg2.Version)
	}
	if got := e.Registry().PlanCount(); got != 0 {
		t.Fatalf("after replacement: plan count = %d, want 0 (stale plan survived)", got)
	}

	res := queryExec(t, e, QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 2, IncludeLabels: true})
	if res.Version != 2 {
		t.Errorf("result version = %d, want 2", res.Version)
	}
	if len(res.Labels) != 200 {
		t.Errorf("labels over %d vertices, want 200 (plan rebuilt for old snapshot?)", len(res.Labels))
	}
	if got := e.Registry().PlanCount(); got != 1 {
		t.Errorf("after re-query: plan count = %d, want 1", got)
	}

	// Deletion evicts too.
	e.Registry().Delete("g")
	if got := e.Registry().PlanCount(); got != 0 {
		t.Errorf("after delete: plan count = %d, want 0", got)
	}
}

// Plans are cached per machine size: the same graph queried at two
// machine sizes builds two plans, and each skips its own measured costs.
func TestPlanPerMachineSize(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 4})
	if _, err := e.Registry().Put("g", testGraph(128, 512)); err != nil {
		t.Fatal(err)
	}
	queryExec(t, e, QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 2})
	queryExec(t, e, QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 4})
	if got := e.Registry().PlanCount(); got != 2 {
		t.Errorf("plan count = %d, want 2 (one per machine size)", got)
	}
}
