package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/mincut"
	"repro/internal/trace"
)

// chaosSuccessProb drives the exact min cut trial count high enough that
// the full computation takes several seconds — room for a sub-second
// deadline to land mid-trial-loop deterministically.
const chaosSuccessProb = 0.999999999

// A mincut whose deadline fires mid-trial-loop must come back degraded:
// the best cut over the completed trials, the achieved success
// probability, a retry hint — and it must never enter the cache.
func TestChaosDegradedMincut(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1})
	sg, err := e.Registry().Put("big", testGraph(3000, 9000))
	if err != nil {
		t.Fatal(err)
	}
	planned := mincut.Trials(sg.Snap.N(), sg.Snap.M(), chaosSuccessProb)
	start := time.Now()
	reply, err := e.Query(context.Background(), QueryRequest{
		Graph: "big", Algorithm: AlgMinCut,
		SuccessProb: chaosSuccessProb, TimeoutMillis: 250,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("query: %v (after %v)", err, elapsed)
	}
	res := reply.Result
	if !res.Degraded {
		t.Fatalf("run completed undegraded in %v with %d trials — grow the instance", elapsed, res.Trials)
	}
	if reply.Outcome != trace.OutcomeDegraded {
		t.Errorf("outcome = %q, want %q", reply.Outcome, trace.OutcomeDegraded)
	}
	if res.Trials < 1 || res.Trials >= planned {
		t.Errorf("completed trials = %d, want in [1, %d)", res.Trials, planned)
	}
	if !(res.AchievedProb > 0 && res.AchievedProb < 1) {
		t.Errorf("achieved prob = %v, want in (0, 1)", res.AchievedProb)
	}
	if res.RetryAfterMs <= 0 {
		t.Errorf("retry hint = %d, want > 0", res.RetryAfterMs)
	}
	if res.Value == 0 || len(res.Side) != sg.Snap.N() {
		t.Errorf("degraded cut value=%d |side|=%d, want a real cut over %d vertices",
			res.Value, len(res.Side), sg.Snap.N())
	}
	// The cancelled machine must have been released promptly — the full
	// run takes seconds, the degraded one barely past its deadline.
	if elapsed > 3*time.Second {
		t.Errorf("degraded query took %v, want release within moments of the 250ms deadline", elapsed)
	}
	if got := e.Stats().Cache.Size; got != 0 {
		t.Errorf("cache size = %d after a degraded result, want 0", got)
	}
	waitFor(t, func() bool { return e.Stats().InflightCalls == 0 })
	if tot := e.Stats().Queries.Totals; tot.Degraded != 1 {
		t.Errorf("collector degraded = %d, want 1 (totals %+v)", tot.Degraded, tot)
	}
}

// The acceptance scenario: a slow processor (injected stall) holds a
// superstep while the deadline fires. The machine must be released
// within one superstep of the cancellation — when the straggler wakes
// and hits the next Sync — not after the remaining seconds of trials.
func TestChaosSlowProcessorRelease(t *testing.T) {
	reg := faults.New(1).Add(faults.Rule{
		Kind: faults.Stall, Rank: 1, Superstep: 2, Delay: 600 * time.Millisecond,
	})
	// DisablePlans: the stall rule targets a cold-path superstep index;
	// warm plans would remove it and the rule would never fire.
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 2, Faults: reg, DisablePlans: true})
	if _, err := e.Registry().Put("big", testGraph(3000, 9000)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	reply, err := e.Query(context.Background(), QueryRequest{
		Graph: "big", Algorithm: AlgMinCut, Processors: 2,
		SuccessProb: chaosSuccessProb, TimeoutMillis: 60,
	})
	elapsed := time.Since(start)
	if reg.TotalFired() == 0 {
		t.Fatal("the stall rule never fired")
	}
	// The stall sits in the early supersteps (component check), before
	// any trial completes: nothing to degrade to, so the query resolves
	// as cancelled once the straggler clears its superstep.
	if err == nil {
		if !reply.Result.Degraded {
			t.Fatalf("run completed normally in %v — the deadline never landed", elapsed)
		}
	} else if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("release took %v; the machine must unwind one superstep after the 600ms stall, not run out the trials", elapsed)
	}
	waitFor(t, func() bool { return e.Stats().InflightCalls == 0 })
}

// A transiently faulted kernel (one injected panic) must be absorbed by
// the single retry: the caller sees a clean executed result, the
// collector records the retry, and the result is cached as usual.
func TestChaosPanicRetried(t *testing.T) {
	reg := faults.New(1).Add(faults.Rule{Kind: faults.Panic, Rank: 0, Superstep: 1})
	var execs atomic.Int32
	// DisablePlans: a warm cc query has zero supersteps, so the
	// superstep-1 panic rule needs the cold path to exist.
	e := newTestEngine(t, Config{
		Workers: 1, MaxProcessors: 1, Faults: reg, DisablePlans: true,
		BeforeExec: func(string) { execs.Add(1) },
	})
	e.Registry().Put("g", testGraph(64, 160))
	reply, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC})
	if err != nil {
		t.Fatalf("query after transient fault: %v", err)
	}
	if reply.Outcome != trace.OutcomeExecuted {
		t.Errorf("outcome = %q, want executed", reply.Outcome)
	}
	if reply.Result.Components != 1 {
		t.Errorf("components = %d, want 1 (correct answer after retry)", reply.Result.Components)
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("kernel attempts = %d, want 2 (original + retry)", got)
	}
	if got := reg.TotalFired(); got != 1 {
		t.Errorf("injections = %d, want 1", got)
	}
	st := e.Stats()
	if st.Queries.Totals.Retried != 1 {
		t.Errorf("retried counter = %d, want 1", st.Queries.Totals.Retried)
	}
	if st.Queries.Totals.Queries != 1 {
		t.Errorf("queries counter = %d, want exactly 1 (retry is an event, not a query)", st.Queries.Totals.Queries)
	}
	if st.Cache.Size != 1 {
		t.Errorf("cache size = %d, want the retried result cached", st.Cache.Size)
	}
}

// A persistent fault exhausts the bounded retry and resolves as faulted;
// nothing is cached, and a later run with the fault gone succeeds.
func TestChaosPersistentFault(t *testing.T) {
	reg := faults.New(1).Add(faults.Rule{
		Kind: faults.Panic, Rank: faults.AnyRank, Superstep: 1, Times: -1,
	})
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1, Faults: reg, DisablePlans: true})
	e.Registry().Put("g", testGraph(64, 160))
	_, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC})
	if !errors.Is(err, ErrFaulted) {
		t.Fatalf("err = %v, want ErrFaulted", err)
	}
	st := e.Stats()
	if st.Queries.Totals.Faulted != 1 || st.Queries.Totals.Retried != 1 {
		t.Errorf("faulted=%d retried=%d, want 1 and 1", st.Queries.Totals.Faulted, st.Queries.Totals.Retried)
	}
	if st.Cache.Size != 0 {
		t.Errorf("cache size = %d after a faulted query, want 0", st.Cache.Size)
	}
	reg.Enable(false)
	reply, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC})
	if err != nil || reply.Outcome != trace.OutcomeExecuted {
		t.Fatalf("recovered query = %v, %v; want clean execution", reply, err)
	}
}

// An injected cancellation on an algorithm with no checkpoint (cc) has
// nothing to degrade to: the query resolves as cancelled, uncached.
func TestChaosCancelInjected(t *testing.T) {
	reg := faults.New(1).Add(faults.Rule{Kind: faults.Cancel, Rank: faults.AnyRank, Superstep: 1})
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1, Faults: reg, DisablePlans: true})
	e.Registry().Put("g", testGraph(64, 160))
	_, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	st := e.Stats()
	if st.Queries.Totals.Cancelled != 1 {
		t.Errorf("cancelled counter = %d, want 1", st.Queries.Totals.Cancelled)
	}
	if st.Cache.Size != 0 {
		t.Errorf("cache size = %d after a cancelled query, want 0", st.Cache.Size)
	}
}

// The HTTP surface of the failure semantics: degraded replies are 200
// with the degradation fields, cancellations map to 408, faults to 503
// with Retry-After, oversized bodies to 413.
func TestChaosHTTP(t *testing.T) {
	t.Run("degraded-200", func(t *testing.T) {
		e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1})
		if _, err := e.Registry().Put("big", testGraph(3000, 9000)); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewHandler(e))
		defer srv.Close()
		body := `{"graph":"big","algorithm":"mincut","success_prob":0.999999999,"timeout_ms":250,"include_side":true}`
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200 for a degraded result", resp.StatusCode)
		}
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if !qr.Degraded || qr.Outcome != trace.OutcomeDegraded {
			t.Fatalf("reply = %+v, want degraded", qr)
		}
		if !(qr.AchievedSuccessProb > 0 && qr.AchievedSuccessProb < 1) || qr.RetryAfterMs <= 0 {
			t.Errorf("achieved=%v retry_after_ms=%d", qr.AchievedSuccessProb, qr.RetryAfterMs)
		}
		if qr.Value == nil || *qr.Value == 0 || len(qr.Side) == 0 {
			t.Errorf("degraded reply lacks the best-so-far cut: %+v", qr)
		}
	})
	t.Run("cancelled-408", func(t *testing.T) {
		reg := faults.New(1).Add(faults.Rule{Kind: faults.Cancel, Rank: faults.AnyRank, Superstep: 1})
		e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1, Faults: reg, DisablePlans: true})
		e.Registry().Put("g", testGraph(64, 160))
		srv := httptest.NewServer(NewHandler(e))
		defer srv.Close()
		resp, err := http.Post(srv.URL+"/v1/query", "application/json",
			strings.NewReader(`{"graph":"g","algorithm":"cc"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestTimeout {
			t.Fatalf("status = %d, want 408", resp.StatusCode)
		}
	})
	t.Run("faulted-503-retry-after", func(t *testing.T) {
		reg := faults.New(1).Add(faults.Rule{
			Kind: faults.Panic, Rank: faults.AnyRank, Superstep: 1, Times: -1,
		})
		e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1, Faults: reg, DisablePlans: true})
		e.Registry().Put("g", testGraph(64, 160))
		srv := httptest.NewServer(NewHandler(e))
		defer srv.Close()
		resp, err := http.Post(srv.URL+"/v1/query", "application/json",
			strings.NewReader(`{"graph":"g","algorithm":"cc"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 reply lacks Retry-After")
		}
	})
	t.Run("oversized-body-413", func(t *testing.T) {
		e := newTestEngine(t, Config{Workers: 1})
		srv := httptest.NewServer(NewHandler(e))
		defer srv.Close()
		huge := `{"graph":"` + strings.Repeat("a", 1<<20) + `"}`
		resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader([]byte(huge)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status = %d, want 413", resp.StatusCode)
		}
	})
}

// Chaos outcome counts export through trace.Snapshot, so CI can archive
// the injected-fault ledger of a chaos run. CHAOS_SNAPSHOT names an
// extra file to write (the CI artifact); unset, the round-trip is still
// exercised through a temp file.
func TestChaosSnapshotExport(t *testing.T) {
	reg := faults.New(1).Add(faults.Rule{Kind: faults.Panic, Rank: 0, Superstep: 1})
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 1, Faults: reg, DisablePlans: true})
	e.Registry().Put("g", testGraph(64, 160))
	if _, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC}); err != nil {
		t.Fatalf("query: %v", err)
	}
	outcomes := e.Collector().Snapshot()
	snap := &trace.Snapshot{Name: "chaos", Outcomes: &outcomes}

	path := filepath.Join(t.TempDir(), "chaos.json")
	if err := trace.WriteSnapshotFile(path, snap); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := trace.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.Outcomes == nil || back.Outcomes.Totals.Retried != 1 {
		t.Fatalf("round-tripped outcomes = %+v, want retried=1", back.Outcomes)
	}
	if extra := os.Getenv("CHAOS_SNAPSHOT"); extra != "" {
		if err := trace.WriteSnapshotFile(extra, snap); err != nil {
			t.Fatalf("CHAOS_SNAPSHOT %q: %v", extra, err)
		}
	}
}
