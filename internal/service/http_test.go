package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

func uploadBody(t *testing.T, g *graph.Graph) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func postJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPUploadQueryStats(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, MaxProcessors: 2})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Liveness first.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v, %v", resp, err)
	}
	resp.Body.Close()

	// Upload.
	g := testGraph(50, 120)
	resp, err = http.Post(srv.URL+"/v1/graphs?name=web", "text/plain", uploadBody(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload status %d: %s", resp.StatusCode, b)
	}
	var info GraphInfo
	decode(t, resp, &info)
	if info.Name != "web" || info.Version != 1 || info.N != 50 || info.M != g.M() {
		t.Fatalf("upload info = %+v", info)
	}

	// Query with labels.
	resp = postJSON(t, srv.URL+"/v1/query", QueryRequest{
		Graph: "web", Algorithm: AlgCC, IncludeLabels: true,
	})
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("query status %d: %s", resp.StatusCode, b)
	}
	var qr QueryResponse
	decode(t, resp, &qr)
	if qr.Algorithm != AlgCC || qr.Components == nil || *qr.Components != 1 {
		t.Fatalf("cc response = %+v", qr)
	}
	if len(qr.Labels) != 50 {
		t.Errorf("labels = %d entries", len(qr.Labels))
	}
	if qr.Kernel.P < 1 {
		t.Errorf("kernel stats = %+v", qr.Kernel)
	}

	// Min cut with side.
	resp = postJSON(t, srv.URL+"/v1/query", QueryRequest{
		Graph: "web", Algorithm: AlgMinCut, IncludeSide: true,
	})
	decode(t, resp, &qr)
	if qr.Value == nil {
		t.Fatalf("mincut response = %+v", qr)
	}
	if len(qr.Side) == 0 || len(qr.Side) > 25 {
		t.Errorf("side = %v (want nonempty smaller shore)", qr.Side)
	}

	// Stats reflect the work.
	var st EngineStats
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	decode(t, resp, &st)
	if st.Graphs != 1 || st.Queries.Totals.KernelExecutions != 2 {
		t.Errorf("stats = graphs %d, totals %+v", st.Graphs, st.Queries.Totals)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	cases := []struct {
		desc string
		do   func() *http.Response
		want int
	}{
		{"malformed upload", func() *http.Response {
			r, _ := http.Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader("2 1\n0 torn"))
			return r
		}, http.StatusBadRequest},
		{"negative endpoint upload", func() *http.Response {
			r, _ := http.Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader("2 1\n-1 1 1\n"))
			return r
		}, http.StatusBadRequest},
		{"bad format", func() *http.Response {
			r, _ := http.Post(srv.URL+"/v1/graphs?format=xml", "text/plain", strings.NewReader("x"))
			return r
		}, http.StatusBadRequest},
		{"unknown graph", func() *http.Response {
			return postJSON(t, srv.URL+"/v1/query", QueryRequest{Graph: "ghost", Algorithm: AlgCC})
		}, http.StatusNotFound},
		{"unknown algorithm", func() *http.Response {
			return postJSON(t, srv.URL+"/v1/query", QueryRequest{Graph: "ghost", Algorithm: "bfs"})
		}, http.StatusBadRequest},
		{"bad query json", func() *http.Response {
			r, _ := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader("{nope"))
			return r
		}, http.StatusBadRequest},
		{"unknown query field", func() *http.Response {
			r, _ := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(`{"grph":"g"}`))
			return r
		}, http.StatusBadRequest},
		{"GET on query", func() *http.Response {
			r, _ := http.Get(srv.URL + "/v1/query")
			return r
		}, http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		resp := c.do()
		if resp == nil {
			t.Fatalf("%s: no response", c.desc)
		}
		if resp.StatusCode != c.want {
			b, _ := io.ReadAll(resp.Body)
			t.Errorf("%s: status %d, want %d (%s)", c.desc, resp.StatusCode, c.want, b)
		}
		resp.Body.Close()
	}
}

// TestHTTPEndToEndCoalescingAndShedding is the acceptance scenario over
// the wire: upload a graph, issue 64 concurrent identical CC queries and
// observe exactly one kernel execution via /v1/stats, then overflow the
// queue and observe 429.
func TestHTTPEndToEndCoalescingAndShedding(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	execs := 0
	e := newTestEngine(t, Config{
		Workers:       1,
		QueueBound:    1,
		MaxProcessors: 2,
		BeforeExec: func(string) {
			mu.Lock()
			execs++
			mu.Unlock()
			<-gate
		},
	})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/graphs?name=herd", "text/plain", uploadBody(t, testGraph(64, 160)))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	const N = 64
	req := QueryRequest{Graph: "herd", Algorithm: AlgCC, Seed: 9}
	statuses := make([]int, N)
	outcomes := make([]string, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJSON(t, srv.URL+"/v1/query", req)
			statuses[i] = resp.StatusCode
			var qr QueryResponse
			decode(t, resp, &qr)
			outcomes[i] = qr.Outcome
		}(i)
	}

	// Wait (via the public stats endpoint) until the one leader is
	// executing and all 63 followers have coalesced onto it.
	waitFor(t, func() bool {
		var st EngineStats
		r, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			return false
		}
		decode(t, r, &st)
		return st.CoalescedWaiters == N-1
	})

	// While the worker is held by the herd leader, a *distinct* query
	// fills the single queue slot (it blocks until the gate opens, so it
	// runs in the background)...
	fillerDone := make(chan *http.Response, 1)
	go func() {
		fillerDone <- postJSON(t, srv.URL+"/v1/query", QueryRequest{Graph: "herd", Algorithm: AlgCC, Seed: 1000})
	}()
	waitFor(t, func() bool {
		var st EngineStats
		r, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			return false
		}
		decode(t, r, &st)
		return st.QueueDepth == 1
	})
	// ...and the next distinct query exceeds the bound: shed with 429,
	// synchronously, without growing the pool.
	shed := postJSON(t, srv.URL+"/v1/query", QueryRequest{Graph: "herd", Algorithm: AlgCC, Seed: 2000})
	if shed.StatusCode != http.StatusTooManyRequests {
		b, _ := io.ReadAll(shed.Body)
		t.Fatalf("overload status = %d (%s), want 429", shed.StatusCode, b)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	shed.Body.Close()

	close(gate)
	wg.Wait()
	if filler := <-fillerDone; filler.StatusCode != http.StatusOK {
		t.Fatalf("filler query status %d", filler.StatusCode)
	} else {
		filler.Body.Close()
	}

	for i, s := range statuses {
		if s != http.StatusOK {
			t.Fatalf("herd query %d: status %d", i, s)
		}
	}
	counts := map[string]int{}
	for _, o := range outcomes {
		counts[o]++
	}
	if counts["executed"] != 1 || counts["coalesced"] != N-1 {
		t.Fatalf("herd outcomes = %v", counts)
	}

	// The /v1/stats counters prove single execution + coalescing + shed.
	var st EngineStats
	r, _ := http.Get(srv.URL + "/v1/stats")
	decode(t, r, &st)
	cc := st.Queries.Algorithms["cc"]
	if cc.Coalesced != N-1 {
		t.Errorf("stats coalesced = %d, want %d", cc.Coalesced, N-1)
	}
	if cc.Rejected == 0 {
		t.Errorf("stats rejected = %d, want ≥ 1", cc.Rejected)
	}
	mu.Lock()
	herdExecs := execs
	mu.Unlock()
	// The gate admitted the herd leader and possibly the filler query —
	// never more.
	if herdExecs < 1 || herdExecs > 2 {
		t.Fatalf("kernel executions = %d, want 1 (+1 filler at most)", herdExecs)
	}

	// And the herd's answer is now cached.
	resp = postJSON(t, srv.URL+"/v1/query", req)
	var qr QueryResponse
	decode(t, resp, &qr)
	if qr.Outcome != "cache_hit" {
		t.Errorf("post-herd outcome = %q, want cache_hit", qr.Outcome)
	}
	if err := fmtCheck(outcomes); err != nil {
		t.Error(err)
	}
}

// fmtCheck asserts every herd response carried a well-formed outcome.
func fmtCheck(outcomes []string) error {
	for i, o := range outcomes {
		if o != "executed" && o != "coalesced" {
			return fmt.Errorf("query %d outcome %q", i, o)
		}
	}
	return nil
}

func TestHTTPStatsServesCollectorJSON(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/graphs?name=g", "text/plain", uploadBody(t, testGraph(20, 40)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	postJSON(t, srv.URL+"/v1/query", QueryRequest{Graph: "g", Algorithm: AlgApproxCut}).Body.Close()
	postJSON(t, srv.URL+"/v1/query", QueryRequest{Graph: "g", Algorithm: AlgApproxCut}).Body.Close()

	r, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var st EngineStats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, raw)
	}
	ac := st.Queries.Algorithms["approxcut"]
	if ac.Queries != 2 || ac.KernelExecutions != 1 || ac.CacheHits != 1 {
		t.Errorf("approxcut stats = %+v", ac)
	}
	if st.Workers != 1 || st.QueueCapacity == 0 {
		t.Errorf("gauges = %+v", st)
	}
	if !strings.Contains(string(raw), "avg_latency_ms") {
		t.Error("stats JSON missing latency aggregates")
	}
	if time.Duration(st.UptimeMs*float64(time.Millisecond)) <= 0 {
		t.Error("uptime not positive")
	}
}
