package service

import (
	"context"
	"errors"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/planner"
)

// testModels are fixed model constants that make decisions deterministic
// in tests: BSP kernels pay 50µs of machine overhead, shared kernels
// 1µs, so small graphs route to the shared path and pinned-p requests
// stay on the cheapest BSP kernel.
func testModels() map[string]*perfmodel.Model {
	bsp := &perfmodel.Model{A: 1e-9, B: 2e-9, C: 1e-6, D: 5e-5}
	shared := &perfmodel.Model{A: 1e-9, D: 1e-6}
	return map[string]*perfmodel.Model{
		planner.KernelCCSampling:   bsp,
		planner.KernelCCLowRound:   bsp,
		planner.KernelCCLabelProp:  bsp,
		planner.KernelCCShared:     shared,
		planner.KernelMCKargerSt:   {A: 1e-9, B: 2e-9, C: 1e-6, D: 5e-3},
		planner.KernelMCStoerWagnr: shared,
	}
}

// Regression for the machine-sizing path: with the planner on, decide()
// consults the calibrated cost model instead of chooseP's hard-coded
// edges-per-processor thresholds — the heuristic survives only as the
// planner-off fallback and the win-rate baseline.
func TestDecideConsultsPlannerNotThresholds(t *testing.T) {
	g := testGraph(1000, 20000)
	heuristic := chooseP(len(g.Edges), 0, 16)
	if heuristic < 4 {
		t.Fatalf("test premise: heuristic p = %d, want >= 4", heuristic)
	}

	off := newTestEngine(t, Config{MaxProcessors: 16})
	sgOff, err := off.Registry().Put("g", g)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := normalize(&QueryRequest{Graph: "g", Algorithm: AlgCC})
	rsOff, err := off.decide(&QueryRequest{Graph: "g", Algorithm: AlgCC}, sgOff, pr)
	if err != nil {
		t.Fatal(err)
	}
	if rsOff.kern != "" || rsOff.p != heuristic || rsOff.dec != nil {
		t.Fatalf("planner off: decide = %+v, want default kernel at heuristic p=%d", rsOff, heuristic)
	}

	on := newTestEngine(t, Config{MaxProcessors: 16, Planner: "static", PlannerModels: testModels()})
	sgOn, err := on.Registry().Put("g", g)
	if err != nil {
		t.Fatal(err)
	}
	rsOn, err := on.decide(&QueryRequest{Graph: "g", Algorithm: AlgCC}, sgOn, pr)
	if err != nil {
		t.Fatal(err)
	}
	// Under the injected constants a 21k-edge graph is far cheaper on the
	// machine-less shared kernel than on a 4-processor BSP machine: the
	// planner must override both the kernel and the thresholds' p.
	if rsOn.kern != planner.KernelCCShared || rsOn.p != 1 {
		t.Fatalf("planner on: decide = kern=%q p=%d, want shared at p=1", rsOn.kern, rsOn.p)
	}
	if rsOn.dec == nil || !rsOn.dec.Diverged || rsOn.dec.Fallback {
		t.Fatalf("planner on: decision = %+v, want diverged non-fallback", rsOn.dec)
	}
	// An explicit processor pin is still honored — the planner only picks
	// among BSP kernels at that p.
	rsPin, err := on.decide(&QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 8}, sgOn, pr)
	if err != nil {
		t.Fatal(err)
	}
	if rsPin.p != 8 || rsPin.kern == planner.KernelCCShared {
		t.Fatalf("explicit p: decide = kern=%q p=%d, want BSP kernel at p=8", rsPin.kern, rsPin.p)
	}
}

// The planner must never change answers: identical queries against a
// planner-off and a planner-on engine return bit-identical CC labellings
// and identical cut values.
func TestPlannerResultEquivalence(t *testing.T) {
	ccGraph := testGraph(1000, 20000)
	mcGraph := testGraph(60, 150)

	off := newTestEngine(t, Config{MaxProcessors: 8})
	on := newTestEngine(t, Config{MaxProcessors: 8, Planner: "static", PlannerModels: testModels()})
	for _, e := range []*Engine{off, on} {
		if _, err := e.Registry().Put("cc", ccGraph); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Registry().Put("mc", mcGraph); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	ccOff, err := off.Query(ctx, QueryRequest{Graph: "cc", Algorithm: AlgCC, IncludeLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	ccOn, err := on.Query(ctx, QueryRequest{Graph: "cc", Algorithm: AlgCC, IncludeLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if ccOn.Result.Kernel.Kernel != planner.KernelCCShared {
		t.Fatalf("planner-on cc kernel = %q, want shared (injected models)", ccOn.Result.Kernel.Kernel)
	}
	if ccOff.Result.Components != ccOn.Result.Components {
		t.Fatalf("component count diverged: off %d, on %d", ccOff.Result.Components, ccOn.Result.Components)
	}
	if len(ccOff.Result.Labels) != len(ccOn.Result.Labels) {
		t.Fatalf("label lengths diverged: off %d, on %d", len(ccOff.Result.Labels), len(ccOn.Result.Labels))
	}
	for v := range ccOff.Result.Labels {
		if ccOff.Result.Labels[v] != ccOn.Result.Labels[v] {
			t.Fatalf("labels diverged at v=%d: off %d, on %d", v, ccOff.Result.Labels[v], ccOn.Result.Labels[v])
		}
	}

	mcOff, err := off.Query(ctx, QueryRequest{Graph: "mc", Algorithm: AlgMinCut})
	if err != nil {
		t.Fatal(err)
	}
	mcOn, err := on.Query(ctx, QueryRequest{Graph: "mc", Algorithm: AlgMinCut})
	if err != nil {
		t.Fatal(err)
	}
	if mcOn.Result.Kernel.Kernel != planner.KernelMCStoerWagnr {
		t.Fatalf("planner-on mincut kernel = %q, want stoerwagner (injected models)", mcOn.Result.Kernel.Kernel)
	}
	if mcOff.Result.Value != mcOn.Result.Value {
		t.Fatalf("cut value diverged: off %d, on %d", mcOff.Result.Value, mcOn.Result.Value)
	}
}

// A planner without a calibrated model for the default kernel runs the
// default path and surfaces the event: Decision.Fallback, the planner's
// fallback counter, and the collector's planner_fallbacks counter all
// fire — never a silent default.
func TestPlannerFallbackSurfaced(t *testing.T) {
	// lowround is calibrated but the default (sampling) is not — as after
	// a partial calibration failure.
	models := map[string]*perfmodel.Model{
		planner.KernelCCLowRound: {A: 1e-9, B: 2e-9, C: 1e-6, D: 5e-5},
	}
	e := newTestEngine(t, Config{MaxProcessors: 4, Planner: "static", PlannerModels: models})
	if _, err := e.Registry().Put("g", testGraph(200, 600)); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Kernel.Kernel != planner.KernelCCSampling {
		t.Fatalf("fallback ran kernel %q, want default %q", rep.Result.Kernel.Kernel, planner.KernelCCSampling)
	}
	st := e.Stats()
	if st.Planner == nil {
		t.Fatal("planner stats block missing")
	}
	if st.Planner.Fallbacks == 0 {
		t.Fatalf("planner fallbacks = 0, want > 0: %+v", st.Planner)
	}
	if st.Queries.PlannerFallbacks == 0 {
		t.Fatalf("collector planner_fallbacks = 0, want > 0")
	}
}

// Request-pinned kernels bypass the planner but are validated.
func TestKernelPinning(t *testing.T) {
	e := newTestEngine(t, Config{MaxProcessors: 4})
	if _, err := e.Registry().Put("g", testGraph(300, 900)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	base, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, IncludeLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, kern := range []string{
		planner.KernelCCLowRound,
		planner.KernelCCLabelProp,
		planner.KernelCCShared,
	} {
		rep, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Kernel: kern, IncludeLabels: true})
		if err != nil {
			t.Fatalf("%s: %v", kern, err)
		}
		if rep.Result.Kernel.Kernel != kern {
			t.Fatalf("pinned %q but ran %q", kern, rep.Result.Kernel.Kernel)
		}
		if rep.Result.Components != base.Result.Components {
			t.Fatalf("%s: components %d != default %d", kern, rep.Result.Components, base.Result.Components)
		}
		for v := range base.Result.Labels {
			if rep.Result.Labels[v] != base.Result.Labels[v] {
				t.Fatalf("%s: label diverged at v=%d", kern, v)
			}
		}
	}
	if _, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Kernel: "bogus"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown kernel error = %v, want ErrBadRequest", err)
	}
	if _, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Kernel: planner.KernelCCShared, Processors: 4}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("shared kernel with p=4 error = %v, want ErrBadRequest", err)
	}
	if _, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgMinCut, Kernel: planner.KernelCCShared}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("cc kernel on mincut error = %v, want ErrBadRequest", err)
	}
	// The shared pin ran with no machine: transport says so.
	rep, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Kernel: planner.KernelCCShared, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Kernel.Transport != "shared" || rep.Result.Kernel.P != 1 {
		t.Fatalf("shared pin kernel stats = %+v", rep.Result.Kernel)
	}
}

// A planner-scheduled execution feeds win-rate and prediction-error
// accounting visible in the stats snapshot.
func TestPlannerStatsAccounting(t *testing.T) {
	e := newTestEngine(t, Config{MaxProcessors: 8, Planner: "static", PlannerModels: testModels()})
	if _, err := e.Registry().Put("g", testGraph(1000, 20000)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC}); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Planner == nil || st.Planner.Mode != "static" {
		t.Fatalf("planner block = %+v", st.Planner)
	}
	if st.Planner.Decisions == 0 || st.Planner.Executed == 0 || st.Planner.Diverged == 0 {
		t.Fatalf("planner counters not fed: %+v", st.Planner)
	}
	if st.Planner.MeanAbsErr <= 0 {
		t.Fatalf("prediction error not recorded: %+v", st.Planner)
	}
	if len(st.Queries.Kernels) == 0 {
		t.Fatal("collector kernel aggregates missing")
	}
	agg, ok := st.Queries.Kernels[planner.KernelCCShared]
	if !ok || agg.Executions == 0 {
		t.Fatalf("kernel aggregate missing for shared: %+v", st.Queries.Kernels)
	}
	if agg.TotalPredictedMs <= 0 {
		t.Fatalf("predicted time not aggregated: %+v", agg)
	}
}
