package service

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/planner"
)

// ---------------------------------------------------------------------------
// BENCH_planner.json — the portfolio/planner evidence CI archives and
// cmd/benchgate gates:
//
//   - high_diameter: on a 100k-edge path at p=16, the planner-selected
//     CC kernel vs always-label-propagation (the O(d)-superstep baseline
//     the portfolio exists to displace) — the speedup is a same-machine
//     ratio, gated;
//   - small_graph: on a small warm graph, the machine-less shared kernel
//     vs the default BSP kernel at p=1 — the fixed machine spin-up tax
//     the p=1 fast path avoids, gated as a ratio;
//   - lowround: supersteps and communication volume of one pinned
//     lowround execution — deterministic counts, gated tightly;
//   - prediction: the planner's own accounting (win rate, mean
//     |predicted−actual|/actual) after the runs above.
// ---------------------------------------------------------------------------

type highDiameterRow struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	P     int    `json:"p"`
	// LabelPropNsOp is the pinned always-labelprop baseline;
	// PlannerNsOp the planner-scheduled run of the same query.
	LabelPropNsOp int64   `json:"labelprop_ns_op"`
	PlannerNsOp   int64   `json:"planner_ns_op"`
	Speedup       float64 `json:"speedup"`
	ChosenKernel  string  `json:"chosen_kernel"`
	// PredictedMs vs ActualMs is the cost model's accuracy on one
	// planner-scheduled execution of this query.
	PredictedMs float64 `json:"predicted_ms"`
	ActualMs    float64 `json:"actual_ms"`
}

type smallGraphRow struct {
	N int `json:"n"`
	M int `json:"m"`
	// BSPNsOp pins the default kernel on a p=1 BSP machine; SharedNsOp
	// pins the machine-less shared kernel. Both sides are pinned so the
	// ratio measures execution shape, not a planner choice.
	BSPNsOp    int64   `json:"bsp_ns_op"`
	SharedNsOp int64   `json:"shared_ns_op"`
	Speedup    float64 `json:"speedup"`
}

type lowRoundRow struct {
	P          int    `json:"p"`
	Supersteps int    `json:"supersteps"`
	CommVolume uint64 `json:"comm_volume"`
	Components int    `json:"components"`
}

type predictionRow struct {
	Decisions  uint64  `json:"decisions"`
	Executed   uint64  `json:"executed"`
	Diverged   uint64  `json:"diverged"`
	Wins       uint64  `json:"wins"`
	WinRate    float64 `json:"win_rate"`
	MeanAbsErr float64 `json:"mean_abs_err"`
	Fallbacks  uint64  `json:"fallbacks"`
}

type plannerSnapshot struct {
	HighDiameter highDiameterRow `json:"high_diameter"`
	SmallGraph   smallGraphRow   `json:"small_graph"`
	LowRound     lowRoundRow     `json:"lowround"`
	Prediction   predictionRow   `json:"prediction"`
}

// plannerPathGraph is the high-diameter workload: a 100001-vertex path,
// the worst case for diameter-bound label propagation (the statistics
// probe caps its estimate at graph.ProbeLevelCap, still firmly in the
// high-diameter regime).
func plannerPathGraph() *graph.Graph {
	const n = 100001
	g := graph.New(n)
	for v := 0; v < n-1; v++ {
		g.AddEdge(int32(v), int32(v+1), 1)
	}
	return g
}

// plannerSmallGraph is the small warm workload: connected, a few
// thousand edges — the regime where even a p=1 BSP machine's spin-up
// and ledger dominate the labelling work.
func plannerSmallGraph() *graph.Graph {
	g := gen.ErdosRenyiM(1024, 8192, 7, gen.Config{MaxWeight: 4})
	for v := 1; v < g.N; v++ {
		g.AddEdge(int32(v-1), int32(v), 1)
	}
	g.AddEdge(int32(g.N-1), 0, 1)
	return g
}

// plannerMincutGraph is the small-n exact-cut workload: well under
// mincut.StoerWagnerMaxN, where the planner routes away from
// Karger–Stein's trial bill to the deterministic O(n³) kernel.
func plannerMincutGraph() *graph.Graph {
	g := gen.ErdosRenyiM(150, 600, 7, gen.Config{MaxWeight: 4})
	for v := 1; v < g.N; v++ {
		g.AddEdge(int32(v-1), int32(v), 1)
	}
	g.AddEdge(int32(g.N-1), 0, 1)
	return g
}

// benchQuery measures one repeated query against a live engine: a first
// run off the clock (plan/probe/machine-pool warmup — the steady state
// every later query sees), then ns/op over the benchmark loop.
func benchQuery(e *Engine, req QueryRequest) (testing.BenchmarkResult, error) {
	req.NoCache = true
	if _, err := e.Query(context.Background(), req); err != nil {
		return testing.BenchmarkResult{}, err
	}
	return bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runQuery(b, e, req)
		}
	}), nil
}

func writePlannerSnapshot(path string) error {
	var snap plannerSnapshot

	// Plans stay disabled throughout: a warm plan shortcuts every CC
	// kernel identically (that effect is BENCH_service.json's claim), and
	// this file compares the kernels themselves.
	base := NewEngine(Config{Workers: 1, MaxProcessors: 16, CacheCapacity: -1, DisablePlans: true})
	defer base.Close()
	// The planner engine calibrates its cost models at startup — the same
	// live CalibrateBuiltins path camcd runs, so the chosen kernel below
	// is a real planning decision, not an injected constant.
	pe := NewEngine(Config{
		Workers: 1, MaxProcessors: 16, CacheCapacity: -1, DisablePlans: true,
		Planner: "static",
	})
	defer pe.Close()

	pathG, smallG, mcG := plannerPathGraph(), plannerSmallGraph(), plannerMincutGraph()
	for _, e := range []*Engine{base, pe} {
		if _, err := e.Registry().Put("path", pathG); err != nil {
			return err
		}
		if _, err := e.Registry().Put("small", smallG); err != nil {
			return err
		}
		if _, err := e.Registry().Put("mc", mcG); err != nil {
			return err
		}
	}

	// --- high_diameter: pinned labelprop@16 vs the planner's pick@16 ---
	lpReq := QueryRequest{Graph: "path", Algorithm: AlgCC, Kernel: planner.KernelCCLabelProp, Processors: 16, NoCache: true}
	plReq := QueryRequest{Graph: "path", Algorithm: AlgCC, Processors: 16, NoCache: true}
	probe, err := pe.Query(context.Background(), plReq)
	if err != nil {
		return err
	}
	lp, err := benchQuery(base, lpReq)
	if err != nil {
		return err
	}
	pl, err := benchQuery(pe, plReq)
	if err != nil {
		return err
	}
	snap.HighDiameter = highDiameterRow{
		Graph: "path", N: pathG.N, M: len(pathG.Edges), P: 16,
		LabelPropNsOp: lp.NsPerOp(),
		PlannerNsOp:   pl.NsPerOp(),
		ChosenKernel:  probe.Result.Kernel.Kernel,
		PredictedMs:   probe.Result.Kernel.PredictedMs,
		ActualMs:      probe.Result.Kernel.TimeMs,
	}
	if pl.NsPerOp() > 0 {
		snap.HighDiameter.Speedup = float64(lp.NsPerOp()) / float64(pl.NsPerOp())
	}

	// --- small_graph: pinned default-BSP@p=1 vs pinned shared ---
	bspRes, err := benchQuery(base, QueryRequest{Graph: "small", Algorithm: AlgCC, Kernel: planner.KernelCCSampling, Processors: 1})
	if err != nil {
		return err
	}
	shRes, err := benchQuery(base, QueryRequest{Graph: "small", Algorithm: AlgCC, Kernel: planner.KernelCCShared})
	if err != nil {
		return err
	}
	snap.SmallGraph = smallGraphRow{
		N: smallG.N, M: len(smallG.Edges),
		BSPNsOp:    bspRes.NsPerOp(),
		SharedNsOp: shRes.NsPerOp(),
	}
	if shRes.NsPerOp() > 0 {
		snap.SmallGraph.Speedup = float64(bspRes.NsPerOp()) / float64(shRes.NsPerOp())
	}

	// --- lowround: deterministic counts of one pinned execution ---
	lr, err := base.Query(context.Background(), QueryRequest{
		Graph: "small", Algorithm: AlgCC, Kernel: planner.KernelCCLowRound, Processors: 4, NoCache: true,
	})
	if err != nil {
		return err
	}
	snap.LowRound = lowRoundRow{
		P:          lr.Result.Kernel.P,
		Supersteps: lr.Result.Kernel.Supersteps,
		CommVolume: lr.Result.Kernel.CommVolume,
		Components: lr.Result.Components,
	}

	// --- prediction: feed the planner a batch of small unpinned mincut
	// queries — the divergence with the widest predicted margin (exact
	// cut on n ≪ StoerWagnerMaxN routes to Stoer–Wagner, displacing
	// Karger–Stein's trial bill), so the win-rate baseline is robust —
	// and snapshot the accounting over everything above.
	for i := 0; i < 8; i++ {
		if _, err := pe.Query(context.Background(), QueryRequest{Graph: "mc", Algorithm: AlgMinCut, NoCache: true}); err != nil {
			return err
		}
	}
	ps := pe.Planner().Snapshot()
	snap.Prediction = predictionRow{
		Decisions:  ps.Decisions,
		Executed:   ps.Executed,
		Diverged:   ps.Diverged,
		Wins:       ps.Wins,
		WinRate:    ps.WinRate,
		MeanAbsErr: ps.MeanAbsErr,
		Fallbacks:  ps.Fallbacks,
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
