package service

import (
	"testing"
)

func TestChooseP(t *testing.T) {
	cases := []struct {
		name     string
		m        int
		explicit int
		maxP     int
		want     int
	}{
		{"empty graph", 0, 0, 16, 1},
		{"small graph stays sequential", 5000, 0, 16, 1},
		{"exactly at the threshold", 8192, 0, 8, 1},
		{"just above threshold doubles once", 10000, 0, 16, 2},
		{"doubling regime", 20000, 0, 16, 4},
		{"keeps doubling past 10k per proc", 40000, 0, 8, 8},
		{"large graph clamped by maxP", 1 << 20, 0, 8, 8},
		{"large graph saturates bigger maxP", 1 << 20, 0, 16, 16},
		{"explicit honored", 100, 3, 16, 3},
		{"explicit clamped to maxP", 100, 64, 16, 16},
		{"explicit with tiny maxP", 100, 8, 2, 2},
		{"maxP floor of one", 1 << 20, 0, 0, 1},
		{"explicit with zero maxP", 100, 4, 0, 1},
	}
	for _, c := range cases {
		if got := chooseP(c.m, c.explicit, c.maxP); got != c.want {
			t.Errorf("%s: chooseP(%d, %d, %d) = %d, want %d",
				c.name, c.m, c.explicit, c.maxP, got, c.want)
		}
	}
}

func TestSideVertices(t *testing.T) {
	cases := []struct {
		name string
		side []bool
		want []int32
	}{
		{"empty", nil, []int32{}},
		{"all false", []bool{false, false, false}, []int32{}},
		{"minority true kept", []bool{true, false, false, true}, []int32{0, 3}},
		{"majority true flipped", []bool{true, true, true, false}, []int32{3}},
		{"tie at n/2 keeps the true shore", []bool{true, false, true, false}, []int32{0, 2}},
		{"all true flips to empty", []bool{true, true}, []int32{}},
	}
	for _, c := range cases {
		got := sideVertices(c.side)
		if len(got) != len(c.want) {
			t.Errorf("%s: sideVertices(%v) = %v, want %v", c.name, c.side, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: sideVertices(%v) = %v, want %v", c.name, c.side, got, c.want)
				break
			}
		}
	}
}
