package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tenant"
	"repro/internal/trace"
)

// Prometheus exposition of the serving metrics, rendered straight off
// the engine's trace.Collector (no third-party client library: the
// text format is a dozen lines of printf, and the collector already
// holds every aggregate the scrape needs).
//
// Naming scheme (see DESIGN.md §4g):
//
//	camc_queries_total{algorithm,outcome}       query resolutions
//	camc_retries_total{algorithm}               absorbed transient faults
//	camc_query_latency_seconds{algorithm}       histogram + _sum/_count
//	camc_supersteps_total{algorithm}            BSP cost counters
//	camc_comm_volume_words_total{algorithm}
//	camc_avoided_collectives_total{algorithm}   the warm path's ledger
//	camc_avoided_comm_volume_words_total{algorithm}
//	camc_transport_*_total{transport}           per-fabric kernel costs
//	camc_cache_*                                result-cache counters
//	camc_queue_depth / camc_workers / ...       pool gauges
//	camc_tenant_*{tenant}                       quota state and rejections
//
// Label sets are emitted in sorted order so the output is deterministic
// for a given state — the property the golden-file test pins.

// outcomeCounters maps each outcome label to its AlgoStats counter.
var outcomeCounters = []struct {
	label string
	get   func(*trace.AlgoStats) uint64
}{
	{trace.OutcomeExecuted, func(a *trace.AlgoStats) uint64 { return a.KernelExecutions }},
	{trace.OutcomeCacheHit, func(a *trace.AlgoStats) uint64 { return a.CacheHits }},
	{trace.OutcomeCoalesced, func(a *trace.AlgoStats) uint64 { return a.Coalesced }},
	{trace.OutcomeRejected, func(a *trace.AlgoStats) uint64 { return a.Rejected }},
	{trace.OutcomeExpired, func(a *trace.AlgoStats) uint64 { return a.Expired }},
	{trace.OutcomeError, func(a *trace.AlgoStats) uint64 { return a.Errors }},
	{trace.OutcomeCancelled, func(a *trace.AlgoStats) uint64 { return a.Cancelled }},
	{trace.OutcomeDegraded, func(a *trace.AlgoStats) uint64 { return a.Degraded }},
	{trace.OutcomeFaulted, func(a *trace.AlgoStats) uint64 { return a.Faulted }},
	{trace.OutcomeTransport, func(a *trace.AlgoStats) uint64 { return a.TransportLost }},
}

// fmtFloat renders a float the Prometheus way: integral values without
// an exponent, everything else in Go's shortest form.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type metricsWriter struct {
	w io.Writer
}

func (m metricsWriter) header(name, help, typ string) {
	fmt.Fprintf(m.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m metricsWriter) val(name, labels string, v float64) {
	if labels != "" {
		fmt.Fprintf(m.w, "%s{%s} %s\n", name, labels, fmtFloat(v))
	} else {
		fmt.Fprintf(m.w, "%s %s\n", name, fmtFloat(v))
	}
}

// sortedAlgos returns the snapshot's algorithm names in stable order.
func sortedAlgos(snap *trace.CollectorSnapshot) []string {
	names := make([]string, 0, len(snap.Algorithms))
	for name := range snap.Algorithms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteMetrics renders the engine state as Prometheus exposition text.
// tenants may be nil (single-tenant deployments).
func WriteMetrics(w io.Writer, st EngineStats) {
	m := metricsWriter{w}
	snap := &st.Queries
	algos := sortedAlgos(snap)

	m.header("camc_queries_total", "Query resolutions by algorithm and outcome.", "counter")
	for _, alg := range algos {
		a := snap.Algorithms[alg]
		for _, oc := range outcomeCounters {
			if v := oc.get(&a); v > 0 {
				m.val("camc_queries_total", fmt.Sprintf("algorithm=%q,outcome=%q", alg, oc.label), float64(v))
			}
		}
	}

	m.header("camc_retries_total", "Transient kernel faults absorbed by the retry policy.", "counter")
	for _, alg := range algos {
		a := snap.Algorithms[alg]
		if a.Retried > 0 {
			m.val("camc_retries_total", fmt.Sprintf("algorithm=%q", alg), float64(a.Retried))
		}
	}

	m.header("camc_query_latency_seconds", "Query latency (rejections excluded).", "histogram")
	for _, alg := range algos {
		a := snap.Algorithms[alg]
		if a.LatencyHistogram == nil {
			continue
		}
		cum := uint64(0)
		for i, ub := range trace.LatencyBuckets {
			cum += a.LatencyHistogram[i]
			m.val("camc_query_latency_seconds_bucket",
				fmt.Sprintf("algorithm=%q,le=%q", alg, fmtFloat(ub)), float64(cum))
		}
		cum += a.LatencyHistogram[len(trace.LatencyBuckets)]
		m.val("camc_query_latency_seconds_bucket", fmt.Sprintf("algorithm=%q,le=\"+Inf\"", alg), float64(cum))
		m.val("camc_query_latency_seconds_sum", fmt.Sprintf("algorithm=%q", alg), a.TotalLatencyMs/1e3)
		m.val("camc_query_latency_seconds_count", fmt.Sprintf("algorithm=%q", alg), float64(cum))
	}

	for _, c := range []struct {
		name, help string
		get        func(*trace.AlgoStats) float64
	}{
		{"camc_supersteps_total", "BSP supersteps executed.", func(a *trace.AlgoStats) float64 { return float64(a.Supersteps) }},
		{"camc_comm_volume_words_total", "BSP words communicated.", func(a *trace.AlgoStats) float64 { return float64(a.CommVolume) }},
		{"camc_avoided_collectives_total", "Collectives skipped via snapshot-resident plans.", func(a *trace.AlgoStats) float64 { return float64(a.AvoidedCollectives) }},
		{"camc_avoided_comm_volume_words_total", "Words not communicated thanks to plans.", func(a *trace.AlgoStats) float64 { return float64(a.AvoidedCommVolume) }},
	} {
		m.header(c.name, c.help, "counter")
		for _, alg := range algos {
			a := snap.Algorithms[alg]
			if v := c.get(&a); v > 0 {
				m.val(c.name, fmt.Sprintf("algorithm=%q", alg), v)
			}
		}
	}

	// Per-fabric kernel costs: wire bytes on "tcp" vs zero on "local" is
	// the communication-avoidance claim, scrapeable.
	transports := make([]string, 0, len(snap.Transports))
	for name := range snap.Transports {
		transports = append(transports, name)
	}
	sort.Strings(transports)
	for _, c := range []struct {
		name, help string
		get        func(trace.TransportStats) uint64
	}{
		{"camc_transport_kernel_executions_total", "Kernel executions per BSP fabric.", func(t trace.TransportStats) uint64 { return t.KernelExecutions }},
		{"camc_transport_supersteps_total", "Supersteps per BSP fabric.", func(t trace.TransportStats) uint64 { return t.Supersteps }},
		{"camc_transport_comm_volume_words_total", "Words communicated per BSP fabric.", func(t trace.TransportStats) uint64 { return t.CommVolume }},
		{"camc_transport_wire_bytes_total", "Framed socket bytes per BSP fabric (0 for local).", func(t trace.TransportStats) uint64 { return t.WireBytes }},
		{"camc_wire_saved_bytes_total", "Socket bytes the payload codecs saved per BSP fabric (raw-equivalent minus on-wire).", func(t trace.TransportStats) uint64 {
			if t.WireRawBytes < t.WireBytes {
				return 0
			}
			return t.WireRawBytes - t.WireBytes
		}},
	} {
		m.header(c.name, c.help, "counter")
		for _, tr := range transports {
			m.val(c.name, fmt.Sprintf("transport=%q", tr), float64(c.get(snap.Transports[tr])))
		}
	}

	m.header("camc_cache_entries", "Result cache entries.", "gauge")
	m.val("camc_cache_entries", "", float64(st.Cache.Size))
	m.header("camc_cache_hits_total", "Result cache hits.", "counter")
	m.val("camc_cache_hits_total", "", float64(st.Cache.Hits))
	m.header("camc_cache_misses_total", "Result cache misses.", "counter")
	m.val("camc_cache_misses_total", "", float64(st.Cache.Misses))
	m.header("camc_cache_evictions_total", "Result cache evictions.", "counter")
	m.val("camc_cache_evictions_total", "", float64(st.Cache.Evictions))

	m.header("camc_graphs", "Registered graphs.", "gauge")
	m.val("camc_graphs", "", float64(st.Graphs))
	m.header("camc_plans", "Snapshot-resident query plans.", "gauge")
	m.val("camc_plans", "", float64(st.Plans))
	m.header("camc_workers", "Kernel worker pool size.", "gauge")
	m.val("camc_workers", "", float64(st.Workers))
	m.header("camc_queue_depth", "Admission queue depth.", "gauge")
	m.val("camc_queue_depth", "", float64(st.QueueDepth))
	m.header("camc_queue_capacity", "Admission queue capacity.", "gauge")
	m.val("camc_queue_capacity", "", float64(st.QueueCapacity))
	m.header("camc_queue_depth_max", "High-water admission queue depth.", "gauge")
	m.val("camc_queue_depth_max", "", float64(snap.MaxQueueDepth))
	m.header("camc_inflight_calls", "Distinct kernel executions in flight.", "gauge")
	m.val("camc_inflight_calls", "", float64(st.InflightCalls))
	m.header("camc_coalesced_waiters", "Followers waiting on in-flight calls.", "gauge")
	m.val("camc_coalesced_waiters", "", float64(st.CoalescedWaiters))
	m.header("camc_uptime_seconds", "Process uptime.", "gauge")
	m.val("camc_uptime_seconds", "", st.UptimeMs/1e3)

	// Per-kernel execution aggregates appear once any named portfolio
	// kernel has run (planner on, or a request-pinned kernel); absent
	// otherwise, so pre-portfolio scrapes are byte-identical.
	if len(snap.Kernels) > 0 {
		kernels := make([]string, 0, len(snap.Kernels))
		for name := range snap.Kernels {
			kernels = append(kernels, name)
		}
		sort.Strings(kernels)
		for _, c := range []struct {
			name, help string
			get        func(trace.KernelAgg) float64
		}{
			{"camc_kernel_executions_total", "Kernel executions per portfolio kernel.", func(k trace.KernelAgg) float64 { return float64(k.Executions) }},
			{"camc_kernel_time_seconds_total", "Measured kernel time per portfolio kernel.", func(k trace.KernelAgg) float64 { return k.TotalKernelMs / 1e3 }},
			{"camc_kernel_predicted_seconds_total", "Planner-predicted time per portfolio kernel.", func(k trace.KernelAgg) float64 { return k.TotalPredictedMs / 1e3 }},
		} {
			m.header(c.name, c.help, "counter")
			for _, name := range kernels {
				m.val(c.name, fmt.Sprintf("kernel=%q", name), c.get(snap.Kernels[name]))
			}
		}
	}

	// Planner counters appear only when planning is enabled, keeping the
	// planner-off exposition unchanged.
	if st.Planner != nil {
		pl := st.Planner
		for _, c := range []struct {
			name, help, typ string
			v               float64
		}{
			{"camc_planner_decisions_total", "Planner decisions made.", "counter", float64(pl.Decisions)},
			{"camc_planner_fallbacks_total", "Decisions without a calibrated default model.", "counter", float64(pl.Fallbacks)},
			{"camc_planner_executed_total", "Planned queries observed after execution.", "counter", float64(pl.Executed)},
			{"camc_planner_diverged_total", "Executions where the planner overrode the default choice.", "counter", float64(pl.Diverged)},
			{"camc_planner_wins_total", "Overrides whose measured time beat the predicted default path.", "counter", float64(pl.Wins)},
			{"camc_planner_refits_total", "Adaptive model refits from live samples.", "counter", float64(pl.Refits)},
			{"camc_planner_win_rate", "Wins over diverged decisions.", "gauge", pl.WinRate},
			{"camc_planner_prediction_mean_abs_err", "Mean |predicted-actual|/actual over planned executions.", "gauge", pl.MeanAbsErr},
		} {
			m.header(c.name, c.help, c.typ)
			m.val(c.name, "", c.v)
		}
		if len(pl.Choices) > 0 {
			names := make([]string, 0, len(pl.Choices))
			for name := range pl.Choices {
				names = append(names, name)
			}
			sort.Strings(names)
			m.header("camc_planner_choices_total", "Planner decisions per chosen kernel.", "counter")
			for _, name := range names {
				m.val("camc_planner_choices_total", fmt.Sprintf("kernel=%q", name), float64(pl.Choices[name]))
			}
		}
	}

	if len(st.Tenants) > 0 {
		writeTenantMetrics(m, st.Tenants)
	}
}

func writeTenantMetrics(m metricsWriter, snaps []tenant.TenantSnapshot) {
	for _, c := range []struct {
		name, help, typ string
		get             func(tenant.TenantSnapshot) float64
	}{
		{"camc_tenant_graphs", "Graphs registered by tenant.", "gauge", func(s tenant.TenantSnapshot) float64 { return float64(s.Graphs) }},
		{"camc_tenant_bytes", "Graph bytes stored by tenant.", "gauge", func(s tenant.TenantSnapshot) float64 { return float64(s.Bytes) }},
		{"camc_tenant_concurrent_queries", "In-flight queries by tenant.", "gauge", func(s tenant.TenantSnapshot) float64 { return float64(s.Concurrent) }},
		{"camc_tenant_qps_tokens", "Token-bucket level by tenant.", "gauge", func(s tenant.TenantSnapshot) float64 { return s.QPSTokens }},
		{"camc_tenant_admitted_total", "Requests admitted by tenant.", "counter", func(s tenant.TenantSnapshot) float64 { return float64(s.Admitted) }},
	} {
		m.header(c.name, c.help, c.typ)
		for _, s := range snaps {
			m.val(c.name, fmt.Sprintf("tenant=%q", s.Name), c.get(s))
		}
	}
	m.header("camc_tenant_rejected_total", "Requests rejected by tenant and quota dimension.", "counter")
	for _, s := range snaps {
		for _, r := range []struct {
			reason string
			v      uint64
		}{
			{"qps", s.RejectedQPS},
			{"concurrency", s.RejectedConcurrency},
			{"graphs", s.RejectedGraphQuota},
			{"bytes", s.RejectedByteQuota},
		} {
			m.val("camc_tenant_rejected_total", fmt.Sprintf("tenant=%q,reason=%q", s.Name, r.reason), float64(r.v))
		}
	}
}

// handleMetrics serves GET /metrics. The endpoint is read-only and
// unauthenticated (scrapers sit inside the trust boundary, like
// /healthz); tenant quota state appears under camc_tenant_* when a
// tenant registry is configured.
func handleMetrics(e *Engine, tenants *tenant.Registry, extra func(io.Writer)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
			return
		}
		st := e.Stats()
		if tenants != nil {
			st.Tenants = tenants.Snapshot()
		}
		var b strings.Builder
		WriteMetrics(&b, st)
		if extra != nil {
			extra(&b)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = io.WriteString(w, b.String())
	}
}
