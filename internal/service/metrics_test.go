package service

import (
	"bytes"
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/tenant"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenStats builds a fully deterministic EngineStats by hand: every
// field the renderer consumes is synthetic, so the exposition text is
// byte-stable across machines and runs.
func goldenStats() EngineStats {
	col := trace.NewCollector()
	col.Observe(trace.QuerySample{
		Algorithm: "cc", Outcome: trace.OutcomeExecuted, Latency: 800 * time.Microsecond,
		P: 4, Supersteps: 13, CommVolume: 11465, Transport: "local",
	})
	col.Observe(trace.QuerySample{
		Algorithm: "cc", Outcome: trace.OutcomeCacheHit, Latency: 30 * time.Microsecond, P: 4,
	})
	col.Observe(trace.QuerySample{
		Algorithm: "mincut", Outcome: trace.OutcomeExecuted, Latency: 45 * time.Millisecond,
		P: 2, Supersteps: 24, CommVolume: 24132, AvoidedCollectives: 3, AvoidedCommVolume: 4096,
		Transport: "tcp", WireBytes: 131072, WireRawBytes: 196608,
	})
	col.Observe(trace.QuerySample{Algorithm: "mincut", Outcome: trace.OutcomeRetried})
	col.Observe(trace.QuerySample{Algorithm: "mincut", Outcome: trace.OutcomeRejected, QueueDepth: 7})
	col.Observe(trace.QuerySample{Algorithm: "approxcut", Outcome: trace.OutcomeDegraded, Latency: 2 * time.Second})

	treg := tenant.NewRegistry(tenant.Config{Tenants: []tenant.TenantConfig{
		{Name: "acme", Token: "tok-acme", Quotas: tenant.Quotas{QPS: 10, Burst: 10, MaxGraphs: 4, MaxBytes: 1 << 20, MaxConcurrent: 2}},
		{Name: "zeta", Token: "tok-zeta"},
	}})
	base := time.Unix(1_700_000_000, 0)
	treg.SetNow(func() time.Time { return base })
	acme, _ := treg.Lookup("acme")
	release, _, err := acme.AcquireQuery()
	if err != nil {
		panic(err)
	}
	release()
	res, _, err := acme.ReserveUpload("g1", 2048)
	if err != nil {
		panic(err)
	}
	res.Commit()
	for { // drain the bucket to a known rejection count
		_, _, err := acme.AcquireQuery()
		if err != nil {
			break
		}
	}

	return EngineStats{
		UptimeMs:      12500,
		Graphs:        2,
		Workers:       4,
		QueueDepth:    1,
		QueueCapacity: 64,
		InflightCalls: 1,
		MaxProcessors: 16,
		Plans:         3,
		Cache:         CacheStats{Size: 5, Capacity: 128, Hits: 9, Misses: 12, Evictions: 2},
		Queries:       col.Snapshot(),
		Tenants:       treg.Snapshot(),
	}
}

// TestMetricsGolden pins the Prometheus exposition format byte for
// byte. Regenerate with -update-golden after intentional changes.
func TestMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, goldenStats())
	got := buf.String()

	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestMetricsRendersIdenticallyTwice guards determinism directly: two
// renders of the same state must be byte-identical (map iteration must
// never leak into the output).
func TestMetricsRendersIdenticallyTwice(t *testing.T) {
	st := goldenStats()
	var a, b bytes.Buffer
	WriteMetrics(&a, st)
	WriteMetrics(&b, st)
	if a.String() != b.String() {
		t.Fatal("two renders of the same state differ")
	}
}

// TestMetricsEndpointLive scrapes /metrics over HTTP against a live
// engine and sanity-checks the exposition.
func TestMetricsEndpointLive(t *testing.T) {
	e := NewEngine(Config{Workers: 2, MaxProcessors: 2})
	defer e.Close()
	if _, err := e.Registry().Put("g", gen.Cycle(32, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type %q", ct)
	}
	for _, want := range []string{
		`camc_queries_total{algorithm="cc",outcome="executed"} 1`,
		`camc_query_latency_seconds_count{algorithm="cc"} 1`,
		`camc_transport_kernel_executions_total{transport="local"} 1`,
		"camc_graphs 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in exposition:\n%s", want, body)
		}
	}
	if strings.Contains(body, "camc_tenant_") {
		t.Error("tenant metrics must be absent without a tenant registry")
	}
}

// TestMetricsConcurrentScrape races scrapes against live queries
// mutating the collector — the test the -race service run leans on to
// prove Snapshot isolates the exposition from concurrent Observes.
func TestMetricsConcurrentScrape(t *testing.T) {
	e := NewEngine(Config{Workers: 2, MaxProcessors: 2})
	defer e.Close()
	if _, err := e.Registry().Put("g", gen.Cycle(64, 3)); err != nil {
		t.Fatal(err)
	}
	h := NewHandler(e)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for n := uint64(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mixed warm/cold traffic: rotating seeds defeat the cache
				// on some queries, so kernel executions keep mutating the
				// collector mid-scrape.
				_, _ = e.Query(context.Background(), QueryRequest{
					Graph: "g", Algorithm: AlgCC, Seed: 1 + (seed+n)%4,
				})
			}
		}(uint64(i))
	}
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("scrape %d: status %d", i, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "camc_uptime_seconds") {
			t.Fatalf("scrape %d: truncated exposition", i)
		}
	}
	close(stop)
	wg.Wait()
}
