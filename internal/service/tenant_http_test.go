package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/tenant"
)

func tenantTestRegistry() *tenant.Registry {
	return tenant.NewRegistry(tenant.Config{Tenants: []tenant.TenantConfig{
		{Name: "a", Token: "tok-a", Quotas: tenant.Quotas{QPS: 2, Burst: 2, MaxGraphs: 2, MaxBytes: 1 << 16, MaxConcurrent: 1}},
		{Name: "b", Token: "tok-b"},
	}})
}

func newTenantServer(t *testing.T, cfg Config) (*Engine, *tenant.Registry, *httptest.Server) {
	t.Helper()
	e := NewEngine(cfg)
	reg := tenantTestRegistry()
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Tenants: reg}))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return e, reg, srv
}

func doReq(t *testing.T, method, url, token, contentType string, body []byte) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func edgeListBody(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func engineTotals(t *testing.T, srv *httptest.Server, token string) (queries, kernels uint64, cacheSize int) {
	t.Helper()
	resp := doReq(t, "GET", srv.URL+"/v1/stats", token, "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var st struct {
		Cache struct {
			Size int `json:"size"`
		} `json:"cache"`
		Queries struct {
			Totals struct {
				Queries          uint64 `json:"queries"`
				KernelExecutions uint64 `json:"kernel_executions"`
			} `json:"totals"`
		} `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Queries.Totals.Queries, st.Queries.Totals.KernelExecutions, st.Cache.Size
}

// TestTenantAuthRequired: /v1/* without a valid token is 401 and leaves
// no trace in the engine's query stats or cache; /healthz and /metrics
// stay open.
func TestTenantAuthRequired(t *testing.T) {
	_, _, srv := newTenantServer(t, Config{Workers: 1, MaxProcessors: 1})

	for _, tc := range []struct{ token string }{{""}, {"wrong"}} {
		resp := doReq(t, "POST", srv.URL+"/v1/query", tc.token, "application/json",
			[]byte(`{"graph":"g","algorithm":"cc"}`))
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", tc.token, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatal("401 must carry WWW-Authenticate")
		}
	}
	if resp := doReq(t, "POST", srv.URL+"/v1/graphs?name=g", "", "text/plain", []byte("0 1 1\n")); resp.StatusCode != 401 {
		t.Fatalf("unauthenticated upload: %d, want 401", resp.StatusCode)
	}
	if resp := doReq(t, "GET", srv.URL+"/healthz", "", "", nil); resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp := doReq(t, "GET", srv.URL+"/metrics", "", "", nil); resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}

	// None of the rejected requests may have reached the engine.
	queries, kernels, cacheSize := engineTotals(t, srv, "tok-b")
	if queries != 0 || kernels != 0 || cacheSize != 0 {
		t.Fatalf("401s leaked into engine stats: queries=%d kernels=%d cache=%d", queries, kernels, cacheSize)
	}
}

// TestTenantQPSAnd429: exhausting tenant a's bucket yields 429 with a
// Retry-After, never reaches the engine, and tenant b is untouched.
func TestTenantQPSAnd429(t *testing.T) {
	e, reg, srv := newTenantServer(t, Config{Workers: 1, MaxProcessors: 1})
	if _, err := e.Registry().Put("g", gen.Cycle(16, 2)); err != nil {
		t.Fatal(err)
	}
	qbody := []byte(`{"graph":"g","algorithm":"cc"}`)

	// Burst of 2, then rejection.
	var saw429 bool
	var okCount int
	for i := 0; i < 3; i++ {
		resp := doReq(t, "POST", srv.URL+"/v1/query", "tok-a", "application/json", qbody)
		switch resp.StatusCode {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			saw429 = true
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("429 Retry-After = %q, want integer seconds >= 1", resp.Header.Get("Retry-After"))
			}
		default:
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
	}
	if okCount != 2 || !saw429 {
		t.Fatalf("burst 2: got %d OK, saw429=%t", okCount, saw429)
	}

	queriesBefore, kernelsBefore, _ := engineTotals(t, srv, "tok-b")
	// Drain stats' own QPS charge? /v1/stats is not quota-limited (GET).
	if queriesBefore != 2 {
		t.Fatalf("engine saw %d queries, want exactly the 2 admitted", queriesBefore)
	}
	if kernelsBefore == 0 {
		t.Fatal("admitted queries should have executed a kernel")
	}

	// Isolation: tenant b (unlimited) never throttles.
	for i := 0; i < 20; i++ {
		resp := doReq(t, "POST", srv.URL+"/v1/query", "tok-b", "application/json", qbody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant b throttled by a's exhaustion: %d at %d", resp.StatusCode, i)
		}
	}

	// The 429 shows up in the tenant ledger, not the query ledger.
	snap := reg.Snapshot()
	for _, s := range snap {
		if s.Name == "a" && s.RejectedQPS != 1 {
			t.Fatalf("tenant a rejected_qps = %d, want 1", s.RejectedQPS)
		}
	}
}

// TestTenantUploadQuotas exercises graph-count and byte quotas over
// HTTP, the ?name= and Content-Length requirements, and rollback on
// upstream rejection.
func TestTenantUploadQuotas(t *testing.T) {
	_, reg, srv := newTenantServer(t, Config{Workers: 1, MaxProcessors: 1})
	// A fake clock keeps the QPS bucket out of the way: each advance()
	// refills tokens without real sleeps.
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	reg.SetNow(func() time.Time { mu.Lock(); defer mu.Unlock(); return now })
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	body := edgeListBody(t, gen.Cycle(16, 2))

	// No name: 400.
	if resp := doReq(t, "POST", srv.URL+"/v1/graphs", "tok-a", "text/plain", body); resp.StatusCode != 400 {
		t.Fatalf("nameless upload: %d, want 400", resp.StatusCode)
	}
	// Two named uploads fit MaxGraphs=2.
	for _, name := range []string{"g1", "g2"} {
		if resp := doReq(t, "POST", srv.URL+"/v1/graphs?name="+name, "tok-a", "text/plain", body); resp.StatusCode != 201 {
			t.Fatalf("upload %s: %d", name, resp.StatusCode)
		}
		advance(time.Second) // refill QPS tokens (2/s)
	}
	// Third graph: 429 on the graph quota.
	resp := doReq(t, "POST", srv.URL+"/v1/graphs?name=g3", "tok-a", "text/plain", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over graph quota: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 must carry Retry-After")
	}

	// A malformed upload under a fresh name must roll its reservation
	// back: the tenant ledger ends where it started.
	before := snapshotOf(reg, "a")
	advance(time.Second)
	resp = doReq(t, "POST", srv.URL+"/v1/graphs?name=g1", "tok-a", "text/plain", []byte("not an edge list"))
	if resp.StatusCode != 400 {
		t.Fatalf("malformed upload: %d, want 400", resp.StatusCode)
	}
	after := snapshotOf(reg, "a")
	if after.Graphs != before.Graphs || after.Bytes != before.Bytes {
		t.Fatalf("failed upload leaked quota: before %+v after %+v", before, after)
	}

	// Byte quota: an upload pushing past MaxBytes is 429 without
	// consulting the engine.
	huge := bytes.Repeat([]byte("0 1 1\n"), 1<<14) // ~96 KiB > 64 KiB quota
	advance(time.Second)
	resp = doReq(t, "POST", srv.URL+"/v1/graphs?name=g1", "tok-a", "text/plain", huge)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over byte quota: %d, want 429", resp.StatusCode)
	}
}

func snapshotOf(reg *tenant.Registry, name string) tenant.TenantSnapshot {
	for _, s := range reg.Snapshot() {
		if s.Name == name {
			return s
		}
	}
	return tenant.TenantSnapshot{}
}

// TestTenantStatsExposure: /v1/stats embeds the tenant quota state and
// /metrics renders camc_tenant_* series.
func TestTenantStatsExposure(t *testing.T) {
	e, _, srv := newTenantServer(t, Config{Workers: 1, MaxProcessors: 1})
	if _, err := e.Registry().Put("g", gen.Cycle(16, 2)); err != nil {
		t.Fatal(err)
	}
	doReq(t, "POST", srv.URL+"/v1/query", "tok-b", "application/json", []byte(`{"graph":"g","algorithm":"cc"}`))

	resp := doReq(t, "GET", srv.URL+"/v1/stats", "tok-b", "", nil)
	var st struct {
		Tenants []tenant.TenantSnapshot `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Tenants) != 2 || st.Tenants[0].Name != "a" || st.Tenants[1].Name != "b" {
		t.Fatalf("stats tenants = %+v", st.Tenants)
	}
	if st.Tenants[1].Admitted == 0 {
		t.Fatal("tenant b's admitted counter missing from stats")
	}

	mresp := doReq(t, "GET", srv.URL+"/metrics", "", "", nil)
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	if !strings.Contains(buf.String(), `camc_tenant_admitted_total{tenant="b"}`) {
		t.Fatalf("metrics lack tenant series:\n%s", buf.String())
	}
}

// TestTenantConcurrencyLimitHTTP holds tenant a's single concurrency
// slot with a slow kernel and checks a second query is 429 while the
// first is in flight.
func TestTenantConcurrencyLimitHTTP(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	e := NewEngine(Config{Workers: 2, MaxProcessors: 1, BeforeExec: func(string) {
		started <- struct{}{}
		<-gate
	}})
	reg := tenantTestRegistry()
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Tenants: reg}))
	t.Cleanup(func() { close(gate); srv.Close(); e.Close() })
	if _, err := e.Registry().Put("g", gen.Cycle(16, 2)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		doReq(t, "POST", srv.URL+"/v1/query", "tok-a", "application/json",
			[]byte(`{"graph":"g","algorithm":"cc"}`))
	}()
	<-started // the first query holds its slot inside the kernel gate

	resp := doReq(t, "POST", srv.URL+"/v1/query", "tok-a", "application/json",
		[]byte(`{"graph":"g","algorithm":"cc","seed":2}`))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent query: %d, want 429", resp.StatusCode)
	}
	gate <- struct{}{}
	wg.Wait()
}

// TestTenantCountersSurviveDrain: quota ledgers live outside the
// engine, so a graceful engine shutdown (drain) must release every
// concurrency slot and preserve the admitted/rejected counters.
func TestTenantCountersSurviveDrain(t *testing.T) {
	e := NewEngine(Config{Workers: 2, MaxProcessors: 1})
	reg := tenantTestRegistry()
	h := NewHandlerOpts(e, HandlerOptions{Tenants: reg})
	srv := httptest.NewServer(h)
	defer srv.Close()
	if _, err := e.Registry().Put("g", gen.Cycle(16, 2)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doReq(t, "POST", srv.URL+"/v1/query", "tok-b", "application/json",
				[]byte(fmt.Sprintf(`{"graph":"g","algorithm":"cc","seed":%d}`, i+1)))
		}(i)
	}
	wg.Wait()
	before := snapshotOf(reg, "b")

	e.Close() // graceful drain

	after := snapshotOf(reg, "b")
	if after.Concurrent != 0 {
		t.Fatalf("drain leaked %d concurrency slots", after.Concurrent)
	}
	if after.Admitted != before.Admitted || after.Admitted != 8 {
		t.Fatalf("admitted counter lost across drain: before %d after %d", before.Admitted, after.Admitted)
	}

	// Post-drain queries: the engine is closed (503), but the tenant
	// layer still accounts them.
	resp := doReq(t, "POST", srv.URL+"/v1/query", "tok-b", "application/json",
		[]byte(`{"graph":"g","algorithm":"cc"}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query: %d, want 503", resp.StatusCode)
	}
	final := snapshotOf(reg, "b")
	if final.Admitted != 9 {
		t.Fatalf("post-drain admission not counted: %d", final.Admitted)
	}
	if final.Concurrent != 0 {
		t.Fatal("post-drain release missing")
	}
}
