package service

import (
	"context"
	"sync"
	"testing"

	"repro/internal/mincut"
	"repro/internal/rng"
)

// TestConcurrentQueriesShareKernelPools hammers the engine from many
// goroutines at once. Every query path below checks scratch out of the
// process-wide kernel pools — the Karger–Stein arena, the radix sort
// buffers, the dense remap tables — so under -race this test verifies
// that concurrent checkouts never share a buffer, and the per-seed
// determinism check verifies that pool recycling never leaks one query's
// state into another's result.
func TestConcurrentQueriesShareKernelPools(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4, MaxProcessors: 4, CacheCapacity: 8})
	if _, err := e.Registry().Put("g", testGraph(90, 500)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	algs := []string{AlgCC, AlgMinCut, AlgApproxCut}
	const perAlg = 8
	values := make([][]uint64, len(algs))
	for i := range values {
		values[i] = make([]uint64, perAlg)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(algs)*perAlg*2)
	for ai, alg := range algs {
		for k := 0; k < perAlg; k++ {
			wg.Add(1)
			go func(ai, k int, alg string) {
				defer wg.Done()
				// NoCache + distinct seeds force real concurrent executions
				// instead of cache hits or coalesced waits.
				rep, err := e.Query(ctx, QueryRequest{
					Graph: "g", Algorithm: alg, Seed: uint64(1 + k%4), NoCache: true,
				})
				if err != nil {
					errs <- err
					return
				}
				values[ai][k] = rep.Result.Value
			}(ai, k, alg)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Same (graph, algorithm, seed) must give the same value no matter
	// which dirty pooled buffers the run happened to draw.
	for ai, alg := range algs {
		for k := 0; k < perAlg; k++ {
			if values[ai][k] != values[ai][k%4] {
				t.Fatalf("%s seed %d: value %d vs %d across concurrent runs",
					alg, 1+k%4, values[ai][k], values[ai][k%4])
			}
		}
	}
}

// TestConcurrentKargerSteinArenas drives the arena pool directly: many
// goroutines each run full Karger–Stein recursions concurrently, with a
// deterministic per-goroutine stream. Identical streams must produce
// identical cut values regardless of arena interleaving.
func TestConcurrentKargerSteinArenas(t *testing.T) {
	g := testGraph(70, 420)
	const workers = 8
	vals := make([]uint64, workers)
	sides := make([][]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := rng.New(42, uint32(w%2), 0) // two distinct replayed streams
			r := mincut.KargerStein(g, st, 0.9)
			vals[w] = r.Value
			sides[w] = r.Side
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if vals[w] != vals[w%2] {
			t.Fatalf("worker %d: value %d, want %d (same stream)", w, vals[w], vals[w%2])
		}
		for v := range sides[w] {
			if sides[w][v] != sides[w%2][v] {
				t.Fatalf("worker %d: side differs at %d from same-stream worker %d", w, v, w%2)
			}
		}
		if !(&mincut.CutResult{Value: vals[w], Side: sides[w]}).Check(g) {
			t.Fatalf("worker %d: inconsistent cut result", w)
		}
	}
}
