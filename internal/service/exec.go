package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/approxcut"
	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/planner"
	"repro/internal/rng"
)

// Supported algorithms.
const (
	AlgCC        = "cc"        // connected components (§3.2)
	AlgMinCut    = "mincut"    // exact minimum cut (§4)
	AlgApproxCut = "approxcut" // O(log n)-approximate minimum cut (§3.3)
)

// QueryRequest describes one analytics query against a registered graph.
// The zero value of every tuning field selects the repo-wide default.
type QueryRequest struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	// Seed drives all randomness (default 1). Identical (graph version,
	// algorithm, parameters, seed) queries are identical computations —
	// which is what makes them cacheable and coalescable.
	Seed uint64 `json:"seed,omitempty"`
	// Processors pins the BSP machine size; 0 lets the scheduler size it
	// from the graph (clamped to the engine's MaxProcessors either way).
	Processors int `json:"processors,omitempty"`
	// Kernel pins a specific portfolio kernel ("sampling", "lowround",
	// "labelprop", "shared" for cc; "kargerstein", "stoerwagner" for
	// mincut), bypassing the planner. Empty lets the planner (or, with the
	// planner off, the default kernel) decide. Shared-memory kernels
	// reject Processors > 1.
	Kernel string `json:"kernel,omitempty"`
	// SuccessProb targets the exact min cut success probability
	// (default 0.9).
	SuccessProb float64 `json:"success_prob,omitempty"`
	// MaxTrials caps the exact min cut trial count (0 = theory-derived).
	MaxTrials int `json:"max_trials,omitempty"`
	// Epsilon tunes the CC sample size s = n^(1+ε/2) (default 0.5).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Trials overrides the approximate cut's trials per sparsity level.
	Trials int `json:"trials,omitempty"`
	// Pipelined selects the O(1)-superstep approximate cut variant.
	Pipelined bool `json:"pipelined,omitempty"`
	// TimeoutMillis bounds queueing plus result wait (0 = engine default).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// IncludeLabels / IncludeSide opt into the bulky parts of the result
	// in HTTP responses (the cache always stores them).
	IncludeLabels bool `json:"include_labels,omitempty"`
	IncludeSide   bool `json:"include_side,omitempty"`
	// NoCache skips the cache lookup (the result is still stored).
	NoCache bool `json:"no_cache,omitempty"`
	// Hedged opts a cc query into hedged reads at the shard frontend:
	// when the shard leader's circuit breaker is open (or the leader is
	// slow past the hedge delay), the frontend races a second copy of the
	// query against a replica rank holding the same graph. A routing
	// hint only — it never changes the computation's identity, so it is
	// excluded from cache keys and coalescing. Ignored by single-process
	// engines and by algorithms other than cc (exact/approx cut runs are
	// too expensive to duplicate speculatively).
	Hedged bool `json:"hedged,omitempty"`
}

// params is the normalized, defaulted form of the tuning fields — the
// canonical identity used for cache keys and coalescing.
type params struct {
	seed        uint64
	epsilon     float64
	successProb float64
	maxTrials   int
	trials      int
	pipelined   bool
}

func normalize(req *QueryRequest) (params, error) {
	switch req.Algorithm {
	case AlgCC, AlgMinCut, AlgApproxCut:
	default:
		return params{}, fmt.Errorf("%w: unknown algorithm %q (want %s|%s|%s)",
			ErrBadRequest, req.Algorithm, AlgCC, AlgMinCut, AlgApproxCut)
	}
	p := params{
		seed:        req.Seed,
		epsilon:     req.Epsilon,
		successProb: req.SuccessProb,
		maxTrials:   req.MaxTrials,
		trials:      req.Trials,
		pipelined:   req.Pipelined,
	}
	if p.seed == 0 {
		p.seed = 1
	}
	if p.epsilon == 0 {
		p.epsilon = 0.5
	}
	if p.epsilon < 0 || p.epsilon > 2 {
		return params{}, fmt.Errorf("%w: epsilon %g out of (0, 2]", ErrBadRequest, req.Epsilon)
	}
	if p.successProb == 0 {
		p.successProb = 0.9
	}
	if p.successProb <= 0 || p.successProb >= 1 {
		return params{}, fmt.Errorf("%w: success_prob %g out of (0, 1)", ErrBadRequest, req.SuccessProb)
	}
	if p.maxTrials < 0 || p.trials < 0 || req.Processors < 0 {
		return params{}, fmt.Errorf("%w: negative tuning parameter", ErrBadRequest)
	}
	return p, nil
}

// chooseP sizes the BSP machine for a query: an explicit request is
// honored (clamped to maxP); otherwise p doubles while each processor
// would still hold more than 2·edgesPerProc edges. Small graphs run at
// p=1, where the BSP kernels degenerate to their sequential forms and
// pay zero synchronization — the adaptive regime the serving layer is
// for: a fleet of small queries must not each spin up 16 goroutines.
func chooseP(m, explicit, maxP int) int {
	if maxP < 1 {
		maxP = 1
	}
	if explicit > 0 {
		if explicit > maxP {
			return maxP
		}
		return explicit
	}
	const edgesPerProc = 4096
	p := 1
	for p < maxP && m/p > 2*edgesPerProc {
		p *= 2
	}
	if p > maxP {
		p = maxP
	}
	return p
}

// KernelStats is the BSP cost profile of one kernel execution, lifted
// from bsp.Stats into a JSON-ready form.
type KernelStats struct {
	P            int     `json:"p"`
	Supersteps   int     `json:"supersteps"`
	CommVolume   uint64  `json:"comm_volume"`
	MaxHRelation uint64  `json:"max_h_relation"`
	TimeMs       float64 `json:"time_ms"`
	CommTimeMs   float64 `json:"comm_time_ms"`
	MaxOps       uint64  `json:"max_ops"`
	// AvoidedCollectives / AvoidedCommVolume report what the run skipped
	// by consuming snapshot-resident plan facts instead of communicating
	// — the explicit ledger entry that keeps warm-path accounting honest.
	// Zero on cold runs.
	AvoidedCollectives int    `json:"avoided_collectives"`
	AvoidedCommVolume  uint64 `json:"avoided_comm_volume"`
	// Transport labels the BSP fabric that carried the run ("local",
	// "tcp", "shared" for the machine-less shared-memory kernels);
	// WireBytes is the framed socket traffic it cost — zero for the
	// in-process fabric.
	Transport string `json:"transport,omitempty"`
	WireBytes uint64 `json:"wire_bytes,omitempty"`
	// WireRawBytes is what the same frames would have cost uncompressed
	// (raw codec); the difference from WireBytes is the payload codecs'
	// saving. Zero for the in-process fabric.
	WireRawBytes uint64 `json:"wire_raw_bytes,omitempty"`
	// Kernel names the portfolio kernel that produced the result; empty
	// when the planner is off and no kernel was pinned (the default
	// kernel ran). PredictedMs is the planner's predicted wall time for
	// this execution (0 when unplanned) — compare with TimeMs for the
	// model's accuracy on this query.
	Kernel      string  `json:"kernel,omitempty"`
	PredictedMs float64 `json:"predicted_ms,omitempty"`
}

// QueryResult is the full outcome of one kernel execution; it is the
// unit the cache stores, so it always carries the complete labelling /
// cut side even when the response omits them.
type QueryResult struct {
	Graph      string
	Version    uint64
	Algorithm  string
	Value      uint64  // cut value (mincut, approxcut)
	Components int     // component count (cc)
	Iterations int     // sampling rounds (cc) or sparsity levels (approxcut)
	Trials     int     // contraction trials (mincut) or per-level trials (approxcut)
	Labels     []int32 // cc labelling
	Side       []bool  // mincut partition side
	Kernel     KernelStats

	// Degraded marks a best-so-far answer from a deadline-cancelled run:
	// still a valid cut (or one-sided estimate), but at a weaker guarantee
	// than requested. Degraded results are never cached.
	Degraded bool
	// AchievedProb is the success probability the completed trials
	// actually achieved (mincut, when Degraded).
	AchievedProb float64
	// RetryAfterMs estimates the extra time the query would have needed to
	// complete, a client retry hint (when Degraded).
	RetryAfterMs int64
}

func kernelStatsOf(st *bsp.Stats) KernelStats {
	return KernelStats{
		P:                  st.P,
		Supersteps:         st.Supersteps,
		CommVolume:         st.CommVolume,
		MaxHRelation:       st.MaxHRelation(),
		TimeMs:             float64(st.Total()) / float64(time.Millisecond),
		CommTimeMs:         float64(st.MaxCommTime) / float64(time.Millisecond),
		MaxOps:             st.MaxOps,
		AvoidedCollectives: st.AvoidedCollectives,
		AvoidedCommVolume:  st.AvoidedCommVolume,
		Transport:          st.Transport,
		WireBytes:          st.WireBytes,
		WireRawBytes:       st.WireRawBytes,
	}
}

// machinePools caches BSP machines by processor count so that a fleet of
// same-sized requests reuses mailboxes, collective scratch, and payload
// pools instead of reallocating them per query. sync.Pool gives free
// concurrency and lets idle machines be collected under memory pressure.
var machinePools sync.Map // int -> *sync.Pool

func acquireMachine(p int) (*bsp.Machine, error) {
	v, ok := machinePools.Load(p)
	if !ok {
		v, _ = machinePools.LoadOrStore(p, &sync.Pool{})
	}
	pool := v.(*sync.Pool)
	if m, ok := pool.Get().(*bsp.Machine); ok {
		return m, nil
	}
	return bsp.NewMachine(p)
}

func releaseMachine(m *bsp.Machine) {
	if v, ok := machinePools.Load(m.P()); ok {
		v.(*sync.Pool).Put(m)
	}
}

// executeKernel runs one algorithm over the snapshot on a pooled BSP
// machine of p processors, cancellable through ctx: when the deadline
// fires (or every waiter abandons the call) the machine is cancelled and
// unwinds within one superstep. A cancelled mincut or approxcut run
// degrades to the checkpointed best-so-far answer when one exists;
// otherwise the error wraps bsp.ErrCancelled for the engine to map.
//
// The snapshot's frozen edge array is sliced across processors with the
// block distribution — zero copies at ingestion; the kernels treat local
// slices as read-only.
//
// Beyond the machine pool above, the kernels themselves draw scratch
// from process-wide sync.Pools (the Karger–Stein arena in
// internal/mincut, sort buffers and remap tables in internal/sort and
// internal/graph), so concurrent queries recycle each other's
// allocations instead of growing the heap per query. See
// stress_test.go for the race-checked exercise of that sharing.
//
// pl, when non-nil, is the snapshot-resident plan for (sg, p): the
// kernels consume its precomputed facts instead of running the matching
// cold collectives, recording each skip on the BSP ledger. nil runs the
// full cold path.
//
// kern selects the portfolio kernel ("" = the algorithm's default);
// shared-memory kernels run on the calling goroutine with no machine at
// all — the planner's cheapest shape for small warm graphs.
func executeKernel(ctx context.Context, sg *StoredGraph, alg, kern string, p int, pr params, pl *graph.Plan, freg *faults.Registry) (*QueryResult, error) {
	if k := planner.Lookup(alg, kern); k != nil && k.Shared {
		return executeShared(ctx, sg, alg, kern)
	}
	var out kernelOut
	switch alg {
	case AlgMinCut:
		out.mcCp = mincut.NewCheckpoint()
	case AlgApproxCut:
		out.acCp = approxcut.NewCheckpoint()
	}
	mach, err := acquireMachine(p)
	if err != nil {
		return nil, err
	}
	if freg.Enabled() {
		mach.SetFaultHook(freg.Hook(mach))
	}
	start := time.Now()
	st, err := mach.RunCtx(ctx, kernelBody(sg.Snap, alg, kern, pr, pl, &out))
	if err != nil {
		// A failed run may leave mailboxes mid-superstep; drop the machine
		// rather than returning it to the pool — but detach the fault hook
		// first so the dropped machine does not pin the fault registry (and
		// its captured state) until the GC finds it.
		mach.SetFaultHook(nil)
		if errors.Is(err, bsp.ErrCancelled) {
			if res := degradedResult(sg, alg, out.mcCp, out.acCp, time.Since(start)); res != nil {
				return res, nil
			}
		}
		return nil, err
	}
	mach.SetFaultHook(nil)
	releaseMachine(mach)
	res := assembleResult(sg, alg, st, &out)
	res.Kernel.Kernel = kern
	return res, nil
}

// executeShared runs a shared-memory portfolio kernel on the calling
// goroutine: no BSP machine, no mailboxes, no superstep ledger — the
// zero-communication execution shape. The planner only routes small
// graphs here (Stoer–Wagner is additionally MaxN-gated), so runs are
// short; cancellation is checked at entry but not mid-kernel, and fault
// injection (a BSP-machine hook) does not apply.
func executeShared(ctx context.Context, sg *StoredGraph, alg, kern string) (*QueryResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", bsp.ErrCancelled, err)
	}
	res := &QueryResult{Graph: sg.Name, Version: sg.Version, Algorithm: alg}
	g := sg.Snap.Graph()
	start := time.Now()
	switch {
	case alg == AlgCC && kern == planner.KernelCCShared:
		r := cc.SharedAdaptive(g)
		res.Components = r.Count
		res.Iterations = r.Iterations
		res.Labels = r.Labels
	case alg == AlgMinCut && kern == planner.KernelMCStoerWagnr:
		r := mincut.StoerWagner(g)
		res.Value = r.Value
		res.Trials = r.Trials
		res.Side = r.Side
	default:
		return nil, fmt.Errorf("%w: kernel %q does not answer %q", ErrBadRequest, kern, alg)
	}
	res.Kernel = KernelStats{
		P:         1,
		TimeMs:    float64(time.Since(start)) / float64(time.Millisecond),
		Transport: "shared",
		Kernel:    kern,
	}
	return res, nil
}

// kernelOut receives rank 0's results; on a machine that hosts no rank 0
// (a peer worker process of a distributed run) every field stays nil.
type kernelOut struct {
	cc   *cc.Result
	mc   *mincut.CutResult
	ac   *approxcut.Result
	mcCp *mincut.Checkpoint
	acCp *approxcut.Checkpoint
}

// kernelBody builds the SPMD body for one algorithm over a snapshot. The
// body is transport-agnostic: it slices the frozen edge array with the
// block distribution over c.Size() global ranks, so the same closure
// runs on an in-process machine or on each worker process of a TCP
// machine (every process holds the full snapshot; each rank touches only
// its block). kern selects among the algorithm's BSP portfolio members
// ("" and the default name run the pre-portfolio kernel).
func kernelBody(snap *graph.Snapshot, alg, kern string, pr params, pl *graph.Plan, out *kernelOut) func(c *bsp.Comm) {
	n := snap.N()
	edges := snap.Edges()
	return func(c *bsp.Comm) {
		lo, hi := dist.BlockRange(len(edges), c.Size(), c.Rank())
		local := edges[lo:hi]
		stream := rng.New(pr.seed, uint32(c.Rank()), 0)
		switch alg {
		case AlgCC:
			var r *cc.Result
			switch kern {
			case planner.KernelCCLowRound:
				r = cc.LowRound(c, n, local, cc.Options{Plan: pl})
			case planner.KernelCCLabelProp:
				r = cc.LabelPropagation(c, n, local)
			default:
				r = cc.Parallel(c, n, local, stream, cc.Options{Epsilon: pr.epsilon, Plan: pl})
			}
			if c.Rank() == 0 {
				out.cc = r
			}
		case AlgMinCut:
			r := mincut.Parallel(c, n, local, stream, mincut.Options{
				SuccessProb: pr.successProb,
				MaxTrials:   pr.maxTrials,
				Checkpoint:  out.mcCp,
				Plan:        pl,
			})
			if c.Rank() == 0 {
				out.mc = r
			}
		case AlgApproxCut:
			r := approxcut.Parallel(c, n, local, stream, approxcut.Options{
				Trials:     pr.trials,
				Pipelined:  pr.pipelined,
				Checkpoint: out.acCp,
				Plan:       pl,
			})
			if c.Rank() == 0 {
				out.ac = r
			}
		}
	}
}

func assembleResult(sg *StoredGraph, alg string, st *bsp.Stats, out *kernelOut) *QueryResult {
	res := &QueryResult{
		Graph:     sg.Name,
		Version:   sg.Version,
		Algorithm: alg,
		Kernel:    kernelStatsOf(st),
	}
	switch alg {
	case AlgCC:
		res.Components = out.cc.Count
		res.Iterations = out.cc.Iterations
		res.Labels = out.cc.Labels
	case AlgMinCut:
		res.Value = out.mc.Value
		res.Trials = out.mc.Trials
		res.Side = out.mc.Side
	case AlgApproxCut:
		res.Value = out.ac.Value
		res.Iterations = out.ac.Iterations
		res.Trials = out.ac.TrialsPerIteration
	}
	return res
}

// ExecParams is the exported form of the normalized tuning parameters —
// the identity a distributed executor ships to worker processes.
type ExecParams struct {
	Seed        uint64  `json:"seed"`
	Epsilon     float64 `json:"epsilon"`
	SuccessProb float64 `json:"success_prob"`
	MaxTrials   int     `json:"max_trials"`
	Trials      int     `json:"trials"`
	Pipelined   bool    `json:"pipelined"`
}

func (pr params) export() ExecParams {
	return ExecParams{
		Seed:        pr.seed,
		Epsilon:     pr.epsilon,
		SuccessProb: pr.successProb,
		MaxTrials:   pr.maxTrials,
		Trials:      pr.trials,
		Pipelined:   pr.pipelined,
	}
}

func (ep ExecParams) internal() params {
	return params{
		seed:        ep.Seed,
		epsilon:     ep.Epsilon,
		successProb: ep.SuccessProb,
		maxTrials:   ep.MaxTrials,
		trials:      ep.Trials,
		pipelined:   ep.Pipelined,
	}
}

// NormalizeParams validates and defaults a request's tuning parameters
// without touching the engine — the shard worker uses it to turn a
// forwarded QueryRequest into the canonical ExecParams.
func NormalizeParams(req *QueryRequest) (ExecParams, error) {
	pr, err := normalize(req)
	if err != nil {
		return ExecParams{}, err
	}
	return pr.export(), nil
}

// Executor runs kernels on behalf of the engine. When Config.Executor is
// set the engine delegates every execution to it instead of running on a
// pooled in-process machine; the cache, coalescing, admission control,
// and retry/degradation policy stay in the engine. MachineP reports the
// fixed machine size the executor runs at (a distributed machine's size
// is its worker-group size, not a per-query choice).
type Executor interface {
	MachineP() int
	Execute(ctx context.Context, sg *StoredGraph, alg string, pr ExecParams) (*QueryResult, error)
}

// ExecuteOnMachine runs one algorithm over the snapshot on the
// caller-provided machine — the distributed execution primitive. Every
// process of a TCP machine calls it with the same arguments; the process
// hosting global rank 0 gets the assembled result, the others get
// (nil, nil). Distributed runs are always cold (no snapshot-resident
// plan — plans are keyed to a single process's registry) and never
// degrade: a cancelled run surfaces its error on every process.
func ExecuteOnMachine(ctx context.Context, m *bsp.Machine, sg *StoredGraph, alg string, pr ExecParams) (*QueryResult, error) {
	var out kernelOut
	st, err := m.RunCtx(ctx, kernelBody(sg.Snap, alg, "", pr.internal(), nil, &out))
	if err != nil {
		return nil, err
	}
	if out.cc == nil && out.mc == nil && out.ac == nil {
		return nil, nil
	}
	return assembleResult(sg, alg, st, &out), nil
}

// ExecuteLocal runs one algorithm over the snapshot entirely inside the
// calling process on a pooled single-processor machine — the failover
// execution shape: every shard worker replicates every graph, so when
// the mesh (or the rank that owns the query) is unavailable, any live
// worker can still answer from its own copy without touching the
// fabric. No plan, no fault injection, no degradation: failover exists
// to produce a definite answer, and a p=1 machine has no peers to lose.
func ExecuteLocal(ctx context.Context, sg *StoredGraph, alg string, pr ExecParams) (*QueryResult, error) {
	mach, err := acquireMachine(1)
	if err != nil {
		return nil, err
	}
	var out kernelOut
	st, err := mach.RunCtx(ctx, kernelBody(sg.Snap, alg, "", pr.internal(), nil, &out))
	if err != nil {
		return nil, err
	}
	releaseMachine(mach)
	return assembleResult(sg, alg, st, &out), nil
}

// degradedResult synthesizes a best-so-far answer from a cancelled run's
// checkpoint, or nil when nothing useful completed. The retry hint
// extrapolates the remaining work from the observed per-unit pace.
func degradedResult(sg *StoredGraph, alg string, mcCp *mincut.Checkpoint, acCp *approxcut.Checkpoint, elapsed time.Duration) *QueryResult {
	res := &QueryResult{
		Graph:     sg.Name,
		Version:   sg.Version,
		Algorithm: alg,
		Degraded:  true,
	}
	switch alg {
	case AlgMinCut:
		value, side, done, planned, ok := mcCp.Best()
		if !ok {
			return nil
		}
		res.Value = value
		res.Side = side
		res.Trials = done
		res.AchievedProb = mcCp.AchievedProb()
		res.RetryAfterMs = retryHint(elapsed, done, planned)
		return res
	case AlgApproxCut:
		iters, trials, planned, ok := acCp.Partial()
		if !ok {
			return nil
		}
		// Clearing iteration i without a disconnection puts the cut above
		// ~2^i w.h.p. — a one-sided estimate, flagged degraded.
		res.Value = uint64(1) << uint(iters)
		res.Iterations = iters
		res.Trials = trials
		res.RetryAfterMs = retryHint(elapsed, iters, planned)
		return res
	}
	return nil
}

// retryHint estimates how much longer the cancelled run needed:
// elapsed × remaining/done, floored at 1ms.
func retryHint(elapsed time.Duration, done, planned int) int64 {
	if done <= 0 || planned <= done {
		return 1
	}
	ms := elapsed.Milliseconds() * int64(planned-done) / int64(done)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// cacheKey builds the canonical identity of a query: graph name, version
// and content fingerprint, algorithm, resolved kernel, machine size, and
// every normalized tuning parameter. Two requests with equal keys are
// the same computation — safe to coalesce and to serve from cache. The
// kernel is part of the identity because the planner resolves it per
// query: an adaptive refit may route the next identical request to a
// different (result-equivalent) kernel, which must not collide.
func cacheKey(sg *StoredGraph, alg, kern string, p int, pr params) string {
	return fmt.Sprintf("%s@%d#%016x|%s|k%s|p%d|s%d|e%g|sp%g|mt%d|t%d|pl%t",
		sg.Name, sg.Version, sg.Snap.Fingerprint(), alg, kern, p,
		pr.seed, pr.epsilon, pr.successProb, pr.maxTrials, pr.trials, pr.pipelined)
}

// sideVertices converts a cut side to the vertex list of its smaller
// shore, the compact wire form.
func sideVertices(side []bool) []int32 {
	in := 0
	for _, s := range side {
		if s {
			in++
		}
	}
	flip := in > len(side)-in
	out := make([]int32, 0, min(in, len(side)-in))
	for v, s := range side {
		if s != flip {
			out = append(out, int32(v))
		}
	}
	return out
}
