package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/bsp"
	"repro/internal/trace"
	"repro/internal/transport"
)

// stubExecutor fails its first `fails` executions with a wrapped
// ErrPeerLost, then delegates to ExecuteOnMachine on a fresh local
// machine — the same code path a shard worker group runs, minus the
// sockets.
type stubExecutor struct {
	p     int
	mu    sync.Mutex
	fails int
	calls int
}

func (s *stubExecutor) MachineP() int { return s.p }

func (s *stubExecutor) Execute(ctx context.Context, sg *StoredGraph, alg string, pr ExecParams) (*QueryResult, error) {
	s.mu.Lock()
	s.calls++
	fail := s.calls <= s.fails
	s.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("rank 2 connection reset: %w", transport.ErrPeerLost)
	}
	m, err := bsp.NewMachine(s.p)
	if err != nil {
		return nil, err
	}
	return ExecuteOnMachine(ctx, m, sg, alg, pr)
}

// TestExecutorTransportFailure pins the peer-loss contract: a lost
// worker connection gets the one bounded retry, then surfaces as
// ErrTransport (503 + Retry-After over HTTP, distinct from ErrFaulted),
// is counted under its own outcome, and is never cached — the next
// identical query executes again and succeeds.
func TestExecutorTransportFailure(t *testing.T) {
	ex := &stubExecutor{p: 2, fails: 2} // first attempt + its retry
	e := newTestEngine(t, Config{Workers: 1, Executor: ex})
	e.Registry().Put("g", testGraph(48, 120))

	req := QueryRequest{Graph: "g", Algorithm: AlgCC}
	_, err := e.Query(context.Background(), req)
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	if errors.Is(err, ErrFaulted) {
		t.Fatalf("transport failure must not double as ErrFaulted: %v", err)
	}
	if got := statusOf(err); got != http.StatusServiceUnavailable {
		t.Fatalf("statusOf = %d, want 503", got)
	}

	// Failure not cached: the identical query runs again — and now
	// succeeds, at the executor's fixed machine size.
	reply, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("query after fabric recovery: %v", err)
	}
	if reply.Outcome != trace.OutcomeExecuted {
		t.Fatalf("outcome %q, want executed (the failed call must not have been cached)", reply.Outcome)
	}
	if reply.Result.Kernel.P != ex.p {
		t.Fatalf("kernel ran at p=%d, want the executor's machine size %d", reply.Result.Kernel.P, ex.p)
	}

	snap := e.Collector().Snapshot()
	if snap.Totals.TransportLost != 1 {
		t.Fatalf("transport_lost = %d, want 1", snap.Totals.TransportLost)
	}
	if snap.Totals.Retried != 1 {
		t.Fatalf("retried = %d, want 1 (peer loss gets the bounded retry)", snap.Totals.Retried)
	}
	if snap.Totals.Faulted != 0 {
		t.Fatalf("faulted = %d, want 0", snap.Totals.Faulted)
	}
}

// TestHTTPTransportFailure drives the same contract end to end over the
// HTTP surface: 503 with a Retry-After header.
func TestHTTPTransportFailure(t *testing.T) {
	ex := &stubExecutor{p: 2, fails: 1 << 30} // never recovers
	e := newTestEngine(t, Config{Workers: 1, Executor: ex})
	e.Registry().Put("g", testGraph(32, 80))
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	body, _ := json.Marshal(QueryRequest{Graph: "g", Algorithm: AlgMinCut})
	resp, err := http.Post(srv.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 reply lacks Retry-After")
	}
}

// TestExecuteOnMachineMatchesLocalPath checks the exported distributed
// primitive returns the same answer as the engine's in-process path for
// every algorithm, and returns (nil, nil) on a machine hosting no
// global rank 0.
func TestExecuteOnMachineMatchesLocalPath(t *testing.T) {
	g := testGraph(64, 160)
	sg, err := NewRegistry().Put("g", g)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{AlgCC, AlgMinCut, AlgApproxCut} {
		req := QueryRequest{Graph: "g", Algorithm: alg}
		pr, err := NormalizeParams(&req)
		if err != nil {
			t.Fatal(err)
		}
		m, err := bsp.NewMachine(2)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ExecuteOnMachine(context.Background(), m, sg, alg, pr)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		want, err := executeKernel(context.Background(), sg, alg, "", 2, pr.internal(), nil, nil)
		if err != nil {
			t.Fatalf("%s reference: %v", alg, err)
		}
		if got.Value != want.Value || got.Components != want.Components || got.Trials != want.Trials {
			t.Fatalf("%s: ExecuteOnMachine (%d,%d,%d) != executeKernel (%d,%d,%d)",
				alg, got.Value, got.Components, got.Trials, want.Value, want.Components, want.Trials)
		}
	}
}
