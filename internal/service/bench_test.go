package service

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
)

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

// benchEngine builds an engine + registered graph for repeated-query
// benchmarks. The caller closes it.
func benchEngine(disablePlans bool, g *graph.Graph) *Engine {
	e := NewEngine(Config{
		Workers: 1, MaxProcessors: 16, CacheCapacity: -1, DisablePlans: disablePlans,
	})
	if _, err := e.Registry().Put("g", g); err != nil {
		panic(err)
	}
	return e
}

// ccGraph is the repeated-CC workload: mid-size, where a cold query
// pays sampling rounds, root union-find, and two n-word broadcasts that
// the warm path replaces with a label copy.
func ccGraph() *graph.Graph {
	g := gen.ErdosRenyiM(2048, 16384, 7, gen.Config{MaxWeight: 4})
	for v := 1; v < g.N; v++ {
		g.AddEdge(int32(v-1), int32(v), 1)
	}
	g.AddEdge(int32(g.N-1), 0, 1)
	return g
}

// mincutGraph is the repeated-mincut workload: a sparse graph queried
// with MaxTrials=1 at p=16 — the cheap screening query a serving tier
// issues repeatedly — where the cold path's per-query connectivity
// check (n-word label broadcasts), degree AllReduce, and p-way edge
// replication are a large fixed tax next to the single eager trial.
func mincutGraph() *graph.Graph {
	g := gen.ErdosRenyiM(16384, 16384, 7, gen.Config{MaxWeight: 4})
	for v := 1; v < g.N; v++ {
		g.AddEdge(int32(v-1), int32(v), 1)
	}
	g.AddEdge(int32(g.N-1), 0, 1)
	return g
}

// skewGraph is the trial workload for the scheduling comparison: an
// RMAT multigraph big enough that one contraction trial is a
// non-trivial unit of work to place.
func skewGraph() *graph.Graph {
	g := gen.RMAT(11, 16384, 99, gen.Config{MaxWeight: 16})
	for v := 1; v < g.N; v++ {
		g.AddEdge(int32(v-1), int32(v), 1)
	}
	return g
}

// stragglerDelay is the extra per-trial cost injected on the last rank
// in the scheduling benches — the "noisy neighbor" a static partition
// cannot route around. It is several times one trial's compute (~12ms
// here), so a static block assignment strands the straggler with a
// multi-delay tail while dynamic claiming hands its chunks to the
// other ranks after the first claim round prices it out.
const stragglerDelay = 50 * time.Millisecond

func runQuery(b *testing.B, e *Engine, req QueryRequest) {
	b.Helper()
	req.NoCache = true
	if _, err := e.Query(context.Background(), req); err != nil {
		b.Fatal(err)
	}
}

var (
	mcReq = QueryRequest{Graph: "g", Algorithm: AlgMinCut, Processors: 16, MaxTrials: 1}
	ccReq = QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: 4}
)

func benchQueries(b *testing.B, disablePlans bool, mk func() *graph.Graph, req QueryRequest) {
	e := benchEngine(disablePlans, mk())
	defer e.Close()
	req.NoCache = true
	// First query off the clock: it builds the plan (warm engine) and
	// fills the machine pool, the state every later query reuses.
	if _, err := e.Query(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runQuery(b, e, req)
	}
}

func BenchmarkQueryMincutWarm(b *testing.B) { benchQueries(b, false, mincutGraph, mcReq) }
func BenchmarkQueryMincutCold(b *testing.B) { benchQueries(b, true, mincutGraph, mcReq) }
func BenchmarkQueryCCWarm(b *testing.B)     { benchQueries(b, false, ccGraph, ccReq) }
func BenchmarkQueryCCCold(b *testing.B)     { benchQueries(b, true, ccGraph, ccReq) }

// runScheduled executes one mincut with the given schedule at p=4,
// slowing every trial on the last rank by stragglerDelay via the
// OnTrial hook, and returns the machine stats plus the number of
// trials the straggler ended up running — the per-worker app times and
// straggler trial count are the load-balance evidence.
func runScheduled(g *graph.Graph, sched mincut.Schedule, trials int) (*bsp.Stats, *mincut.CutResult, int) {
	var res *mincut.CutResult
	var stragglerTrials int
	st, err := bsp.Run(4, func(c *bsp.Comm) {
		straggler := c.Rank() == c.Size()-1
		ran := 0
		lo, hi := dist.BlockRange(len(g.Edges), 4, c.Rank())
		r := mincut.Parallel(c, g.N, g.Edges[lo:hi], rng.New(11, uint32(c.Rank()), 0), mincut.Options{
			MaxTrials: trials,
			Schedule:  sched,
			OnTrial: func(int) {
				ran++
				if straggler {
					time.Sleep(stragglerDelay)
				}
			},
		})
		if c.Rank() == 0 {
			res = r
		}
		if straggler {
			stragglerTrials = ran
		}
	})
	if err != nil {
		panic(err)
	}
	return st, res, stragglerTrials
}

func benchScheduled(b *testing.B, sched mincut.Schedule) {
	g := skewGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runScheduled(g, sched, 16)
	}
	_ = g
}

func BenchmarkMincutStatic(b *testing.B)  { benchScheduled(b, mincut.SchedStatic) }
func BenchmarkMincutDynamic(b *testing.B) { benchScheduled(b, mincut.SchedDynamic) }

// ---------------------------------------------------------------------------
// BENCH_service.json
// ---------------------------------------------------------------------------

type throughputRow struct {
	Algorithm string  `json:"algorithm"`
	WarmNsOp  int64   `json:"warm_ns_op"`
	ColdNsOp  int64   `json:"cold_ns_op"`
	Speedup   float64 `json:"speedup"` // cold/warm: repeated-query throughput gain
}

type scheduleRow struct {
	Schedule string `json:"schedule"`
	WallNs   int64  `json:"wall_ns"` // max worker app time (the critical path)
	// IdleFraction is 1 − avg/max worker app time: how much of the
	// critical-path rank's span the other ranks spent waiting.
	IdleFraction float64 `json:"idle_fraction"`
	// StragglerTrials is how many trials landed on the artificially
	// slowed rank (of 16): 16/p under static, ~1 under dynamic once the
	// claim rounds price the straggler out.
	StragglerTrials int    `json:"straggler_trials"`
	CutValue        uint64 `json:"cut_value"`
}

type serviceSnapshot struct {
	Throughput []throughputRow `json:"throughput"`
	Scheduling []scheduleRow   `json:"scheduling"`
}

func bench(f func(b *testing.B)) testing.BenchmarkResult { return testing.Benchmark(f) }

func scheduleRowOf(name string, sched mincut.Schedule) scheduleRow {
	g := skewGraph()
	// App times are averaged over a few runs to tame timer noise; the
	// straggler trial count is reported from the last run.
	const reps = 5
	var row scheduleRow
	row.Schedule = name
	for rep := 0; rep < reps; rep++ {
		st, res, stragglerTrials := runScheduled(g, sched, 16)
		row.CutValue = res.Value
		row.StragglerTrials = stragglerTrials
		var maxApp, sumApp time.Duration
		for _, w := range st.Workers {
			sumApp += w.AppTime
			if w.AppTime > maxApp {
				maxApp = w.AppTime
			}
		}
		row.WallNs += maxApp.Nanoseconds()
		avg := float64(sumApp) / float64(len(st.Workers))
		if maxApp > 0 {
			row.IdleFraction += 1 - avg/float64(maxApp)
		}
	}
	row.WallNs /= reps
	row.IdleFraction /= reps
	return row
}

func writeServiceSnapshot(path string) error {
	var snap serviceSnapshot
	for _, tc := range []struct {
		alg string
		mk  func() *graph.Graph
		req QueryRequest
	}{
		{AlgMinCut, mincutGraph, mcReq},
		{AlgCC, ccGraph, ccReq},
	} {
		warm := bench(func(b *testing.B) { benchQueries(b, false, tc.mk, tc.req) })
		cold := bench(func(b *testing.B) { benchQueries(b, true, tc.mk, tc.req) })
		row := throughputRow{Algorithm: tc.alg, WarmNsOp: warm.NsPerOp(), ColdNsOp: cold.NsPerOp()}
		if row.WarmNsOp > 0 {
			row.Speedup = float64(row.ColdNsOp) / float64(row.WarmNsOp)
		}
		snap.Throughput = append(snap.Throughput, row)
	}
	snap.Scheduling = append(snap.Scheduling,
		scheduleRowOf("static", mincut.SchedStatic),
		scheduleRowOf("dynamic", mincut.SchedDynamic),
	)
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// TestMain writes BENCH_service.json and BENCH_planner.json whenever
// benchmarks were requested, mirroring the BSP and kernel suites, so
// CI's bench-smoke job archives the warm/cold throughput, the
// static/dynamic scheduling comparison, and the planner's portfolio
// evidence (kernel speedups, deterministic counts, prediction error).
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := writeServiceSnapshot("BENCH_service.json"); err != nil {
			fmt.Fprintln(os.Stderr, "service bench snapshot:", err)
			code = 1
		}
		if err := writePlannerSnapshot("BENCH_planner.json"); err != nil {
			fmt.Fprintln(os.Stderr, "planner bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}
