package service

import (
	"sync"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// buildPlan computes the snapshot-resident plan for one (graph, machine
// size): the sequential facts from PlanFacts, plus a *measured* cost
// table — the builder runs each cold collective a warm query will skip
// (connectivity check, edge count, edge replication, degree reduction,
// total weight) once on a real p-processor machine and reads its Stats,
// so SkipComm later reports exactly what the implementation would have
// charged, not a hand-derived formula. The build is pure overhead on the
// first query of a (version, p) pair and is amortized by every query
// after it.
func buildPlan(sg *StoredGraph, p int) (*graph.Plan, error) {
	pl := sg.Snap.PlanFacts()
	pl.Version = sg.Version
	pl.P = p

	edges := sg.Snap.Edges()
	n := sg.Snap.N()
	mach, err := acquireMachine(p)
	if err != nil {
		return nil, err
	}
	measure := func(body func(c *bsp.Comm, local []graph.Edge)) (graph.CollectiveCost, error) {
		st, err := mach.Run(func(c *bsp.Comm) {
			lo, hi := dist.BlockRange(len(edges), p, c.Rank())
			body(c, edges[lo:hi])
		})
		if err != nil {
			return graph.CollectiveCost{}, err
		}
		return graph.CollectiveCost{Collectives: st.Supersteps, Words: st.CommVolume}, nil
	}
	segments := []struct {
		cost *graph.CollectiveCost
		body func(c *bsp.Comm, local []graph.Edge)
	}{
		{&pl.CCCost, func(c *bsp.Comm, local []graph.Edge) {
			// The same stream a cold mincut query burns on its CC check; the
			// seed only perturbs the sampling rounds, so seed 1 is a faithful
			// cost proxy for any query seed.
			cc.Parallel(c, n, local, rng.New(1, uint32(c.Rank()), 0).Derive(0xc0), cc.Options{})
		}},
		{&pl.CountCost, func(c *bsp.Comm, local []graph.Edge) {
			dist.CountEdges(c, local)
		}},
		{&pl.GatherCost, func(c *bsp.Comm, local []graph.Edge) {
			dist.AllGatherEdges(c, local)
		}},
		{&pl.DegreeCost, func(c *bsp.Comm, local []graph.Edge) {
			deg := make([]uint64, n)
			for _, e := range local {
				deg[e.U] += e.W
				deg[e.V] += e.W
			}
			c.AllReduce(deg, bsp.OpSum)
		}},
		{&pl.WeightCost, func(c *bsp.Comm, local []graph.Edge) {
			dist.TotalWeight(c, local)
		}},
	}
	for _, seg := range segments {
		cost, err := measure(seg.body)
		if err != nil {
			// A failed measurement run may leave mailboxes mid-superstep;
			// drop the machine rather than pooling it.
			return nil, err
		}
		*seg.cost = cost
	}
	releaseMachine(mach)
	return pl, nil
}

// planKey identifies one plan cache entry: plans are per (graph name,
// machine size); the slot inside carries the version.
type planKey struct {
	name string
	p    int
}

// planSlot is one lazily-built plan. The sync.Once makes concurrent
// first queries of a (version, p) pair build exactly once — followers
// block on the build instead of duplicating it.
type planSlot struct {
	version uint64
	once    sync.Once
	plan    *graph.Plan
	err     error
}

// planFor returns the cached plan for (sg, p), building it on first use.
// A slot whose version differs from sg's (the graph was replaced and the
// eviction in Put already dropped the old slot, or this caller raced a
// replacement) is superseded under the lock, so queries against the new
// snapshot never see the old snapshot's facts. Returns (nil, nil) when
// sg is no longer the current registration — the caller degrades to the
// cold path rather than planning for a dead snapshot.
func (r *Registry) planFor(sg *StoredGraph, p int) (*graph.Plan, error) {
	key := planKey{name: sg.Name, p: p}
	r.mu.Lock()
	if r.plans == nil {
		r.plans = make(map[planKey]*planSlot)
	}
	slot := r.plans[key]
	if slot == nil || slot.version != sg.Version {
		if cur, ok := r.graphs[sg.Name]; !ok || cur.Version != sg.Version {
			r.mu.Unlock()
			return nil, nil
		}
		slot = &planSlot{version: sg.Version}
		r.plans[key] = slot
	}
	r.mu.Unlock()
	slot.once.Do(func() {
		slot.plan, slot.err = buildPlan(sg, p)
	})
	return slot.plan, slot.err
}

// evictPlansLocked drops every cached plan of name — all machine sizes.
// Callers hold r.mu. Registration replacement and deletion both route
// here, so a re-registered graph can never serve a stale plan.
func (r *Registry) evictPlansLocked(name string) {
	for k := range r.plans {
		if k.name == name {
			delete(r.plans, k)
		}
	}
}

// PlanCount returns the number of cached plans across all graphs and
// machine sizes — an observability gauge for /v1/stats.
func (r *Registry) PlanCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.plans)
}

// planFor resolves the plan a kernel execution should use: nil when
// plans are disabled or the build failed (both degrade the query to the
// full cold path — plans are an optimization, never a correctness
// dependency).
func (e *Engine) planFor(sg *StoredGraph, p int) *graph.Plan {
	if e.cfg.DisablePlans {
		return nil
	}
	pl, err := e.reg.planFor(sg, p)
	if err != nil {
		return nil
	}
	return pl
}
