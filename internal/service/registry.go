// Package service is the in-process graph-analytics serving layer: a
// graph registry holding immutable snapshots, a query engine dispatching
// onto the paper's kernels (connected components §3.2, approximate
// minimum cut §3.3, exact minimum cut §4), an LRU result cache keyed by
// (graph version, algorithm, parameters), and a bounded worker pool with
// admission control and singleflight-style coalescing of identical
// in-flight queries. cmd/camcd exposes it over HTTP.
package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound: the named graph is not registered (404).
	ErrNotFound = errors.New("service: graph not found")
	// ErrOverloaded: the scheduler queue is full; the request was shed
	// rather than growing the worker pool (429).
	ErrOverloaded = errors.New("service: overloaded, query rejected")
	// ErrDeadline: the per-request deadline passed before a result was
	// available (504).
	ErrDeadline = errors.New("service: deadline exceeded")
	// ErrBadRequest: invalid algorithm or parameters (400).
	ErrBadRequest = errors.New("service: bad request")
	// ErrClosed: the engine is shutting down (503).
	ErrClosed = errors.New("service: engine closed")
	// ErrCancelled: the kernel was cancelled mid-run — deadline fired or
	// every waiter abandoned the call — and no partial answer was
	// available (408).
	ErrCancelled = errors.New("service: query cancelled")
	// ErrFaulted: the kernel faulted (processor panic) and the bounded
	// retry failed too; the query may succeed if retried later (503).
	ErrFaulted = errors.New("service: query faulted")
	// ErrTransport: a peer worker connection was lost mid-run (or could
	// not be established) and the bounded retry failed too. Distinct from
	// ErrFaulted so operators can tell a sick fabric from a sick kernel,
	// but mapped the same way: 503 with Retry-After, never cached.
	ErrTransport = errors.New("service: transport failure")
)

// StoredGraph is one registered graph: an immutable snapshot plus
// registry identity. Re-registering under the same name bumps Version,
// which invalidates cache keys without any explicit cache flush.
type StoredGraph struct {
	Name    string
	Version uint64
	Snap    *graph.Snapshot
}

// Registry maps names to graph snapshots. It is safe for concurrent use.
// It also owns the plan cache (see plan.go): snapshot-resident query
// plans are keyed by (name, machine size) and live exactly as long as
// the registration they were built from.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*StoredGraph
	plans  map[planKey]*planSlot
	nextID uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{graphs: make(map[string]*StoredGraph)}
}

// Put registers (or replaces) a graph under name and returns its stored
// form. An empty name auto-generates one ("g1", "g2", ...). The graph is
// validated and snapshotted; the caller's graph may be mutated freely
// afterwards.
func (r *Registry) Put(name string, g *graph.Graph) (*StoredGraph, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadRequest)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	snap := g.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" {
		r.nextID++
		name = fmt.Sprintf("g%d", r.nextID)
	}
	version := uint64(1)
	if prev, ok := r.graphs[name]; ok {
		version = prev.Version + 1
	}
	sg := &StoredGraph{Name: name, Version: version, Snap: snap}
	r.graphs[name] = sg
	// Replacement invalidates the name's cached plans immediately — a
	// plan must never outlive the snapshot version it describes.
	r.evictPlansLocked(name)
	return sg, nil
}

// PutVersion registers g under name at an exact version — the
// re-replication primitive: a catch-up transfer must reproduce the
// leader's (name, version) identity bit-for-bit so cache keys and
// fingerprints agree across replicas, which Put's auto-increment cannot
// guarantee after a replica missed uploads while dead. A registration
// already at or past version is rejected (the replica is not behind;
// clobbering it would move version numbers backwards).
func (r *Registry) PutVersion(name string, version uint64, g *graph.Graph) (*StoredGraph, error) {
	if name == "" || version == 0 {
		return nil, fmt.Errorf("%w: PutVersion needs an explicit name and version", ErrBadRequest)
	}
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadRequest)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadRequest, err)
	}
	snap := g.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.graphs[name]; ok && prev.Version >= version {
		return nil, fmt.Errorf("%w: %q already at version %d (catch-up offered %d)",
			ErrBadRequest, name, prev.Version, version)
	}
	sg := &StoredGraph{Name: name, Version: version, Snap: snap}
	r.graphs[name] = sg
	r.evictPlansLocked(name)
	return sg, nil
}

// Get returns the graph registered under name.
func (r *Registry) Get(name string) (*StoredGraph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sg, ok := r.graphs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return sg, nil
}

// Delete removes the graph registered under name; it reports whether the
// name existed. Cached results for the deleted graph age out of the LRU.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.graphs[name]
	delete(r.graphs, name)
	r.evictPlansLocked(name)
	return ok
}

// List returns every registered graph, sorted by name — the catch-up
// protocol's inventory view (a rejoining replica diffs it against the
// leader's to find what it missed).
func (r *Registry) List() []*StoredGraph {
	r.mu.RLock()
	out := make([]*StoredGraph, 0, len(r.graphs))
	for _, sg := range r.graphs {
		out = append(out, sg)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.graphs)
}
