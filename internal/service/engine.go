package service

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/bsp"
	"repro/internal/faults"
	"repro/internal/mincut"
	"repro/internal/perfmodel"
	"repro/internal/planner"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config tunes an Engine. Zero values select the defaults noted on each
// field.
type Config struct {
	// Workers is the number of kernel-executing workers (default: CPUs,
	// max 4). Each worker runs one BSP machine at a time, so worker
	// count × MaxProcessors bounds total goroutine fan-out.
	Workers int
	// QueueBound is the admission-control queue capacity (default 64).
	// A query arriving to a full queue is rejected with ErrOverloaded;
	// the worker pool never grows.
	QueueBound int
	// CacheCapacity is the LRU result cache size in entries (default 128;
	// negative disables caching).
	CacheCapacity int
	// MaxProcessors caps the per-query BSP machine size (default: CPUs,
	// max 16).
	MaxProcessors int
	// DefaultTimeout bounds a query's queueing plus result wait when the
	// request does not set one (default 60s). MaxTimeout clamps
	// per-request overrides (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// BeforeExec, when non-nil, runs on the worker goroutine immediately
	// before each kernel execution. It exists for tests, which use it to
	// hold kernels at a gate and observe coalescing and admission
	// control deterministically. Leave nil in production.
	BeforeExec func(alg string)
	// Faults, when non-nil and enabled, injects deterministic faults
	// (panics, stalls, cancellations) into every kernel execution. Off by
	// default; see internal/faults.
	Faults *faults.Registry
	// DisablePlans turns off snapshot-resident query plans: every query
	// runs the full cold path (per-query connectivity check, edge count,
	// replication, and degree collectives). Plans are on by default; the
	// switch exists for A/B benchmarking and for tests that target the
	// cold path's exact superstep structure.
	DisablePlans bool
	// Executor, when non-nil, replaces in-process kernel execution: every
	// query runs through it at its fixed machine size (the shard tier
	// plugs its distributed TCP machine in here). Cache, coalescing,
	// admission control, and the retry policy are unchanged.
	Executor Executor
	// Planner selects the cost-model query planner mode: "off" (default
	// and any unparseable value) runs every query on the default kernel
	// at the heuristic p; "static" scores the kernel portfolio with
	// models fitted once at startup; "adaptive" additionally refits them
	// from live execution samples. Ignored when Executor is set (a
	// distributed machine's kernel and size are fixed by its worker
	// group).
	Planner string
	// PlannerModels, when non-nil, installs these fitted model constants
	// instead of running the startup calibration suite — deterministic
	// tests and benchmarks pin decisions with it.
	PlannerModels map[string]*perfmodel.Model
}

func (cfg *Config) defaults() {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
		if cfg.Workers > 4 {
			cfg.Workers = 4
		}
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = 64
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 128
	} else if cfg.CacheCapacity < 0 {
		cfg.CacheCapacity = 0
	}
	if cfg.MaxProcessors <= 0 {
		cfg.MaxProcessors = runtime.NumCPU()
		if cfg.MaxProcessors > 16 {
			cfg.MaxProcessors = 16
		}
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 60 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
}

// call is one scheduled kernel execution plus everyone waiting on it:
// the leader that enqueued it and any coalesced followers.
type call struct {
	key  string
	alg  string
	kern string // resolved portfolio kernel ("" = default path)
	sg   *StoredGraph
	p    int
	pr   params
	// dec is the planner decision that scheduled this call (nil when the
	// planner is off or the kernel was pinned by the request); pst/ppar
	// are the stats and params its prediction used, reused by the
	// post-execution Observe feedback.
	dec  *planner.Decision
	pst  planner.GraphStats
	ppar planner.Params

	// ctx carries the leader's deadline but not the leader's cancellation:
	// the call outlives any single waiter until either the deadline fires
	// or the last waiter abandons it (refs hits zero), at which point
	// cancel() propagates into the BSP machine via RunCtx.
	ctx    context.Context
	cancel context.CancelFunc

	done chan struct{} // closed when res/err are final
	res  *QueryResult
	err  error

	refs    int // waiters (leader included) still interested (guarded by engine mu)
	waiters int // coalesced followers currently waiting (guarded by engine mu)
}

// Reply is the engine's answer to one query.
type Reply struct {
	// Outcome is a trace.Outcome* constant: executed, cache_hit, or
	// coalesced.
	Outcome string
	Result  *QueryResult
	Latency time.Duration
}

// Engine is the query engine: registry + cache + bounded scheduler with
// coalescing, instrumented through a trace.Collector.
type Engine struct {
	cfg       Config
	reg       *Registry
	cache     *lruCache
	collector *trace.Collector
	planner   *planner.Planner // nil when planning is off
	started   time.Time

	mu       sync.Mutex
	inflight map[string]*call
	closed   bool

	jobs chan *call
	wg   sync.WaitGroup
}

// NewEngine starts an engine with cfg's worker pool running.
func NewEngine(cfg Config) *Engine {
	cfg.defaults()
	e := &Engine{
		cfg:       cfg,
		reg:       NewRegistry(),
		cache:     newLRUCache(cfg.CacheCapacity),
		collector: trace.NewCollector(),
		started:   time.Now(),
		inflight:  make(map[string]*call),
		jobs:      make(chan *call, cfg.QueueBound),
	}
	if mode, err := planner.ParseMode(cfg.Planner); err == nil && mode != planner.ModeOff && cfg.Executor == nil {
		pl := planner.New(mode)
		if cfg.PlannerModels != nil {
			for name, m := range cfg.PlannerModels {
				pl.SetModel(name, m)
			}
		} else if err := pl.CalibrateBuiltins(cfg.MaxProcessors); err != nil {
			// Partial calibration is usable: uncalibrated kernels are
			// skipped as candidates and decisions missing the default
			// model fall back (counted); the error itself is surfaced in
			// the stats snapshot, never swallowed.
			pl.SetCalibrationError(err)
		}
		e.planner = pl
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Registry exposes the engine's graph registry.
func (e *Engine) Registry() *Registry { return e.reg }

// Collector exposes the engine's metrics collector.
func (e *Engine) Collector() *trace.Collector { return e.collector }

// Planner exposes the engine's query planner (nil when planning is off).
func (e *Engine) Planner() *planner.Planner { return e.planner }

// Close shuts the engine down: new queries fail with ErrClosed, queued
// jobs drain, workers exit. It blocks until the pool is idle.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	close(e.jobs)
	e.mu.Unlock()
	e.wg.Wait()
}

// worker executes queued calls one at a time. Admission control is
// two-sided: the bounded queue sheds load at submission, and a job whose
// deadline passed (or whose waiters all left) while queued is dropped
// here without running — stale work must not occupy a worker.
func (e *Engine) worker() {
	defer e.wg.Done()
	for c := range e.jobs {
		e.serve(c)
	}
}

// serve runs one call to completion: execute, absorb a single transient
// fault with a jittered retry, classify the final error, and publish.
// Cancelled, faulted, and degraded results are never cached.
func (e *Engine) serve(c *call) {
	defer c.cancel()
	if err := c.ctx.Err(); err != nil {
		if errors.Is(err, context.Canceled) {
			c.err = fmt.Errorf("%w: abandoned while queued", ErrCancelled)
		} else {
			c.err = fmt.Errorf("%w: expired after queueing", ErrDeadline)
		}
	} else {
		c.res, c.err = e.attempt(c)
		if c.err != nil && !errors.Is(c.err, bsp.ErrCancelled) && c.ctx.Err() == nil {
			// One bounded retry for transient faults (a panicked processor,
			// an injected failure). The jittered backoff decorrelates
			// retries of coalesced call groups that faulted together.
			e.collector.Observe(trace.QuerySample{Algorithm: c.alg, Outcome: trace.OutcomeRetried})
			time.Sleep(time.Duration(2+rand.Intn(8)) * time.Millisecond)
			if c.ctx.Err() == nil {
				c.res, c.err = e.attempt(c)
			}
		}
		if c.err != nil {
			switch {
			case errors.Is(c.err, bsp.ErrCancelled):
				c.err = fmt.Errorf("%w: %w", ErrCancelled, c.err)
			case errors.Is(c.err, transport.ErrPeerLost):
				// A dead peer connection is a fabric problem, not a kernel
				// problem: distinct sentinel, same client contract as a fault
				// (503 + Retry-After, never cached).
				c.err = fmt.Errorf("%w: %w", ErrTransport, c.err)
			default:
				c.err = fmt.Errorf("%w: %w", ErrFaulted, c.err)
			}
		}
	}
	if c.err == nil && c.dec != nil {
		c.res.Kernel.PredictedMs = c.dec.PredictedMs
		if e.planner != nil && !c.res.Degraded {
			e.observePlanned(c)
		}
	}
	if c.err == nil && !c.res.Degraded {
		e.cache.put(c.key, c.res)
	}
	e.mu.Lock()
	if e.inflight[c.key] == c {
		delete(e.inflight, c.key)
	}
	e.mu.Unlock()
	close(c.done)
}

func (e *Engine) attempt(c *call) (*QueryResult, error) {
	if e.cfg.BeforeExec != nil {
		e.cfg.BeforeExec(c.alg)
	}
	if e.cfg.Executor != nil {
		return e.cfg.Executor.Execute(c.ctx, c.sg, c.alg, c.pr.export())
	}
	return executeKernel(c.ctx, c.sg, c.alg, c.kern, c.p, c.pr, e.planFor(c.sg, c.p), e.cfg.Faults)
}

// resolved is a query's execution shape after planning: which kernel at
// which machine size, plus the decision context the feedback loop needs.
type resolved struct {
	kern string
	p    int
	dec  *planner.Decision
	pst  planner.GraphStats
	ppar planner.Params
}

// decide resolves a query's kernel and machine size: an Executor's fixed
// worker group, a request-pinned kernel (validated), a planner decision,
// or the pre-portfolio default path — in that order.
func (e *Engine) decide(req *QueryRequest, sg *StoredGraph, pr params) (resolved, error) {
	rs := resolved{p: chooseP(sg.Snap.M(), req.Processors, e.cfg.MaxProcessors)}
	if e.cfg.Executor != nil {
		// A distributed machine's size is its worker-group size and its
		// kernel the default SPMD body every worker process runs;
		// per-query shapes don't apply.
		if req.Kernel != "" {
			return rs, fmt.Errorf("%w: kernel pinning is not supported on a distributed executor", ErrBadRequest)
		}
		rs.p = e.cfg.Executor.MachineP()
		return rs, nil
	}
	if req.Kernel != "" {
		k := planner.Lookup(req.Algorithm, req.Kernel)
		if k == nil {
			return rs, fmt.Errorf("%w: unknown kernel %q for algorithm %q", ErrBadRequest, req.Kernel, req.Algorithm)
		}
		if k.Shared {
			if req.Processors > 1 {
				return rs, fmt.Errorf("%w: kernel %q is shared-memory (p=1), processors=%d conflicts", ErrBadRequest, k.Name, req.Processors)
			}
			rs.p = 1
		}
		if k.MaxN > 0 && sg.Snap.N() > k.MaxN {
			return rs, fmt.Errorf("%w: kernel %q is bounded to n ≤ %d (graph has %d vertices)", ErrBadRequest, k.Name, k.MaxN, sg.Snap.N())
		}
		rs.kern = k.Name
		return rs, nil
	}
	if e.planner == nil || req.Algorithm == AlgApproxCut {
		return rs, nil // approxcut has no portfolio: always the default path
	}
	rs.pst = planner.StatsOf(sg.Snap)
	rs.ppar = plannerParams(req.Algorithm, sg, pr)
	dec := e.planner.Choose(req.Algorithm, rs.pst, rs.ppar, req.Processors, e.cfg.MaxProcessors)
	rs.dec = &dec
	if dec.Kernel != "" {
		rs.kern = dec.Kernel
	}
	if dec.P > 0 {
		rs.p = dec.P
	}
	return rs, nil
}

// observePlanned feeds one successful planned execution back into the
// planner: win/error accounting against the decision, and (in adaptive
// mode) a live sample for the chosen kernel's refit window. BSP kernels
// report their measured ledger features; shared kernels have no ledger,
// so they report the same formula features Choose predicts with — each
// model stays self-consistent with how it is queried.
func (e *Engine) observePlanned(c *call) {
	k := planner.Lookup(c.alg, c.kern)
	if k == nil {
		return
	}
	var s perfmodel.Sample
	if k.Shared {
		s = k.Cost(c.pst, 1, c.ppar)
	} else {
		s = perfmodel.Sample{
			Comp:       float64(c.res.Kernel.MaxOps),
			Volume:     float64(c.res.Kernel.CommVolume),
			Supersteps: float64(c.res.Kernel.Supersteps),
			P:          float64(c.res.Kernel.P),
		}
	}
	s.Time = c.res.Kernel.TimeMs / 1000
	e.planner.Observe(c.kern, s, c.dec)
}

// plannerParams resolves the per-query knobs the cost formulas consume:
// epsilon as normalized, and — for mincut — the trial count derived from
// (n, m, success probability) capped by the request, matching what
// mincut.Parallel will actually run.
func plannerParams(alg string, sg *StoredGraph, pr params) planner.Params {
	par := planner.Params{Epsilon: pr.epsilon}
	if alg == AlgMinCut {
		t := mincut.Trials(sg.Snap.N(), sg.Snap.M(), pr.successProb)
		if pr.maxTrials > 0 && t > pr.maxTrials {
			t = pr.maxTrials
		}
		par.Trials = t
	}
	return par
}

// Query answers one analytics request: cache lookup, coalescing with an
// identical in-flight query, or a scheduled kernel execution — in that
// order. It blocks until a result, the request deadline, or rejection.
func (e *Engine) Query(ctx context.Context, req QueryRequest) (*Reply, error) {
	start := time.Now()
	pr, err := normalize(&req)
	if err != nil {
		e.observeFailure(req.Algorithm, trace.OutcomeError, start)
		return nil, err
	}
	sg, err := e.reg.Get(req.Graph)
	if err != nil {
		e.observeFailure(req.Algorithm, trace.OutcomeError, start)
		return nil, err
	}
	rs, err := e.decide(&req, sg, pr)
	if err != nil {
		e.observeFailure(req.Algorithm, trace.OutcomeError, start)
		return nil, err
	}
	key := cacheKey(sg, req.Algorithm, rs.kern, rs.p, pr)

	timeout := e.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > e.cfg.MaxTimeout {
			timeout = e.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	deadline, _ := ctx.Deadline()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	// ① Coalesce onto an identical in-flight query: a thundering herd of
	// equal requests computes once. Checked before the cache so
	// followers never inflate the miss counter.
	if c, ok := e.inflight[key]; ok {
		c.refs++
		c.waiters++
		e.mu.Unlock()
		return e.wait(ctx, c, start, trace.OutcomeCoalesced, true)
	}
	// ② Cache.
	if !req.NoCache {
		if res := e.cache.get(key); res != nil {
			e.mu.Unlock()
			lat := time.Since(start)
			e.collector.Observe(trace.QuerySample{
				Algorithm: req.Algorithm,
				Outcome:   trace.OutcomeCacheHit,
				Latency:   lat,
				P:         res.Kernel.P,
			})
			return &Reply{Outcome: trace.OutcomeCacheHit, Result: res, Latency: lat}, nil
		}
	}
	// ③ Admission control: become the leader if the queue has room. The
	// call context inherits the leader's deadline but not its
	// cancellation (followers with later personal deadlines may still be
	// waiting after the leader gives up); refs hitting zero cancels it.
	callCtx, callCancel := context.WithDeadline(context.WithoutCancel(ctx), deadline)
	c := &call{
		key: key, alg: req.Algorithm, kern: rs.kern, sg: sg, p: rs.p, pr: pr,
		dec: rs.dec, pst: rs.pst, ppar: rs.ppar,
		ctx: callCtx, cancel: callCancel,
		done: make(chan struct{}), refs: 1,
	}
	depth := len(e.jobs)
	select {
	case e.jobs <- c:
		e.inflight[key] = c
		e.mu.Unlock()
	default:
		e.mu.Unlock()
		callCancel()
		e.collector.Observe(trace.QuerySample{
			Algorithm:  req.Algorithm,
			Outcome:    trace.OutcomeRejected,
			QueueDepth: depth,
		})
		return nil, fmt.Errorf("%w: queue full (%d queued, %d workers)",
			ErrOverloaded, depth, e.cfg.Workers)
	}
	return e.wait(ctx, c, start, trace.OutcomeExecuted, false)
}

// cancelGrace bounds how long a leader whose deadline fired keeps
// waiting for the call to publish: the call context shares the leader's
// deadline, so at this point the BSP machine is already being cancelled
// and unwinds within one superstep — usually milliseconds — carrying
// the degraded best-so-far answer the leader came for.
const cancelGrace = time.Second

// wait blocks for a call's completion or the caller's deadline and
// records the sample. Every waiter holds one ref; the last one out
// cancels the call (stopping a kernel nobody wants) and clears the
// in-flight entry so later identical queries start fresh.
func (e *Engine) wait(ctx context.Context, c *call, start time.Time, outcome string, follower bool) (*Reply, error) {
	defer func() {
		e.mu.Lock()
		c.refs--
		if follower {
			c.waiters--
		}
		last := c.refs == 0
		if last && e.inflight[c.key] == c {
			delete(e.inflight, c.key)
		}
		e.mu.Unlock()
		if last {
			c.cancel()
		}
	}()
	finished := false
	select {
	case <-c.done:
		finished = true
	case <-ctx.Done():
		if !follower {
			// The leader's deadline is the call's deadline: the kernel is
			// unwinding right now. Hold on briefly for the degraded
			// best-so-far result instead of discarding it. Followers skip
			// this — their personal deadline says nothing about the call.
			grace := time.NewTimer(cancelGrace)
			select {
			case <-c.done:
				finished = true
			case <-grace.C:
			}
			grace.Stop()
		}
	}
	if !finished {
		if errors.Is(ctx.Err(), context.Canceled) {
			e.observeFailure(c.alg, trace.OutcomeCancelled, start)
			return nil, fmt.Errorf("%w: %s on %q: caller gone", ErrCancelled, c.alg, c.sg.Name)
		}
		e.observeFailure(c.alg, trace.OutcomeExpired, start)
		return nil, fmt.Errorf("%w: %s on %q", ErrDeadline, c.alg, c.sg.Name)
	}
	lat := time.Since(start)
	if c.err != nil {
		// The resolving outcome surfaces identically to every waiter.
		out := trace.OutcomeError
		switch {
		case errors.Is(c.err, ErrDeadline):
			out = trace.OutcomeExpired
		case errors.Is(c.err, ErrCancelled):
			out = trace.OutcomeCancelled
		case errors.Is(c.err, ErrTransport):
			out = trace.OutcomeTransport
		case errors.Is(c.err, ErrFaulted):
			out = trace.OutcomeFaulted
		}
		e.observeFailure(c.alg, out, start)
		return nil, c.err
	}
	if c.res.Degraded && !follower {
		// The leader owns the degraded resolution; followers stay
		// "coalesced" (the result still carries Degraded for them).
		outcome = trace.OutcomeDegraded
	}
	sample := trace.QuerySample{
		Algorithm:  c.alg,
		Outcome:    outcome,
		Latency:    lat,
		QueueDepth: len(e.jobs),
	}
	if outcome == trace.OutcomeExecuted {
		sample.P = c.res.Kernel.P
		sample.Supersteps = c.res.Kernel.Supersteps
		sample.CommVolume = c.res.Kernel.CommVolume
		sample.AvoidedCollectives = c.res.Kernel.AvoidedCollectives
		sample.AvoidedCommVolume = c.res.Kernel.AvoidedCommVolume
		sample.Transport = c.res.Kernel.Transport
		sample.WireBytes = c.res.Kernel.WireBytes
		sample.WireRawBytes = c.res.Kernel.WireRawBytes
		sample.Kernel = c.res.Kernel.Kernel
		sample.PredictedMs = c.res.Kernel.PredictedMs
		sample.KernelTimeMs = c.res.Kernel.TimeMs
		sample.PlannerFallback = c.dec != nil && c.dec.Fallback
	}
	e.collector.Observe(sample)
	return &Reply{Outcome: outcome, Result: c.res, Latency: lat}, nil
}

func (e *Engine) observeFailure(alg, outcome string, start time.Time) {
	e.collector.Observe(trace.QuerySample{
		Algorithm: alg,
		Outcome:   outcome,
		Latency:   time.Since(start),
	})
}

// EngineStats is the live state served by /v1/stats: pool gauges, cache
// counters, and the collector's per-algorithm aggregates.
type EngineStats struct {
	UptimeMs         float64                 `json:"uptime_ms"`
	Graphs           int                     `json:"graphs"`
	Workers          int                     `json:"workers"`
	QueueDepth       int                     `json:"queue_depth"`
	QueueCapacity    int                     `json:"queue_capacity"`
	InflightCalls    int                     `json:"inflight_calls"`
	CoalescedWaiters int                     `json:"coalesced_waiters"`
	MaxProcessors    int                     `json:"max_processors"`
	Plans            int                     `json:"plans"`
	Cache            CacheStats              `json:"cache"`
	Queries          trace.CollectorSnapshot `json:"queries"`
	// Planner is the query planner's counters and fitted model constants;
	// absent when planning is off.
	Planner *planner.Snapshot `json:"planner,omitempty"`
	// Tenants is the per-tenant quota state when multi-tenant auth is
	// configured; the HTTP layer fills it in (the engine itself is
	// tenant-agnostic).
	Tenants []tenant.TenantSnapshot `json:"tenants,omitempty"`
	// Fleet is the shard worker's mesh liveness and catch-up state when
	// the process is part of a worker group; the HTTP layer fills it in
	// (the engine itself is fleet-agnostic).
	Fleet interface{} `json:"fleet,omitempty"`
}

// Stats snapshots the engine.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	inflight := len(e.inflight)
	waiters := 0
	for _, c := range e.inflight {
		waiters += c.waiters
	}
	e.mu.Unlock()
	var plSnap *planner.Snapshot
	if e.planner != nil {
		plSnap = e.planner.Snapshot()
	}
	return EngineStats{
		UptimeMs:         float64(time.Since(e.started)) / float64(time.Millisecond),
		Graphs:           e.reg.Len(),
		Workers:          e.cfg.Workers,
		QueueDepth:       len(e.jobs),
		QueueCapacity:    e.cfg.QueueBound,
		InflightCalls:    inflight,
		CoalescedWaiters: waiters,
		MaxProcessors:    e.cfg.MaxProcessors,
		Plans:            e.reg.PlanCount(),
		Cache:            e.cache.stats(),
		Queries:          e.collector.Snapshot(),
		Planner:          plSnap,
	}
}
