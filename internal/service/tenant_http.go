package service

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/tenant"
)

// TenantMiddleware enforces authentication and quotas in front of the
// /v1/* API. It is handler-agnostic — the same wrapper guards a
// single-process engine handler and the shard frontend's router — and
// it resolves rejections before the request reaches the engine, so a
// 401 or 429 is never cached, never coalesced, and never counted as a
// query in /v1/stats.
//
// Contract:
//
//   - /healthz, /readyz, and /metrics pass through unauthenticated
//     (probes and scrapers sit inside the trust boundary).
//   - Every other request needs "Authorization: Bearer <token>" naming
//     a configured tenant; otherwise 401 with WWW-Authenticate.
//   - /v1/query takes one QPS token and one concurrency slot, released
//     when the response is written. Over-quota → 429 + Retry-After.
//   - /v1/graphs (POST) requires an explicit ?name= and a
//     Content-Length, reserves the bytes and the graph slot up front,
//     and commits the reservation only when the upload is accepted
//     (201); any other status rolls it back.
func TenantMiddleware(reg *tenant.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz", "/metrics":
			next.ServeHTTP(w, r)
			return
		}
		tok := bearerToken(r)
		tn, err := reg.Authenticate(tok)
		if err != nil {
			w.Header().Set("WWW-Authenticate", `Bearer realm="camcd"`)
			writeError(w, http.StatusUnauthorized, err)
			return
		}
		switch {
		case r.URL.Path == "/v1/graphs" && r.Method == http.MethodPost:
			tenantUpload(tn, next, w, r)
		case r.URL.Path == "/v1/query" && r.Method == http.MethodPost:
			release, retry, err := tn.AcquireQuery()
			if err != nil {
				writeQuotaError(w, retry, err)
				return
			}
			defer release()
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
		return strings.TrimSpace(tok)
	}
	return ""
}

// writeQuotaError maps a quota rejection to 429 with a Retry-After
// rounded up to whole seconds (minimum 1 — the header has no
// sub-second form).
func writeQuotaError(w http.ResponseWriter, retry time.Duration, err error) {
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	writeError(w, http.StatusTooManyRequests, err)
}

// statusRecorder captures the downstream status so the upload
// reservation can be committed or rolled back.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func tenantUpload(tn *tenant.Tenant, next http.Handler, w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		// Auto-generated names would make per-tenant graph accounting
		// meaningless (and scatter identities across shard replicas).
		writeError(w, http.StatusBadRequest,
			errors.New("service: multi-tenant uploads require an explicit ?name="))
		return
	}
	if r.ContentLength < 0 {
		// Byte quotas are charged up front; a chunked body of unknown
		// length cannot be.
		writeError(w, http.StatusLengthRequired,
			errors.New("service: multi-tenant uploads require Content-Length"))
		return
	}
	res, retry, err := tn.ReserveUpload(name, r.ContentLength)
	if err != nil {
		writeQuotaError(w, retry, err)
		return
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	next.ServeHTTP(rec, r)
	if rec.status == http.StatusCreated {
		res.Commit()
	} else {
		res.Abort()
	}
}
