package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/trace"
)

// testGraph builds a random weighted graph plus a Hamiltonian cycle, so
// it is connected and min cut queries have a meaningful answer.
func testGraph(n, m int) *graph.Graph {
	g := gen.ErdosRenyiM(n, m, 7, gen.Config{MaxWeight: 4})
	for v := 0; v < n; v++ {
		g.AddEdge(int32(v), int32((v+1)%n), 1)
	}
	return g
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	t.Cleanup(e.Close)
	return e
}

func TestRegistryVersioning(t *testing.T) {
	r := NewRegistry()
	g := testGraph(50, 120)
	a, err := r.Put("web", g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 1 || a.Name != "web" {
		t.Fatalf("first put: %+v", a)
	}
	b, err := r.Put("web", g)
	if err != nil {
		t.Fatal(err)
	}
	if b.Version != 2 {
		t.Fatalf("re-put version = %d, want 2", b.Version)
	}
	got, err := r.Get("web")
	if err != nil || got.Version != 2 {
		t.Fatalf("get: %+v, %v", got, err)
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing graph error = %v", err)
	}
	// Auto-generated names.
	c, err := r.Put("", g)
	if err != nil || c.Name == "" {
		t.Fatalf("auto-name: %+v, %v", c, err)
	}
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	if !r.Delete("web") || r.Delete("web") {
		t.Error("delete semantics")
	}
	// Invalid graphs are rejected as bad requests.
	bad := &graph.Graph{N: 2, Edges: []graph.Edge{{U: 0, V: 5, W: 1}}}
	if _, err := r.Put("bad", bad); !errors.Is(err, ErrBadRequest) {
		t.Errorf("invalid graph error = %v", err)
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache(2)
	r1, r2, r3 := &QueryResult{Value: 1}, &QueryResult{Value: 2}, &QueryResult{Value: 3}
	c.put("a", r1)
	c.put("b", r2)
	if got := c.get("a"); got != r1 {
		t.Fatal("miss on fresh entry")
	}
	c.put("c", r3) // evicts b (LRU after a's promotion)
	if c.get("b") != nil {
		t.Error("evicted entry still served")
	}
	if c.get("a") != r1 || c.get("c") != r3 {
		t.Error("survivors lost")
	}
	st := c.stats()
	if st.Size != 2 || st.Evictions != 1 || st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Zero capacity stores nothing and never panics.
	z := newLRUCache(0)
	z.put("x", r1)
	if z.get("x") != nil {
		t.Error("zero-capacity cache stored an entry")
	}
}

func TestQueryAlgorithmsAgainstSequentialTruth(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, MaxProcessors: 4})
	g := testGraph(60, 150)
	if _, err := e.Registry().Put("g", g); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ccReply, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC})
	if err != nil {
		t.Fatal(err)
	}
	wantLabels, wantCount := graph.BuildCSR(g).ConnectedComponents()
	if ccReply.Result.Components != wantCount {
		t.Errorf("cc components = %d, want %d", ccReply.Result.Components, wantCount)
	}
	if len(ccReply.Result.Labels) != len(wantLabels) {
		t.Errorf("labels length = %d", len(ccReply.Result.Labels))
	}

	mcReply, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgMinCut})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CutValue(mcReply.Result.Side); got != mcReply.Result.Value {
		t.Errorf("mincut side inconsistent: claims %d, evaluates %d", mcReply.Result.Value, got)
	}

	acReply, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgApproxCut})
	if err != nil {
		t.Fatal(err)
	}
	if acReply.Result.Value == 0 {
		t.Error("approxcut estimated 0 for a connected graph")
	}
}

func TestQueryCacheAndVersionInvalidation(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 2})
	g := testGraph(40, 90)
	e.Registry().Put("g", g)

	ctx := context.Background()
	req := QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: 5}
	first, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Outcome != trace.OutcomeExecuted {
		t.Fatalf("first outcome = %s", first.Outcome)
	}
	second, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Outcome != trace.OutcomeCacheHit {
		t.Fatalf("second outcome = %s, want cache hit", second.Outcome)
	}
	if second.Result != first.Result {
		t.Error("cache returned a different result object")
	}
	// Different seed = different computation = miss.
	third, _ := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: 6})
	if third.Outcome != trace.OutcomeExecuted {
		t.Errorf("different-seed outcome = %s", third.Outcome)
	}
	// Replacing the graph bumps the version; the stale entry is unreachable.
	g2 := testGraph(40, 90)
	g2.AddEdge(0, 1, 9)
	e.Registry().Put("g", g2)
	fourth, err := e.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Outcome != trace.OutcomeExecuted {
		t.Errorf("post-replace outcome = %s, want executed", fourth.Outcome)
	}
	// NoCache bypasses the read path.
	fifth, _ := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: 5, NoCache: true})
	if fifth.Outcome != trace.OutcomeExecuted {
		t.Errorf("no_cache outcome = %s", fifth.Outcome)
	}
}

// TestThunderingHerdCoalesces is the tentpole acceptance test at engine
// level: 64 concurrent identical queries must trigger exactly one kernel
// execution — one leader, 63 coalesced followers.
func TestThunderingHerdCoalesces(t *testing.T) {
	gate := make(chan struct{})
	var execs int32
	var execMu sync.Mutex
	e := newTestEngine(t, Config{
		Workers:       2,
		QueueBound:    8,
		MaxProcessors: 2,
		BeforeExec: func(string) {
			execMu.Lock()
			execs++
			execMu.Unlock()
			<-gate
		},
	})
	e.Registry().Put("g", testGraph(64, 160))

	const N = 64
	req := QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: 3}
	var wg sync.WaitGroup
	outcomes := make([]string, N)
	errs := make([]error, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := e.Query(context.Background(), req)
			errs[i] = err
			if err == nil {
				outcomes[i] = reply.Outcome
			}
		}(i)
	}
	// Wait until the leader is at the gate and all followers joined.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := e.Stats()
		if st.CoalescedWaiters == N-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	counts := map[string]int{}
	for _, o := range outcomes {
		counts[o]++
	}
	if counts[trace.OutcomeExecuted] != 1 || counts[trace.OutcomeCoalesced] != N-1 {
		t.Fatalf("outcomes = %v, want 1 executed + %d coalesced", counts, N-1)
	}
	if execs != 1 {
		t.Fatalf("kernel executions = %d, want 1", execs)
	}
	st := e.Stats()
	if st.Queries.Totals.KernelExecutions != 1 || st.Queries.Totals.Coalesced != N-1 {
		t.Errorf("collector totals = %+v", st.Queries.Totals)
	}
	// The herd's result is now cached: one more identical query is a hit.
	reply, err := e.Query(context.Background(), req)
	if err != nil || reply.Outcome != trace.OutcomeCacheHit {
		t.Fatalf("post-herd query: %v, %v", reply, err)
	}
}

// TestAdmissionControlSheds verifies the bounded queue: with one worker
// held at the gate and a full queue, the next distinct query is rejected
// with ErrOverloaded instead of growing the pool.
func TestAdmissionControlSheds(t *testing.T) {
	gate := make(chan struct{})
	e := newTestEngine(t, Config{
		Workers:       1,
		QueueBound:    1,
		MaxProcessors: 1,
		BeforeExec:    func(string) { <-gate },
	})
	e.Registry().Put("g", testGraph(32, 80))

	type result struct {
		reply *Reply
		err   error
	}
	results := make([]chan result, 3)
	// Distinct seeds = distinct computations: no coalescing.
	for i := range results {
		results[i] = make(chan result, 1)
	}
	launch := func(i int, seed uint64) {
		go func() {
			r, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: seed})
			results[i] <- result{r, err}
		}()
	}
	// Query 0 occupies the worker (blocked at the gate).
	launch(0, 10)
	waitFor(t, func() bool { return e.Stats().InflightCalls == 1 && e.Stats().QueueDepth == 0 })
	// Query 1 occupies the single queue slot.
	launch(1, 11)
	waitFor(t, func() bool { return e.Stats().QueueDepth == 1 })
	// Query 2 exceeds the bound: shed, synchronously.
	launch(2, 12)
	r2 := <-results[2]
	if !errors.Is(r2.err, ErrOverloaded) {
		t.Fatalf("third query error = %v, want ErrOverloaded", r2.err)
	}
	if st := e.Stats(); st.Queries.Totals.Rejected != 1 {
		t.Errorf("rejected counter = %d", st.Queries.Totals.Rejected)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results[i]
		if r.err != nil {
			t.Fatalf("query %d: %v", i, r.err)
		}
	}
}

func TestQueryDeadline(t *testing.T) {
	gate := make(chan struct{})
	e := newTestEngine(t, Config{
		Workers:       1,
		QueueBound:    4,
		MaxProcessors: 1,
		BeforeExec:    func(string) { <-gate },
	})
	defer close(gate)
	e.Registry().Put("g", testGraph(32, 80))

	// Block the worker, then issue a short-deadline query that must
	// expire while queued.
	go e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: 1})
	waitFor(t, func() bool { return e.Stats().InflightCalls == 1 })
	_, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC, Seed: 2, TimeoutMillis: 30})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("error = %v, want ErrDeadline", err)
	}
	if st := e.Stats(); st.Queries.Totals.Expired == 0 {
		t.Errorf("expired counter = %+v", st.Queries.Totals)
	}
}

func TestQueryValidation(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	e.Registry().Put("g", testGraph(16, 30))
	ctx := context.Background()
	if _, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: "pagerank"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown algorithm error = %v", err)
	}
	if _, err := e.Query(ctx, QueryRequest{Graph: "missing", Algorithm: AlgCC}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing graph error = %v", err)
	}
	if _, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgMinCut, SuccessProb: 1.5}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("bad success_prob error = %v", err)
	}
	if _, err := e.Query(ctx, QueryRequest{Graph: "g", Algorithm: AlgCC, Processors: -1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative processors error = %v", err)
	}
}

func TestEngineClose(t *testing.T) {
	e := NewEngine(Config{Workers: 1})
	e.Registry().Put("g", testGraph(16, 30))
	e.Close()
	e.Close() // idempotent
	if _, err := e.Query(context.Background(), QueryRequest{Graph: "g", Algorithm: AlgCC}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close query error = %v", err)
	}
}

func TestDegenerateGraphs(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxProcessors: 4})
	ctx := context.Background()

	// Empty graph: zero vertices, zero edges.
	e.Registry().Put("empty", graph.New(0))
	r, err := e.Query(ctx, QueryRequest{Graph: "empty", Algorithm: AlgCC})
	if err != nil || r.Result.Components != 0 {
		t.Errorf("empty cc: %+v, %v", r, err)
	}

	// Edgeless graph with explicit oversized p: trailing ranks hold
	// nothing, kernels must still converge.
	e.Registry().Put("isolated", graph.New(5))
	r, err = e.Query(ctx, QueryRequest{Graph: "isolated", Algorithm: AlgCC, Processors: 4})
	if err != nil || r.Result.Components != 5 {
		t.Errorf("isolated cc: %+v, %v", r, err)
	}
	mc, err := e.Query(ctx, QueryRequest{Graph: "isolated", Algorithm: AlgMinCut, Processors: 4})
	if err != nil || mc.Result.Value != 0 {
		t.Errorf("disconnected mincut: %+v, %v", mc, err)
	}
	ac, err := e.Query(ctx, QueryRequest{Graph: "isolated", Algorithm: AlgApproxCut})
	if err != nil || ac.Result.Value != 0 {
		t.Errorf("disconnected approxcut: %+v, %v", ac, err)
	}

	// Single vertex.
	e.Registry().Put("one", graph.New(1))
	r, err = e.Query(ctx, QueryRequest{Graph: "one", Algorithm: AlgMinCut})
	if err != nil || r.Result.Value != 0 {
		t.Errorf("single-vertex mincut: %+v, %v", r, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// Exercise the cache key for obvious collisions across parameter axes.
func TestCacheKeyDistinct(t *testing.T) {
	g := testGraph(16, 30)
	sg, _ := NewRegistry().Put("g", g)
	base, _ := normalize(&QueryRequest{Graph: "g", Algorithm: AlgCC})
	keys := map[string]string{}
	add := func(desc, k string) {
		if prev, ok := keys[k]; ok {
			t.Errorf("key collision: %s vs %s (%s)", desc, prev, k)
		}
		keys[k] = desc
	}
	add("base", cacheKey(sg, AlgCC, "", 2, base))
	add("other alg", cacheKey(sg, AlgMinCut, "", 2, base))
	add("other p", cacheKey(sg, AlgCC, "", 4, base))
	seeded := base
	seeded.seed = 99
	add("other seed", cacheKey(sg, AlgCC, "", 2, seeded))
	eps := base
	eps.epsilon = 1.0
	add("other epsilon", cacheKey(sg, AlgCC, "", 2, eps))
	sg2 := &StoredGraph{Name: sg.Name, Version: sg.Version + 1, Snap: sg.Snap}
	add("other version", cacheKey(sg2, AlgCC, "", 2, base))
	add("other kernel", cacheKey(sg, AlgCC, "lowround", 2, base))
	if len(keys) != 7 {
		t.Errorf("expected 7 distinct keys, got %d", len(keys))
	}
	for k := range keys {
		if !strings.Contains(k, "cc") && !strings.Contains(k, "mincut") {
			t.Errorf("key %q missing algorithm", k)
		}
	}
}
