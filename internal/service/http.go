package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/graph"
	"repro/internal/tenant"
)

// NewHandler builds the camcd HTTP API over an engine:
//
//	POST /v1/graphs?name=NAME&format=edgelist|snap  — register a graph (body: text)
//	GET  /v1/graphs                                 — list graphs (name, version, fingerprint)
//	POST /v1/query                                  — run cc | mincut | approxcut
//	GET  /v1/stats                                  — pool, cache, and query metrics
//	GET  /metrics                                   — Prometheus exposition
//	GET  /healthz                                   — liveness
//	GET  /readyz                                    — readiness (mesh + catch-up state)
//
// Error mapping: malformed input and bad parameters → 400, missing or
// unknown API token (multi-tenant mode) → 401, unknown graph
// → 404, oversized body → 413, shed load or an exhausted tenant quota
// → 429 (with Retry-After), cancelled with nothing to show → 408,
// per-request deadline (queue
// expiry) → 504, faulted kernel or lost worker connection → 503 (with
// Retry-After), engine
// shutdown → 503, anything else → 500. A deadline-cancelled kernel that
// checkpointed progress is not an error: it returns 200 with
// "degraded": true, the achieved success probability, and a
// retry_after_ms hint.
func NewHandler(e *Engine) http.Handler {
	return NewHandlerOpts(e, HandlerOptions{})
}

// HandlerOptions tunes the HTTP layer beyond the engine defaults.
type HandlerOptions struct {
	// Tenants, when non-nil, turns on multi-tenant mode: every /v1/*
	// request must carry a configured API token (Authorization: Bearer)
	// and is admitted against the tenant's quotas. /healthz and /metrics
	// stay unauthenticated, and the tenant quota state is embedded in
	// /v1/stats and exported as camc_tenant_* metrics.
	Tenants *tenant.Registry
	// Ready, when non-nil, backs /readyz: a nil return is 200 "ready", an
	// error is 503 with the reason — distinct from /healthz (liveness)
	// so an orchestrator can keep a catching-up process alive without
	// routing queries to it. A nil Ready makes /readyz always ready.
	Ready func() error
	// Health, when non-nil, backs /healthz instead of the static "ok": a
	// nil return is 200, an error 503 — the worker wires this to mesh
	// connectivity so a process whose every peer is unreachable reports
	// itself dead instead of lying to the prober.
	Health func() error
	// Fleet, when non-nil, is embedded under "fleet" in /v1/stats — the
	// shard worker exposes its mesh liveness and catch-up state here.
	Fleet func() interface{}
	// ExtraMetrics, when non-nil, is appended to the /metrics exposition
	// (the shard worker's camc_fleet_* families).
	ExtraMetrics func(io.Writer)
}

// NewHandlerOpts is NewHandler with options.
func NewHandlerOpts(e *Engine, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			handleUpload(e, w, r)
		case http.MethodGet:
			handleList(e, w)
		default:
			writeError(w, http.StatusMethodNotAllowed, errors.New("GET or POST only"))
		}
	})
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
			return
		}
		handleQuery(e, w, r)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := e.Stats()
		if opts.Tenants != nil {
			st.Tenants = opts.Tenants.Snapshot()
		}
		if opts.Fleet != nil {
			st.Fleet = opts.Fleet()
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/metrics", handleMetrics(e, opts.Tenants, opts.ExtraMetrics))
	mux.HandleFunc("/healthz", probeEndpoint(opts.Health, "ok"))
	mux.HandleFunc("/readyz", probeEndpoint(opts.Ready, "ready"))
	if opts.Tenants != nil {
		return TenantMiddleware(opts.Tenants, mux)
	}
	return mux
}

// probeEndpoint builds a health/readiness handler over an optional
// check: nil check or nil error → 200 okBody, error → 503 + reason.
func probeEndpoint(check func() error, okBody string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		fmt.Fprintln(w, okBody)
	}
}

// maxUploadBytes bounds graph upload bodies (64 MiB — far above the
// laptop-scale workloads, far below a memory-exhaustion vector).
const maxUploadBytes = 64 << 20

// GraphInfo is the upload response.
type GraphInfo struct {
	Name        string `json:"name"`
	Version     uint64 `json:"version"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	TotalWeight uint64 `json:"total_weight"`
	Fingerprint string `json:"fingerprint"`
}

func infoOf(sg *StoredGraph) GraphInfo {
	return GraphInfo{
		Name:        sg.Name,
		Version:     sg.Version,
		N:           sg.Snap.N(),
		M:           sg.Snap.M(),
		TotalWeight: sg.Snap.TotalWeight(),
		Fingerprint: fmt.Sprintf("%016x", sg.Snap.Fingerprint()),
	}
}

func handleUpload(e *Engine, w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	defer io.Copy(io.Discard, body)

	var (
		g   *graph.Graph
		err error
	)
	switch format := r.URL.Query().Get("format"); format {
	case "", "edgelist":
		g, err = graph.ReadEdgeList(body)
	case "snap":
		g, err = graph.ReadSNAP(body)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want edgelist|snap)", format))
		return
	}
	if err != nil {
		// The 400-vs-500 split rides on the loader's wrapped errors:
		// caller-supplied garbage is 400, transport failures are 500.
		status := http.StatusInternalServerError
		if errors.Is(err, graph.ErrMalformed) {
			status = http.StatusBadRequest
		}
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, err)
		return
	}
	sg, err := e.Registry().Put(r.URL.Query().Get("name"), g)
	if err != nil {
		writeError(w, statusOf(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, infoOf(sg))
}

// handleList writes the registry inventory — the view a rejoining
// replica (or an operator checking re-replication) diffs against a
// peer's: fingerprints prove the catch-up transfer was byte-identical.
func handleList(e *Engine, w http.ResponseWriter) {
	stored := e.Registry().List()
	infos := make([]GraphInfo, len(stored))
	for i, sg := range stored {
		infos[i] = infoOf(sg)
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"graphs": infos})
}

// QueryResponse is the wire form of a query result. Labels and Side are
// present only when the request opted in.
type QueryResponse struct {
	Graph      string      `json:"graph"`
	Version    uint64      `json:"version"`
	Algorithm  string      `json:"algorithm"`
	Outcome    string      `json:"outcome"` // executed | cache_hit | coalesced | degraded
	LatencyMs  float64     `json:"latency_ms"`
	Value      *uint64     `json:"value,omitempty"`      // mincut, approxcut
	Components *int        `json:"components,omitempty"` // cc
	Iterations int         `json:"iterations,omitempty"`
	Trials     int         `json:"trials,omitempty"`
	Labels     []int32     `json:"labels,omitempty"`
	Side       []int32     `json:"side,omitempty"` // smaller shore of the cut
	Kernel     KernelStats `json:"kernel"`
	// Degraded marks a best-so-far answer from a deadline-cancelled run;
	// AchievedSuccessProb is the success probability the completed trials
	// reached (mincut), RetryAfterMs how much longer the full computation
	// was projected to need.
	Degraded            bool    `json:"degraded,omitempty"`
	AchievedSuccessProb float64 `json:"achieved_success_prob,omitempty"`
	RetryAfterMs        int64   `json:"retry_after_ms,omitempty"`
}

func handleQuery(e *Engine, w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("query body over %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query body: %w", err))
		return
	}
	reply, err := e.Query(r.Context(), req)
	if err != nil {
		status := statusOf(err)
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	res := reply.Result
	resp := QueryResponse{
		Graph:               res.Graph,
		Version:             res.Version,
		Algorithm:           res.Algorithm,
		Outcome:             reply.Outcome,
		LatencyMs:           float64(reply.Latency.Microseconds()) / 1e3,
		Iterations:          res.Iterations,
		Trials:              res.Trials,
		Kernel:              res.Kernel,
		Degraded:            res.Degraded,
		AchievedSuccessProb: res.AchievedProb,
		RetryAfterMs:        res.RetryAfterMs,
	}
	switch res.Algorithm {
	case AlgCC:
		resp.Components = &res.Components
		if req.IncludeLabels {
			resp.Labels = res.Labels
		}
	case AlgMinCut:
		resp.Value = &res.Value
		if req.IncludeSide {
			resp.Side = sideVertices(res.Side)
		}
	case AlgApproxCut:
		resp.Value = &res.Value
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusOf maps engine sentinel errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest), errors.Is(err, graph.ErrMalformed):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCancelled):
		return http.StatusRequestTimeout
	case errors.Is(err, ErrFaulted), errors.Is(err, ErrTransport), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// An encode failure here means the client went away; there is no
	// useful recovery once the header is written.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
