package service

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity LRU map from query key to query result.
// Keys embed the graph's (name, version, fingerprint), so replacing a
// graph naturally strands the old entries until the LRU evicts them —
// stale results are unreachable, never served.
type lruCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	res *QueryResult
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached result for key, promoting it to most recently
// used, or nil on a miss. Hit/miss counters update accordingly.
func (c *lruCache) get(key string) *QueryResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put inserts (or refreshes) a result, evicting the least recently used
// entries beyond capacity. A zero-capacity cache stores nothing.
func (c *lruCache) put(key string, res *QueryResult) {
	if c.capacity == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func (c *lruCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
