// Package kernels holds the cross-cutting kernel benchmark suite and the
// BSP accounting regression tests. The sequential/local kernels under the
// BSP layer (radix edge sorts in internal/sort, the arena-backed
// Karger–Stein contraction in internal/mincut, dense remap tables in
// internal/graph) are pure drop-in replacements: they change constant
// factors, never communication. The tests here pin that claim — the
// superstep count, per-superstep h-relations, and communication volume of
// every algorithm must be byte-identical to the pre-overhaul values — and
// the benchmarks write BENCH_kernels.json so the kernel-level perf
// trajectory is machine-readable from this PR on.
package kernels
