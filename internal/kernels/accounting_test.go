package kernels

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"testing"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
)

// acctCase is one fixed (algorithm, input, machine size) configuration
// whose BSP accounting is pinned. The golden strings below were captured
// on the commit immediately before the kernel overhaul; the kernels may
// get arbitrarily faster, but supersteps, per-superstep h-relations, and
// communication volume must not move by a single word.
type acctCase struct {
	name string
	p    int
	run  func(c *bsp.Comm) uint64 // returns a result fingerprint from rank 0
}

// fingerprint renders the accounting of one run plus the rank-0 result
// word into a comparable string: supersteps, total volume, and an FNV-1a
// hash over the sorted per-superstep h-relations. The h-relations are
// hashed as a multiset, not a sequence: when Split sub-communicators fold
// into the parent, the fold order across groups depends on goroutine
// scheduling even though the h-relations themselves are deterministic.
func fingerprint(st *bsp.Stats, result uint64) string {
	hs := append([]uint64(nil), st.HRelations...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	h := fnv.New64a()
	var b [8]byte
	for _, r := range hs {
		for i := 0; i < 8; i++ {
			b[i] = byte(r >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("ss=%d vol=%d hrel=%016x res=%d",
		st.Supersteps, st.CommVolume, h.Sum64(), result)
}

func hashLabels(labels []int32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, l := range labels {
		for i := 0; i < 4; i++ {
			b[i] = byte(uint32(l) >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func hashEdges(es []graph.Edge) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, e := range es {
		k := uint64(uint32(e.U))<<32 | uint64(uint32(e.V))
		for i := 0; i < 8; i++ {
			b[i] = byte(k >> (8 * i))
		}
		h.Write(b[:])
		for i := 0; i < 8; i++ {
			b[i] = byte(e.W >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}

func acctCases() []acctCase {
	return acctCasesFor(1, 4, 8)
}

// acctCasesFor builds the pinned configurations at arbitrary machine
// sizes; the cross-transport tests reuse it at sizes that have no golden
// entry and instead compare two transports against each other.
func acctCasesFor(ps ...int) []acctCase {
	ccG := gen.ErdosRenyiM(400, 2000, 7, gen.Config{MaxWeight: 5})
	mcG := gen.ErdosRenyiM(96, 480, 11, gen.Config{MaxWeight: 4})
	sortG := gen.RMAT(10, 4096, 13, gen.Config{MaxWeight: 9})

	var cases []acctCase
	for _, p := range ps {
		p := p
		cases = append(cases,
			acctCase{name: fmt.Sprintf("cc/er400/p=%d", p), p: p, run: func(c *bsp.Comm) uint64 {
				lo, hi := dist.BlockRange(len(ccG.Edges), c.Size(), c.Rank())
				st := rng.New(21, uint32(c.Rank()), 0)
				r := cc.Parallel(c, ccG.N, ccG.Edges[lo:hi], st, cc.Options{})
				return hashLabels(r.Labels) ^ uint64(r.Count)
			}},
			acctCase{name: fmt.Sprintf("mincut/er96/p=%d", p), p: p, run: func(c *bsp.Comm) uint64 {
				lo, hi := dist.BlockRange(len(mcG.Edges), c.Size(), c.Rank())
				st := rng.New(23, uint32(c.Rank()), 0)
				r := mincut.Parallel(c, mcG.N, mcG.Edges[lo:hi], st, mincut.Options{
					SuccessProb: 0.9, MaxTrials: 4,
				})
				return r.Value
			}},
			acctCase{name: fmt.Sprintf("samplesort/rmat10/p=%d", p), p: p, run: func(c *bsp.Comm) uint64 {
				lo, hi := dist.BlockRange(len(sortG.Edges), c.Size(), c.Rank())
				local := make([]graph.Edge, hi-lo)
				for i, e := range sortG.Edges[lo:hi] {
					local[i] = e.Normalize()
				}
				sorted := dist.SampleSortEdges(c, local)
				// Combine before hashing: the old local sort was unstable, so
				// only the merged run (not the order of equal-key parallel
				// edges) is pinned.
				run := graph.CombineSorted(append([]graph.Edge(nil), sorted...))
				return hashEdges(run) ^ uint64(len(run))
			}},
			acctCase{name: fmt.Sprintf("lp/er400/p=%d", p), p: p, run: func(c *bsp.Comm) uint64 {
				lo, hi := dist.BlockRange(len(ccG.Edges), c.Size(), c.Rank())
				r := cc.LabelPropagation(c, ccG.N, ccG.Edges[lo:hi])
				return hashLabels(r.Labels) ^ uint64(r.Count)
			}},
		)
	}
	return cases
}

// acctGolden pins the pre-overhaul accounting; regenerate (only when a
// change is *meant* to alter communication) with:
//
//	ACCT_PRINT=1 go test -run TestAccountingRegression ./internal/kernels/ -v
var acctGolden = map[string]string{
	"cc/er400/p=1":          "ss=4 vol=6003 hrel=d4ac4c4536e3e4a9 res=12197969927824375844",
	"mincut/er96/p=1":       "ss=8 vol=2898 hrel=003de794ff56328b res=9",
	"samplesort/rmat10/p=1": "ss=0 vol=0 hrel=cbf29ce484222325 res=15746440966337804777",
	"lp/er400/p=1":          "ss=8 vol=1604 hrel=c8f1186edcac7d25 res=12197969927824375844",
	"cc/er400/p=4":          "ss=13 vol=7665 hrel=6940350ad4666991 res=12197969927824375844",
	"mincut/er96/p=4":       "ss=22 vol=3953 hrel=0c9070e8935078cf res=9",
	"samplesort/rmat10/p=4": "ss=5 vol=4578 hrel=7cab0b383bd917f2 res=11915066909254320792",
	"lp/er400/p=4":          "ss=24 vol=9696 hrel=dd7f5d868b298a05 res=12197969927824375844",
	"cc/er400/p=8":          "ss=13 vol=7729 hrel=fab16914f17ead79 res=12197969927824375844",
	"mincut/er96/p=8":       "ss=127 vol=29749 hrel=2cf7fc62961b2844 res=9",
	"samplesort/rmat10/p=8": "ss=5 vol=2064 hrel=0b88c594df445be2 res=7070751790068031407",
	"lp/er400/p=8":          "ss=24 vol=16192 hrel=c26fb758e15ab6e5 res=12197969927824375844",
}

// TestAccountingRegression runs every pinned configuration and compares
// supersteps / h-relation sequence / volume / result against the golden
// values captured before the kernel-layer overhaul.
func TestAccountingRegression(t *testing.T) {
	printMode := os.Getenv("ACCT_PRINT") != ""
	for _, tc := range acctCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var result uint64
			st, err := bsp.Run(tc.p, func(c *bsp.Comm) {
				r := tc.run(c)
				if c.Rank() == 0 {
					result = r
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			got := fingerprint(st, result)
			if printMode {
				fmt.Printf("\t%q: %q,\n", tc.name, got)
				return
			}
			want, ok := acctGolden[tc.name]
			if !ok {
				t.Fatalf("no golden accounting for %s (got %s)", tc.name, got)
			}
			if got != want {
				t.Errorf("accounting drifted:\n got %s\nwant %s", got, want)
			}
		})
	}
}
