package kernels

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
	"repro/internal/transport"
)

// runKernelOverTCP executes body once per rank over a loopback TCP mesh
// and returns rank 0's Stats and result word. Every rank is its own
// session on its own mesh, exactly as separate camcd -worker processes
// would be, minus the process boundary.
func runKernelOverTCP(t *testing.T, p int, epoch uint64, body func(c *bsp.Comm) uint64) (*bsp.Stats, uint64) {
	t.Helper()
	meshes, err := transport.NewLoopbackMeshes(p, 1)
	if err != nil {
		t.Fatalf("loopback meshes: %v", err)
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	var (
		wg     sync.WaitGroup
		result uint64
		stats  *bsp.Stats
	)
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess, err := meshes[r].NewSession(epoch, members)
			if err != nil {
				errs[r] = err
				return
			}
			defer sess.Close()
			m, err := bsp.NewMachineOver(sess.Root())
			if err != nil {
				errs[r] = err
				return
			}
			st, err := m.Run(func(c *bsp.Comm) {
				res := body(c)
				if c.Rank() == 0 {
					result = res
				}
			})
			if err != nil {
				errs[r] = err
				return
			}
			if r == 0 {
				stats = st
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("tcp rank %d: %v", r, err)
		}
	}
	return stats, result
}

// TestCrossTransportAccounting runs every pinned kernel configuration at
// p∈{2,4} over both transports and demands byte-identical fingerprints:
// same supersteps, same communication volume, same h-relation multiset,
// same result. There are no golden entries at p=2, so the two transports
// check each other; at p=4 the in-process side is additionally pinned by
// TestAccountingRegression, which transitively pins the TCP side too.
func TestCrossTransportAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-transport kernel matrix is slow under -short")
	}
	epoch := uint64(9000)
	for _, tc := range acctCasesFor(2, 4) {
		tc := tc
		epoch++
		ep := epoch
		t.Run(tc.name, func(t *testing.T) {
			var localResult uint64
			localStats, err := bsp.Run(tc.p, func(c *bsp.Comm) {
				r := tc.run(c)
				if c.Rank() == 0 {
					localResult = r
				}
			})
			if err != nil {
				t.Fatalf("local run: %v", err)
			}
			tcpStats, tcpResult := runKernelOverTCP(t, tc.p, ep, tc.run)

			localFP := fingerprint(localStats, localResult)
			tcpFP := fingerprint(tcpStats, tcpResult)
			if localFP != tcpFP {
				t.Errorf("transports disagree:\n local %s\n   tcp %s", localFP, tcpFP)
			}
			if tcpStats.Transport != transport.KindTCP {
				t.Errorf("tcp stats labelled %q", tcpStats.Transport)
			}
			if tcpStats.WireBytes == 0 && tcpStats.CommVolume > 0 {
				t.Errorf("tcp run moved %d words but accounted no wire bytes", tcpStats.CommVolume)
			}
		})
	}
}

// TestScheduleIndependenceTCP is the transport-level counterpart of
// mincut's TestScheduleIndependence: for a fixed seed the cut value and
// side must be bit-identical across p, schedule, *and* transport. The
// recursive contraction inside mincut exercises Split/Derive over the
// wire, which no other kernel path reaches.
func TestScheduleIndependenceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP schedule-independence matrix is slow under -short")
	}
	g := gen.ErdosRenyiM(64, 256, 3, gen.Config{MaxWeight: 4})
	if !g.IsConnected() {
		t.Fatal("test graph must be connected")
	}
	const seed = 7
	opts := func(s mincut.Schedule) mincut.Options {
		return mincut.Options{SuccessProb: 0.9, MaxTrials: 32, Schedule: s}
	}

	// Reference: single-rank, static schedule, in-process.
	var ref *mincut.CutResult
	_, err := bsp.Run(1, func(c *bsp.Comm) {
		st := rng.New(seed, uint32(c.Rank()), 0)
		ref = mincut.Parallel(c, g.N, g.Edges, st, opts(mincut.SchedStatic))
	})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if !ref.Check(g) {
		t.Fatal("reference partition inconsistent")
	}

	epoch := uint64(9500)
	for _, p := range []int{2, 4} {
		for _, sched := range []mincut.Schedule{mincut.SchedStatic, mincut.SchedDynamic} {
			epoch++
			var (
				mu  sync.Mutex
				got *mincut.CutResult
			)
			_, _ = runKernelOverTCP(t, p, epoch, func(c *bsp.Comm) uint64 {
				var in *graph.Graph
				if c.Rank() == 0 {
					in = g
				}
				n, local := dist.ScatterGraph(c, 0, in)
				st := rng.New(seed, uint32(c.Rank()), 0)
				r := mincut.Parallel(c, n, local, st, opts(sched))
				if c.Rank() == 0 {
					mu.Lock()
					got = r
					mu.Unlock()
				}
				return r.Value
			})
			if got == nil {
				t.Fatalf("p=%d sched=%d: no result from rank 0", p, sched)
			}
			if got.Value != ref.Value {
				t.Errorf("p=%d sched=%d over tcp: value %d, want %d", p, sched, got.Value, ref.Value)
			}
			if fmt.Sprint(got.Side) != fmt.Sprint(ref.Side) {
				t.Errorf("p=%d sched=%d over tcp: partition side differs from reference", p, sched)
			}
		}
	}
}
