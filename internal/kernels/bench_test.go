package kernels

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
	xsort "repro/internal/sort"
)

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

// benchSortEdges builds a skewed (RMAT) edge array: heavy parallel-edge
// runs and a narrow key range, the regime the distributed sample sort
// sees after a few contraction rounds.
func benchSortEdges(m int) []graph.Edge {
	g := gen.RMAT(14, m, 99, gen.Config{MaxWeight: 100})
	return g.Edges
}

func sortEdgesStd(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

func sortEdgesRadix(es []graph.Edge) {
	kvs := xsort.Borrow(len(es))
	for i, e := range es {
		kvs[i] = xsort.KV{K: xsort.Key(e.U, e.V), V: e.W}
	}
	scratch := xsort.Borrow(len(es))
	xsort.Pairs(kvs, scratch)
	for i, kv := range kvs {
		es[i] = graph.Edge{U: xsort.KeyU(kv.K), V: xsort.KeyV(kv.K), W: kv.V}
	}
	xsort.Release(scratch)
	xsort.Release(kvs)
}

// combineStd is the pre-radix CombineParallel: comparison sort of a
// normalized copy followed by an in-place merge.
func combineStd(edges []graph.Edge) []graph.Edge {
	es := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		if e.IsLoop() {
			continue
		}
		es = append(es, e.Normalize())
	}
	sortEdgesStd(es)
	return graph.CombineSorted(es)
}

// ---------------------------------------------------------------------------
// Pre-arena Karger–Stein replica (allocation baseline)
// ---------------------------------------------------------------------------

// cloneContractTo replays the pre-arena contraction kernel: every
// recursion node clones the O(n²) matrix and allocates its bookkeeping
// (alive set, degrees, union-find, mapping, compacted output) fresh. It
// exists only as the allocation baseline for the ks_trial benchmark.
func cloneContractTo(m *graph.Matrix, t int, st *rng.Stream) (*graph.Matrix, []int32) {
	n := m.N
	w := m.Clone()
	alive := make([]int32, n)
	for i := range alive {
		alive[i] = int32(i)
	}
	deg := make([]uint64, n)
	var total uint64
	for i := 0; i < n; i++ {
		deg[i] = w.WeightedDegree(int32(i))
		total += deg[i]
	}
	uf := graph.NewUnionFind(n)
	live := n
	for live > t && total > 0 {
		x := st.Uint64n(total)
		var u int32 = -1
		for _, a := range alive[:live] {
			if x < deg[a] {
				u = a
				break
			}
			x -= deg[a]
		}
		if u < 0 {
			break
		}
		y := st.Uint64n(deg[u])
		var v int32 = -1
		rowU := w.W[int(u)*n : (int(u)+1)*n]
		for _, b := range alive[:live] {
			if b == u {
				continue
			}
			if y < rowU[b] {
				v = b
				break
			}
			y -= rowU[b]
		}
		if v < 0 {
			break
		}
		wuv := rowU[v]
		rowV := w.W[int(v)*n : (int(v)+1)*n]
		for _, k := range alive[:live] {
			if k == u || k == v {
				continue
			}
			nw := rowU[k] + rowV[k]
			rowU[k] = nw
			w.W[int(k)*n+int(u)] = nw
			w.W[int(k)*n+int(v)] = 0
		}
		deg[u] = deg[u] + deg[v] - 2*wuv
		total -= 2 * wuv
		rowU[v] = 0
		w.W[int(v)*n+int(u)] = 0
		uf.Union(u, v)
		for idx, a := range alive[:live] {
			if a == v {
				alive[idx] = alive[live-1]
				live--
				break
			}
		}
	}
	mapping := make([]int32, n)
	classToLabel := make([]int32, n)
	for idx := 0; idx < live; idx++ {
		classToLabel[uf.Find(alive[idx])] = int32(idx)
	}
	for i := 0; i < n; i++ {
		mapping[i] = classToLabel[uf.Find(int32(i))]
	}
	out := graph.NewMatrix(live)
	for ai := 0; ai < live; ai++ {
		srcRow := w.W[int(alive[ai])*n : (int(alive[ai])+1)*n]
		dstRow := out.W[ai*live : (ai+1)*live]
		for aj := 0; aj < live; aj++ {
			dstRow[aj] = srcRow[alive[aj]]
		}
		dstRow[ai] = 0
	}
	return out, mapping
}

// cloneKSRecurse is the pre-arena recursion shape. The base case is a
// cheap stand-in (min singleton cut) because brute-force enumeration
// allocates identically in both variants; the comparison targets the
// recursion's per-node allocation pattern, which the matrix clones
// dominate.
func cloneKSRecurse(m *graph.Matrix, st *rng.Stream) (uint64, []bool) {
	n := m.N
	if n <= 9 {
		best, bi := uint64(math.MaxUint64), 0
		for i := 0; i < n; i++ {
			if d := m.WeightedDegree(int32(i)); d < best {
				best, bi = d, i
			}
		}
		side := make([]bool, n)
		if n > 0 {
			side[bi] = true
		}
		return best, side
	}
	t := int(math.Ceil(float64(n)/math.Sqrt2)) + 1
	if t >= n {
		t = n - 1
	}
	bestVal := uint64(math.MaxUint64)
	var bestSide []bool
	for branch := 0; branch < 2; branch++ {
		cm, mapping := cloneContractTo(m, t, st)
		val, side := cloneKSRecurse(cm, st)
		if val < bestVal {
			bestVal = val
			lifted := make([]bool, n)
			for v := 0; v < n; v++ {
				lifted[v] = side[mapping[v]]
			}
			bestSide = lifted
		}
	}
	return bestVal, bestSide
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

var sortSizes = []int{10_000, 100_000, 300_000}

func BenchmarkEdgeSortRadix(b *testing.B) {
	for _, m := range sortSizes {
		base := benchSortEdges(m)
		work := make([]graph.Edge, len(base))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortEdgesRadix(work)
			}
		})
	}
}

func BenchmarkEdgeSortStd(b *testing.B) {
	for _, m := range sortSizes {
		base := benchSortEdges(m)
		work := make([]graph.Edge, len(base))
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortEdgesStd(work)
			}
		})
	}
}

func BenchmarkCombineFused(b *testing.B) {
	base := benchSortEdges(100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graph.CombineParallel(base)
	}
}

func BenchmarkCombineStd(b *testing.B) {
	base := benchSortEdges(100_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		combineStd(base)
	}
}

// ksBenchGraph is connected (cycle + random edges) so the cut is
// meaningful and the recursion depth is representative.
func ksBenchGraph() *graph.Graph {
	g := gen.ErdosRenyiM(150, 1800, 7, gen.Config{MaxWeight: 6})
	for v := 0; v < g.N; v++ {
		g.AddEdge(int32(v), int32((v+1)%g.N), 1)
	}
	return g
}

func BenchmarkKSTrialArena(b *testing.B) {
	g := ksBenchGraph()
	st := rng.New(3, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mincut.KargerStein(g, st, 0.5)
	}
}

func BenchmarkKSTrialClone(b *testing.B) {
	g := ksBenchGraph()
	m := graph.MatrixFromGraph(g)
	trials := mincut.KargerSteinTrials(g.N, 0.5)
	st := rng.New(3, 0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < trials; k++ {
			cloneKSRecurse(m, st)
		}
	}
}

func BenchmarkRemapDense(b *testing.B) {
	const n = 1 << 16
	labels := make([]int32, n)
	st := rng.New(5, 0, 0)
	for i := range labels {
		labels[i] = int32(st.Uint64n(n / 64))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := graph.GetRemap(n)
		for _, l := range labels {
			r.Of(l)
		}
		graph.PutRemap(r)
	}
}

func BenchmarkRemapMap(b *testing.B) {
	const n = 1 << 16
	labels := make([]int32, n)
	st := rng.New(5, 0, 0)
	for i := range labels {
		labels[i] = int32(st.Uint64n(n / 64))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		remap := make(map[int32]int32)
		for _, l := range labels {
			if _, ok := remap[l]; !ok {
				remap[l] = int32(len(remap))
			}
		}
	}
}

// ---------------------------------------------------------------------------
// BENCH_kernels.json
// ---------------------------------------------------------------------------

type sortRow struct {
	M         int     `json:"m"`
	RadixNsOp int64   `json:"radix_ns_op"`
	StdNsOp   int64   `json:"std_ns_op"`
	Speedup   float64 `json:"speedup"`
}

type pairRow struct {
	NewNsOp      int64   `json:"new_ns_op"`
	BaseNsOp     int64   `json:"baseline_ns_op"`
	Speedup      float64 `json:"speedup"`
	NewAllocsOp  int64   `json:"new_allocs_op"`
	BaseAllocsOp int64   `json:"baseline_allocs_op"`
}

type ksRow struct {
	Trials           int     `json:"trials_per_op"`
	ArenaAllocsTrial float64 `json:"arena_allocs_per_trial"`
	CloneAllocsTrial float64 `json:"clone_allocs_per_trial"`
	AllocReduction   float64 `json:"alloc_reduction"`
	ArenaNsOp        int64   `json:"arena_ns_op"`
	CloneNsOp        int64   `json:"clone_ns_op"`
}

type kernelSnapshot struct {
	Name     string    `json:"name"`
	EdgeSort []sortRow `json:"edge_sort"`
	Combine  pairRow   `json:"combine"`
	KSTrial  ksRow     `json:"ks_trial"`
	Remap    pairRow   `json:"remap"`
}

func bench(f func(b *testing.B)) testing.BenchmarkResult { return testing.Benchmark(f) }

// writeKernelSnapshot re-times the kernel pairs head-to-head and writes
// the machine-readable comparison CI archives next to BENCH_bsp.json.
func writeKernelSnapshot(path string) error {
	snap := kernelSnapshot{Name: "kernel-bench"}

	for _, m := range sortSizes {
		base := benchSortEdges(m)
		work := make([]graph.Edge, len(base))
		radix := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortEdgesRadix(work)
			}
		})
		std := bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				sortEdgesStd(work)
			}
		})
		row := sortRow{M: m, RadixNsOp: radix.NsPerOp(), StdNsOp: std.NsPerOp()}
		if row.RadixNsOp > 0 {
			row.Speedup = float64(row.StdNsOp) / float64(row.RadixNsOp)
		}
		snap.EdgeSort = append(snap.EdgeSort, row)
	}

	combineIn := benchSortEdges(100_000)
	fused := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.CombineParallel(combineIn)
		}
	})
	std := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			combineStd(combineIn)
		}
	})
	snap.Combine = pairRow{
		NewNsOp: fused.NsPerOp(), BaseNsOp: std.NsPerOp(),
		NewAllocsOp: fused.AllocsPerOp(), BaseAllocsOp: std.AllocsPerOp(),
	}
	if snap.Combine.NewNsOp > 0 {
		snap.Combine.Speedup = float64(snap.Combine.BaseNsOp) / float64(snap.Combine.NewNsOp)
	}

	g := ksBenchGraph()
	trials := mincut.KargerSteinTrials(g.N, 0.5)
	stA := rng.New(3, 0, 0)
	arena := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mincut.KargerStein(g, stA, 0.5)
		}
	})
	mat := graph.MatrixFromGraph(g)
	stC := rng.New(3, 0, 0)
	clone := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := 0; k < trials; k++ {
				cloneKSRecurse(mat, stC)
			}
		}
	})
	snap.KSTrial = ksRow{
		Trials:           trials,
		ArenaAllocsTrial: float64(arena.AllocsPerOp()) / float64(trials),
		CloneAllocsTrial: float64(clone.AllocsPerOp()) / float64(trials),
		ArenaNsOp:        arena.NsPerOp(),
		CloneNsOp:        clone.NsPerOp(),
	}
	if snap.KSTrial.ArenaAllocsTrial > 0 {
		snap.KSTrial.AllocReduction = snap.KSTrial.CloneAllocsTrial / snap.KSTrial.ArenaAllocsTrial
	}

	const n = 1 << 16
	labels := make([]int32, n)
	stR := rng.New(5, 0, 0)
	for i := range labels {
		labels[i] = int32(stR.Uint64n(n / 64))
	}
	dense := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := graph.GetRemap(n)
			for _, l := range labels {
				r.Of(l)
			}
			graph.PutRemap(r)
		}
	})
	viaMap := bench(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			remap := make(map[int32]int32)
			for _, l := range labels {
				if _, ok := remap[l]; !ok {
					remap[l] = int32(len(remap))
				}
			}
		}
	})
	snap.Remap = pairRow{
		NewNsOp: dense.NsPerOp(), BaseNsOp: viaMap.NsPerOp(),
		NewAllocsOp: dense.AllocsPerOp(), BaseAllocsOp: viaMap.AllocsPerOp(),
	}
	if snap.Remap.NewNsOp > 0 {
		snap.Remap.Speedup = float64(snap.Remap.BaseNsOp) / float64(snap.Remap.NewNsOp)
	}

	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// TestMain writes BENCH_kernels.json whenever benchmarks were requested,
// mirroring the BSP suite's BENCH_bsp.json, so CI's bench-smoke job can
// archive the kernel comparison alongside it.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := writeKernelSnapshot("BENCH_kernels.json"); err != nil {
			fmt.Fprintln(os.Stderr, "kernel bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}
