package bsp_test

// Machine-reuse benchmarks and the BENCH_bsp.json snapshot. These use
// the Machine API (NewMachine + repeated Run), i.e. the serving layer's
// steady-state pattern, so they don't belong in the old-API-portable
// bench_test.go.

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/mincut"
	"repro/internal/rng"
	"repro/internal/trace"
)

// BenchmarkMachineReuseSync measures the superstep cost when the machine
// is pooled across runs: one NewMachine, b.N Run calls of 8 supersteps
// each. Steady state must not allocate per superstep.
func BenchmarkMachineReuseSync(b *testing.B) {
	const supersteps = 8
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m, err := bsp.NewMachine(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(func(c *bsp.Comm) {
					for s := 0; s < supersteps; s++ {
						c.Sync()
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelCCReuse is BenchmarkKernelCC with a pooled machine:
// the delta between the two is the spin-up cost the serving layer's
// machine pool eliminates.
func BenchmarkKernelCCReuse(b *testing.B) {
	g := benchGraph()
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			m, err := bsp.NewMachine(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(func(c *bsp.Comm) {
					lo, hi := dist.BlockRange(len(g.Edges), p, c.Rank())
					st := rng.New(11, uint32(c.Rank()), 0)
					r := cc.Parallel(c, g.N, g.Edges[lo:hi], st, cc.Options{})
					if c.Rank() == 0 && r.Count < 1 {
						b.Error("no components")
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestMain writes BENCH_bsp.json — a machine-readable snapshot of the
// end-to-end kernel costs — whenever benchmarks were requested, so CI's
// bench-smoke job can archive it next to the benchstat text output.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := writeBenchSnapshot("BENCH_bsp.json"); err != nil {
			fmt.Fprintln(os.Stderr, "bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchSnapshot(path string) error {
	g := benchGraph()
	snap := &trace.Snapshot{Name: "bsp-bench"}
	for _, alg := range []string{"cc", "mincut"} {
		for _, p := range benchPs {
			var result uint64
			start := time.Now()
			st, err := bsp.Run(p, func(c *bsp.Comm) {
				lo, hi := dist.BlockRange(len(g.Edges), p, c.Rank())
				stream := rng.New(11, uint32(c.Rank()), 0)
				switch alg {
				case "cc":
					r := cc.Parallel(c, g.N, g.Edges[lo:hi], stream, cc.Options{})
					if c.Rank() == 0 {
						result = uint64(r.Count)
					}
				case "mincut":
					r := mincut.Parallel(c, g.N, g.Edges[lo:hi], stream, mincut.Options{
						SuccessProb: 0.9, MaxTrials: 4,
					})
					if c.Rank() == 0 {
						result = r.Value
					}
				}
			})
			if err != nil {
				return err
			}
			snap.Records = append(snap.Records, &trace.Record{
				Input:      "er_600_3000",
				Seed:       11,
				N:          g.N,
				M:          len(g.Edges),
				Time:       time.Since(start),
				MPITime:    st.MaxCommTime,
				Algorithm:  alg,
				P:          p,
				Result:     result,
				Supersteps: st.Supersteps,
				CommVolume: st.CommVolume,
			})
		}
	}
	return trace.WriteSnapshotFile(path, snap)
}
