package bsp

import (
	"testing"
)

// TestSplitNested splits a communicator twice: p=8 into two quartets,
// each quartet into two pairs. Ranks, sizes, and collectives must hold at
// every level, and closing in reverse order must fold stats cleanly.
func TestSplitNested(t *testing.T) {
	const p = 8
	_, err := Run(p, func(c *Comm) {
		outer := c.Split(c.Rank()%2, c.Rank())
		if outer.Size() != p/2 {
			t.Errorf("rank %d: outer size = %d", c.Rank(), outer.Size())
		}
		inner := outer.Split(outer.Rank()%2, outer.Rank())
		if inner.Size() != p/4 {
			t.Errorf("rank %d: inner size = %d", c.Rank(), inner.Size())
		}
		// Within the innermost pair, exchange parent ranks and check the
		// membership the nesting implies: same color at both levels.
		parts := inner.AllGather([]uint64{uint64(c.Rank())})
		for _, part := range parts {
			peer := int(part[0])
			if peer%2 != c.Rank()%2 {
				t.Errorf("rank %d: inner peer %d from other outer group", c.Rank(), peer)
			}
		}
		sum := inner.AllReduce([]uint64{1}, OpSum)[0]
		if sum != uint64(inner.Size()) {
			t.Errorf("rank %d: inner sum = %d", c.Rank(), sum)
		}
		inner.Close()
		outer.Close()
		// The parent must still work after both folds.
		total := c.AllReduce([]uint64{1}, OpSum)[0]
		if total != p {
			t.Errorf("rank %d: parent sum = %d after splits", c.Rank(), total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitUnevenColors exercises groups of different sizes (1, 2, 4)
// from one split at p=7.
func TestSplitUnevenColors(t *testing.T) {
	const p = 7
	colorOf := func(rank int) int {
		switch {
		case rank == 0:
			return 0
		case rank <= 2:
			return 1
		default:
			return 2
		}
	}
	wantSize := []int{1, 2, 4}
	_, err := Run(p, func(c *Comm) {
		color := colorOf(c.Rank())
		sub := c.Split(color, -c.Rank()) // negative keys: reverse rank order
		if sub.Size() != wantSize[color] {
			t.Errorf("rank %d: group %d size = %d, want %d",
				c.Rank(), color, sub.Size(), wantSize[color])
		}
		parts := sub.AllGather([]uint64{uint64(c.Rank())})
		for i, part := range parts {
			peer := int(part[0])
			if colorOf(peer) != color {
				t.Errorf("rank %d: peer %d has color %d, want %d",
					c.Rank(), peer, colorOf(peer), color)
			}
			// Keys were -rank, so sub ranks run in descending parent rank.
			if i > 0 && peer >= int(parts[i-1][0]) {
				t.Errorf("rank %d: key ordering violated: %v", c.Rank(), parts)
			}
		}
		sub.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSendSyncStress hammers the mailbox path at p=16: every superstep
// each processor sends a distinct payload to every destination, syncs,
// and verifies every received word. Run under -race (make check) this
// doubles as the data-race stress for the sense-reversing barrier and
// the sender-owned staging rows.
func TestSendSyncStress(t *testing.T) {
	const p = 16
	const rounds = 40
	_, err := Run(p, func(c *Comm) {
		r := uint64(c.Rank())
		for i := uint64(0); i < rounds; i++ {
			for dst := 0; dst < p; dst++ {
				// Vary payload length per (src, dst, round) to exercise
				// buffer reuse with growth and shrinkage.
				k := int((r+uint64(dst)+i)%5) + 1
				payload := make([]uint64, k)
				for j := range payload {
					payload[j] = r<<32 | i<<8 | uint64(j)
				}
				c.Send(dst, payload)
			}
			c.Sync()
			for src := 0; src < p; src++ {
				in := c.Recv(src)
				k := int((uint64(src)+r+i)%5) + 1
				if len(in) != k {
					t.Errorf("rank %d round %d: from %d got %d words, want %d",
						c.Rank(), i, src, len(in), k)
					continue
				}
				for j, w := range in {
					if want := uint64(src)<<32 | i<<8 | uint64(j); w != want {
						t.Errorf("rank %d round %d: word %d from %d = %#x, want %#x",
							c.Rank(), i, j, src, w, want)
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSplitConcurrentBarriers runs four sub-communicators concurrently,
// each performing a different number of supersteps with ring traffic.
// Groups must not interfere: each group's barrier is its own machine.
func TestSplitConcurrentBarriers(t *testing.T) {
	const p = 16
	_, err := Run(p, func(c *Comm) {
		g := c.Rank() % 4
		sub := c.Split(g, c.Rank())
		steps := 8 + 4*g // groups desynchronize immediately
		dst := (sub.Rank() + 1) % sub.Size()
		src := (sub.Rank() + sub.Size() - 1) % sub.Size()
		for i := 0; i < steps; i++ {
			c.Ops(1)
			sub.Send(dst, []uint64{uint64(g), uint64(i), uint64(sub.Rank())})
			sub.Sync()
			in := sub.Recv(src)
			if int(in[0]) != g || int(in[1]) != i || int(in[2]) != src {
				t.Errorf("rank %d group %d step %d: got %v", c.Rank(), g, i, in)
			}
		}
		sub.Close()
		// Re-join: parent-wide all-reduce checks no one was left behind.
		if got := c.AllReduce([]uint64{1}, OpSum)[0]; got != p {
			t.Errorf("rank %d: rejoin sum = %d", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
