package bsp_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bsp"
	"repro/internal/transport"
)

// runOverTCP executes the same SPMD body once per worker "process" over
// a loopback mesh and returns each process's Stats (identical by
// construction when the run succeeds).
func runOverTCP(t *testing.T, p int, epoch uint64, body func(c *bsp.Comm)) ([]*bsp.Stats, []error) {
	t.Helper()
	meshes, err := transport.NewLoopbackMeshes(p, 1)
	if err != nil {
		t.Fatalf("loopback meshes: %v", err)
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	stats := make([]*bsp.Stats, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess, err := meshes[r].NewSession(epoch, members)
			if err != nil {
				errs[r] = err
				return
			}
			defer sess.Close()
			m, err := bsp.NewMachineOver(sess.Root())
			if err != nil {
				errs[r] = err
				return
			}
			stats[r], errs[r] = m.Run(body)
		}(r)
	}
	wg.Wait()
	return stats, errs
}

// collectiveWorkout exercises every collective plus Split; the returned
// word is a per-rank checksum every transport must reproduce.
func collectiveWorkout(c *bsp.Comm) uint64 {
	p := c.Size()
	r := c.Rank()
	var sum uint64

	bc := c.Broadcast(0, []uint64{7, 11, 13})
	for _, w := range bc {
		sum += w
	}
	parts := c.AllGather([]uint64{uint64(r + 1)})
	for _, part := range parts {
		for _, w := range part {
			sum += w * 3
		}
	}
	red := c.AllReduce([]uint64{uint64(r), 1}, bsp.OpSum)
	sum += red[0]*5 + red[1]

	// Large broadcast takes the two-phase path.
	big := make([]uint64, 4*p+3)
	for i := range big {
		big[i] = uint64(i * i)
	}
	got := c.Broadcast(p-1, big)
	for _, w := range got {
		sum += w
	}

	// Split into two groups, reduce inside each, rejoin.
	sub := c.Split(r%2, r)
	sr := sub.AllReduce([]uint64{uint64(r + 100)}, bsp.OpMax)
	sum += sr[0] * 7
	sub.Close()
	c.Barrier()

	all := c.AllToAll(func() [][]uint64 {
		out := make([][]uint64, p)
		for d := range out {
			out[d] = []uint64{sum % 1000, uint64(d)}
		}
		return out
	}())
	for _, part := range all {
		sum += part[0]
	}
	return sum
}

func TestMachineOverTCPMatchesLocal(t *testing.T) {
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			sums := make([]uint64, p)
			var mu sync.Mutex
			body := func(c *bsp.Comm) {
				s := collectiveWorkout(c)
				mu.Lock()
				sums[c.Rank()] = s
				mu.Unlock()
			}
			localStats, err := bsp.Run(p, body)
			if err != nil {
				t.Fatalf("local run: %v", err)
			}
			localSums := append([]uint64(nil), sums...)

			for i := range sums {
				sums[i] = 0
			}
			tcpStats, errs := runOverTCP(t, p, 1000+uint64(p), body)
			for r, err := range errs {
				if err != nil {
					t.Fatalf("tcp rank %d: %v", r, err)
				}
			}
			if fmt.Sprint(sums) != fmt.Sprint(localSums) {
				t.Fatalf("tcp results %v != local %v", sums, localSums)
			}
			for r, st := range tcpStats {
				if st.Supersteps != localStats.Supersteps || st.CommVolume != localStats.CommVolume {
					t.Fatalf("rank %d: tcp ss=%d vol=%d != local ss=%d vol=%d",
						r, st.Supersteps, st.CommVolume, localStats.Supersteps, localStats.CommVolume)
				}
				if st.Transport != transport.KindTCP {
					t.Fatalf("rank %d transport label %q", r, st.Transport)
				}
				if st.WireBytes == 0 {
					t.Fatalf("rank %d: no wire bytes accounted", r)
				}
			}
			if localStats.Transport != transport.KindLocal || localStats.WireBytes != 0 {
				t.Fatalf("local stats transport=%q wire=%d", localStats.Transport, localStats.WireBytes)
			}
		})
	}
}

func TestMachineOverTCPCancelPropagates(t *testing.T) {
	const p = 3
	meshes, err := transport.NewLoopbackMeshes(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	members := []int{0, 1, 2}
	cause := errors.New("operator pulled the plug")
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess, err := meshes[r].NewSession(2, members)
			if err != nil {
				errs[r] = err
				return
			}
			defer sess.Close()
			m, err := bsp.NewMachineOver(sess.Root())
			if err != nil {
				errs[r] = err
				return
			}
			if r == 0 {
				go func() {
					time.Sleep(20 * time.Millisecond)
					m.Cancel(cause)
				}()
			}
			_, errs[r] = m.Run(func(c *bsp.Comm) {
				for {
					c.Sync()
				}
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if !errors.Is(errs[r], bsp.ErrCancelled) {
			t.Fatalf("rank %d: %v, want ErrCancelled (cancel must cross the wire)", r, errs[r])
		}
	}
}
