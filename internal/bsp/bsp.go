// Package bsp implements a Bulk Synchronous Parallel runtime — the
// stand-in for MPI in this reproduction. A machine runs p virtual
// processors; computation proceeds in supersteps: processors compute
// locally, exchange word messages, and meet at a barrier (Sync).
// Messages sent in superstep s are readable only in superstep s+1,
// matching the BSP semantics the paper analyses (§2.1).
//
// The runtime doubles as the measurement apparatus: it accounts the number
// of supersteps, the communication volume of each superstep (the maximum
// number of unit-size words sent or received by any processor — an
// h-relation), and splits wall-clock time into "application" time and
// "communication" time (time spent inside Sync and collectives), which is
// the analogue of the paper's T_MPI metric.
//
// All message payloads are []uint64 words; vertex ids, weights, and labels
// all fit the word model of BSP.
//
// # Transports
//
// Message delivery lives behind internal/transport: the in-process
// fabric (goroutine mailboxes, the default built by NewMachine) and the
// TCP fabric (each rank a separate worker process, see NewMachineOver)
// implement the same superstep contract and derive identical ledgers.
//
// # Hot-path design
//
// Over the in-process fabric a steady-state superstep performs no
// allocation, no cross-goroutine locking, and no interface calls on the
// Send/Recv paths:
//
//   - Staging is sender-owned: each Comm caches its rank's staging row
//     (a contiguous slice of cells written only by this processor), so
//     Send is a plain append with no synchronization and no dynamic
//     dispatch. The cache is refreshed after every Sync, when the
//     fabric's mailbox swap changes the row's identity.
//   - Delivery is a pointer swap of the double-buffered mailboxes. After
//     the swap each processor clears its own staging row (p cells), so the
//     O(p²) cleanup is distributed instead of serialized on the last
//     arriver.
//   - The barrier is a two-phase sense-reversing barrier: arrival is an
//     atomic add on a cache-line-padded counter, release is a store to a
//     padded sense word that waiters observe with bounded spinning
//     (falling back to a parked wait only when oversubscribed). No mutex
//     is touched on the fast path.
//   - Per-processor send-volume counters are cache-line padded and owned
//     by the sender; the happens-before edges of the arrival counter make
//     them safely readable by the finalizing processor.
//   - Payload buffers handed to SendOwned recirculate: displaced mailbox
//     arrays feed a per-processor free list backed by a shared sync.Pool,
//     and Buffer hands them back to payload builders.
//
// Remote fabrics are driven through the transport.Endpoint interface
// instead — there the per-call indirection is noise against socket I/O.
package bsp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// CostModel emulates an interconnect in the classic BSP g/L sense: every
// superstep is charged h·WordTime + SyncLatency of *virtual*
// communication time, where h is the superstep's h-relation. Goroutines
// exchange words through shared memory at near-zero real cost, which
// hides exactly the costs this paper is about; the virtual clock makes
// them visible again at configurable interconnect speeds.
type CostModel struct {
	// WordTime is the per-word gap g (e.g. 4ns ≈ 2 GB/s per processor
	// for 8-byte words).
	WordTime time.Duration
	// SyncLatency is the per-superstep barrier latency L (e.g. 10µs for
	// a cluster interconnect).
	SyncLatency time.Duration
}

func (cm CostModel) enabled() bool { return cm.WordTime > 0 || cm.SyncLatency > 0 }

// Machine is one communicator's shared state: a handle on a transport
// fabric plus the processors (Comms) this process hosts. A Machine is
// sized once for p processors and may be reused across many Run calls
// when its fabric supports it (the serving layer pools in-process
// machines per request size); it must not run two bodies concurrently.
type Machine struct {
	p    int
	cost CostModel
	tag  uint64 // deterministic fabric tag (0 for root machines)

	tr transport.Transport
	// abortFlag aliases the fabric's flag: cancellation and failure
	// polling is one relaxed atomic load per superstep.
	abortFlag *atomic.Bool

	// faultHook, when non-nil, runs at every Sync entry with the calling
	// processor's (rank, superstep). It is the seam the fault-injection
	// registry (internal/faults) plugs into: a hook may panic (processor
	// failure), sleep (slow processor), or Cancel the machine. nil —
	// the production state — costs a single predictable branch.
	faultHook FaultHook

	// bufPool backs the per-Comm payload free lists (see Comm.Buffer).
	bufPool sync.Pool

	// registry for Split sub-communicators, keyed by superstep and color
	subsMu sync.Mutex
	subs   map[subKey]*subGroup

	comms []*Comm // indexed by rank; nil for ranks hosted elsewhere
}

type subKey struct {
	phase uint64 // the members' Comm sense at the split point
	color int
}

type subGroup struct {
	m       *Machine
	members []int // parent ranks in rank order
}

// NewMachine builds a reusable p-processor BSP machine over the
// in-process fabric. p must be positive.
func NewMachine(p int) (*Machine, error) {
	if p <= 0 {
		return nil, fmt.Errorf("bsp: machine with p=%d", p)
	}
	tr, err := transport.NewLocal(p)
	if err != nil {
		return nil, fmt.Errorf("bsp: %w", err)
	}
	return NewMachineOver(tr)
}

// NewMachineOver builds a machine over an existing transport fabric. The
// machine hosts Comms only for the fabric's local ranks — over TCP each
// worker process hosts exactly one. The fabric's abort, ledger, and cost
// configuration are owned by the machine from here on.
func NewMachineOver(tr transport.Transport) (*Machine, error) {
	p := tr.Size()
	if p <= 0 {
		return nil, fmt.Errorf("bsp: machine with p=%d", p)
	}
	m := &Machine{
		p:         p,
		tr:        tr,
		abortFlag: tr.AbortFlag(),
		subs:      make(map[subKey]*subGroup),
		comms:     make([]*Comm, p),
	}
	for _, r := range tr.LocalRanks() {
		c := &Comm{m: m, rank: r, ep: tr.Endpoint(r)}
		if lep, ok := c.ep.(*transport.LocalEndpoint); ok {
			c.lep = lep
			c.row = lep.StagingRow()
			c.inboxRef = lep.InboxRef()
			c.sentW = lep.SentCounter()
		}
		m.comms[r] = c
	}
	return m, nil
}

// P returns the machine's processor count.
func (m *Machine) P() int { return m.p }

// Transport returns the fabric kind label (transport.KindLocal,
// transport.KindTCP) the machine runs over.
func (m *Machine) Transport() string { return m.tr.Kind() }

// SetCost configures the emulated interconnect for subsequent Run calls.
// It must not be called while a body is running.
func (m *Machine) SetCost(cost CostModel) {
	m.cost = cost
	m.tr.SetCost(cost.WordTime, cost.SyncLatency)
}

// reset restores the machine to its pre-run state, keeping every mailbox
// cell's and scratch buffer's capacity for reuse. Single-run fabrics
// (TCP) refuse a second reset; the error surfaces from Run.
func (m *Machine) reset() error {
	if err := m.tr.Reset(); err != nil {
		return err
	}
	m.subsMu.Lock()
	for k := range m.subs {
		delete(m.subs, k)
	}
	m.subsMu.Unlock()
	for _, c := range m.comms {
		if c == nil {
			continue
		}
		c.sense = 0
		c.appTime = 0
		c.commTime = 0
		c.ops = 0
		c.skipColl = 0
		c.skipWords = 0
		c.lastMark = time.Time{}
		// The previous run may have swapped the double-buffered mailboxes
		// an odd number of times; re-fetch the cached identities.
		if c.lep != nil {
			c.row = c.lep.StagingRow()
			c.inboxRef = c.lep.InboxRef()
		}
	}
	return nil
}

// Comm is a processor's handle on a communicator. It is owned by exactly
// one goroutine and must not be shared.
type Comm struct {
	m     *Machine
	rank  int
	sense uint64 // local barrier sense (number of Syncs performed)

	// ep is the transport endpoint; lep is its concrete in-process form
	// when the fabric is local. row/inboxRef/sentW cache the local
	// fabric's current staging row, inbox, and send counter so the
	// Send/Recv hot paths involve no interface calls; they are refreshed
	// after every Sync (the mailbox swap changes their identities) and
	// are nil on remote fabrics.
	ep       transport.Endpoint
	lep      *transport.LocalEndpoint
	row      [][]uint64
	inboxRef [][][]uint64
	sentW    *uint64

	appTime  time.Duration
	commTime time.Duration
	lastMark time.Time
	ops      uint64

	// skipColl / skipWords count the collective exchanges (and the words
	// they would have moved) this processor declared avoided via SkipComm.
	skipColl  int
	skipWords uint64

	parent *Comm // non-nil for communicators created by Split

	// free is this processor's payload free list: mailbox arrays displaced
	// by SendOwned, handed back out by Buffer. Overflow spills to the
	// machine's sync.Pool.
	free [][]uint64

	sc collScratch // collective scratch buffers (collectives.go)
}

// Rank returns this processor's rank in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of processors in the communicator.
func (c *Comm) Size() int { return c.m.p }

// Ops adds n to this processor's local-operation counter, the unit of BSP
// computation time used for model validation.
func (c *Comm) Ops(n uint64) { c.ops += n }

// SkipComm records that the caller skipped `collectives` collective
// exchanges, totalling `words` words of communication volume, because a
// precomputed answer (e.g. a snapshot-resident plan) already supplied the
// result. This keeps the BSP ledger honest: a warm run's Stats report both
// what it actually communicated and what it avoided, so "zero volume" is
// distinguishable from "volume moved off the books". The skip decision is
// replicated — every rank of the communicator records the same skip — so
// Stats reports the per-rank maximum, not the sum.
func (c *Comm) SkipComm(collectives int, words uint64) {
	c.skipColl += collectives
	c.skipWords += words
}

// maxFree bounds the per-processor free list; beyond it, displaced
// buffers spill into the machine-wide sync.Pool.
const maxFree = 32

// Buffer returns a word slice of length n (uninitialized beyond reuse)
// for building payloads, drawn from the processor's free list or the
// machine's buffer pool. Hand the filled buffer to SendOwned to return
// its ownership to the runtime; buffers kept by the caller are simply
// garbage-collected.
func (c *Comm) Buffer(n int) []uint64 {
	if k := len(c.free); k > 0 {
		buf := c.free[k-1]
		c.free[k-1] = nil
		c.free = c.free[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	if v := c.m.bufPool.Get(); v != nil {
		buf := *(v.(*[]uint64))
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]uint64, n)
}

// recycle takes ownership of a displaced mailbox array.
func (c *Comm) recycle(buf []uint64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	if len(c.free) < maxFree {
		c.free = append(c.free, buf)
		return
	}
	c.m.bufPool.Put(&buf)
}

// Send queues words for delivery to processor `to` at the next Sync.
// The words are appended to any previously queued payload for the same
// destination within this superstep. The slice is copied.
func (c *Comm) Send(to int, words []uint64) {
	if row := c.row; row != nil {
		if to < 0 || to >= len(row) {
			panic(fmt.Sprintf("bsp: Send to rank %d of %d", to, len(row)))
		}
		row[to] = append(row[to], words...)
		*c.sentW += uint64(len(words))
		return
	}
	c.ep.Send(to, words)
}

// SendOwned queues words like Send but, when nothing is queued yet for
// the destination, adopts the slice instead of copying it. The caller
// transfers ownership: the slice must not be read or written afterwards.
// Use for freshly built payloads on hot paths (large gathers); the
// accounted communication volume is identical to Send's.
func (c *Comm) SendOwned(to int, words []uint64) {
	if row := c.row; row != nil {
		if to < 0 || to >= len(row) {
			panic(fmt.Sprintf("bsp: SendOwned to rank %d of %d", to, len(row)))
		}
		box := row[to]
		if len(box) == 0 {
			c.recycle(box)
			row[to] = words
		} else {
			row[to] = append(box, words...)
		}
		*c.sentW += uint64(len(words))
		return
	}
	c.ep.SendOwned(to, words)
}

// Recv returns the words delivered from processor `from` at the last Sync.
// The slice aliases runtime storage and is valid until the next Sync.
func (c *Comm) Recv(from int) []uint64 {
	if ib := c.inboxRef; ib != nil {
		return ib[from][c.rank]
	}
	return c.ep.Recv(from)
}

// RecvAll returns the per-source delivered payloads (index = source
// rank). The returned slice and its payloads alias runtime storage and
// are valid until the next Sync or RecvAll call.
func (c *Comm) RecvAll() [][]uint64 {
	return c.inboxViews()
}

// inboxViews assembles the per-source view of this processor's inbox
// column into per-Comm scratch (the mailbox is sender-major).
func (c *Comm) inboxViews() [][]uint64 {
	p := c.m.p
	if cap(c.sc.views) < p {
		c.sc.views = make([][]uint64, p)
	}
	c.sc.views = c.sc.views[:p]
	for src := 0; src < p; src++ {
		c.sc.views[src] = c.Recv(src)
	}
	return c.sc.views
}

// errAborted is panicked in workers once any worker has failed, so that
// barrier peers unwind instead of deadlocking.
type abortError struct{ cause error }

func (e abortError) Error() string { return "bsp: aborted: " + e.cause.Error() }

// ErrCancelled tags every run error caused by cooperative cancellation
// (Machine.Cancel or a RunCtx context firing), as opposed to a worker
// failure. Test with errors.Is(err, ErrCancelled).
var ErrCancelled = errors.New("bsp: run cancelled")

// cancelError carries the cancellation cause while matching ErrCancelled.
type cancelError struct{ cause error }

func (e cancelError) Error() string {
	if e.cause == nil {
		return ErrCancelled.Error()
	}
	return ErrCancelled.Error() + ": " + e.cause.Error()
}

func (e cancelError) Is(target error) bool {
	// transport.ErrCancelled too: the TCP fabric uses the match to flag
	// its abort frames as cancels rather than failures.
	return target == ErrCancelled || target == transport.ErrCancelled
}
func (e cancelError) Unwrap() error { return e.cause }

// FaultHook is an injection point called on every processor at Sync
// entry, before the superstep finalizes, with the caller's rank and
// 0-based superstep index (per communicator — Split children count from
// zero again). Hooks may panic, stall, or Cancel the machine; they must
// not send or receive, so accounting is unchanged by a hook that does
// not fire.
type FaultHook func(rank int, superstep uint64)

// SetFaultHook installs (or, with nil, removes) the machine's fault
// hook. It must be called while no body is running; Split sub-machines
// inherit the hook at creation.
func (m *Machine) SetFaultHook(h FaultHook) { m.faultHook = h }

// Cancel requests cooperative cancellation of the running body: every
// processor unwinds at its next cancellation point (Sync entry, barrier
// wait, or an explicit Aborting poll), including processors currently
// inside Split sub-machines. Run returns an error matching ErrCancelled
// and wrapping cause. Cancelling an idle machine is harmless — the next
// Run resets the flag. Over TCP the cancellation propagates to every
// peer worker process via the fabric's abort frames.
func (m *Machine) Cancel(cause error) {
	m.abort(cancelError{cause: cause})
}

// Aborting reports whether the machine is unwinding (cancellation or a
// failed peer). It is a single relaxed atomic load, cheap enough for
// kernels to poll inside compute-only phases — long trial loops with no
// intervening Sync — so cancellation latency stays bounded by one
// superstep even when a superstep contains heavy local work.
func (c *Comm) Aborting() bool { return c.m.abortFlag.Load() }

// Sync is the superstep barrier: it blocks until all processors arrive,
// then atomically delivers all queued messages. Time spent here is
// accounted as communication time.
func (c *Comm) Sync() {
	m := c.m
	start := time.Now()
	if !c.lastMark.IsZero() {
		c.appTime += start.Sub(c.lastMark)
	}
	if h := m.faultHook; h != nil {
		h(c.rank, c.sense)
	}
	if m.abortFlag.Load() {
		panic(abortError{m.abortCause()})
	}

	c.sense++
	if lep := c.lep; lep != nil {
		if err := lep.Exchange(); err != nil {
			panic(abortError{wrapAbort(err)})
		}
		// The exchange swapped the double-buffered mailboxes; refresh the
		// cached staging-row and inbox identities.
		c.row = lep.StagingRow()
		c.inboxRef = lep.InboxRef()
	} else if err := c.ep.Exchange(); err != nil {
		panic(abortError{wrapAbort(err)})
	}

	end := time.Now()
	c.commTime += end.Sub(start)
	c.lastMark = end
}

// wrapAbort rewraps a transport abort cause so the run error keeps the
// bsp cancellation contract: a peer process that aborted because of a
// cooperative cancel surfaces as ErrCancelled here too, not as a
// failure.
func wrapAbort(err error) error {
	if err == nil {
		return errors.New("bsp: aborted with no recorded cause")
	}
	var ra *transport.RemoteAbort
	if errors.As(err, &ra) && ra.Cancelled && !errors.Is(err, ErrCancelled) {
		return cancelError{cause: err}
	}
	return err
}

// abort marks the communicator failed and wakes all waiters. Any
// subsequent or pending Sync panics with the cause. The abort cascades
// into every live Split sub-machine: a processor blocked in a child
// barrier polls the *child's* flag, so without the cascade a failure (or
// cancellation) on the parent would strand siblings inside their groups.
// The cascade walks the split tree top-down; lock order is always
// parent.subsMu before the child's own state, so concurrent aborts
// cannot cycle.
func (m *Machine) abort(err error) {
	m.tr.Abort(err)
	m.subsMu.Lock()
	subs := make([]*Machine, 0, len(m.subs))
	for _, grp := range m.subs {
		subs = append(subs, grp.m)
	}
	m.subsMu.Unlock()
	for _, sm := range subs {
		sm.abort(err)
	}
}

func (m *Machine) abortCause() error {
	return wrapAbort(m.tr.Err())
}

// childTag derives the deterministic fabric tag for a Split group:
// every member mixes the same (parent tag, superstep sense, color), so
// over sockets all worker processes route the group's frames under the
// same id with no extra negotiation. splitmix64-style finalizer.
func childTag(parent, sense uint64, color int) uint64 {
	x := parent ^ 0x9e3779b97f4a7c15
	x ^= sense * 0xbf58476d1ce4e5b9
	x ^= uint64(int64(color)) * 0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Split partitions the communicator: processors passing the same color
// form a new communicator, ranked by (key, parent rank). It is a
// collective call — every processor must participate. The returned Comm
// shares cost accounting with nothing; its stats are folded back into the
// parent's worker stats because times accumulate on the same *Comm-owning
// goroutine via the returned child (the caller should use the child for
// all communication until done, then resume with the parent).
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) so everyone can compute group membership.
	payload := []uint64{uint64(int64(color)), uint64(int64(key))}
	for dst := 0; dst < c.m.p; dst++ {
		c.Send(dst, payload)
	}
	c.Sync()
	type member struct{ color, key, rank int }
	members := make([]member, c.m.p)
	for src := 0; src < c.m.p; src++ {
		w := c.Recv(src)
		members[src] = member{color: int(int64(w[0])), key: int(int64(w[1])), rank: src}
	}
	var mine []member
	for _, mm := range members {
		if mm.color == color {
			mine = append(mine, mm)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	newRank := -1
	parentRanks := make([]int, len(mine))
	for i, mm := range mine {
		parentRanks[i] = mm.rank
		if mm.rank == c.rank {
			newRank = i
		}
	}
	// Get or create the shared machine for this group; the derived fabric
	// inherits the parent's interconnect cost model. The registry key is
	// the members' barrier sense at this split point — identical across
	// members of a collective call, distinct across successive Splits
	// (each Split Syncs).
	m := c.m
	m.subsMu.Lock()
	key2 := subKey{phase: c.sense, color: color}
	grp, ok := m.subs[key2]
	if !ok {
		tr, err := m.tr.Derive(childTag(m.tag, c.sense, color), parentRanks)
		var sm *Machine
		if err == nil {
			sm, err = NewMachineOver(tr)
		}
		if err != nil {
			// Route the failure through the abort protocol instead of
			// panicking raw: sibling processors — including ones already
			// blocked inside other groups' sub-machine barriers — unwind
			// at their next cancellation point rather than deadlocking on
			// a group that never materialized.
			m.subsMu.Unlock()
			err = fmt.Errorf("bsp: split(color=%d): %w", color, err)
			m.abort(err)
			panic(abortError{err})
		}
		sm.cost = m.cost
		sm.tag = childTag(m.tag, c.sense, color)
		sm.faultHook = m.faultHook
		grp = &subGroup{m: sm, members: parentRanks}
		m.subs[key2] = grp
	}
	m.subsMu.Unlock()
	child := grp.m.comms[newRank]
	child.parent = c
	child.lastMark = time.Now()
	return child
}

// Close folds a split communicator's accumulated times and operation
// counts back into its parent, and (once per group, via the group's rank
// 0) folds the child fabric's superstep and volume accounting into the
// parent fabric. It must be called once per Split, after the last use of
// the child. Concurrent Closes at different nesting depths are safe; for
// the fold totals to be deterministic, a parent-communicator barrier (any
// collective) should separate nested children's Closes from the parent's
// own Close — the pattern the kernels follow naturally.
func (c *Comm) Close() {
	if c.parent == nil {
		return
	}
	c.parent.appTime += c.appTime
	c.parent.commTime += c.commTime
	c.parent.ops += c.ops
	c.parent.skipColl += c.skipColl
	c.parent.skipWords += c.skipWords
	c.parent.lastMark = time.Now()
	if c.rank == 0 {
		c.parent.m.tr.FoldChild(c.m.tr)
	}
}

// WorkerStats carries one processor's cost measurements.
type WorkerStats struct {
	Rank     int
	AppTime  time.Duration
	CommTime time.Duration
	Ops      uint64
}

// Stats summarizes one Run.
type Stats struct {
	P          int
	Supersteps int
	// Transport is the fabric kind the run executed over
	// (transport.KindLocal, transport.KindTCP).
	Transport string
	// CommVolume is the sum over supersteps of the largest number of words
	// sent or received by any processor (the BSP communication volume).
	CommVolume uint64
	// HRelations records each superstep's h-relation.
	HRelations []uint64
	// WireBytes counts real bytes moved over sockets during the run
	// (frame headers included); zero on the in-process fabric.
	WireBytes uint64
	// WireRawBytes counts what the same frames would have cost under
	// the raw (uncompressed) payload codec; the difference from
	// WireBytes is what the wire codecs saved. Zero on the in-process
	// fabric.
	WireRawBytes uint64
	// MaxAppTime / MaxCommTime are the per-run maxima over processors of
	// cumulative computation and communication (Sync) wall time, matching
	// the paper's "maximum among all participating processors" metric.
	// Over TCP they cover this process's locally hosted ranks.
	MaxAppTime  time.Duration
	MaxCommTime time.Duration
	// MaxOps is the maximum operation count over processors, the measured
	// analogue of BSP computation time.
	MaxOps  uint64
	Workers []WorkerStats
	// AvoidedCollectives / AvoidedCommVolume count the collective
	// exchanges (and the words they would have moved) that the kernels
	// skipped via Comm.SkipComm because precomputed state already held the
	// answer. They are maxima over processors: skips are replicated
	// decisions, so every rank records the same amounts.
	AvoidedCollectives int
	AvoidedCommVolume  uint64
	// SimCommTime is the virtual communication time Σ(h·g + L) accrued
	// under the run's CostModel (zero when no model was configured).
	SimCommTime time.Duration
}

// SimTotal returns the virtual-interconnect wall time estimate: real
// computation time plus simulated communication time.
func (s *Stats) SimTotal() time.Duration { return s.MaxAppTime + s.SimCommTime }

// SimCommFraction returns SimCommTime / SimTotal.
func (s *Stats) SimCommFraction() float64 {
	t := s.SimTotal()
	if t == 0 {
		return 0
	}
	return float64(s.SimCommTime) / float64(t)
}

// Total returns total wall time (app + comm maxima).
func (s *Stats) Total() time.Duration { return s.MaxAppTime + s.MaxCommTime }

// MaxHRelation returns the largest single-superstep h-relation of the
// run — the bottleneck superstep the BSP cost model charges g·h for.
func (s *Stats) MaxHRelation() uint64 {
	var max uint64
	for _, h := range s.HRelations {
		if h > max {
			max = h
		}
	}
	return max
}

// MeanHRelation returns the average per-superstep h-relation, or 0 for a
// run with no supersteps.
func (s *Stats) MeanHRelation() float64 {
	if s.Supersteps == 0 {
		return 0
	}
	return float64(s.CommVolume) / float64(s.Supersteps)
}

// CommFraction returns MaxCommTime / Total, the T_MPI/T ratio of Figure 1b.
func (s *Stats) CommFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.MaxCommTime) / float64(t)
}

// Run executes body on p virtual processors and returns the machine's cost
// statistics. If any processor panics, all are unwound and the first
// panic is returned as an error. p must be positive.
func Run(p int, body func(c *Comm)) (*Stats, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	return m.Run(body)
}

// RunWithCost is Run with an emulated interconnect: each superstep
// accrues h·WordTime + SyncLatency of virtual communication time,
// reported as Stats.SimCommTime.
func RunWithCost(p int, cost CostModel, body func(c *Comm)) (*Stats, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	m.SetCost(cost)
	return m.Run(body)
}

// RunCtx is Run bound to a context: when ctx is cancelled or its
// deadline fires, the machine is Cancelled and every processor unwinds
// at its next cancellation point. The returned error matches
// ErrCancelled and wraps ctx.Err(). A context without cancellation
// degenerates to plain Run.
func RunCtx(ctx context.Context, p int, body func(c *Comm)) (*Stats, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	return m.RunCtx(ctx, body)
}

// Run executes body on the machine's locally hosted virtual processors
// and returns the run's cost statistics. The machine fully resets first,
// so it can be reused across runs (mailbox cells, collective scratch, and
// payload pools keep their capacity — steady-state runs allocate almost
// nothing). A Machine runs one body at a time; concurrent Run calls are a
// caller bug.
func (m *Machine) Run(body func(c *Comm)) (*Stats, error) {
	if err := m.reset(); err != nil {
		return nil, err
	}
	return m.run(body)
}

// RunCtx is Run bound to a context: a watcher goroutine Cancels the
// machine when ctx fires, and is reaped before RunCtx returns so a
// pooled machine is never cancelled across run boundaries. A body that
// finishes before the cancellation lands still returns its complete
// (correct, cacheable) result with a nil error.
func (m *Machine) RunCtx(ctx context.Context, body func(c *Comm)) (*Stats, error) {
	if ctx == nil || ctx.Done() == nil {
		return m.Run(body)
	}
	if err := ctx.Err(); err != nil {
		return nil, cancelError{cause: err}
	}
	// Reset before the watcher starts: a cancellation arriving between
	// reset and the first superstep must not be wiped out.
	if err := m.reset(); err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		select {
		case <-ctx.Done():
			m.Cancel(ctx.Err())
		case <-stop:
		}
	}()
	st, err := m.run(body)
	close(stop)
	watcher.Wait()
	return st, err
}

// run executes body on the already-reset machine.
func (m *Machine) run(body func(c *Comm)) (*Stats, error) {
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for r := 0; r < m.p; r++ {
		c := m.comms[r]
		if c == nil {
			continue
		}
		c.lastMark = time.Now()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					var err error
					if ae, ok := rec.(abortError); ok {
						err = ae.cause
					} else if e, ok := rec.(error); ok {
						err = fmt.Errorf("bsp: worker %d: %w", c.rank, e)
					} else {
						err = fmt.Errorf("bsp: worker %d: %v", c.rank, rec)
					}
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					m.abort(err)
				}
			}()
			body(c)
			// Account trailing app time after the last Sync.
			c.appTime += time.Since(c.lastMark)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// FinishRun completes the fabric's accounting; over TCP it merges the
	// sub-group ledgers of all worker processes. A merge failure (peer
	// lost at end of run) is a transport failure, not a kernel result.
	if err := m.tr.FinishRun(); err != nil {
		return nil, wrapAbort(err)
	}
	ledger := m.tr.Ledger()
	st := &Stats{
		P:            m.p,
		Supersteps:   ledger.Supersteps,
		Transport:    m.tr.Kind(),
		CommVolume:   ledger.Volume,
		HRelations:   ledger.HRelations,
		WireBytes:    ledger.WireBytes,
		WireRawBytes: ledger.WireRawBytes,
		SimCommTime:  ledger.SimComm,
	}
	for _, c := range m.comms {
		if c == nil {
			continue
		}
		st.Workers = append(st.Workers, WorkerStats{Rank: c.rank, AppTime: c.appTime, CommTime: c.commTime, Ops: c.ops})
		if c.appTime > st.MaxAppTime {
			st.MaxAppTime = c.appTime
		}
		if c.commTime > st.MaxCommTime {
			st.MaxCommTime = c.commTime
		}
		if c.ops > st.MaxOps {
			st.MaxOps = c.ops
		}
		if c.skipColl > st.AvoidedCollectives {
			st.AvoidedCollectives = c.skipColl
		}
		if c.skipWords > st.AvoidedCommVolume {
			st.AvoidedCommVolume = c.skipWords
		}
	}
	return st, nil
}
