// Package bsp implements a Bulk Synchronous Parallel runtime over
// goroutines — the stand-in for MPI in this reproduction. A machine runs p
// virtual processors; computation proceeds in supersteps: processors
// compute locally, exchange word messages, and meet at a barrier (Sync).
// Messages sent in superstep s are readable only in superstep s+1,
// matching the BSP semantics the paper analyses (§2.1).
//
// The runtime doubles as the measurement apparatus: it accounts the number
// of supersteps, the communication volume of each superstep (the maximum
// number of unit-size words sent or received by any processor — an
// h-relation), and splits wall-clock time into "application" time and
// "communication" time (time spent inside Sync and collectives), which is
// the analogue of the paper's T_MPI metric.
//
// All message payloads are []uint64 words; vertex ids, weights, and labels
// all fit the word model of BSP.
package bsp

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// CostModel emulates an interconnect in the classic BSP g/L sense: every
// superstep is charged h·WordTime + SyncLatency of *virtual*
// communication time, where h is the superstep's h-relation. Goroutines
// exchange words through shared memory at near-zero real cost, which
// hides exactly the costs this paper is about; the virtual clock makes
// them visible again at configurable interconnect speeds.
type CostModel struct {
	// WordTime is the per-word gap g (e.g. 4ns ≈ 2 GB/s per processor
	// for 8-byte words).
	WordTime time.Duration
	// SyncLatency is the per-superstep barrier latency L (e.g. 10µs for
	// a cluster interconnect).
	SyncLatency time.Duration
}

func (cm CostModel) enabled() bool { return cm.WordTime > 0 || cm.SyncLatency > 0 }

// machine is the shared state of one communicator: a barrier plus
// double-buffered mailboxes.
type machine struct {
	p int

	cost    CostModel
	simComm time.Duration // accumulated virtual communication time

	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	phase   uint64
	aborted error

	// staging[dst][src] collects words sent during the current superstep;
	// inbox[dst][src] holds words delivered at the last barrier.
	staging [][][]uint64
	inbox   [][][]uint64

	// accounting
	supersteps int
	volume     uint64   // sum over supersteps of the max h-relation
	hRelations []uint64 // per-superstep max h, for model validation

	// sent/recv words in the current superstep, per processor
	sent []uint64
	recv []uint64

	// registry for Split sub-communicators, keyed by phase and color
	subs map[subKey]*subGroup
}

type subKey struct {
	phase uint64
	color int
}

type subGroup struct {
	m       *machine
	members []int // parent ranks in rank order
}

func newMachine(p int) *machine {
	m := &machine{
		p:       p,
		staging: makeMailbox(p),
		inbox:   makeMailbox(p),
		sent:    make([]uint64, p),
		recv:    make([]uint64, p),
		subs:    make(map[subKey]*subGroup),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func makeMailbox(p int) [][][]uint64 {
	mb := make([][][]uint64, p)
	for i := range mb {
		mb[i] = make([][]uint64, p)
	}
	return mb
}

// Comm is a processor's handle on a communicator. It is owned by exactly
// one goroutine and must not be shared.
type Comm struct {
	m    *machine
	rank int

	appTime  time.Duration
	commTime time.Duration
	lastMark time.Time
	ops      uint64

	parent *Comm // non-nil for communicators created by Split
}

// Rank returns this processor's rank in [0, Size()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of processors in the communicator.
func (c *Comm) Size() int { return c.m.p }

// Ops adds n to this processor's local-operation counter, the unit of BSP
// computation time used for model validation.
func (c *Comm) Ops(n uint64) { c.ops += n }

// Send queues words for delivery to processor `to` at the next Sync.
// The words are appended to any previously queued payload for the same
// destination within this superstep. The slice is copied.
func (c *Comm) Send(to int, words []uint64) {
	if to < 0 || to >= c.m.p {
		panic(fmt.Sprintf("bsp: Send to rank %d of %d", to, c.m.p))
	}
	box := c.m.staging[to][c.rank]
	c.m.staging[to][c.rank] = append(box, words...)
	c.m.sent[c.rank] += uint64(len(words))
}

// SendOwned queues words like Send but, when nothing is queued yet for
// the destination, adopts the slice instead of copying it. The caller
// transfers ownership: the slice must not be read or written afterwards.
// Use for freshly built payloads on hot paths (large gathers); the
// accounted communication volume is identical to Send's.
func (c *Comm) SendOwned(to int, words []uint64) {
	if to < 0 || to >= c.m.p {
		panic(fmt.Sprintf("bsp: SendOwned to rank %d of %d", to, c.m.p))
	}
	box := c.m.staging[to][c.rank]
	if len(box) == 0 {
		c.m.staging[to][c.rank] = words
	} else {
		c.m.staging[to][c.rank] = append(box, words...)
	}
	c.m.sent[c.rank] += uint64(len(words))
}

// Recv returns the words delivered from processor `from` at the last Sync.
// The slice aliases runtime storage and is valid until the next Sync.
func (c *Comm) Recv(from int) []uint64 {
	return c.m.inbox[c.rank][from]
}

// RecvAll returns the per-source delivered payloads (index = source rank).
func (c *Comm) RecvAll() [][]uint64 {
	return c.m.inbox[c.rank]
}

// errAborted is panicked in workers once any worker has failed, so that
// barrier peers unwind instead of deadlocking.
type abortError struct{ cause error }

func (e abortError) Error() string { return "bsp: aborted: " + e.cause.Error() }

// Sync is the superstep barrier: it blocks until all processors arrive,
// then atomically delivers all queued messages. Time spent here is
// accounted as communication time.
func (c *Comm) Sync() {
	m := c.m
	start := time.Now()
	if !c.lastMark.IsZero() {
		c.appTime += start.Sub(c.lastMark)
	}

	m.mu.Lock()
	if m.aborted != nil {
		m.mu.Unlock()
		panic(abortError{m.aborted})
	}
	// Account receive volume for every destination this proc sent to.
	myPhase := m.phase
	m.arrived++
	if m.arrived == m.p {
		// Last arriver: finalize the superstep.
		var h uint64
		for dst := 0; dst < m.p; dst++ {
			var r uint64
			for src := 0; src < m.p; src++ {
				r += uint64(len(m.staging[dst][src]))
			}
			m.recv[dst] = r
		}
		for i := 0; i < m.p; i++ {
			if m.sent[i] > h {
				h = m.sent[i]
			}
			if m.recv[i] > h {
				h = m.recv[i]
			}
			m.sent[i] = 0
			m.recv[i] = 0
		}
		m.supersteps++
		m.volume += h
		m.hRelations = append(m.hRelations, h)
		if m.cost.enabled() {
			m.simComm += time.Duration(h)*m.cost.WordTime + m.cost.SyncLatency
		}
		// Swap mailboxes and clear the new staging area.
		m.inbox, m.staging = m.staging, m.inbox
		for dst := range m.staging {
			for src := range m.staging[dst] {
				m.staging[dst][src] = m.staging[dst][src][:0]
			}
		}
		m.arrived = 0
		m.phase++
		m.cond.Broadcast()
	} else {
		for m.phase == myPhase && m.aborted == nil {
			m.cond.Wait()
		}
		if m.aborted != nil {
			m.mu.Unlock()
			panic(abortError{m.aborted})
		}
	}
	m.mu.Unlock()

	end := time.Now()
	c.commTime += end.Sub(start)
	c.lastMark = end
}

// abort marks the communicator failed and wakes all waiters. Any
// subsequent or pending Sync panics with the cause.
func (m *machine) abort(err error) {
	m.mu.Lock()
	if m.aborted == nil {
		m.aborted = err
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// Split partitions the communicator: processors passing the same color
// form a new communicator, ranked by (key, parent rank). It is a
// collective call — every processor must participate. The returned Comm
// shares cost accounting with nothing; its stats are folded back into the
// parent's worker stats because times accumulate on the same *Comm-owning
// goroutine via the returned child (the caller should use the child for
// all communication until done, then resume with the parent).
func (c *Comm) Split(color, key int) *Comm {
	// Exchange (color, key) so everyone can compute group membership.
	payload := []uint64{uint64(int64(color)), uint64(int64(key))}
	for dst := 0; dst < c.m.p; dst++ {
		c.Send(dst, payload)
	}
	c.Sync()
	type member struct{ color, key, rank int }
	members := make([]member, c.m.p)
	for src := 0; src < c.m.p; src++ {
		w := c.Recv(src)
		members[src] = member{color: int(int64(w[0])), key: int(int64(w[1])), rank: src}
	}
	var mine []member
	for _, mm := range members {
		if mm.color == color {
			mine = append(mine, mm)
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	newRank := -1
	parentRanks := make([]int, len(mine))
	for i, mm := range mine {
		parentRanks[i] = mm.rank
		if mm.rank == c.rank {
			newRank = i
		}
	}
	// Get or create the shared machine for this group; it inherits the
	// parent's interconnect cost model.
	m := c.m
	m.mu.Lock()
	key2 := subKey{phase: m.phase, color: color}
	grp, ok := m.subs[key2]
	if !ok {
		sm := newMachine(len(mine))
		sm.cost = m.cost
		grp = &subGroup{m: sm, members: parentRanks}
		m.subs[key2] = grp
	}
	m.mu.Unlock()
	child := &Comm{m: grp.m, rank: newRank, parent: c, lastMark: time.Now()}
	return child
}

// Close folds a split communicator's accumulated times and operation
// counts back into its parent, and (once per group, via the group's rank
// 0) folds the child machine's superstep and volume accounting into the
// parent machine. It must be called once per Split, after the last use of
// the child.
func (c *Comm) Close() {
	if c.parent == nil {
		return
	}
	c.parent.appTime += c.appTime
	c.parent.commTime += c.commTime
	c.parent.ops += c.ops
	c.parent.lastMark = time.Now()
	if c.rank == 0 {
		pm := c.parent.m
		cm := c.m
		pm.mu.Lock()
		pm.supersteps += cm.supersteps
		pm.volume += cm.volume
		pm.hRelations = append(pm.hRelations, cm.hRelations...)
		pm.simComm += cm.simComm
		pm.mu.Unlock()
	}
}

// WorkerStats carries one processor's cost measurements.
type WorkerStats struct {
	Rank     int
	AppTime  time.Duration
	CommTime time.Duration
	Ops      uint64
}

// Stats summarizes one Run.
type Stats struct {
	P          int
	Supersteps int
	// CommVolume is the sum over supersteps of the largest number of words
	// sent or received by any processor (the BSP communication volume).
	CommVolume uint64
	// HRelations records each superstep's h-relation.
	HRelations []uint64
	// MaxAppTime / MaxCommTime are the per-run maxima over processors of
	// cumulative computation and communication (Sync) wall time, matching
	// the paper's "maximum among all participating processors" metric.
	MaxAppTime  time.Duration
	MaxCommTime time.Duration
	// MaxOps is the maximum operation count over processors, the measured
	// analogue of BSP computation time.
	MaxOps  uint64
	Workers []WorkerStats
	// SimCommTime is the virtual communication time Σ(h·g + L) accrued
	// under the run's CostModel (zero when no model was configured).
	SimCommTime time.Duration
}

// SimTotal returns the virtual-interconnect wall time estimate: real
// computation time plus simulated communication time.
func (s *Stats) SimTotal() time.Duration { return s.MaxAppTime + s.SimCommTime }

// SimCommFraction returns SimCommTime / SimTotal.
func (s *Stats) SimCommFraction() float64 {
	t := s.SimTotal()
	if t == 0 {
		return 0
	}
	return float64(s.SimCommTime) / float64(t)
}

// Total returns total wall time (app + comm maxima).
func (s *Stats) Total() time.Duration { return s.MaxAppTime + s.MaxCommTime }

// MaxHRelation returns the largest single-superstep h-relation of the
// run — the bottleneck superstep the BSP cost model charges g·h for.
func (s *Stats) MaxHRelation() uint64 {
	var max uint64
	for _, h := range s.HRelations {
		if h > max {
			max = h
		}
	}
	return max
}

// MeanHRelation returns the average per-superstep h-relation, or 0 for a
// run with no supersteps.
func (s *Stats) MeanHRelation() float64 {
	if s.Supersteps == 0 {
		return 0
	}
	return float64(s.CommVolume) / float64(s.Supersteps)
}

// CommFraction returns MaxCommTime / Total, the T_MPI/T ratio of Figure 1b.
func (s *Stats) CommFraction() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.MaxCommTime) / float64(t)
}

// Run executes body on p virtual processors and returns the machine's cost
// statistics. If any processor panics, all are unwound and the first
// panic is returned as an error. p must be positive.
func Run(p int, body func(c *Comm)) (*Stats, error) {
	return RunWithCost(p, CostModel{}, body)
}

// RunWithCost is Run with an emulated interconnect: each superstep
// accrues h·WordTime + SyncLatency of virtual communication time,
// reported as Stats.SimCommTime.
func RunWithCost(p int, cost CostModel, body func(c *Comm)) (*Stats, error) {
	if p <= 0 {
		return nil, fmt.Errorf("bsp: Run with p=%d", p)
	}
	m := newMachine(p)
	m.cost = cost
	comms := make([]*Comm, p)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for r := 0; r < p; r++ {
		c := &Comm{m: m, rank: r, lastMark: time.Now()}
		comms[r] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					var err error
					if ae, ok := rec.(abortError); ok {
						err = ae.cause
					} else if e, ok := rec.(error); ok {
						err = fmt.Errorf("bsp: worker %d: %w", c.rank, e)
					} else {
						err = fmt.Errorf("bsp: worker %d: %v", c.rank, rec)
					}
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					m.abort(err)
				}
			}()
			body(c)
			// Account trailing app time after the last Sync.
			c.appTime += time.Since(c.lastMark)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	st := &Stats{
		P:           p,
		Supersteps:  m.supersteps,
		CommVolume:  m.volume,
		HRelations:  m.hRelations,
		Workers:     make([]WorkerStats, p),
		SimCommTime: m.simComm,
	}
	for r, c := range comms {
		st.Workers[r] = WorkerStats{Rank: r, AppTime: c.appTime, CommTime: c.commTime, Ops: c.ops}
		if c.appTime > st.MaxAppTime {
			st.MaxAppTime = c.appTime
		}
		if c.commTime > st.MaxCommTime {
			st.MaxCommTime = c.commTime
		}
		if c.ops > st.MaxOps {
			st.MaxOps = c.ops
		}
	}
	return st, nil
}
