package bsp

// MPI-style collective operations (§2.1 of the paper). Each takes O(1)
// supersteps; costs follow the paper's stated bounds: O(k) communication
// volume and time, O(k/B + 1) cache misses (the latter is a property of
// the sequential copying below, not separately accounted).
//
// All collectives are synchronizing: every processor of the communicator
// must call them together, in the same order.
//
// # Result ownership
//
// Collective results are backed by per-Comm scratch buffers that are
// reused by the next call of the *same* collective on the same Comm
// (AllReduce shares Broadcast's scratch). In steady state a collective
// therefore allocates nothing. A result stays valid across Sync and
// across calls of *other* collectives; callers that need a result beyond
// the next same-collective call must copy it. Callers may freely modify
// the returned contents.

// collScratch holds one processor's collective scratch: grow-only buffers
// reused call over call so steady-state collectives are allocation-free.
type collScratch struct {
	hdr      [1]uint64  // one-word headers (lengths, offsets)
	bcast    []uint64   // Broadcast / AllReduce result
	red      []uint64   // Reduce result
	scat     []uint64   // Scatter result
	views    [][]uint64 // RecvAll / Owned-collective inbox views
	gather   vecScratch
	allGath  vecScratch
	allToAll vecScratch
}

// vecScratch backs one [][]uint64-shaped collective result: parts are
// views into a single flat copy buffer.
type vecScratch struct {
	flat  []uint64
	parts [][]uint64
}

// growWords returns buf resized to length n, reallocating only when the
// capacity is insufficient.
func growWords(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	return buf[:n]
}

// collectInbox copies this processor's inbox column into s and returns
// the per-source views.
func (c *Comm) collectInbox(s *vecScratch) [][]uint64 {
	p := c.m.p
	total := 0
	for src := 0; src < p; src++ {
		total += len(c.Recv(src))
	}
	s.flat = growWords(s.flat, total)
	if cap(s.parts) < p {
		s.parts = make([][]uint64, p)
	}
	s.parts = s.parts[:p]
	off := 0
	for src := 0; src < p; src++ {
		in := c.Recv(src)
		n := copy(s.flat[off:off+len(in)], in)
		s.parts[src] = s.flat[off : off+n : off+n]
		off += n
	}
	return s.parts
}

// Broadcast distributes the root's words to all processors; every caller
// returns the full payload. For payloads larger than the communicator it
// uses the two-phase (scatter + all-gather) algorithm so that no processor
// sends or receives more than O(k + p) words, the classic O(1)-superstep
// communication-optimal broadcast.
func (c *Comm) Broadcast(root int, words []uint64) []uint64 {
	p := c.m.p
	if p == 1 {
		c.sc.bcast = growWords(c.sc.bcast, len(words))
		copy(c.sc.bcast, words)
		return c.sc.bcast
	}
	// Superstep 1: the root announces the payload length, so every
	// processor deterministically picks the same strategy. For the small
	// (direct) strategy the payload itself piggybacks on this superstep.
	if c.rank == root {
		k := len(words)
		c.sc.hdr[0] = uint64(k)
		for dst := 0; dst < p; dst++ {
			c.Send(dst, c.sc.hdr[:1])
			if k < 2*p {
				c.Send(dst, words)
			}
		}
	}
	c.Sync()
	in := c.Recv(root)
	k := int(in[0])
	small := k < 2*p
	if small {
		c.sc.bcast = growWords(c.sc.bcast, k)
		copy(c.sc.bcast, in[1:])
		return c.sc.bcast
	}
	// Two-phase broadcast for large payloads: scatter then all-gather.
	// Superstep 2: the root scatters ~k/p chunks.
	if c.rank == root {
		for dst := 0; dst < p; dst++ {
			lo := dst * k / p
			hi := (dst + 1) * k / p
			c.sc.hdr[0] = uint64(lo)
			c.Send(dst, c.sc.hdr[:1])
			c.Send(dst, words[lo:hi])
		}
	}
	c.Sync()
	chunk := c.Recv(root)
	myOff := int(chunk[0])
	body := chunk[1:]
	// Superstep 3: all-gather the chunks.
	for dst := 0; dst < p; dst++ {
		c.sc.hdr[0] = uint64(myOff)
		c.Send(dst, c.sc.hdr[:1])
		c.Send(dst, body)
	}
	c.Sync()
	c.sc.bcast = growWords(c.sc.bcast, k)
	out := c.sc.bcast
	for src := 0; src < p; src++ {
		in := c.Recv(src)
		copy(out[int(in[0]):], in[1:])
	}
	return out
}

// Gather collects every processor's words at the root. At the root the
// result has one entry per source rank; at other ranks it is nil.
func (c *Comm) Gather(root int, words []uint64) [][]uint64 {
	c.Send(root, words)
	c.Sync()
	if c.rank != root {
		return nil
	}
	return c.collectInbox(&c.sc.gather)
}

// GatherOwned is Gather for hot paths: the payload's ownership transfers
// to the runtime (no send-side copy) and the root's result aliases
// runtime storage, valid only until the next Sync. Non-roots return nil.
func (c *Comm) GatherOwned(root int, words []uint64) [][]uint64 {
	c.SendOwned(root, words)
	c.Sync()
	if c.rank != root {
		return nil
	}
	return c.inboxViews()
}

// AllToAllOwned is AllToAll for hot paths: each part's ownership
// transfers to the runtime and the received parts alias runtime storage,
// valid only until the next Sync.
func (c *Comm) AllToAllOwned(parts [][]uint64) [][]uint64 {
	for dst := 0; dst < c.m.p; dst++ {
		c.SendOwned(dst, parts[dst])
	}
	c.Sync()
	return c.inboxViews()
}

// AllGather collects every processor's words at every processor.
func (c *Comm) AllGather(words []uint64) [][]uint64 {
	for dst := 0; dst < c.m.p; dst++ {
		c.Send(dst, words)
	}
	c.Sync()
	return c.collectInbox(&c.sc.allGath)
}

// Scatter distributes parts[i] to processor i; every caller returns its
// own part. Only the root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]uint64) []uint64 {
	if c.rank == root {
		for dst := 0; dst < c.m.p; dst++ {
			c.Send(dst, parts[dst])
		}
	}
	c.Sync()
	in := c.Recv(root)
	c.sc.scat = growWords(c.sc.scat, len(in))
	copy(c.sc.scat, in)
	return c.sc.scat
}

// AllToAll sends parts[i] to processor i and returns the parts received,
// indexed by source.
func (c *Comm) AllToAll(parts [][]uint64) [][]uint64 {
	for dst := 0; dst < c.m.p; dst++ {
		c.Send(dst, parts[dst])
	}
	c.Sync()
	return c.collectInbox(&c.sc.allToAll)
}

// ReduceOp is an associative elementwise operator on words.
type ReduceOp func(a, b uint64) uint64

// Predefined reduce operators.
var (
	OpSum ReduceOp = func(a, b uint64) uint64 { return a + b }
	OpMin ReduceOp = func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	OpMax ReduceOp = func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
)

// Reduce combines equal-length vectors elementwise with op at the root.
// Non-roots return nil.
func (c *Comm) Reduce(root int, vec []uint64, op ReduceOp) []uint64 {
	c.Send(root, vec)
	c.Sync()
	if c.rank != root {
		return nil
	}
	var out []uint64
	for src := 0; src < c.m.p; src++ {
		in := c.Recv(src)
		if out == nil {
			c.sc.red = growWords(c.sc.red, len(in))
			out = c.sc.red
			copy(out, in)
			continue
		}
		for i := range out {
			out[i] = op(out[i], in[i])
		}
	}
	return out
}

// AllReduce combines equal-length vectors elementwise with op and returns
// the result at every processor (reduce + broadcast, O(1) supersteps).
// The result shares Broadcast's scratch.
func (c *Comm) AllReduce(vec []uint64, op ReduceOp) []uint64 {
	red := c.Reduce(0, vec, op)
	return c.Broadcast(0, red)
}

// Barrier synchronizes without exchanging data.
func (c *Comm) Barrier() { c.Sync() }
