package bsp

// MPI-style collective operations (§2.1 of the paper). Each takes O(1)
// supersteps; costs follow the paper's stated bounds: O(k) communication
// volume and time, O(k/B + 1) cache misses (the latter is a property of
// the sequential copying below, not separately accounted).
//
// All collectives are synchronizing: every processor of the communicator
// must call them together, in the same order.

// Broadcast distributes the root's words to all processors; every caller
// returns the full payload. For payloads larger than the communicator it
// uses the two-phase (scatter + all-gather) algorithm so that no processor
// sends or receives more than O(k + p) words, the classic O(1)-superstep
// communication-optimal broadcast.
func (c *Comm) Broadcast(root int, words []uint64) []uint64 {
	p := c.m.p
	if p == 1 {
		out := make([]uint64, len(words))
		copy(out, words)
		return out
	}
	// Superstep 1: the root announces the payload length, so every
	// processor deterministically picks the same strategy. For the small
	// (direct) strategy the payload itself piggybacks on this superstep.
	if c.rank == root {
		k := len(words)
		for dst := 0; dst < p; dst++ {
			c.Send(dst, []uint64{uint64(k)})
			if k < 2*p {
				c.Send(dst, words)
			}
		}
	}
	c.Sync()
	in := c.Recv(root)
	k := int(in[0])
	small := k < 2*p
	if small {
		out := make([]uint64, k)
		copy(out, in[1:])
		return out
	}
	// Two-phase broadcast for large payloads: scatter then all-gather.
	// Superstep 2: the root scatters ~k/p chunks.
	if c.rank == root {
		for dst := 0; dst < p; dst++ {
			lo := dst * k / p
			hi := (dst + 1) * k / p
			c.Send(dst, []uint64{uint64(lo)})
			c.Send(dst, words[lo:hi])
		}
	}
	c.Sync()
	chunk := c.Recv(root)
	myOff := int(chunk[0])
	body := chunk[1:]
	// Superstep 3: all-gather the chunks.
	for dst := 0; dst < p; dst++ {
		c.Send(dst, []uint64{uint64(myOff)})
		c.Send(dst, body)
	}
	c.Sync()
	out := make([]uint64, k)
	for src := 0; src < p; src++ {
		in := c.Recv(src)
		off := int(in[0])
		copy(out[off:], in[1:])
	}
	return out
}

// Gather collects every processor's words at the root. At the root the
// result has one entry per source rank (copies); at other ranks it is nil.
func (c *Comm) Gather(root int, words []uint64) [][]uint64 {
	c.Send(root, words)
	c.Sync()
	if c.rank != root {
		return nil
	}
	out := make([][]uint64, c.m.p)
	for src := 0; src < c.m.p; src++ {
		in := c.Recv(src)
		out[src] = append([]uint64(nil), in...)
	}
	return out
}

// GatherOwned is Gather for hot paths: the payload's ownership transfers
// to the runtime (no send-side copy) and the root's result aliases
// runtime storage, valid only until the next Sync. Non-roots return nil.
func (c *Comm) GatherOwned(root int, words []uint64) [][]uint64 {
	c.SendOwned(root, words)
	c.Sync()
	if c.rank != root {
		return nil
	}
	return c.m.inbox[c.rank]
}

// AllToAllOwned is AllToAll for hot paths: each part's ownership
// transfers to the runtime and the received parts alias runtime storage,
// valid only until the next Sync.
func (c *Comm) AllToAllOwned(parts [][]uint64) [][]uint64 {
	for dst := 0; dst < c.m.p; dst++ {
		c.SendOwned(dst, parts[dst])
	}
	c.Sync()
	return c.m.inbox[c.rank]
}

// AllGather collects every processor's words at every processor.
func (c *Comm) AllGather(words []uint64) [][]uint64 {
	for dst := 0; dst < c.m.p; dst++ {
		c.Send(dst, words)
	}
	c.Sync()
	out := make([][]uint64, c.m.p)
	for src := 0; src < c.m.p; src++ {
		out[src] = append([]uint64(nil), c.Recv(src)...)
	}
	return out
}

// Scatter distributes parts[i] to processor i; every caller returns its
// own part. Only the root's parts argument is consulted.
func (c *Comm) Scatter(root int, parts [][]uint64) []uint64 {
	if c.rank == root {
		for dst := 0; dst < c.m.p; dst++ {
			c.Send(dst, parts[dst])
		}
	}
	c.Sync()
	return append([]uint64(nil), c.Recv(root)...)
}

// AllToAll sends parts[i] to processor i and returns the parts received,
// indexed by source.
func (c *Comm) AllToAll(parts [][]uint64) [][]uint64 {
	for dst := 0; dst < c.m.p; dst++ {
		c.Send(dst, parts[dst])
	}
	c.Sync()
	out := make([][]uint64, c.m.p)
	for src := 0; src < c.m.p; src++ {
		out[src] = append([]uint64(nil), c.Recv(src)...)
	}
	return out
}

// ReduceOp is an associative elementwise operator on words.
type ReduceOp func(a, b uint64) uint64

// Predefined reduce operators.
var (
	OpSum ReduceOp = func(a, b uint64) uint64 { return a + b }
	OpMin ReduceOp = func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	OpMax ReduceOp = func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	}
)

// Reduce combines equal-length vectors elementwise with op at the root.
// Non-roots return nil.
func (c *Comm) Reduce(root int, vec []uint64, op ReduceOp) []uint64 {
	c.Send(root, vec)
	c.Sync()
	if c.rank != root {
		return nil
	}
	var out []uint64
	for src := 0; src < c.m.p; src++ {
		in := c.Recv(src)
		if out == nil {
			out = append([]uint64(nil), in...)
			continue
		}
		for i := range out {
			out[i] = op(out[i], in[i])
		}
	}
	return out
}

// AllReduce combines equal-length vectors elementwise with op and returns
// the result at every processor (reduce + broadcast, O(1) supersteps).
func (c *Comm) AllReduce(vec []uint64, op ReduceOp) []uint64 {
	red := c.Reduce(0, vec, op)
	return c.Broadcast(0, red)
}

// Barrier synchronizes without exchanging data.
func (c *Comm) Barrier() { c.Sync() }
