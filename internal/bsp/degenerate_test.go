package bsp

import (
	"testing"
)

// The service layer sizes the BSP machine per request, so the degenerate
// shapes — a single-processor communicator and empty payloads — are hit
// routinely (tiny graphs run at p=1; block distribution leaves trailing
// ranks with no edges). Every collective must behave at these extremes.

func TestCollectivesP1(t *testing.T) {
	st, err := Run(1, func(c *Comm) {
		if c.Rank() != 0 || c.Size() != 1 {
			t.Errorf("rank/size = %d/%d", c.Rank(), c.Size())
		}
		b := c.Broadcast(0, []uint64{7, 8})
		if len(b) != 2 || b[0] != 7 || b[1] != 8 {
			t.Errorf("broadcast = %v", b)
		}
		g := c.Gather(0, []uint64{5})
		if len(g) != 1 || len(g[0]) != 1 || g[0][0] != 5 {
			t.Errorf("gather = %v", g)
		}
		ag := c.AllGather([]uint64{9})
		if len(ag) != 1 || ag[0][0] != 9 {
			t.Errorf("allgather = %v", ag)
		}
		sc := c.Scatter(0, [][]uint64{{1, 2}})
		if len(sc) != 2 || sc[0] != 1 {
			t.Errorf("scatter = %v", sc)
		}
		aa := c.AllToAll([][]uint64{{3}})
		if len(aa) != 1 || aa[0][0] != 3 {
			t.Errorf("alltoall = %v", aa)
		}
		r := c.Reduce(0, []uint64{4, 6}, OpSum)
		if len(r) != 2 || r[0] != 4 || r[1] != 6 {
			t.Errorf("reduce = %v", r)
		}
		ar := c.AllReduce([]uint64{11}, OpMax)
		if len(ar) != 1 || ar[0] != 11 {
			t.Errorf("allreduce = %v", ar)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.P != 1 {
		t.Errorf("stats P = %d", st.P)
	}
}

func TestBroadcastEmptyPayload(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		_, err := Run(p, func(c *Comm) {
			var words []uint64
			if c.Rank() == 0 {
				words = []uint64{}
			}
			out := c.Broadcast(0, words)
			if len(out) != 0 {
				t.Errorf("p=%d: broadcast of empty payload returned %v", p, out)
			}
			// nil works the same as empty.
			out = c.Broadcast(0, nil)
			if len(out) != 0 {
				t.Errorf("p=%d: broadcast of nil returned %v", p, out)
			}
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestCollectivesEmptyPayloads(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		g := c.Gather(0, nil)
		if c.Rank() == 0 {
			if len(g) != p {
				t.Errorf("gather shape %d", len(g))
			}
			for src, in := range g {
				if len(in) != 0 {
					t.Errorf("gather from %d = %v", src, in)
				}
			}
		} else if g != nil {
			t.Errorf("non-root gather = %v", g)
		}

		ag := c.AllGather(nil)
		if len(ag) != p {
			t.Errorf("allgather shape %d", len(ag))
		}
		for src, in := range ag {
			if len(in) != 0 {
				t.Errorf("allgather from %d = %v", src, in)
			}
		}

		parts := make([][]uint64, p)
		aa := c.AllToAll(parts)
		for src, in := range aa {
			if len(in) != 0 {
				t.Errorf("alltoall from %d = %v", src, in)
			}
		}

		sc := c.Scatter(0, make([][]uint64, p))
		if len(sc) != 0 {
			t.Errorf("scatter = %v", sc)
		}

		if r := c.AllReduce(nil, OpSum); len(r) != 0 {
			t.Errorf("allreduce = %v", r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceEmptyVector(t *testing.T) {
	_, err := Run(3, func(c *Comm) {
		r := c.Reduce(0, []uint64{}, OpSum)
		if len(r) != 0 {
			t.Errorf("reduce of empty vectors = %v", r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitP1(t *testing.T) {
	_, err := Run(1, func(c *Comm) {
		sub := c.Split(0, 0)
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("split size/rank = %d/%d", sub.Size(), sub.Rank())
		}
		b := sub.Broadcast(0, []uint64{1})
		if len(b) != 1 || b[0] != 1 {
			t.Errorf("sub broadcast = %v", b)
		}
		sub.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHRelationHelpers(t *testing.T) {
	st, err := Run(2, func(c *Comm) {
		c.Send(1-c.Rank(), []uint64{1, 2, 3})
		c.Sync()
		c.Send(1-c.Rank(), []uint64{4})
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.MaxHRelation(); got != 3 {
		t.Errorf("MaxHRelation = %d, want 3", got)
	}
	if got := st.MeanHRelation(); got != 2 {
		t.Errorf("MeanHRelation = %v, want 2", got)
	}
	empty := &Stats{}
	if empty.MaxHRelation() != 0 || empty.MeanHRelation() != 0 {
		t.Error("empty stats h-relation helpers nonzero")
	}
}
