package bsp

import (
	"errors"
	"testing"
	"time"
)

func TestRunSingleWorker(t *testing.T) {
	ran := false
	st, err := Run(1, func(c *Comm) {
		if c.Rank() != 0 || c.Size() != 1 {
			t.Errorf("rank/size = %d/%d", c.Rank(), c.Size())
		}
		ran = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("body did not run")
	}
	if st.Supersteps != 0 {
		t.Errorf("supersteps = %d, want 0", st.Supersteps)
	}
}

func TestRunRejectsBadP(t *testing.T) {
	if _, err := Run(0, func(c *Comm) {}); err == nil {
		t.Error("Run(0) succeeded")
	}
	if _, err := Run(-3, func(c *Comm) {}); err == nil {
		t.Error("Run(-3) succeeded")
	}
}

func TestMessageDelivery(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		// Ring: send rank to the right neighbor.
		right := (c.Rank() + 1) % p
		c.Send(right, []uint64{uint64(c.Rank())})
		c.Sync()
		left := (c.Rank() + p - 1) % p
		got := c.Recv(left)
		if len(got) != 1 || got[0] != uint64(left) {
			t.Errorf("rank %d received %v from %d", c.Rank(), got, left)
		}
		// Nothing from other ranks.
		for src := 0; src < p; src++ {
			if src != left && len(c.Recv(src)) != 0 {
				t.Errorf("rank %d: unexpected words from %d", c.Rank(), src)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesVisibleOnlyAfterSync(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []uint64{42})
		}
		if c.Rank() == 1 && len(c.Recv(0)) != 0 {
			t.Error("message visible before Sync")
		}
		c.Sync()
		if c.Rank() == 1 {
			if got := c.Recv(0); len(got) != 1 || got[0] != 42 {
				t.Errorf("after Sync: %v", got)
			}
		}
		// Next superstep clears the inbox.
		c.Sync()
		if c.Rank() == 1 && len(c.Recv(0)) != 0 {
			t.Error("stale message survived a superstep")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendAppendsWithinSuperstep(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, []uint64{1, 2})
			c.Send(1, []uint64{3})
		}
		c.Sync()
		if c.Rank() == 1 {
			got := c.Recv(0)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("appended payload = %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendPanicsOutOfRange(t *testing.T) {
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, []uint64{1})
		}
		c.Sync()
	})
	if err == nil {
		t.Fatal("out-of-range Send did not fail the run")
	}
}

func TestSuperstepAccounting(t *testing.T) {
	st, err := Run(3, func(c *Comm) {
		c.Sync()
		c.Sync()
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps != 3 {
		t.Errorf("supersteps = %d, want 3", st.Supersteps)
	}
	if st.CommVolume != 0 {
		t.Errorf("volume = %d, want 0", st.CommVolume)
	}
}

func TestCommVolumeIsHRelation(t *testing.T) {
	// Rank 0 sends 5 words to each of 3 others: h = 15 (sender bound).
	st, err := Run(4, func(c *Comm) {
		if c.Rank() == 0 {
			for dst := 1; dst < 4; dst++ {
				c.Send(dst, []uint64{1, 2, 3, 4, 5})
			}
		}
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.CommVolume != 15 {
		t.Errorf("volume = %d, want 15", st.CommVolume)
	}
	// All send 5 words to rank 0: h = 15 (receiver bound).
	st, err = Run(4, func(c *Comm) {
		if c.Rank() != 0 {
			c.Send(0, []uint64{1, 2, 3, 4, 5})
		}
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.CommVolume != 15 {
		t.Errorf("volume = %d, want 15", st.CommVolume)
	}
	if len(st.HRelations) != 1 || st.HRelations[0] != 15 {
		t.Errorf("HRelations = %v", st.HRelations)
	}
}

func TestWorkerPanicPropagates(t *testing.T) {
	_, err := Run(4, func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		// Other workers would block here forever without abort handling.
		c.Sync()
	})
	if err == nil {
		t.Fatal("panic not propagated")
	}
}

func TestWorkerErrorPanicPreserved(t *testing.T) {
	sentinel := errors.New("sentinel")
	_, err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			panic(sentinel)
		}
		c.Sync()
	})
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
}

func TestOpsAccounting(t *testing.T) {
	st, err := Run(3, func(c *Comm) {
		c.Ops(uint64(10 * (c.Rank() + 1)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxOps != 30 {
		t.Errorf("MaxOps = %d, want 30", st.MaxOps)
	}
	if st.Workers[0].Ops != 10 || st.Workers[2].Ops != 30 {
		t.Errorf("per-worker ops = %+v", st.Workers)
	}
}

func TestSplitGroups(t *testing.T) {
	const p = 6
	_, err := Run(p, func(c *Comm) {
		color := c.Rank() % 2
		sub := c.Split(color, c.Rank())
		defer sub.Close()
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size = %d, want 3", c.Rank(), sub.Size())
		}
		wantRank := c.Rank() / 2
		if sub.Rank() != wantRank {
			t.Errorf("rank %d: sub rank = %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Communicate within the group: everyone sends its parent rank to
		// sub-root; sub-root checks colors match.
		sub.Send(0, []uint64{uint64(c.Rank())})
		sub.Sync()
		if sub.Rank() == 0 {
			for src := 0; src < sub.Size(); src++ {
				got := sub.Recv(src)
				if len(got) != 1 || int(got[0])%2 != color {
					t.Errorf("group %d received foreign member %v", color, got)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSingletons(t *testing.T) {
	_, err := Run(3, func(c *Comm) {
		sub := c.Split(c.Rank(), 0) // every proc its own group
		defer sub.Close()
		if sub.Size() != 1 || sub.Rank() != 0 {
			t.Errorf("singleton split wrong: size=%d rank=%d", sub.Size(), sub.Rank())
		}
		sub.Sync() // must not deadlock
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitStatsFoldIntoParent(t *testing.T) {
	st, err := Run(4, func(c *Comm) {
		sub := c.Split(c.Rank()%2, 0)
		sub.Send(0, []uint64{1, 2, 3})
		sub.Sync()
		sub.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Parent machine: 1 superstep for Split's exchange. Each of the 2
	// children: 1 superstep with h = 6 (root receives 3 words from each of
	// 2 members).
	if st.Supersteps != 3 {
		t.Errorf("folded supersteps = %d, want 3", st.Supersteps)
	}
	var wantParentH uint64 = 2 * 4 // split payload: 2 words to each of 4 ranks
	if st.CommVolume != wantParentH+6+6 {
		t.Errorf("folded volume = %d, want %d", st.CommVolume, wantParentH+12)
	}
}

func TestTimingSplit(t *testing.T) {
	st, err := Run(2, func(c *Comm) {
		// Burn a little app time, then sync.
		x := 0
		for i := 0; i < 1_000_00; i++ {
			x += i
		}
		_ = x
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxAppTime <= 0 {
		t.Error("no app time recorded")
	}
	if st.Total() < st.MaxAppTime {
		t.Error("total < app time")
	}
	f := st.CommFraction()
	if f < 0 || f > 1 {
		t.Errorf("CommFraction = %v", f)
	}
}

func TestRunWithCostVirtualClock(t *testing.T) {
	// One superstep with h=10: virtual comm = 10·WordTime + SyncLatency.
	cost := CostModel{WordTime: 3 * time.Microsecond, SyncLatency: 50 * time.Microsecond}
	st, err := RunWithCost(2, cost, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, make([]uint64, 10))
		}
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10*cost.WordTime + cost.SyncLatency
	if st.SimCommTime != want {
		t.Errorf("SimCommTime = %v, want %v", st.SimCommTime, want)
	}
	if st.SimTotal() < want {
		t.Error("SimTotal below virtual comm time")
	}
	f := st.SimCommFraction()
	if f <= 0 || f > 1 {
		t.Errorf("SimCommFraction = %v", f)
	}
}

func TestRunWithoutCostZeroSim(t *testing.T) {
	st, err := Run(2, func(c *Comm) {
		c.Send(0, []uint64{1, 2, 3})
		c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SimCommTime != 0 {
		t.Errorf("SimCommTime without model = %v", st.SimCommTime)
	}
}

func TestCostModelInheritedBySplit(t *testing.T) {
	cost := CostModel{WordTime: time.Microsecond, SyncLatency: 10 * time.Microsecond}
	st, err := RunWithCost(4, cost, func(c *Comm) {
		sub := c.Split(c.Rank()%2, 0)
		sub.Send(0, []uint64{1, 2})
		sub.Sync()
		sub.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Parent split superstep (h=8: 2 words to 4 ranks from each... max 8)
	// plus each child's superstep fold in nonzero virtual time.
	if st.SimCommTime <= 0 {
		t.Errorf("split virtual time not accumulated: %v", st.SimCommTime)
	}
}
