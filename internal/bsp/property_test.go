package bsp

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// Property tests: the collectives must be correct for arbitrary payload
// sizes, roots, and processor counts.

func TestBroadcastPropertyAnyPayload(t *testing.T) {
	err := quick.Check(func(seed uint64, rawP, rawK uint16, rawRoot uint8) bool {
		p := int(rawP%7) + 1
		k := int(rawK % 5000)
		root := int(rawRoot) % p
		s := rng.New(seed, 0, 0)
		payload := make([]uint64, k)
		for i := range payload {
			payload[i] = s.Uint64()
		}
		ok := true
		_, err := Run(p, func(c *Comm) {
			var in []uint64
			if c.Rank() == root {
				in = payload
			}
			got := c.Broadcast(root, in)
			if !equalU64(got, payload) {
				ok = false
			}
		})
		return err == nil && ok
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestAllToAllProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, rawP uint8) bool {
		p := int(rawP%6) + 1
		ok := true
		_, err := Run(p, func(c *Comm) {
			parts := make([][]uint64, p)
			for d := 0; d < p; d++ {
				// Variable-size payloads: d+1 words from rank r to d.
				parts[d] = make([]uint64, d+1)
				for i := range parts[d] {
					parts[d][i] = uint64(c.Rank())<<32 | uint64(d)
				}
			}
			got := c.AllToAll(parts)
			for src := 0; src < p; src++ {
				want := uint64(src)<<32 | uint64(c.Rank())
				if len(got[src]) != c.Rank()+1 {
					ok = false
					return
				}
				for _, w := range got[src] {
					if w != want {
						ok = false
						return
					}
				}
			}
		})
		return err == nil && ok
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestAllReduceSumProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, rawP uint8, rawLen uint8) bool {
		p := int(rawP%6) + 1
		length := int(rawLen%20) + 1
		// Expected: each position i sums rank-derived values.
		ok := true
		_, err := Run(p, func(c *Comm) {
			vec := make([]uint64, length)
			for i := range vec {
				vec[i] = uint64(c.Rank()+1) * uint64(i+1)
			}
			got := c.AllReduce(vec, OpSum)
			for i := range got {
				want := uint64(p*(p+1)/2) * uint64(i+1)
				if got[i] != want {
					ok = false
				}
			}
		})
		return err == nil && ok
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestGatherScatterInverse(t *testing.T) {
	// Scatter then gather must return the original parts.
	err := quick.Check(func(seed uint64, rawP uint8) bool {
		p := int(rawP%5) + 1
		s := rng.New(seed, 1, 1)
		parts := make([][]uint64, p)
		for i := range parts {
			parts[i] = make([]uint64, s.Intn(50))
			for j := range parts[i] {
				parts[i][j] = s.Uint64()
			}
		}
		ok := true
		_, err := Run(p, func(c *Comm) {
			var in [][]uint64
			if c.Rank() == 0 {
				in = parts
			}
			mine := c.Scatter(0, in)
			back := c.Gather(0, mine)
			if c.Rank() == 0 {
				for r := 0; r < p; r++ {
					if !equalU64(back[r], parts[r]) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestSplitPartitionInvariant(t *testing.T) {
	// Every processor lands in exactly one subgroup; subgroup sizes sum
	// to p; ranks within each subgroup are a permutation of 0..size-1.
	err := quick.Check(func(rawP, rawColors uint8) bool {
		p := int(rawP%8) + 1
		colors := int(rawColors%3) + 1
		sizes := make([]int, colors)
		ranks := make([][]int, colors)
		var err error
		_, err = Run(p, func(c *Comm) {
			color := c.Rank() % colors
			sub := c.Split(color, c.Rank())
			defer sub.Close()
			sub.Send(0, []uint64{uint64(sub.Rank())})
			sub.Sync()
			if sub.Rank() == 0 {
				sizes[color] = sub.Size()
				for src := 0; src < sub.Size(); src++ {
					ranks[color] = append(ranks[color], int(sub.Recv(src)[0]))
				}
			}
		})
		if err != nil {
			return false
		}
		total := 0
		for color, sz := range sizes {
			total += sz
			seen := make([]bool, sz)
			for _, r := range ranks[color] {
				if r < 0 || r >= sz || seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		return total == p
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}
