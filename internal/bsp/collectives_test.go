package bsp

import (
	"testing"
)

func seq(n int) []uint64 {
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = uint64(i * 3)
	}
	return xs
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBroadcastSmall(t *testing.T) {
	const p = 4
	payload := []uint64{7, 8, 9} // < 2p: direct strategy
	_, err := Run(p, func(c *Comm) {
		var in []uint64
		if c.Rank() == 1 {
			in = payload
		}
		got := c.Broadcast(1, in)
		if !equalU64(got, payload) {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastLargeTwoPhase(t *testing.T) {
	const p = 4
	payload := seq(1000) // >= 2p: scatter+allgather strategy
	_, err := Run(p, func(c *Comm) {
		var in []uint64
		if c.Rank() == 0 {
			in = payload
		}
		got := c.Broadcast(0, in)
		if !equalU64(got, payload) {
			t.Errorf("rank %d: wrong payload (len %d)", c.Rank(), len(got))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastVolumeScalable(t *testing.T) {
	// The two-phase broadcast must avoid the naive p*k volume.
	const p, k = 8, 8000
	payload := seq(k)
	st, err := Run(p, func(c *Comm) {
		var in []uint64
		if c.Rank() == 0 {
			in = payload
		}
		c.Broadcast(0, in)
	})
	if err != nil {
		t.Fatal(err)
	}
	naive := uint64(p * k)
	if st.CommVolume >= naive {
		t.Errorf("broadcast volume %d not below naive %d", st.CommVolume, naive)
	}
	// Should be about 2k + O(p).
	if st.CommVolume > uint64(3*k) {
		t.Errorf("broadcast volume %d too large (want ~%d)", st.CommVolume, 2*k)
	}
}

func TestBroadcastEmpty(t *testing.T) {
	_, err := Run(3, func(c *Comm) {
		got := c.Broadcast(0, nil)
		if len(got) != 0 {
			t.Errorf("rank %d: got %v for empty broadcast", c.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastSingleProc(t *testing.T) {
	_, err := Run(1, func(c *Comm) {
		got := c.Broadcast(0, []uint64{5})
		if !equalU64(got, []uint64{5}) {
			t.Errorf("got %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) {
		parts := c.Gather(2, []uint64{uint64(c.Rank()), uint64(c.Rank() * 10)})
		if c.Rank() != 2 {
			if parts != nil {
				t.Errorf("non-root %d got %v", c.Rank(), parts)
			}
			return
		}
		for src := 0; src < p; src++ {
			want := []uint64{uint64(src), uint64(src * 10)}
			if !equalU64(parts[src], want) {
				t.Errorf("root: parts[%d] = %v, want %v", src, parts[src], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		parts := c.AllGather([]uint64{uint64(c.Rank() + 100)})
		for src := 0; src < p; src++ {
			if len(parts[src]) != 1 || parts[src][0] != uint64(src+100) {
				t.Errorf("rank %d: parts[%d] = %v", c.Rank(), src, parts[src])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		var parts [][]uint64
		if c.Rank() == 0 {
			parts = make([][]uint64, p)
			for i := range parts {
				parts[i] = []uint64{uint64(i * i)}
			}
		}
		mine := c.Scatter(0, parts)
		if len(mine) != 1 || mine[0] != uint64(c.Rank()*c.Rank()) {
			t.Errorf("rank %d scattered %v", c.Rank(), mine)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	const p = 3
	_, err := Run(p, func(c *Comm) {
		parts := make([][]uint64, p)
		for dst := 0; dst < p; dst++ {
			parts[dst] = []uint64{uint64(c.Rank()*10 + dst)}
		}
		got := c.AllToAll(parts)
		for src := 0; src < p; src++ {
			want := uint64(src*10 + c.Rank())
			if len(got[src]) != 1 || got[src][0] != want {
				t.Errorf("rank %d: from %d got %v, want [%d]", c.Rank(), src, got[src], want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	const p = 4
	_, err := Run(p, func(c *Comm) {
		out := c.Reduce(0, []uint64{uint64(c.Rank()), 1}, OpSum)
		if c.Rank() == 0 {
			if !equalU64(out, []uint64{6, 4}) {
				t.Errorf("reduce = %v, want [6 4]", out)
			}
		} else if out != nil {
			t.Errorf("non-root got %v", out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMinMax(t *testing.T) {
	const p = 5
	_, err := Run(p, func(c *Comm) {
		// Copy the first result: a second AllReduce reuses its scratch.
		mn := append([]uint64(nil), c.AllReduce([]uint64{uint64(c.Rank() + 3)}, OpMin)...)
		mx := c.AllReduce([]uint64{uint64(c.Rank() + 3)}, OpMax)
		if mn[0] != 3 {
			t.Errorf("rank %d: min = %d", c.Rank(), mn[0])
		}
		if mx[0] != 7 {
			t.Errorf("rank %d: max = %d", c.Rank(), mx[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesCompose(t *testing.T) {
	// A mini pipeline: all-reduce a sum, then broadcast a derived array,
	// then gather results. Checks that consecutive collectives don't
	// interfere.
	const p = 4
	_, err := Run(p, func(c *Comm) {
		total := c.AllReduce([]uint64{1}, OpSum)[0]
		if total != p {
			t.Errorf("total = %d", total)
		}
		arr := c.Broadcast(0, seq(int(total)*4))
		if len(arr) != p*4 {
			t.Errorf("arr len = %d", len(arr))
		}
		parts := c.Gather(0, []uint64{arr[c.Rank()]})
		if c.Rank() == 0 {
			for src := 0; src < p; src++ {
				if parts[src][0] != uint64(src*3) {
					t.Errorf("parts[%d] = %v", src, parts[src])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
