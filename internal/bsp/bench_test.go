package bsp_test

// Benchmark suite for the BSP hot path. Every benchmark here sticks to
// the stable public surface (Run + Comm methods) so the same file can be
// dropped onto an older checkout for benchstat before/after comparison:
//
//	go test -run='^$' -bench=. -count=10 ./internal/bsp/ > new.txt
//	git worktree add /tmp/old <ref> && cp bench_test.go /tmp/old/...
//	(cd /tmp/old && go test ... > old.txt) && benchstat old.txt new.txt
//
// Machine-reuse benchmarks (which need the newer Machine API) live in
// bench_reuse_test.go.

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
)

var benchPs = []int{1, 4, 16}

// BenchmarkSync measures raw barrier latency: every processor spins on
// Sync b.N times; reported ns/op is the per-superstep cost including
// accounting, amortizing one machine spin-up.
func BenchmarkSync(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			_, err := bsp.Run(p, func(c *bsp.Comm) {
				for i := 0; i < b.N; i++ {
					c.Sync()
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSendRecv measures point-to-point delivery: each processor
// sends k words to its ring successor every superstep and reads the
// words it received. SetBytes makes throughput comparable across sizes.
func BenchmarkSendRecv(b *testing.B) {
	const p = 4
	for _, k := range []int{16, 1024} {
		b.Run(fmt.Sprintf("p=%d/k=%d", p, k), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(k * 8))
			_, err := bsp.Run(p, func(c *bsp.Comm) {
				payload := make([]uint64, k)
				for i := range payload {
					payload[i] = uint64(i)
				}
				dst := (c.Rank() + 1) % c.Size()
				src := (c.Rank() + c.Size() - 1) % c.Size()
				var sink uint64
				for i := 0; i < b.N; i++ {
					c.Send(dst, payload)
					c.Sync()
					in := c.Recv(src)
					sink += in[len(in)-1]
				}
				_ = sink
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// benchCollective runs one collective op b.N times on a p-processor
// machine.
func benchCollective(b *testing.B, p int, body func(c *bsp.Comm, payload []uint64)) {
	b.Helper()
	b.ReportAllocs()
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		payload := make([]uint64, 256)
		for i := range payload {
			payload[i] = uint64(c.Rank()*1000 + i)
		}
		for i := 0; i < b.N; i++ {
			body(c, payload)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBroadcast(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				var in []uint64
				if c.Rank() == 0 {
					in = payload
				}
				c.Broadcast(0, in)
			})
		})
	}
}

func BenchmarkAllGather(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				c.AllGather(payload[:16])
			})
		})
	}
}

func BenchmarkAllToAll(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				parts := make([][]uint64, c.Size())
				chunk := len(payload) / c.Size()
				for d := range parts {
					parts[d] = payload[d*chunk : (d+1)*chunk]
				}
				c.AllToAll(parts)
			})
		})
	}
}

func BenchmarkReduce(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				c.Reduce(0, payload, bsp.OpSum)
			})
		})
	}
}

func BenchmarkAllReduce(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				c.AllReduce(payload, bsp.OpMin)
			})
		})
	}
}

func BenchmarkScatter(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				var parts [][]uint64
				if c.Rank() == 0 {
					parts = make([][]uint64, c.Size())
					chunk := len(payload) / c.Size()
					for d := range parts {
						parts[d] = payload[d*chunk : (d+1)*chunk]
					}
				}
				c.Scatter(0, parts)
			})
		})
	}
}

func BenchmarkGather(b *testing.B) {
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, func(c *bsp.Comm, payload []uint64) {
				c.Gather(0, payload[:16])
			})
		})
	}
}

// benchGraph is the fixed end-to-end workload: a connected-ish ER graph
// small enough that a -benchtime=1x CI smoke run stays fast.
func benchGraph() *graph.Graph {
	return gen.ErdosRenyiM(600, 3000, 7, gen.Config{MaxWeight: 8})
}

// BenchmarkKernelCC runs the paper's O(1)-superstep connected components
// end to end, machine spin-up included — the serving layer's unit of work.
func BenchmarkKernelCC(b *testing.B) {
	g := benchGraph()
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := bsp.Run(p, func(c *bsp.Comm) {
					lo, hi := dist.BlockRange(len(g.Edges), p, c.Rank())
					st := rng.New(11, uint32(c.Rank()), 0)
					r := cc.Parallel(c, g.N, g.Edges[lo:hi], st, cc.Options{})
					if c.Rank() == 0 && r.Count < 1 {
						b.Error("no components")
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelMinCut runs the exact minimum cut with a capped trial
// count so the benchmark measures the BSP machinery, not trial variance.
func BenchmarkKernelMinCut(b *testing.B) {
	g := benchGraph()
	for _, p := range benchPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := bsp.Run(p, func(c *bsp.Comm) {
					lo, hi := dist.BlockRange(len(g.Edges), p, c.Rank())
					st := rng.New(13, uint32(c.Rank()), 0)
					r := mincut.Parallel(c, g.N, g.Edges[lo:hi], st, mincut.Options{
						SuccessProb: 0.9,
						MaxTrials:   4,
					})
					if c.Rank() == 0 && r == nil {
						b.Error("no cut result")
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
