package bsp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// leakGuard snapshots the goroutine count and returns a check that the
// count returned to baseline — a stranded BSP worker is a deadlocked
// barrier, the failure mode the abort protocol exists to prevent.
func leakGuard(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d before, %d after\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	}
}

// A processor panicking inside a collective must unwind every peer —
// including peers already blocked in the collective's internal barrier.
func TestAbortPanicInsideCollective(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			defer leakGuard(t)()
			_, err := Run(p, func(c *Comm) {
				c.Sync()
				if c.Rank() == p-1 {
					panic("boom in collective")
				}
				c.AllReduce([]uint64{uint64(c.Rank())}, OpSum)
			})
			if err == nil || !strings.Contains(err.Error(), "boom in collective") {
				t.Fatalf("err = %v, want the panic surfaced", err)
			}
			if errors.Is(err, ErrCancelled) {
				t.Fatalf("a panic is a failure, not a cancellation: %v", err)
			}
		})
	}
}

// A panic inside a nested Split must cascade through both sub-machine
// levels: siblings blocked in grandchild barriers poll their own
// machine's flag, so only the cascade can reach them.
func TestAbortPanicInsideNestedSplit(t *testing.T) {
	defer leakGuard(t)()
	_, err := Run(4, func(c *Comm) {
		sub := c.Split(c.Rank()%2, c.Rank())
		inner := sub.Split(0, sub.Rank())
		if c.Rank() == 3 {
			panic("nested boom")
		}
		for i := 0; i < 1000; i++ {
			inner.AllReduce([]uint64{1}, OpSum)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "nested boom") {
		t.Fatalf("err = %v, want the nested panic surfaced", err)
	}
}

// Cancel while processors are pounding the barrier: whatever instant the
// flag lands, every processor must unwind and Run must report
// ErrCancelled wrapping the cause.
func TestCancelRacingSync(t *testing.T) {
	for _, p := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			defer leakGuard(t)()
			m, err := NewMachine(p)
			if err != nil {
				t.Fatal(err)
			}
			cause := errors.New("operator said stop")
			errCh := make(chan error, 1)
			go func() {
				_, err := m.Run(func(c *Comm) {
					for {
						c.AllReduce([]uint64{uint64(c.Rank())}, OpSum)
					}
				})
				errCh <- err
			}()
			time.Sleep(2 * time.Millisecond)
			m.Cancel(cause)
			select {
			case err = <-errCh:
			case <-time.After(10 * time.Second):
				t.Fatal("run did not unwind after Cancel")
			}
			if !errors.Is(err, ErrCancelled) || !errors.Is(err, cause) {
				t.Fatalf("err = %v, want ErrCancelled wrapping the cause", err)
			}
		})
	}
}

// Cancel must reach processors looping inside Split sub-machine
// collectives — the cascade from the root machine into live children.
func TestCancelReachesSplitChildren(t *testing.T) {
	defer leakGuard(t)()
	m, err := NewMachine(4)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Run(func(c *Comm) {
			sub := c.Split(c.Rank()/2, c.Rank())
			for {
				sub.AllReduce([]uint64{1}, OpSum)
			}
		})
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	m.Cancel(errors.New("stop the groups"))
	select {
	case err = <-errCh:
	case <-time.After(10 * time.Second):
		t.Fatal("split children did not unwind after Cancel")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// A compute-only loop that polls Aborting must observe the flag without
// ever reaching a Sync.
func TestAbortingPollInComputePhase(t *testing.T) {
	defer leakGuard(t)()
	m, err := NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	var polls atomic.Int64
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Run(func(c *Comm) {
			for !c.Aborting() {
				polls.Add(1)
			}
			c.Sync() // unwinds here: the flag is set
		})
		errCh <- err
	}()
	time.Sleep(2 * time.Millisecond)
	m.Cancel(errors.New("poll test"))
	if err := <-errCh; !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if polls.Load() == 0 {
		t.Fatal("compute loop never ran")
	}
}

func TestRunCtx(t *testing.T) {
	t.Run("deadline", func(t *testing.T) {
		defer leakGuard(t)()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		_, err := RunCtx(ctx, 4, func(c *Comm) {
			for {
				c.Sync()
			}
		})
		if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want ErrCancelled wrapping DeadlineExceeded", err)
		}
	})
	t.Run("pre-cancelled", func(t *testing.T) {
		defer leakGuard(t)()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ran := false
		_, err := RunCtx(ctx, 2, func(c *Comm) { ran = true })
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
		if ran {
			t.Fatal("body ran under a pre-cancelled context")
		}
	})
	t.Run("completes-before-cancel", func(t *testing.T) {
		defer leakGuard(t)()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		st, err := RunCtx(ctx, 4, func(c *Comm) {
			c.AllReduce([]uint64{1}, OpSum)
		})
		if err != nil {
			t.Fatalf("err = %v, want success", err)
		}
		if st.Supersteps == 0 {
			t.Fatal("no supersteps recorded")
		}
	})
	t.Run("background-degenerates-to-run", func(t *testing.T) {
		defer leakGuard(t)()
		if _, err := RunCtx(context.Background(), 2, func(c *Comm) { c.Sync() }); err != nil {
			t.Fatalf("err = %v", err)
		}
	})
}

// A cancelled machine must be reusable: reset clears the flag and the
// next Run completes normally (the property machine pooling relies on).
func TestMachineReuseAfterCancel(t *testing.T) {
	defer leakGuard(t)()
	m, err := NewMachine(4)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := m.Run(func(c *Comm) {
			for {
				c.Sync()
			}
		})
		errCh <- err
	}()
	time.Sleep(time.Millisecond)
	m.Cancel(errors.New("first run dies"))
	if err := <-errCh; !errors.Is(err, ErrCancelled) {
		t.Fatalf("first run err = %v, want ErrCancelled", err)
	}
	st, err := m.Run(func(c *Comm) {
		c.AllReduce([]uint64{uint64(c.Rank() + 1)}, OpSum)
	})
	if err != nil {
		t.Fatalf("second run err = %v, want clean success", err)
	}
	if st.Supersteps == 0 {
		t.Fatal("second run recorded no supersteps")
	}
}

// Injected faults drive the same protocol: a panic rule fails the run, a
// cancel rule cancels it, and a disabled registry injects nothing.
func TestFaultHookInjection(t *testing.T) {
	t.Run("panic", func(t *testing.T) {
		defer leakGuard(t)()
		reg := faults.New(1).Add(faults.Rule{Kind: faults.Panic, Rank: 1, Superstep: 2})
		m, err := NewMachine(4)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultHook(reg.Hook(m))
		_, err = m.Run(func(c *Comm) {
			for i := 0; i < 8; i++ {
				c.Sync()
			}
		})
		if err == nil || !strings.Contains(err.Error(), "injected panic at rank 1 superstep 2") {
			t.Fatalf("err = %v, want the injected panic", err)
		}
		if got := reg.TotalFired(); got != 1 {
			t.Fatalf("fired = %d, want 1", got)
		}
	})
	t.Run("cancel", func(t *testing.T) {
		defer leakGuard(t)()
		reg := faults.New(1).Add(faults.Rule{Kind: faults.Cancel, Rank: faults.AnyRank, Superstep: 1})
		m, err := NewMachine(4)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultHook(reg.Hook(m))
		_, err = m.Run(func(c *Comm) {
			for i := 0; i < 8; i++ {
				c.Sync()
			}
		})
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("err = %v, want ErrCancelled", err)
		}
	})
	t.Run("disabled-is-nil-hook", func(t *testing.T) {
		defer leakGuard(t)()
		reg := faults.New(1).Add(faults.Rule{Kind: faults.Panic, Rank: 0, Superstep: 0})
		reg.Enable(false)
		if h := reg.Hook(nil); h != nil {
			t.Fatal("disabled registry compiled a non-nil hook")
		}
		var nilReg *faults.Registry
		if h := nilReg.Hook(nil); h != nil {
			t.Fatal("nil registry compiled a non-nil hook")
		}
	})
	t.Run("hook-reaches-split-children", func(t *testing.T) {
		defer leakGuard(t)()
		// Superstep 50 is reachable only inside the child machines: the
		// parent performs just the Split exchange's few Syncs, so a firing
		// proves children inherit the hook.
		reg := faults.New(1).Add(faults.Rule{Kind: faults.Panic, Rank: faults.AnyRank, Superstep: 50})
		m, err := NewMachine(4)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultHook(reg.Hook(m))
		_, err = m.Run(func(c *Comm) {
			sub := c.Split(c.Rank()%2, c.Rank())
			for i := 0; i < 100; i++ {
				sub.AllReduce([]uint64{1}, OpSum)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "injected panic") {
			t.Fatalf("err = %v, want an injected panic from a child machine", err)
		}
	})
}
