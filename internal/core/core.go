// Package core orchestrates the paper's algorithms end to end: it spins
// up the BSP machine, distributes the input graph, runs the requested
// computation (connected components §3.2, approximate minimum cut §3.3,
// or exact minimum cut §4), and reports the result together with the
// run's BSP cost profile (supersteps, communication volume, and the
// application/communication wall-time split — the paper's measurement
// set). The root package camc re-exports this API for downstream users.
package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/approxcut"
	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/rng"
)

// Options configures a run. The zero value selects sensible defaults.
type Options struct {
	// Processors is the number of virtual BSP processors (default: the
	// number of CPUs, at most 16).
	Processors int
	// Seed drives all randomness; identical seeds reproduce identical
	// results (default 1).
	Seed uint64
	// SuccessProb is the target success probability of randomized exact
	// algorithms (default 0.9, the artifact's setting).
	SuccessProb float64
	// MaxTrials optionally caps the exact minimum cut trial count.
	MaxTrials int
	// Pipelined selects the fully pipelined O(1)-superstep variant of the
	// approximate cut (default: early-stopping practical variant).
	Pipelined bool
	// Epsilon tunes the connected-components sample size s = n^(1+ε/2)
	// (default 0.5; the paper's cache analyses assume a small constant).
	Epsilon float64
	// ApproxTrials overrides the Θ(log n) trials per sparsity level of
	// the approximate cut (0 = default).
	ApproxTrials int
}

func (o Options) processors() int {
	if o.Processors > 0 {
		return o.Processors
	}
	p := runtime.NumCPU()
	if p > 16 {
		p = 16
	}
	if p < 1 {
		p = 1
	}
	return p
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o Options) successProb() float64 {
	if o.SuccessProb > 0 && o.SuccessProb < 1 {
		return o.SuccessProb
	}
	return 0.9
}

// RunStats summarizes the BSP cost profile of one run.
type RunStats struct {
	P            int
	Supersteps   int
	CommVolume   uint64 // words, sum of per-superstep h-relations
	Time         time.Duration
	CommTime     time.Duration // the T_MPI analogue
	CommFraction float64       // CommTime / Time
	Ops          uint64        // max local operations over processors
}

func statsOf(st *bsp.Stats) RunStats {
	return RunStats{
		P:            st.P,
		Supersteps:   st.Supersteps,
		CommVolume:   st.CommVolume,
		Time:         st.Total(),
		CommTime:     st.MaxCommTime,
		CommFraction: st.CommFraction(),
		Ops:          st.MaxOps,
	}
}

func validate(g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("core: nil graph")
	}
	return g.Validate()
}

// MinCutResult is the outcome of an exact minimum cut run.
type MinCutResult struct {
	Value  uint64
	Side   []bool // one side of the cut partition
	Trials int
	Stats  RunStats
}

// MinCut computes a global minimum cut of g with probability at least
// SuccessProb using the communication-avoiding parallel algorithm.
func MinCut(g *graph.Graph, opts Options) (*MinCutResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	var res *mincut.CutResult
	st, err := bsp.Run(opts.processors(), func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		stream := rng.New(opts.seed(), uint32(c.Rank()), 0)
		r := mincut.Parallel(c, n, local, stream, mincut.Options{
			SuccessProb: opts.successProb(),
			MaxTrials:   opts.MaxTrials,
		})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		return nil, err
	}
	return &MinCutResult{Value: res.Value, Side: res.Side, Trials: res.Trials, Stats: statsOf(st)}, nil
}

// ApproxCutResult is the outcome of an approximate minimum cut run.
type ApproxCutResult struct {
	Value      uint64 // O(log n)-approximate estimate (a power of two)
	Iterations int
	Stats      RunStats
}

// ApproxMinCut estimates the minimum cut of g within an O(log n) factor
// w.h.p. using near-linear work (§3.3).
func ApproxMinCut(g *graph.Graph, opts Options) (*ApproxCutResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	var res *approxcut.Result
	st, err := bsp.Run(opts.processors(), func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		stream := rng.New(opts.seed(), uint32(c.Rank()), 0)
		r := approxcut.Parallel(c, n, local, stream, approxcut.Options{
			Pipelined: opts.Pipelined,
		})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		return nil, err
	}
	return &ApproxCutResult{Value: res.Value, Iterations: res.Iterations, Stats: statsOf(st)}, nil
}

// CCResult is a connected-components labelling.
type CCResult struct {
	Labels []int32 // dense component ids, one per vertex
	Count  int
	Stats  RunStats
}

// ConnectedComponents labels the connected components of g with the
// communication-avoiding iterated-sampling algorithm (§3.2).
func ConnectedComponents(g *graph.Graph, opts Options) (*CCResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	var res *cc.Result
	st, err := bsp.Run(opts.processors(), func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		stream := rng.New(opts.seed(), uint32(c.Rank()), 0)
		r := cc.Parallel(c, n, local, stream, cc.Options{})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		return nil, err
	}
	return &CCResult{Labels: res.Labels, Count: res.Count, Stats: statsOf(st)}, nil
}

// AllCutsResult carries every distinct minimum cut of a graph.
type AllCutsResult struct {
	Value uint64
	Sides [][]bool // canonical orientation (vertex 0 outside each side)
	Stats RunStats
}

// AllMinCuts computes the set of all distinct global minimum cuts
// (Lemma 4.3), each found with probability at least SuccessProb, with
// the tie-preserving trials distributed over the processors.
func AllMinCuts(g *graph.Graph, opts Options) (*AllCutsResult, error) {
	if err := validate(g); err != nil {
		return nil, err
	}
	var cuts []*mincut.CutResult
	st, err := bsp.Run(opts.processors(), func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		stream := rng.New(opts.seed(), uint32(c.Rank()), 0)
		r := mincut.ParallelAllMinCuts(c, n, local, stream, opts.successProb())
		if c.Rank() == 0 {
			cuts = r
		}
	})
	if err != nil {
		return nil, err
	}
	res := &AllCutsResult{Stats: statsOf(st)}
	for _, c := range cuts {
		res.Value = c.Value
		res.Sides = append(res.Sides, c.Side)
	}
	return res, nil
}
