package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.processors() < 1 {
		t.Error("default processors < 1")
	}
	if o.seed() != 1 {
		t.Errorf("default seed = %d", o.seed())
	}
	if o.successProb() != 0.9 {
		t.Errorf("default success prob = %v", o.successProb())
	}
	o = Options{Processors: 3, Seed: 9, SuccessProb: 0.75}
	if o.processors() != 3 || o.seed() != 9 || o.successProb() != 0.75 {
		t.Error("explicit options not honored")
	}
	o = Options{SuccessProb: 1.5}
	if o.successProb() != 0.9 {
		t.Error("out-of-range success prob not defaulted")
	}
}

func TestMinCutEndToEnd(t *testing.T) {
	g := gen.TwoCliques(10, 2, 5, 1)
	res, err := MinCut(g, Options{Processors: 3, Seed: 4, SuccessProb: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Errorf("cut = %d, want 2", res.Value)
	}
	if g.CutValue(res.Side) != res.Value {
		t.Error("certificate mismatch")
	}
	if res.Stats.P != 3 {
		t.Errorf("stats.P = %d", res.Stats.P)
	}
	if res.Stats.Time <= 0 {
		t.Error("no time recorded")
	}
	if res.Stats.CommFraction < 0 || res.Stats.CommFraction > 1 {
		t.Errorf("comm fraction = %v", res.Stats.CommFraction)
	}
}

func TestApproxMinCutEndToEnd(t *testing.T) {
	g := gen.Cycle(64, 1)
	res, err := ApproxMinCut(g, Options{Processors: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 1 || res.Value > 16 {
		t.Errorf("estimate = %d for true cut 2", res.Value)
	}
	// Pipelined variant.
	res2, err := ApproxMinCut(g, Options{Processors: 2, Seed: 6, Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Value < 1 || res2.Value > 16 {
		t.Errorf("pipelined estimate = %d", res2.Value)
	}
}

func TestConnectedComponentsEndToEnd(t *testing.T) {
	g := graph.New(9)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(4, 5, 1)
	res, err := ConnectedComponents(g, Options{Processors: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 6 {
		t.Errorf("count = %d, want 6", res.Count)
	}
	if len(res.Labels) != 9 {
		t.Errorf("labels len %d", len(res.Labels))
	}
}

func TestValidateRejects(t *testing.T) {
	if _, err := MinCut(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	bad := graph.New(1)
	bad.Edges = []graph.Edge{{U: 0, V: 0, W: 1}}
	if _, err := ConnectedComponents(bad, Options{}); err == nil {
		t.Error("loop accepted")
	}
}

func TestMaxTrialsRespected(t *testing.T) {
	g := gen.Cycle(40, 1)
	res, err := MinCut(g, Options{Processors: 2, Seed: 3, MaxTrials: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 5 {
		t.Errorf("trials = %d, want capped 5", res.Trials)
	}
}

func TestEpsilonOption(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 8, 3, gen.Config{})
	// Both extremes must agree on the answer; the knob only shifts the
	// iteration/volume trade-off.
	small, err := ConnectedComponents(g, Options{Processors: 2, Seed: 5, Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	big, err := ConnectedComponents(g, Options{Processors: 2, Seed: 5, Epsilon: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if small.Count != big.Count {
		t.Errorf("epsilon changed the answer: %d vs %d", small.Count, big.Count)
	}
}

func TestApproxTrialsOption(t *testing.T) {
	g := gen.Cycle(64, 1)
	res, err := ApproxMinCut(g, Options{Processors: 2, Seed: 4, ApproxTrials: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 1 || res.Value > 16 {
		t.Errorf("estimate %d", res.Value)
	}
}

func TestAllMinCutsCore(t *testing.T) {
	g := gen.Star(7, 2)
	res, err := AllMinCuts(g, Options{Processors: 3, Seed: 8, SuccessProb: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 || len(res.Sides) != 6 {
		t.Errorf("value %d with %d sides, want 2 with 6", res.Value, len(res.Sides))
	}
	if res.Stats.P != 3 {
		t.Errorf("stats.P = %d", res.Stats.P)
	}
}
