package faults

import (
	"strings"
	"testing"
	"time"
)

type fakeCanceller struct{ causes []error }

func (f *fakeCanceller) Cancel(err error) { f.causes = append(f.causes, err) }

func TestParse(t *testing.T) {
	t.Run("empty-disables", func(t *testing.T) {
		for _, spec := range []string{"", "   ", "\t\n"} {
			r, err := Parse(spec)
			if r != nil || err != nil {
				t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, r, err)
			}
			if r.Enabled() {
				t.Fatal("nil registry reports enabled")
			}
		}
	})
	t.Run("full-grammar", func(t *testing.T) {
		r, err := Parse("seed=7;stall@0:2:50ms;panic@1:3;cancel@*:4;panic@*:*:p0.25:x*")
		if err != nil {
			t.Fatal(err)
		}
		if !r.Enabled() {
			t.Fatal("parsed registry not enabled")
		}
		if r.seed != 7 {
			t.Fatalf("seed = %d, want 7", r.seed)
		}
		if len(r.rules) != 4 {
			t.Fatalf("rules = %d, want 4", len(r.rules))
		}
		want := []Rule{
			{Kind: Stall, Rank: 0, Superstep: 2, Delay: 50 * time.Millisecond},
			{Kind: Panic, Rank: 1, Superstep: 3},
			{Kind: Cancel, Rank: AnyRank, Superstep: 4},
			{Kind: Panic, Rank: AnyRank, Superstep: AnySuperstep, Prob: 0.25, Times: -1},
		}
		for i, w := range want {
			if got := r.rules[i].Rule; got != w {
				t.Errorf("rule %d = %+v, want %+v", i, got, w)
			}
		}
		// Point rules default to one fire; probabilistic x* is unlimited.
		if got := r.rules[0].remaining.Load(); got != 1 {
			t.Errorf("point rule remaining = %d, want 1", got)
		}
		if got := r.rules[3].remaining.Load(); got != -1 {
			t.Errorf("x* rule remaining = %d, want -1", got)
		}
	})
	t.Run("self-healing-kinds", func(t *testing.T) {
		r, err := Parse("crash@1:2;partition@2:1:300ms")
		if err != nil {
			t.Fatal(err)
		}
		want := []Rule{
			{Kind: Crash, Rank: 1, Superstep: 2},
			{Kind: Partition, Rank: 2, Superstep: 1, Delay: 300 * time.Millisecond},
		}
		for i, w := range want {
			if got := r.rules[i].Rule; got != w {
				t.Errorf("rule %d = %+v, want %+v", i, got, w)
			}
		}
		if Crash.String() != "crash" || Partition.String() != "partition" {
			t.Errorf("kind strings: %q, %q", Crash.String(), Partition.String())
		}
		// Both are transport kinds: the Sync hook skips them, the wire
		// hook fires them.
		hook := r.Hook(nil)
		hook(1, 2)
		hook(2, 1)
		if n := r.TotalFired(); n != 0 {
			t.Fatalf("Sync hook consumed %d transport firings", n)
		}
		wh1 := r.WireHook(1)
		if _, _, crash, _ := wh1(2); !crash {
			t.Fatal("crash@1:2 did not fire through the wire hook")
		}
		if _, _, crash, _ := wh1(2); crash {
			t.Fatal("crash@1:2 fired twice")
		}
		wh2 := r.WireHook(2)
		if _, _, _, part := wh2(1); part != 300*time.Millisecond {
			t.Fatalf("partition@2:1:300ms gave %v", part)
		}
		if r.Fired()["crash"] != 1 || r.Fired()["partition"] != 1 {
			t.Fatalf("fired = %v", r.Fired())
		}
	})
	t.Run("rejects", func(t *testing.T) {
		for _, spec := range []string{
			"bogus@0:1",      // unknown kind
			"panic@0",        // missing superstep
			"panic",          // no @
			"stall@0:1",      // stall without duration
			"partition@0:1",  // partition without duration
			"panic@-1:0",     // negative rank
			"panic@0:1:p1.5", // probability out of range
			"panic@0:1:x0",   // zero fire count
			"panic@0:1:huh",  // unparsable option
			"seed=banana;p@0:1",
			"seed=1", // seed but no rules
		} {
			if _, err := Parse(spec); err == nil {
				t.Errorf("Parse(%q) accepted, want error", spec)
			}
		}
	})
}

func TestHookFiring(t *testing.T) {
	t.Run("point-rule-fires-once", func(t *testing.T) {
		target := &fakeCanceller{}
		r := New(1).Add(Rule{Kind: Cancel, Rank: 2, Superstep: 5})
		h := r.Hook(target)
		if h == nil {
			t.Fatal("enabled registry compiled nil hook")
		}
		for ss := uint64(0); ss < 10; ss++ {
			for rank := 0; rank < 4; rank++ {
				h(rank, ss)
				h(rank, ss) // repeated Sync of the same point must not refire
			}
		}
		if len(target.causes) != 1 {
			t.Fatalf("cancel fired %d times, want 1", len(target.causes))
		}
		if !strings.Contains(target.causes[0].Error(), "rank 2 superstep 5") {
			t.Errorf("cause = %v", target.causes[0])
		}
		if got := r.Fired()["cancel"]; got != 1 {
			t.Errorf("Fired()[cancel] = %d, want 1", got)
		}
	})
	t.Run("times-bound", func(t *testing.T) {
		target := &fakeCanceller{}
		r := New(1).Add(Rule{Kind: Cancel, Rank: AnyRank, Superstep: AnySuperstep, Times: 3})
		h := r.Hook(target)
		for i := 0; i < 10; i++ {
			h(i, uint64(i))
		}
		if len(target.causes) != 3 {
			t.Fatalf("fired %d times, want 3", len(target.causes))
		}
	})
	t.Run("stall-sleeps", func(t *testing.T) {
		r := New(1).Add(Rule{Kind: Stall, Rank: 0, Superstep: 0, Delay: 30 * time.Millisecond})
		h := r.Hook(nil)
		start := time.Now()
		h(0, 0)
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Fatalf("stall slept %v, want >= 30ms", d)
		}
	})
	t.Run("panic-fires", func(t *testing.T) {
		r := New(1).Add(Rule{Kind: Panic, Rank: 1, Superstep: 1})
		h := r.Hook(nil)
		h(0, 1) // wrong rank: no fire
		defer func() {
			if rec := recover(); rec == nil {
				t.Fatal("no panic at the matched point")
			}
		}()
		h(1, 1)
	})
	t.Run("disable-mid-flight", func(t *testing.T) {
		target := &fakeCanceller{}
		r := New(1).Add(Rule{Kind: Cancel, Rank: AnyRank, Superstep: AnySuperstep, Times: -1})
		h := r.Hook(target)
		h(0, 0)
		r.Enable(false)
		h(0, 1)
		if len(target.causes) != 1 {
			t.Fatalf("fired %d times after disable, want 1", len(target.causes))
		}
	})
}

// The probabilistic roll must be a pure function of (seed, rule, rank,
// superstep): identical seeds agree point-for-point, and the firing rate
// lands near the requested probability.
func TestProbabilisticDeterminism(t *testing.T) {
	fires := func(seed uint64) []bool {
		r := New(seed).Add(Rule{Kind: Cancel, Rank: AnyRank, Superstep: AnySuperstep, Prob: 0.3})
		var out []bool
		for rank := 0; rank < 16; rank++ {
			for ss := uint64(0); ss < 64; ss++ {
				out = append(out, r.roll(0, 0.3, rank, ss))
			}
		}
		return out
	}
	a, b := fires(42), fires(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at point %d", i)
		}
	}
	c := fires(43)
	diff, hits := 0, 0
	for i := range a {
		if a[i] != c[i] {
			diff++
		}
		if a[i] {
			hits++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical patterns")
	}
	rate := float64(hits) / float64(len(a))
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("firing rate %.3f far from requested 0.3", rate)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "panic@0:1")
	r, err := FromEnv()
	if err != nil || !r.Enabled() {
		t.Fatalf("FromEnv = %v, %v", r, err)
	}
	t.Setenv(EnvVar, "")
	r, err = FromEnv()
	if r != nil || err != nil {
		t.Fatalf("empty env: FromEnv = %v, %v; want nil, nil", r, err)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry enabled")
	}
	if h := r.Hook(nil); h != nil {
		t.Fatal("nil registry compiled a hook")
	}
	if got := r.TotalFired(); got != 0 {
		t.Fatal("nil registry fired")
	}
	if m := r.Fired(); len(m) != 0 {
		t.Fatal("nil registry Fired() non-empty")
	}
}

func TestParseTransportKinds(t *testing.T) {
	r, err := Parse("drop@1:5;stall-conn@2:3:80ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.rules) != 2 {
		t.Fatalf("got %d rules", len(r.rules))
	}
	if r.rules[0].Kind != Drop || r.rules[0].Rank != 1 || r.rules[0].Superstep != 5 {
		t.Fatalf("drop rule = %+v", r.rules[0].Rule)
	}
	if r.rules[1].Kind != StallConn || r.rules[1].Delay != 80*time.Millisecond {
		t.Fatalf("stall-conn rule = %+v", r.rules[1].Rule)
	}
	if _, err := Parse("stall-conn@0:1"); err == nil {
		t.Fatal("stall-conn without duration must not parse")
	}
	if _, err := Parse("drop@x:1"); err == nil {
		t.Fatal("bad rank must not parse")
	}
}

func TestWireHookFiring(t *testing.T) {
	r, err := Parse("drop@1:5;stall-conn@2:3:80ms")
	if err != nil {
		t.Fatal(err)
	}

	// Rank 0 matches no transport rule: no hook at all.
	if h := r.WireHook(0); h != nil {
		t.Fatal("rank 0 got a wire hook despite matching no rule")
	}

	h1 := r.WireHook(1)
	if h1 == nil {
		t.Fatal("rank 1 needs a wire hook")
	}
	if drop, stall, _, _ := h1(4); drop || stall != 0 {
		t.Fatalf("superstep 4 fired: drop=%v stall=%v", drop, stall)
	}
	if drop, _, _, _ := h1(5); !drop {
		t.Fatal("drop@1:5 did not fire at superstep 5")
	}
	// Point rules fire once.
	if drop, _, _, _ := h1(5); drop {
		t.Fatal("drop@1:5 fired twice")
	}

	h2 := r.WireHook(2)
	if _, stall, _, _ := h2(3); stall != 80*time.Millisecond {
		t.Fatalf("stall-conn@2:3:80ms gave %v", stall)
	}
	if r.Fired()["drop"] != 1 || r.Fired()["stall-conn"] != 1 {
		t.Fatalf("fired = %v", r.Fired())
	}
}

// TestSyncHookSkipsTransportKinds pins the split responsibility: a spec
// of pure transport rules compiles to a Sync hook that never fires (the
// rules belong to the wire), and the Sync kinds never leak into the
// wire hook.
func TestSyncHookSkipsTransportKinds(t *testing.T) {
	r, err := Parse("drop@*:*:x*;stall@0:1:5ms")
	if err != nil {
		t.Fatal(err)
	}
	hook := r.Hook(nil)
	hook(0, 0) // would take the drop rule if Sync hooks matched transport kinds
	if got := r.Fired()["drop"]; got != 0 {
		t.Fatalf("Sync hook consumed %d drop firings", got)
	}
	wh := r.WireHook(0)
	if _, stall, _, _ := wh(1); stall != 0 {
		t.Fatal("wire hook fired the Sync-side stall rule")
	}
	if drop, _, _, _ := wh(1); !drop {
		t.Fatal("wildcard drop rule did not fire through the wire hook")
	}
}
