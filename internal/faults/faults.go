// Package faults is a deterministic fault-injection registry for the
// BSP stack. A Registry holds a set of rules — panic, stall, or cancel
// at chosen (rank, superstep) points — and compiles into a bsp.FaultHook
// that machines poll at every Sync entry. It exists so chaos tests (and
// staging deployments) can prove the abort/cancellation protocol under
// processor failure, slow processors, and racing cancellations without
// any nondeterministic scheduling tricks.
//
// Determinism: point rules (pinned rank and superstep) fire at exactly
// the named Sync of the named processor. Probabilistic rules hash
// (seed, rule, rank, superstep) through SplitMix64, so a given seed
// yields the same firing pattern on every run — "seeded chaos".
//
// Overhead: a disabled registry (or a nil one) contributes a nil hook,
// which costs the BSP runtime one predictable branch per Sync; BSP
// accounting is byte-identical with injection disabled because hooks
// never send, receive, or sync.
//
// Spec grammar (CAMC_FAULTS, camcd -faults, or Parse):
//
//	spec  := [ "seed=" uint ";" ] rule { ";" rule }
//	rule  := kind "@" rank ":" superstep { ":" opt }
//	kind  := "panic" | "stall" | "cancel" | "drop" | "stall-conn" |
//	         "crash" | "partition"
//	rank  := "*" | uint            (virtual processor, per machine)
//	superstep := "*" | uint        (0-based Sync index, per machine)
//	opt   := duration              (stall length, e.g. "50ms"; stall,
//	                                stall-conn, and partition only)
//	       | "p" float             (firing probability at matching points)
//	       | "x" uint | "x*"       (max fires; default 1, "x*" unlimited)
//
// The first three kinds fire inside Sync through the bsp.FaultHook; the
// transport kinds fire inside the TCP fabric's Exchange through a
// wire hook (see WireHook) and are inert on the in-process transport,
// which has no connections to kill or stall.
//
// Examples:
//
//	stall@0:2:50ms            processor 0 stalls 50ms at superstep 2, once
//	panic@1:3                 processor 1 panics at superstep 3, once
//	cancel@*:4                whichever processor reaches superstep 4 first cancels
//	drop@1:5                  rank 1's process severs all peer connections at superstep 5
//	stall-conn@2:3:80ms       rank 2's process delays its superstep-3 frames by 80ms
//	crash@1:2                 rank 1's process hard-exits at superstep 2 (kill -9 equivalent)
//	partition@2:1:300ms       rank 2's process is partitioned off the mesh for 300ms
//	seed=7;panic@*:*:p0.001:x*  every (rank, superstep) panics w.p. 0.1%, seeded
package faults

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// EnvVar is the environment variable FromEnv reads the spec from.
const EnvVar = "CAMC_FAULTS"

// Kind enumerates the injectable faults.
type Kind uint8

const (
	// Panic makes the matched processor panic inside Sync — a processor
	// failure that must ride the abort protocol.
	Panic Kind = iota
	// Stall puts the matched processor to sleep inside Sync — a slow
	// (straggling) processor holding the barrier.
	Stall
	// Cancel invokes Cancel on the hook's bound machine — an external
	// cancellation racing the superstep.
	Cancel
	// Drop severs every peer connection of the matched rank's process at
	// the matched superstep — a worker crash as the survivors see it.
	// Transport kind: fires through WireHook, not the Sync hook.
	Drop
	// StallConn delays the matched rank's outgoing frames for the matched
	// superstep — a congested or half-dead link. Transport kind.
	StallConn
	// Crash hard-exits the matched rank's process at the matched
	// superstep (the in-protocol kill -9): the survivors see ErrPeerLost
	// and a supervisor sees transport.CrashExitCode. Transport kind.
	Crash
	// Partition cuts the matched rank's process off the mesh for the
	// rule's duration: every connection severed and reconnects refused
	// until the deadline, after which the mesh self-heals. Transport
	// kind; the duration option is required.
	Partition
)

// transport reports whether the kind fires through WireHook (inside
// the TCP fabric) rather than the Sync hook.
func (k Kind) transport() bool {
	return k == Drop || k == StallConn || k == Crash || k == Partition
}

func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Cancel:
		return "cancel"
	case Drop:
		return "drop"
	case StallConn:
		return "stall-conn"
	case Crash:
		return "crash"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// AnyRank / AnySuperstep are the wildcard values of Rule.Rank and
// Rule.Superstep.
const (
	AnyRank      = -1
	AnySuperstep = -1
)

// Rule is one injection point.
type Rule struct {
	Kind      Kind
	Rank      int           // AnyRank or a processor rank
	Superstep int64         // AnySuperstep or a 0-based superstep index
	Delay     time.Duration // Stall: how long to sleep
	Prob      float64       // 0 = always fire when matched; else per-point probability
	Times     int64         // max fires; 0 = default (1, or unlimited when Prob > 0)
}

type rule struct {
	Rule
	remaining atomic.Int64 // fires left; negative = unlimited
	fired     atomic.Int64
}

func (r *rule) matches(rank int, superstep uint64) bool {
	if r.Rank != AnyRank && r.Rank != rank {
		return false
	}
	return r.Superstep == AnySuperstep || uint64(r.Superstep) == superstep
}

// take consumes one firing slot, returning false when exhausted.
func (r *rule) take() bool {
	for {
		n := r.remaining.Load()
		if n < 0 {
			r.fired.Add(1)
			return true
		}
		if n == 0 {
			return false
		}
		if r.remaining.CompareAndSwap(n, n-1) {
			r.fired.Add(1)
			return true
		}
	}
}

// Registry is a set of injection rules bound to a seed. The zero-value
// (or nil) registry is valid and permanently disabled.
type Registry struct {
	seed    uint64
	enabled atomic.Bool
	rules   []*rule
}

// New returns an empty, enabled registry with the given probabilistic
// seed.
func New(seed uint64) *Registry {
	r := &Registry{seed: seed}
	r.enabled.Store(true)
	return r
}

// Add registers a rule and returns the registry for chaining. Times
// defaults to one fire for point rules and unlimited for probabilistic
// ones.
func (r *Registry) Add(ru Rule) *Registry {
	times := ru.Times
	if times == 0 {
		if ru.Prob > 0 {
			times = -1
		} else {
			times = 1
		}
	}
	rr := &rule{Rule: ru}
	rr.remaining.Store(times)
	r.rules = append(r.rules, rr)
	return r
}

// Enabled reports whether the registry injects anything. Safe on nil.
func (r *Registry) Enabled() bool {
	return r != nil && r.enabled.Load() && len(r.rules) > 0
}

// Enable flips injection on or off without touching rule state.
func (r *Registry) Enable(on bool) { r.enabled.Store(on) }

// Canceller is the slice of *bsp.Machine the cancel fault needs; the
// interface keeps this package free of a bsp dependency (bsp tests
// import faults).
type Canceller interface{ Cancel(error) }

// Hook compiles the registry into a fault hook bound to target (the
// machine Cancel rules act on). A nil or disabled registry yields a nil
// hook, which the BSP runtime skips entirely.
func (r *Registry) Hook(target Canceller) func(rank int, superstep uint64) {
	if !r.Enabled() {
		return nil
	}
	return func(rank int, superstep uint64) {
		if !r.enabled.Load() {
			return
		}
		for i, ru := range r.rules {
			if ru.Kind.transport() {
				continue // transport kinds fire through WireHook
			}
			if !ru.matches(rank, superstep) {
				continue
			}
			if ru.Prob > 0 && !r.roll(uint64(i), ru.Prob, rank, superstep) {
				continue
			}
			if !ru.take() {
				continue
			}
			switch ru.Kind {
			case Stall:
				time.Sleep(ru.Delay)
			case Cancel:
				if target != nil {
					target.Cancel(fmt.Errorf("faults: injected cancel at rank %d superstep %d", rank, superstep))
				}
			case Panic:
				panic(fmt.Sprintf("faults: injected panic at rank %d superstep %d", rank, superstep))
			}
		}
	}
}

// WireHook compiles the registry's transport rules (Drop, StallConn,
// Crash, Partition) into the TCP fabric's per-superstep hook for one
// rank. It returns nil when no transport rule could ever match that
// rank, so the fabric's fast path stays hook-free. The hook runs at
// the top of every Exchange: drop=true makes the process sever all
// peer connections (the surviving ranks see ErrPeerLost), stall delays
// the rank's outgoing frames, crash=true hard-exits the process, and
// partition > 0 cuts the process off the mesh for that duration.
func (r *Registry) WireHook(rank int) func(superstep uint64) (drop bool, stall time.Duration, crash bool, partition time.Duration) {
	if !r.Enabled() {
		return nil
	}
	any := false
	for _, ru := range r.rules {
		if ru.Kind.transport() && (ru.Rank == AnyRank || ru.Rank == rank) {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	return func(superstep uint64) (drop bool, stall time.Duration, crash bool, partition time.Duration) {
		if !r.enabled.Load() {
			return false, 0, false, 0
		}
		for i, ru := range r.rules {
			if !ru.Kind.transport() {
				continue
			}
			if !ru.matches(rank, superstep) {
				continue
			}
			if ru.Prob > 0 && !r.roll(uint64(i), ru.Prob, rank, superstep) {
				continue
			}
			if !ru.take() {
				continue
			}
			switch ru.Kind {
			case Drop:
				drop = true
			case StallConn:
				if ru.Delay > stall {
					stall = ru.Delay
				}
			case Crash:
				crash = true
			case Partition:
				if ru.Delay > partition {
					partition = ru.Delay
				}
			}
		}
		return drop, stall, crash, partition
	}
}

// roll decides a probabilistic firing deterministically: SplitMix64 over
// (seed, rule index, rank, superstep) mapped to [0, 1).
func (r *Registry) roll(idx uint64, prob float64, rank int, superstep uint64) bool {
	x := r.seed
	x ^= 0x9e3779b97f4a7c15 * (idx + 1)
	x ^= uint64(rank+1) * 0xbf58476d1ce4e5b9
	x ^= superstep * 0x94d049bb133111eb
	x = splitmix64(x)
	return float64(x>>11)/float64(1<<53) < prob
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fired returns the total number of injections performed, by kind
// string — the chaos-test observability surface.
func (r *Registry) Fired() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	for _, ru := range r.rules {
		out[ru.Kind.String()] += ru.fired.Load()
	}
	return out
}

// TotalFired returns the total number of injections across all rules.
func (r *Registry) TotalFired() int64 {
	if r == nil {
		return 0
	}
	var t int64
	for _, ru := range r.rules {
		t += ru.fired.Load()
	}
	return t
}

// FromEnv parses the CAMC_FAULTS environment variable. Unset or empty
// returns (nil, nil): injection stays off.
func FromEnv() (*Registry, error) { return Parse(os.Getenv(EnvVar)) }

// Parse builds an enabled registry from a spec string (see the package
// comment for the grammar). An empty or all-whitespace spec returns
// (nil, nil): injection stays off.
func Parse(spec string) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed uint64 = 1
	parts := strings.Split(spec, ";")
	rules := make([]Rule, 0, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i == 0 && strings.HasPrefix(part, "seed=") {
			s, err := strconv.ParseUint(strings.TrimPrefix(part, "seed="), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed in %q: %v", part, err)
			}
			seed = s
			continue
		}
		ru, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		rules = append(rules, ru)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q has no rules", spec)
	}
	r := New(seed)
	for _, ru := range rules {
		r.Add(ru)
	}
	return r, nil
}

func parseRule(s string) (Rule, error) {
	kindStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Rule{}, fmt.Errorf("faults: rule %q: want kind@rank:superstep[:opts]", s)
	}
	var ru Rule
	switch kindStr {
	case "panic":
		ru.Kind = Panic
	case "stall":
		ru.Kind = Stall
	case "cancel":
		ru.Kind = Cancel
	case "drop":
		ru.Kind = Drop
	case "stall-conn":
		ru.Kind = StallConn
	case "crash":
		ru.Kind = Crash
	case "partition":
		ru.Kind = Partition
	default:
		return Rule{}, fmt.Errorf("faults: rule %q: unknown kind %q (want panic|stall|cancel|drop|stall-conn|crash|partition)", s, kindStr)
	}
	fields := strings.Split(rest, ":")
	if len(fields) < 2 {
		return Rule{}, fmt.Errorf("faults: rule %q: want rank:superstep after kind@", s)
	}
	var err error
	if ru.Rank, err = parseWildInt(fields[0], AnyRank); err != nil {
		return Rule{}, fmt.Errorf("faults: rule %q: bad rank %q", s, fields[0])
	}
	ss, err := parseWildInt(fields[1], AnySuperstep)
	if err != nil {
		return Rule{}, fmt.Errorf("faults: rule %q: bad superstep %q", s, fields[1])
	}
	ru.Superstep = int64(ss)
	for _, opt := range fields[2:] {
		switch {
		case opt == "x*":
			ru.Times = -1
		case strings.HasPrefix(opt, "x"):
			n, err := strconv.ParseInt(opt[1:], 10, 64)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faults: rule %q: bad fire count %q", s, opt)
			}
			ru.Times = n
		case strings.HasPrefix(opt, "p"):
			p, err := strconv.ParseFloat(opt[1:], 64)
			if err != nil || p <= 0 || p > 1 || math.IsNaN(p) {
				return Rule{}, fmt.Errorf("faults: rule %q: bad probability %q", s, opt)
			}
			ru.Prob = p
		default:
			d, err := time.ParseDuration(opt)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("faults: rule %q: bad option %q (want duration, pPROB, or xN)", s, opt)
			}
			ru.Delay = d
		}
	}
	if (ru.Kind == Stall || ru.Kind == StallConn || ru.Kind == Partition) && ru.Delay == 0 {
		return Rule{}, fmt.Errorf("faults: rule %q: %s needs a duration option", s, ru.Kind)
	}
	return ru, nil
}

func parseWildInt(s string, wild int) (int, error) {
	if s == "*" {
		return wild, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return n, nil
}
