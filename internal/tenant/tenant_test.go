package tenant

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{Tenants: []TenantConfig{
		{Name: "alice", Token: "tok-a", Quotas: Quotas{QPS: 2, Burst: 2, MaxConcurrent: 2, MaxGraphs: 2, MaxBytes: 100}},
		{Name: "bob", Token: "tok-b", Quotas: Quotas{QPS: 1000, MaxConcurrent: 64}},
		{Name: "carol", Token: "tok-c"}, // unlimited everything
	}}
}

// fakeClock is a manually advanced clock for deterministic refill tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(t *testing.T) (*Registry, *fakeClock) {
	t.Helper()
	r := NewRegistry(testConfig())
	clk := newFakeClock()
	r.SetNow(clk.now)
	return r, clk
}

func TestParseConfigErrors(t *testing.T) {
	for _, tc := range []struct{ name, body string }{
		{"not json", `{`},
		{"unknown field", `{"tenants":[{"name":"a","token":"t","qps":1}]}`},
		{"no name", `{"tenants":[{"token":"t"}]}`},
		{"no token", `{"tenants":[{"name":"a"}]}`},
		{"dup name", `{"tenants":[{"name":"a","token":"t1"},{"name":"a","token":"t2"}]}`},
		{"dup token", `{"tenants":[{"name":"a","token":"t"},{"name":"b","token":"t"}]}`},
		{"negative quota", `{"tenants":[{"name":"a","token":"t","quotas":{"qps":-1}}]}`},
	} {
		if _, err := ParseConfig(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	good := `{"tenants":[{"name":"a","token":"t","quotas":{"qps":2.5,"max_graphs":3}}]}`
	cfg, err := ParseConfig(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 1 || cfg.Tenants[0].Quotas.QPS != 2.5 {
		t.Fatalf("parsed %+v", cfg)
	}
}

func TestAuthenticate(t *testing.T) {
	r, _ := newTestRegistry(t)
	if _, err := r.Authenticate(""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("empty token: %v", err)
	}
	if _, err := r.Authenticate("nope"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown token: %v", err)
	}
	tn, err := r.Authenticate("tok-a")
	if err != nil || tn.Name() != "alice" {
		t.Fatalf("tok-a -> %v, %v", tn, err)
	}
}

// TestBucketRefillDeterminism pins the token bucket's arithmetic under
// a fake clock: burst drains, refill restores exactly rate*dt tokens,
// and Retry-After reports the exact deficit.
func TestBucketRefillDeterminism(t *testing.T) {
	r, clk := newTestRegistry(t)
	alice, _ := r.Lookup("alice") // 2 QPS, burst 2

	// Drain the burst.
	for i := 0; i < 2; i++ {
		release, _, err := alice.AcquireQuery()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		release()
	}
	// Third request: empty bucket, deficit is exactly half a second at
	// 2 QPS.
	_, retry, err := alice.AcquireQuery()
	if !errors.Is(err, ErrQPS) {
		t.Fatalf("want ErrQPS, got %v", err)
	}
	if retry != 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want 500ms", retry)
	}

	// 250ms restores half a token — still rejected, deficit now 250ms.
	clk.advance(250 * time.Millisecond)
	_, retry, err = alice.AcquireQuery()
	if !errors.Is(err, ErrQPS) || retry != 250*time.Millisecond {
		t.Fatalf("after 250ms: retry=%v err=%v", retry, err)
	}

	// Another 250ms completes the token.
	clk.advance(250 * time.Millisecond)
	release, _, err := alice.AcquireQuery()
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	release()

	// A long idle period caps at the burst, never beyond.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		release, _, err := alice.AcquireQuery()
		if err != nil {
			t.Fatalf("post-idle acquire %d: %v", i, err)
		}
		release()
	}
	if _, _, err := alice.AcquireQuery(); !errors.Is(err, ErrQPS) {
		t.Fatalf("burst must cap at 2: %v", err)
	}
}

// TestConcurrencyLimit exhausts the concurrent-query quota without
// touching QPS (slots are released, tokens are not).
func TestConcurrencyLimit(t *testing.T) {
	r, clk := newTestRegistry(t)
	clk.advance(time.Hour)
	bob, _ := r.Lookup("bob") // MaxConcurrent 64
	var releases []func()
	for i := 0; i < 64; i++ {
		release, _, err := bob.AcquireQuery()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		releases = append(releases, release)
	}
	_, retry, err := bob.AcquireQuery()
	if !errors.Is(err, ErrConcurrency) {
		t.Fatalf("want ErrConcurrency, got %v", err)
	}
	if retry <= 0 {
		t.Fatalf("want a positive retry hint, got %v", retry)
	}
	releases[0]()
	releases[0]() // double release must be idempotent
	release, _, err := bob.AcquireQuery()
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	release()
	for _, f := range releases[1:] {
		f()
	}
	snap := r.Snapshot()
	for _, s := range snap {
		if s.Name == "bob" {
			if s.Concurrent != 0 {
				t.Fatalf("concurrent = %d after all releases", s.Concurrent)
			}
			if s.RejectedConcurrency != 1 || s.Admitted != 65 {
				t.Fatalf("counters: %+v", s)
			}
		}
	}
}

// TestTenantIsolation: tenant A exhausting its QPS never throttles B.
func TestTenantIsolation(t *testing.T) {
	r, _ := newTestRegistry(t)
	alice, _ := r.Lookup("alice")
	bob, _ := r.Lookup("bob")
	for {
		_, _, err := alice.AcquireQuery()
		if errors.Is(err, ErrQPS) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		release, _, err := bob.AcquireQuery()
		if err != nil {
			t.Fatalf("bob throttled by alice's exhaustion at %d: %v", i, err)
		}
		release()
	}
}

func TestUploadQuotas(t *testing.T) {
	r, clk := newTestRegistry(t)
	alice, _ := r.Lookup("alice") // MaxGraphs 2, MaxBytes 100
	clk.advance(time.Hour)

	res, _, err := alice.ReserveUpload("g1", 60)
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	clk.advance(time.Second)

	// Byte quota: 60 + 50 > 100.
	if _, _, err := alice.ReserveUpload("g2", 50); !errors.Is(err, ErrByteQuota) {
		t.Fatalf("want ErrByteQuota, got %v", err)
	}
	clk.advance(time.Second)

	// Replacement is charged by delta: replacing g1 with 90 bytes fits.
	res, _, err = alice.ReserveUpload("g1", 90)
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	clk.advance(time.Second)

	// Abort rolls back fully: g2 reserve then abort leaves state as before.
	res, _, err = alice.ReserveUpload("g2", 10)
	if err != nil {
		t.Fatal(err)
	}
	res.Abort()
	clk.advance(time.Second)

	res, _, err = alice.ReserveUpload("g2", 10)
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	clk.advance(time.Second)

	// Graph quota: a third distinct name is over MaxGraphs=2.
	if _, _, err := alice.ReserveUpload("g3", 1); !errors.Is(err, ErrGraphQuota) {
		t.Fatalf("want ErrGraphQuota, got %v", err)
	}

	for _, s := range r.Snapshot() {
		if s.Name != "alice" {
			continue
		}
		if s.Graphs != 2 || s.Bytes != 100 {
			t.Fatalf("alice snapshot: %+v", s)
		}
		if s.RejectedByteQuota != 1 || s.RejectedGraphQuota != 1 {
			t.Fatalf("rejection counters: %+v", s)
		}
	}
}

// TestAbortedReplacementRestoresPrevious: aborting a replacement upload
// must restore the previous size, not delete the graph.
func TestAbortedReplacementRestoresPrevious(t *testing.T) {
	r, clk := newTestRegistry(t)
	carol, _ := r.Lookup("carol")
	clk.advance(time.Hour)
	res, _, err := carol.ReserveUpload("g", 40)
	if err != nil {
		t.Fatal(err)
	}
	res.Commit()
	res, _, err = carol.ReserveUpload("g", 70)
	if err != nil {
		t.Fatal(err)
	}
	res.Abort()
	for _, s := range r.Snapshot() {
		if s.Name == "carol" && (s.Graphs != 1 || s.Bytes != 40) {
			t.Fatalf("carol after aborted replacement: %+v", s)
		}
	}
}

// TestUnlimitedTenant: a tenant with zero-value quotas is never
// throttled.
func TestUnlimitedTenant(t *testing.T) {
	r, _ := newTestRegistry(t)
	carol, _ := r.Lookup("carol")
	for i := 0; i < 1000; i++ {
		release, _, err := carol.AcquireQuery()
		if err != nil {
			t.Fatalf("unlimited tenant throttled at %d: %v", i, err)
		}
		release()
	}
}

// TestConcurrentAcquire hammers one tenant from many goroutines; run
// with -race. Admission arithmetic must stay consistent.
func TestConcurrentAcquire(t *testing.T) {
	r := NewRegistry(Config{Tenants: []TenantConfig{
		{Name: "x", Token: "t", Quotas: Quotas{MaxConcurrent: 8}},
	}})
	x, _ := r.Lookup("x")
	var wg sync.WaitGroup
	var admitted, rejected sync.Map
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				release, _, err := x.AcquireQuery()
				if err != nil {
					rejected.Store([2]int{g, i}, true)
					continue
				}
				admitted.Store([2]int{g, i}, true)
				release()
			}
		}(g)
	}
	wg.Wait()
	for _, s := range r.Snapshot() {
		if s.Concurrent != 0 {
			t.Fatalf("leaked concurrency slots: %+v", s)
		}
		var na, nr int
		admitted.Range(func(any, any) bool { na++; return true })
		rejected.Range(func(any, any) bool { nr++; return true })
		if s.Admitted != uint64(na) || s.RejectedConcurrency != uint64(nr) {
			t.Fatalf("counters %+v vs observed admitted=%d rejected=%d", s, na, nr)
		}
	}
}
