// Package tenant is the multi-tenant admission layer for the serving
// tier: API-token authentication plus per-tenant quotas — registered
// graphs, stored bytes, concurrent queries, and a token-bucket QPS
// limit. It deliberately knows nothing about HTTP or the query engine;
// internal/service wires it in front of the API, and the same registry
// drives the quota sections of /v1/stats and /metrics.
//
// All quota state lives behind one mutex per tenant: the enforcement
// path is a handful of compares and adds, cheap next to even a cached
// query. The clock is injectable so the token-bucket refill is exactly
// testable; see SetNow.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// Enforcement errors. ErrUnauthorized maps to 401; the quota errors all
// map to 429 with a Retry-After hint.
var (
	ErrUnauthorized = errors.New("tenant: unknown or missing API token")
	ErrQPS          = errors.New("tenant: request rate over quota")
	ErrConcurrency  = errors.New("tenant: concurrent query limit reached")
	ErrGraphQuota   = errors.New("tenant: graph count quota exhausted")
	ErrByteQuota    = errors.New("tenant: graph byte quota exhausted")
)

// Quotas bounds one tenant's footprint. Zero values mean unlimited, so
// a config can constrain only the dimensions it cares about.
type Quotas struct {
	// MaxGraphs caps the number of graphs registered by the tenant.
	MaxGraphs int `json:"max_graphs,omitempty"`
	// MaxBytes caps the total upload bytes of the tenant's live graphs
	// (a replacement upload is charged by its delta).
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// MaxConcurrent caps in-flight queries.
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// QPS is the token-bucket refill rate in requests per second; Burst
	// is the bucket depth (default: ceil(QPS), min 1). QPS 0 = unlimited.
	QPS   float64 `json:"qps,omitempty"`
	Burst int     `json:"burst,omitempty"`
}

// TenantConfig is one tenant entry of the config file.
type TenantConfig struct {
	Name   string `json:"name"`
	Token  string `json:"token"`
	Quotas Quotas `json:"quotas"`
}

// Config is the on-disk configuration: a list of tenants.
type Config struct {
	Tenants []TenantConfig `json:"tenants"`
}

// ParseConfig reads and validates a JSON config.
func ParseConfig(r io.Reader) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("tenant: bad config: %w", err)
	}
	names := make(map[string]bool, len(cfg.Tenants))
	tokens := make(map[string]bool, len(cfg.Tenants))
	for i, tc := range cfg.Tenants {
		switch {
		case tc.Name == "":
			return Config{}, fmt.Errorf("tenant: config entry %d has no name", i)
		case tc.Token == "":
			return Config{}, fmt.Errorf("tenant: %q has no token", tc.Name)
		case names[tc.Name]:
			return Config{}, fmt.Errorf("tenant: duplicate name %q", tc.Name)
		case tokens[tc.Token]:
			return Config{}, fmt.Errorf("tenant: duplicate token (on %q)", tc.Name)
		case tc.Quotas.QPS < 0 || tc.Quotas.Burst < 0 ||
			tc.Quotas.MaxGraphs < 0 || tc.Quotas.MaxBytes < 0 || tc.Quotas.MaxConcurrent < 0:
			return Config{}, fmt.Errorf("tenant: %q has a negative quota", tc.Name)
		}
		names[tc.Name] = true
		tokens[tc.Token] = true
	}
	return cfg, nil
}

// LoadConfig reads a config file.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ParseConfig(f)
}

// Registry authenticates tokens and enforces quotas. Safe for
// concurrent use.
type Registry struct {
	now     func() time.Time
	byToken map[string]*Tenant
	names   []string // sorted, for deterministic snapshots
	byName  map[string]*Tenant
}

// NewRegistry builds a registry from a validated config.
func NewRegistry(cfg Config) *Registry {
	r := &Registry{
		now:     time.Now,
		byToken: make(map[string]*Tenant, len(cfg.Tenants)),
		byName:  make(map[string]*Tenant, len(cfg.Tenants)),
	}
	for _, tc := range cfg.Tenants {
		q := tc.Quotas
		if q.QPS > 0 && q.Burst == 0 {
			q.Burst = int(math.Ceil(q.QPS))
			if q.Burst < 1 {
				q.Burst = 1
			}
		}
		t := &Tenant{
			name:   tc.Name,
			quotas: q,
			reg:    r,
			tokens: float64(q.Burst),
			graphs: make(map[string]int64),
		}
		r.byToken[tc.Token] = t
		r.byName[tc.Name] = t
		r.names = append(r.names, tc.Name)
	}
	sort.Strings(r.names)
	return r
}

// SetNow replaces the registry clock (tests). Refill arithmetic uses
// only differences of the injected clock, so a fake clock makes the
// token bucket fully deterministic.
func (r *Registry) SetNow(now func() time.Time) {
	r.now = now
	for _, t := range r.byName {
		t.mu.Lock()
		t.last = time.Time{} // re-anchor on first use of the new clock
		t.mu.Unlock()
	}
}

// Authenticate resolves an API token. An empty or unknown token is
// ErrUnauthorized.
func (r *Registry) Authenticate(token string) (*Tenant, error) {
	if t, ok := r.byToken[token]; ok && token != "" {
		return t, nil
	}
	return nil, ErrUnauthorized
}

// Lookup resolves a tenant by name (stats and tests).
func (r *Registry) Lookup(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// Tenant is one authenticated principal's live quota state.
type Tenant struct {
	name   string
	quotas Quotas
	reg    *Registry

	mu         sync.Mutex
	tokens     float64   // current bucket level
	last       time.Time // last refill instant (zero until first use)
	concurrent int
	graphs     map[string]int64 // name -> reserved+committed bytes
	bytes      int64

	admitted       uint64
	rejQPS         uint64
	rejConcurrency uint64
	rejGraphs      uint64
	rejBytes       uint64
}

// Name returns the tenant's configured name.
func (t *Tenant) Name() string { return t.name }

// refillLocked advances the token bucket to now. Call with mu held.
func (t *Tenant) refillLocked(now time.Time) {
	if t.quotas.QPS <= 0 {
		return
	}
	if t.last.IsZero() {
		t.last = now
		return
	}
	if dt := now.Sub(t.last); dt > 0 {
		t.tokens += dt.Seconds() * t.quotas.QPS
		if max := float64(t.quotas.Burst); t.tokens > max {
			t.tokens = max
		}
		t.last = now
	}
}

// AcquireQuery admits one query: a QPS token plus a concurrency slot.
// On success the returned release frees the slot (call it exactly once,
// when the query finishes). On failure release is nil, retryAfter hints
// how long until the request could succeed, and err is ErrQPS or
// ErrConcurrency.
func (t *Tenant) AcquireQuery() (release func(), retryAfter time.Duration, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.reg.now()
	t.refillLocked(now)
	if t.quotas.QPS > 0 && t.tokens < 1 {
		t.rejQPS++
		return nil, t.deficitLocked(), ErrQPS
	}
	if t.quotas.MaxConcurrent > 0 && t.concurrent >= t.quotas.MaxConcurrent {
		t.rejConcurrency++
		// No refill clue here: a slot frees when some in-flight query
		// finishes; 1s is the conventional "shortly".
		return nil, time.Second, ErrConcurrency
	}
	if t.quotas.QPS > 0 {
		t.tokens--
	}
	t.concurrent++
	t.admitted++
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.concurrent--
			t.mu.Unlock()
		})
	}, 0, nil
}

// deficitLocked is the time until the bucket holds one whole token.
func (t *Tenant) deficitLocked() time.Duration {
	need := 1 - t.tokens
	if need <= 0 {
		return 0
	}
	return time.Duration(need / t.quotas.QPS * float64(time.Second))
}

// UploadReservation holds tentatively charged graph/byte quota for one
// in-flight upload. Exactly one of Commit or Abort must be called.
type UploadReservation struct {
	t        *Tenant
	name     string
	newBytes int64
	prev     int64 // bytes previously committed under name (replacement)
	existed  bool
	done     bool
}

// ReserveUpload charges an upload of size bytes under the graph name
// against the tenant's quotas (and one QPS token). A replacement of an
// existing name is charged by its byte delta and does not consume a
// graph slot. The reservation keeps concurrent uploads honest: the
// quota is held from reserve to Commit/Abort.
func (t *Tenant) ReserveUpload(name string, bytes int64) (res *UploadReservation, retryAfter time.Duration, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.reg.now()
	t.refillLocked(now)
	if t.quotas.QPS > 0 && t.tokens < 1 {
		t.rejQPS++
		return nil, t.deficitLocked(), ErrQPS
	}
	prev, existed := t.graphs[name]
	if !existed && t.quotas.MaxGraphs > 0 && len(t.graphs) >= t.quotas.MaxGraphs {
		t.rejGraphs++
		return nil, time.Second, ErrGraphQuota
	}
	if t.quotas.MaxBytes > 0 && t.bytes-prev+bytes > t.quotas.MaxBytes {
		t.rejBytes++
		return nil, time.Second, ErrByteQuota
	}
	if t.quotas.QPS > 0 {
		t.tokens--
	}
	t.admitted++
	// Reserve: the new size is charged now so a racing upload sees it;
	// Abort rolls it back, Commit makes it the graph's record.
	t.bytes += bytes - prev
	t.graphs[name] = bytes
	return &UploadReservation{t: t, name: name, newBytes: bytes, prev: prev, existed: existed}, 0, nil
}

// Commit finalizes the reservation (the upload was accepted).
func (r *UploadReservation) Commit() {
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	r.done = true
}

// Abort rolls the reservation back (the upload was rejected upstream).
func (r *UploadReservation) Abort() {
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	r.t.bytes += r.prev - r.newBytes
	if r.existed {
		r.t.graphs[r.name] = r.prev
	} else {
		delete(r.t.graphs, r.name)
	}
}

// TenantSnapshot is one tenant's quota state, JSON-ready for /v1/stats
// and rendered into /metrics.
type TenantSnapshot struct {
	Name                string  `json:"name"`
	Graphs              int     `json:"graphs"`
	Bytes               int64   `json:"bytes"`
	Concurrent          int     `json:"concurrent"`
	QPSTokens           float64 `json:"qps_tokens"`
	Admitted            uint64  `json:"admitted"`
	RejectedQPS         uint64  `json:"rejected_qps"`
	RejectedConcurrency uint64  `json:"rejected_concurrency"`
	RejectedGraphQuota  uint64  `json:"rejected_graph_quota"`
	RejectedByteQuota   uint64  `json:"rejected_byte_quota"`
	Quotas              Quotas  `json:"quotas"`
}

// Snapshot returns the per-tenant quota state, sorted by tenant name.
func (r *Registry) Snapshot() []TenantSnapshot {
	out := make([]TenantSnapshot, 0, len(r.names))
	now := r.now()
	for _, name := range r.names {
		t := r.byName[name]
		t.mu.Lock()
		t.refillLocked(now)
		out = append(out, TenantSnapshot{
			Name:                t.name,
			Graphs:              len(t.graphs),
			Bytes:               t.bytes,
			Concurrent:          t.concurrent,
			QPSTokens:           t.tokens,
			Admitted:            t.admitted,
			RejectedQPS:         t.rejQPS,
			RejectedConcurrency: t.rejConcurrency,
			RejectedGraphQuota:  t.rejGraphs,
			RejectedByteQuota:   t.rejBytes,
			Quotas:              t.quotas,
		})
		t.mu.Unlock()
	}
	return out
}
