package approxcut

import (
	"math"
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func estimate(t testing.TB, g *graph.Graph, p int, seed uint64, opts Options) *Result {
	t.Helper()
	var res *Result
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		st := rng.New(seed, uint32(c.Rank()), 0)
		r := Parallel(c, n, local, st, opts)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkApprox asserts the estimate is within [truth/slack, truth*slack].
func checkApprox(t *testing.T, name string, got *Result, truth uint64, slack float64) {
	t.Helper()
	lo := float64(truth) / slack
	hi := float64(truth) * slack
	if float64(got.Value) < lo || float64(got.Value) > hi {
		t.Errorf("%s: estimate %d outside [%.1f, %.1f] (truth %d)", name, got.Value, lo, hi, truth)
	}
}

func TestCycleEstimate(t *testing.T) {
	g := gen.Cycle(64, 1) // min cut 2
	got := estimate(t, g, 4, 3, Options{})
	checkApprox(t, "cycle", got, 2, 8)
	if !got.Disconnected {
		t.Error("scan exhausted without disconnection on a sparse cycle")
	}
}

func TestCompleteGraphEstimate(t *testing.T) {
	g := gen.Complete(32, 1) // min cut 31
	got := estimate(t, g, 4, 5, Options{})
	slack := 4 * math.Log2(32)
	checkApprox(t, "K32", got, 31, slack)
}

func TestDumbbellEstimate(t *testing.T) {
	g := gen.Dumbbell(20, 4, 1) // min cut 1 (the bridge)
	got := estimate(t, g, 3, 7, Options{})
	checkApprox(t, "dumbbell", got, 1, 8)
}

func TestTwoCliquesEstimate(t *testing.T) {
	g := gen.TwoCliques(12, 2, 3, 1) // min cut 2
	got := estimate(t, g, 4, 9, Options{})
	checkApprox(t, "twocliques", got, 2, 16)
}

func TestDisconnectedInputGivesZero(t *testing.T) {
	g := graph.New(20)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5) // two tiny components + isolated vertices
	got := estimate(t, g, 3, 1, Options{})
	if got.Value != 0 {
		t.Errorf("disconnected input: estimate %d, want 0", got.Value)
	}
}

func TestEmptyAndTrivialInputs(t *testing.T) {
	if got := estimate(t, graph.New(1), 2, 1, Options{}); got.Value != 0 {
		t.Errorf("single vertex: %d", got.Value)
	}
	if got := estimate(t, graph.New(5), 2, 1, Options{}); got.Value != 0 {
		t.Errorf("edgeless: %d", got.Value)
	}
}

func TestPipelinedAgreesWithEarlyStopping(t *testing.T) {
	g := gen.Cycle(48, 1)
	a := estimate(t, g, 4, 11, Options{})
	b := estimate(t, g, 4, 11, Options{Pipelined: true})
	// Both are randomized; they must agree within a factor of 4 on this
	// easy instance (both find disconnection at the first or second level).
	ratio := float64(a.Value) / float64(b.Value)
	if ratio > 4 || ratio < 0.25 {
		t.Errorf("variants disagree: early %d vs pipelined %d", a.Value, b.Value)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	g := gen.WattsStrogatz(80, 4, 0.3, 2, gen.Config{})
	a := estimate(t, g, 3, 42, Options{})
	b := estimate(t, g, 3, 42, Options{})
	if a.Value != b.Value || a.Iterations != b.Iterations {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestWeightedGraphEstimate(t *testing.T) {
	// Cycle with weight 8 edges: min cut 16; keepProb must account for
	// weights, pushing disconnection to later iterations than weight 1.
	g := gen.Cycle(64, 8)
	got := estimate(t, g, 4, 13, Options{})
	checkApprox(t, "weighted-cycle", got, 16, 8)
}

func TestKeepProb(t *testing.T) {
	if p := keepProb(1, 1); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("keepProb(1,1) = %v", p)
	}
	if p := keepProb(3, 1); math.Abs(p-0.125) > 1e-12 {
		t.Errorf("keepProb(3,1) = %v", p)
	}
	// Monotone in w, bounded by 1.
	prev := 0.0
	for w := uint64(1); w <= 64; w *= 2 {
		p := keepProb(4, w)
		if p < prev || p > 1 {
			t.Fatalf("keepProb(4,%d) = %v not monotone/bounded", w, p)
		}
		prev = p
	}
}

func TestEarlyStoppingStopsEarly(t *testing.T) {
	// Sparse graph with tiny cut: early-stopping should examine very few
	// sparsity levels even though total weight allows many.
	g := gen.Dumbbell(30, 64, 1) // W large, cut 1
	got := estimate(t, g, 3, 21, Options{})
	if got.Iterations > 4 {
		t.Errorf("early stopping examined %d levels for a unit cut", got.Iterations)
	}
}

func TestPipelinedConstantSupersteps(t *testing.T) {
	// §3.3: the pipelined variant performs O(1) supersteps — a single CC
	// query over the union of all trials — independent of the weight
	// range, while the early-stopping variant's superstep count grows
	// with log µ (one CC query per sparsity level examined).
	light := gen.Cycle(48, 1)   // min cut 2: early stopping exits level 1
	heavy := gen.Cycle(48, 256) // min cut 512: early stopping walks ~9 levels
	steps := func(g *graph.Graph, opts Options) int {
		st, err := bsp.Run(3, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			n, local := dist.ScatterGraph(c, 0, in)
			Parallel(c, n, local, rng.New(7, uint32(c.Rank()), 0), opts)
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Supersteps
	}
	pipeLight := steps(light, Options{Pipelined: true})
	pipeHeavy := steps(heavy, Options{Pipelined: true})
	earlyLight := steps(light, Options{})
	earlyHeavy := steps(heavy, Options{})
	if diff := pipeHeavy - pipeLight; diff > 3 || diff < -3 {
		t.Errorf("pipelined supersteps depend on weights: %d vs %d", pipeLight, pipeHeavy)
	}
	if earlyHeavy <= earlyLight {
		t.Errorf("early-stopping supersteps did not grow with log(cut): %d vs %d", earlyLight, earlyHeavy)
	}
	if pipeHeavy >= earlyHeavy {
		t.Errorf("pipelined (%d) not fewer supersteps than early stopping (%d) on heavy weights", pipeHeavy, earlyHeavy)
	}
}
