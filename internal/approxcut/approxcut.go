// Package approxcut implements the paper's approximate minimum cut
// algorithm (§3.3): subgraphs of geometrically increasing expected
// sparsity are sampled — iteration i keeps each edge e with probability
// 1-(1-2^-i)^w(e) — and their connectivity is tested with the
// communication-avoiding connected-components algorithm. The sparsity at
// which subgraphs start disconnecting estimates the minimum cut within an
// O(log n) factor w.h.p., using near-linear work.
//
// Both variants from the paper are provided: the fully pipelined one
// (every trial of every iteration is batched into a single
// connected-components query — O(1) supersteps) and the practical
// early-stopping one (iterations run in order and stop at the first
// disconnection — O(log µ) supersteps, less space and time when the cut
// is small).
package approxcut

import (
	"math"
	"sync"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Result reports the cut estimate.
type Result struct {
	// Value is the estimate 2^j of the minimum cut, where j is the first
	// iteration at which a sampled subgraph came out disconnected.
	Value uint64
	// Iterations is the number of sparsity levels actually examined.
	Iterations int
	// TrialsPerIteration is the Θ(log n) trial count used.
	TrialsPerIteration int
	// Disconnected reports whether the estimate came from an observed
	// disconnection (false only when the input itself was disconnected —
	// Value 0 — or the sparsity scan was exhausted).
	Disconnected bool
}

// Options tunes the algorithm; zero values select defaults.
type Options struct {
	// Trials overrides the number of trials per iteration
	// (default ⌈log2 n⌉, minimum 4).
	Trials int
	// Pipelined batches all iterations into a single connected-components
	// query (§3.3 "Theory" variant). The default is the early-stopping
	// practical variant.
	Pipelined bool
	// Checkpoint, when non-nil, records each sparsity level the
	// early-stopping variant clears, so a cancelled run can degrade to a
	// partial estimate. The pipelined variant is a single batched query
	// with no intermediate state and records nothing.
	Checkpoint *Checkpoint
	// CC tunes the underlying connected-components runs.
	CC cc.Options
	// Plan, when non-nil and matching the input, supplies the snapshot's
	// total weight and connectivity, skipping the opening TotalWeight
	// AllReduce and base connectivity check; both skips are recorded on
	// the BSP ledger via SkipComm. The per-iteration subgraph CC queries
	// run over a trials×n vertex space and are never plan-eligible. A
	// mismatched plan (wrong N) is ignored.
	Plan *graph.Plan
}

// Checkpoint records early-stopping progress across sparsity levels:
// clearing iteration i without a disconnection certifies (w.h.p.) that
// the minimum cut is at least ~2^i, so a deadline-cancelled scan still
// carries a one-sided estimate. Safe for concurrent use by all ranks.
type Checkpoint struct {
	mu         sync.Mutex
	iterations int // sparsity levels cleared without disconnection
	trials     int
	planned    int // total levels the scan would examine
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint { return &Checkpoint{} }

// note records that iteration iter completed without a disconnection
// (idempotent across ranks — the maximum wins).
func (cp *Checkpoint) note(iter, trials, planned int) {
	cp.mu.Lock()
	if iter > cp.iterations {
		cp.iterations = iter
	}
	cp.trials, cp.planned = trials, planned
	cp.mu.Unlock()
}

// Partial returns the levels cleared so far, the per-level trial count,
// the planned level count, and whether any level completed.
func (cp *Checkpoint) Partial() (iterations, trials, planned int, ok bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return cp.iterations, cp.trials, cp.planned, cp.iterations > 0
}

// Parallel estimates the minimum cut of the distributed edge array.
// Every processor returns the same result. If the input graph is
// disconnected the estimate is the exact answer 0.
func Parallel(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, opts Options) *Result {
	if n < 2 {
		return &Result{Value: 0}
	}
	pl := opts.Plan
	if !pl.Matches(n) {
		pl = nil
	}
	// ① Total weight bounds the iteration count: at sparsity 2^-i with
	// i ≈ log2 W the expected surviving edge weight is O(1), so some
	// trial disconnects w.h.p. before the scan runs out. Warm, the plan
	// already knows it.
	var w uint64
	if pl != nil {
		w = pl.TotalWeight
		c.SkipComm(pl.WeightCost.Collectives, pl.WeightCost.Words)
	} else {
		w = dist.TotalWeight(c, local)
	}
	if w == 0 {
		return &Result{Value: 0}
	}
	// The input must be connected for the estimate to mean anything.
	if pl != nil {
		c.SkipComm(pl.CCCost.Collectives, pl.CCCost.Words)
		if !pl.Connected {
			return &Result{Value: 0, Disconnected: true}
		}
	} else {
		base := cc.Parallel(c, n, local, st.Derive(0xcc), opts.CC)
		if base.Count > 1 {
			return &Result{Value: 0, Disconnected: true}
		}
	}

	trials := opts.Trials
	if trials == 0 {
		trials = int(math.Ceil(math.Log2(float64(n))))
	}
	if trials < 4 {
		trials = 4
	}
	maxIter := int(math.Ceil(math.Log2(float64(w)))) + 1
	if maxIter < 1 {
		maxIter = 1
	}

	if opts.Pipelined {
		return pipelined(c, n, local, st, trials, maxIter, opts.CC)
	}
	return earlyStopping(c, n, local, st, trials, maxIter, opts.Checkpoint, opts.CC)
}

// keepProb is the edge retention probability of iteration i for weight w:
// 1 - (1 - 2^-i)^w.
func keepProb(i int, w uint64) float64 {
	q := 1 - math.Exp2(-float64(i))
	return 1 - math.Pow(q, float64(w))
}

// sampleTrials draws `trials` independent subgraphs at sparsity level i
// from the local slice, placing trial t's copy of vertex v at t*n+v.
func sampleTrials(local []graph.Edge, n, i, trials int, st *rng.Stream) []graph.Edge {
	out := make([]graph.Edge, 0, len(local))
	for t := 0; t < trials; t++ {
		off := int32(t * n)
		for _, e := range local {
			if st.Bernoulli(keepProb(i, e.W)) {
				out = append(out, graph.Edge{U: off + e.U, V: off + e.V, W: 1})
			}
		}
	}
	return out
}

// disconnectedTrials inspects a labelling of the trials×n vertex space
// and reports, per trial, whether that trial's subgraph was disconnected.
func disconnectedTrials(labels []int32, n, base, trials int) []bool {
	out := make([]bool, trials)
	for t := 0; t < trials; t++ {
		lo := (base + t) * n
		first := labels[lo]
		for v := 1; v < n; v++ {
			if labels[lo+v] != first {
				out[t] = true
				break
			}
		}
	}
	return out
}

func earlyStopping(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, trials, maxIter int, cp *Checkpoint, ccOpts cc.Options) *Result {
	for i := 1; i <= maxIter; i++ {
		sub := sampleTrials(local, n, i, trials, st.Derive(uint32(i)))
		c.Ops(uint64(len(local)) * uint64(trials))
		res := cc.Parallel(c, trials*n, sub, st.Derive(uint32(1000+i)), ccOpts)
		disc := disconnectedTrials(res.Labels, n, 0, trials)
		for _, d := range disc {
			if d {
				return &Result{
					Value:              uint64(1) << uint(i),
					Iterations:         i,
					TrialsPerIteration: trials,
					Disconnected:       true,
				}
			}
		}
		if cp != nil {
			cp.note(i, trials, maxIter)
		}
	}
	return &Result{
		Value:              uint64(1) << uint(maxIter),
		Iterations:         maxIter,
		TrialsPerIteration: trials,
	}
}

func pipelined(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, trials, maxIter int, ccOpts cc.Options) *Result {
	// One labelled union over all iterations and trials, one CC query.
	var union []graph.Edge
	for i := 1; i <= maxIter; i++ {
		sub := sampleTrials(local, n, i, trials, st.Derive(uint32(i)))
		off := int32((i - 1) * trials * n)
		for _, e := range sub {
			union = append(union, graph.Edge{U: e.U + off, V: e.V + off, W: 1})
		}
	}
	c.Ops(uint64(len(local)) * uint64(trials) * uint64(maxIter))
	res := cc.Parallel(c, maxIter*trials*n, union, st.Derive(0xffff), ccOpts)
	for i := 1; i <= maxIter; i++ {
		disc := disconnectedTrials(res.Labels, n, (i-1)*trials, trials)
		for _, d := range disc {
			if d {
				return &Result{
					Value:              uint64(1) << uint(i),
					Iterations:         maxIter,
					TrialsPerIteration: trials,
					Disconnected:       true,
				}
			}
		}
	}
	return &Result{
		Value:              uint64(1) << uint(maxIter),
		Iterations:         maxIter,
		TrialsPerIteration: trials,
	}
}
