package trace

import (
	"sync"
	"time"
)

// Query outcomes recorded by the Collector. A query is counted exactly
// once, under the outcome that resolved it.
const (
	OutcomeExecuted  = "executed"       // a kernel ran for this query
	OutcomeCacheHit  = "cache_hit"      // served from the result cache
	OutcomeCoalesced = "coalesced"      // piggybacked on an identical in-flight query
	OutcomeRejected  = "rejected"       // shed by admission control (queue full)
	OutcomeExpired   = "expired"        // deadline passed before a result was available
	OutcomeError     = "error"          // the kernel or the request failed
	OutcomeCancelled = "cancelled"      // the kernel was cancelled mid-run, no partial answer
	OutcomeDegraded  = "degraded"       // cancelled mid-run but a best-so-far answer was served
	OutcomeFaulted   = "faulted"        // the kernel faulted and the bounded retry failed too
	OutcomeTransport = "transport_lost" // a peer connection died mid-run and the retry failed too

	// OutcomeRetried is an *event*, not a resolution: it marks one
	// transient kernel fault absorbed by the retry policy. Retried
	// samples increment only the Retried counter — the query itself is
	// still counted exactly once, under whatever outcome resolves it.
	OutcomeRetried = "retried"
)

// QuerySample is one finished (or shed) query as seen by the serving
// layer: what ran, how it resolved, and the BSP cost profile when a
// kernel actually executed.
type QuerySample struct {
	Algorithm  string
	Outcome    string // one of the Outcome constants
	Latency    time.Duration
	P          int    // BSP processors used (0 if no kernel ran)
	Supersteps int    // 0 if no kernel ran
	CommVolume uint64 // words; 0 if no kernel ran
	// AvoidedCollectives / AvoidedCommVolume count the collectives (and
	// their words) the kernel skipped by consuming snapshot-resident plan
	// facts — the warm path's explicit accounting; 0 on cold runs.
	AvoidedCollectives int
	AvoidedCommVolume  uint64
	QueueDepth         int // scheduler queue depth observed at admission
	// Transport labels which fabric carried the kernel ("local", "tcp");
	// empty if no kernel ran. WireBytes is the framed bytes the run put on
	// sockets — always 0 for the in-process fabric.
	Transport string
	WireBytes uint64
	// WireRawBytes is what the same frames would have cost uncompressed
	// (raw codec); WireRawBytes − WireBytes is the wire codecs' saving.
	WireRawBytes uint64
	// Kernel names the portfolio kernel that computed the result
	// ("sampling", "lowround", ...); empty when the planner is off and no
	// kernel was pinned. PredictedMs is the planner's predicted time for
	// the chosen kernel (0 for unplanned runs); KernelTimeMs the measured
	// kernel wall time — together they feed the per-kernel
	// prediction-vs-actual aggregates. PlannerFallback marks a query the
	// planner could not score (no calibrated model for the default
	// kernel) and handed to the default path.
	Kernel          string
	PredictedMs     float64
	KernelTimeMs    float64
	PlannerFallback bool
}

// LatencyBuckets are the upper bounds, in seconds, of the collector's
// latency histogram — log-spaced from 0.5ms to 10s, Prometheus-style
// cumulative ("le") semantics with an implicit +Inf bucket at the end.
// The bounds are fixed so histograms merge trivially across scrapes,
// algorithms, and processes.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// AlgoStats aggregates the samples of one algorithm (or, for the
// collector's totals, of all of them). The struct is JSON-ready, so the
// service's stats endpoint can serve collector snapshots directly.
type AlgoStats struct {
	Queries            uint64  `json:"queries"`
	KernelExecutions   uint64  `json:"kernel_executions"`
	CacheHits          uint64  `json:"cache_hits"`
	Coalesced          uint64  `json:"coalesced"`
	Rejected           uint64  `json:"rejected"`
	Expired            uint64  `json:"expired"`
	Errors             uint64  `json:"errors"`
	Cancelled          uint64  `json:"cancelled"`
	Degraded           uint64  `json:"degraded"`
	Faulted            uint64  `json:"faulted"`
	TransportLost      uint64  `json:"transport_lost"`
	Retried            uint64  `json:"retried"`
	Supersteps         uint64  `json:"supersteps"`
	CommVolume         uint64  `json:"comm_volume"`
	AvoidedCollectives uint64  `json:"avoided_collectives"`
	AvoidedCommVolume  uint64  `json:"avoided_comm_volume"`
	WireBytes          uint64  `json:"wire_bytes"`
	WireRawBytes       uint64  `json:"wire_raw_bytes"`
	TotalLatencyMs     float64 `json:"total_latency_ms"`
	MinLatencyMs       float64 `json:"min_latency_ms"`
	MaxLatencyMs       float64 `json:"max_latency_ms"`
	AvgLatencyMs       float64 `json:"avg_latency_ms"`
	MaxP               int     `json:"max_p"`
	// LatencyHistogram counts latency samples per LatencyBuckets bound
	// (non-cumulative; one extra slot for +Inf). Rejections are excluded,
	// matching the min/max/avg fields above.
	LatencyHistogram []uint64 `json:"latency_histogram,omitempty"`

	latencySamples uint64
}

func (a *AlgoStats) observe(s QuerySample) {
	// A retried sample marks an absorbed transient fault, not a resolved
	// query: count the event and nothing else.
	if s.Outcome == OutcomeRetried {
		a.Retried++
		return
	}
	a.Queries++
	switch s.Outcome {
	case OutcomeExecuted:
		a.KernelExecutions++
	case OutcomeCacheHit:
		a.CacheHits++
	case OutcomeCoalesced:
		a.Coalesced++
	case OutcomeRejected:
		a.Rejected++
	case OutcomeExpired:
		a.Expired++
	case OutcomeCancelled:
		a.Cancelled++
	case OutcomeDegraded:
		a.Degraded++
	case OutcomeFaulted:
		a.Faulted++
	case OutcomeTransport:
		a.TransportLost++
	default:
		a.Errors++
	}
	a.Supersteps += uint64(s.Supersteps)
	a.CommVolume += s.CommVolume
	a.WireBytes += s.WireBytes
	a.WireRawBytes += s.WireRawBytes
	a.AvoidedCollectives += uint64(s.AvoidedCollectives)
	a.AvoidedCommVolume += s.AvoidedCommVolume
	if s.P > a.MaxP {
		a.MaxP = s.P
	}
	// Rejections resolve before any work happens; their near-zero
	// latencies would only distort the latency profile.
	if s.Outcome == OutcomeRejected {
		return
	}
	ms := float64(s.Latency) / float64(time.Millisecond)
	if a.LatencyHistogram == nil {
		a.LatencyHistogram = make([]uint64, len(LatencyBuckets)+1)
	}
	sec := s.Latency.Seconds()
	slot := len(LatencyBuckets) // +Inf
	for i, ub := range LatencyBuckets {
		if sec <= ub {
			slot = i
			break
		}
	}
	a.LatencyHistogram[slot]++
	a.TotalLatencyMs += ms
	if a.latencySamples == 0 || ms < a.MinLatencyMs {
		a.MinLatencyMs = ms
	}
	if ms > a.MaxLatencyMs {
		a.MaxLatencyMs = ms
	}
	a.latencySamples++
	a.AvgLatencyMs = a.TotalLatencyMs / float64(a.latencySamples)
}

// KernelAgg aggregates the executions of one portfolio kernel: how often
// it ran, its measured kernel time, and the planner's predictions for it
// — the raw material of the planner's observable accuracy.
type KernelAgg struct {
	Executions       uint64  `json:"executions"`
	TotalKernelMs    float64 `json:"total_kernel_ms"`
	TotalPredictedMs float64 `json:"total_predicted_ms"`
}

// TransportStats aggregates the kernel executions carried by one BSP
// fabric ("local", "tcp"). WireBytes stays zero for the in-process
// fabric, which is precisely the communication-avoidance claim the
// stats endpoint lets operators check.
type TransportStats struct {
	KernelExecutions uint64 `json:"kernel_executions"`
	Supersteps       uint64 `json:"supersteps"`
	CommVolume       uint64 `json:"comm_volume"`
	WireBytes        uint64 `json:"wire_bytes"`
	WireRawBytes     uint64 `json:"wire_raw_bytes"`
}

// CollectorSnapshot is a point-in-time copy of a Collector's aggregates.
type CollectorSnapshot struct {
	Totals        AlgoStats                 `json:"totals"`
	Algorithms    map[string]AlgoStats      `json:"algorithms"`
	Transports    map[string]TransportStats `json:"transports,omitempty"`
	Kernels       map[string]KernelAgg      `json:"kernels,omitempty"`
	MaxQueueDepth int                       `json:"max_queue_depth"`
	// PlannerFallbacks counts executed queries the planner handed to the
	// default kernel because it had no calibrated model to score with.
	PlannerFallbacks uint64 `json:"planner_fallbacks,omitempty"`
}

// Collector aggregates per-query metrics for a serving process. It is
// safe for concurrent use; Observe is cheap enough for the query hot
// path (a mutex and a dozen adds).
type Collector struct {
	mu               sync.Mutex
	totals           AlgoStats
	algos            map[string]*AlgoStats
	transports       map[string]*TransportStats
	kernels          map[string]*KernelAgg
	maxQueueDepth    int
	plannerFallbacks uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		algos:      make(map[string]*AlgoStats),
		transports: make(map[string]*TransportStats),
		kernels:    make(map[string]*KernelAgg),
	}
}

// Observe records one query sample.
func (c *Collector) Observe(s QuerySample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.totals.observe(s)
	a := c.algos[s.Algorithm]
	if a == nil {
		a = &AlgoStats{}
		c.algos[s.Algorithm] = a
	}
	a.observe(s)
	if s.Transport != "" {
		tr := c.transports[s.Transport]
		if tr == nil {
			tr = &TransportStats{}
			c.transports[s.Transport] = tr
		}
		tr.KernelExecutions++
		tr.Supersteps += uint64(s.Supersteps)
		tr.CommVolume += s.CommVolume
		tr.WireBytes += s.WireBytes
		tr.WireRawBytes += s.WireRawBytes
	}
	if s.Kernel != "" {
		k := c.kernels[s.Kernel]
		if k == nil {
			k = &KernelAgg{}
			c.kernels[s.Kernel] = k
		}
		k.Executions++
		k.TotalKernelMs += s.KernelTimeMs
		k.TotalPredictedMs += s.PredictedMs
	}
	if s.PlannerFallback {
		c.plannerFallbacks++
	}
	if s.QueueDepth > c.maxQueueDepth {
		c.maxQueueDepth = s.QueueDepth
	}
}

// cloneAlgo copies one aggregate, detaching the histogram slice so the
// snapshot stays immutable while the collector keeps counting.
func cloneAlgo(a AlgoStats) AlgoStats {
	if a.LatencyHistogram != nil {
		a.LatencyHistogram = append([]uint64(nil), a.LatencyHistogram...)
	}
	return a
}

// Snapshot returns a copy of the current aggregates.
func (c *Collector) Snapshot() CollectorSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := CollectorSnapshot{
		Totals:           cloneAlgo(c.totals),
		Algorithms:       make(map[string]AlgoStats, len(c.algos)),
		MaxQueueDepth:    c.maxQueueDepth,
		PlannerFallbacks: c.plannerFallbacks,
	}
	for name, a := range c.algos {
		out.Algorithms[name] = cloneAlgo(*a)
	}
	if len(c.transports) > 0 {
		out.Transports = make(map[string]TransportStats, len(c.transports))
		for name, tr := range c.transports {
			out.Transports[name] = *tr
		}
	}
	if len(c.kernels) > 0 {
		out.Kernels = make(map[string]KernelAgg, len(c.kernels))
		for name, k := range c.kernels {
			out.Kernels[name] = *k
		}
	}
	return out
}

// Reset clears all aggregates (test and ops convenience).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.totals = AlgoStats{}
	c.algos = make(map[string]*AlgoStats)
	c.transports = make(map[string]*TransportStats)
	c.kernels = make(map[string]*KernelAgg)
	c.maxQueueDepth = 0
	c.plannerFallbacks = 0
}
