package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseProfile parses one profiling CSV line produced by
// Record.WriteProfile back into a Record. Timings are recovered at the
// microsecond granularity the %f formatting preserves. The input name
// must not contain commas (none of the generators' names do).
func ParseProfile(line string) (*Record, error) {
	fields := strings.Split(strings.TrimSpace(line), ",")
	if len(fields) != 12 {
		return nil, fmt.Errorf("trace: profile line has %d fields, want 12", len(fields))
	}
	var (
		r   Record
		err error
	)
	fail := func(col int, what string) (*Record, error) {
		return nil, fmt.Errorf("trace: profile column %d: bad %s %q", col+1, what, fields[col])
	}
	r.Input = fields[0]
	if r.Seed, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
		return fail(1, "seed")
	}
	if r.Trial, err = strconv.Atoi(fields[2]); err != nil {
		return fail(2, "trial")
	}
	if r.N, err = strconv.Atoi(fields[3]); err != nil {
		return fail(3, "n")
	}
	if r.M, err = strconv.Atoi(fields[4]); err != nil {
		return fail(4, "m")
	}
	secs, err := strconv.ParseFloat(fields[5], 64)
	if err != nil || secs < 0 {
		return fail(5, "time")
	}
	r.Time = secondsToDuration(secs)
	mpi, err := strconv.ParseFloat(fields[6], 64)
	if err != nil || mpi < 0 {
		return fail(6, "mpi time")
	}
	r.MPITime = secondsToDuration(mpi)
	r.Algorithm = fields[7]
	if r.P, err = strconv.Atoi(fields[8]); err != nil {
		return fail(8, "p")
	}
	if r.Result, err = strconv.ParseUint(fields[9], 10, 64); err != nil {
		return fail(9, "result")
	}
	if r.Supersteps, err = strconv.Atoi(fields[10]); err != nil {
		return fail(10, "supersteps")
	}
	if r.CommVolume, err = strconv.ParseUint(fields[11], 10, 64); err != nil {
		return fail(11, "comm volume")
	}
	return &r, nil
}

// secondsToDuration converts %f-formatted seconds back to a Duration,
// rounding to the microsecond the format carries.
func secondsToDuration(s float64) time.Duration {
	return time.Duration(s*1e6+0.5) * time.Microsecond
}

// ReadProfiles parses every profiling line in r, skipping blank lines and
// the artifact's "PAPI,..." counter lines, so a bench CSV file can be
// machine-read whole.
func ReadProfiles(r io.Reader) ([]*Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []*Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "PAPI,") || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := ParseProfile(text)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
