// Package trace records per-execution metrics in the artifact's CSV
// output format (§A.5, Listing 1): a profiling line with input identity,
// seed, parallelism, timings, and the summarized result, optionally
// preceded by a counter line (the artifact's PAPI values; here the
// cache-simulator counters).
package trace

import (
	"fmt"
	"io"
	"time"
)

// Record is one execution's metrics.
type Record struct {
	Input      string        // input description, e.g. "er_1500_32"
	Seed       uint64        // PRNG seed of the run
	Trial      int           // repetition index
	N          int           // vertices
	M          int           // edges
	Time       time.Duration // total execution time
	MPITime    time.Duration // communication ("MPI") time
	Algorithm  string        // cc | approx_cut | mincut | ...
	P          int           // processors
	Result     uint64        // cut value or component count
	Supersteps int
	CommVolume uint64
	// AvoidedCollectives / AvoidedCommVolume record communication the run
	// skipped by consuming precomputed plan facts (0 on cold runs). They
	// ride the JSON snapshot, not the artifact-format CSV line, whose
	// column set is fixed by the paper.
	AvoidedCollectives int
	AvoidedCommVolume  uint64
}

// WriteProfile emits the artifact-style profiling CSV line.
func (r *Record) WriteProfile(w io.Writer) error {
	_, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%f,%f,%s,%d,%d,%d,%d\n",
		r.Input, r.Seed, r.Trial, r.N, r.M,
		r.Time.Seconds(), r.MPITime.Seconds(), r.Algorithm, r.P,
		r.Result, r.Supersteps, r.CommVolume)
	return err
}

// Counters mirrors the artifact's PAPI counter line using the cache
// simulator's measurements.
type Counters struct {
	Rank         int
	Accesses     uint64
	Misses       uint64
	Instructions uint64
}

// WriteCounters emits the artifact-style "PAPI,..." line.
func (c *Counters) WriteCounters(w io.Writer) error {
	_, err := fmt.Fprintf(w, "PAPI,%d,%d,%d,%d\n", c.Rank, c.Accesses, c.Misses, c.Instructions)
	return err
}
