package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestProfileRoundTrip(t *testing.T) {
	recs := []*Record{
		{
			Input: "er_1500_32", Seed: 42, Trial: 3, N: 1500, M: 24000,
			Time: 428972 * time.Microsecond, MPITime: 11905 * time.Microsecond,
			Algorithm: "mincut", P: 8, Result: 17, Supersteps: 121, CommVolume: 98765,
		},
		{
			Input: "rmat_12", Seed: 1, Trial: 0, N: 4096, M: 65536,
			Time: 0, MPITime: 0,
			Algorithm: "cc", P: 1, Result: 3, Supersteps: 0, CommVolume: 0,
		},
	}
	for _, want := range recs {
		var buf bytes.Buffer
		if err := want.WriteProfile(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ParseProfile(buf.String())
		if err != nil {
			t.Fatalf("parse %q: %v", buf.String(), err)
		}
		if *got != *want {
			t.Errorf("round trip changed record:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestParseProfileErrors(t *testing.T) {
	cases := []string{
		"",                                   // empty
		"a,b,c",                              // too few fields
		"in,x,1,10,20,0.1,0.0,cc,1,1,1,1",    // bad seed
		"in,1,1,10,20,zz,0.0,cc,1,1,1,1",     // bad time
		"in,1,1,10,20,-0.5,0.0,cc,1,1,1,1",   // negative time
		"in,1,1,10,20,0.1,0.0,cc,1,1,1,1,99", // too many fields
	}
	for _, c := range cases {
		if _, err := ParseProfile(c); err == nil {
			t.Errorf("line %q: expected error", c)
		}
	}
}

func TestReadProfiles(t *testing.T) {
	var buf bytes.Buffer
	(&Counters{Rank: 0, Accesses: 5, Misses: 1, Instructions: 9}).WriteCounters(&buf)
	r1 := &Record{Input: "a", Seed: 1, N: 10, M: 20, Time: time.Millisecond,
		Algorithm: "cc", P: 2, Result: 1, Supersteps: 4, CommVolume: 12}
	r2 := &Record{Input: "b", Seed: 2, N: 30, M: 40, Time: 2 * time.Millisecond,
		Algorithm: "mincut", P: 4, Result: 7, Supersteps: 9, CommVolume: 34}
	r1.WriteProfile(&buf)
	buf.WriteString("\n# trailing comment\n")
	r2.WriteProfile(&buf)

	recs, err := ReadProfiles(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Input != "a" || recs[1].Input != "b" || recs[1].Result != 7 {
		t.Errorf("records = %+v, %+v", recs[0], recs[1])
	}
}

func TestCollectorAggregates(t *testing.T) {
	c := NewCollector()
	c.Observe(QuerySample{Algorithm: "cc", Outcome: OutcomeExecuted,
		Latency: 10 * time.Millisecond, P: 4, Supersteps: 12, CommVolume: 100, QueueDepth: 1})
	c.Observe(QuerySample{Algorithm: "cc", Outcome: OutcomeCacheHit, Latency: time.Millisecond})
	c.Observe(QuerySample{Algorithm: "cc", Outcome: OutcomeCoalesced, Latency: 9 * time.Millisecond})
	c.Observe(QuerySample{Algorithm: "mincut", Outcome: OutcomeRejected, QueueDepth: 7})
	c.Observe(QuerySample{Algorithm: "mincut", Outcome: OutcomeError, Latency: 2 * time.Millisecond})

	s := c.Snapshot()
	if s.Totals.Queries != 5 || s.Totals.KernelExecutions != 1 ||
		s.Totals.CacheHits != 1 || s.Totals.Coalesced != 1 ||
		s.Totals.Rejected != 1 || s.Totals.Errors != 1 {
		t.Errorf("totals = %+v", s.Totals)
	}
	cc := s.Algorithms["cc"]
	if cc.Queries != 3 || cc.KernelExecutions != 1 || cc.Supersteps != 12 || cc.CommVolume != 100 {
		t.Errorf("cc stats = %+v", cc)
	}
	if cc.MinLatencyMs != 1 || cc.MaxLatencyMs != 10 {
		t.Errorf("cc latency min/max = %v/%v", cc.MinLatencyMs, cc.MaxLatencyMs)
	}
	if cc.MaxP != 4 {
		t.Errorf("cc MaxP = %d", cc.MaxP)
	}
	if s.MaxQueueDepth != 7 {
		t.Errorf("max queue depth = %d", s.MaxQueueDepth)
	}

	// Rejections must not pollute the latency profile.
	mc := s.Algorithms["mincut"]
	if mc.MinLatencyMs != 2 || mc.MaxLatencyMs != 2 {
		t.Errorf("mincut latency min/max = %v/%v", mc.MinLatencyMs, mc.MaxLatencyMs)
	}

	c.Reset()
	if s := c.Snapshot(); s.Totals.Queries != 0 || len(s.Algorithms) != 0 {
		t.Errorf("reset left state: %+v", s)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Observe(QuerySample{Algorithm: "cc", Outcome: OutcomeCacheHit})
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Snapshot().Totals.Queries; got != 8000 {
		t.Errorf("queries = %d, want 8000", got)
	}
}
