package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSnapshotRoundTrip(t *testing.T) {
	want := &Snapshot{
		Name: "bsp-bench",
		Records: []*Record{
			{
				Input: "er_1500_32", Seed: 42, Trial: 3, N: 1500, M: 24000,
				Time: 428972 * time.Microsecond, MPITime: 11905 * time.Microsecond,
				Algorithm: "mincut", P: 8, Result: 17, Supersteps: 121, CommVolume: 98765,
			},
			{
				Input: "cycle_64", Seed: 1, Trial: 0, N: 64, M: 64,
				Time: 0, MPITime: 0,
				Algorithm: "cc", P: 1, Result: 1, Supersteps: 0, CommVolume: 0,
			},
		},
	}
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name {
		t.Errorf("name = %q, want %q", got.Name, want.Name)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range want.Records {
		if *got.Records[i] != *want.Records[i] {
			t.Errorf("record %d changed:\n got %+v\nwant %+v", i, got.Records[i], want.Records[i])
		}
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	s := &Snapshot{Name: "x", Records: []*Record{{Input: "g", Algorithm: "cc", P: 2}}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"name"`, `"records"`, `"input"`, `"algorithm"`, `"comm_volume"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON missing key %s:\n%s", key, buf.String())
		}
	}
}

func TestReadSnapshotError(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Error("expected error for malformed JSON")
	}
}
