package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestWriteProfileFormat(t *testing.T) {
	r := &Record{
		Input: "er_1000_32", Seed: 42, Trial: 1, N: 1000, M: 16000,
		Time: 428972 * time.Microsecond, MPITime: 11905 * time.Microsecond,
		Algorithm: "cc", P: 4, Result: 1, Supersteps: 9, CommVolume: 1234,
	}
	var buf bytes.Buffer
	if err := r.WriteProfile(&buf); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasPrefix(line, "er_1000_32,42,1,1000,16000,0.428972,0.011905,cc,4,1,9,1234") {
		t.Errorf("line = %q", line)
	}
	if !strings.HasSuffix(line, "\n") {
		t.Error("missing newline")
	}
}

func TestWriteCountersFormat(t *testing.T) {
	c := &Counters{Rank: 0, Accesses: 39125749, Misses: 627998425, Instructions: 1184539166}
	var buf bytes.Buffer
	if err := c.WriteCounters(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "PAPI,0,39125749,627998425,1184539166\n" {
		t.Errorf("line = %q", got)
	}
}
