package trace

import (
	"encoding/json"
	"io"
	"os"
)

// snapshotRecord is the JSON wire form of a Record: durations in
// seconds, field names matching the profiling CSV columns.
type snapshotRecord struct {
	Input              string  `json:"input"`
	Seed               uint64  `json:"seed"`
	Trial              int     `json:"trial"`
	N                  int     `json:"n"`
	M                  int     `json:"m"`
	TimeSec            float64 `json:"time_sec"`
	MPITimeSec         float64 `json:"mpi_time_sec"`
	Algorithm          string  `json:"algorithm"`
	P                  int     `json:"p"`
	Result             uint64  `json:"result"`
	Supersteps         int     `json:"supersteps"`
	CommVolume         uint64  `json:"comm_volume"`
	AvoidedCollectives int     `json:"avoided_collectives,omitempty"`
	AvoidedCommVolume  uint64  `json:"avoided_comm_volume,omitempty"`
}

// Snapshot is a machine-readable benchmark snapshot: a named set of
// Records, e.g. one per benchmarked configuration, optionally carrying
// the serving layer's outcome aggregates (chaos suites archive these so
// injected-fault counts are diffable across runs).
type Snapshot struct {
	Name     string
	Records  []*Record
	Outcomes *CollectorSnapshot
}

type snapshotWire struct {
	Name     string             `json:"name"`
	Records  []snapshotRecord   `json:"records"`
	Outcomes *CollectorSnapshot `json:"outcomes,omitempty"`
}

// WriteJSON emits the snapshot as indented JSON, the format CI archives
// next to the benchstat output so regressions are diffable by machine.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	wire := snapshotWire{Name: s.Name, Records: make([]snapshotRecord, 0, len(s.Records)), Outcomes: s.Outcomes}
	for _, r := range s.Records {
		wire.Records = append(wire.Records, snapshotRecord{
			Input:              r.Input,
			Seed:               r.Seed,
			Trial:              r.Trial,
			N:                  r.N,
			M:                  r.M,
			TimeSec:            r.Time.Seconds(),
			MPITimeSec:         r.MPITime.Seconds(),
			Algorithm:          r.Algorithm,
			P:                  r.P,
			Result:             r.Result,
			Supersteps:         r.Supersteps,
			CommVolume:         r.CommVolume,
			AvoidedCollectives: r.AvoidedCollectives,
			AvoidedCommVolume:  r.AvoidedCommVolume,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wire)
}

// ReadSnapshot parses a snapshot written by WriteJSON. Timings are
// recovered at microsecond granularity, matching the CSV round-trip.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var wire snapshotWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, err
	}
	s := &Snapshot{Name: wire.Name, Records: make([]*Record, 0, len(wire.Records)), Outcomes: wire.Outcomes}
	for _, w := range wire.Records {
		s.Records = append(s.Records, &Record{
			Input:              w.Input,
			Seed:               w.Seed,
			Trial:              w.Trial,
			N:                  w.N,
			M:                  w.M,
			Time:               secondsToDuration(w.TimeSec),
			MPITime:            secondsToDuration(w.MPITimeSec),
			Algorithm:          w.Algorithm,
			P:                  w.P,
			Result:             w.Result,
			Supersteps:         w.Supersteps,
			CommVolume:         w.CommVolume,
			AvoidedCollectives: w.AvoidedCollectives,
			AvoidedCommVolume:  w.AvoidedCommVolume,
		})
	}
	return s, nil
}

// WriteSnapshotFile writes the snapshot to path, creating or truncating
// the file.
func WriteSnapshotFile(path string, s *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
