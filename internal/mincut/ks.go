package mincut

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// baseCaseSize is the vertex count below which recursive contraction
// switches to deterministic brute force. Karger–Stein use 6; we stop a
// little earlier (2^(b-1) cut enumerations stay trivial) because the
// t = ⌈n/√2⌉+1 recurrence shrinks slowly near the bottom, and cutting
// those last levels removes an 8× blowup in recursion-tree nodes.
const baseCaseSize = 9

// contractTo randomly contracts the matrix to t vertices: edges are
// selected with probability proportional to their weight and contracted
// until t vertices remain (§2.4). It returns the compacted t×t matrix and
// the mapping from m's vertices to the contracted ones, both owned by the
// arena — the caller releases them with putWords(cm.W) / putInts(mapping)
// once the recursion below them has been folded. m is not modified.
// O(n·(n-t)) time; O(n²) scratch comes from (and returns to) the arena.
func (a *ksArena) contractTo(m *graph.Matrix, t int, st *rng.Stream) (*graph.Matrix, []int32) {
	n := m.N
	if t >= n {
		mapping := a.getInts(n)
		for i := range mapping {
			mapping[i] = int32(i)
		}
		cw := a.getWords(n * n)
		copy(cw, m.W)
		return &graph.Matrix{N: n, W: cw}, mapping
	}
	ww := a.getWords(n * n)
	copy(ww, m.W)
	w := &graph.Matrix{N: n, W: ww}
	alive := a.getInts(n)
	for i := range alive {
		alive[i] = int32(i)
	}
	deg := a.getWords(n)
	var total uint64 // 2 * sum of edge weights
	for i := 0; i < n; i++ {
		deg[i] = w.WeightedDegree(int32(i))
		total += deg[i]
	}
	uf := a.uf
	uf.Reset(n)

	live := n
	for live > t && total > 0 {
		// Pick endpoint u with probability deg[u]/total, then neighbor v
		// with probability w(u,v)/deg[u]; together (u,v) has probability
		// proportional to its weight (counting both directions).
		x := st.Uint64n(total)
		var u int32 = -1
		for _, a := range alive[:live] {
			if x < deg[a] {
				u = a
				break
			}
			x -= deg[a]
		}
		if u < 0 { // numerical corner: nothing live with weight
			break
		}
		y := st.Uint64n(deg[u])
		var v int32 = -1
		rowU := w.W[int(u)*n : (int(u)+1)*n]
		for _, b := range alive[:live] {
			if b == u {
				continue
			}
			if y < rowU[b] {
				v = b
				break
			}
			y -= rowU[b]
		}
		if v < 0 {
			break
		}
		// Merge v into u.
		wuv := rowU[v]
		rowV := w.W[int(v)*n : (int(v)+1)*n]
		for _, k := range alive[:live] {
			if k == u || k == v {
				continue
			}
			nw := rowU[k] + rowV[k]
			rowU[k] = nw
			w.W[int(k)*n+int(u)] = nw
			w.W[int(k)*n+int(v)] = 0
		}
		deg[u] = deg[u] + deg[v] - 2*wuv
		total -= 2 * wuv
		rowU[v] = 0
		w.W[int(v)*n+int(u)] = 0
		uf.Union(u, v)
		// u stays the representative row in the matrix; remove v from the
		// live set (matrix representative identity is positional and
		// independent of union-find internals).
		for idx, a := range alive[:live] {
			if a == v {
				alive[idx] = alive[live-1]
				live--
				break
			}
		}
	}

	// Compact: map union-find classes of live vertices to [0, live).
	// classToLabel is written for every live root before it is read (every
	// vertex's root is a live representative), so the arena slice needs no
	// zeroing.
	mapping := a.getInts(n)
	classToLabel := a.getInts(n)
	for idx := 0; idx < live; idx++ {
		classToLabel[uf.Find(alive[idx])] = int32(idx)
	}
	for i := 0; i < n; i++ {
		mapping[i] = classToLabel[uf.Find(int32(i))]
	}

	// Every cell of the compacted matrix is assigned, so its arena backing
	// needs no zeroing either.
	out := &graph.Matrix{N: live, W: a.getWords(live * live)}
	for ai := 0; ai < live; ai++ {
		srcRow := w.W[int(alive[ai])*n : (int(alive[ai])+1)*n]
		dstRow := out.W[ai*live : (ai+1)*live]
		for aj := 0; aj < live; aj++ {
			dstRow[aj] = srcRow[alive[aj]]
		}
		dstRow[ai] = 0
	}
	a.putInts(classToLabel)
	a.putInts(alive)
	a.putWords(deg)
	a.putWords(ww)
	return out, mapping
}

// contractTo is the standalone form: same contraction, but the returned
// matrix and mapping are fresh copies the caller owns outright.
func contractTo(m *graph.Matrix, t int, st *rng.Stream) (*graph.Matrix, []int32) {
	a := getKSArena()
	cm, mapping := a.contractTo(m, t, st)
	outM := &graph.Matrix{N: cm.N, W: append([]uint64(nil), cm.W...)}
	outMap := append([]int32(nil), mapping...)
	a.putWords(cm.W)
	a.putInts(mapping)
	putKSArena(a)
	return outM, outMap
}

// ksRecurse is one run of recursive contraction (§2.4): contract to
// ⌈n/√2⌉+1 twice independently, recurse on both, keep the better cut.
// Returns the best cut value found and its side over m's vertices; the
// side is arena-owned — the caller releases it with putBools once done.
func (a *ksArena) ksRecurse(m *graph.Matrix, st *rng.Stream) (uint64, []bool) {
	n := m.N
	if n <= baseCaseSize {
		scratch := a.getBools(n)
		best := a.getBools(n)
		val := bruteForceInto(m, scratch, best)
		a.putBools(scratch)
		return val, best
	}
	t := int(math.Ceil(float64(n)/math.Sqrt2)) + 1
	if t >= n {
		t = n - 1
	}
	bestVal := uint64(math.MaxUint64)
	var bestSide []bool
	for branch := 0; branch < 2; branch++ {
		cm, mapping := a.contractTo(m, t, st)
		val, side := a.ksRecurse(cm, st)
		a.putWords(cm.W)
		if val < bestVal {
			bestVal = val
			lifted := a.getBools(n)
			for v := 0; v < n; v++ {
				lifted[v] = side[mapping[v]]
			}
			if bestSide != nil {
				a.putBools(bestSide)
			}
			bestSide = lifted
		}
		a.putBools(side)
		a.putInts(mapping)
	}
	return bestVal, bestSide
}

// ksRecurse is the standalone form: it borrows a pooled arena for the
// run and returns a side the caller owns outright.
func ksRecurse(m *graph.Matrix, st *rng.Stream) (uint64, []bool) {
	a := getKSArena()
	val, side := a.ksRecurse(m, st)
	out := append([]bool(nil), side...)
	a.putBools(side)
	putKSArena(a)
	return val, out
}

// KargerSteinTrials returns the number of independent recursive
// contraction runs needed to find a minimum cut with probability at least
// successProb, using the Ω(1/log n) per-run success bound of Lemma 2.2.
func KargerSteinTrials(n int, successProb float64) int {
	if n < 8 {
		return 1
	}
	if successProb <= 0 {
		successProb = 0.9
	}
	if successProb >= 1 {
		successProb = 1 - 1e-9
	}
	perRun := 1 / (2 * math.Log(float64(n)))
	t := int(math.Ceil(math.Log(1/(1-successProb)) / perRun))
	if t < 1 {
		t = 1
	}
	return t
}

// KargerStein computes a global minimum cut with probability at least
// successProb by repeated recursive contraction — the paper's sequential
// "KS" baseline (the cache-oblivious variant shares this exact algorithm;
// our compact matrix layout stands in for its cache-friendly layout).
// One arena serves all trials, so the steady-state allocation rate across
// the whole run is near zero.
func KargerStein(g *graph.Graph, st *rng.Stream, successProb float64) *CutResult {
	if g.N < 2 {
		return &CutResult{Value: 0, Side: make([]bool, g.N)}
	}
	best := &CutResult{Value: math.MaxUint64}
	m := graph.MatrixFromGraph(g)
	trials := KargerSteinTrials(g.N, successProb)
	a := getKSArena()
	for i := 0; i < trials; i++ {
		val, side := a.ksRecurse(m, st)
		if val < best.Value {
			best.Value = val
			best.Side = append(best.Side[:0], side...)
		}
		a.putBools(side)
	}
	putKSArena(a)
	if dv, ds := minDegreeCut(g); dv < best.Value {
		best.Value = dv
		best.Side = ds
	}
	best.Trials = trials
	return best
}
