package mincut

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestContractHeavyEdgesPreservesMinCut(t *testing.T) {
	// A dumbbell with an extremely heavy ring: ring edges can never cross
	// the minimum cut (the bridge), so both rings contract to points once
	// a tight upper bound is supplied (here the known bridge capacity;
	// in general e.g. an ApproxMinCut estimate).
	g := gen.Dumbbell(10, 1_000_000, 1)
	cg, mapping := ContractHeavyEdges(g, 1)
	if cg.N != 2 {
		t.Fatalf("contracted to %d vertices, want 2", cg.N)
	}
	if len(cg.Edges) != 1 || cg.Edges[0].W != 1 {
		t.Fatalf("contracted graph %+v", cg.Edges)
	}
	// Lift the contracted cut back and check it on the original.
	side := make([]bool, g.N)
	for v := range side {
		side[v] = mapping[v] == cg.Edges[0].U
	}
	if g.CutValue(side) != 1 {
		t.Errorf("lifted cut = %d, want 1", g.CutValue(side))
	}
}

func TestContractHeavyEdgesCascades(t *testing.T) {
	// Parallel light edges that combine above the bound must trigger a
	// second contraction round.
	g := graph.New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(0, 1, 3) // combined weight 6 > bound
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	cg, _ := ContractHeavyEdges(g, 5)
	if cg.N != 3 {
		t.Errorf("contracted to %d vertices, want 3", cg.N)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractHeavyEdgesNoOp(t *testing.T) {
	g := gen.Cycle(8, 2)
	cg, mapping := ContractHeavyEdges(g, 100)
	if cg.N != 8 {
		t.Errorf("unweighted-ish cycle contracted: n=%d", cg.N)
	}
	for i, l := range mapping {
		if l != int32(i) {
			t.Fatalf("mapping changed at %d", i)
		}
	}
}

func TestPreprocessingAcceleratesHeavyGraphs(t *testing.T) {
	// End-to-end: preprocess then solve; the answer must match solving
	// the raw graph.
	g := gen.Dumbbell(12, 500, 3)
	st := rng.New(5, 0, 0)
	want := Sequential(g, st, 0.95)
	cg, mapping := ContractHeavyEdges(g, WeightCapBound(g))
	got := Sequential(cg, st, 0.95)
	if got.Value != want.Value {
		t.Errorf("preprocessed cut %d vs raw %d", got.Value, want.Value)
	}
	side := make([]bool, g.N)
	for v := range side {
		side[v] = got.Side[mapping[v]]
	}
	if g.CutValue(side) != want.Value {
		t.Errorf("lifted preprocessed side = %d", g.CutValue(side))
	}
}

func TestAllMinCutsUnique(t *testing.T) {
	g := gen.TwoCliques(8, 2, 6, 1) // unique min cut of value 2
	cuts := AllMinCuts(g, rng.New(9, 0, 0), 0.95)
	if len(cuts) != 1 {
		t.Fatalf("found %d cuts, want 1 unique", len(cuts))
	}
	if cuts[0].Value != 2 || !cuts[0].Check(g) {
		t.Errorf("bad cut %+v", cuts[0].Value)
	}
}

func TestAllMinCutsCycle(t *testing.T) {
	// C5 has C(5,2) = 10 minimum cuts (any two edges).
	g := gen.Cycle(5, 1)
	cuts := AllMinCuts(g, rng.New(11, 0, 0), 0.99)
	if len(cuts) < 8 {
		t.Errorf("found %d of 10 cycle cuts", len(cuts))
	}
	seen := map[string]bool{}
	for _, c := range cuts {
		if c.Value != 2 {
			t.Fatalf("cut value %d, want 2", c.Value)
		}
		if !c.Check(g) {
			t.Fatal("inconsistent cut")
		}
		k := canonicalSideKey(c.Side)
		if seen[k] {
			t.Fatal("duplicate cut returned")
		}
		seen[k] = true
	}
}

func TestAllMinCutsIncludesSingletons(t *testing.T) {
	// Star: every leaf is a minimum cut.
	g := gen.Star(6, 2)
	cuts := AllMinCuts(g, rng.New(4, 0, 0), 0.95)
	if len(cuts) != 5 {
		t.Errorf("star K1,5: found %d cuts, want 5 leaves", len(cuts))
	}
}

func TestAllMinCutsDisconnected(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	cuts := AllMinCuts(g, rng.New(1, 0, 0), 0.9)
	if len(cuts) == 0 {
		t.Fatal("no zero cuts reported")
	}
	for _, c := range cuts {
		if c.Value != 0 || !c.Check(g) {
			t.Errorf("bad zero cut")
		}
	}
}

func TestAllMinCutsTrivial(t *testing.T) {
	if cuts := AllMinCuts(graph.New(1), rng.New(1, 0, 0), 0.9); cuts != nil {
		t.Error("single vertex should yield no cuts")
	}
}

func TestCanonicalSideKeyOrientationFree(t *testing.T) {
	a := []bool{false, true, true, false}
	b := []bool{true, false, false, true}
	if canonicalSideKey(a) != canonicalSideKey(b) {
		t.Error("complementary sides got different keys")
	}
	c := []bool{false, true, false, false}
	if canonicalSideKey(a) == canonicalSideKey(c) {
		t.Error("distinct cuts share a key")
	}
}

func TestAllMinCutsDeepRecursion(t *testing.T) {
	// Large enough that the eager step leaves > baseCaseSize vertices, so
	// ksRecurseAll's tie-preserving recursion actually recurses.
	g := gen.TwoCliques(20, 2, 5, 1) // n=40, m=382, unique min cut 2
	if eagerTarget(g.M()) <= baseCaseSize {
		t.Fatalf("test graph too small to force recursion (target %d)", eagerTarget(g.M()))
	}
	cuts := AllMinCuts(g, rng.New(13, 0, 0), 0.9)
	if len(cuts) != 1 {
		t.Fatalf("found %d cuts, want unique", len(cuts))
	}
	if cuts[0].Value != 2 || !cuts[0].Check(g) {
		t.Errorf("bad cut: value %d", cuts[0].Value)
	}
}

func TestAllMinCutsTiesThroughRecursion(t *testing.T) {
	// A graph with several tied minimum cuts that survives the eager step
	// above base-case size: two cliques joined by two separate bridges of
	// weight 1 each to DIFFERENT clique vertices — the minimum cut (2)
	// can be achieved only by the clique bipartition, but adding a
	// pendant path creates extra tied cuts.
	g := gen.TwoCliques(16, 2, 5, 1).Clone()
	// Pendant path of weight-2 edges hung off vertex 0: each of its edges
	// is a cut of value 2, tying the clique separation.
	base := int32(g.N)
	g.N += 3
	g.AddEdge(0, base, 2)
	g.AddEdge(base, base+1, 2)
	g.AddEdge(base+1, base+2, 2)
	cuts := AllMinCuts(g, rng.New(29, 0, 0), 0.95)
	if len(cuts) != 4 { // clique split + 3 path edges
		t.Errorf("found %d tied cuts, want 4", len(cuts))
	}
	for _, c := range cuts {
		if c.Value != 2 || !c.Check(g) {
			t.Errorf("bad tied cut %d", c.Value)
		}
	}
}

func TestMaxTiedSidesBounds(t *testing.T) {
	if maxTiedSides(2) != 4 {
		t.Errorf("floor: %d", maxTiedSides(2))
	}
	if maxTiedSides(10) != 45 {
		t.Errorf("mid: %d", maxTiedSides(10))
	}
	if maxTiedSides(10000) != 4096 {
		t.Errorf("cap: %d", maxTiedSides(10000))
	}
}

func runParallelAllCuts(t *testing.T, g *graph.Graph, p int, seed uint64) []*CutResult {
	t.Helper()
	var res []*CutResult
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		r := ParallelAllMinCuts(c, n, local, rng.New(seed, uint32(c.Rank()), 0), 0.99)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelAllMinCutsCycle(t *testing.T) {
	g := gen.Cycle(6, 1) // C(6,2) = 15 minimum cuts
	for _, p := range []int{1, 2, 4} {
		cuts := runParallelAllCuts(t, g, p, 5)
		if len(cuts) < 13 {
			t.Errorf("p=%d: found %d of 15 cuts", p, len(cuts))
		}
		seen := map[string]bool{}
		for _, c := range cuts {
			if c.Value != 2 || !c.Check(g) {
				t.Fatalf("p=%d: bad cut %d", p, c.Value)
			}
			k := canonicalSideKey(c.Side)
			if seen[k] {
				t.Fatalf("p=%d: duplicate cut", p)
			}
			seen[k] = true
		}
	}
}

func TestParallelAllMinCutsUnique(t *testing.T) {
	g := gen.TwoCliques(10, 2, 6, 1)
	cuts := runParallelAllCuts(t, g, 3, 9)
	if len(cuts) != 1 || cuts[0].Value != 2 {
		t.Errorf("found %d cuts (value %v), want unique value-2 cut", len(cuts), cuts)
	}
}

func TestParallelAllMinCutsDisconnected(t *testing.T) {
	g := graph.New(8)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	cuts := runParallelAllCuts(t, g, 3, 2)
	if len(cuts) == 0 {
		t.Fatal("no zero cuts")
	}
	for _, c := range cuts {
		if c.Value != 0 || !c.Check(g) {
			t.Error("bad zero cut")
		}
	}
}

func TestParallelAllMinCutsMatchesSequential(t *testing.T) {
	g := gen.Star(8, 3) // 7 singleton cuts
	par := runParallelAllCuts(t, g, 4, 3)
	seq := AllMinCuts(g, rng.New(3, 0, 0), 0.99)
	if len(par) != len(seq) {
		t.Errorf("parallel found %d cuts, sequential %d", len(par), len(seq))
	}
}
