package mincut

import (
	"testing"

	"repro/internal/gen"
)

// The dynamic scheduler must be invisible in the results: for a fixed
// seed the cut value and side are bit-identical whichever schedule runs
// the trials, and — in the replicated regime — whatever p is, because
// trial i's stream derives from i alone and ties break on the trial
// index. This is the property that lets the serving layer cache and
// coalesce by (graph, seed, params) while sizing machines freely.
func TestScheduleIndependence(t *testing.T) {
	g := gen.ErdosRenyiM(64, 256, 3, gen.Config{MaxWeight: 4})
	if !g.IsConnected() {
		t.Fatal("test graph must be connected")
	}
	const seed = 7
	opts := func(s Schedule) Options {
		return Options{SuccessProb: 0.9, MaxTrials: 32, Schedule: s}
	}
	ref := parallelCut(t, g, 1, seed, opts(SchedStatic))
	if !ref.Check(g) {
		t.Fatal("reference partition inconsistent")
	}
	for _, p := range []int{1, 4, 16} {
		for _, sched := range []Schedule{SchedStatic, SchedDynamic} {
			got := parallelCut(t, g, p, seed, opts(sched))
			if got.Value != ref.Value {
				t.Errorf("p=%d sched=%d: value %d, want %d", p, sched, got.Value, ref.Value)
			}
			if len(got.Side) != len(ref.Side) {
				t.Fatalf("p=%d sched=%d: side length %d, want %d", p, sched, len(got.Side), len(ref.Side))
			}
			for v := range got.Side {
				if got.Side[v] != ref.Side[v] {
					t.Errorf("p=%d sched=%d: side differs at vertex %d", p, sched, v)
					break
				}
			}
		}
	}
}

// assignChunks replicates one deterministic assignment on every rank;
// round 0 (no cost data) must degenerate to round-robin, and skewed
// costs must push the whole batch onto the cheapest ranks.
func TestAssignChunks(t *testing.T) {
	virtual := make([]uint64, 4)

	// Round 0: zero costs → round-robin, chunk j to rank j.
	for rank := 0; rank < 4; rank++ {
		mine := assignChunks(make([]uint64, 4), virtual, rank, 0, 4)
		if len(mine) != 1 || mine[0] != rank {
			t.Errorf("round 0 rank %d: chunks %v, want [%d]", rank, mine, rank)
		}
	}

	// Rank 3 is far behind (a straggler): with 4 chunks already run and
	// an average chunk cost of 25, ranks 0-2 (cost 10 each) must absorb
	// the next batch while rank 3 (cost 70) gets nothing.
	costs := []uint64{10, 10, 10, 70}
	var got []int
	for rank := 0; rank < 4; rank++ {
		mine := assignChunks(costs, virtual, rank, 4, 4)
		if rank == 3 && len(mine) != 0 {
			t.Errorf("straggler rank 3 assigned %v, want none", mine)
		}
		got = append(got, mine...)
	}
	if len(got) != 4 {
		t.Errorf("assigned %d chunks total, want 4 (each exactly once)", len(got))
	}
	seen := map[int]bool{}
	for _, ci := range got {
		if ci < 4 || ci >= 8 || seen[ci] {
			t.Errorf("bad or duplicate chunk %d in %v", ci, got)
		}
		seen[ci] = true
	}
}
