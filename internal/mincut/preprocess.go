package mincut

import (
	"repro/internal/graph"
)

// The bounds of the paper assume edge weights bounded by the minimum cut
// value times a polynomial in n (§2.3); Karger–Stein §7.1 give a
// preprocessing step that removes the assumption without changing any
// minimum cut: an edge whose weight strictly exceeds an upper bound U on
// the minimum cut value cannot cross any minimum cut (a single crossing
// edge heavier than the cut value is a contradiction), so such edges can
// be contracted away up front.

// WeightCapBound returns a cheap deterministic upper bound on the
// minimum cut: the smallest weighted vertex degree.
func WeightCapBound(g *graph.Graph) uint64 {
	if g.N == 0 {
		return 0
	}
	_, d := g.MinDegreeVertex()
	return d
}

// ContractHeavyEdges contracts every edge of weight > bound (an upper
// bound on the minimum cut value, e.g. WeightCapBound) and returns the
// contracted graph together with the mapping from g's vertices to the
// contracted ones. All minimum cuts survive exactly: lifting a side
// through the mapping recovers a side of equal value in g. Contracting
// can cascade — merged parallel edges may themselves exceed the bound —
// so the reduction runs to a fixed point.
func ContractHeavyEdges(g *graph.Graph, bound uint64) (*graph.Graph, []int32) {
	n := g.N
	mapping := make([]int32, n)
	for i := range mapping {
		mapping[i] = int32(i)
	}
	cur := g
	for {
		uf := graph.NewUnionFind(cur.N)
		merged := false
		// Combine parallel edges first so parallel bundles heavier than
		// the bound are caught.
		simple := cur.Simplify()
		for _, e := range simple.Edges {
			if e.W > bound {
				if uf.Union(e.U, e.V) {
					merged = true
				}
			}
		}
		if !merged {
			return simple, mapping
		}
		labels := uf.Labels()
		next := simple.Relabel(labels, uf.Count())
		for v := 0; v < n; v++ {
			mapping[v] = labels[mapping[v]]
		}
		cur = next
	}
}
