package mincut

import (
	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/graph"
	xsort "repro/internal/sort"
)

// sparseBulkContract performs Sparse Bulk Edge Contraction (§4.1) on a
// distributed edge array: ① locally rename endpoints through the mapping
// and drop loops, ② globally sample-sort the edges by endpoints, ③ combine
// parallel edges locally, and ④⑤ resolve groups spanning processor
// boundaries with one O(p)-word all-gather. O(1) supersteps, O(m/p)
// communication volume w.h.p. (Lemma 4.2).
func sparseBulkContract(c *bsp.Comm, local []graph.Edge, mapping []int32) []graph.Edge {
	// ① Rename + drop loops + normalize.
	renamed := make([]graph.Edge, 0, len(local))
	for _, e := range local {
		u, v := mapping[e.U], mapping[e.V]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		renamed = append(renamed, graph.Edge{U: u, V: v, W: e.W})
	}
	c.Ops(uint64(len(local)))

	// ② Global sort. (Our sample sort routes equal keys to a single
	// destination, so spanning groups cannot arise from it; the boundary
	// resolution below still runs for faithfulness to the paper and to
	// keep the procedure correct under any sorted distribution.)
	sorted := dist.SampleSortEdges(c, renamed)

	// ③ Local combine.
	run := graph.CombineSorted(sorted)
	c.Ops(uint64(len(sorted)))

	// ④⑤ Merge boundary-spanning groups.
	return resolveBoundaries(c, run)
}

// resolveBoundaries merges parallel-edge groups that span processor
// boundaries in a globally sorted, locally combined distributed run.
// It refines the paper's step ④: in addition to each processor's first
// combined edge we also exchange its last, which lets every processor
// decide locally and deterministically which rank is the leftmost owner
// of every spanning group (the paper's "at most one processor with a
// parallel edge not in l" case). One all-gather of O(p) words, O(1)
// supersteps. The (possibly shortened, possibly reweighted) run is
// returned.
func resolveBoundaries(c *bsp.Comm, run []graph.Edge) []graph.Edge {
	type key struct{ u, v int32 }

	// Per-rank summary: presence flag, first edge (u,v,w), last edge
	// (u,v,w), run length. It is staged in a pooled buffer (Send copies
	// payloads, so the buffer goes back to the pool as soon as the
	// all-gather returns) and the gathered summaries are consumed straight
	// from the collective's received views — no per-call []info slab.
	summary := xsort.BorrowWords(8)
	for i := range summary {
		summary[i] = 0
	}
	if len(run) > 0 {
		f, l := run[0], run[len(run)-1]
		summary[0] = 1
		summary[1], summary[2], summary[3] = uint64(uint32(f.U)), uint64(uint32(f.V)), f.W
		summary[4], summary[5], summary[6] = uint64(uint32(l.U)), uint64(uint32(l.V)), l.W
		summary[7] = uint64(len(run))
	}
	all := c.AllGather(summary)
	xsort.ReleaseWords(summary)
	if len(run) == 0 {
		return run
	}
	me := c.Rank()

	has := func(r int) bool { return all[r][0] != 0 }
	firstOf := func(r int) key {
		s := all[r]
		return key{int32(uint32(s[1])), int32(uint32(s[2]))}
	}
	lastOf := func(r int) key {
		s := all[r]
		return key{int32(uint32(s[4])), int32(uint32(s[5]))}
	}

	// The owner of group key k is the smallest rank whose run contains k;
	// in a sorted, locally-combined distribution that rank has k as its
	// first or last edge.
	ownerOf := func(k key) int {
		for r := 0; r < c.Size(); r++ {
			if has(r) && (firstOf(r) == k || lastOf(r) == k) {
				return r
			}
		}
		return me
	}

	// Absorb: if I own my last edge's group, add the first-edge weights
	// of all later processors whose first edge is in that group. (A later
	// processor's first key is >= my last key, so no other of my edges
	// can be shared.)
	lastKey := lastOf(me)
	if ownerOf(lastKey) == me {
		var extra uint64
		for r := me + 1; r < c.Size(); r++ {
			if has(r) && firstOf(r) == lastKey {
				extra += all[r][3]
			}
		}
		run[len(run)-1].W += extra
	}
	// Drop: if an earlier rank owns my first edge's group, remove my copy
	// (its weight was absorbed there).
	if ownerOf(firstOf(me)) < me {
		run = run[1:]
	}
	return run
}
