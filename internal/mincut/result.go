// Package mincut implements the paper's exact communication-avoiding
// global minimum cut algorithm (§4) and its sequential baselines. The
// parallel algorithm runs Θ((n²/m)·polylog) independent trials, each of
// which (1) eagerly contracts the graph to ⌈√m⌉+1 vertices with sparse
// iterated sampling — sparsification (§3.1) plus sparse bulk edge
// contraction (§4.1) — and (2) runs recursive contraction (Karger–Stein)
// with dense bulk edge contraction and processor-group halving (§4.3).
// The trials are distributed over processors (p ≤ t: replicate the graph
// and split the trials; p > t: processor groups run distributed trials).
//
// The sequential baselines are Karger–Stein recursive contraction (the
// "KS" baseline, whose cache-oblivious variant the paper compares
// against) and Stoer–Wagner's deterministic maximum-adjacency-search
// algorithm (the "SW" baseline).
package mincut

import (
	"math"
	"math/bits"

	"repro/internal/graph"
)

// CutResult describes a global cut: its value and one side of the vertex
// partition.
type CutResult struct {
	// Value is the total weight of edges crossing the cut.
	Value uint64
	// Side marks the vertices of one side of the cut (the side not
	// containing vertex 0 unless the whole assignment was flipped —
	// callers should treat it as an unordered bipartition).
	Side []bool
	// Trials is the number of contraction trials executed (randomized
	// algorithms only).
	Trials int
}

// Check verifies the result against g: the side must be a nonempty proper
// subset and its cut value must equal Value. It returns false for
// inconsistent results.
func (r *CutResult) Check(g *graph.Graph) bool {
	if len(r.Side) != g.N {
		return false
	}
	in := 0
	for _, s := range r.Side {
		if s {
			in++
		}
	}
	if in == 0 || in == g.N {
		return false
	}
	return g.CutValue(r.Side) == r.Value
}

// bruteForce finds the exact minimum cut of a small dense matrix by
// enumerating all 2^(n-1)-1 bipartitions (vertex 0 fixed to one side) in
// Gray-code order, so each step flips one vertex and updates the cut
// value in O(n). It is the deterministic base case of recursive
// contraction; n must be at least 2 and should stay tiny (≤
// baseCaseSize, so the mask fits easily in 32 bits).
func bruteForce(m *graph.Matrix) (uint64, []bool) {
	side := make([]bool, m.N)
	bestSide := make([]bool, m.N)
	return bruteForceInto(m, side, bestSide), bestSide
}

// bruteForceInto is bruteForce with caller-provided storage (both length
// m.N): side is enumeration scratch, bestSide receives the winning cut.
// The arena path of recursive contraction hands in pooled slices here.
func bruteForceInto(m *graph.Matrix, side, bestSide []bool) uint64 {
	n := m.N
	for i := range side { // state for mask 0: everything on one side
		side[i] = false
	}
	bestVal := uint64(math.MaxUint64)
	var cur int64
	for g := uint32(1); g < uint32(1)<<(n-1); g++ {
		// Gray codes of consecutive indices differ in exactly the lowest
		// set bit of g; bit b toggles vertex b+1 (vertex 0 never moves).
		v := bits.TrailingZeros32(g) + 1
		row := m.W[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if side[u] != side[v] {
				cur -= int64(row[u]) // edge leaves the cut
			} else {
				cur += int64(row[u]) // edge enters the cut
			}
		}
		side[v] = !side[v]
		if uint64(cur) < bestVal {
			bestVal = uint64(cur)
			copy(bestSide, side)
		}
	}
	return bestVal
}

// minDegreeCut returns the best singleton cut of the graph — a cheap
// deterministic upper bound folded into every randomized result.
func minDegreeCut(g *graph.Graph) (uint64, []bool) {
	v, d := g.MinDegreeVertex()
	side := make([]bool, g.N)
	if v >= 0 {
		side[v] = true
	}
	return d, side
}
