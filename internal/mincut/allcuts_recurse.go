package mincut

import (
	"math"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Tie-preserving variants of the trial machinery. The single-cut trial
// returns one minimum of the base case; here every base case enumerates
// all tied minimum cuts and the recursion propagates the whole tied set,
// which is what makes Lemma 4.3 ("finds all minimum cuts w.h.p.")
// effective: a trial in which several minimum cuts survive contraction
// reports all of them.

// maxTiedSides caps the tied-set size per recursion node; a graph has at
// most n(n-1)/2 minimum cuts overall, and intermediate sets beyond the
// cap add nothing because further trials rediscover missing cuts.
func maxTiedSides(n int) int {
	c := n * (n - 1) / 2
	if c < 4 {
		c = 4
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// bruteForceAll enumerates every bipartition (Gray-code order, O(n) per
// step) and returns all sides achieving the minimum cut value.
func bruteForceAll(m *graph.Matrix) (uint64, [][]bool) {
	n := m.N
	side := make([]bool, n)
	best := uint64(math.MaxUint64)
	var sides [][]bool
	var cur int64
	for g := uint32(1); g < uint32(1)<<(n-1); g++ {
		v := bits.TrailingZeros32(g) + 1
		row := m.W[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if side[u] != side[v] {
				cur -= int64(row[u])
			} else {
				cur += int64(row[u])
			}
		}
		side[v] = !side[v]
		switch {
		case uint64(cur) < best:
			best = uint64(cur)
			sides = sides[:0]
			sides = append(sides, append([]bool(nil), side...))
		case uint64(cur) == best:
			sides = append(sides, append([]bool(nil), side...))
		}
	}
	return best, sides
}

// ksRecurseAll is ksRecurse with tie preservation: both branches'
// tied-minimum sets are merged (deduplicated by canonical key).
// Contraction scratch comes from the arena; the lifted sides escape into
// the tied set and so stay freshly allocated.
func ksRecurseAll(a *ksArena, m *graph.Matrix, st *rng.Stream) (uint64, [][]bool) {
	n := m.N
	if n <= baseCaseSize {
		return bruteForceAll(m)
	}
	t := int(math.Ceil(float64(n)/math.Sqrt2)) + 1
	if t >= n {
		t = n - 1
	}
	best := uint64(math.MaxUint64)
	seen := map[string]bool{}
	var sides [][]bool
	limit := maxTiedSides(n)
	for branch := 0; branch < 2; branch++ {
		cm, mapping := a.contractTo(m, t, st)
		val, sub := ksRecurseAll(a, cm, st)
		a.putWords(cm.W)
		if val > best {
			a.putInts(mapping)
			continue
		}
		if val < best {
			best = val
			sides = sides[:0]
			clear(seen)
		}
		for _, s := range sub {
			if len(sides) >= limit {
				break
			}
			lifted := make([]bool, n)
			for v := 0; v < n; v++ {
				lifted[v] = s[mapping[v]]
			}
			k := canonicalSideKey(lifted)
			if !seen[k] {
				seen[k] = true
				sides = append(sides, lifted)
			}
		}
		a.putInts(mapping)
	}
	return best, sides
}

// sequentialTrialAll is one Eager+Recursive trial that reports every
// tied minimum cut it encounters, lifted to g's vertices.
func sequentialTrialAll(g *graph.Graph, st *rng.Stream) (uint64, [][]bool) {
	t := eagerTarget(len(g.Edges))
	work := g
	mapping := make([]int32, g.N)
	for i := range mapping {
		mapping[i] = int32(i)
	}
	if t < g.N {
		work, mapping, _ = eagerSequential(g, t, st)
	}
	if work.N < 2 {
		v, s := minDegreeCut(g)
		return v, [][]bool{s}
	}
	a := getKSArena()
	mat := a.matrixFromEdges(work.N, work.Edges)
	val, sides := ksRecurseAll(a, mat, st)
	a.putWords(mat.W)
	putKSArena(a)
	out := make([][]bool, len(sides))
	for i, s := range sides {
		lifted := make([]bool, g.N)
		for v := 0; v < g.N; v++ {
			lifted[v] = s[mapping[v]]
		}
		out[i] = lifted
	}
	return val, out
}
