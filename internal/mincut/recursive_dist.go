package mincut

import (
	"math"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// sampleMatrixEdges draws s edges from the distributed adjacency matrix,
// each with probability proportional to its weight, and returns the
// permuted sample at the root (dense-representation sparsification used
// inside the Recursive Step). Non-roots return nil.
func sampleMatrixEdges(c *bsp.Comm, blk *dist.MatrixBlock, s int, st *rng.Stream) []graph.Edge {
	// Local total weight (each undirected edge counted once per incident
	// row, i.e. twice globally — uniform double counting keeps the
	// distribution proportional).
	var wi uint64
	for _, w := range blk.W {
		wi += w
	}
	sums := c.Gather(0, []uint64{wi})
	var counts [][]uint64
	if c.Rank() == 0 {
		weights := make([]uint64, c.Size())
		var total uint64
		for r := range sums {
			weights[r] = sums[r][0]
			total += sums[r][0]
		}
		counts = make([][]uint64, c.Size())
		for r := range counts {
			counts[r] = []uint64{0}
		}
		if total > 0 {
			alias := rng.NewAliasSampler(weights)
			for k := 0; k < s; k++ {
				counts[alias.Sample(st)][0]++
			}
		}
	}
	quota := int(c.Scatter(0, counts)[0])

	var chosen []graph.Edge
	if quota > 0 {
		ps := rng.NewPrefixSampler(blk.W)
		for k := 0; k < quota; k++ {
			idx := ps.Sample(st)
			row := blk.Lo + idx/blk.N
			col := idx % blk.N
			chosen = append(chosen, graph.Edge{U: int32(row), V: int32(col), W: blk.W[idx]})
		}
		c.Ops(uint64(quota) * uint64(math.Ilogb(float64(len(blk.W)+2))+1))
	}
	parts := c.Gather(0, dist.EncodeEdges(chosen))
	if c.Rank() != 0 {
		return nil
	}
	var sample []graph.Edge
	for _, p := range parts {
		sample = append(sample, dist.DecodeEdges(p)...)
	}
	st.Shuffle(len(sample), func(i, j int) { sample[i], sample[j] = sample[j], sample[i] })
	return sample
}

// denseContractTo contracts the distributed matrix to at most t vertices
// with iterated sampling over the dense representation: sparsify from the
// matrix, prefix-select at the root, and apply dense bulk edge
// contraction (Lemma 4.1). It returns the contracted block (whose N is
// the new vertex count) and the mapping (replicated) from blk's vertices.
func denseContractTo(c *bsp.Comm, blk *dist.MatrixBlock, t int, st *rng.Stream) (*dist.MatrixBlock, []int32) {
	n := blk.N
	mapping := make([]int32, n)
	for i := range mapping {
		mapping[i] = int32(i)
	}
	nCur := n
	for nCur > t {
		s := sampleBudget(nCur, nCur*nCur/2+1)
		sample := sampleMatrixEdges(c, blk, s, st)
		var payload []uint64
		if c.Rank() == 0 {
			if len(sample) == 0 {
				// No edges left anywhere: contraction cannot proceed.
				payload = make([]uint64, nCur+1)
				payload[0] = uint64(nCur)
				for i := range nCur {
					payload[i+1] = uint64(i)
				}
			} else {
				uf := graph.NewUnionFind(nCur)
				prefixContract(uf, sample, t)
				labels := uf.Labels()
				payload = make([]uint64, nCur+1)
				payload[0] = uint64(uf.Count())
				for i, l := range labels {
					payload[i+1] = uint64(uint32(l))
				}
			}
		}
		payload = c.Broadcast(0, payload)
		count := int(payload[0])
		if count == nCur {
			break // no progress possible (edgeless remainder)
		}
		labels := make([]int32, nCur)
		for i := range labels {
			labels[i] = int32(uint32(payload[i+1]))
		}
		blk = blk.Contract(c, labels, count)
		for v := 0; v < n; v++ {
			mapping[v] = labels[mapping[v]]
		}
		nCur = count
	}
	return blk, mapping
}

// redistribute reshapes a matrix distributed over the parent communicator
// into the row-block distribution of a processor subgroup. groupRanks
// lists the parent ranks of the target group in subgroup-rank order.
// Every parent processor participates; members of the group return their
// new block, others nil.
func redistribute(c *bsp.Comm, blk *dist.MatrixBlock, groupRanks []int) *dist.MatrixBlock {
	n := blk.N
	gp := len(groupRanks)
	parts := make([][]uint64, c.Size())
	for i := blk.Lo; i < blk.Hi; i++ {
		subOwner := dist.OwnerOf(n, gp, i)
		dst := groupRanks[subOwner]
		parts[dst] = append(parts[dst], uint64(i))
		parts[dst] = append(parts[dst], blk.Row(i)...)
	}
	got := c.AllToAllOwned(parts)
	// Am I in the group?
	myIdx := -1
	for idx, r := range groupRanks {
		if r == c.Rank() {
			myIdx = idx
		}
	}
	if myIdx < 0 {
		return nil
	}
	lo, hi := dist.BlockRange(n, gp, myIdx)
	out := &dist.MatrixBlock{N: n, Lo: lo, Hi: hi, W: make([]uint64, (hi-lo)*n)}
	for _, words := range got {
		for off := 0; off+1+n <= len(words)+0; off += 1 + n {
			row := int(words[off])
			copy(out.W[(row-lo)*n:(row-lo+1)*n], words[off+1:off+1+n])
		}
	}
	return out
}

// packSide encodes a boolean side as bit-packed words prefixed by length.
func packSide(side []bool) []uint64 {
	words := make([]uint64, 1+(len(side)+63)/64)
	words[0] = uint64(len(side))
	for i, s := range side {
		if s {
			words[1+i/64] |= 1 << uint(i%64)
		}
	}
	return words
}

// unpackSide decodes packSide's encoding.
func unpackSide(words []uint64) []bool {
	n := int(words[0])
	side := make([]bool, n)
	for i := range side {
		side[i] = words[1+i/64]>>uint(i%64)&1 == 1
	}
	return side
}

// recursiveDistributed runs Recursive Contraction (§4.3) on a distributed
// adjacency matrix: contract to ⌈n/√2⌉+1, split the processors in half —
// each half recursing on its own independently contracted copy — and keep
// the better cut. Once a single processor remains, it finishes with the
// sequential recursion. Every processor of c returns the same (value,
// side over blk.N vertices).
func recursiveDistributed(c *bsp.Comm, blk *dist.MatrixBlock, st *rng.Stream) (uint64, []bool) {
	n := blk.N
	if c.Size() == 1 {
		m := &graph.Matrix{N: n, W: blk.W}
		if n <= 1 {
			return 0, make([]bool, n)
		}
		return ksRecurse(m, st)
	}
	if n <= baseCaseSize {
		// Gather at rank 0, brute force, broadcast.
		full := dist.GatherMatrix(c, 0, blk)
		var payload []uint64
		if c.Rank() == 0 {
			val, side := bruteForce(full)
			payload = append([]uint64{val}, packSide(side)...)
		}
		payload = c.Broadcast(0, payload)
		return payload[0], unpackSide(payload[1:])
	}

	p := c.Size()
	pA := p / 2
	groupA := make([]int, pA)
	groupB := make([]int, p-pA)
	for i := range groupA {
		groupA[i] = i
	}
	for i := range groupB {
		groupB[i] = pA + i
	}

	// Both halves need the full current matrix: redistribute into each.
	blkA := redistribute(c, blk, groupA)
	blkB := redistribute(c, blk, groupB)

	inA := c.Rank() < pA
	color := 1
	if inA {
		color = 0
	}
	sub := c.Split(color, c.Rank())
	myBlk := blkB
	if inA {
		myBlk = blkA
	}

	// Each half independently contracts its copy to t and recurses.
	t := int(math.Ceil(float64(n)/math.Sqrt2)) + 1
	if t >= n {
		t = n - 1
	}
	cblk, mapping := denseContractTo(sub, myBlk, t, st.Derive(uint32(2*n+color)))
	val, side := recursiveDistributed(sub, cblk, st)
	sub.Close()
	lifted := make([]bool, n)
	for v := 0; v < n; v++ {
		lifted[v] = side[mapping[v]]
	}

	// Compare the two halves on the parent communicator: rank pA ships
	// its branch result to rank 0, which broadcasts the winner.
	if c.Rank() == pA {
		c.Send(0, append([]uint64{val}, packSide(lifted)...))
	}
	c.Sync()
	var payload []uint64
	if c.Rank() == 0 {
		in := c.Recv(pA)
		bVal := in[0]
		bSide := unpackSide(in[1:])
		if bVal < val {
			val, lifted = bVal, bSide
		}
		payload = append([]uint64{val}, packSide(lifted)...)
	}
	payload = c.Broadcast(0, payload)
	return payload[0], unpackSide(payload[1:])
}
