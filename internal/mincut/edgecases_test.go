package mincut

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestTwoVertexGraph(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 7)
	for _, f := range []func() *CutResult{
		func() *CutResult { return Sequential(g, rng.New(1, 0, 0), 0.9) },
		func() *CutResult { return StoerWagner(g) },
		func() *CutResult { return KargerStein(g, rng.New(1, 0, 0), 0.9) },
		func() *CutResult { return parallelHelper(t, g, 2, 1) },
	} {
		res := f()
		if res.Value != 7 {
			t.Errorf("two-vertex cut = %d, want 7", res.Value)
		}
		if !res.Check(g) {
			t.Error("inconsistent partition")
		}
	}
}

func parallelHelper(t *testing.T, g *graph.Graph, p int, seed uint64) *CutResult {
	t.Helper()
	var res *CutResult
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		r := Parallel(c, n, local, rng.New(seed, uint32(c.Rank()), 0), Options{})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleVertex(t *testing.T) {
	g := graph.New(1)
	if res := Sequential(g, rng.New(1, 0, 0), 0.9); res.Value != 0 {
		t.Errorf("single vertex cut = %d", res.Value)
	}
	if res := StoerWagner(g); res.Value != 0 {
		t.Errorf("SW single vertex = %d", res.Value)
	}
}

func TestHeavyWeights(t *testing.T) {
	// Weights near 2^40: cumulative sums must not misbehave.
	g := graph.New(6)
	heavy := uint64(1) << 40
	g.AddEdge(0, 1, heavy)
	g.AddEdge(1, 2, heavy)
	g.AddEdge(2, 0, heavy)
	g.AddEdge(3, 4, heavy)
	g.AddEdge(4, 5, heavy)
	g.AddEdge(5, 3, heavy)
	g.AddEdge(0, 3, 3)
	want := uint64(3)
	if res := Sequential(g, rng.New(2, 0, 0), 0.95); res.Value != want {
		t.Errorf("heavy-weight cut = %d, want %d", res.Value, want)
	}
	if res := StoerWagner(g); res.Value != want {
		t.Errorf("SW heavy-weight cut = %d", res.Value)
	}
}

func TestUnevenGroupSplit(t *testing.T) {
	// p=5, trials=2: groups of sizes 3 and 2 run distributed trials.
	g := gen.Cycle(36, 2)
	var res *CutResult
	_, err := bsp.Run(5, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		r := Parallel(c, n, local, rng.New(77, uint32(c.Rank()), 0), Options{MaxTrials: 2})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 || !res.Check(g) {
		t.Errorf("uneven groups: cut = %d, want 4", res.Value)
	}
}

func TestParallelMoreProcsThanVertices(t *testing.T) {
	g := gen.Complete(6, 2) // min cut 10
	res := parallelHelper(t, g, 8, 5)
	if res.Value != 10 {
		t.Errorf("p>n: cut = %d, want 10", res.Value)
	}
	if !res.Check(g) {
		t.Error("inconsistent partition")
	}
}

func TestStarParallel(t *testing.T) {
	// High-degree hub stresses the distributed edge array's robustness to
	// skew (the motivation for edge arrays over adjacency lists, §3).
	g := gen.Star(64, 3)
	res := parallelHelper(t, g, 4, 3)
	if res.Value != 3 || !res.Check(g) {
		t.Errorf("star cut = %d, want 3", res.Value)
	}
}

func TestParallelEdgesInInput(t *testing.T) {
	// The algorithms accept multigraphs.
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddEdge(0, 1, 1)
		g.AddEdge(1, 2, 1)
		g.AddEdge(2, 3, 1)
		g.AddEdge(3, 0, 1)
	}
	res := Sequential(g, rng.New(4, 0, 0), 0.95)
	if res.Value != 6 { // ring of weight-3 super-edges: cut = 2*3
		t.Errorf("multigraph cut = %d, want 6", res.Value)
	}
}

func TestDenseRegimeDetection(t *testing.T) {
	if !denseRegime(100, 2000) { // n²/log n ≈ 1505
		t.Error("dense graph not detected")
	}
	if denseRegime(1000, 5000) {
		t.Error("sparse graph flagged dense")
	}
	if !denseRegime(2, 1) {
		t.Error("tiny graphs should take the dense path")
	}
}

func TestSequentialDenseFastPath(t *testing.T) {
	// Near-complete graph: the AM fast path must give the right answer.
	g := gen.Complete(24, 2) // min cut 46
	res := Sequential(g, rng.New(6, 0, 0), 0.95)
	if res.Value != 46 {
		t.Errorf("dense-path cut = %d, want 46", res.Value)
	}
	if !res.Check(g) {
		t.Error("inconsistent partition")
	}
	// Dense but not complete, with a planted sparse cut.
	h := gen.TwoCliques(12, 2, 9, 1) // two dense K12s, min cut 2
	res = Sequential(h, rng.New(7, 0, 0), 0.95)
	if res.Value != 2 {
		t.Errorf("two-clique dense cut = %d, want 2", res.Value)
	}
}
