package mincut

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// TestArenaReuseBitIdentical checks the arena's core contract: a
// recursion running on dirty, recycled buffers must produce bit-identical
// results to one running on fresh allocations, because every arena slice
// is fully written before it is read. The first pass warms (and dirties)
// the pooled arena; the second pass replays the same RNG streams through
// the warm pool and must reproduce every value and side exactly.
func TestArenaReuseBitIdentical(t *testing.T) {
	graphs := []*graph.Graph{
		gen.ErdosRenyiM(60, 400, 5, gen.Config{MaxWeight: 7}),
		gen.ErdosRenyiM(120, 900, 6, gen.Config{MaxWeight: 3}),
		gen.RMAT(7, 700, 8, gen.Config{MaxWeight: 9}),
	}
	type outcome struct {
		val  uint64
		side []bool
	}
	run := func() []outcome {
		var out []outcome
		for gi, g := range graphs {
			st := rng.New(97, uint32(gi), 0)
			r := KargerStein(g, st, 0.9)
			out = append(out, outcome{r.Value, append([]bool(nil), r.Side...)})
			st2 := rng.New(131, uint32(gi), 0)
			r2 := Sequential(g, st2, 0.9)
			out = append(out, outcome{r2.Value, append([]bool(nil), r2.Side...)})
		}
		return out
	}
	first := run()
	second := run() // pools are warm: every arena buffer is recycled and dirty
	for i := range first {
		if first[i].val != second[i].val {
			t.Fatalf("outcome %d: value %d on fresh buffers, %d on recycled", i, first[i].val, second[i].val)
		}
		for v := range first[i].side {
			if first[i].side[v] != second[i].side[v] {
				t.Fatalf("outcome %d: side differs at vertex %d between fresh and recycled buffers", i, v)
			}
		}
	}
}

// TestArenaContractToMatchesStandalone pins the arena contraction against
// the standalone copy-out wrapper: same stream, same matrix, identical
// contracted matrix and mapping.
func TestArenaContractToMatchesStandalone(t *testing.T) {
	g := gen.ErdosRenyiM(40, 300, 17, gen.Config{MaxWeight: 5})
	m := graph.MatrixFromGraph(g)
	for trial := 0; trial < 8; trial++ {
		st1 := rng.New(7, uint32(trial), 0)
		st2 := rng.New(7, uint32(trial), 0)
		wantM, wantMap := contractTo(m, 12, st1)

		a := getKSArena()
		// Dirty the arena first so reuse is actually exercised.
		junkW := a.getWords(m.N * m.N)
		for i := range junkW {
			junkW[i] = ^uint64(0)
		}
		a.putWords(junkW)
		junkI := a.getInts(m.N)
		for i := range junkI {
			junkI[i] = -7
		}
		a.putInts(junkI)
		gotM, gotMap := a.contractTo(m, 12, st2)
		if gotM.N != wantM.N {
			t.Fatalf("trial %d: contracted to %d vertices, standalone %d", trial, gotM.N, wantM.N)
		}
		for i := range wantM.W {
			if gotM.W[i] != wantM.W[i] {
				t.Fatalf("trial %d: matrix cell %d = %d, standalone %d", trial, i, gotM.W[i], wantM.W[i])
			}
		}
		for i := range wantMap {
			if gotMap[i] != wantMap[i] {
				t.Fatalf("trial %d: mapping[%d] = %d, standalone %d", trial, i, gotMap[i], wantMap[i])
			}
		}
		a.putWords(gotM.W)
		a.putInts(gotMap)
		putKSArena(a)
	}
}
