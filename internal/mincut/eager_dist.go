package mincut

import (
	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparsify"
)

// eagerDistributed is the Eager Step (§4.2) on a distributed edge array:
// sparse iterated sampling contracts the graph from n vertices to at most
// t. Each round runs distributed-edge-array sparsification (Lemma 3.2),
// prefix selection at the root, and sparse bulk edge contraction
// (Lemma 4.2). It returns the contracted local edges, the resulting
// vertex count, and the (replicated) mapping from original vertices to
// contracted labels.
func eagerDistributed(c *bsp.Comm, n int, local []graph.Edge, t int, st *rng.Stream) ([]graph.Edge, int, []int32) {
	if t < 2 {
		t = 2
	}
	mapping := make([]int32, n)
	for i := range mapping {
		mapping[i] = int32(i)
	}
	edges := append([]graph.Edge(nil), local...)
	nCur := n
	// Round scratch, hoisted: nCur only shrinks, so first-round capacity
	// serves every round. labels is allocated once at n and resliced; the
	// root keeps its solver state (union-find, labelling, broadcast
	// payload) across rounds via Reset/LabelsInto.
	labels := make([]int32, n)
	var payload []uint64
	var uf *graph.UnionFind
	var rootLabels, rootScratch []int32
	for nCur > t {
		m := dist.CountEdges(c, edges)
		if m == 0 {
			break
		}
		s := sampleBudget(nCur, int(m))
		sample := sparsify.Weighted(c, 0, edges, s, st)

		// Prefix selection at the root (§2.4): contract sampled edges in
		// permuted order while at least t components remain.
		if c.Rank() == 0 {
			if uf == nil {
				uf = graph.NewUnionFind(nCur)
				rootLabels = make([]int32, nCur)
				rootScratch = make([]int32, nCur)
				payload = make([]uint64, nCur+1)
			} else {
				uf.Reset(nCur)
			}
			prefixContract(uf, sample, t)
			lab := rootLabels[:nCur]
			uf.LabelsInto(lab, rootScratch[:nCur])
			c.Ops(uint64(len(sample)) + uint64(nCur))
			payload = payload[:nCur+1]
			payload[0] = uint64(uf.Count())
			for i, l := range lab {
				payload[i+1] = uint64(uint32(l))
			}
		}
		got := c.Broadcast(0, payload)
		count := int(got[0])
		lab := labels[:nCur]
		for i := range lab {
			lab[i] = int32(uint32(got[i+1]))
		}

		// Bulk edge contraction across the distributed array.
		edges = sparseBulkContract(c, edges, lab)
		for v := 0; v < n; v++ {
			mapping[v] = lab[mapping[v]]
		}
		c.Ops(uint64(n))
		nCur = count
	}
	return edges, nCur, mapping
}

// matrixFromDistributedEdges assembles a row-block distributed adjacency
// matrix over n vertices from a distributed edge array: each edge is sent
// to the owners of both its endpoints' rows. O(1) supersteps, O(m/p)
// expected volume.
func matrixFromDistributedEdges(c *bsp.Comm, n int, local []graph.Edge) *dist.MatrixBlock {
	p := c.Size()
	parts := make([][]uint64, p)
	for _, e := range local {
		du := dist.OwnerOf(n, p, int(e.U))
		dv := dist.OwnerOf(n, p, int(e.V))
		parts[du] = append(parts[du], uint64(uint32(e.U)), uint64(uint32(e.V)), e.W)
		if dv != du {
			parts[dv] = append(parts[dv], uint64(uint32(e.U)), uint64(uint32(e.V)), e.W)
		}
	}
	got := c.AllToAllOwned(parts)
	blk := dist.NewMatrixBlock(c, n)
	for _, words := range got {
		for i := 0; i+3 <= len(words); i += 3 {
			u := int(uint32(words[i]))
			v := int(uint32(words[i+1]))
			w := words[i+2]
			if u >= blk.Lo && u < blk.Hi {
				blk.Row(u)[v] += w
			}
			if v >= blk.Lo && v < blk.Hi {
				blk.Row(v)[u] += w
			}
		}
	}
	c.Ops(uint64(len(local)))
	return blk
}
