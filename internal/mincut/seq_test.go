package mincut

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBruteForceTriangle(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 3)
	val, side := bruteForce(graph.MatrixFromGraph(g))
	if val != 5 { // isolate vertex 2: 2+3
		t.Errorf("triangle min cut = %d, want 5", val)
	}
	if side[2] == side[0] || side[0] != side[1] {
		t.Errorf("partition should isolate vertex 2: %v", side)
	}
	if g.CutValue(side) != val {
		t.Errorf("side inconsistent: cut %d vs val %d", g.CutValue(side), val)
	}
}

func TestBruteForceMatchesExhaustiveRandom(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := gen.ErdosRenyiM(6, 10, seed, gen.Config{MaxWeight: 8})
		if !g.IsConnected() {
			return true
		}
		val, side := bruteForce(graph.MatrixFromGraph(g))
		return g.CutValue(side) == val && StoerWagner(g).Value == val
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestStoerWagnerKnownCuts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"cycle", gen.Cycle(12, 3), 6},
		{"path", gen.Path(9, 4), 4},
		{"star", gen.Star(7, 2), 2},
		{"complete", gen.Complete(8, 1), 7},
		{"twocliques", gen.TwoCliques(6, 2, 5, 1), 2},
		{"dumbbell", gen.Dumbbell(6, 4, 1), 1},
		{"grid", gen.Grid(4, 5, 1), 2},
	}
	for _, c := range cases {
		got := StoerWagner(c.g)
		if got.Value != c.want {
			t.Errorf("%s: SW = %d, want %d", c.name, got.Value, c.want)
		}
		if !got.Check(c.g) {
			t.Errorf("%s: SW returned inconsistent partition", c.name)
		}
	}
}

func TestStoerWagnerClassicExample(t *testing.T) {
	// The example graph from the Stoer–Wagner paper (8 vertices,
	// min cut 4).
	g := graph.New(8)
	type e struct {
		u, v int32
		w    uint64
	}
	for _, x := range []e{
		{0, 1, 2}, {0, 4, 3}, {1, 2, 3}, {1, 4, 2}, {1, 5, 2},
		{2, 3, 4}, {2, 6, 2}, {3, 6, 2}, {3, 7, 2}, {4, 5, 3},
		{5, 6, 1}, {6, 7, 3},
	} {
		g.AddEdge(x.u, x.v, x.w)
	}
	got := StoerWagner(g)
	if got.Value != 4 {
		t.Errorf("classic example: SW = %d, want 4", got.Value)
	}
	if !got.Check(g) {
		t.Error("inconsistent partition")
	}
}

func TestContractToPreservesWeightStructure(t *testing.T) {
	g := gen.ErdosRenyiM(20, 80, 3, gen.Config{MaxWeight: 6})
	m := graph.MatrixFromGraph(g)
	st := rng.New(7, 0, 0)
	cm, mapping := contractTo(m, 8, st)
	if cm.N != 8 {
		t.Fatalf("contracted to %d vertices, want 8", cm.N)
	}
	// The contracted matrix must equal the mapping-contraction of m.
	want := m.Contract(mapping, 8)
	for i := range want.W {
		if want.W[i] != cm.W[i] {
			t.Fatalf("contracted matrix differs from Contract(mapping) at %d", i)
		}
	}
	// Mapping must be surjective onto [0,8).
	seen := make([]bool, 8)
	for _, l := range mapping {
		if l < 0 || l >= 8 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	for l, ok := range seen {
		if !ok {
			t.Errorf("label %d unused", l)
		}
	}
}

func TestContractToNoOp(t *testing.T) {
	g := gen.Cycle(5, 1)
	m := graph.MatrixFromGraph(g)
	cm, mapping := contractTo(m, 10, rng.New(1, 0, 0))
	if cm.N != 5 {
		t.Errorf("t >= n should be a no-op, got n=%d", cm.N)
	}
	for i, l := range mapping {
		if l != int32(i) {
			t.Errorf("mapping[%d] = %d", i, l)
		}
	}
}

func TestKargerSteinKnownCuts(t *testing.T) {
	st := rng.New(99, 0, 0)
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"cycle", gen.Cycle(20, 2), 4},
		{"twocliques", gen.TwoCliques(8, 2, 4, 1), 2},
		{"dumbbell", gen.Dumbbell(8, 4, 1), 1},
		{"complete", gen.Complete(10, 1), 9},
	}
	for _, c := range cases {
		got := KargerStein(c.g, st, 0.95)
		if got.Value != c.want {
			t.Errorf("%s: KS = %d, want %d", c.name, got.Value, c.want)
		}
		if !got.Check(c.g) {
			t.Errorf("%s: inconsistent partition", c.name)
		}
	}
}

func TestKargerSteinMatchesStoerWagnerRandom(t *testing.T) {
	st := rng.New(123, 0, 0)
	for seed := uint64(0); seed < 10; seed++ {
		g := gen.ErdosRenyiM(24, 100, seed, gen.Config{MaxWeight: 5})
		if !g.IsConnected() {
			continue
		}
		want := StoerWagner(g).Value
		got := KargerStein(g, st, 0.95)
		if got.Value != want {
			t.Errorf("seed %d: KS = %d, SW = %d", seed, got.Value, want)
		}
	}
}

func TestEagerSequentialContracts(t *testing.T) {
	g := gen.ErdosRenyiM(200, 2000, 5, gen.Config{MaxWeight: 4})
	cg, mapping, _ := eagerSequential(g, 40, rng.New(3, 0, 0))
	if cg.N > 40 {
		t.Errorf("eager left %d vertices, want <= 40", cg.N)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mapping consistency: edges of cg must be the mapped non-loop edges.
	if cg.TotalWeight() > g.TotalWeight() {
		t.Error("contraction increased weight")
	}
	for v, l := range mapping {
		if int(l) >= cg.N || l < 0 {
			t.Fatalf("mapping[%d] = %d out of range", v, l)
		}
	}
	// The contracted graph's cut values are cuts of the original: check a
	// singleton of the contracted graph.
	side := make([]bool, g.N)
	for v := range side {
		side[v] = mapping[v] == 0
	}
	cside := make([]bool, cg.N)
	cside[0] = true
	if g.CutValue(side) != cg.CutValue(cside) {
		t.Errorf("lifted cut %d != contracted cut %d", g.CutValue(side), cg.CutValue(cside))
	}
}

func TestEagerSequentialDisconnected(t *testing.T) {
	g := graph.New(30)
	for i := int32(0); i < 10; i++ {
		g.AddEdge(i, (i+1)%10, 1)
		g.AddEdge(10+i, 10+(i+1)%10, 1)
	}
	// 10 isolated + two rings; contracting to 2 is impossible (>= 12
	// components), must stop when edges run out.
	cg, _, _ := eagerSequential(g, 2, rng.New(4, 0, 0))
	if len(cg.Edges) != 0 {
		t.Errorf("%d edges left after exhaustive contraction", len(cg.Edges))
	}
	if cg.N != 12 {
		t.Errorf("components = %d, want 12", cg.N)
	}
}

func TestSequentialMinCutKnownCuts(t *testing.T) {
	st := rng.New(2024, 0, 0)
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"cycle", gen.Cycle(64, 2), 4},
		{"twocliques", gen.TwoCliques(16, 3, 4, 1), 3},
		{"dumbbell", gen.Dumbbell(20, 4, 1), 1},
		{"grid", gen.Grid(8, 8, 1), 2},
	}
	for _, c := range cases {
		got := Sequential(c.g, st, 0.9)
		if got.Value != c.want {
			t.Errorf("%s: MC = %d, want %d (trials %d)", c.name, got.Value, c.want, got.Trials)
		}
		if !got.Check(c.g) {
			t.Errorf("%s: inconsistent partition", c.name)
		}
	}
}

func TestSequentialMatchesSWRandom(t *testing.T) {
	st := rng.New(31337, 0, 0)
	for seed := uint64(20); seed < 28; seed++ {
		g := gen.ErdosRenyiM(40, 240, seed, gen.Config{MaxWeight: 3})
		if !g.IsConnected() {
			continue
		}
		want := StoerWagner(g).Value
		got := Sequential(g, st, 0.9)
		if got.Value != want {
			t.Errorf("seed %d: MC = %d, SW = %d", seed, got.Value, want)
		}
	}
}

func TestSequentialDisconnectedIsZero(t *testing.T) {
	g := graph.New(10)
	g.AddEdge(0, 1, 3)
	g.AddEdge(2, 3, 3)
	got := Sequential(g, rng.New(1, 0, 0), 0.9)
	if got.Value != 0 {
		t.Errorf("disconnected: %d, want 0", got.Value)
	}
	if !got.Check(g) {
		t.Error("inconsistent zero cut")
	}
}

func TestTrialsFormula(t *testing.T) {
	// More trials for sparser graphs (n²/m factor).
	sparse := Trials(1000, 2000, 0.9)
	dense := Trials(1000, 100000, 0.9)
	if sparse <= dense {
		t.Errorf("sparse trials %d <= dense trials %d", sparse, dense)
	}
	// More trials for higher confidence.
	lo := Trials(500, 5000, 0.5)
	hi := Trials(500, 5000, 0.99)
	if hi <= lo {
		t.Errorf("trials not monotone in success prob: %d <= %d", hi, lo)
	}
	if Trials(4, 10, 0.9) != 1 {
		t.Error("tiny graphs should use a single trial")
	}
}

func TestCutResultCheck(t *testing.T) {
	g := gen.Cycle(4, 1)
	good := &CutResult{Value: 2, Side: []bool{true, true, false, false}}
	if !good.Check(g) {
		t.Error("valid result rejected")
	}
	badVal := &CutResult{Value: 3, Side: []bool{true, true, false, false}}
	if badVal.Check(g) {
		t.Error("wrong value accepted")
	}
	empty := &CutResult{Value: 0, Side: []bool{false, false, false, false}}
	if empty.Check(g) {
		t.Error("empty side accepted")
	}
	short := &CutResult{Value: 2, Side: []bool{true}}
	if short.Check(g) {
		t.Error("short side accepted")
	}
}
