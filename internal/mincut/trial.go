package mincut

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// eagerTarget is the Eager Step's contraction target: ⌈√m⌉+1 vertices
// (§4), bounded below so the recursion base case stays meaningful.
func eagerTarget(m int) int {
	t := int(math.Ceil(math.Sqrt(float64(m)))) + 1
	if t < 2 {
		t = 2
	}
	return t
}

// sequentialTrial runs one full trial — Eager Step followed by one run of
// Recursive Contraction — and returns the cut found, lifted to g's
// vertices, plus the trial's deterministic work count (the eager rounds'
// measured scans plus the recursion's O(t̄² log t̄) estimate on the
// contracted size). The work count is a function of the trial's stream
// alone, never of the rank running it — the property dynamic trial
// scheduling relies on for a deterministic, schedule-independent ledger.
// The graph must have at least 2 vertices and 1 edge. The caller owns the
// returned side; all recursion scratch comes from a, so a trial loop
// sharing one arena allocates only the lifted side per trial.
func sequentialTrial(a *ksArena, g *graph.Graph, st *rng.Stream) (uint64, []bool, uint64) {
	t := eagerTarget(len(g.Edges))
	work := g
	var mapping []int32
	var ops uint64
	if t < g.N {
		work, mapping, ops = eagerSequential(g, t, st)
	}
	if work.N < 2 {
		// Fully contracted (can happen on tiny graphs): fall back to the
		// min-degree cut of the original.
		val, side := minDegreeCut(g)
		return val, side, ops + uint64(len(g.Edges))
	}
	tn := float64(work.N)
	ops += uint64(tn*tn) + uint64(2*tn*tn*math.Log2(tn+2))
	mat := a.matrixFromEdges(work.N, work.Edges)
	val, side := a.ksRecurse(mat, st)
	a.putWords(mat.W)
	lifted := make([]bool, g.N)
	if mapping == nil {
		copy(lifted, side)
	} else {
		for v := 0; v < g.N; v++ {
			lifted[v] = side[mapping[v]]
		}
	}
	a.putBools(side)
	return val, lifted, ops
}

// perTrialSuccess lower-bounds the probability that one Eager+Recursive
// trial finds a particular minimum cut: the cut survives the eager
// contraction to ⌈√m⌉+1 vertices with probability at least ~m/n²
// (Lemma 2.1), and one recursive contraction run finds a surviving cut
// with probability at least 1/Θ(log n) (Lemma 2.2).
func perTrialSuccess(n, m int) float64 {
	tv := float64(eagerTarget(m))
	nn := float64(n)
	survive := tv * (tv - 1) / (nn * (nn - 1))
	if survive > 1 {
		survive = 1
	}
	recurse := 1 / (2 * math.Log(tv+1))
	return survive * recurse
}

func clampSuccessProb(p float64) float64 {
	if p <= 0 {
		return 0.9
	}
	if p >= 1 {
		return 1 - 1e-9
	}
	return p
}

// Trials returns the number of independent Eager+Recursive trials needed
// to find a minimum cut with probability successProb; the product of the
// Lemma 2.1/2.2 bounds yields the paper's Θ((n²/m)·polylog n) count.
func Trials(n, m int, successProb float64) int {
	if n < 8 || m == 0 {
		return 1
	}
	successProb = clampSuccessProb(successProb)
	q := perTrialSuccess(n, m)
	t := int(math.Ceil(math.Log(1/(1-successProb)) / q))
	if t < 1 {
		t = 1
	}
	return t
}

// allCutsTrials returns the trial count needed to find *every* minimum
// cut with probability successProb: a union bound over the at most
// n(n-1)/2 minimum cuts (Lemma 4.3).
func allCutsTrials(n, m int, successProb float64) int {
	if n < 2 || m == 0 {
		return 1
	}
	successProb = clampSuccessProb(successProb)
	q := perTrialSuccess(n, m)
	numCuts := float64(n) * float64(n-1) / 2
	t := int(math.Ceil(math.Log(numCuts/(1-successProb)) / q))
	if t < 8 {
		t = 8
	}
	return t
}

// denseRegime reports whether the graph is dense enough (m ≥ n²/log n,
// §3 "Graph Representation") that the Eager Step degenerates and trials
// should run recursive contraction directly on a shared adjacency
// matrix.
func denseRegime(n, m int) bool {
	if n < 4 {
		return true
	}
	return float64(m) >= float64(n)*float64(n)/math.Log2(float64(n))
}

// Sequential computes a global minimum cut with probability at least
// successProb using the full algorithm of §4 run on one processor: t
// trials of Eager Step + Recursive Contraction, keeping the best cut.
// Dense inputs (m ≥ n²/log n) skip the Eager Step and share one
// adjacency matrix across trials — the paper's AM representation.
func Sequential(g *graph.Graph, st *rng.Stream, successProb float64) *CutResult {
	if g.N < 2 {
		return &CutResult{Value: 0, Side: make([]bool, g.N)}
	}
	if !g.IsConnected() {
		// The minimum cut of a disconnected graph is 0: any component.
		return &CutResult{Value: 0, Side: g.ComponentOf(0), Trials: 0}
	}
	trials := Trials(g.N, len(g.Edges), successProb)
	best := &CutResult{Value: math.MaxUint64, Trials: trials}
	a := getKSArena()
	if denseRegime(g.N, len(g.Edges)) && eagerTarget(len(g.Edges)) >= g.N {
		mat := graph.MatrixFromGraph(g)
		for i := 0; i < trials; i++ {
			val, side := a.ksRecurse(mat, st)
			if val < best.Value {
				best.Value = val
				best.Side = append(best.Side[:0], side...)
			}
			a.putBools(side)
		}
	} else {
		for i := 0; i < trials; i++ {
			val, side, _ := sequentialTrial(a, g, st)
			if val < best.Value {
				best.Value = val
				best.Side = side
			}
		}
	}
	putKSArena(a)
	if dv, ds := minDegreeCut(g); dv < best.Value {
		best.Value = dv
		best.Side = ds
	}
	return best
}
