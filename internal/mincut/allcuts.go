package mincut

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Lemma 4.3 states the algorithm finds *all* minimum cuts w.h.p. (there
// are at most n(n-1)/2 of them). AllMinCuts exposes that: it runs the
// trial schedule and collects every distinct minimum cut encountered.

// canonicalSideKey maps a bipartition side to a canonical string key
// (the orientation containing vertex 0 is flipped out).
func canonicalSideKey(side []bool) string {
	flip := side[0]
	buf := make([]byte, (len(side)+7)/8)
	for i, s := range side {
		if s != flip {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return string(buf)
}

// AllMinCuts computes the set of distinct global minimum cuts of g,
// each found with probability at least successProb. The returned results
// share the same Value; each Side is a distinct bipartition (canonical
// orientation: vertex 0 outside the side).
func AllMinCuts(g *graph.Graph, st *rng.Stream, successProb float64) []*CutResult {
	if g.N < 2 {
		return nil
	}
	if !g.IsConnected() {
		// Every union of components is a zero cut; report one per
		// component to keep the output size linear.
		labels, count := g.ConnectedComponents()
		var out []*CutResult
		for comp := 0; comp < count && comp < g.N; comp++ {
			side := make([]bool, g.N)
			nonEmpty := false
			for v, l := range labels {
				if int(l) == comp {
					side[v] = true
					nonEmpty = true
				}
			}
			if nonEmpty && comp > 0 { // comp 0's complement equals comp>0 unions; keep proper sides
				out = append(out, &CutResult{Value: 0, Side: side})
			}
		}
		if len(out) == 0 {
			side := make([]bool, g.N)
			for v, l := range labels {
				side[v] = l == labels[0]
			}
			out = append(out, &CutResult{Value: 0, Side: side})
		}
		return out
	}

	trials := allCutsTrials(g.N, len(g.Edges), successProb)
	best := uint64(math.MaxUint64)
	found := map[string][]bool{}
	record := func(val uint64, side []bool) {
		if val > best {
			return
		}
		if val < best {
			best = val
			clear(found)
		}
		key := canonicalSideKey(side)
		if _, ok := found[key]; !ok {
			canon := make([]bool, len(side))
			flip := side[0]
			for i, s := range side {
				canon[i] = s != flip
			}
			found[key] = canon
		}
	}
	for i := 0; i < trials; i++ {
		val, sides := sequentialTrialAll(g, st)
		for _, side := range sides {
			record(val, side)
		}
	}
	// Singleton cuts can tie the minimum; enumerate them exactly.
	deg := g.Degrees()
	for v := 0; v < g.N; v++ {
		if deg[v] <= best {
			side := make([]bool, g.N)
			side[v] = true
			record(deg[v], side)
		}
	}
	out := make([]*CutResult, 0, len(found))
	for _, side := range found {
		out = append(out, &CutResult{Value: best, Side: side, Trials: trials})
	}
	return out
}
