package mincut

import (
	"math"

	"repro/internal/graph"
)

// StoerWagnerMaxN is the largest vertex count the query planner may
// route to StoerWagner: the dense adjacency matrix costs n² words
// (32 MiB at n=2048) and the n³ row scans stop being competitive with
// contraction trials well below that. Direct callers are not bound by
// it.
const StoerWagnerMaxN = 2048

// StoerWagner computes the exact global minimum cut deterministically by
// maximum-adjacency search (Stoer & Wagner, JACM 1997) — the paper's "SW"
// baseline. This adjacency-matrix implementation runs n-1 phases of O(n²)
// work (O(n³) total), trading the heap for the dense row scans whose poor
// locality the paper's Figure 9 exhibits.
func StoerWagner(g *graph.Graph) *CutResult {
	n := g.N
	if n < 2 {
		return &CutResult{Value: 0, Side: make([]bool, n)}
	}
	m := graph.MatrixFromGraph(g)
	// members[i] lists the original vertices merged into position i.
	members := make([][]int32, n)
	for i := range members {
		members[i] = []int32{int32(i)}
	}
	alive := make([]int32, n)
	for i := range alive {
		alive[i] = int32(i)
	}
	live := n

	best := uint64(math.MaxUint64)
	var bestMembers []int32

	conn := make([]uint64, n) // connectivity to the growing set A
	inA := make([]bool, n)

	for live > 1 {
		// Maximum adjacency search from alive[0].
		for _, v := range alive[:live] {
			conn[v] = 0
			inA[v] = false
		}
		var prev, last int32 = -1, alive[0]
		inA[last] = true
		row := m.W[int(last)*n : (int(last)+1)*n]
		for _, v := range alive[:live] {
			if !inA[v] {
				conn[v] += row[v]
			}
		}
		for step := 1; step < live; step++ {
			// Select the most connected vertex outside A.
			var sel int32 = -1
			var selW uint64
			for _, v := range alive[:live] {
				if !inA[v] && (sel < 0 || conn[v] > selW) {
					sel = v
					selW = conn[v]
				}
			}
			prev, last = last, sel
			inA[sel] = true
			row = m.W[int(sel)*n : (int(sel)+1)*n]
			for _, v := range alive[:live] {
				if !inA[v] {
					conn[v] += row[v]
				}
			}
		}
		// Cut of the phase: ({last-supervertex}, rest).
		if conn[last] < best {
			best = conn[last]
			bestMembers = append([]int32(nil), members[last]...)
		}
		// Merge last into prev.
		rowPrev := m.W[int(prev)*n : (int(prev)+1)*n]
		rowLast := m.W[int(last)*n : (int(last)+1)*n]
		for _, k := range alive[:live] {
			if k == prev || k == last {
				continue
			}
			nw := rowPrev[k] + rowLast[k]
			rowPrev[k] = nw
			m.W[int(k)*n+int(prev)] = nw
			m.W[int(k)*n+int(last)] = 0
		}
		rowPrev[last] = 0
		rowLast[prev] = 0
		members[prev] = append(members[prev], members[last]...)
		for idx, a := range alive[:live] {
			if a == last {
				alive[idx] = alive[live-1]
				live--
				break
			}
		}
	}

	side := make([]bool, n)
	for _, v := range bestMembers {
		side[v] = true
	}
	return &CutResult{Value: best, Side: side, Trials: 1}
}
