package mincut

import (
	"math"
	"sync"
)

// Checkpoint accumulates the best cut found across *completed* trials so
// that a cancelled run still holds a useful partial answer. The
// trial-based structure of the algorithm (§4: t independent Eager +
// Recursive trials, best cut wins) makes this sound: every completed
// trial is a full, independent sample, so the best over k ≤ t of them is
// a valid cut whose success probability 1-(1-q)^k is exactly computable
// from the per-trial bound q.
//
// All ranks of a machine share one Checkpoint; note() is mutexed but
// copies the side only on improvement, so steady-state cost is one
// uncontended lock per trial. The serving layer reads it after the BSP
// machine has fully unwound.
type Checkpoint struct {
	mu      sync.Mutex
	n, m    int
	planned int
	done    int
	value   uint64
	side    []bool
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{value: math.MaxUint64}
}

// plan records the instance parameters once (idempotent; every rank may
// call it).
func (cp *Checkpoint) plan(n, m, trials int) {
	cp.mu.Lock()
	if cp.planned == 0 {
		cp.n, cp.m, cp.planned = n, m, trials
	}
	cp.mu.Unlock()
}

// note records one completed trial's cut. The side is copied when it
// improves the best, so callers keep ownership.
func (cp *Checkpoint) note(value uint64, side []bool) {
	cp.mu.Lock()
	cp.done++
	if value < cp.value {
		cp.value = value
		cp.side = append(cp.side[:0], side...)
	}
	cp.mu.Unlock()
}

// noteBound folds a deterministic cut bound (the min-degree cut) into
// the best without counting it as a randomized trial.
func (cp *Checkpoint) noteBound(value uint64, side []bool) {
	cp.mu.Lock()
	if value < cp.value && len(side) > 0 {
		cp.value = value
		cp.side = append(cp.side[:0], side...)
	}
	cp.mu.Unlock()
}

// Best returns the best cut over completed trials, the completed and
// planned trial counts, and whether any trial completed at all.
func (cp *Checkpoint) Best() (value uint64, side []bool, done, planned int, ok bool) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.done == 0 || cp.side == nil {
		return 0, nil, cp.done, cp.planned, false
	}
	out := make([]bool, len(cp.side))
	copy(out, cp.side)
	return cp.value, out, cp.done, cp.planned, true
}

// AchievedProb returns the success probability achieved by the
// completed trials.
func (cp *Checkpoint) AchievedProb() float64 {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	return AchievedProb(cp.n, cp.m, cp.done)
}

// AchievedProb returns the probability that the best cut over `trials`
// independent Eager+Recursive trials on an (n, m) instance is a true
// minimum cut: 1-(1-q)^trials for the per-trial success bound q of
// Lemmas 2.1/2.2. It is the quantity a degraded (deadline-cancelled)
// result reports in place of the requested success probability.
func AchievedProb(n, m, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	if n < 8 || m == 0 {
		// Trials() schedules a single trial here; it is exhaustive enough
		// that one completed trial meets any target.
		return 1
	}
	q := perTrialSuccess(n, m)
	return 1 - math.Pow(1-q, float64(trials))
}
