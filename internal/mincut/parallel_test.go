package mincut

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

func parallelCut(t testing.TB, g *graph.Graph, p int, seed uint64, opts Options) *CutResult {
	t.Helper()
	var res *CutResult
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		st := rng.New(seed, uint32(c.Rank()), 0)
		r := Parallel(c, n, local, st, opts)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParallelKnownCuts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"cycle", gen.Cycle(48, 2), 4},
		{"twocliques", gen.TwoCliques(12, 2, 4, 1), 2},
		{"dumbbell", gen.Dumbbell(16, 4, 1), 1},
		{"grid", gen.Grid(6, 8, 1), 2},
		{"star", gen.Star(20, 3), 3},
	}
	for _, c := range cases {
		for _, p := range []int{1, 2, 4} {
			got := parallelCut(t, c.g, p, 7, Options{SuccessProb: 0.95})
			if got.Value != c.want {
				t.Errorf("%s p=%d: MC = %d, want %d", c.name, p, got.Value, c.want)
			}
			if !got.Check(c.g) {
				t.Errorf("%s p=%d: inconsistent partition", c.name, p)
			}
		}
	}
}

func TestParallelMatchesStoerWagner(t *testing.T) {
	for seed := uint64(40); seed < 45; seed++ {
		g := gen.ErdosRenyiM(48, 320, seed, gen.Config{MaxWeight: 4})
		if !g.IsConnected() {
			continue
		}
		want := StoerWagner(g).Value
		got := parallelCut(t, g, 4, seed, Options{SuccessProb: 0.95})
		if got.Value != want {
			t.Errorf("seed %d: parallel MC = %d, SW = %d", seed, got.Value, want)
		}
	}
}

func TestParallelDisconnected(t *testing.T) {
	g := graph.New(12)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	g.AddEdge(3, 4, 5)
	got := parallelCut(t, g, 3, 1, Options{})
	if got.Value != 0 {
		t.Errorf("disconnected: %d, want 0", got.Value)
	}
	if !got.Check(g) {
		t.Error("inconsistent zero-cut partition")
	}
}

func TestParallelGroupMode(t *testing.T) {
	// Force p > trials so processor groups run distributed trials:
	// MaxTrials=2 with p=6 gives two 3-processor groups.
	g := gen.TwoCliques(10, 2, 6, 1)
	got := parallelCut(t, g, 6, 3, Options{SuccessProb: 0.9, MaxTrials: 2})
	if !got.Check(g) {
		t.Fatal("inconsistent partition from group mode")
	}
	// Two eager+recursive trials on this graph find the bridge cut
	// essentially always; accept the min-degree fallback bound too.
	if got.Value != 2 {
		t.Errorf("group-mode MC = %d, want 2", got.Value)
	}
	if got.Trials != 2 {
		t.Errorf("trials = %d, want 2", got.Trials)
	}
}

func TestParallelGroupModeSingleGroup(t *testing.T) {
	// p > trials with trials=1: all processors form one group and run a
	// single fully distributed trial.
	g := gen.Cycle(40, 3)
	got := parallelCut(t, g, 4, 11, Options{SuccessProb: 0.9, MaxTrials: 1})
	if !got.Check(g) {
		t.Fatal("inconsistent partition")
	}
	if got.Value != 6 {
		t.Errorf("single distributed trial on cycle: %d, want 6", got.Value)
	}
}

func TestParallelDeterministicSeed(t *testing.T) {
	g := gen.ErdosRenyiM(40, 200, 50, gen.Config{MaxWeight: 3})
	a := parallelCut(t, g, 4, 13, Options{})
	b := parallelCut(t, g, 4, 13, Options{})
	if a.Value != b.Value {
		t.Errorf("same seed, different values: %d vs %d", a.Value, b.Value)
	}
	for i := range a.Side {
		if a.Side[i] != b.Side[i] {
			t.Fatalf("sides differ at %d", i)
		}
	}
}

func TestParallelAgreesAcrossP(t *testing.T) {
	g := gen.WattsStrogatz(64, 6, 0.3, 5, gen.Config{})
	want := StoerWagner(g).Value
	for _, p := range []int{1, 2, 3, 6} {
		got := parallelCut(t, g, p, 21, Options{SuccessProb: 0.95})
		if got.Value != want {
			t.Errorf("p=%d: %d, want %d", p, got.Value, want)
		}
	}
}

func TestSparseBulkContractMatchesSequential(t *testing.T) {
	g := gen.ErdosRenyiM(30, 200, 9, gen.Config{MaxWeight: 5})
	mapping := make([]int32, 30)
	for i := range mapping {
		mapping[i] = int32(i / 3) // 30 -> 10
	}
	want := g.Relabel(mapping, 10)
	for _, p := range []int{1, 2, 4, 5} {
		_, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			_, local := dist.ScatterGraph(c, 0, in)
			out := sparseBulkContract(c, local, mapping)
			all := dist.GatherEdges(c, 0, out)
			if c.Rank() == 0 {
				combined := graph.CombineParallel(all)
				if len(combined) != len(want.Edges) {
					t.Fatalf("p=%d: %d combined edges, want %d", p, len(combined), len(want.Edges))
				}
				for i := range combined {
					if combined[i] != want.Edges[i] {
						t.Fatalf("p=%d: edge %d = %v, want %v", p, i, combined[i], want.Edges[i])
					}
				}
				// The distributed result must already be fully combined:
				// no duplicate keys across the gathered runs.
				seen := map[[2]int32]bool{}
				for _, e := range all {
					k := [2]int32{e.U, e.V}
					if seen[k] {
						t.Fatalf("p=%d: duplicate group %v survived", p, k)
					}
					seen[k] = true
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestResolveBoundariesSpanningGroups(t *testing.T) {
	// Manually construct sorted runs where one group spans processors:
	// rank 0: (0,1,5) (2,3,7) ; rank 1: (2,3,1) (entire run one group)
	// rank 2: (2,3,2) (4,5,9). The (2,3) group must collapse into rank 0
	// with weight 10.
	_, err := bsp.Run(3, func(c *bsp.Comm) {
		var run []graph.Edge
		switch c.Rank() {
		case 0:
			run = []graph.Edge{{U: 0, V: 1, W: 5}, {U: 2, V: 3, W: 7}}
		case 1:
			run = []graph.Edge{{U: 2, V: 3, W: 1}}
		case 2:
			run = []graph.Edge{{U: 2, V: 3, W: 2}, {U: 4, V: 5, W: 9}}
		}
		out := resolveBoundaries(c, run)
		all := dist.GatherEdges(c, 0, out)
		if c.Rank() == 0 {
			want := []graph.Edge{{U: 0, V: 1, W: 5}, {U: 2, V: 3, W: 10}, {U: 4, V: 5, W: 9}}
			if len(all) != len(want) {
				t.Fatalf("got %v, want %v", all, want)
			}
			for i := range want {
				if all[i] != want[i] {
					t.Fatalf("edge %d: got %v, want %v", i, all[i], want[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResolveBoundariesEmptyRuns(t *testing.T) {
	_, err := bsp.Run(4, func(c *bsp.Comm) {
		var run []graph.Edge
		if c.Rank() == 1 {
			run = []graph.Edge{{U: 1, V: 2, W: 3}}
		}
		out := resolveBoundaries(c, run)
		total := dist.CountEdges(c, out)
		if total != 1 {
			t.Errorf("rank %d: total %d, want 1", c.Rank(), total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerDistributedMatchesTarget(t *testing.T) {
	g := gen.ErdosRenyiM(120, 1200, 10, gen.Config{MaxWeight: 3})
	for _, p := range []int{1, 3, 5} {
		_, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			n, local := dist.ScatterGraph(c, 0, in)
			st := rng.New(33, uint32(c.Rank()), 0)
			edges, count, mapping := eagerDistributed(c, n, local, 20, st)
			if count > 20 || count < 2 {
				t.Errorf("p=%d: contracted to %d vertices", p, count)
			}
			// Total weight preserved (no edges lost, only merged/looped).
			all := dist.GatherEdges(c, 0, edges)
			if c.Rank() == 0 {
				cg := &graph.Graph{N: count, Edges: all}
				if err := cg.Validate(); err != nil {
					t.Errorf("p=%d: invalid contracted graph: %v", p, err)
				}
				// Lifted singleton cut consistency.
				side := make([]bool, g.N)
				for v := range side {
					side[v] = mapping[v] == 0
				}
				cside := make([]bool, count)
				cside[0] = true
				if g.CutValue(side) != cg.CutValue(cside) {
					t.Errorf("p=%d: lifted cut mismatch", p)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRecursiveDistributedFindsCut(t *testing.T) {
	g := gen.TwoCliques(8, 2, 5, 1) // min cut 2, n=16
	m := graph.MatrixFromGraph(g)
	for _, p := range []int{1, 2, 3, 4, 5} {
		best := uint64(1 << 62)
		// A few attempts: recursive contraction is randomized with
		// success >= 1/O(log n) per run.
		for attempt := 0; attempt < 6 && best != 2; attempt++ {
			_, err := bsp.Run(p, func(c *bsp.Comm) {
				var in *graph.Matrix
				if c.Rank() == 0 {
					in = m
				}
				blk := dist.ScatterMatrix(c, 0, in)
				st := rng.New(uint64(100+attempt), uint32(c.Rank()), 0)
				val, side := recursiveDistributed(c, blk, st)
				if c.Rank() == 0 {
					if g.CutValue(side) != val {
						t.Errorf("p=%d: side value %d != reported %d", p, g.CutValue(side), val)
					}
					if val < best {
						best = val
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if best != 2 {
			t.Errorf("p=%d: best over attempts = %d, want 2", p, best)
		}
	}
}

func TestPackUnpackSide(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		side := make([]bool, n)
		for i := range side {
			side[i] = i%3 == 0
		}
		got := unpackSide(packSide(side))
		if len(got) != n {
			t.Fatalf("n=%d: length %d", n, len(got))
		}
		for i := range side {
			if got[i] != side[i] {
				t.Fatalf("n=%d: bit %d flipped", n, i)
			}
		}
	}
}
