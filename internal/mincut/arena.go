package mincut

import (
	"sync"

	"repro/internal/graph"
)

// ksArena is the per-trial scratch allocator of recursive contraction.
// One recursion to the base case burns through O(log n) live matrices,
// mappings, and side vectors; without reuse every recursion node clones
// an O(n²) matrix and five smaller slices. The arena keeps free lists of
// released backings — a node's buffers are returned as soon as its branch
// is folded into the running best, so the next node at the same depth
// reuses them and the steady-state allocation rate of a trial drops to
// (almost) zero.
//
// An arena is single-goroutine state: check one out per trial loop with
// getKSArena and return it with putKSArena. The sync.Pool behind those
// makes concurrent trials (e.g. parallel service queries) each get their
// own arena without a global lock.
type ksArena struct {
	words [][]uint64 // matrix backings and degree vectors
	ints  [][]int32  // alive sets, mappings, class→label tables
	bools [][]bool   // cut sides
	uf    *graph.UnionFind
}

var ksArenaPool = sync.Pool{New: func() any { return &ksArena{uf: &graph.UnionFind{}} }}

func getKSArena() *ksArena  { return ksArenaPool.Get().(*ksArena) }
func putKSArena(a *ksArena) { ksArenaPool.Put(a) }

// getWords returns an uninitialized length-n slice, reusing a released
// backing when one is large enough. Free lists stay O(recursion depth)
// long, so the linear scan is cheap.
func (a *ksArena) getWords(n int) []uint64 {
	for i := len(a.words) - 1; i >= 0; i-- {
		if cap(a.words[i]) >= n {
			s := a.words[i][:n]
			a.words[i] = a.words[len(a.words)-1]
			a.words = a.words[:len(a.words)-1]
			return s
		}
	}
	return make([]uint64, n)
}

func (a *ksArena) putWords(s []uint64) { a.words = append(a.words, s) }

func (a *ksArena) getInts(n int) []int32 {
	for i := len(a.ints) - 1; i >= 0; i-- {
		if cap(a.ints[i]) >= n {
			s := a.ints[i][:n]
			a.ints[i] = a.ints[len(a.ints)-1]
			a.ints = a.ints[:len(a.ints)-1]
			return s
		}
	}
	return make([]int32, n)
}

func (a *ksArena) putInts(s []int32) { a.ints = append(a.ints, s) }

func (a *ksArena) getBools(n int) []bool {
	for i := len(a.bools) - 1; i >= 0; i-- {
		if cap(a.bools[i]) >= n {
			s := a.bools[i][:n]
			a.bools[i] = a.bools[len(a.bools)-1]
			a.bools = a.bools[:len(a.bools)-1]
			return s
		}
	}
	return make([]bool, n)
}

func (a *ksArena) putBools(s []bool) { a.bools = append(a.bools, s) }

// matrixFromEdges accumulates an edge array into an arena-backed dense
// matrix (parallel edges combined). Release with putWords(m.W).
func (a *ksArena) matrixFromEdges(n int, edges []graph.Edge) *graph.Matrix {
	w := a.getWords(n * n)
	clear(w)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		w[int(e.U)*n+int(e.V)] += e.W
		w[int(e.V)*n+int(e.U)] += e.W
	}
	return &graph.Matrix{N: n, W: w}
}
