package mincut

import (
	"time"

	"repro/internal/bsp"
	"repro/internal/dist"
)

// Schedule selects how trials are distributed over processors when the
// graph is replicated (p ≤ t).
type Schedule int

const (
	// SchedDynamic (the default) over-decomposes the trials into chunks
	// handed out through cheap O(1)-word claim rounds, so fast ranks
	// absorb the leftover chunks of ranks stuck in expensive trials.
	SchedDynamic Schedule = iota
	// SchedStatic block-partitions the trials over ranks up front — the
	// pre-dynamic behavior, kept for A/B benchmarking and the
	// schedule-independence tests.
	SchedStatic
)

// overdecompose is the chunk count multiplier: trials split into up to
// overdecompose·p chunks. More chunks balance better but add claim
// rounds; ⌈C/p⌉−1 one-word AllGathers is the whole coordination cost.
const overdecompose = 4

// dynamicTrials runs `trials` over the communicator with
// work-stealing-by-consensus: the trials are cut into C = min(t, 4p)
// contiguous chunks; each round, every rank AllGathers the wall-clock
// time it has spent on its trials so far (one word — riding the
// existing collective machinery), then all ranks replicate the same
// greedy least-loaded assignment of the next ≤ p chunks. A rank that
// is slow — an expensive trial, a noisy neighbor, a busy core — shows
// up as a high cumulative time and stops being assigned chunks, so the
// fast ranks absorb its leftovers.
//
// The claimed assignment depends on measured time and so varies run to
// run, but nothing observable does: the round structure (⌈C/p⌉−1
// claim supersteps of one word per rank) is fixed, so superstep counts,
// h-relations, and accounted volume are deterministic; and the cut
// result is bit-identical to static scheduling whichever rank runs
// which trial, because trial streams derive from the trial index and
// the winner tie-break is by trial index.
//
// runTrial(i) executes trial i. The first round degenerates to
// round-robin (no timings yet); later rounds see the true imbalance.
func dynamicTrials(c *bsp.Comm, trials int, runTrial func(i int)) {
	p := c.Size()
	chunks := overdecompose * p
	if chunks > trials {
		chunks = trials
	}
	costs := make([]uint64, p) // replicated cumulative trial time per rank
	virtual := make([]uint64, p)
	var myTime uint64
	for next := 0; next < chunks; {
		batch := p
		if chunks-next < batch {
			batch = chunks - next
		}
		mine := assignChunks(costs, virtual, c.Rank(), next, batch)
		next += batch
		for _, ci := range mine {
			lo, hi := dist.BlockRange(trials, chunks, ci)
			for i := lo; i < hi; i++ {
				if c.Aborting() {
					return
				}
				start := time.Now()
				runTrial(i)
				myTime += uint64(time.Since(start))
			}
		}
		if next >= chunks {
			break
		}
		// Claim round: one superstep, one word per rank. The AllGather's
		// views are valid only until the next Sync, so copy out.
		got := c.AllGather([]uint64{myTime})
		for r := 0; r < p; r++ {
			costs[r] = got[r][0]
		}
	}
}

// assignChunks replicates the greedy least-loaded assignment of chunks
// [first, first+count) given every rank's cumulative measured cost: each
// chunk goes to the currently cheapest rank (lowest rank wins ties),
// whose virtual load grows by the average observed per-chunk cost (or 1
// before any measurement, making round 0 round-robin). Every rank runs
// this identically on the replicated costs, so no assignment message is
// ever needed. Returns the chunk indices assigned to `rank`.
func assignChunks(costs, virtual []uint64, rank, first, count int) []int {
	var total uint64
	for _, v := range costs {
		total += v
	}
	est := uint64(1)
	if first > 0 && total > 0 {
		est = total / uint64(first)
		if est == 0 {
			est = 1
		}
	}
	copy(virtual, costs)
	var mine []int
	for j := 0; j < count; j++ {
		r := 0
		for q := 1; q < len(virtual); q++ {
			if virtual[q] < virtual[r] {
				r = q
			}
		}
		if r == rank {
			mine = append(mine, first+j)
		}
		virtual[r] += est
	}
	return mine
}
