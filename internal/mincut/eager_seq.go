package mincut

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
	xsort "repro/internal/sort"
)

// sigma is the sparsification exponent: iterated sampling draws
// s = n^(1+sigma) edges per round (§2.4 fixes 0 < σ < 1).
const sigma = 0.5

// sampleBudget returns the iterated-sampling batch size for a graph with
// nCur live vertices and m edges, clamped to useful bounds.
func sampleBudget(nCur, m int) int {
	s := int(math.Ceil(math.Pow(float64(nCur), 1+sigma)))
	if s < 64 {
		s = 64
	}
	if s > 2*m {
		s = 2 * m
	}
	if s < 1 {
		s = 1
	}
	return s
}

// prefixContract processes sampled edges in order, contracting as many as
// possible while at least t components remain (Prefix Selection + Bulk
// Edge Contraction, §2.4). It mutates uf and returns the new component
// count.
func prefixContract(uf *graph.UnionFind, sample []graph.Edge, t int) int {
	for _, e := range sample {
		if uf.Count() <= t {
			break
		}
		uf.Union(e.U, e.V)
	}
	return uf.Count()
}

// eagerSequential contracts g to at most t vertices using sequential
// iterated sampling: repeatedly sparsify, select the longest usable
// prefix, and bulk-contract. It returns the contracted simple graph, the
// vertex mapping g.N → contracted ids, and a deterministic work count
// (edges scanned plus samples drawn plus labels touched, summed over
// rounds — the measured per-trial cost that drives dynamic trial
// scheduling). If the graph has fewer than t connected components
// reachable by contraction (disconnected input), it stops when no edges
// remain.
func eagerSequential(g *graph.Graph, t int, st *rng.Stream) (*graph.Graph, []int32, uint64) {
	var work uint64
	n := g.N
	mapping := make([]int32, n)
	for i := range mapping {
		mapping[i] = int32(i)
	}
	cur := g
	if t < 2 {
		t = 2
	}
	// Round scratch is hoisted out of the loop: the graph only shrinks, so
	// first-round capacity serves every later round, and the union-find is
	// recycled with Reset.
	var uf *graph.UnionFind
	var labels, lscratch []int32
	var sample []graph.Edge
	for cur.N > t && len(cur.Edges) > 0 {
		s := sampleBudget(cur.N, len(cur.Edges))
		work += uint64(len(cur.Edges)) + uint64(s) + uint64(cur.N)
		weights := xsort.BorrowWords(len(cur.Edges))
		for i, e := range cur.Edges {
			weights[i] = e.W
		}
		ps := rng.NewPrefixSampler(weights)
		xsort.ReleaseWords(weights)
		if cap(sample) < s {
			sample = make([]graph.Edge, s)
		}
		sample = sample[:s]
		for i := range sample {
			sample[i] = cur.Edges[ps.Sample(st)]
		}
		if uf == nil {
			uf = graph.NewUnionFind(cur.N)
			labels = make([]int32, cur.N)
			lscratch = make([]int32, cur.N)
		} else {
			uf.Reset(cur.N)
		}
		prefixContract(uf, sample, t)
		lab := labels[:cur.N]
		uf.LabelsInto(lab, lscratch[:cur.N])
		next := cur.Relabel(lab, uf.Count())
		for v := 0; v < n; v++ {
			mapping[v] = lab[mapping[v]]
		}
		cur = next
	}
	return cur, mapping, work
}
