package mincut

import (
	"math"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// trialLane is the counter sub-stream tag of per-trial RNG streams:
// trial i draws from st.At(i, trialLane), a stream keyed by (seed, trial
// index) alone. Distinct from the rank-keyed base streams (sub 0) and
// Derive's 0x5851f42d-xored space, so trial randomness never collides
// with — and never depends on — any rank's stream.
const trialLane = 0x7472696c // "tril"

// Options tunes the parallel minimum cut computation.
type Options struct {
	// SuccessProb is the target probability that the returned cut is a
	// true minimum cut; default 0.9 (the artifact's setting).
	SuccessProb float64
	// MaxTrials caps the trial count (0 = theory-derived count). Useful
	// for benchmarking fixed workloads.
	MaxTrials int
	// Checkpoint, when non-nil, receives every completed trial's cut so
	// a cancelled run can degrade to the best-so-far answer with a
	// computable achieved success probability. nil (the default) skips
	// all checkpoint work; BSP accounting is identical either way —
	// checkpointing is purely local.
	Checkpoint *Checkpoint
	// Schedule selects the trial scheduling policy in the replicated
	// regime (p ≤ t); default SchedDynamic. Results are bit-identical
	// across schedules for a fixed seed: trial streams derive from the
	// trial index and ties break on the trial index.
	Schedule Schedule
	// OnTrial, when non-nil, is invoked after each locally executed
	// trial with the trial index (replicated regime only). It runs on
	// the executing rank's clock, so its cost is attributed to that
	// rank by the dynamic scheduler — which makes it both a progress
	// hook for serving layers and the injection point load-balance
	// benchmarks use to simulate straggling ranks.
	OnTrial func(trial int)
	// Plan, when non-nil and matching the input, supplies the snapshot's
	// precomputed invariants (connectivity, edge count, replicated edge
	// view, degree array), letting the run skip the per-query CC check,
	// CountEdges, AllGatherEdges, and degree AllReduce. Each skip is
	// recorded on the BSP ledger via SkipComm with the plan's measured
	// cold cost. A mismatched plan (wrong N) is ignored.
	Plan *graph.Plan
}

func (o *Options) defaults() {
	if o.SuccessProb <= 0 || o.SuccessProb >= 1 {
		o.SuccessProb = 0.9
	}
}

// Parallel computes a global minimum cut of the distributed edge array
// with probability at least SuccessProb — the full algorithm of §4. The
// trials are scheduled over the processors: with p ≤ t the graph is
// replicated and the trials are handed out in dynamically claimed chunks
// (static block partition under SchedStatic); with p > t the processors
// split into t groups, each running one distributed trial (Eager Step
// within the group, then Recursive Contraction with processor-group
// halving). Every processor returns the same result, independent of the
// schedule and of p in the replicated regime.
func Parallel(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, opts Options) *CutResult {
	opts.defaults()
	if n < 2 {
		return &CutResult{Value: 0, Side: make([]bool, n)}
	}
	pl := opts.Plan
	if !pl.Matches(n) {
		pl = nil
	}

	// A disconnected input has minimum cut 0; detect it with the
	// communication-avoiding CC algorithm (O(1) supersteps) — or, warm,
	// read the plan's connectivity bit and skip the query entirely.
	if pl != nil {
		c.SkipComm(pl.CCCost.Collectives, pl.CCCost.Words)
		if !pl.Connected {
			side := make([]bool, n)
			for v := range side {
				side[v] = pl.Labels[v] == pl.Labels[0]
			}
			return &CutResult{Value: 0, Side: side}
		}
	} else {
		comp := cc.Parallel(c, n, local, st.Derive(0xc0), cc.Options{})
		if comp.Count > 1 {
			side := make([]bool, n)
			for v := range side {
				side[v] = comp.Labels[v] == comp.Labels[0]
			}
			return &CutResult{Value: 0, Side: side}
		}
	}

	var m int
	if pl != nil {
		m = pl.M
		c.SkipComm(pl.CountCost.Collectives, pl.CountCost.Words)
	} else {
		m = int(dist.CountEdges(c, local))
	}
	trials := Trials(n, m, opts.SuccessProb)
	if opts.MaxTrials > 0 && trials > opts.MaxTrials {
		trials = opts.MaxTrials
	}
	cp := opts.Checkpoint
	if cp != nil {
		cp.plan(n, m, trials)
	}

	var bestVal uint64 = math.MaxUint64
	// bestTrial is the schedule-independent tie-break: the lowest trial
	// index attaining bestVal wins the global argmin, so the returned
	// side never depends on which rank ran which trial. The min-degree
	// cut ranks after every trial (sentinel index = trials).
	bestTrial := trials
	var bestSide []bool
	p := c.Size()

	if p <= trials {
		// Replicate the graph (or read the plan's shared replicated view —
		// rank-order reassembly makes them identical); distribute trials.
		var all []graph.Edge
		if pl != nil {
			all = pl.Edges
			c.SkipComm(pl.GatherCost.Collectives, pl.GatherCost.Words)
		} else {
			all = dist.AllGatherEdges(c, local)
		}
		g := &graph.Graph{N: n, Edges: all}
		a := getKSArena()
		runTrial := func(i int) {
			val, side, work := sequentialTrial(a, g, st.At(uint32(i), trialLane))
			c.Ops(work)
			if cp != nil {
				cp.note(val, side)
			}
			if val < bestVal || (val == bestVal && i < bestTrial) {
				bestVal, bestTrial, bestSide = val, i, side
			}
			if opts.OnTrial != nil {
				opts.OnTrial(i)
			}
		}
		if p == 1 || trials < 2 || opts.Schedule == SchedStatic {
			lo, hi := dist.BlockRange(trials, p, c.Rank())
			for i := lo; i < hi; i++ {
				// The trial loop is the one compute phase with no intervening
				// Sync, so it polls the abort flag itself: a cancelled machine
				// stops trialing immediately and unwinds at the collective
				// below instead of burning through the remaining trials.
				if c.Aborting() {
					break
				}
				runTrial(i)
			}
		} else {
			dynamicTrials(c, trials, runTrial)
		}
		putKSArena(a)
	} else {
		// One distributed trial per group of ~p/trials processors.
		var all []graph.Edge
		if pl != nil {
			all = pl.Edges
			c.SkipComm(pl.GatherCost.Collectives, pl.GatherCost.Words)
		} else {
			all = dist.AllGatherEdges(c, local)
		}
		color := c.Rank() * trials / p
		sub := c.Split(color, c.Rank())
		lo, hi := dist.BlockRange(len(all), sub.Size(), sub.Rank())
		groupLocal := all[lo:hi]

		edges, count, mapping := eagerDistributed(sub, n, groupLocal, eagerTarget(m), st)
		if count >= 2 {
			blk := matrixFromDistributedEdges(sub, count, edges)
			val, side := recursiveDistributed(sub, blk, st)
			bestVal = val
			bestTrial = color
			bestSide = make([]bool, n)
			for v := 0; v < n; v++ {
				bestSide[v] = side[mapping[v]]
			}
			if cp != nil && sub.Rank() == 0 {
				cp.note(bestVal, bestSide)
			}
		}
		isLeader := sub.Rank() == 0
		sub.Close()
		if !isLeader {
			bestVal = math.MaxUint64
			bestTrial = trials
			bestSide = nil
		}
	}

	// Fold in the min-degree (singleton) cut — from the plan's degree
	// array when warm, otherwise computed distributedly.
	var minV int
	var minD uint64
	if pl != nil {
		minV, minD = pl.MinDegVertex, pl.MinDegree
		c.SkipComm(pl.DegreeCost.Collectives, pl.DegreeCost.Words)
	} else {
		deg := make([]uint64, n)
		for _, e := range local {
			deg[e.U] += e.W
			deg[e.V] += e.W
		}
		deg = c.AllReduce(deg, bsp.OpSum)
		minV, minD = 0, deg[0]
		for v := 1; v < n; v++ {
			if deg[v] < minD {
				minV, minD = v, deg[v]
			}
		}
	}
	if minD < bestVal {
		bestVal = minD
		bestTrial = trials
		bestSide = make([]bool, n)
		bestSide[minV] = true
	}
	if cp != nil && c.Rank() == 0 {
		// The min-degree cut is a deterministic bound, not a trial; fold
		// it into the checkpoint so a cancellation during the final
		// argmin/broadcast still degrades to the freshest best.
		side := make([]bool, n)
		side[minV] = true
		cp.noteBound(minD, side)
	}

	// Global argmin across processors — (value, trial index) with
	// lexicographic order, so the winner is the same cut whichever rank
	// happened to run the winning trial — then broadcast the side.
	vals := c.AllGather([]uint64{bestVal, uint64(bestTrial)})
	winner, winVal, winTrial := 0, vals[0][0], vals[0][1]
	for r := 1; r < p; r++ {
		if vals[r][0] < winVal || (vals[r][0] == winVal && vals[r][1] < winTrial) {
			winner, winVal, winTrial = r, vals[r][0], vals[r][1]
		}
	}
	var packed []uint64
	if c.Rank() == winner {
		packed = packSide(bestSide)
	}
	packed = c.Broadcast(winner, packed)
	return &CutResult{
		Value:  winVal,
		Side:   unpackSide(packed),
		Trials: trials,
	}
}
