package mincut

import (
	"math"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Options tunes the parallel minimum cut computation.
type Options struct {
	// SuccessProb is the target probability that the returned cut is a
	// true minimum cut; default 0.9 (the artifact's setting).
	SuccessProb float64
	// MaxTrials caps the trial count (0 = theory-derived count). Useful
	// for benchmarking fixed workloads.
	MaxTrials int
	// Checkpoint, when non-nil, receives every completed trial's cut so
	// a cancelled run can degrade to the best-so-far answer with a
	// computable achieved success probability. nil (the default) skips
	// all checkpoint work; BSP accounting is identical either way —
	// checkpointing is purely local.
	Checkpoint *Checkpoint
}

func (o *Options) defaults() {
	if o.SuccessProb <= 0 || o.SuccessProb >= 1 {
		o.SuccessProb = 0.9
	}
}

// Parallel computes a global minimum cut of the distributed edge array
// with probability at least SuccessProb — the full algorithm of §4. The
// trials are scheduled over the processors: with p ≤ t the graph is
// replicated and each processor runs ⌈t/p⌉ sequential trials; with p > t
// the processors split into t groups, each running one distributed trial
// (Eager Step within the group, then Recursive Contraction with
// processor-group halving). Every processor returns the same result.
func Parallel(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, opts Options) *CutResult {
	opts.defaults()
	if n < 2 {
		return &CutResult{Value: 0, Side: make([]bool, n)}
	}

	// A disconnected input has minimum cut 0; detect it with the
	// communication-avoiding CC algorithm (O(1) supersteps).
	comp := cc.Parallel(c, n, local, st.Derive(0xc0), cc.Options{})
	if comp.Count > 1 {
		side := make([]bool, n)
		for v := range side {
			side[v] = comp.Labels[v] == comp.Labels[0]
		}
		return &CutResult{Value: 0, Side: side}
	}

	m := int(dist.CountEdges(c, local))
	trials := Trials(n, m, opts.SuccessProb)
	if opts.MaxTrials > 0 && trials > opts.MaxTrials {
		trials = opts.MaxTrials
	}
	cp := opts.Checkpoint
	if cp != nil {
		cp.plan(n, m, trials)
	}

	var bestVal uint64 = math.MaxUint64
	var bestSide []bool
	p := c.Size()

	if p <= trials {
		// Replicate the graph; split the trials.
		all := dist.AllGatherEdges(c, local)
		g := &graph.Graph{N: n, Edges: all}
		lo, hi := dist.BlockRange(trials, p, c.Rank())
		// Per-trial operation estimate for the BSP cost ledger: the Eager
		// Step scans the edge array a constant number of times and the
		// Recursive Step does O(t̄² log t̄) work on the contracted graph.
		tbar := float64(eagerTarget(m))
		trialOps := uint64(3*m) + uint64(2*tbar*tbar*math.Log2(tbar+2))
		a := getKSArena()
		for i := lo; i < hi; i++ {
			// The trial loop is the one compute phase with no intervening
			// Sync, so it polls the abort flag itself: a cancelled machine
			// stops trialing immediately and unwinds at the collective
			// below instead of burning through the remaining trials.
			if c.Aborting() {
				break
			}
			val, side := sequentialTrial(a, g, st)
			c.Ops(trialOps)
			if cp != nil {
				cp.note(val, side)
			}
			if val < bestVal {
				bestVal = val
				bestSide = side
			}
		}
		putKSArena(a)
	} else {
		// One distributed trial per group of ~p/trials processors.
		all := dist.AllGatherEdges(c, local)
		color := c.Rank() * trials / p
		sub := c.Split(color, c.Rank())
		lo, hi := dist.BlockRange(len(all), sub.Size(), sub.Rank())
		groupLocal := all[lo:hi]

		edges, count, mapping := eagerDistributed(sub, n, groupLocal, eagerTarget(m), st)
		if count >= 2 {
			blk := matrixFromDistributedEdges(sub, count, edges)
			val, side := recursiveDistributed(sub, blk, st)
			bestVal = val
			bestSide = make([]bool, n)
			for v := 0; v < n; v++ {
				bestSide[v] = side[mapping[v]]
			}
			if cp != nil && sub.Rank() == 0 {
				cp.note(bestVal, bestSide)
			}
		}
		isLeader := sub.Rank() == 0
		sub.Close()
		if !isLeader {
			bestVal = math.MaxUint64
			bestSide = nil
		}
	}

	// Fold in the min-degree (singleton) cut, computed distributedly.
	deg := make([]uint64, n)
	for _, e := range local {
		deg[e.U] += e.W
		deg[e.V] += e.W
	}
	deg = c.AllReduce(deg, bsp.OpSum)
	minV, minD := 0, deg[0]
	for v := 1; v < n; v++ {
		if deg[v] < minD {
			minV, minD = v, deg[v]
		}
	}
	if minD < bestVal {
		bestVal = minD
		bestSide = make([]bool, n)
		bestSide[minV] = true
	}
	if cp != nil && c.Rank() == 0 {
		// The min-degree cut is a deterministic bound, not a trial; fold
		// it into the checkpoint so a cancellation during the final
		// argmin/broadcast still degrades to the freshest best.
		side := make([]bool, n)
		side[minV] = true
		cp.noteBound(minD, side)
	}

	// Global argmin across processors, then broadcast the winning side.
	vals := c.AllGather([]uint64{bestVal})
	winner, winVal := 0, vals[0][0]
	for r := 1; r < p; r++ {
		if vals[r][0] < winVal {
			winner, winVal = r, vals[r][0]
		}
	}
	var packed []uint64
	if c.Rank() == winner {
		packed = packSide(bestSide)
	}
	packed = c.Broadcast(winner, packed)
	return &CutResult{
		Value:  winVal,
		Side:   unpackSide(packed),
		Trials: trials,
	}
}
