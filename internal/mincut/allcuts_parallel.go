package mincut

import (
	"math"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
)

// ParallelAllMinCuts distributes the all-minimum-cuts computation
// (Lemma 4.3) over the BSP machine: the graph is replicated, every
// processor runs its share of tie-preserving trials, and the per-
// processor cut sets are gathered and merged at the root. Every
// processor returns the same result set (canonical orientation, shared
// Value). Communication is one graph replication plus one gather of at
// most n(n-1)/2 bit-packed sides.
func ParallelAllMinCuts(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, successProb float64) []*CutResult {
	if n < 2 {
		return nil
	}
	// Disconnected inputs: delegate to the sequential handler at the root
	// (zero cuts are enumerated from the component structure, no trials).
	comp := cc.Parallel(c, n, local, st.Derive(0xac), cc.Options{})
	all := dist.AllGatherEdges(c, local)
	g := &graph.Graph{N: n, Edges: all}
	if comp.Count > 1 {
		return AllMinCuts(g, st, successProb)
	}

	trials := allCutsTrials(n, len(all), successProb)
	lo, hi := dist.BlockRange(trials, c.Size(), c.Rank())

	best := uint64(math.MaxUint64)
	found := map[string][]bool{}
	record := func(val uint64, side []bool) {
		if val > best {
			return
		}
		if val < best {
			best = val
			clear(found)
		}
		key := canonicalSideKey(side)
		if _, ok := found[key]; !ok {
			canon := make([]bool, len(side))
			flip := side[0]
			for i, s := range side {
				canon[i] = s != flip
			}
			found[key] = canon
		}
	}
	for i := lo; i < hi; i++ {
		val, sides := sequentialTrialAll(g, st)
		for _, side := range sides {
			record(val, side)
		}
	}
	// Singleton cuts (exact, cheap) — evaluated identically everywhere.
	deg := g.Degrees()
	for v := 0; v < n; v++ {
		if deg[v] <= best {
			side := make([]bool, n)
			side[v] = true
			record(deg[v], side)
		}
	}

	// Gather every processor's (value, sides) at the root and merge.
	payload := []uint64{best}
	for _, side := range found {
		payload = append(payload, packSide(side)...)
	}
	parts := c.Gather(0, payload)
	var out []uint64
	if c.Rank() == 0 {
		merged := map[string][]bool{}
		gBest := uint64(math.MaxUint64)
		sideWords := 1 + (n+63)/64
		for _, part := range parts {
			val := part[0]
			if val > gBest {
				continue
			}
			if val < gBest {
				gBest = val
				clear(merged)
			}
			for off := 1; off+sideWords <= len(part); off += sideWords {
				side := unpackSide(part[off : off+sideWords])
				merged[canonicalSideKey(side)] = side
			}
		}
		out = []uint64{gBest, uint64(len(merged))}
		for _, side := range merged {
			out = append(out, packSide(side)...)
		}
	}
	out = c.Broadcast(0, out)
	gBest := out[0]
	count := int(out[1])
	sideWords := 1 + (n+63)/64
	results := make([]*CutResult, 0, count)
	for k := 0; k < count; k++ {
		off := 2 + k*sideWords
		results = append(results, &CutResult{
			Value:  gBest,
			Side:   unpackSide(out[off : off+sideWords]),
			Trials: trials,
		})
	}
	return results
}
