package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func checkProportional(t *testing.T, name string, weights []uint64, counts []int, draws int) {
	t.Helper()
	var total float64
	for _, w := range weights {
		total += float64(w)
	}
	for i, w := range weights {
		expect := float64(w) / total * float64(draws)
		if w == 0 {
			if counts[i] != 0 {
				t.Errorf("%s: zero-weight index %d drawn %d times", name, i, counts[i])
			}
			continue
		}
		tol := 6 * math.Sqrt(expect+1)
		if math.Abs(float64(counts[i])-expect) > tol {
			t.Errorf("%s: index %d drawn %d times, expected ~%.0f (tol %.0f)", name, i, counts[i], expect, tol)
		}
	}
}

func TestPrefixSamplerProportional(t *testing.T) {
	weights := []uint64{1, 0, 2, 7, 0, 10, 100}
	ps := NewPrefixSampler(weights)
	if ps.Total() != 120 {
		t.Fatalf("Total = %d, want 120", ps.Total())
	}
	s := New(21, 0, 0)
	const draws = 120000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[ps.Sample(s)]++
	}
	checkProportional(t, "prefix", weights, counts, draws)
}

func TestPrefixSamplerSingle(t *testing.T) {
	ps := NewPrefixSampler([]uint64{5})
	s := New(1, 0, 0)
	for i := 0; i < 10; i++ {
		if ps.Sample(s) != 0 {
			t.Fatal("single-element sampler returned nonzero index")
		}
	}
}

func TestPrefixSamplerZeroTotalPanics(t *testing.T) {
	ps := NewPrefixSampler([]uint64{0, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on zero-total sampler did not panic")
		}
	}()
	ps.Sample(New(1, 0, 0))
}

func TestAliasSamplerProportional(t *testing.T) {
	weights := []uint64{3, 1, 0, 6, 20, 2}
	as := NewAliasSampler(weights)
	s := New(33, 0, 0)
	const draws = 160000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[as.Sample(s)]++
	}
	checkProportional(t, "alias", weights, counts, draws)
}

func TestAliasSamplerUniformCase(t *testing.T) {
	weights := []uint64{1, 1, 1, 1}
	as := NewAliasSampler(weights)
	s := New(4, 0, 0)
	counts := make([]int, 4)
	const draws = 40000
	for i := 0; i < draws; i++ {
		counts[as.Sample(s)]++
	}
	checkProportional(t, "alias-uniform", weights, counts, draws)
}

func TestAliasSamplerZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAliasSampler with zero weights did not panic")
		}
	}()
	NewAliasSampler([]uint64{0, 0, 0})
}

func TestMultinomialCountsSum(t *testing.T) {
	err := quick.Check(func(seed uint64, rawDraws uint16) bool {
		draws := int(rawDraws % 2000)
		as := NewAliasSampler([]uint64{1, 2, 3, 4})
		counts := as.Multinomial(New(seed, 0, 0), draws)
		sum := 0
		for _, c := range counts {
			sum += c
		}
		return sum == draws
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}

func TestMultinomialProportional(t *testing.T) {
	weights := []uint64{10, 30, 60}
	as := NewAliasSampler(weights)
	counts := as.Multinomial(New(5, 0, 0), 100000)
	checkProportional(t, "multinomial", weights, counts, 100000)
}

// Property: prefix and alias samplers agree in distribution.
func TestSamplersAgree(t *testing.T) {
	weights := []uint64{5, 15, 30, 50}
	ps := NewPrefixSampler(weights)
	as := NewAliasSampler(weights)
	s1 := New(77, 0, 0)
	s2 := New(78, 0, 0)
	const draws = 200000
	c1 := make([]int, len(weights))
	c2 := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		c1[ps.Sample(s1)]++
		c2[as.Sample(s2)]++
	}
	for i := range weights {
		diff := math.Abs(float64(c1[i]-c2[i])) / draws
		if diff > 0.01 {
			t.Errorf("samplers disagree at index %d: prefix %d vs alias %d", i, c1[i], c2[i])
		}
	}
}

func BenchmarkPrefixSample(b *testing.B) {
	weights := make([]uint64, 1<<16)
	s := New(1, 0, 0)
	for i := range weights {
		weights[i] = uint64(s.Intn(100) + 1)
	}
	ps := NewPrefixSampler(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps.Sample(s)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]uint64, 1<<16)
	s := New(1, 0, 0)
	for i := range weights {
		weights[i] = uint64(s.Intn(100) + 1)
	}
	as := NewAliasSampler(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = as.Sample(s)
	}
}
