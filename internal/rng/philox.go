// Package rng provides the pseudorandom machinery used throughout the
// library: a counter-based Philox4x32-10 generator (Salmon et al., SC'11),
// which yields independent, uncorrelated streams for every (seed, rank,
// stream) triple, and the weighted samplers required by graph
// sparsification (prefix-sum binary search and Vose's alias method).
//
// The paper's artifact uses the same generator family so that all
// non-determinism is controlled by a single initial seed; this package
// preserves that property: two runs with the same seed perform identical
// random choices on every virtual processor.
package rng

import "math"

// Philox4x32-10 round constants (Salmon et al., "Parallel Random Numbers:
// As Easy as 1, 2, 3").
const (
	philoxM0 = 0xD2511F53
	philoxM1 = 0xCD9E8D57
	philoxW0 = 0x9E3779B9 // golden ratio
	philoxW1 = 0xBB67AE85 // sqrt(3)-1
)

// philoxBlock applies 10 Philox rounds to the counter ctr under key,
// producing 128 bits of output.
func philoxBlock(ctr [4]uint32, key [2]uint32) [4]uint32 {
	k0, k1 := key[0], key[1]
	c0, c1, c2, c3 := ctr[0], ctr[1], ctr[2], ctr[3]
	for i := 0; i < 10; i++ {
		p0 := uint64(philoxM0) * uint64(c0)
		p1 := uint64(philoxM1) * uint64(c2)
		hi0, lo0 := uint32(p0>>32), uint32(p0)
		hi1, lo1 := uint32(p1>>32), uint32(p1)
		c0, c1, c2, c3 = hi1^c1^k0, lo1, hi0^c3^k1, lo0
		k0 += philoxW0
		k1 += philoxW1
	}
	return [4]uint32{c0, c1, c2, c3}
}

// Stream is a deterministic random stream. Distinct (seed, rank, sub)
// triples give statistically independent streams; the same triple always
// replays the same sequence. The zero value is a valid stream seeded with
// zeros. Stream is not safe for concurrent use; each goroutine (virtual
// processor) owns its own.
type Stream struct {
	key  [2]uint32
	base [2]uint32 // rank and sub-stream occupy the upper counter words
	ctr  uint64    // lower 64 bits of the counter, incremented per block
	buf  [4]uint32
	n    int // unread words left in buf
}

// New returns a stream for the given global seed, processor rank, and
// sub-stream index. Different triples yield uncorrelated sequences.
func New(seed uint64, rank, sub uint32) *Stream {
	return &Stream{
		key:  [2]uint32{uint32(seed), uint32(seed >> 32)},
		base: [2]uint32{rank, sub},
	}
}

// Derive returns a new independent stream obtained from s's identity with a
// different sub-stream index. It does not advance s.
func (s *Stream) Derive(sub uint32) *Stream {
	return &Stream{key: s.key, base: [2]uint32{s.base[0], s.base[1] ^ 0x5851f42d ^ sub}}
}

// At returns the stream for counter lane (lane, sub) under s's key — the
// same global seed, but with both counter words replaced, so the result
// is independent of the rank s was created for. Work items that may be
// scheduled onto any processor (e.g. minimum-cut trials under dynamic
// scheduling) derive their streams this way from the item index, making
// the randomness a function of (seed, item) alone. It does not advance s.
func (s *Stream) At(lane, sub uint32) *Stream {
	return &Stream{key: s.key, base: [2]uint32{lane, sub}}
}

func (s *Stream) refill() {
	s.buf = philoxBlock([4]uint32{uint32(s.ctr), uint32(s.ctr >> 32), s.base[0], s.base[1]}, s.key)
	s.ctr++
	s.n = 4
}

// Uint32 returns a uniformly distributed 32-bit value.
func (s *Stream) Uint32() uint32 {
	if s.n == 0 {
		s.refill()
	}
	s.n--
	return s.buf[s.n]
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Stream) Uint64() uint64 {
	hi := uint64(s.Uint32())
	lo := uint64(s.Uint32())
	return hi<<32 | lo
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 bits of
// precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Bias is removed by rejection.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two
		return s.Uint64() & (n - 1)
	}
	// Rejection sampling over the largest multiple of n below 2^64.
	limit := -n % n // (2^64 - n) mod n == 2^64 mod n
	for {
		v := s.Uint64()
		if v >= limit {
			return v % n
		}
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates).
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli reports true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns the number of failures before the first success of a
// Bernoulli(p) process, i.e. a sample of the geometric distribution with
// support {0, 1, 2, ...}. Used for skip-based subgraph sampling. p must be
// in (0, 1].
func (s *Stream) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with p <= 0")
	}
	u := s.Float64()
	for u == 0 {
		u = s.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log1p(-p))
	if g > float64(math.MaxInt64/2) {
		return math.MaxInt64 / 2
	}
	return int(g)
}
