package rng

import "sort"

// PrefixSampler draws indices with probability proportional to fixed
// nonnegative integer weights. Construction is O(n); each draw is
// O(log n) by binary search over the cumulative weights — the scheme
// Karger–Stein §5 assume for weighted edge selection.
type PrefixSampler struct {
	cum   []uint64 // cum[i] = sum of weights[0..i]
	total uint64
}

// NewPrefixSampler builds a sampler over the given weights. Zero-weight
// entries are never drawn. Total returns 0 if all weights are zero, in
// which case Sample must not be called.
func NewPrefixSampler(weights []uint64) *PrefixSampler {
	cum := make([]uint64, len(weights))
	var total uint64
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	return &PrefixSampler{cum: cum, total: total}
}

// Total returns the sum of all weights.
func (ps *PrefixSampler) Total() uint64 { return ps.total }

// Sample draws one index i with probability weights[i]/Total().
func (ps *PrefixSampler) Sample(s *Stream) int {
	if ps.total == 0 {
		panic("rng: PrefixSampler.Sample with zero total weight")
	}
	x := s.Uint64n(ps.total) // uniform in [0, total)
	// Find the first index with cum[i] > x.
	return sort.Search(len(ps.cum), func(i int) bool { return ps.cum[i] > x })
}

// AliasSampler draws indices with probability proportional to fixed
// nonnegative weights in O(1) per draw (Vose's alias method) after O(n)
// construction. Preferred when many draws are taken from the same
// distribution, e.g. the root's distribution of s sample slots over
// processors in communication-avoiding sparsification.
type AliasSampler struct {
	prob  []float64
	alias []int32
	n     int
}

// NewAliasSampler builds an alias table over the weights. At least one
// weight must be positive.
func NewAliasSampler(weights []uint64) *AliasSampler {
	n := len(weights)
	var total float64
	for _, w := range weights {
		total += float64(w)
	}
	if total == 0 || n == 0 {
		panic("rng: NewAliasSampler with zero total weight")
	}
	as := &AliasSampler{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		n:     n,
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = float64(w) * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		as.prob[l] = scaled[l]
		as.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			large = large[:len(large)-1]
			small = append(small, g)
		}
	}
	for _, g := range large {
		as.prob[g] = 1
	}
	for _, l := range small {
		as.prob[l] = 1 // numerical leftovers
	}
	return as
}

// Sample draws one index with probability proportional to its weight.
func (as *AliasSampler) Sample(s *Stream) int {
	i := s.Intn(as.n)
	if s.Float64() < as.prob[i] {
		return i
	}
	return int(as.alias[i])
}

// Multinomial distributes s draws over the categories of the sampler and
// returns the per-category counts. This implements step 2 of the paper's
// sparsification: the root repeatedly (s times) chooses a processor i with
// probability W_i / ΣW_z.
func (as *AliasSampler) Multinomial(st *Stream, draws int) []int {
	counts := make([]int, as.n)
	for k := 0; k < draws; k++ {
		counts[as.Sample(st)]++
	}
	return counts
}
