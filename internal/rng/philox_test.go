package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhiloxKnownAnswer(t *testing.T) {
	// Reference vectors from the Random123 distribution (kat_vectors.txt),
	// philox4x32-10.
	cases := []struct {
		ctr, want [4]uint32
		key       [2]uint32
	}{
		{
			ctr:  [4]uint32{0, 0, 0, 0},
			key:  [2]uint32{0, 0},
			want: [4]uint32{0x6627e8d5, 0xe169c58d, 0xbc57ac4c, 0x9b00dbd8},
		},
		{
			ctr:  [4]uint32{0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff},
			key:  [2]uint32{0xffffffff, 0xffffffff},
			want: [4]uint32{0x408f276d, 0x41c83b0e, 0xa20bc7c6, 0x6d5451fd},
		},
		{
			ctr:  [4]uint32{0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344},
			key:  [2]uint32{0xa4093822, 0x299f31d0},
			want: [4]uint32{0xd16cfe09, 0x94fdcceb, 0x5001e420, 0x24126ea1},
		},
	}
	for i, c := range cases {
		got := philoxBlock(c.ctr, c.key)
		if got != c.want {
			t.Errorf("case %d: philoxBlock(%x, %x) = %x, want %x", i, c.ctr, c.key, got, c.want)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	a := New(42, 3, 1)
	b := New(42, 3, 1)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical identity diverged at step %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	a := New(42, 0, 0)
	b := New(42, 1, 0)
	c := New(43, 0, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		x := a.Uint64()
		if x == b.Uint64() {
			same++
		}
		if x == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("distinct streams produced %d identical words out of 2000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7, 0, 0)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(7, 0, 0)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestUint64nUniform(t *testing.T) {
	s := New(11, 0, 0)
	const n, buckets = 90000, 9
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expect := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d: count %d deviates too far from %v", b, c, expect)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(1, 0, 0)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 100; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1, 0, 0).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1, 0, 0).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(5, 0, 0)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestShufflepreservesMultiset(t *testing.T) {
	s := New(6, 0, 0)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Errorf("shuffle changed multiset: sum %d -> %d", sum, sum2)
	}
}

func TestDeriveIndependent(t *testing.T) {
	base := New(9, 2, 0)
	d1 := base.Derive(1)
	d2 := base.Derive(2)
	if d1.Uint64() == d2.Uint64() {
		t.Error("derived streams with different sub ids coincide")
	}
	// Deriving must not advance the base.
	b2 := New(9, 2, 0)
	if base.Uint64() != b2.Uint64() {
		t.Error("Derive advanced the parent stream")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(3, 0, 0)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(3, 0, 0)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(8, 0, 0)
	const n = 50000
	p := 0.2
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of geometric on {0,1,...}
	if math.Abs(mean-want) > 0.15 {
		t.Errorf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricPIsOne(t *testing.T) {
	s := New(8, 0, 0)
	for i := 0; i < 10; i++ {
		if g := s.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1, 0, 0)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1, 0, 0)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}
