package shard

// Worker-side self-healing: the catch-up protocol that re-replicates
// shard graphs onto a reincarnated rank, the liveness/readiness probes
// wired to the mesh failure detector, the /v1/local failover execution
// endpoint, and the camc_fleet_* metric families.
//
// Catch-up is pull-based and leader-sourced. Whenever a non-leader
// rank's connection to the leader is (re)established — first join,
// healed partition, or a respawned process — it sends its registry
// inventory to the leader ("state": name, version, fingerprint per
// graph). The leader diffs that against its own registry and answers
// with one "sync" message carrying every graph the peer is missing or
// holds at an older version, serialized as edge lists. The peer
// registers each at the leader's exact version (Registry.PutVersion),
// so cache keys and fingerprints agree across replicas byte for byte,
// then marks itself caught up. A single sync message keeps the protocol
// atomic: readiness never flips true with a transfer half-applied.
//
// This also subsumes "queueing uploads for dead ranks": the leader's
// registry is the durable copy, so a rank that was dead during an
// upload simply finds the graph in the diff when it rejoins.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/service"
)

// graphState is one inventory entry of a "state" message.
type graphState struct {
	Name        string `json:"name"`
	Version     uint64 `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// syncGraph is one re-replicated graph of a "sync" message.
type syncGraph struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Data    string `json:"data"` // edge-list serialization
}

// onPeerUp runs on mesh goroutines when a peer connection is
// (re)established; inc is the peer's admitted incarnation (0 for
// connections this rank dialed).
func (w *Worker) onPeerUp(rank int, inc uint64) {
	if w.rank != 0 && rank == 0 {
		go w.requestCatchup()
	}
}

// onPeerDown runs when the failure detector (or a read error) severs a
// peer connection. Losing the leader link drops readiness: uploads may
// land on the leader while this rank is unreachable, and only the next
// state/sync round-trip proves nothing was missed.
func (w *Worker) onPeerDown(rank int) {
	if w.rank != 0 && rank == 0 {
		w.caughtUp.Store(false)
	}
}

// requestCatchup offers this rank's inventory to the leader. Errors are
// dropped: if the leader link died again the next onPeerUp retries.
func (w *Worker) requestCatchup() {
	<-w.meshUp
	w.sendCtrl(0, ctrlMsg{Type: "state", Rank: w.rank, Graphs: w.inventory()})
}

func (w *Worker) inventory() []graphState {
	stored := w.engine.Registry().List()
	inv := make([]graphState, len(stored))
	for i, sg := range stored {
		inv[i] = graphState{
			Name:        sg.Name,
			Version:     sg.Version,
			Fingerprint: fingerprintOf(sg),
		}
	}
	return inv
}

// fingerprintOf is the content identity used by both anti-entropy
// inventories and the run-announcement handshake.
func fingerprintOf(sg *service.StoredGraph) string {
	return fmt.Sprintf("%016x", sg.Snap.Fingerprint())
}

// serveCatchup is the leader's side: diff the peer's inventory against
// the local registry and ship everything the peer is behind on.
func (w *Worker) serveCatchup(msg ctrlMsg) {
	<-w.meshUp
	have := make(map[string]uint64, len(msg.Graphs))
	for _, gs := range msg.Graphs {
		have[gs.Name] = gs.Version
	}
	var syncs []syncGraph
	for _, sg := range w.engine.Registry().List() {
		if v, ok := have[sg.Name]; ok && v >= sg.Version {
			continue
		}
		var b bytes.Buffer
		if err := graph.WriteEdgeList(&b, sg.Snap.Graph()); err != nil {
			continue
		}
		syncs = append(syncs, syncGraph{Name: sg.Name, Version: sg.Version, Data: b.String()})
	}
	w.catchupSent.Add(uint64(len(syncs)))
	_ = w.sendCtrl(msg.Rank, ctrlMsg{Type: "sync", Sync: syncs})
}

// applyCatchup is the peer's side: register every shipped graph at the
// leader's exact version, then flip readiness. PutVersion rejections
// (a racing direct upload already moved the name past the shipped
// version) are fine — the registry is at least as new as the leader's
// snapshot was.
func (w *Worker) applyCatchup(msg ctrlMsg) {
	<-w.meshUp
	for _, sg := range msg.Sync {
		g, err := graph.ReadEdgeList(strings.NewReader(sg.Data))
		if err != nil {
			continue
		}
		if _, err := w.engine.Registry().PutVersion(sg.Name, sg.Version, g); err == nil {
			w.catchupRecv.Add(1)
		}
	}
	w.caughtUp.Store(true)
}

// Health backs /healthz: alive unless every mesh peer is unreachable —
// a fully isolated rank cannot serve any distributed work, so lying
// "ok" to the prober would keep a useless process in rotation. A
// partially degraded mesh is still healthy (the detector and redial
// loop are working the problem); /readyz is the strict signal.
func (w *Worker) Health() error {
	if w.p == 1 {
		return nil
	}
	if w.mesh.PeersUp() == 0 {
		return fmt.Errorf("unhealthy: all %d mesh peers unreachable", w.p-1)
	}
	return nil
}

// Ready backs /readyz: every peer connected and graph catch-up
// complete. An orchestrator keeps a not-ready process alive (healthz
// still passes) but routes no traffic to it.
func (w *Worker) Ready() error {
	for r := 0; r < w.p; r++ {
		if !w.mesh.PeerUp(r) {
			return fmt.Errorf("not ready: mesh peer rank %d down", r)
		}
	}
	if !w.caughtUp.Load() {
		return errors.New("not ready: graph catch-up in progress")
	}
	return nil
}

// PeerStatus is one mesh peer's liveness as this worker sees it.
type PeerStatus struct {
	Rank        int    `json:"rank"`
	Up          bool   `json:"up"`
	Incarnation uint64 `json:"incarnation"` // last admitted; 0 for dialed links
}

// FleetStats is the worker's self-healing state, embedded under "fleet"
// in /v1/stats.
type FleetStats struct {
	Rank                  int          `json:"rank"`
	P                     int          `json:"p"`
	Leader                bool         `json:"leader"`
	Incarnation           uint64       `json:"incarnation"`
	Peers                 []PeerStatus `json:"peers,omitempty"`
	PeersUp               int          `json:"peers_up"`
	CaughtUp              bool         `json:"caught_up"`
	CatchupGraphsSent     uint64       `json:"catchup_graphs_sent"`
	CatchupGraphsReceived uint64       `json:"catchup_graphs_received"`
	LocalQueries          uint64       `json:"local_queries"`
}

// FleetStats snapshots the worker's mesh and catch-up state.
func (w *Worker) FleetStats() FleetStats {
	fs := FleetStats{
		Rank:                  w.rank,
		P:                     w.p,
		Leader:                w.rank == 0,
		Incarnation:           w.mesh.Incarnation(),
		PeersUp:               w.mesh.PeersUp(),
		CaughtUp:              w.caughtUp.Load(),
		CatchupGraphsSent:     w.catchupSent.Load(),
		CatchupGraphsReceived: w.catchupRecv.Load(),
		LocalQueries:          w.localQueries.Load(),
	}
	for r := 0; r < w.p; r++ {
		if r == w.rank {
			continue
		}
		fs.Peers = append(fs.Peers, PeerStatus{
			Rank:        r,
			Up:          w.mesh.PeerUp(r),
			Incarnation: w.mesh.PeerIncarnation(r),
		})
	}
	return fs
}

// writeFleetMetrics appends the camc_fleet_* families to the /metrics
// exposition.
func (w *Worker) writeFleetMetrics(wr io.Writer) {
	fs := w.FleetStats()
	fmt.Fprintf(wr, "# HELP camc_fleet_peer_up Mesh peer liveness as seen by this rank (1 = connected).\n# TYPE camc_fleet_peer_up gauge\n")
	for _, ps := range fs.Peers {
		up := 0
		if ps.Up {
			up = 1
		}
		fmt.Fprintf(wr, "camc_fleet_peer_up{rank=\"%d\"} %d\n", ps.Rank, up)
	}
	fmt.Fprintf(wr, "# HELP camc_fleet_incarnation This rank's mesh incarnation number.\n# TYPE camc_fleet_incarnation gauge\ncamc_fleet_incarnation %d\n", fs.Incarnation)
	caught := 0
	if fs.CaughtUp {
		caught = 1
	}
	fmt.Fprintf(wr, "# HELP camc_fleet_caught_up Graph catch-up state (1 = in sync with the leader).\n# TYPE camc_fleet_caught_up gauge\ncamc_fleet_caught_up %d\n", caught)
	fmt.Fprintf(wr, "# HELP camc_fleet_catchup_graphs_total Graphs re-replicated by the catch-up protocol.\n# TYPE camc_fleet_catchup_graphs_total counter\n")
	fmt.Fprintf(wr, "camc_fleet_catchup_graphs_total{direction=\"sent\"} %d\n", fs.CatchupGraphsSent)
	fmt.Fprintf(wr, "camc_fleet_catchup_graphs_total{direction=\"received\"} %d\n", fs.CatchupGraphsReceived)
	fmt.Fprintf(wr, "# HELP camc_fleet_local_queries_total Failover/hedged queries answered from this rank's local replica.\n# TYPE camc_fleet_local_queries_total counter\ncamc_fleet_local_queries_total %d\n", fs.LocalQueries)
}

// handleLocal serves POST /v1/local: execute a query on this rank's own
// graph replica, bypassing the distributed machine — the frontend's
// failover and hedged-read target when the shard leader is unreachable
// or slow. Only connected components is served: every rank holds the
// full snapshot, a p=1 CC run is cheap and deterministic for a given
// seed, and duplicating a Karger–Stein trial schedule speculatively
// would be the opposite of load shedding. Results bypass the engine
// (no cache, no coalescing, no admission) and report outcome
// "failover".
func (w *Worker) handleLocal(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeShardError(rw, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req service.QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeShardError(rw, http.StatusBadRequest, fmt.Errorf("bad query body: %w", err))
		return
	}
	if req.Algorithm != service.AlgCC {
		writeShardError(rw, http.StatusBadRequest,
			fmt.Errorf("shard: /v1/local serves %q only, not %q", service.AlgCC, req.Algorithm))
		return
	}
	sg, err := w.engine.Registry().Get(req.Graph)
	if err != nil {
		writeShardError(rw, http.StatusNotFound, err)
		return
	}
	pr, err := service.NormalizeParams(&req)
	if err != nil {
		writeShardError(rw, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	res, err := service.ExecuteLocal(r.Context(), sg, req.Algorithm, pr)
	if err != nil {
		rw.Header().Set("Retry-After", "1")
		writeShardError(rw, http.StatusServiceUnavailable, err)
		return
	}
	w.localQueries.Add(1)
	resp := service.QueryResponse{
		Graph:      res.Graph,
		Version:    res.Version,
		Algorithm:  res.Algorithm,
		Outcome:    "failover",
		LatencyMs:  float64(time.Since(start).Microseconds()) / 1e3,
		Components: &res.Components,
		Iterations: res.Iterations,
		Kernel:     res.Kernel,
	}
	if req.IncludeLabels {
		resp.Labels = res.Labels
	}
	writeShardJSON(rw, http.StatusOK, resp)
}

func writeShardJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeShardError(w http.ResponseWriter, status int, err error) {
	writeShardJSON(w, status, map[string]string{"error": err.Error()})
}
