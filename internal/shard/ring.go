// Package shard is the multi-process serving tier: a frontend that
// places graphs on worker groups by consistent hashing over the graph
// name, and workers — one process per BSP rank — that execute queries
// on a distributed TCP machine (internal/transport) while reusing the
// single-process engine (internal/service) for registry, cache,
// coalescing, and admission control at each group's rank 0.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per shard. 64 points per
// shard keeps the worst-case load skew of FNV-distributed names under
// ~20% for small shard counts while the ring stays tiny.
const defaultVnodes = 64

// Ring is a consistent-hash ring over shard indices. Placement is a
// pure function of (shard count, vnodes, name): every frontend replica
// computes the same owner with no coordination, and growing the fleet
// by one shard moves only ~1/shards of the names.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of `shards` shards with `vnodes` virtual nodes
// each (0 selects the default).
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: ring needs at least 1 shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{
		shards: shards,
		points: make([]ringPoint, 0, shards*vnodes),
	}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashString(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Shard returns the owning shard of a graph name: the first ring point
// clockwise from the name's hash.
func (r *Ring) Shard(name string) int {
	h := hashString(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 finishes the FNV value with a SplitMix64-style avalanche.
// Raw FNV-1a leaves sequential keys ("vnode-1", "vnode-2", ...)
// clustered on the ring, hollowing out whole arcs and skewing
// placement several-fold; the finalizer spreads them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
