package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// Frontend routes the public API across shards: graph uploads replicate
// to every worker of the owning shard (each rank process needs the full
// snapshot to slice its block), queries go to the owning shard's
// leader, and stats merge across the whole fleet.
//
// Self-healing (DESIGN.md §4i): transport-level retries back off
// exponentially with full jitter; a per-leader circuit breaker fails
// fast once a leader looks dead; cc queries fail over to a replica
// rank's /v1/local when the leader is open or erroring; and opted-in
// cc queries ("hedged": true) race a replica copy against a slow
// leader.
type Frontend struct {
	ring *Ring
	// shards[i] lists shard i's worker base URLs in rank order;
	// shards[i][0] is the leader.
	shards   [][]string
	client   *http.Client
	attempts int
	backoff  *jitterBackoff
	// breakers[i] guards shard i's leader.
	breakers   []*breaker
	hedgeDelay time.Duration
	tenants    *tenant.Registry

	retries   atomic.Uint64 // transport-level retry sleeps taken
	failovers atomic.Uint64 // queries answered by a replica's /v1/local
	hedged    atomic.Uint64 // hedge requests launched
	hedgeWins atomic.Uint64 // hedges that beat the leader
}

// FrontendOptions tunes the frontend's resilience machinery; zero
// values select the defaults noted per field.
type FrontendOptions struct {
	// Attempts bounds transport-level tries per worker request
	// (default 3).
	Attempts int
	// BackoffBase / BackoffCap shape the full-jitter retry delays
	// (defaults 25ms / 1s): attempt k sleeps uniform [0, min(cap, base·2^k)].
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold consecutive leader failures trip the breaker
	// (default 3); BreakerCooldown is the open→half-open delay
	// (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeDelay is how long a hedged cc query waits on the leader
	// before racing a replica copy (default 50ms).
	HedgeDelay time.Duration
}

// SetTenants attaches a tenant registry so the merged /v1/stats view
// carries the fleet-wide quota state. Quota enforcement itself happens
// in service.TenantMiddleware wrapping Handler(); the frontend only
// reports.
func (f *Frontend) SetTenants(reg *tenant.Registry) { f.tenants = reg }

// NewFrontend builds a frontend over the given worker fleet with
// default resilience options.
func NewFrontend(shards [][]string) (*Frontend, error) {
	return NewFrontendOpts(shards, FrontendOptions{})
}

// NewFrontendOpts is NewFrontend with explicit resilience tuning.
func NewFrontendOpts(shards [][]string, opts FrontendOptions) (*Frontend, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: frontend needs at least one shard")
	}
	for i, ws := range shards {
		if len(ws) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no workers", i)
		}
	}
	ring, err := NewRing(len(shards), 0)
	if err != nil {
		return nil, err
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 25 * time.Millisecond
	}
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = time.Second
	}
	if opts.HedgeDelay <= 0 {
		opts.HedgeDelay = 50 * time.Millisecond
	}
	f := &Frontend{
		ring:       ring,
		shards:     shards,
		client:     &http.Client{Timeout: 5 * time.Minute},
		attempts:   opts.Attempts,
		backoff:    newJitterBackoff(opts.BackoffBase, opts.BackoffCap, int64(len(shards))),
		breakers:   make([]*breaker, len(shards)),
		hedgeDelay: opts.HedgeDelay,
	}
	for i := range f.breakers {
		f.breakers[i] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	return f, nil
}

// Handler returns the frontend HTTP API — the same shape as a single
// worker's, so clients need not know whether they talk to one process
// or a fleet.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graphs", f.handleUpload)
	mux.HandleFunc("/v1/query", f.handleQuery)
	mux.HandleFunc("/v1/stats", f.handleStats)
	mux.HandleFunc("/metrics", f.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		// The frontend is stateless; it is ready as soon as it serves.
		// Worker readiness is each worker's own /readyz.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// do issues one request with retry-on-connect-failure: only transport
// errors (dial refused, connection reset before a response) retry —
// with capped exponential backoff and full jitter, so a fleet of
// clients stampeding a just-restarted worker decorrelates instead of
// re-synchronizing. Any HTTP response, success or failure, is final.
// body is re-readable by construction (a byte slice), so retries are
// safe.
func (f *Frontend) do(method, url string, body []byte, contentType string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < f.attempts; attempt++ {
		if attempt > 0 {
			f.retries.Add(1)
			time.Sleep(f.backoff.delay(attempt - 1))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := f.client.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("shard: %s %s failed after %d attempts: %w", method, url, f.attempts, lastErr)
}

// relay copies a worker's response through to the client, preserving
// the status and the retry contract (Retry-After).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeFrontendError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// maxUploadBytes mirrors the worker-side bound.
const maxUploadBytes = 64 << 20

// handleUpload places the graph by name and replicates the body to
// every worker of the owning shard: a distributed run slices the frozen
// edge array by rank, so each rank process must hold the full snapshot.
// All-or-nothing isn't required — a partially replicated graph fails
// closed at query time (the leader's start/ack round rejects the run).
func (f *Frontend) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFrontendError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		// Workers auto-generate names independently, which would scatter
		// one logical graph across per-process identities; the frontend
		// requires the name to keep placement well-defined.
		writeFrontendError(w, http.StatusBadRequest, fmt.Errorf("shard: uploads require an explicit ?name="))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		status := http.StatusInternalServerError
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeFrontendError(w, status, err)
		return
	}
	shard := f.ring.Shard(name)
	q := r.URL.Query().Encode()
	var last *http.Response
	for _, worker := range f.shards[shard] {
		resp, err := f.do(http.MethodPost, worker+"/v1/graphs?"+q, body, r.Header.Get("Content-Type"))
		if err != nil {
			if last != nil {
				last.Body.Close()
			}
			writeFrontendError(w, http.StatusServiceUnavailable, err)
			return
		}
		if resp.StatusCode != http.StatusCreated {
			if last != nil {
				last.Body.Close()
			}
			relay(w, resp)
			return
		}
		if last != nil {
			last.Body.Close()
		}
		last = resp
	}
	w.Header().Set("X-Shard", fmt.Sprint(shard))
	relay(w, last)
}

// handleQuery routes a query to the owning shard's leader, guarded by
// that leader's circuit breaker. When the leader is unreachable, open,
// or failing, cc queries fail over to a replica rank's local copy;
// everything else resolves 503 + Retry-After (never cached — the
// engine's contract for transport failures holds end to end). Opted-in
// cc queries additionally hedge: a replica copy races a leader slower
// than the hedge delay.
func (f *Frontend) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFrontendError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeFrontendError(w, http.StatusBadRequest, err)
		return
	}
	var peek struct {
		Graph     string `json:"graph"`
		Algorithm string `json:"algorithm"`
		Hedged    bool   `json:"hedged"`
	}
	if err := json.Unmarshal(body, &peek); err != nil || peek.Graph == "" {
		writeFrontendError(w, http.StatusBadRequest, fmt.Errorf("shard: query body needs a graph name"))
		return
	}
	shard := f.ring.Shard(peek.Graph)
	w.Header().Set("X-Shard", fmt.Sprint(shard))
	br := f.breakers[shard]
	canFailover := peek.Algorithm == service.AlgCC && len(f.shards[shard]) > 1

	if !br.allow(time.Now()) {
		if canFailover {
			if resp := f.failover(shard, body); resp != nil {
				w.Header().Set("X-Failover", "1")
				relay(w, resp)
				return
			}
		}
		writeFrontendError(w, http.StatusServiceUnavailable,
			fmt.Errorf("shard: shard %d leader circuit open", shard))
		return
	}

	var resp *http.Response
	if peek.Hedged && canFailover {
		resp, err = f.hedgedQuery(br, shard, body)
	} else {
		leader := f.shards[shard][0]
		resp, err = f.do(http.MethodPost, leader+"/v1/query", body, "application/json")
		br.record(err == nil && resp != nil && resp.StatusCode < http.StatusInternalServerError, time.Now())
	}
	if err != nil {
		if canFailover {
			if fresp := f.failover(shard, body); fresp != nil {
				w.Header().Set("X-Failover", "1")
				relay(w, fresp)
				return
			}
		}
		writeFrontendError(w, http.StatusServiceUnavailable, err)
		return
	}
	if resp.StatusCode >= http.StatusInternalServerError && canFailover {
		if fresp := f.failover(shard, body); fresp != nil {
			resp.Body.Close()
			w.Header().Set("X-Failover", "1")
			relay(w, fresp)
			return
		}
	}
	relay(w, resp)
}

// failover asks each replica rank of the shard, in rank order, to
// answer the query from its own graph copy; nil when none could.
func (f *Frontend) failover(shard int, body []byte) *http.Response {
	for _, replica := range f.shards[shard][1:] {
		resp, err := f.do(http.MethodPost, replica+"/v1/local", body, "application/json")
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusOK {
			f.failovers.Add(1)
			return resp
		}
		resp.Body.Close()
	}
	return nil
}

type hedgeRes struct {
	resp    *http.Response
	err     error
	replica bool
}

// hedgedQuery sends the query to the leader and, if no answer lands
// within the hedge delay (or the leader fails outright), races a
// replica's /v1/local copy. First 200 wins; the loser's response is
// drained in the background. The breaker observes only the leader's
// outcome — a hedge win must not mask a sick leader.
func (f *Frontend) hedgedQuery(br *breaker, shard int, body []byte) (*http.Response, error) {
	leader := f.shards[shard][0]
	replica := f.shards[shard][1]
	ch := make(chan hedgeRes, 2)
	go func() {
		resp, err := f.do(http.MethodPost, leader+"/v1/query", body, "application/json")
		br.record(err == nil && resp != nil && resp.StatusCode < http.StatusInternalServerError, time.Now())
		ch <- hedgeRes{resp, err, false}
	}()
	timer := time.NewTimer(f.hedgeDelay)
	defer timer.Stop()
	outstanding, launched := 1, false
	launchHedge := func() {
		launched = true
		outstanding++
		f.hedged.Add(1)
		go func() {
			resp, err := f.do(http.MethodPost, replica+"/v1/local", body, "application/json")
			ch <- hedgeRes{resp, err, true}
		}()
	}
	var fallback *hedgeRes
	for {
		select {
		case res := <-ch:
			outstanding--
			if res.err == nil && res.resp.StatusCode == http.StatusOK {
				if res.replica {
					f.hedgeWins.Add(1)
				}
				if fallback != nil && fallback.resp != nil {
					fallback.resp.Body.Close()
				}
				if outstanding > 0 {
					go func() {
						if late := <-ch; late.resp != nil {
							late.resp.Body.Close()
						}
					}()
				}
				return res.resp, nil
			}
			// A failure: keep the leader's reply as the answer of record
			// (replica errors are a worse story for the client).
			if fallback == nil || !res.replica {
				if fallback != nil && fallback.resp != nil {
					fallback.resp.Body.Close()
				}
				fallback = &res
			} else if res.resp != nil {
				res.resp.Body.Close()
			}
			if outstanding == 0 && launched {
				return fallback.resp, fallback.err
			}
			if !launched {
				if res.err == nil {
					// A definitive HTTP failure from the leader (4xx/5xx):
					// hedging would just duplicate it — hand it back and let
					// the caller's failover policy decide.
					return fallback.resp, fallback.err
				}
				// Leader failed at the transport before the hedge timer:
				// hedge immediately.
				launchHedge()
			}
		case <-timer.C:
			if !launched {
				launchHedge()
			}
		}
	}
}

// WorkerStats is one worker's contribution to the merged stats view.
type WorkerStats struct {
	URL   string               `json:"url"`
	Error string               `json:"error,omitempty"`
	Stats *service.EngineStats `json:"stats,omitempty"`
}

// ShardStats groups one shard's workers.
type ShardStats struct {
	Shard   int           `json:"shard"`
	Workers []WorkerStats `json:"workers"`
}

// FrontendStats is the merged /v1/stats response: the full per-worker
// detail plus fleet totals summed over shard leaders (queries flow
// through leaders only, so leader totals are the fleet totals; summing
// every rank would double-count the replicated registries).
type FrontendStats struct {
	Shards             []ShardStats                    `json:"shards"`
	Graphs             int                             `json:"graphs"`
	Queries            uint64                          `json:"queries"`
	KernelExecutions   uint64                          `json:"kernel_executions"`
	CacheHits          uint64                          `json:"cache_hits"`
	TransportLost      uint64                          `json:"transport_lost"`
	WireBytes          uint64                          `json:"wire_bytes"`
	WireRawBytes       uint64                          `json:"wire_raw_bytes"`
	Transports         map[string]trace.TransportStats `json:"transports,omitempty"`
	UnreachableWorkers int                             `json:"unreachable_workers"`
	Tenants            []tenant.TenantSnapshot         `json:"tenants,omitempty"`
	Fleet              FrontendFleet                   `json:"fleet"`
}

// BreakerStatus is one shard leader's circuit breaker state.
type BreakerStatus struct {
	Shard    int    `json:"shard"`
	Leader   string `json:"leader"`
	State    string `json:"state"` // closed | half_open | open
	Failures int    `json:"failures"`
}

// FrontendFleet is the frontend's own resilience state: breaker
// positions and the retry/failover/hedge counters.
type FrontendFleet struct {
	Breakers  []BreakerStatus `json:"breakers"`
	Retries   uint64          `json:"retries"`
	Failovers uint64          `json:"failovers"`
	Hedged    uint64          `json:"hedged"`
	HedgeWins uint64          `json:"hedge_wins"`
}

func (f *Frontend) fleetStats() FrontendFleet {
	ff := FrontendFleet{
		Breakers:  make([]BreakerStatus, len(f.breakers)),
		Retries:   f.retries.Load(),
		Failovers: f.failovers.Load(),
		Hedged:    f.hedged.Load(),
		HedgeWins: f.hedgeWins.Load(),
	}
	for i, br := range f.breakers {
		state, failures := br.snapshot()
		ff.Breakers[i] = BreakerStatus{
			Shard:    i,
			Leader:   f.shards[i][0],
			State:    breakerStateName(state),
			Failures: failures,
		}
	}
	return ff
}

// handleMetrics exposes the frontend's resilience counters in
// Prometheus text form (the per-worker camc_* families live on each
// worker's own /metrics).
func (f *Frontend) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeFrontendError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP camc_breaker_state Circuit breaker per shard leader (0=closed, 1=half-open, 2=open).\n# TYPE camc_breaker_state gauge\n")
	for i, br := range f.breakers {
		state, _ := br.snapshot()
		fmt.Fprintf(&b, "camc_breaker_state{shard=\"%d\"} %d\n", i, state)
	}
	fmt.Fprintf(&b, "# HELP camc_failovers_total Queries answered by a replica rank instead of the shard leader.\n# TYPE camc_failovers_total counter\ncamc_failovers_total %d\n", f.failovers.Load())
	fmt.Fprintf(&b, "# HELP camc_frontend_retries_total Transport-level retries against workers.\n# TYPE camc_frontend_retries_total counter\ncamc_frontend_retries_total %d\n", f.retries.Load())
	fmt.Fprintf(&b, "# HELP camc_hedged_total Hedge requests launched for opted-in cc queries.\n# TYPE camc_hedged_total counter\ncamc_hedged_total %d\n", f.hedged.Load())
	fmt.Fprintf(&b, "# HELP camc_hedge_wins_total Hedges that answered before the leader.\n# TYPE camc_hedge_wins_total counter\ncamc_hedge_wins_total %d\n", f.hedgeWins.Load())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}

func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	out := FrontendStats{Shards: make([]ShardStats, len(f.shards)), Fleet: f.fleetStats()}
	if f.tenants != nil {
		out.Tenants = f.tenants.Snapshot()
	}
	for si, workers := range f.shards {
		ss := ShardStats{Shard: si, Workers: make([]WorkerStats, len(workers))}
		for wi, worker := range workers {
			ws := WorkerStats{URL: worker}
			resp, err := f.do(http.MethodGet, worker+"/v1/stats", nil, "")
			if err != nil {
				ws.Error = err.Error()
				out.UnreachableWorkers++
			} else {
				var st service.EngineStats
				err := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					ws.Error = err.Error()
					out.UnreachableWorkers++
				} else {
					ws.Stats = &st
					if wi == 0 {
						out.Graphs += st.Graphs
						out.Queries += st.Queries.Totals.Queries
						out.KernelExecutions += st.Queries.Totals.KernelExecutions
						out.CacheHits += st.Queries.Totals.CacheHits
						out.TransportLost += st.Queries.Totals.TransportLost
						out.WireBytes += st.Queries.Totals.WireBytes
						out.WireRawBytes += st.Queries.Totals.WireRawBytes
						for kind, ts := range st.Queries.Transports {
							if out.Transports == nil {
								out.Transports = make(map[string]trace.TransportStats)
							}
							agg := out.Transports[kind]
							agg.KernelExecutions += ts.KernelExecutions
							agg.Supersteps += ts.Supersteps
							agg.CommVolume += ts.CommVolume
							agg.WireBytes += ts.WireBytes
							agg.WireRawBytes += ts.WireRawBytes
							out.Transports[kind] = agg
						}
					}
				}
			}
			ss.Workers[wi] = ws
		}
		out.Shards[si] = ss
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
