package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// Frontend routes the public API across shards: graph uploads replicate
// to every worker of the owning shard (each rank process needs the full
// snapshot to slice its block), queries go to the owning shard's
// leader, and stats merge across the whole fleet.
type Frontend struct {
	ring *Ring
	// shards[i] lists shard i's worker base URLs in rank order;
	// shards[i][0] is the leader.
	shards   [][]string
	client   *http.Client
	attempts int
	backoff  time.Duration
	tenants  *tenant.Registry
}

// SetTenants attaches a tenant registry so the merged /v1/stats view
// carries the fleet-wide quota state. Quota enforcement itself happens
// in service.TenantMiddleware wrapping Handler(); the frontend only
// reports.
func (f *Frontend) SetTenants(reg *tenant.Registry) { f.tenants = reg }

// NewFrontend builds a frontend over the given worker fleet.
func NewFrontend(shards [][]string) (*Frontend, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: frontend needs at least one shard")
	}
	for i, ws := range shards {
		if len(ws) == 0 {
			return nil, fmt.Errorf("shard: shard %d has no workers", i)
		}
	}
	ring, err := NewRing(len(shards), 0)
	if err != nil {
		return nil, err
	}
	return &Frontend{
		ring:     ring,
		shards:   shards,
		client:   &http.Client{Timeout: 5 * time.Minute},
		attempts: 3,
		backoff:  50 * time.Millisecond,
	}, nil
}

// Handler returns the frontend HTTP API — the same shape as a single
// worker's, so clients need not know whether they talk to one process
// or a fleet.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/graphs", f.handleUpload)
	mux.HandleFunc("/v1/query", f.handleQuery)
	mux.HandleFunc("/v1/stats", f.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// do issues one request with retry-on-connect-failure: only transport
// errors (dial refused, connection reset before a response) retry; any
// HTTP response, success or failure, is final. body is re-readable by
// construction (a byte slice), so retries are safe.
func (f *Frontend) do(method, url string, body []byte, contentType string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < f.attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(f.backoff * time.Duration(attempt))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := f.client.Do(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("shard: %s %s failed after %d attempts: %w", method, url, f.attempts, lastErr)
}

// relay copies a worker's response through to the client, preserving
// the status and the retry contract (Retry-After).
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func writeFrontendError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// maxUploadBytes mirrors the worker-side bound.
const maxUploadBytes = 64 << 20

// handleUpload places the graph by name and replicates the body to
// every worker of the owning shard: a distributed run slices the frozen
// edge array by rank, so each rank process must hold the full snapshot.
// All-or-nothing isn't required — a partially replicated graph fails
// closed at query time (the leader's start/ack round rejects the run).
func (f *Frontend) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFrontendError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		// Workers auto-generate names independently, which would scatter
		// one logical graph across per-process identities; the frontend
		// requires the name to keep placement well-defined.
		writeFrontendError(w, http.StatusBadRequest, fmt.Errorf("shard: uploads require an explicit ?name="))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
	if err != nil {
		status := http.StatusInternalServerError
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeFrontendError(w, status, err)
		return
	}
	shard := f.ring.Shard(name)
	q := r.URL.Query().Encode()
	var last *http.Response
	for _, worker := range f.shards[shard] {
		resp, err := f.do(http.MethodPost, worker+"/v1/graphs?"+q, body, r.Header.Get("Content-Type"))
		if err != nil {
			if last != nil {
				last.Body.Close()
			}
			writeFrontendError(w, http.StatusServiceUnavailable, err)
			return
		}
		if resp.StatusCode != http.StatusCreated {
			if last != nil {
				last.Body.Close()
			}
			relay(w, resp)
			return
		}
		if last != nil {
			last.Body.Close()
		}
		last = resp
	}
	w.Header().Set("X-Shard", fmt.Sprint(shard))
	relay(w, last)
}

// handleQuery routes a query to the owning shard's leader.
func (f *Frontend) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeFrontendError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeFrontendError(w, http.StatusBadRequest, err)
		return
	}
	var peek struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &peek); err != nil || peek.Graph == "" {
		writeFrontendError(w, http.StatusBadRequest, fmt.Errorf("shard: query body needs a graph name"))
		return
	}
	shard := f.ring.Shard(peek.Graph)
	leader := f.shards[shard][0]
	resp, err := f.do(http.MethodPost, leader+"/v1/query", body, "application/json")
	if err != nil {
		writeFrontendError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("X-Shard", fmt.Sprint(shard))
	relay(w, resp)
}

// WorkerStats is one worker's contribution to the merged stats view.
type WorkerStats struct {
	URL   string               `json:"url"`
	Error string               `json:"error,omitempty"`
	Stats *service.EngineStats `json:"stats,omitempty"`
}

// ShardStats groups one shard's workers.
type ShardStats struct {
	Shard   int           `json:"shard"`
	Workers []WorkerStats `json:"workers"`
}

// FrontendStats is the merged /v1/stats response: the full per-worker
// detail plus fleet totals summed over shard leaders (queries flow
// through leaders only, so leader totals are the fleet totals; summing
// every rank would double-count the replicated registries).
type FrontendStats struct {
	Shards             []ShardStats                    `json:"shards"`
	Graphs             int                             `json:"graphs"`
	Queries            uint64                          `json:"queries"`
	KernelExecutions   uint64                          `json:"kernel_executions"`
	CacheHits          uint64                          `json:"cache_hits"`
	TransportLost      uint64                          `json:"transport_lost"`
	WireBytes          uint64                          `json:"wire_bytes"`
	Transports         map[string]trace.TransportStats `json:"transports,omitempty"`
	UnreachableWorkers int                             `json:"unreachable_workers"`
	Tenants            []tenant.TenantSnapshot         `json:"tenants,omitempty"`
}

func (f *Frontend) handleStats(w http.ResponseWriter, r *http.Request) {
	out := FrontendStats{Shards: make([]ShardStats, len(f.shards))}
	if f.tenants != nil {
		out.Tenants = f.tenants.Snapshot()
	}
	for si, workers := range f.shards {
		ss := ShardStats{Shard: si, Workers: make([]WorkerStats, len(workers))}
		for wi, worker := range workers {
			ws := WorkerStats{URL: worker}
			resp, err := f.do(http.MethodGet, worker+"/v1/stats", nil, "")
			if err != nil {
				ws.Error = err.Error()
				out.UnreachableWorkers++
			} else {
				var st service.EngineStats
				err := json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					ws.Error = err.Error()
					out.UnreachableWorkers++
				} else {
					ws.Stats = &st
					if wi == 0 {
						out.Graphs += st.Graphs
						out.Queries += st.Queries.Totals.Queries
						out.KernelExecutions += st.Queries.Totals.KernelExecutions
						out.CacheHits += st.Queries.Totals.CacheHits
						out.TransportLost += st.Queries.Totals.TransportLost
						out.WireBytes += st.Queries.Totals.WireBytes
						for kind, ts := range st.Queries.Transports {
							if out.Transports == nil {
								out.Transports = make(map[string]trace.TransportStats)
							}
							agg := out.Transports[kind]
							agg.KernelExecutions += ts.KernelExecutions
							agg.Supersteps += ts.Supersteps
							agg.CommVolume += ts.CommVolume
							agg.WireBytes += ts.WireBytes
							out.Transports[kind] = agg
						}
					}
				}
			}
			ss.Workers[wi] = ws
		}
		out.Shards[si] = ss
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
