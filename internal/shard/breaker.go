package shard

import (
	"sync"
	"time"
)

// Circuit breaker states. The numeric values are the camc_breaker_state
// gauge's encoding.
const (
	breakerClosed   = 0 // normal: requests flow
	breakerHalfOpen = 1 // probing: one trial request in flight
	breakerOpen     = 2 // tripped: requests fail fast (or fail over)
)

func breakerStateName(s int) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "open"
	}
}

// breaker is a per-leader circuit breaker. consecutive transport
// failures (or 5xx replies) trip it open; after cooldown it admits one
// probe (half-open) and either closes on success or re-opens on
// failure. Failing fast while open is what turns a dead leader from
// "every query burns a full retry budget" into "every query fails over
// (or 503s) immediately" — the breaker is the frontend's memory of the
// failure detector's verdict.
type breaker struct {
	mu        sync.Mutex
	state     int
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // half-open: a probe is in flight
	threshold int
	cooldown  time.Duration
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed. In half-open state only
// a single probe is admitted; callers that get true MUST call record()
// with the outcome, or the breaker wedges in probing state.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record reports a request outcome observed after allow() admitted it.
func (b *breaker) record(ok bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
	if ok {
		b.state = breakerClosed
		b.failures = 0
		return
	}
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// snapshot returns (state, consecutive failures) for stats/metrics.
func (b *breaker) snapshot() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.failures
}
