package shard

import (
	"math/rand"
	"sync"
	"time"
)

// jitterBackoff computes retry delays with capped exponential backoff
// and full jitter (the AWS architecture-blog scheme): attempt k draws
// uniformly from [0, min(cap, base·2^k)]. Full jitter beats equal or
// no jitter for thundering herds — after a leader crash every queued
// client retries at once, and decorrelating the whole delay (not just
// a fraction of it) spreads the stampede across the window instead of
// synchronizing it at the cap.
//
// The generator is owned (math/rand's global source would contend with
// every other user) and mutex-guarded: delays are drawn on request
// goroutines.
type jitterBackoff struct {
	base time.Duration
	cap  time.Duration

	mu  sync.Mutex
	rnd *rand.Rand
}

func newJitterBackoff(base, cap time.Duration, seed int64) *jitterBackoff {
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if cap < base {
		cap = 40 * base
	}
	return &jitterBackoff{base: base, cap: cap, rnd: rand.New(rand.NewSource(seed))}
}

// delay returns the sleep before retry attempt (attempt 0 = first
// retry).
func (jb *jitterBackoff) delay(attempt int) time.Duration {
	ceil := jb.base << uint(attempt)
	if ceil > jb.cap || ceil <= 0 { // <= 0: shift overflow
		ceil = jb.cap
	}
	jb.mu.Lock()
	d := time.Duration(jb.rnd.Int63n(int64(ceil) + 1))
	jb.mu.Unlock()
	return d
}
