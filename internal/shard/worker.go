package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bsp"
	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/transport"
)

// WorkerConfig configures one worker process — one rank of one shard's
// BSP machine.
type WorkerConfig struct {
	// Rank is this process's rank in the shard group, in [0, len(Addrs)).
	// Rank 0 is the group leader: it serves queries (through the engine's
	// cache/coalescing/admission pipeline) and coordinates the other
	// ranks; every rank serves graph uploads and stats.
	Rank int
	// Addrs lists every rank's mesh listen address, index = rank.
	Addrs []string
	// Epoch is the deployment generation; the mesh handshake rejects
	// peers from a different epoch.
	Epoch uint64
	// Listener, when non-nil, is used instead of listening on
	// Addrs[Rank] (tests pass pre-bound 127.0.0.1:0 listeners).
	Listener net.Listener
	// DialTimeout bounds mesh establishment (default 15s).
	DialTimeout time.Duration
	// Faults, when non-nil, compiles its transport rules into the wire
	// hook of every run this rank participates in (and its Sync rules
	// into leader-side machines through Service.Faults as usual).
	Faults *faults.Registry
	// Service is the base engine configuration. On rank 0 its Executor is
	// replaced by the distributed executor; on peers by a rejecting one.
	Service service.Config
	// JobTimeout bounds a peer rank's share of one distributed run when
	// the leader never aborts it (default: Service.DefaultTimeout, or
	// 60s). Leader-side deadlines propagate faster through the abort
	// protocol; this is the backstop against a vanished leader.
	JobTimeout time.Duration
	// Incarnation is this process's monotonic incarnation number for
	// mesh admission (default 1). A supervisor respawning a crashed rank
	// passes a strictly higher value so the survivors' slots accept the
	// replacement and reject any straggling connection from the corpse.
	Incarnation uint64
	// HeartbeatInterval and PhiThreshold tune the mesh failure detector
	// (zero = transport defaults: 500ms, phi 8).
	HeartbeatInterval time.Duration
	PhiThreshold      float64
	// CrashFn overrides what an injected crash fault does (in-process
	// tests substitute a worker shutdown); nil exits the process with
	// transport.CrashExitCode, which the camcd supervisor recognizes.
	CrashFn func()
}

// ctrlMsg is the JSON job-control protocol riding the mesh's control
// frames. Job control: the leader announces a run ("start"), each peer
// validates its registry and answers ("ack"), and the leader releases
// the barrier ("go") once every peer is ready. Catch-up (see
// selfheal.go): a peer offers its inventory to the leader ("state"),
// and the leader answers with every graph the peer is missing ("sync").
type ctrlMsg struct {
	Type    string `json:"type"` // start | ack | go | state | sync
	Run     uint64 `json:"run"`
	Graph   string `json:"graph,omitempty"`
	Version uint64 `json:"version,omitempty"`
	FP      string `json:"fp,omitempty"` // start: leader's graph fingerprint

	Alg    string             `json:"alg,omitempty"`
	Params service.ExecParams `json:"params,omitempty"`
	OK     bool               `json:"ok,omitempty"`
	Err    string             `json:"err,omitempty"`
	Rank   int                `json:"rank,omitempty"`
	Graphs []graphState       `json:"graphs,omitempty"` // state: sender's inventory
	Sync   []syncGraph        `json:"sync,omitempty"`   // sync: graphs the peer lacks
}

type ackResult struct {
	rank int
	ok   bool
	err  string
}

// Worker is one rank process of a shard group: a mesh endpoint, the
// job-control state machine, and an HTTP-facing service engine.
type Worker struct {
	rank       int
	p          int
	members    []int
	faults     *faults.Registry
	jobTimeout time.Duration

	mesh   *transport.Mesh
	engine *service.Engine

	nextRun atomic.Uint64

	mu     sync.Mutex
	acks   map[uint64]chan ackResult // leader: pending run acknowledgements
	staged map[uint64]ctrlMsg        // peer: validated runs awaiting "go"
	closed bool
	jobs   sync.WaitGroup

	// Self-healing state (see selfheal.go). meshUp gates catch-up
	// goroutines spawned by mesh callbacks: they may fire while NewMesh
	// is still constructing, before w.mesh is assigned.
	meshUp       chan struct{}
	caughtUp     atomic.Bool
	catchupSent  atomic.Uint64 // leader: graphs shipped to rejoining peers
	catchupRecv  atomic.Uint64 // peer: graphs received via catch-up
	localQueries atomic.Uint64 // failover/hedged queries answered locally
}

// NewWorker connects the rank into its shard's mesh (blocking until all
// peers are up) and starts the engine. Callers serve Worker.Handler()
// over HTTP and Close() on shutdown.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	p := len(cfg.Addrs)
	w := &Worker{
		rank:       cfg.Rank,
		p:          p,
		members:    make([]int, p),
		faults:     cfg.Faults,
		jobTimeout: cfg.JobTimeout,
		acks:       make(map[uint64]chan ackResult),
		staged:     make(map[uint64]ctrlMsg),
		meshUp:     make(chan struct{}),
	}
	for i := range w.members {
		w.members[i] = i
	}
	if w.jobTimeout <= 0 {
		w.jobTimeout = cfg.Service.DefaultTimeout
	}
	if w.jobTimeout <= 0 {
		w.jobTimeout = 60 * time.Second
	}
	// The leader is born caught-up (it is the catch-up source); peers of
	// a 1-rank group have nothing to catch up on. A p>1 peer starts
	// not-ready and flips once its first state/sync round-trip with the
	// leader completes (instant on an empty registry).
	if cfg.Rank == 0 || p == 1 {
		w.caughtUp.Store(true)
	}
	mesh, err := transport.NewMesh(transport.MeshConfig{
		Rank:              cfg.Rank,
		Addrs:             cfg.Addrs,
		MachineEpoch:      cfg.Epoch,
		Listener:          cfg.Listener,
		DialTimeout:       cfg.DialTimeout,
		Control:           w.handleControl,
		Incarnation:       cfg.Incarnation,
		HeartbeatInterval: cfg.HeartbeatInterval,
		PhiThreshold:      cfg.PhiThreshold,
		OnPeerUp:          w.onPeerUp,
		OnPeerDown:        w.onPeerDown,
		CrashFn:           cfg.CrashFn,
	})
	if err != nil {
		return nil, err
	}
	w.mesh = mesh
	svc := cfg.Service
	if cfg.Rank == 0 {
		svc.Executor = &distExecutor{w: w}
	} else {
		svc.Executor = &rejectExecutor{rank: cfg.Rank, p: p}
	}
	w.engine = service.NewEngine(svc)
	// Catch-up goroutines spawned by mesh callbacks (possibly already
	// fired during NewMesh) block on meshUp until both the mesh and the
	// engine fields are assigned.
	close(w.meshUp)
	return w, nil
}

// Rank returns this worker's group rank.
func (w *Worker) Rank() int { return w.rank }

// Engine exposes the worker's service engine (registry, stats).
func (w *Worker) Engine() *service.Engine { return w.engine }

// Handler returns the worker's HTTP API: the standard service surface
// (with /healthz wired to mesh connectivity, /readyz to mesh + catch-up
// state, and the camc_fleet_* metric families) plus /v1/local, the
// frontend's failover/hedge target (see selfheal.go).
func (w *Worker) Handler() http.Handler {
	base := service.NewHandlerOpts(w.engine, service.HandlerOptions{
		Health:       w.Health,
		Ready:        w.Ready,
		Fleet:        func() interface{} { return w.FleetStats() },
		ExtraMetrics: w.writeFleetMetrics,
	})
	mux := http.NewServeMux()
	mux.Handle("/", base)
	mux.HandleFunc("/v1/local", w.handleLocal)
	return mux
}

// Close shuts the worker down: engine first (draining queries, which
// aborts their sessions), then the mesh, then any straggling peer jobs.
func (w *Worker) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	w.engine.Close()
	w.mesh.Close()
	w.jobs.Wait()
}

// handleControl runs on mesh read-pump goroutines; it must not block,
// so acks and job execution move to their own goroutines.
func (w *Worker) handleControl(src int, epoch uint64, payload []byte) {
	var msg ctrlMsg
	if err := json.Unmarshal(payload, &msg); err != nil {
		return
	}
	switch msg.Type {
	case "start":
		w.mu.Lock()
		closed := w.closed
		if !closed {
			w.staged[msg.Run] = msg
		}
		w.mu.Unlock()
		ack := ctrlMsg{Type: "ack", Run: msg.Run, Rank: w.rank, OK: !closed}
		if closed {
			ack.Err = "worker shutting down"
		} else if _, err := w.engine.Registry().Get(msg.Graph); err != nil {
			ack.OK = false
			ack.Err = fmt.Sprintf("graph %q not registered on rank %d", msg.Graph, w.rank)
			w.mu.Lock()
			delete(w.staged, msg.Run)
			w.mu.Unlock()
		}
		go w.sendCtrl(src, ack)
	case "ack":
		w.mu.Lock()
		ch := w.acks[msg.Run]
		w.mu.Unlock()
		if ch != nil {
			select {
			case ch <- ackResult{rank: msg.Rank, ok: msg.OK, err: msg.Err}:
			default:
			}
		}
	case "go":
		w.mu.Lock()
		job, ok := w.staged[msg.Run]
		delete(w.staged, msg.Run)
		closed := w.closed
		if ok && !closed {
			w.jobs.Add(1)
		}
		w.mu.Unlock()
		if ok && !closed {
			go w.runPeerJob(job)
		}
	case "state":
		if w.rank == 0 {
			go w.serveCatchup(msg)
		}
	case "sync":
		if src == 0 && w.rank != 0 {
			go w.applyCatchup(msg)
		}
	}
}

func (w *Worker) sendCtrl(dst int, msg ctrlMsg) error {
	payload, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	return w.mesh.SendControl(dst, msg.Run, payload)
}

// runPeerJob is a non-leader rank's share of one distributed run: build
// the session and machine for the announced run and execute the same
// kernel body the leader runs. The result is nil here (no global rank
// 0); errors surface on the leader through the abort protocol, so they
// are deliberately dropped.
func (w *Worker) runPeerJob(job ctrlMsg) {
	defer w.jobs.Done()
	sg, err := w.engine.Registry().Get(job.Graph)
	if err != nil || (sg.Version != job.Version && fingerprintOf(sg) != job.FP) {
		// Validated at "start"; a registration that truly changed the
		// graph's content since then aborts via the leader's timeout.
		// Version skew alone is benign — startup anti-entropy racing a
		// direct upload can leave identical content at different
		// versions on different ranks — so content identity (the
		// fingerprint) is what gates participation.
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), w.jobTimeout)
	defer cancel()
	w.runOnSession(ctx, job.Run, sg, job.Alg, job.Params)
}

// runOnSession executes one distributed run's local share: session,
// wire-fault hook, machine, kernel.
func (w *Worker) runOnSession(ctx context.Context, run uint64, sg *service.StoredGraph, alg string, pr service.ExecParams) (*service.QueryResult, error) {
	sess, err := w.mesh.NewSession(run, w.members)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	if w.faults != nil {
		if h := w.faults.WireHook(w.rank); h != nil {
			sess.SetWireHook(h)
		}
	}
	m, err := bsp.NewMachineOver(sess.Root())
	if err != nil {
		return nil, err
	}
	return service.ExecuteOnMachine(ctx, m, sg, alg, pr)
}

// distExecutor is the leader's service.Executor: it runs every query on
// the shard's distributed TCP machine, coordinating the peers through
// the control protocol. Distributed runs are always cold — no
// snapshot-resident plans — and sized to the group.
type distExecutor struct{ w *Worker }

func (d *distExecutor) MachineP() int { return d.w.p }

func (d *distExecutor) Execute(ctx context.Context, sg *service.StoredGraph, alg string, pr service.ExecParams) (*service.QueryResult, error) {
	w := d.w
	run := w.nextRun.Add(1)
	if w.p > 1 {
		ch := make(chan ackResult, w.p-1)
		w.mu.Lock()
		w.acks[run] = ch
		w.mu.Unlock()
		defer func() {
			w.mu.Lock()
			delete(w.acks, run)
			w.mu.Unlock()
		}()

		start := ctrlMsg{
			Type: "start", Run: run,
			Graph: sg.Name, Version: sg.Version, FP: fingerprintOf(sg),
			Alg: alg, Params: pr,
		}
		for peer := 1; peer < w.p; peer++ {
			if err := w.sendCtrl(peer, start); err != nil {
				return nil, err // wraps ErrPeerLost → 503 + Retry-After
			}
		}
		for n := 0; n < w.p-1; n++ {
			select {
			case ack := <-ch:
				if !ack.ok {
					return nil, fmt.Errorf("shard: peer rank %d rejected run %d: %s", ack.rank, run, ack.err)
				}
			case <-ctx.Done():
				return nil, fmt.Errorf("%w: run %d: %d/%d peers acknowledged before the deadline",
					transport.ErrPeerLost, run, n, w.p-1)
			}
		}
		release := ctrlMsg{Type: "go", Run: run}
		for peer := 1; peer < w.p; peer++ {
			if err := w.sendCtrl(peer, release); err != nil {
				return nil, err
			}
		}
	}
	return w.runOnSession(ctx, run, sg, alg, pr)
}

// rejectExecutor answers queries sent to a non-leader worker: routing
// them here is a frontend bug (or an operator poking a peer directly),
// and silently running a private single-process kernel would hide it.
type rejectExecutor struct{ rank, p int }

func (r *rejectExecutor) MachineP() int { return r.p }

func (r *rejectExecutor) Execute(context.Context, *service.StoredGraph, string, service.ExecParams) (*service.QueryResult, error) {
	return nil, fmt.Errorf("%w: worker rank %d is not the shard leader; queries go to rank 0", service.ErrBadRequest, r.rank)
}
