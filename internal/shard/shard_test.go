package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/transport"
)

func TestRingPlacement(t *testing.T) {
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic and stable across constructions.
	r2, _ := NewRing(4, 0)
	hits := make([]int, 4)
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("graph-%d", i)
		s := r.Shard(name)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		if s2 := r2.Shard(name); s2 != s {
			t.Fatalf("placement of %q unstable: %d vs %d", name, s, s2)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Errorf("shard %d received no names (skew too extreme)", s)
		}
	}
	// Growing the ring moves only a fraction of the names.
	r5, _ := NewRing(5, 0)
	moved := 0
	for i := 0; i < 400; i++ {
		name := fmt.Sprintf("graph-%d", i)
		if r5.Shard(name) != r.Shard(name) {
			moved++
		}
	}
	if moved > 200 {
		t.Errorf("adding one shard moved %d/400 names; consistent hashing should move ~1/5", moved)
	}
	if _, err := NewRing(0, 0); err == nil {
		t.Error("zero-shard ring must not construct")
	}
}

// nameOnShard finds a graph name the ring places on the wanted shard.
func nameOnShard(t *testing.T, ring *Ring, shard int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("g%d", i)
		if ring.Shard(name) == shard {
			return name
		}
	}
	t.Fatal("no name found for shard")
	return ""
}

// newWorkerGroup brings up one shard's p worker processes in-process:
// pre-bound loopback listeners, concurrent mesh establishment, one
// httptest server per worker. Returns the workers and their base URLs.
func newWorkerGroup(t *testing.T, p int, epoch uint64, freg *faults.Registry) ([]*Worker, []string) {
	t.Helper()
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	workers := make([]*Worker, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workers[i], errs[i] = NewWorker(WorkerConfig{
				Rank:     i,
				Addrs:    addrs,
				Epoch:    epoch,
				Listener: lns[i],
				Faults:   freg,
				Service:  service.Config{Workers: 1, DefaultTimeout: 30 * time.Second},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	urls := make([]string, p)
	for i, w := range workers {
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
	})
	return workers, urls
}

func edgeListOf(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var b bytes.Buffer
	if err := graph.WriteEdgeList(&b, g); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// waitReady blocks until the worker reports ready (mesh connected and
// catch-up complete) or 5s pass.
func waitReady(t *testing.T, w *Worker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w.Ready() == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker rank %d never became ready: %v", w.Rank(), w.Ready())
}

func postJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	body, _ := json.Marshal(v)
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestFleetEndToEnd drives the whole tier in-process: two shards (one
// 2-rank group, one 1-rank group) behind a frontend. Uploads replicate
// to the owning shard's ranks, queries run on the shard's distributed
// machine with correct results, repeats hit the leader's cache, and the
// merged stats account the wire traffic.
func TestFleetEndToEnd(t *testing.T) {
	_, urls0 := newWorkerGroup(t, 2, 100, nil)
	_, urls1 := newWorkerGroup(t, 1, 200, nil)
	fe, err := NewFrontend([][]string{urls0, urls1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()

	// One graph per shard: a weighted cycle has one component and min cut
	// exactly twice the edge weight.
	ring, _ := NewRing(2, 0)
	names := []string{nameOnShard(t, ring, 0), nameOnShard(t, ring, 1)}
	g := gen.Cycle(64, 3)
	for i, name := range names {
		resp, err := http.Post(srv.URL+"/v1/graphs?name="+name, "text/plain",
			strings.NewReader(edgeListOf(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %q: status %d", name, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Shard"); got != fmt.Sprint(i) {
			t.Fatalf("upload %q placed on shard %s, want %d", name, got, i)
		}
		resp.Body.Close()
	}
	// Nameless uploads are rejected: placement must be well-defined.
	resp, err := http.Post(srv.URL+"/v1/graphs", "text/plain", strings.NewReader(edgeListOf(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless upload: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Even the 1-rank shard executes over its mesh session, so both label
	// their runs "tcp"; only the 2-rank shard moves actual wire bytes.
	wantTransport := []string{transport.KindTCP, transport.KindTCP}
	wantP := []int{2, 1}
	for i, name := range names {
		for _, alg := range []string{service.AlgCC, service.AlgMinCut} {
			resp := postJSON(t, srv.URL+"/v1/query", service.QueryRequest{Graph: name, Algorithm: alg})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("query %s/%s: status %d", name, alg, resp.StatusCode)
			}
			var qr service.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			switch alg {
			case service.AlgCC:
				if qr.Components == nil || *qr.Components != 1 {
					t.Fatalf("%s cc components = %v, want 1", name, qr.Components)
				}
			case service.AlgMinCut:
				if qr.Value == nil || *qr.Value != 6 {
					t.Fatalf("%s mincut = %v, want 6 (cycle of weight-3 edges)", name, qr.Value)
				}
			}
			if qr.Kernel.P != wantP[i] {
				t.Fatalf("%s %s ran at p=%d, want %d", name, alg, qr.Kernel.P, wantP[i])
			}
			if qr.Kernel.Transport != wantTransport[i] {
				t.Fatalf("%s %s transport %q, want %q", name, alg, qr.Kernel.Transport, wantTransport[i])
			}
			if i == 0 && qr.Kernel.WireBytes == 0 {
				t.Fatalf("distributed %s run accounted no wire bytes", alg)
			}

			// Identical repeat: served from the leader's cache.
			resp = postJSON(t, srv.URL+"/v1/query", service.QueryRequest{Graph: name, Algorithm: alg})
			var qr2 service.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr2); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if qr2.Outcome != "cache_hit" {
				t.Fatalf("repeat %s/%s outcome %q, want cache_hit", name, alg, qr2.Outcome)
			}
		}
	}

	// Peer ranks reject queries routed around the frontend.
	resp = postJSON(t, urls0[1]+"/v1/query", service.QueryRequest{Graph: names[0], Algorithm: service.AlgCC})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query to non-leader: status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Merged stats: both graphs, all queries, and the distributed shard's
	// wire traffic, broken out per transport.
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var fs FrontendStats
	if err := json.NewDecoder(sresp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if fs.Graphs != 2 {
		t.Fatalf("merged graphs = %d, want 2", fs.Graphs)
	}
	if fs.Queries < 8 {
		t.Fatalf("merged queries = %d, want >= 8", fs.Queries)
	}
	if fs.CacheHits < 4 {
		t.Fatalf("merged cache hits = %d, want >= 4", fs.CacheHits)
	}
	if fs.WireBytes == 0 {
		t.Fatal("merged stats account no wire bytes despite distributed runs")
	}
	if fs.UnreachableWorkers != 0 {
		t.Fatalf("%d unreachable workers", fs.UnreachableWorkers)
	}
	if fs.Transports[transport.KindTCP].KernelExecutions < 4 ||
		fs.Transports[transport.KindTCP].WireBytes == 0 {
		t.Fatalf("per-transport aggregates missing tcp executions: %+v", fs.Transports)
	}
}

// TestFleetQueryUnknownGraph exercises the leader's start/ack round
// failing closed: the graph exists on the leader but not on the peer
// (registered around the frontend), so the run must be rejected before
// any superstep, surfacing as a retryable 503.
func TestFleetPartialReplication(t *testing.T) {
	workers, urls := newWorkerGroup(t, 2, 300, nil)
	g := gen.Cycle(32, 2)
	// Let the join-time catch-up round finish first — otherwise the
	// leader-only registration below races the initial state/sync
	// exchange, which would (correctly) re-replicate it to the peer.
	waitReady(t, workers[1])
	// Register on the leader only.
	if _, err := workers[0].Engine().Registry().Put("lopsided", g); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, urls[0]+"/v1/query", service.QueryRequest{Graph: "lopsided", Algorithm: service.AlgCC})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (peer cannot run the graph)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 reply lacks Retry-After")
	}
}

// TestFleetWireDropFault injects the transport fault grammar end to
// end: drop@1:* severs rank 1's connections at its first Exchange, the
// leader sees ErrPeerLost, and the query resolves 503 + Retry-After
// with the transport_lost outcome counted.
func TestFleetWireDropFault(t *testing.T) {
	freg, err := faults.Parse("drop@1:*:x*")
	if err != nil {
		t.Fatal(err)
	}
	workers, urls := newWorkerGroup(t, 2, 400, freg)
	g := gen.Cycle(32, 2)
	for _, w := range workers {
		if _, err := w.Engine().Registry().Put("doomed", g); err != nil {
			t.Fatal(err)
		}
	}
	resp := postJSON(t, urls[0]+"/v1/query", service.QueryRequest{Graph: "doomed", Algorithm: service.AlgCC})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 reply lacks Retry-After")
	}
	if freg.Fired()["drop"] == 0 {
		t.Fatal("drop rule never fired")
	}
	var st service.EngineStats
	sresp, err := http.Get(urls[0] + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Queries.Totals.TransportLost != 1 {
		t.Fatalf("transport_lost = %d, want 1", st.Queries.Totals.TransportLost)
	}
}
