package shard

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/transport"
)

// fastWorkerGroup is newWorkerGroup with aggressive failure detection
// (20ms heartbeats) so detection-path tests finish in milliseconds.
// Returned listeners' addresses are reused by respawn tests.
func fastWorkerGroup(t *testing.T, p int, epoch uint64, freg *faults.Registry, crashFn func(rank int)) ([]*Worker, []string, []string) {
	t.Helper()
	lns := make([]net.Listener, p)
	addrs := make([]string, p)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	workers := make([]*Worker, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := WorkerConfig{
				Rank:              i,
				Addrs:             addrs,
				Epoch:             epoch,
				Listener:          lns[i],
				Faults:            freg,
				Service:           service.Config{Workers: 1, DefaultTimeout: 30 * time.Second},
				HeartbeatInterval: 20 * time.Millisecond,
			}
			if crashFn != nil {
				rank := i
				cfg.CrashFn = func() { crashFn(rank) }
			}
			workers[i], errs[i] = NewWorker(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	urls := make([]string, p)
	for i, w := range workers {
		srv := httptest.NewServer(w.Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return workers, urls, addrs
}

func uploadGraph(t *testing.T, url, name, body string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/graphs?name="+name, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload %q: status %d: %s", name, resp.StatusCode, b)
	}
}

// fingerprints fetches GET /v1/graphs and returns name → fingerprint.
func fingerprints(t *testing.T, url string) map[string]string {
	t.Helper()
	resp, err := http.Get(url + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Graphs []service.GraphInfo `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(listing.Graphs))
	for _, gi := range listing.Graphs {
		out[gi.Name] = fmt.Sprintf("%s@%d:%s", gi.Name, gi.Version, gi.Fingerprint)
	}
	return out
}

// TestWorkerReincarnationCatchup is the in-process core of the chaos
// e2e: kill a peer rank mid-fleet, observe the leader fail queries
// closed (503 + Retry-After), respawn the rank with a bumped
// incarnation on the same address, and verify it catches up every
// graph byte-identically — including one registered while it was dead
// — after which distributed queries succeed again.
func TestWorkerReincarnationCatchup(t *testing.T) {
	workers, urls, addrs := fastWorkerGroup(t, 2, 900, nil, nil)
	defer workers[0].Close()
	waitReady(t, workers[1])

	cycle := edgeListOf(t, gen.Cycle(64, 3))
	uploadGraph(t, urls[0], "alpha", cycle)
	uploadGraph(t, urls[1], "alpha", cycle)

	resp := postJSON(t, urls[0]+"/v1/query", service.QueryRequest{Graph: "alpha", Algorithm: service.AlgMinCut})
	var qr service.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Value == nil || *qr.Value != 6 {
		t.Fatalf("baseline mincut: status %d, value %v", resp.StatusCode, qr.Value)
	}

	// Kill the peer. The leader's detector notices within a heartbeat
	// interval or two and new queries fail closed.
	workers[1].Close()
	deadline := time.Now().Add(5 * time.Second)
	for workers[0].Engine() != nil && time.Now().Before(deadline) {
		if !workers[0].FleetStats().Peers[0].Up {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if workers[0].FleetStats().Peers[0].Up {
		t.Fatal("leader never marked the dead peer down")
	}
	if err := workers[0].Health(); err == nil {
		t.Fatal("leader of a 2-rank group with its only peer dead should be unhealthy")
	}
	if err := workers[0].Ready(); err == nil {
		t.Fatal("leader should not be ready with a peer down")
	}

	// A query while the peer is dead: 503 + Retry-After, never cached.
	resp = postJSON(t, urls[0]+"/v1/query", service.QueryRequest{Graph: "alpha", Algorithm: service.AlgMinCut, Seed: 7})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query with dead peer: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
	resp.Body.Close()

	// An upload that lands while the rank is dead (leader only — the
	// dead rank's HTTP endpoint would refuse anyway).
	uploadGraph(t, urls[0], "missed", edgeListOf(t, gen.Cycle(48, 2)))

	// Respawn rank 1 on the same address with a bumped incarnation.
	ln, err := net.Listen("tcp", addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := NewWorker(WorkerConfig{
		Rank:              1,
		Addrs:             addrs,
		Epoch:             900,
		Listener:          ln,
		Incarnation:       2,
		Service:           service.Config{Workers: 1, DefaultTimeout: 30 * time.Second},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("respawn: %v", err)
	}
	defer reborn.Close()
	waitReady(t, reborn)
	waitReady(t, workers[0])

	// The survivors admitted the reincarnation, not a stale ghost.
	if inc := workers[0].FleetStats().Peers[0].Incarnation; inc != 2 {
		t.Fatalf("leader sees peer incarnation %d, want 2", inc)
	}

	// Catch-up re-replicated both graphs byte-identically: identical
	// (name, version, fingerprint) triples on both ranks.
	rebornSrv := httptest.NewServer(reborn.Handler())
	defer rebornSrv.Close()
	lead, rep := fingerprints(t, urls[0]), fingerprints(t, rebornSrv.URL)
	for name, fp := range lead {
		if rep[name] != fp {
			t.Fatalf("catch-up mismatch for %q: leader %s, replica %s", name, fp, rep[name])
		}
	}
	if fs := reborn.FleetStats(); fs.CatchupGraphsReceived != 2 {
		t.Fatalf("replica received %d catch-up graphs, want 2", fs.CatchupGraphsReceived)
	}
	if fs := workers[0].FleetStats(); fs.CatchupGraphsSent < 2 {
		t.Fatalf("leader sent %d catch-up graphs, want >= 2", fs.CatchupGraphsSent)
	}

	// Distributed queries over both graphs — including the one the dead
	// rank never saw — succeed with correct values again.
	for name, want := range map[string]uint64{"alpha": 6, "missed": 4} {
		resp := postJSON(t, urls[0]+"/v1/query", service.QueryRequest{Graph: name, Algorithm: service.AlgMinCut, Seed: 9})
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var qr service.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatalf("decode %q: %v (%s)", name, err, raw)
		}
		if resp.StatusCode != http.StatusOK || qr.Value == nil || *qr.Value != want {
			t.Fatalf("post-recovery mincut %q: status %d, value %v, want %d (%s)", name, resp.StatusCode, qr.Value, want, raw)
		}
	}
}

// TestCrashFaultAbortsRun drives the crash fault kind end to end
// in-process: crash@1:1 "kills" rank 1 (its CrashFn shuts the worker
// down) at superstep 1 of a distributed run; the leader aborts with
// ErrPeerLost and the query resolves 503 + Retry-After.
func TestCrashFaultAbortsRun(t *testing.T) {
	freg, err := faults.Parse("crash@1:1")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var workers []*Worker
	crash := func(rank int) {
		mu.Lock()
		w := workers[rank]
		mu.Unlock()
		go w.Close()
	}
	ws, urls, _ := fastWorkerGroup(t, 2, 901, freg, crash)
	mu.Lock()
	workers = ws
	mu.Unlock()
	defer ws[0].Close()
	defer ws[1].Close()

	cycle := edgeListOf(t, gen.Cycle(64, 3))
	uploadGraph(t, urls[0], "victim", cycle)
	uploadGraph(t, urls[1], "victim", cycle)

	resp := postJSON(t, urls[0]+"/v1/query", service.QueryRequest{Graph: "victim", Algorithm: service.AlgMinCut})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 after crash fault", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
	if freg.Fired()["crash"] == 0 {
		t.Fatal("crash rule never fired")
	}
}

// TestFrontendFailover kills a shard leader and verifies the frontend
// fails cc queries over to the replica's local copy, trips the
// breaker, and keeps non-cc queries failing closed with Retry-After.
func TestFrontendFailover(t *testing.T) {
	workers, urls, _ := fastWorkerGroup(t, 2, 902, nil, nil)
	defer workers[1].Close()
	waitReady(t, workers[1])
	fe, err := NewFrontendOpts([][]string{urls}, FrontendOptions{
		Attempts:         1,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()

	ring, _ := NewRing(1, 0)
	name := nameOnShard(t, ring, 0)
	cycle := edgeListOf(t, gen.Cycle(64, 3))
	resp, err := http.Post(srv.URL+"/v1/graphs?name="+name, "text/plain", strings.NewReader(cycle))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Kill the leader process (mesh and HTTP endpoint both gone).
	workers[0].Close()

	// cc queries fail over to the replica's local copy.
	for i := 0; i < 3; i++ {
		resp = postJSON(t, srv.URL+"/v1/query", service.QueryRequest{Graph: name, Algorithm: service.AlgCC, Seed: uint64(i + 1)})
		var qr service.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover cc query %d: status %d", i, resp.StatusCode)
		}
		if qr.Outcome != "failover" || qr.Components == nil || *qr.Components != 1 {
			t.Fatalf("failover cc query %d: outcome %q components %v", i, qr.Outcome, qr.Components)
		}
		if resp.Header.Get("X-Failover") != "1" {
			t.Fatalf("failover reply lacks X-Failover header")
		}
	}

	// The breaker tripped open after the threshold and shows in stats
	// and metrics.
	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var fs FrontendStats
	if err := json.NewDecoder(sresp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if fs.Fleet.Failovers != 3 {
		t.Fatalf("failovers = %d, want 3", fs.Fleet.Failovers)
	}
	if fs.Fleet.Breakers[0].State != "open" {
		t.Fatalf("breaker state %q, want open", fs.Fleet.Breakers[0].State)
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`camc_breaker_state{shard="0"} 2`,
		"camc_failovers_total 3",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("frontend /metrics missing %q:\n%s", want, mbody)
		}
	}

	// Non-cc queries cannot fail over: 503 + Retry-After, fast (the
	// breaker is open, so no retry budget is burned on the corpse).
	resp = postJSON(t, srv.URL+"/v1/query", service.QueryRequest{Graph: name, Algorithm: service.AlgMinCut})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mincut with dead leader: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 lacks Retry-After")
	}
}

// TestHedgedQueryRacesReplica points a frontend at a deliberately slow
// fake leader and a live 1-rank worker as the replica; a hedged cc
// query must come back from the replica long before the leader would
// have answered.
func TestHedgedQueryRacesReplica(t *testing.T) {
	worker, urls, _ := func() ([]*Worker, []string, []string) {
		t.Helper()
		ws, us, as := fastWorkerGroup(t, 1, 903, nil, nil)
		return ws, us, as
	}()
	defer worker[0].Close()

	cycle := edgeListOf(t, gen.Cycle(64, 3))
	uploadGraph(t, urls[0], "hedge", cycle)

	release := make(chan struct{})
	slowLeader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer slowLeader.Close()
	defer close(release)

	fe, err := NewFrontendOpts([][]string{{slowLeader.URL, urls[0]}}, FrontendOptions{
		Attempts:   1,
		HedgeDelay: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fe.Handler())
	defer srv.Close()

	ring, _ := NewRing(1, 0)
	name := nameOnShard(t, ring, 0)
	if name != "g0" {
		// The ring has one shard; every name lands on it. Use the
		// uploaded name regardless.
		name = "hedge"
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp := postJSON(t, srv.URL+"/v1/query", service.QueryRequest{Graph: "hedge", Algorithm: service.AlgCC, Hedged: true})
		defer resp.Body.Close()
		var qr service.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Error(err)
			return
		}
		if resp.StatusCode != http.StatusOK || qr.Outcome != "failover" {
			t.Errorf("hedged query: status %d outcome %q", resp.StatusCode, qr.Outcome)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged query did not resolve while the leader hung")
	}
	if fe.hedged.Load() != 1 || fe.hedgeWins.Load() != 1 {
		t.Fatalf("hedged=%d hedgeWins=%d, want 1/1", fe.hedged.Load(), fe.hedgeWins.Load())
	}
}

// TestWorkerProbesAndTenantPassthrough pins the probe contract: a
// healthy 1-rank worker answers both probes, and /readyz (like
// /healthz) passes the tenant middleware unauthenticated.
func TestWorkerProbesAndTenantPassthrough(t *testing.T) {
	workers, _, _ := fastWorkerGroup(t, 1, 904, nil, nil)
	defer workers[0].Close()
	reg := tenant.NewRegistry(tenant.Config{Tenants: []tenant.TenantConfig{{Name: "acme", Token: "sekrit"}}})
	srv := httptest.NewServer(service.TenantMiddleware(reg, workers[0].Handler()))
	defer srv.Close()

	for path, want := range map[string]string{"/healthz": "ok", "/readyz": "ready"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != want {
			t.Fatalf("unauthenticated GET %s: status %d body %q, want 200 %q", path, resp.StatusCode, body, want)
		}
	}
	// The API proper still requires a token.
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1/stats: status %d, want 401", resp.StatusCode)
	}
}

// TestBreakerTransitions unit-tests the breaker state machine.
func TestBreakerTransitions(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(2, time.Second)
	if !b.allow(now) {
		t.Fatal("fresh breaker must be closed")
	}
	b.record(false, now)
	if !b.allow(now) {
		t.Fatal("one failure under threshold must not trip")
	}
	b.record(false, now)
	if b.allow(now) {
		t.Fatal("threshold failures must trip the breaker open")
	}
	if s, _ := b.snapshot(); s != breakerOpen {
		t.Fatalf("state %d, want open", s)
	}
	// Cooldown passes: exactly one probe is admitted.
	later := now.Add(2 * time.Second)
	if !b.allow(later) {
		t.Fatal("cooldown elapsed, probe must be admitted")
	}
	if b.allow(later) {
		t.Fatal("second concurrent probe must be rejected in half-open")
	}
	if s, _ := b.snapshot(); s != breakerHalfOpen {
		t.Fatalf("state %d, want half-open", s)
	}
	// Failed probe re-opens; successful probe closes.
	b.record(false, later)
	if b.allow(later) {
		t.Fatal("failed probe must re-open the breaker")
	}
	even := later.Add(2 * time.Second)
	if !b.allow(even) {
		t.Fatal("second cooldown elapsed")
	}
	b.record(true, even)
	if s, _ := b.snapshot(); s != breakerClosed {
		t.Fatalf("state %d, want closed after successful probe", s)
	}
	if !b.allow(even) {
		t.Fatal("closed breaker must admit")
	}
}

// TestJitterBackoff pins the full-jitter envelope: every delay is in
// [0, min(cap, base·2^k)] and the ceiling saturates at the cap.
func TestJitterBackoff(t *testing.T) {
	jb := newJitterBackoff(10*time.Millisecond, 80*time.Millisecond, 1)
	for attempt := 0; attempt < 10; attempt++ {
		ceil := 10 * time.Millisecond << uint(attempt)
		if ceil > 80*time.Millisecond {
			ceil = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := jb.delay(attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
}

// --- BENCH_fleet.json ---------------------------------------------------

// fleetBenchRecord is the machine-readable self-healing scorecard CI
// gates on: the counts are deterministic (the scenario is scripted),
// the wall-clock fields informational.
type fleetBenchRecord struct {
	SuperstepsAborted int     `json:"supersteps_aborted"`
	QueriesFailedOver int     `json:"queries_failed_over"`
	CatchupGraphs     int     `json:"catchup_graphs"`
	FingerprintMatch  int     `json:"fingerprint_match"`
	DetectionMs       float64 `json:"detection_ms"`
	RecoveryMs        float64 `json:"recovery_ms"`
}

// runSelfHealScenario executes the scripted kill/failover/respawn
// sequence and returns its scorecard. It mirrors
// TestWorkerReincarnationCatchup + TestFrontendFailover but collects
// counts instead of asserting, so the bench writer and the gate share
// one code path.
func runSelfHealScenario() (rec fleetBenchRecord, err error) {
	fail := func(format string, args ...interface{}) (fleetBenchRecord, error) {
		return rec, fmt.Errorf(format, args...)
	}
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			return rec, lerr
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	workers := make([]*Worker, 2)
	werrs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workers[i], werrs[i] = NewWorker(WorkerConfig{
				Rank:              i,
				Addrs:             addrs,
				Epoch:             990,
				Listener:          lns[i],
				Service:           service.Config{Workers: 1, DefaultTimeout: 30 * time.Second},
				HeartbeatInterval: 20 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for _, werr := range werrs {
		if werr != nil {
			return rec, werr
		}
	}
	defer workers[0].Close()

	g := gen.Cycle(64, 3)
	for _, w := range workers {
		if _, perr := w.Engine().Registry().Put("bench", g); perr != nil {
			return rec, perr
		}
	}

	// Kill the peer, then time detection: first query to fail closed.
	workers[1].Close()
	killedAt := time.Now()
	srv := httptest.NewServer(workers[0].Handler())
	defer srv.Close()
	body, _ := json.Marshal(service.QueryRequest{Graph: "bench", Algorithm: service.AlgMinCut})
	resp, qerr := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if qerr != nil {
		return rec, qerr
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		return fail("kill query: status %d, want 503", resp.StatusCode)
	}
	rec.DetectionMs = float64(time.Since(killedAt)) / float64(time.Millisecond)
	rec.SuperstepsAborted = int(workers[0].Engine().Stats().Queries.Totals.TransportLost)

	// Upload lands while the rank is dead.
	if _, perr := workers[0].Engine().Registry().Put("missed", gen.Cycle(48, 2)); perr != nil {
		return rec, perr
	}

	// Respawn with a bumped incarnation; time recovery to ready.
	ln, lerr := net.Listen("tcp", addrs[1])
	if lerr != nil {
		return rec, lerr
	}
	respawnAt := time.Now()
	reborn, rerr := NewWorker(WorkerConfig{
		Rank:              1,
		Addrs:             addrs,
		Epoch:             990,
		Listener:          ln,
		Incarnation:       2,
		Service:           service.Config{Workers: 1, DefaultTimeout: 30 * time.Second},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if rerr != nil {
		return rec, rerr
	}
	defer reborn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for reborn.Ready() != nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if rerr := reborn.Ready(); rerr != nil {
		return fail("respawned worker never ready: %v", rerr)
	}
	rec.RecoveryMs = float64(time.Since(respawnAt)) / float64(time.Millisecond)
	rec.CatchupGraphs = int(reborn.FleetStats().CatchupGraphsReceived)

	// Fingerprint check: every (name, version, fingerprint) identical.
	rec.FingerprintMatch = 1
	lead := workers[0].Engine().Registry().List()
	for _, sg := range lead {
		got, gerr := reborn.Engine().Registry().Get(sg.Name)
		if gerr != nil || got.Version != sg.Version || got.Snap.Fingerprint() != sg.Snap.Fingerprint() {
			rec.FingerprintMatch = 0
		}
	}

	// Failover: a frontend over a dead leader URL and the reborn
	// replica answers cc from the local copy.
	deadLeader := httptest.NewServer(http.NotFoundHandler())
	deadLeader.Close() // connection refused from now on
	rebornSrv := httptest.NewServer(reborn.Handler())
	defer rebornSrv.Close()
	fe, ferr := NewFrontendOpts([][]string{{deadLeader.URL, rebornSrv.URL}}, FrontendOptions{Attempts: 1})
	if ferr != nil {
		return rec, ferr
	}
	fsrv := httptest.NewServer(fe.Handler())
	defer fsrv.Close()
	body, _ = json.Marshal(service.QueryRequest{Graph: "bench", Algorithm: service.AlgCC})
	resp, qerr = http.Post(fsrv.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if qerr != nil {
		return rec, qerr
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail("failover query: status %d, want 200", resp.StatusCode)
	}
	rec.QueriesFailedOver = int(fe.failovers.Load())
	return rec, nil
}

// TestSelfHealScenarioDeterministic pins the scorecard the bench file
// records: the counts must come out the same on every run.
func TestSelfHealScenarioDeterministic(t *testing.T) {
	rec, err := runSelfHealScenario()
	if err != nil {
		t.Fatal(err)
	}
	if rec.SuperstepsAborted != 1 || rec.QueriesFailedOver != 1 ||
		rec.CatchupGraphs != 2 || rec.FingerprintMatch != 1 {
		t.Fatalf("scenario scorecard %+v, want aborted=1 failedover=1 catchup=2 fpmatch=1", rec)
	}
	if rec.DetectionMs <= 0 || rec.RecoveryMs <= 0 {
		t.Fatalf("wall-clock fields not recorded: %+v", rec)
	}
}

// TestMain writes BENCH_fleet.json whenever benchmarks were requested,
// mirroring the BENCH_transport.json idiom.
func TestMain(m *testing.M) {
	code := m.Run()
	if f := flag.Lookup("test.bench"); code == 0 && f != nil && f.Value.String() != "" {
		if err := writeFleetBenchSnapshot("BENCH_fleet.json"); err != nil {
			fmt.Fprintln(os.Stderr, "fleet bench snapshot:", err)
			code = 1
		}
	}
	os.Exit(code)
}

func writeFleetBenchSnapshot(path string) error {
	rec, err := runSelfHealScenario()
	if err != nil {
		return err
	}
	type snapshot struct {
		Name     string           `json:"name"`
		Scenario fleetBenchRecord `json:"scenario"`
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snapshot{Name: "fleet-selfheal", Scenario: rec}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

var _ = transport.CrashExitCode // referenced by the chaos script contract
