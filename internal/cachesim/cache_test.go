package cachesim

import "testing"

func TestColdMissesAndReuse(t *testing.T) {
	c := New(64, 8) // 8 blocks of 8 words
	base := c.Alloc(8)
	c.Access(base)
	if c.Misses() != 1 {
		t.Fatalf("first access: %d misses", c.Misses())
	}
	for i := uint64(0); i < 8; i++ {
		c.Access(base + i) // same block
	}
	if c.Misses() != 1 {
		t.Errorf("same-block accesses missed: %d", c.Misses())
	}
	if c.Accesses() != 9 {
		t.Errorf("accesses = %d, want 9", c.Accesses())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(16, 8) // 2 blocks
	a := c.Alloc(8)
	b := c.Alloc(8)
	d := c.Alloc(8)
	c.Access(a) // miss
	c.Access(b) // miss
	c.Access(a) // hit, a is MRU
	c.Access(d) // miss, evicts b
	c.Access(a) // hit
	c.Access(b) // miss (was evicted)
	if c.Misses() != 4 {
		t.Errorf("misses = %d, want 4", c.Misses())
	}
}

func TestAccessRangeBlocks(t *testing.T) {
	c := New(1024, 8)
	base := c.Alloc(64)
	c.AccessRange(base, 64) // exactly 8 blocks
	if c.Misses() != 8 {
		t.Errorf("range scan: %d misses, want 8", c.Misses())
	}
	if c.Accesses() != 64 {
		t.Errorf("accesses = %d", c.Accesses())
	}
	c.AccessRange(base, 0)
	if c.Accesses() != 64 {
		t.Error("zero-length range changed counters")
	}
}

func TestAllocBlockAligned(t *testing.T) {
	c := New(1024, 8)
	a := c.Alloc(3)
	b := c.Alloc(3)
	if a/8 == b/8 {
		t.Errorf("regions share block: %d %d", a, b)
	}
}

func TestFlushForcesColdMisses(t *testing.T) {
	c := New(1024, 8)
	base := c.Alloc(8)
	c.Access(base)
	c.Access(base)
	if c.Misses() != 1 {
		t.Fatal("setup")
	}
	c.Flush()
	c.Access(base)
	if c.Misses() != 2 {
		t.Errorf("post-flush access did not miss: %d", c.Misses())
	}
}

func TestIPMAndReset(t *testing.T) {
	c := New(64, 8)
	if c.IPM() != 0 {
		t.Error("IPM nonzero with no misses")
	}
	c.Access(c.Alloc(1))
	c.Ops(50)
	if c.IPM() != 50 {
		t.Errorf("IPM = %v, want 50", c.IPM())
	}
	c.ResetCounters()
	if c.Misses() != 0 || c.Instructions() != 0 || c.Accesses() != 0 {
		t.Error("ResetCounters incomplete")
	}
}

func TestNewPanicsOnBadSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(4, 8) accepted")
		}
	}()
	New(4, 8)
}

func TestSequentialBeatsRandom(t *testing.T) {
	// The model must reward locality: scanning N words costs ~N/B misses,
	// random probing costs ~min(N, distinct blocks) misses.
	const n = 1 << 14
	seq := New(1024, 16)
	base := seq.Alloc(n)
	seq.AccessRange(base, n)
	rnd := New(1024, 16)
	base2 := rnd.Alloc(n)
	x := uint64(12345)
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		rnd.Access(base2 + x%n)
	}
	if seq.Misses()*4 > rnd.Misses() {
		t.Errorf("sequential %d misses vs random %d: model broken", seq.Misses(), rnd.Misses())
	}
}
