package cachesim

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/mincut"
	"repro/internal/rng"
)

// simCache returns a small LLC-like cache: 32Ki words (256 KiB of 8-byte
// words), 8-word blocks.
func simCache() *Cache { return New(1<<15, 8) }

func TestKernelsComputeCorrectCC(t *testing.T) {
	g := gen.ErdosRenyiM(400, 600, 3, gen.Config{})
	_, want := g.ConnectedComponents()
	if got := BFSCC(simCache(), g); got != want {
		t.Errorf("BFSCC = %d, want %d", got, want)
	}
	if got := UnionFindCC(simCache(), g); got != want {
		t.Errorf("UnionFindCC = %d, want %d", got, want)
	}
	if got := SamplingCC(simCache(), g, rng.New(1, 0, 0), 0.5); got != want {
		t.Errorf("SamplingCC = %d, want %d", got, want)
	}
}

func TestKernelsComputeCorrectCuts(t *testing.T) {
	g := gen.TwoCliques(10, 2, 4, 1) // min cut 2
	if got := StoerWagnerKernel(simCache(), g); got != 2 {
		t.Errorf("SW kernel = %d, want 2", got)
	}
	st := rng.New(5, 0, 0)
	trials := mincut.KargerSteinTrials(g.N, 0.95)
	if got := KargerSteinKernel(simCache(), g, st, trials); got != 2 {
		t.Errorf("KS kernel = %d, want 2", got)
	}
	mcTrials := mincut.Trials(g.N, g.M(), 0.95)
	if got := MCKernel(simCache(), g, st, mcTrials); got != 2 {
		t.Errorf("MC kernel = %d, want 2", got)
	}
}

func TestKernelCutAgreementRandom(t *testing.T) {
	st := rng.New(77, 0, 0)
	for seed := uint64(1); seed <= 4; seed++ {
		g := gen.ErdosRenyiM(32, 160, seed, gen.Config{MaxWeight: 3})
		if !g.IsConnected() {
			continue
		}
		want := mincut.StoerWagner(g).Value
		if got := StoerWagnerKernel(simCache(), g); got != want {
			t.Errorf("seed %d: SW kernel %d vs library %d", seed, got, want)
		}
		trials := mincut.KargerSteinTrials(g.N, 0.95)
		if got := KargerSteinKernel(simCache(), g, st, trials); got != want {
			t.Errorf("seed %d: KS kernel %d, want %d", seed, got, want)
		}
	}
}

func TestSamplingCCFewerMissesThanBFS(t *testing.T) {
	// Figure 4a / 8b shape: on sparse graphs whose label array exceeds
	// the cache, sampling CC incurs noticeably fewer misses than BFS,
	// despite executing more instructions.
	g := gen.RMAT(15, 1<<17, 9, gen.Config{}) // n=32768, m≈131k
	cBFS := simCache()
	BFSCC(cBFS, g)
	cSam := simCache()
	SamplingCC(cSam, g, rng.New(4, 0, 0), 0.5)
	if cSam.Misses() >= cBFS.Misses() {
		t.Errorf("sampling CC misses %d >= BFS misses %d", cSam.Misses(), cBFS.Misses())
	}
	if cSam.Instructions() <= cBFS.Instructions() {
		t.Logf("note: sampling executed fewer instructions (%d vs %d)", cSam.Instructions(), cBFS.Instructions())
	}
	// IPM advantage (Figure 8b).
	if cSam.IPM() <= cBFS.IPM() {
		t.Errorf("sampling IPM %.0f <= BFS IPM %.0f", cSam.IPM(), cBFS.IPM())
	}
}

// smallCache models an LLC much smaller than the working set (4Ki words,
// 8-word blocks), which is where the Figure 9 contrasts appear at
// simulator-friendly problem sizes.
func smallCache() *Cache { return New(1<<12, 8) }

func TestSWFarMoreMissesThanKS(t *testing.T) {
	// Figure 9a shape: SW incurs dramatically more misses than KS on a
	// sparse graph once the matrix far exceeds the cache (SW is Θ(n³/B)
	// sequential volume plus Θ(n²) random writes; CO-style KS touches
	// Θ(n²/B·polylog) and its recursion descends into cache-resident
	// subproblems).
	g := gen.ErdosRenyiM(384, 384*16, 6, gen.Config{})
	cSW := smallCache()
	StoerWagnerKernel(cSW, g)
	cKS := smallCache()
	st := rng.New(8, 0, 0)
	KargerSteinKernel(cKS, g, st, 1)
	if cSW.Misses() <= 2*cKS.Misses() {
		t.Errorf("SW misses %d not well above KS per-trial misses %d", cSW.Misses(), cKS.Misses())
	}
	// IPM contrast (Figure 8a): SW's instructions-per-miss should be the
	// lowest of the pack.
	if cSW.IPM() >= cKS.IPM() {
		t.Errorf("SW IPM %.0f >= KS IPM %.0f", cSW.IPM(), cKS.IPM())
	}
}

func TestSWFarMoreMissesThanMC(t *testing.T) {
	// The other half of Figure 9a: the paper's MC also incurs far fewer
	// misses than SW.
	g := gen.ErdosRenyiM(384, 384*16, 6, gen.Config{})
	cSW := smallCache()
	StoerWagnerKernel(cSW, g)
	cMC := smallCache()
	MCKernel(cMC, g, rng.New(5, 0, 0), 8)
	if cMC.Misses() == 0 {
		t.Fatal("MC kernel recorded no misses")
	}
	if cSW.Misses() <= 2*cMC.Misses() {
		t.Errorf("SW misses %d not well above MC misses %d", cSW.Misses(), cMC.Misses())
	}
}

func TestSemiExternalCCOptimalMisses(t *testing.T) {
	// §3.2: in the semi-external setting (vertices fit in fast memory,
	// edges do not), the CC algorithm incurs the optimal O(m/B) misses
	// per pass. Cache of 4n words >> n but << 3m edge words.
	scale, d := 12, 64
	n := 1 << scale
	g := gen.RMAT(scale, n*d/2, 3, gen.Config{})
	c := New(4*n, 8)
	SamplingCC(c, g, rng.New(9, 0, 0), 0.5)
	const iters = 4 // generous bound on sampling rounds for this instance
	m := uint64(g.M())
	bound := uint64(iters) * (3*m/8 + 3*m/8 + uint64(n)) * 4 // scans + slack
	if c.Misses() > bound {
		t.Errorf("semi-external CC misses %d exceed O(m/B)-style bound %d", c.Misses(), bound)
	}
	// And far below the naive m random-access count.
	if c.Misses() > 2*m {
		t.Errorf("misses %d not sublinear in edge accesses %d", c.Misses(), 2*m)
	}
}
