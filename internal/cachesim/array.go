package cachesim

// Array is a slice whose element accesses are charged to a simulated
// cache — the convenient way to write new instrumented kernels without
// tracking addresses by hand. Get/Set charge one word access and one
// operation; Scan charges a sequential range access.
type Array[T any] struct {
	c    *Cache
	base uint64
	data []T
	// wordsPerElem scales addresses for elements wider than one word.
	wordsPerElem uint64
}

// NewArray allocates a tracked array of n elements, each occupying
// wordsPerElem simulated words (use 1 for ints/labels, 3 for edges).
func NewArray[T any](c *Cache, n int, wordsPerElem int) *Array[T] {
	if wordsPerElem < 1 {
		wordsPerElem = 1
	}
	return &Array[T]{
		c:            c,
		base:         c.Alloc(n * wordsPerElem),
		data:         make([]T, n),
		wordsPerElem: uint64(wordsPerElem),
	}
}

// Len returns the element count.
func (a *Array[T]) Len() int { return len(a.data) }

// Get reads element i, charging one access.
func (a *Array[T]) Get(i int) T {
	a.c.Access(a.base + uint64(i)*a.wordsPerElem)
	a.c.Ops(1)
	return a.data[i]
}

// Set writes element i, charging one access.
func (a *Array[T]) Set(i int, v T) {
	a.c.Access(a.base + uint64(i)*a.wordsPerElem)
	a.c.Ops(1)
	a.data[i] = v
}

// Scan charges a sequential read of elements [lo, hi) and returns the
// underlying slice segment (zero-copy; mutations are the caller's
// responsibility to charge via Set or another Scan).
func (a *Array[T]) Scan(lo, hi int) []T {
	if hi > lo {
		a.c.AccessRange(a.base+uint64(lo)*a.wordsPerElem, uint64(hi-lo)*a.wordsPerElem)
		a.c.Ops(uint64(hi - lo))
	}
	return a.data[lo:hi]
}
